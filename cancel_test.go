package complx_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"complx"
)

func placeOpt() complx.Options {
	return complx.Options{MaxIterations: 12}
}

func genOrDie(t *testing.T, name string, n int, seed int64) *complx.Netlist {
	t.Helper()
	nl, err := complx.Generate(complx.BenchSpec{Name: name, NumCells: n, Seed: seed, Utilization: 0.72})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func snapshotPositions(nl *complx.Netlist) [][2]uint64 {
	out := make([][2]uint64, len(nl.Cells))
	for i := range nl.Cells {
		out[i] = [2]uint64{math.Float64bits(nl.Cells[i].X), math.Float64bits(nl.Cells[i].Y)}
	}
	return out
}

// TestConcurrentPlacementsMatchSerial runs four placements serially, then
// the same four designs concurrently from fresh (deterministically
// regenerated) netlists, and requires every cell position to be bitwise
// identical between the two runs. Under -race this also proves the whole
// flow — facade, engine, shared worker pool, legalizer — is reentrant.
func TestConcurrentPlacementsMatchSerial(t *testing.T) {
	type design struct {
		name string
		n    int
		seed int64
	}
	designs := []design{
		{"cc1", 300, 11},
		{"cc2", 340, 22},
		{"cc3", 380, 33},
		{"cc4", 420, 44},
	}

	serial := make([][][2]uint64, len(designs))
	for i, d := range designs {
		nl := genOrDie(t, d.name, d.n, d.seed)
		if _, err := complx.Place(nl, placeOpt()); err != nil {
			t.Fatalf("serial %s: %v", d.name, err)
		}
		serial[i] = snapshotPositions(nl)
	}

	concurrent := make([][][2]uint64, len(designs))
	errs := make([]error, len(designs))
	var wg sync.WaitGroup
	for i, d := range designs {
		wg.Add(1)
		go func(i int, d design) {
			defer wg.Done()
			nl, err := complx.Generate(complx.BenchSpec{Name: d.name, NumCells: d.n, Seed: d.seed, Utilization: 0.72})
			if err != nil {
				errs[i] = err
				return
			}
			if _, err := complx.PlaceContext(context.Background(), nl, placeOpt()); err != nil {
				errs[i] = err
				return
			}
			concurrent[i] = snapshotPositions(nl)
		}(i, d)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent %s: %v", designs[i].name, err)
		}
	}
	for i := range designs {
		if len(serial[i]) != len(concurrent[i]) {
			t.Fatalf("%s: %d vs %d cells", designs[i].name, len(serial[i]), len(concurrent[i]))
		}
		for c := range serial[i] {
			if serial[i][c] != concurrent[i][c] {
				t.Fatalf("%s: cell %d differs between serial and concurrent run", designs[i].name, c)
			}
		}
	}
}

// TestPlaceContextPreCancelled checks the contract on an already-cancelled
// context: a usable, fully legalized best-so-far result with Cancelled set,
// alongside a *PlaceError wrapping context.Canceled.
func TestPlaceContextPreCancelled(t *testing.T) {
	nl := genOrDie(t, "pc", 400, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := complx.PlaceContext(ctx, nl, complx.Options{})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	var pe *complx.PlaceError
	if !errors.As(err, &pe) {
		t.Errorf("error %v is not a *PlaceError", err)
	}
	if res == nil {
		t.Fatal("expected a best-so-far result")
	}
	if !res.Cancelled {
		t.Error("Cancelled flag not set")
	}
	if !res.Legalized {
		t.Error("cancelled run skipped legalization")
	}
	if res.LegalViolations != 0 {
		t.Errorf("%d legal violations after cancelled run", res.LegalViolations)
	}
}

// TestPlaceContextCancelMidRun cancels from the iteration callback and
// checks the flow stops within one global iteration, still finishing with a
// legal placement and the cancellation error.
func TestPlaceContextCancelMidRun(t *testing.T) {
	nl := genOrDie(t, "mc", 500, 6)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last int
	opt := complx.Options{
		MaxIterations: 40,
		OnIteration: func(st complx.IterStats) {
			last = st.Iter
			if st.Iter == 3 {
				cancel()
			}
		},
	}
	res, err := complx.PlaceContext(ctx, nl, opt)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if res == nil || !res.Cancelled {
		t.Fatal("expected a Cancelled best-so-far result")
	}
	if last > 4 {
		t.Errorf("global placement ran %d iterations past the cancel", last-3)
	}
	if !res.Legalized || res.LegalViolations != 0 {
		t.Errorf("cancelled run not finished legally: legalized=%v violations=%d",
			res.Legalized, res.LegalViolations)
	}
	for i := range nl.Cells {
		if math.IsNaN(nl.Cells[i].X) || math.IsNaN(nl.Cells[i].Y) {
			t.Fatalf("cell %d has NaN position after cancellation", i)
		}
	}
}

// TestPlaceContextPortfolioCancelMidSearch cancels a portfolio run from the
// iteration callback while the members are racing and checks the best
// member found so far is returned with the full cancellation contract:
// Result.Cancelled set, portfolio stats attached, a legal placement, and a
// *PlaceError wrapping context.Canceled. The callback fires concurrently
// from all members, so under -race this also proves cancellation does not
// race with the member fan-out.
func TestPlaceContextPortfolioCancelMidSearch(t *testing.T) {
	nl := genOrDie(t, "pfc", 420, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	opt := complx.Options{
		MaxIterations: 40,
		Portfolio:     complx.PortfolioOptions{Enabled: true, Members: 3, Rounds: 4, Seed: 3},
		OnIteration: func(st complx.IterStats) {
			if st.Iter >= 3 {
				once.Do(cancel)
			}
		},
	}
	res, err := complx.PlaceContext(ctx, nl, opt)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	var pe *complx.PlaceError
	if !errors.As(err, &pe) {
		t.Errorf("error %v is not a *PlaceError", err)
	}
	if res == nil || !res.Cancelled {
		t.Fatal("expected a Cancelled best-so-far result")
	}
	if res.Portfolio == nil {
		t.Fatal("cancelled portfolio run carries no portfolio stats")
	}
	if w := res.Portfolio.Winner; w < 0 || w >= res.Portfolio.Members {
		t.Errorf("winner %d out of range [0,%d)", w, res.Portfolio.Members)
	}
	if !res.Legalized || res.LegalViolations != 0 {
		t.Errorf("cancelled run not finished legally: legalized=%v violations=%d",
			res.Legalized, res.LegalViolations)
	}
	for i := range nl.Cells {
		if math.IsNaN(nl.Cells[i].X) || math.IsNaN(nl.Cells[i].Y) {
			t.Fatalf("cell %d has NaN position after cancellation", i)
		}
	}
}

// TestPlaceContextCancelledBaselines checks every baseline algorithm honors
// a pre-cancelled context with the same best-so-far contract.
func TestPlaceContextCancelledBaselines(t *testing.T) {
	for _, alg := range []complx.Algorithm{complx.AlgSimPL, complx.AlgFastPlaceCS, complx.AlgNLP, complx.AlgRQL} {
		t.Run(alg.String(), func(t *testing.T) {
			nl := genOrDie(t, "cb-"+alg.String(), 250, 9)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			res, err := complx.PlaceContext(ctx, nl, complx.Options{Algorithm: alg})
			if err == nil {
				t.Fatal("expected cancellation error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("error %v does not wrap context.Canceled", err)
			}
			if res == nil || !res.Cancelled {
				t.Fatal("expected a Cancelled result")
			}
			if !res.Legalized || res.LegalViolations != 0 {
				t.Errorf("not finished legally: legalized=%v violations=%d", res.Legalized, res.LegalViolations)
			}
		})
	}
}
