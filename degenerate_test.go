package complx_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"complx"
)

// degenerateCase builds one pathological-but-conceivable input. ok=false
// means the Builder itself rejected the construction (also acceptable); the
// point of every case is that complx.Place must either succeed or return a
// structured *PlaceError — never panic and never emit non-finite positions.
type degenerateCase struct {
	name  string
	build func() (*complx.Netlist, bool)
}

func degenerateCases() []degenerateCase {
	return []degenerateCase{
		{"empty netlist", func() (*complx.Netlist, bool) {
			// Bypasses the Builder entirely: the zero value has no core, no
			// cells, no rows. Place must reject it in validation.
			return &complx.Netlist{Name: "empty"}, true
		}},
		{"all cells fixed", func() (*complx.Netlist, bool) {
			b := complx.NewBuilder("allfixed")
			b.SetCore(complx.Rect{XMax: 100, YMax: 100})
			b.AddUniformRows(10, 10, 1)
			p0 := b.AddFixed("p0", 0, 0, 2, 2)
			p1 := b.AddFixed("p1", 90, 90, 2, 2)
			b.AddNet("n", 1, []complx.PinSpec{{Cell: p0}, {Cell: p1}})
			nl, err := b.Build()
			return nl, err == nil
		}},
		{"single movable cell", func() (*complx.Netlist, bool) {
			b := complx.NewBuilder("single")
			b.SetCore(complx.Rect{XMax: 100, YMax: 100})
			b.AddUniformRows(10, 10, 1)
			c := b.AddCell("c", 4, 10)
			p := b.AddFixed("pad", 50, 50, 1, 1)
			b.AddNet("n", 1, []complx.PinSpec{{Cell: c}, {Cell: p}})
			nl, err := b.Build()
			return nl, err == nil
		}},
		{"one-pin net", func() (*complx.Netlist, bool) {
			b := complx.NewBuilder("onepin")
			b.SetCore(complx.Rect{XMax: 100, YMax: 100})
			b.AddUniformRows(10, 10, 1)
			a := b.AddCell("a", 4, 10)
			c := b.AddCell("b", 4, 10)
			// A degree-1 net contributes nothing to the objective but must
			// not divide by zero in the net models.
			b.AddNet("n1", 1, []complx.PinSpec{{Cell: a}})
			b.AddNet("n2", 1, []complx.PinSpec{{Cell: a}, {Cell: c}})
			nl, err := b.Build()
			return nl, err == nil
		}},
		{"zero-area cell", func() (*complx.Netlist, bool) {
			// The Builder refuses w=0, so construct the netlist directly the
			// way a careless programmatic caller could.
			nl := &complx.Netlist{Name: "zeroarea", Core: complx.Rect{XMax: 100, YMax: 100}}
			nl.Cells = append(nl.Cells, complx.Cell{Name: "z", W: 0, H: 0, Region: -1})
			return nl, true
		}},
		{"rows not covering core", func() (*complx.Netlist, bool) {
			b := complx.NewBuilder("sparse-rows")
			b.SetCore(complx.Rect{XMax: 100, YMax: 100})
			// Two short rows at the bottom of a 100x100 core; most of the
			// core has no legal sites at all.
			b.AddRow(complx.Row{Y: 0, Height: 10, XMin: 0, XMax: 30, SiteWidth: 1})
			b.AddRow(complx.Row{Y: 10, Height: 10, XMin: 0, XMax: 30, SiteWidth: 1})
			var cells []int
			for i := 0; i < 6; i++ {
				cells = append(cells, b.AddCell("c"+string(rune('0'+i)), 4, 10))
			}
			for i := 1; i < len(cells); i++ {
				b.AddNet("n"+string(rune('0'+i)), 1,
					[]complx.PinSpec{{Cell: cells[i-1]}, {Cell: cells[i]}})
			}
			nl, err := b.Build()
			return nl, err == nil
		}},
	}
}

// placeNoPanic runs complx.Place under a recover harness.
func placeNoPanic(t *testing.T, nl *complx.Netlist, opt complx.Options) (res *complx.Result, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("complx.Place panicked: %v", r)
		}
	}()
	return complx.Place(nl, opt)
}

// TestDegenerateDesignsNeverPanic drives every degenerate case through the
// full flow with both legalizers. Success and structured failure are both
// acceptable outcomes; panics and NaN placements are not.
func TestDegenerateDesignsNeverPanic(t *testing.T) {
	for _, tc := range degenerateCases() {
		for _, leg := range []struct {
			name   string
			abacus bool
		}{{"tetris", false}, {"abacus", true}} {
			t.Run(tc.name+"/"+leg.name, func(t *testing.T) {
				nl, ok := tc.build()
				if !ok {
					t.Skip("builder rejected construction (acceptable)")
				}
				res, err := placeNoPanic(t, nl, complx.Options{
					MaxIterations:   4,
					AbacusLegalizer: leg.abacus,
				})
				if err != nil {
					var pe *complx.PlaceError
					if !errors.As(err, &pe) {
						t.Fatalf("error is %T, not *complx.PlaceError: %v", err, err)
					}
					if pe.Stage == "" {
						t.Errorf("PlaceError has empty stage: %v", err)
					}
					if strings.Count(err.Error(), "\n") != 0 {
						t.Errorf("error message is not one line: %q", err.Error())
					}
					return
				}
				if res == nil {
					t.Fatal("nil result with nil error")
				}
				for i := range nl.Cells {
					c := &nl.Cells[i]
					if math.IsNaN(c.X) || math.IsNaN(c.Y) || math.IsInf(c.X, 0) || math.IsInf(c.Y, 0) {
						t.Fatalf("cell %q at non-finite position (%g, %g)", c.Name, c.X, c.Y)
					}
				}
				if math.IsNaN(res.HPWL) || math.IsInf(res.HPWL, 0) {
					t.Errorf("non-finite HPWL: %v", res.HPWL)
				}
			})
		}
	}
}

// TestDegenerateValidateVerdicts pins down which degenerate inputs the
// validator must reject outright.
func TestDegenerateValidateVerdicts(t *testing.T) {
	mustReject := map[string]bool{
		"empty netlist":  true,
		"zero-area cell": true,
	}
	for _, tc := range degenerateCases() {
		t.Run(tc.name, func(t *testing.T) {
			nl, ok := tc.build()
			if !ok {
				t.Skip("builder rejected construction")
			}
			err := complx.Validate(nl)
			if mustReject[tc.name] && err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if !mustReject[tc.name] && err != nil {
				t.Fatalf("Validate rejected %s: %v", tc.name, err)
			}
		})
	}
}
