package complx

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func smallSpec(name string, n int, seed int64) BenchSpec {
	return BenchSpec{Name: name, NumCells: n, Seed: seed, Utilization: 0.7}
}

func TestEndToEndComPLx(t *testing.T) {
	nl, err := Generate(smallSpec("e2e", 600, 41))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Place(nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Legalized || !res.Detailed {
		t.Fatalf("flow incomplete: %+v", res)
	}
	if res.LegalViolations != 0 {
		t.Errorf("legal violations: %d", res.LegalViolations)
	}
	if got := CheckLegal(nl); len(got) != 0 {
		t.Errorf("CheckLegal: %v", got[:min(3, len(got))])
	}
	if res.HPWL <= 0 || res.ScaledHPWL < res.HPWL {
		t.Errorf("metrics: hpwl=%v scaled=%v", res.HPWL, res.ScaledHPWL)
	}
	if res.GlobalIterations == 0 || len(res.History) == 0 {
		t.Error("missing diagnostics")
	}
	// Detailed placement must not have worsened HPWL.
	if res.DetailedRefine.HPWLAfter > res.DetailedRefine.HPWLBefore+1e-9 {
		t.Errorf("detailed placement worsened HPWL: %+v", res.DetailedRefine)
	}
}

func TestEndToEndAllAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{AlgComPLx, AlgSimPL, AlgFastPlaceCS, AlgNLP, AlgRQL} {
		t.Run(alg.String(), func(t *testing.T) {
			nl, err := Generate(smallSpec("alg-"+alg.String(), 300, 42))
			if err != nil {
				t.Fatal(err)
			}
			res, err := Place(nl, Options{Algorithm: alg, MaxIterations: 40})
			if err != nil {
				t.Fatal(err)
			}
			if res.HPWL <= 0 {
				t.Errorf("%v: HPWL = %v", alg, res.HPWL)
			}
			if res.LegalViolations != 0 {
				t.Errorf("%v: %d legal violations", alg, res.LegalViolations)
			}
		})
	}
}

func TestBookshelfRoundTripThroughAPI(t *testing.T) {
	nl, err := Generate(smallSpec("bs", 200, 43))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteBookshelf(dir, nl, 0.9); err != nil {
		t.Fatal(err)
	}
	nl2, density, err := ReadBookshelf(filepath.Join(dir, "bs.aux"))
	if err != nil {
		t.Fatal(err)
	}
	if density != 0.9 {
		t.Errorf("density = %v", density)
	}
	if nl2.NumCells() != nl.NumCells() || nl2.NumNets() != nl.NumNets() {
		t.Error("round trip changed the design")
	}
	if math.Abs(HPWL(nl2)-HPWL(nl)) > 1e-6*HPWL(nl) {
		t.Errorf("HPWL changed: %v vs %v", HPWL(nl2), HPWL(nl))
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Algorithm
	}{
		{"complx", AlgComPLx}, {"simpl", AlgSimPL},
		{"fastplace-cs", AlgFastPlaceCS}, {"fastplace", AlgFastPlaceCS}, {"nlp", AlgNLP},
		{"rql", AlgRQL},
	} {
		got, err := ParseAlgorithm(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseAlgorithm("magic"); err == nil {
		t.Error("expected error")
	}
	if AlgComPLx.String() != "complx" || Algorithm(9).String() != "Algorithm(9)" {
		t.Error("String wrong")
	}
}

func TestSuitesExposed(t *testing.T) {
	if len(Benchmarks2005()) != 8 || len(Benchmarks2006()) != 8 {
		t.Error("suite sizes wrong")
	}
	if _, ok := BenchmarkByName("newblue3"); !ok {
		t.Error("BenchmarkByName failed")
	}
	s := ScaleBenchmark(Benchmarks2005()[0], 0.5)
	if s.NumCells != 2000 {
		t.Errorf("scaled = %d", s.NumCells)
	}
}

func TestTimingAPI(t *testing.T) {
	nl, err := Generate(smallSpec("ta", 300, 44))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Place(nl, Options{MaxIterations: 20}); err != nil {
		t.Fatal(err)
	}
	rep := AnalyzeTiming(nl, 0, 0)
	if rep.MaxDelay <= 0 {
		t.Errorf("MaxDelay = %v", rep.MaxDelay)
	}
	paths := CriticalPaths(nl, 3)
	if len(paths) == 0 {
		t.Fatal("no critical paths")
	}
	gam := TimingCriticalities(nl, rep, 1.0)
	if len(gam) != nl.NumMovable() {
		t.Error("criticality length wrong")
	}
	old := BoostNetWeights(nl, paths[0].Nets, 10)
	if nl.Nets[paths[0].Nets[0]].Weight != 10 {
		t.Error("boost failed")
	}
	RestoreNetWeights(nl, paths[0].Nets, old)
	if nl.Nets[paths[0].Nets[0]].Weight != 1 {
		t.Error("restore failed")
	}
}

func TestTimingDrivenPenaltyFlow(t *testing.T) {
	// Full Formula-13 flow: place, analyze, re-place with criticalities.
	nl, err := Generate(smallSpec("td", 300, 45))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Place(nl, Options{MaxIterations: 20}); err != nil {
		t.Fatal(err)
	}
	rep := AnalyzeTiming(nl, 0, 0)
	gamma := TimingCriticalities(nl, rep, 0.5)
	if _, err := Place(nl, Options{MaxIterations: 20, CellPenalty: gamma}); err != nil {
		t.Fatal(err)
	}
}

func TestSkipStages(t *testing.T) {
	nl, err := Generate(smallSpec("skip", 300, 46))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Place(nl, Options{SkipLegalize: true, MaxIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Legalized || res.Detailed {
		t.Error("stages ran despite skip")
	}
	res2, err := Place(nl, Options{SkipDetailed: true, MaxIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Legalized || res2.Detailed {
		t.Error("skip-detailed wrong")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestClusteredFlow(t *testing.T) {
	flat, err := Generate(smallSpec("clf", 800, 47))
	if err != nil {
		t.Fatal(err)
	}
	fres, err := Place(flat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Generate(smallSpec("clf", 800, 47))
	if err != nil {
		t.Fatal(err)
	}
	cres, err := Place(cl, Options{Clustered: true})
	if err != nil {
		t.Fatal(err)
	}
	if cres.LegalViolations != 0 {
		t.Errorf("clustered flow violations: %d", cres.LegalViolations)
	}
	if cres.HPWL > 1.4*fres.HPWL {
		t.Errorf("clustered HPWL %v vs flat %v", cres.HPWL, fres.HPWL)
	}
}

func TestAbacusLegalizerOption(t *testing.T) {
	nl, err := Generate(smallSpec("ab", 400, 48))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Place(nl, Options{AbacusLegalizer: true, MaxIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.LegalViolations != 0 {
		t.Errorf("abacus violations: %d", res.LegalViolations)
	}
}

func TestPowerDrivenWeights(t *testing.T) {
	nl, err := Generate(smallSpec("pw", 250, 49))
	if err != nil {
		t.Fatal(err)
	}
	act := make([]float64, nl.NumCells())
	for i := range act {
		act[i] = float64(i%10) / 10
	}
	old, err := ActivityNetWeights(nl, act, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	boosted := 0
	for i := range nl.Nets {
		if nl.Nets[i].Weight > 1 {
			boosted++
		}
	}
	if boosted == 0 {
		t.Fatal("no nets boosted")
	}
	if _, err := Place(nl, Options{MaxIterations: 15}); err != nil {
		t.Fatal(err)
	}
	RestoreNetWeights(nl, AllNets(nl), old)
	for i := range nl.Nets {
		if nl.Nets[i].Weight != 1 {
			t.Fatalf("weight %d not restored", i)
		}
	}
}

func TestProjectionDPOption(t *testing.T) {
	nl, err := Generate(smallSpec("pdp", 350, 50))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Place(nl, Options{ProjectionDP: true, MaxIterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.LegalViolations != 0 || res.HPWL <= 0 {
		t.Errorf("projection-DP flow: %+v", res)
	}
}

func TestFinestGridOptionPublic(t *testing.T) {
	nl, err := Generate(smallSpec("fgp", 300, 51))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Place(nl, Options{FinestGrid: true, MaxIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 || res.History[0].GridNX < 8 {
		t.Errorf("finest grid not active: %+v", res.History[0])
	}
}

func TestUnknownAlgorithmErrors(t *testing.T) {
	nl, err := Generate(smallSpec("ua", 200, 52))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Place(nl, Options{Algorithm: Algorithm(99)}); err == nil {
		t.Error("expected error for unknown algorithm")
	}
}

func TestVizWrappers(t *testing.T) {
	nl, err := Generate(BenchSpec{Name: "vw", NumCells: 200, Seed: 53, NumMacros: 2, MacroAreaFrac: 0.2, MovableMacros: true})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	PrintDensityMap(&sb, nl, 16, 8, 1)
	PrintMacroMap(&sb, nl, 16, 8)
	PrintCongestionMap(&sb, nl, 16, 8, 0)
	if !strings.Contains(sb.String(), "density map") || !strings.Contains(sb.String(), "congestion map") {
		t.Error("viz wrappers produced no output")
	}
}

func TestWirelengthEstimators(t *testing.T) {
	nl, err := Generate(smallSpec("wl", 300, 54))
	if err != nil {
		t.Fatal(err)
	}
	hp := HPWL(nl)
	mst := MSTWirelength(nl)
	st := SteinerWirelength(nl)
	if mst < hp {
		t.Errorf("MST %v < HPWL %v", mst, hp)
	}
	if st <= 0 || st > mst+1e-9 {
		t.Errorf("Steiner estimate %v out of range (mst %v)", st, mst)
	}
}
