package complx_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"complx"
)

// TestObserverServesDuringPlacement pins the live-observability contract:
// while a placement is in flight, the observer's HTTP handler must serve
// Prometheus metrics, the JSON status of the run, and the pprof index,
// all without perturbing or blocking the placement.
func TestObserverServesDuringPlacement(t *testing.T) {
	spec, _ := complx.BenchmarkByName("adaptec1")
	spec = complx.ScaleBenchmark(spec, 0.15)
	nl, err := complx.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	observer := complx.NewObserver()
	srv := httptest.NewServer(observer.Handler())
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		_, err := complx.PlaceContext(context.Background(), nl, complx.Options{
			MaxIterations: 60,
			Observer:      observer,
		})
		done <- err
	}()

	fetch := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	// Wait until the run has visibly started (phase set by the flow).
	deadline := time.Now().Add(10 * time.Second)
	started := false
	for time.Now().Before(deadline) {
		if _, body := fetch("/status"); strings.Contains(body, `"phase"`) &&
			!strings.Contains(body, `"phase": ""`) {
			started = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !started {
		t.Fatal("run never became visible via /status")
	}

	// Metrics must be live Prometheus text: the phase counter exists from
	// the moment the flow starts, the iteration counter appears with the
	// first recorded iteration — poll for it (metrics persist after the
	// run, so this cannot miss).
	if code, body := fetch("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "complx_phase_changes_total") {
		t.Errorf("/metrics during run: code=%d, body missing complx_phase_changes_total", code)
	}
	for {
		if _, body := fetch("/metrics"); strings.Contains(body, "complx_iterations_total") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("complx_iterations_total never appeared in /metrics")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// pprof must be mounted (index page of /debug/pprof/).
	if code, body := fetch("/debug/pprof/"); code != http.StatusOK ||
		!strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ during run: code=%d", code)
	}
	// /status must be valid JSON naming the design.
	if _, body := fetch("/status"); !json.Valid([]byte(body)) ||
		!strings.Contains(body, spec.Name) {
		t.Errorf("/status is not valid JSON for design %q: %s", spec.Name, body)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// After completion, /report must carry the finished result.
	_, body := fetch("/report")
	var rep complx.RunReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/report: %v", err)
	}
	if !rep.Result.Legalized || rep.Result.HPWL <= 0 {
		t.Errorf("/report after run: %+v", rep.Result)
	}
}
