package complx

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"complx/internal/chkpt"
	"complx/internal/perr"
)

func checkpointSpec() BenchSpec {
	return BenchSpec{Name: "ckpt1", NumCells: 300, Seed: 7, Utilization: 0.7}
}

func genCheckpointNetlist(t *testing.T) *Netlist {
	t.Helper()
	nl, err := Generate(checkpointSpec())
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// facadePositionsBits digests every cell position bit-for-bit.
func facadePositionsBits(nl *Netlist) []uint64 {
	out := make([]uint64, 0, 2*len(nl.Cells))
	for i := range nl.Cells {
		out = append(out, math.Float64bits(nl.Cells[i].X), math.Float64bits(nl.Cells[i].Y))
	}
	return out
}

// TestPlaceCheckpointResumeAfterCancel is the end-to-end facade contract: a
// run cancelled mid-flight leaves a checkpoint on disk, and resuming it
// produces bit-for-bit the same placement as the run that was never
// interrupted.
func TestPlaceCheckpointResumeAfterCancel(t *testing.T) {
	base := Options{MaxIterations: 20, SkipLegalize: true, SkipDetailed: true}

	// Uninterrupted reference (no checkpointing).
	nlRef := genCheckpointNetlist(t)
	resRef, err := Place(nlRef, base)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Interrupted run: cancel once iteration 6 completes (before the engine's
	// minimum-iteration convergence floor, so the run is always mid-flight).
	dir := t.TempDir()
	nlInt := genCheckpointNetlist(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	optInt := base
	optInt.Checkpoint = CheckpointOptions{Dir: dir, Interval: 2}
	optInt.OnIteration = func(it IterStats) {
		if it.Iter == 6 {
			cancel()
		}
	}
	resInt, err := PlaceContext(ctx, nlInt, optInt)
	if err == nil || resInt == nil || !resInt.Cancelled {
		t.Fatalf("want cancelled run with result, got res=%v err=%v", resInt, err)
	}
	if _, err := os.Stat(filepath.Join(dir, chkpt.FileName)); err != nil {
		t.Fatalf("cancelled run left no checkpoint: %v", err)
	}

	// Resume and compare bitwise against the uninterrupted reference.
	nlRes := genCheckpointNetlist(t)
	optRes := base
	optRes.Checkpoint = CheckpointOptions{Dir: dir, Interval: 2, Resume: true}
	resRes, err := Place(nlRes, optRes)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !resRes.Resumed {
		t.Error("resumed run did not report Resumed")
	}
	if resRes.GlobalIterations != resRef.GlobalIterations || resRes.Converged != resRef.Converged {
		t.Errorf("resume diverged: iters %d vs %d, converged %v vs %v",
			resRes.GlobalIterations, resRef.GlobalIterations, resRes.Converged, resRef.Converged)
	}
	if math.Float64bits(resRes.HPWL) != math.Float64bits(resRef.HPWL) {
		t.Errorf("resume HPWL diverged: %v vs %v", resRes.HPWL, resRef.HPWL)
	}
	a, b := facadePositionsBits(nlRef), facadePositionsBits(nlRes)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("position word %d diverged after resume", i)
		}
	}
}

// wantCheckpointError asserts err is a *PlaceError at the checkpoint stage.
func wantCheckpointError(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("want checkpoint-stage error, got nil")
	}
	var pe *PlaceError
	if !errors.As(err, &pe) || pe.Stage != perr.StageCheckpoint {
		t.Errorf("want *PlaceError at stage %q, got %v", perr.StageCheckpoint, err)
	}
}

func TestPlaceCheckpointRejections(t *testing.T) {
	base := Options{MaxIterations: 6, SkipLegalize: true, SkipDetailed: true}

	t.Run("resume-without-dir", func(t *testing.T) {
		nl := genCheckpointNetlist(t)
		opt := base
		opt.Checkpoint = CheckpointOptions{Resume: true}
		_, err := Place(nl, opt)
		wantCheckpointError(t, err)
	})

	t.Run("clustered", func(t *testing.T) {
		nl := genCheckpointNetlist(t)
		opt := base
		opt.Clustered = true
		opt.Checkpoint = CheckpointOptions{Dir: t.TempDir()}
		_, err := Place(nl, opt)
		wantCheckpointError(t, err)
	})

	t.Run("corrupt-file", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, chkpt.FileName), []byte("not a checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
		nl := genCheckpointNetlist(t)
		opt := base
		opt.Checkpoint = CheckpointOptions{Dir: dir, Resume: true}
		_, err := Place(nl, opt)
		wantCheckpointError(t, err)
	})

	t.Run("mismatched-options", func(t *testing.T) {
		dir := t.TempDir()
		nl := genCheckpointNetlist(t)
		opt := base
		opt.Checkpoint = CheckpointOptions{Dir: dir, Interval: 2}
		if _, err := Place(nl, opt); err != nil {
			t.Fatal(err)
		}
		// Same checkpoint directory, different trajectory-steering option:
		// the fingerprint check must reject the resume.
		nl2 := genCheckpointNetlist(t)
		opt2 := base
		opt2.TargetDensity = 0.8
		opt2.Checkpoint = CheckpointOptions{Dir: dir, Resume: true}
		_, err := Place(nl2, opt2)
		wantCheckpointError(t, err)
		if !errors.Is(err, chkpt.ErrFingerprint) {
			t.Errorf("want ErrFingerprint, got %v", err)
		}
	})

	t.Run("missing-file-starts-fresh", func(t *testing.T) {
		nl := genCheckpointNetlist(t)
		opt := base
		opt.Checkpoint = CheckpointOptions{Dir: t.TempDir(), Resume: true}
		res, err := Place(nl, opt)
		if err != nil {
			t.Fatalf("fresh run with -resume and no checkpoint: %v", err)
		}
		if res.Resumed {
			t.Error("fresh run reported Resumed")
		}
	})
}

// TestPlaceCheckpointResumeMidVCycle is the multilevel variant of the
// resume contract (DESIGN.md §13): a V-cycle killed while a coarse level is
// still solving — i.e. before the interpolation down to finer levels —
// leaves a level-stamped checkpoint, and resuming rebuilds the coarsening
// stack, skips the levels the snapshot already encodes, and finishes
// bit-for-bit identical to the uninterrupted run.
func TestPlaceCheckpointResumeMidVCycle(t *testing.T) {
	spec := BenchSpec{Name: "mlckpt", NumCells: 700, Seed: 21, Utilization: 0.7}
	design := func() *Netlist {
		nl, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		return nl
	}
	base := Options{
		MaxIterations: 20,
		SkipLegalize:  true,
		SkipDetailed:  true,
		Multilevel:    MultilevelOptions{Enabled: true, TargetCells: 150, RefineIters: 6},
	}

	for _, tc := range []struct {
		name   string
		cancel func(IterStats, int) bool // (stats, coarsest level) -> kill now
	}{
		// Mid-coarse-solve: the snapshot's level is the coarsest, so the
		// resume finishes the coarse solve before any interpolation.
		{"during-coarse-solve", func(it IterStats, top int) bool {
			return it.Level == top && it.Iter == 10
		}},
		// After the coarse solve, during a middle refinement level: the
		// resume must skip the coarser levels entirely.
		{"during-refine-level", func(it IterStats, top int) bool {
			return it.Level == 1 && it.Iter == 2
		}},
		// During the FIRST iteration of a warm level, before any of its
		// deposits flushed: the level's pending iteration-0 snapshot has
		// no schedule state and must not replace the coarser level's
		// resumable snapshot (warmLevelSink drops it) — the resume lands
		// on the coarser level and re-descends.
		{"at-refine-level-entry", func(it IterStats, top int) bool {
			return it.Level == top-1 && it.Iter == 1
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Uninterrupted reference.
			nlRef := design()
			resRef, err := Place(nlRef, base)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}

			// Interrupted run.
			dir := t.TempDir()
			nlInt := design()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			optInt := base
			optInt.Checkpoint = CheckpointOptions{Dir: dir, Interval: 1}
			top := -1
			optInt.OnIteration = func(it IterStats) {
				if top < 0 {
					top = it.Level // first iteration runs at the coarsest level
				}
				if tc.cancel(it, top) {
					cancel()
				}
			}
			resInt, err := PlaceContext(ctx, nlInt, optInt)
			if err == nil || resInt == nil || !resInt.Cancelled {
				t.Fatalf("want cancelled run with result, got res=%v err=%v", resInt, err)
			}
			if top < 1 {
				t.Fatalf("expected a multi-level cycle, first level was %d", top)
			}
			raw, err := os.ReadFile(filepath.Join(dir, chkpt.FileName))
			if err != nil {
				t.Fatalf("no checkpoint after cancellation: %v", err)
			}
			st, err := chkpt.Decode(raw)
			if err != nil {
				t.Fatal(err)
			}
			if st.Level <= 0 {
				t.Fatalf("checkpoint level = %d, want a coarse level (cancelled mid-V-cycle)", st.Level)
			}

			// Resume and compare bitwise.
			nlRes := design()
			optRes := base
			optRes.Checkpoint = CheckpointOptions{Dir: dir, Interval: 1, Resume: true}
			resRes, err := Place(nlRes, optRes)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if !resRes.Resumed {
				t.Error("resumed run did not report Resumed")
			}
			if math.Float64bits(resRes.HPWL) != math.Float64bits(resRef.HPWL) {
				t.Errorf("resume HPWL diverged: %v vs %v", resRes.HPWL, resRef.HPWL)
			}
			a, b := facadePositionsBits(nlRef), facadePositionsBits(nlRes)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("position word %d diverged after mid-V-cycle resume", i)
				}
			}
		})
	}
}

// TestPlaceMultilevelRejections covers the facade's multilevel option
// validation.
func TestPlaceMultilevelRejections(t *testing.T) {
	base := Options{MaxIterations: 6, SkipLegalize: true, SkipDetailed: true}

	t.Run("clustered-exclusive", func(t *testing.T) {
		nl := genCheckpointNetlist(t)
		opt := base
		opt.Clustered = true
		opt.Multilevel = MultilevelOptions{Enabled: true}
		_, err := Place(nl, opt)
		var pe *PlaceError
		if !errors.As(err, &pe) || pe.Stage != perr.StageValidate {
			t.Fatalf("want validate-stage error, got %v", err)
		}
	})

	t.Run("algorithm-gate", func(t *testing.T) {
		nl := genCheckpointNetlist(t)
		opt := base
		opt.Algorithm = AlgFastPlaceCS
		opt.Multilevel = MultilevelOptions{Enabled: true}
		_, err := Place(nl, opt)
		var pe *PlaceError
		if !errors.As(err, &pe) || pe.Stage != perr.StageValidate {
			t.Fatalf("want validate-stage error, got %v", err)
		}
	})

	t.Run("checkpoint-fingerprint-covers-multilevel", func(t *testing.T) {
		dir := t.TempDir()
		nl := genCheckpointNetlist(t)
		opt := base
		opt.Checkpoint = CheckpointOptions{Dir: dir, Interval: 2}
		if _, err := Place(nl, opt); err != nil {
			t.Fatal(err)
		}
		// Same directory, but now a multilevel run: the fingerprint must
		// reject priming a V-cycle from a flat run's snapshot.
		nl2 := genCheckpointNetlist(t)
		opt2 := base
		opt2.Multilevel = MultilevelOptions{Enabled: true, TargetCells: 150}
		opt2.Checkpoint = CheckpointOptions{Dir: dir, Resume: true}
		_, err := Place(nl2, opt2)
		wantCheckpointError(t, err)
		if !errors.Is(err, chkpt.ErrFingerprint) {
			t.Errorf("want ErrFingerprint, got %v", err)
		}
	})
}
