// Package complx is a from-scratch implementation of ComPLx — the
// projected-subgradient primal-dual Lagrange optimization for global
// placement of Kim and Markov (DAC 2012) — together with every substrate a
// complete placement flow needs: netlist modeling, Bookshelf (ISPD
// 2005/2006) I/O, Bound2Bound and log-sum-exp interconnect models, sparse
// preconditioned CG, SimPL-style look-ahead legalization as the feasibility
// projection, macro shredding, region constraints, a Tetris legalizer, a
// FastPlace-DP-style detailed placer, an STA-lite timing analyzer, baseline
// placers (SimPL, FastPlace-CS, NLP) and a synthetic ISPD-analog benchmark
// generator.
//
// The simplest entry point:
//
//	nl, _, err := complx.ReadBookshelf("design.aux")
//	if err != nil { ... }
//	res, err := complx.Place(nl, complx.Options{})
//	fmt.Println(res.HPWL)
//
// Netlists can also be built programmatically with NewBuilder or generated
// synthetically with Generate. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper reproduction results.
package complx

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"complx/internal/baseline"
	"complx/internal/bookshelf"
	"complx/internal/cluster"
	"complx/internal/core"
	"complx/internal/density"
	"complx/internal/detailed"
	"complx/internal/gen"
	"complx/internal/geom"
	"complx/internal/legalize"
	"complx/internal/netlist"
	"complx/internal/netmodel"
	"complx/internal/obs"
	"complx/internal/par"
	"complx/internal/perr"
	"complx/internal/portfolio"
	"complx/internal/sparse"
	"complx/internal/timing"
	"complx/internal/viz"
)

// PlaceError is the structured error type produced by the placement flow and
// the Bookshelf readers. Every failure surfaced by Place or ReadBookshelf on
// malformed input unwraps (errors.As) to a *PlaceError carrying the pipeline
// stage, the offending file and line (for parse errors) and the global
// placement iteration (for solver failures). See DESIGN.md §7.
type PlaceError = perr.Error

// ErrNotFinite is the sentinel wrapped by solver failures caused by NaN or
// Inf values in the linear systems; test with errors.Is. Place degrades
// gracefully on the first such failure (restoring the last finite placement
// and retrying once with relaxed parameters), so user code sees it only when
// the retry also fails.
var ErrNotFinite = sparse.ErrNotFinite

// Validate checks a netlist's structural and numeric invariants (finite
// coordinates and sizes, positive dimensions, pins referencing real cells,
// usable rows and core). Place validates automatically; call this directly
// to diagnose a netlist before committing to a run.
func Validate(nl *Netlist) error {
	if err := nl.Validate(); err != nil {
		return perr.Wrap(perr.StageValidate, err)
	}
	return nil
}

// SetThreads caps the shared worker pool used by the parallel kernels
// (sparse matrix-vector products, system assembly, HPWL and density
// binning). n <= 0 restores the default of GOMAXPROCS workers. Because
// every parallel decomposition is a pure function of problem size — never
// of worker count — placements are bitwise identical at any setting; the
// knob trades wall-clock time only.
//
// SetThreads may be called at any time, even while placements are running
// on other goroutines: the resize is atomic, kernels already in flight
// finish with the parallelism they started with, and the new cap applies
// from the next kernel launch on. A mid-run resize never changes placement
// results (see TestSetThreadsDuringRun in internal/par).
//
// SetThreads is the process-wide ceiling. To bound an individual run —
// e.g. one job among several in a placement service — set Options.Threads
// instead: per-run budgets compose with (and never exceed) the global cap.
func SetThreads(n int) { par.SetThreads(n) }

// Threads reports the current worker-pool size.
func Threads() int { return par.Threads() }

// Re-exported data-model types: these aliases make the internal packages'
// types part of the public API without duplicating them.
type (
	// Netlist is the circuit data model (cells, nets, pins, rows, regions).
	Netlist = netlist.Netlist
	// Builder assembles netlists programmatically.
	Builder = netlist.Builder
	// PinSpec names one pin when adding a net to a Builder.
	PinSpec = netlist.PinSpec
	// Cell is one placeable or fixed object.
	Cell = netlist.Cell
	// Net is a weighted multi-pin net.
	Net = netlist.Net
	// Row is a standard-cell placement row.
	Row = netlist.Row
	// RegionConstraint is a named rectangular placement constraint.
	RegionConstraint = netlist.Region
	// Point is a planar location.
	Point = geom.Point
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
	// IterStats records one global placement iteration.
	IterStats = core.IterStats
	// SelfConsistency aggregates the Formula 11 projection check.
	SelfConsistency = core.SelfConsistency
	// BenchSpec describes a synthetic benchmark.
	BenchSpec = gen.Spec
	// NetModel selects the quadratic net decomposition.
	NetModel = netmodel.Model
	// TimingReport holds STA results.
	TimingReport = timing.Report
	// DetailedStats reports the detailed-placement refinement.
	DetailedStats = detailed.Stats
	// Observer is the structured observability hub (tracing, metrics,
	// run report); see internal/obs and DESIGN.md §9. A nil *Observer
	// disables all instrumentation at near-zero cost.
	Observer = obs.Observer
	// RunReport is the machine-readable summary of one observed run
	// (JSON summary plus CSV iteration trace).
	RunReport = obs.Report
	// ObsHub fans the observability of many concurrent runs — one Observer
	// per run — into a single HTTP surface with per-run routing and a
	// job-labeled aggregated /metrics (used by cmd/complxd).
	ObsHub = obs.Hub
	// RunStatus is the live per-run view served by an Observer's /status
	// endpoint (and, per job, by an ObsHub).
	RunStatus = obs.Status
)

// NewObserver returns an enabled Observer ready to attach to
// Options.Observer. One observer should watch one placement run at a time;
// call Reset between sequential runs.
func NewObserver() *Observer { return obs.New() }

// NewObsHub returns an empty observer hub for multi-run processes.
func NewObsHub() *ObsHub { return obs.NewHub() }

// Cell kinds.
const (
	Std       = netlist.Std
	MacroCell = netlist.Macro
	Terminal  = netlist.Terminal
)

// Net decompositions for the quadratic interconnect model (paper §2, §S1).
const (
	// ModelB2B is the Bound2Bound model (default): exact HPWL at the
	// linearization point.
	ModelB2B = netmodel.B2B
	// ModelClique connects all pin pairs.
	ModelClique = netmodel.Clique
	// ModelStar uses auxiliary net-center variables.
	ModelStar = netmodel.Star
	// ModelHybrid uses cliques for small nets and B2B otherwise.
	ModelHybrid = netmodel.Hybrid
)

// NewBuilder returns a netlist builder for a design with the given name.
func NewBuilder(name string) *Builder { return netlist.NewBuilder(name) }

// ReadBookshelf reads an ISPD Bookshelf .aux benchmark; it returns the
// netlist and the design's target density (1.0 when none is specified).
func ReadBookshelf(auxPath string) (*Netlist, float64, error) {
	return bookshelf.ReadNetlist(auxPath)
}

// WriteBookshelf writes nl as a Bookshelf benchmark under dir.
func WriteBookshelf(dir string, nl *Netlist, targetDensity float64) error {
	return bookshelf.WriteNetlist(dir, nl, targetDensity)
}

// WritePlacement writes only the .pl placement file for nl.
var WritePlacement = bookshelf.WritePl

// ApplyPlacement overlays a Bookshelf .pl file's positions onto nl.
func ApplyPlacement(nl *Netlist, plPath string) error {
	return bookshelf.ApplyPl(plPath, nl)
}

// MSTWirelength returns the summed rectilinear minimum-spanning-tree length
// over all nets — a tighter multi-pin wirelength estimate than HPWL.
func MSTWirelength(nl *Netlist) float64 { return netmodel.MST(nl) }

// SteinerWirelength returns the summed rectilinear Steiner-tree estimate
// (exact HPWL for nets of degree <= 3; 0.87x MST above).
func SteinerWirelength(nl *Netlist) float64 { return netmodel.TotalSteinerEstimate(nl) }

// Generate builds a deterministic synthetic benchmark (see BenchSpec).
func Generate(spec BenchSpec) (*Netlist, error) { return gen.Generate(spec) }

// Benchmarks2005 and Benchmarks2006 return the ISPD-analog suites used by
// the paper reproduction.
func Benchmarks2005() []BenchSpec { return gen.Suite2005() }

// Benchmarks2006 returns the ISPD 2006 analog suite (movable macros and
// per-design density targets).
func Benchmarks2006() []BenchSpec { return gen.Suite2006() }

// BenchmarkByName finds a suite spec by benchmark name.
func BenchmarkByName(name string) (BenchSpec, bool) { return gen.ByName(name) }

// ScaleBenchmark shrinks or grows a spec's cell count by factor f.
func ScaleBenchmark(s BenchSpec, f float64) BenchSpec { return gen.Scaled(s, f) }

// Algorithm selects the global placement engine.
type Algorithm int

const (
	// AlgComPLx is the paper's algorithm (default).
	AlgComPLx Algorithm = iota
	// AlgSimPL is the SimPL special case (linear λ schedule).
	AlgSimPL
	// AlgFastPlaceCS is the FastPlace-style cell-shifting baseline.
	AlgFastPlaceCS
	// AlgNLP is the nonlinear log-sum-exp penalty-method baseline.
	AlgNLP
	// AlgRQL is the RQL-style baseline: quadratic placement with local
	// diffusion spreading and relaxed (thresholded) anchor forces.
	AlgRQL
)

func (a Algorithm) String() string {
	switch a {
	case AlgComPLx:
		return "complx"
	case AlgSimPL:
		return "simpl"
	case AlgFastPlaceCS:
		return "fastplace-cs"
	case AlgNLP:
		return "nlp"
	case AlgRQL:
		return "rql"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts a name ("complx", "simpl", "fastplace-cs",
// "nlp") into an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "complx":
		return AlgComPLx, nil
	case "simpl":
		return AlgSimPL, nil
	case "fastplace-cs", "fastplace":
		return AlgFastPlaceCS, nil
	case "nlp":
		return AlgNLP, nil
	case "rql":
		return AlgRQL, nil
	}
	return 0, fmt.Errorf("complx: unknown algorithm %q", s)
}

// Options configures a full placement run (global placement, legalization,
// detailed placement).
type Options struct {
	// Algorithm selects the global placement engine (default AlgComPLx).
	Algorithm Algorithm
	// TargetDensity is the utilization limit γ in (0, 1]; default 1.
	TargetDensity float64
	// MaxIterations bounds global placement iterations (0 → engine default).
	MaxIterations int

	// FinestGrid disables the coarse-to-fine projection grid schedule
	// (Table 1 "Finest Grid" configuration).
	FinestGrid bool
	// ProjectionDP post-processes every feasibility projection with
	// legalization + detailed placement (Table 1 "P_C += FastPlace-DP").
	ProjectionDP bool
	// UseLSE switches ComPLx/SimPL to the log-sum-exp interconnect model;
	// UsePNorm to the p,β-regularization of §S1. At most one may be set.
	UseLSE   bool
	UsePNorm bool
	// Model selects the quadratic net decomposition for ComPLx/SimPL
	// (default ModelB2B).
	Model NetModel
	// Precond selects the CG preconditioner for the quadratic primal step:
	// "jacobi", "ssor", "ic0", "mg", or ""/"auto" for the size heuristic
	// (Jacobi on small designs, IC(0) at scale). Jacobi reproduces the
	// historical solver bit for bit; the others trade a cheap setup for
	// fewer CG iterations per solve.
	Precond string

	// SkipLegalize and SkipDetailed end the flow after global placement or
	// legalization respectively. Designs without rows skip both
	// automatically.
	SkipLegalize bool
	SkipDetailed bool
	// AbacusLegalizer replaces the Tetris greedy with the Abacus-style
	// optimal within-row legalizer (lower displacement, more runtime).
	AbacusLegalizer bool
	// DetailedPasses bounds detailed placement sweeps (0 → default 3).
	DetailedPasses int

	// Routability enables SimPLR-style congestion-driven cell inflation in
	// the feasibility projection; RoutabilityAlpha scales the effect.
	Routability      bool
	RoutabilityAlpha float64

	// Clustered runs two-level placement for ComPLx/SimPL: heavy-edge
	// clustering halves the design, the coarse netlist is placed, the
	// placement is expanded and refined on the full design. Faster on
	// large designs at a small quality cost. Superseded by Multilevel,
	// which coarsens as deep as the design needs; the two are mutually
	// exclusive.
	Clustered bool

	// Multilevel runs the full multilevel V-cycle for ComPLx/SimPL
	// (DESIGN.md §13): the design is coarsened bottom-up by repeated
	// heavy-edge clustering to TargetCells movable cells, the coarsest
	// level is placed with the full iteration budget, and each finer level
	// is interpolated from the coarse placement and refined with a short
	// warm-started schedule. This is the path to million-cell designs:
	// expect a multiple-× speedup over a flat run within a few percent of
	// its wirelength. Supports Checkpoint (a mid-V-cycle snapshot resumes
	// at the level it was taken on); not compatible with Clustered or the
	// non-ComPLx/SimPL baselines.
	Multilevel MultilevelOptions

	// Portfolio runs a competitive portfolio/restart search for ComPLx/SimPL
	// (DESIGN.md §14): Members engine instances race under perturbed
	// configurations (λ ramp/damp, LSE primal, preconditioner choice,
	// jittered starting positions), meet at Rounds synchronization rounds
	// where each is scored by overflow-weighted HPWL, and the worst
	// CullFraction are reseeded by forking the leader's checkpoint state.
	// Member 0 always runs the unperturbed configuration and is never
	// culled, so the winner can only match or beat the flat run. The search
	// is deterministic for a fixed Seed at any Threads setting; Checkpoint
	// persists the whole member table, so an interrupted search resumes
	// bitwise. Mutually exclusive with Multilevel and Clustered; not
	// available for the non-ComPLx/SimPL baselines.
	Portfolio PortfolioOptions

	// CellPenalty weighs the Lagrangian penalty per movable cell
	// (timing/power criticalities γ⃗ of Formula 13).
	CellPenalty []float64

	// OnIteration observes global placement iterations.
	OnIteration func(IterStats)

	// Checkpoint enables persistent checkpoint/resume for the global
	// placement stage; see CheckpointOptions and DESIGN.md §10. Not
	// supported together with Clustered.
	Checkpoint CheckpointOptions

	// Observer, when non-nil, instruments the whole flow: pipeline spans
	// (global → legalize → detailed), metrics, the live /status view and
	// the final run report. Instrumentation only reads placement state, so
	// observed runs produce bitwise-identical placements; a nil observer
	// costs one branch per call site.
	Observer *Observer

	// Threads caps the parallel-kernel helpers this run may occupy,
	// independently of other concurrent runs in the same process. 0 (the
	// default) leaves the run uncapped up to the process-wide pool set by
	// SetThreads; n >= 1 admits at most n-1 pool helpers on top of the
	// calling goroutine, so Threads: 1 runs the kernels fully serial.
	// Like SetThreads, the budget only changes scheduling — placements are
	// bitwise identical at any setting.
	Threads int
}

// MultilevelOptions configures the multilevel V-cycle (Options.Multilevel).
// Zero values select the driver defaults.
type MultilevelOptions struct {
	// Enabled turns the V-cycle on.
	Enabled bool
	// TargetCells is the movable-cell count the coarsening descends to
	// before the coarsest solve (default 10000).
	TargetCells int
	// MaxLevels caps the number of coarsening passes (default 6).
	MaxLevels int
	// RefineIters is the per-level iteration budget of the warm-started
	// refinement levels below the coarsest (default 8).
	RefineIters int
}

// PortfolioOptions configures the competitive portfolio search
// (Options.Portfolio). Zero values select the driver defaults; explicit
// out-of-range values (Members < 2, Rounds < 1, CullFraction outside (0,1))
// are rejected up front with a *PlaceError of stage "options".
type PortfolioOptions struct {
	// Enabled turns the portfolio search on.
	Enabled bool
	// Members is the number of concurrent engine instances K (default 4).
	Members int
	// Rounds is the number of synchronization rounds the iteration budget
	// is split into (default 4).
	Rounds int
	// CullFraction is the fraction of members culled and reseeded at each
	// round boundary; floor(CullFraction·Members) members (default 0.25).
	CullFraction float64
	// Seed seeds the member perturbation RNG streams (default 1). The
	// whole search is a pure function of the seed.
	Seed int64
}

// Validate rejects unusable portfolio configurations with a *PlaceError of
// stage "options": Members < 2, Rounds < 1, CullFraction outside (0,1).
// Zero fields are validated at their defaults; disabled options are always
// valid. PlaceContext validates automatically; services can call this
// directly to reject a bad configuration before queueing a run.
func (o PortfolioOptions) Validate() error {
	if !o.Enabled {
		return nil
	}
	po := portfolio.Options{
		Members:      o.Members,
		Rounds:       o.Rounds,
		CullFraction: o.CullFraction,
		Seed:         o.Seed,
	}
	po.Fill()
	return po.Validate()
}

// PortfolioStats reports a portfolio search (Result.Portfolio): the winning
// member, its variant name, cull/reseed totals and the final per-member
// scores (overflow-weighted HPWL, +Inf for members that never completed a
// round).
type PortfolioStats = core.PortfolioStats

// Result reports a full placement run.
type Result struct {
	// HPWL and WHPWL are the final (legal, when legalization ran)
	// half-perimeter wirelengths.
	HPWL, WHPWL float64
	// ScaledHPWL is HPWL × (1 + overflow penalty) per the ISPD 2006
	// contest metric; OverflowPercent is the penalty in percent.
	ScaledHPWL      float64
	OverflowPercent float64

	// Global placement diagnostics.
	GlobalIterations int
	Converged        bool
	FinalLambda      float64
	DualityGap       float64
	History          []IterStats
	SelfConsistency  SelfConsistency

	// Cancelled reports that the run was cut short by context cancellation
	// or deadline expiry (see PlaceContext). The result then describes the
	// best placement found before the cancel — finished legally when
	// legalization was requested — and the accompanying error carries the
	// stage and iteration at which the cancel was observed.
	Cancelled bool

	// Resumed reports that global placement was primed from a checkpoint
	// (Options.Checkpoint.Resume with a matching snapshot on disk).
	Resumed bool
	// Portfolio reports the portfolio search when Options.Portfolio was
	// enabled; nil otherwise.
	Portfolio *PortfolioStats
	// Recovery is the structured solver-recovery log: one event per
	// fallback-ladder attempt and per failed checkpoint save. Empty on a
	// clean run.
	Recovery []RecoveryEvent

	// Flow stages actually run and their wall-clock durations.
	Legalized, Detailed   bool
	GlobalTime, LegalTime time.Duration
	DetailedTime, Total   time.Duration
	// Kernel timing breakdown of the global placement stage (ComPLx and
	// SimPL engines only): linear-system assembly, preconditioned-CG
	// solves, and the feasibility projection.
	AssemblyTime, SolveTime, ProjectionTime time.Duration
	// Precond is the resolved CG preconditioner of the global placement
	// stage, CGIterations the total CG inner iterations it spent, and
	// PrecondTime the wall-clock spent building/refreshing the
	// preconditioner (ComPLx and SimPL engines only).
	Precond        string
	CGIterations   int
	PrecondTime    time.Duration
	DetailedRefine DetailedStats
	// LegalViolations counts remaining legality violations (0 after a
	// successful legalization).
	LegalViolations int
}

// coreOptions converts the public facade Options into the global placement
// engine's core.Options. Every facade knob with a core counterpart is
// forwarded here and nowhere else — TestCoreOptionsForwarding fails when a
// new core.Options field appears without either a forwarding line below or
// an entry in that test's engine-internal allowlist.
func coreOptions(opt Options) core.Options {
	return core.Options{
		Model:            opt.Model,
		TargetDensity:    opt.TargetDensity,
		MaxIterations:    opt.MaxIterations,
		FinestGrid:       opt.FinestGrid,
		UseLSE:           opt.UseLSE,
		UsePNorm:         opt.UsePNorm,
		Routability:      opt.Routability,
		RoutabilityAlpha: opt.RoutabilityAlpha,
		CellPenalty:      opt.CellPenalty,
		OnIteration:      opt.OnIteration,
		Obs:              opt.Observer,
		Precond:          opt.Precond,
		Multilevel: core.MultilevelOptions{
			Enabled:     opt.Multilevel.Enabled,
			TargetCells: opt.Multilevel.TargetCells,
			MaxLevels:   opt.Multilevel.MaxLevels,
			RefineIters: opt.Multilevel.RefineIters,
		},
		Portfolio: core.PortfolioOptions{
			Enabled:      opt.Portfolio.Enabled,
			Members:      opt.Portfolio.Members,
			Rounds:       opt.Portfolio.Rounds,
			CullFraction: opt.Portfolio.CullFraction,
			Seed:         opt.Portfolio.Seed,
		},
	}
}

// isCancellation reports whether err stems from context cancellation or
// deadline expiry.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Place runs the full flow on nl in place and reports final metrics. The
// netlist is validated up-front (see Validate); malformed inputs return a
// *PlaceError instead of panicking deep inside a solver.
func Place(nl *Netlist, opt Options) (*Result, error) {
	return PlaceContext(context.Background(), nl, opt)
}

// PlaceContext is Place with cooperative cancellation. The context is
// observed deep inside the numerics — per CG iteration, per nonlinear line
// search, per projection region sweep and per legalization stripe — so the
// flow reacts within one inner sweep of cancellation or deadline expiry.
//
// Cancellation does not discard work: the best placement found so far is
// kept, and if legalization (and detailed placement) were requested they
// still run to completion on it, so the returned placement is legal and
// directly usable. The Result has Cancelled set and is returned together
// with a *PlaceError that wraps context.Canceled or
// context.DeadlineExceeded and records the stage and iteration at which
// the cancel was observed. Non-cancellation failures return a nil Result
// exactly as Place does.
func PlaceContext(ctx context.Context, nl *Netlist, opt Options) (*Result, error) {
	if opt.Threads > 0 {
		// Bind the per-run kernel budget to this goroutine for the whole
		// flow; parallel kernels pick it up via par.Current. The binding is
		// scheduling-only, so it stays out of the checkpoint fingerprint.
		var (
			res *Result
			err error
		)
		lim := par.NewLimit(opt.Threads)
		opt.Threads = 0 // bound below; avoids double-binding on re-entry
		par.With(lim, func() { res, err = PlaceContext(ctx, nl, opt) })
		return res, err
	}
	start := time.Now()
	if err := Validate(nl); err != nil {
		return nil, err
	}
	if opt.TargetDensity <= 0 || opt.TargetDensity > 1 {
		opt.TargetDensity = 1
	}
	if opt.Multilevel.Enabled {
		if opt.Clustered {
			return nil, perr.New(perr.StageValidate,
				"complx: Multilevel and Clustered are mutually exclusive")
		}
		if opt.Algorithm != AlgComPLx && opt.Algorithm != AlgSimPL {
			return nil, perr.New(perr.StageValidate,
				"complx: Multilevel requires the ComPLx or SimPL engine (got %v)", opt.Algorithm)
		}
	}
	if opt.Portfolio.Enabled {
		if opt.Multilevel.Enabled {
			return nil, perr.New(perr.StageOptions,
				"complx: Portfolio and Multilevel are mutually exclusive")
		}
		if opt.Clustered {
			return nil, perr.New(perr.StageOptions,
				"complx: Portfolio and Clustered are mutually exclusive")
		}
		if opt.Algorithm != AlgComPLx && opt.Algorithm != AlgSimPL {
			return nil, perr.New(perr.StageOptions,
				"complx: Portfolio requires the ComPLx or SimPL engine (got %v)", opt.Algorithm)
		}
		// Normalize to the filled values before validation and before the
		// checkpoint fingerprint is taken, so explicit defaults and zero
		// values are the same run.
		po := portfolio.Options{
			Members:      opt.Portfolio.Members,
			Rounds:       opt.Portfolio.Rounds,
			CullFraction: opt.Portfolio.CullFraction,
			Seed:         opt.Portfolio.Seed,
		}
		po.Fill()
		if err := po.Validate(); err != nil {
			return nil, err
		}
		opt.Portfolio.Members = po.Members
		opt.Portfolio.Rounds = po.Rounds
		opt.Portfolio.CullFraction = po.CullFraction
		opt.Portfolio.Seed = po.Seed
	}
	// Persistent checkpointing (after the density normalization above, so
	// the fingerprint sees canonical option values).
	ckptMgr, resumeState, pfResume, ckptErr := setupCheckpoint(nl, opt)
	if ckptErr != nil {
		return nil, ckptErr
	}
	res := &Result{}
	o := opt.Observer
	o.StartRun(obs.RunInfo{
		Design:    nl.Name,
		Algorithm: opt.Algorithm.String(),
		Cells:     nl.NumCells(),
		Nets:      nl.NumNets(),
		Pins:      nl.NumPins(),
	})
	var cancelErr error
	// markCancelled records the first observed cancellation and strips
	// cancellation from the context so the remaining stages still run to
	// completion on the best-so-far placement.
	markCancelled := func(err error) {
		if cancelErr == nil {
			cancelErr = err
		}
		res.Cancelled = true
		ctx = context.WithoutCancel(ctx)
	}

	gpStart := time.Now()
	o.SetPhase("global")
	globalSpan := o.StartSpan("global")
	coreOpt := coreOptions(opt)
	if ckptMgr != nil {
		// Assign only a non-nil manager: a typed-nil *chkpt.Manager stored in
		// the interface field would defeat the engine's `!= nil` guards.
		coreOpt.Checkpoint = ckptMgr
		coreOpt.Resume = resumeState
		coreOpt.PortfolioResume = pfResume
	}
	if opt.ProjectionDP {
		coreOpt.ProjectionRefine = func(n *Netlist) error {
			// Best-effort: a projection that cannot be legalized this early
			// is simply used as-is.
			if err := legalize.Legalize(n, legalize.Options{}); err != nil {
				return nil
			}
			_, err := detailed.Refine(n, detailed.Options{Passes: 1})
			_ = err
			return nil
		}
	}
	var err error
	if opt.Clustered && (opt.Algorithm == AlgComPLx || opt.Algorithm == AlgSimPL) {
		// Coarse level: place the clustered design with the full iteration
		// budget, then expand and refine on the fine design.
		cl, cerr := cluster.Cluster(nl, 1.0)
		if cerr != nil {
			return nil, cerr
		}
		coarseOpt := coreOpt
		coarseOpt.CellPenalty = nil // indices differ on the coarse design
		if opt.Algorithm == AlgSimPL {
			coarseOpt.Schedule = core.ScheduleSimPL
		}
		// A cancelled coarse pass is not fatal: its best-so-far placement
		// is expanded and the fine pass below immediately takes the cancel
		// path on the same context, preserving the expanded positions.
		if _, cerr := core.PlaceContext(ctx, cl.Coarse, coarseOpt); cerr != nil && !isCancellation(cerr) {
			return nil, cerr
		}
		cl.Expand()
		coreOpt.InitialSolves = 1
		if coreOpt.MaxIterations == 0 || coreOpt.MaxIterations > 25 {
			coreOpt.MaxIterations = 25
		}
	}
	switch opt.Algorithm {
	case AlgComPLx:
		var r *core.Result
		r, err = core.PlaceContext(ctx, nl, coreOpt)
		if r != nil {
			res.GlobalIterations = r.Iterations
			res.Converged = r.Converged
			res.FinalLambda = r.FinalLambda
			res.DualityGap = r.GapFinal
			res.History = r.History
			res.SelfConsistency = r.SelfCons
			res.AssemblyTime = r.AssemblyTime
			res.SolveTime = r.SolveTime
			res.ProjectionTime = r.ProjectionTime
			res.Precond = r.Precond
			res.CGIterations = r.CGIters
			res.PrecondTime = r.PrecondTime
			res.Resumed = r.Resumed
			res.Portfolio = r.Portfolio
			if r.Recovery != nil {
				res.Recovery = r.Recovery.Events
			}
		}
	case AlgSimPL:
		var r *core.Result
		r, err = baseline.SimPLContext(ctx, nl, coreOpt)
		if r != nil {
			res.GlobalIterations = r.Iterations
			res.Converged = r.Converged
			res.FinalLambda = r.FinalLambda
			res.DualityGap = r.GapFinal
			res.History = r.History
			res.SelfConsistency = r.SelfCons
			res.AssemblyTime = r.AssemblyTime
			res.SolveTime = r.SolveTime
			res.ProjectionTime = r.ProjectionTime
			res.Precond = r.Precond
			res.CGIterations = r.CGIters
			res.PrecondTime = r.PrecondTime
			res.Resumed = r.Resumed
			res.Portfolio = r.Portfolio
			if r.Recovery != nil {
				res.Recovery = r.Recovery.Events
			}
		}
	case AlgFastPlaceCS:
		fpOpt := baseline.FPOptions{
			TargetDensity: opt.TargetDensity,
			MaxIterations: opt.MaxIterations,
			Obs:           opt.Observer,
		}
		if ckptMgr != nil {
			fpOpt.Checkpoint = ckptMgr
			fpOpt.Resume = resumeState
		}
		var r *baseline.FPResult
		r, err = baseline.FastPlaceCSContext(ctx, nl, fpOpt)
		if r != nil {
			res.GlobalIterations = r.Iterations
			res.Converged = r.Converged
			res.Resumed = r.Resumed
			if r.Recovery != nil {
				res.Recovery = r.Recovery.Events
			}
		}
	case AlgNLP:
		nlpOpt := baseline.NLPOptions{
			TargetDensity: opt.TargetDensity,
			MaxIterations: opt.MaxIterations,
			Obs:           opt.Observer,
		}
		if ckptMgr != nil {
			nlpOpt.Checkpoint = ckptMgr
			nlpOpt.Resume = resumeState
		}
		var r *baseline.NLPResult
		r, err = baseline.NLPContext(ctx, nl, nlpOpt)
		if r != nil {
			res.GlobalIterations = r.Iterations
			res.Converged = r.Converged
			res.Resumed = r.Resumed
			if r.Recovery != nil {
				res.Recovery = r.Recovery.Events
			}
		}
	case AlgRQL:
		rqlOpt := baseline.RQLOptions{
			TargetDensity: opt.TargetDensity,
			MaxIterations: opt.MaxIterations,
			Obs:           opt.Observer,
		}
		if ckptMgr != nil {
			rqlOpt.Checkpoint = ckptMgr
			rqlOpt.Resume = resumeState
		}
		var r *baseline.RQLResult
		r, err = baseline.RQLContext(ctx, nl, rqlOpt)
		if r != nil {
			res.GlobalIterations = r.Iterations
			res.Converged = r.Converged
			res.Resumed = r.Resumed
			if r.Recovery != nil {
				res.Recovery = r.Recovery.Events
			}
		}
	default:
		globalSpan.End()
		return nil, fmt.Errorf("complx: unknown algorithm %v", opt.Algorithm)
	}
	globalSpan.End()
	if err != nil {
		if !isCancellation(err) {
			return nil, err
		}
		// Global placement was cancelled but applied its best-so-far
		// placement; finish the remaining stages uninterrupted.
		markCancelled(err)
	}
	res.GlobalTime = time.Since(gpStart)

	if !opt.SkipLegalize && len(nl.Rows) > 0 {
		lgStart := time.Now()
		o.SetPhase("legalize")
		lg := legalize.LegalizeCtx
		if opt.AbacusLegalizer {
			lg = legalize.LegalizeAbacusCtx
		}
		lgOpt := legalize.Options{Obs: opt.Observer}
		if err := lg(ctx, nl, lgOpt); err != nil {
			if !isCancellation(err) {
				return nil, perr.Wrap(perr.StageLegalize, fmt.Errorf("complx: legalization: %w", err))
			}
			// Cancelled mid-legalization: rerun it uninterrupted (ctx is
			// cancellation-free after markCancelled) so the returned
			// placement is still legal.
			markCancelled(err)
			if err := lg(ctx, nl, lgOpt); err != nil {
				return nil, perr.Wrap(perr.StageLegalize, fmt.Errorf("complx: legalization: %w", err))
			}
		}
		res.LegalTime = time.Since(lgStart)
		res.Legalized = true
		res.LegalViolations = len(legalize.Check(nl, 1e-6))

		if !opt.SkipDetailed {
			dpStart := time.Now()
			o.SetPhase("detailed")
			dpSpan := o.StartSpan("detailed")
			st, err := detailed.Refine(nl, detailed.Options{Passes: opt.DetailedPasses})
			dpSpan.End()
			if err != nil {
				return nil, perr.Wrap(perr.StageDetailed, fmt.Errorf("complx: detailed placement: %w", err))
			}
			res.DetailedRefine = st
			res.DetailedTime = time.Since(dpStart)
			res.Detailed = true
		}
	}

	res.HPWL = netmodel.HPWL(nl)
	res.WHPWL = netmodel.WeightedHPWL(nl)
	res.ScaledHPWL, res.OverflowPercent = ScaledHPWL(nl, opt.TargetDensity)
	res.Total = time.Since(start)
	o.FinishRun(obs.FinalStats{
		HPWL:            res.HPWL,
		WeightedHPWL:    res.WHPWL,
		ScaledHPWL:      res.ScaledHPWL,
		OverflowPercent: res.OverflowPercent,
		FinalLambda:     res.FinalLambda,
		DualityGap:      res.DualityGap,
		Iterations:      res.GlobalIterations,
		Converged:       res.Converged,
		Cancelled:       res.Cancelled,
		Legalized:       res.Legalized,
		Detailed:        res.Detailed,
		LegalViolations: res.LegalViolations,
		TotalSeconds:    res.Total.Seconds(),
		Precond:         res.Precond,
		CGIters:         res.CGIterations,
	})
	if cancelErr != nil {
		return res, cancelErr
	}
	return res, nil
}

// HPWL returns the unweighted half-perimeter wirelength of nl.
func HPWL(nl *Netlist) float64 { return netmodel.HPWL(nl) }

// WeightedHPWL returns the net-weight-scaled HPWL of nl.
func WeightedHPWL(nl *Netlist) float64 { return netmodel.WeightedHPWL(nl) }

// ScaledHPWL evaluates the ISPD 2006 contest metric at the given target
// density: scaled HPWL and the overflow penalty in percent. Designs too
// degenerate to carry the contest bin grid (e.g. a zero-area core) report
// the plain HPWL with zero penalty.
func ScaledHPWL(nl *Netlist, targetDensity float64) (scaled, penaltyPercent float64) {
	if targetDensity <= 0 || targetDensity > 1 {
		targetDensity = 1
	}
	g, err := density.ContestGrid(nl, targetDensity)
	if err != nil {
		return netmodel.HPWL(nl), 0
	}
	g.AccumulateMovable(nl)
	return g.ScaledHPWL(netmodel.HPWL(nl)), g.PenaltyPercent()
}

// CheckLegal verifies row/site alignment and overlap-freedom; it returns a
// human-readable description per violation (empty when legal).
func CheckLegal(nl *Netlist) []string {
	var out []string
	for _, v := range legalize.Check(nl, 1e-6) {
		out = append(out, fmt.Sprintf("%s: %s: %s", v.Kind, v.Cell, v.Msg))
	}
	return out
}

// AnalyzeTiming runs the STA-lite analyzer with the given delay model
// (zeros select defaults) and returns the report.
func AnalyzeTiming(nl *Netlist, wireDelay, cellDelay float64) *TimingReport {
	return timing.New(nl, timing.Options{WireDelay: wireDelay, CellDelay: cellDelay}).Analyze()
}

// CriticalPaths returns up to k most critical paths (cell index sequences
// with their nets and delays).
func CriticalPaths(nl *Netlist, k int) []timing.Path {
	return timing.New(nl, timing.Options{}).CriticalPaths(k)
}

// TimingCriticalities converts a timing report into the per-movable penalty
// weights of Formula 13 (1 + boost·criticality).
func TimingCriticalities(nl *Netlist, r *TimingReport, boost float64) []float64 {
	return timing.CellCriticalities(nl, r, boost)
}

// PrintDensityMap writes an ASCII movable-density heat map of nl to w.
func PrintDensityMap(w io.Writer, nl *Netlist, cols, rows int, target float64) {
	viz.DensityMap(w, nl, cols, rows, target)
}

// PrintMacroMap writes an ASCII map of macro and fixed-object outlines.
func PrintMacroMap(w io.Writer, nl *Netlist, cols, rows int) {
	viz.MacroMap(w, nl, cols, rows)
}

// PrintCongestionMap writes an ASCII RUDY congestion map; capacity <= 0
// self-calibrates to the design's average demand.
func PrintCongestionMap(w io.Writer, nl *Netlist, cols, rows int, capacity float64) {
	viz.CongestionMap(w, nl, cols, rows, capacity)
}

// BoostNetWeights multiplies the weights of the given nets (timing-driven
// net weighting, §S6); the returned slice restores them via
// RestoreNetWeights.
func BoostNetWeights(nl *Netlist, nets []int, factor float64) []float64 {
	return timing.BoostNetWeights(nl, nets, factor)
}

// RestoreNetWeights assigns absolute weights to the listed nets.
func RestoreNetWeights(nl *Netlist, nets []int, weights []float64) {
	timing.SetNetWeights(nl, nets, weights)
}

// ActivityNetWeights applies power-driven net weighting: each net's weight
// is scaled by 1 + alpha·activity(driver cell). activity is indexed by cell
// and clamped to [0, 1]. The previous weights of all nets are returned;
// restore them with RestoreNetWeights(nl, AllNets(nl), old). An activity
// slice that does not match the cell count returns an error and leaves the
// weights untouched.
func ActivityNetWeights(nl *Netlist, activity []float64, alpha float64) ([]float64, error) {
	return timing.ActivityNetWeights(nl, activity, alpha)
}

// AllNets returns every net index of nl.
func AllNets(nl *Netlist) []int { return timing.AllNets(nl) }
