package complx_test

import (
	"context"
	"math"
	"sort"
	"testing"

	"complx"
)

// pfTraceRow is one observed member iteration with its float payloads
// captured as raw bits, so comparisons are bitwise rather than approximate.
type pfTraceRow struct {
	member, iter, level        int
	hpwl, overflow, lambdaBits uint64
}

// pfRun is everything a portfolio run must reproduce exactly: the winner,
// the per-member final scores, every member's iteration trajectory and the
// final cell positions.
type pfRun struct {
	winner    int
	variant   string
	scores    []uint64
	trace     []pfTraceRow
	positions [][2]uint64
}

// portfolioRun places a fixed design with a portfolio search at the given
// thread budget and returns the bitwise fingerprint of the run. The trace
// is sorted by (member, iter, level): members run concurrently, so the
// observer's append order is scheduler-dependent, but the per-member
// content must not be.
func portfolioRun(t *testing.T, threads int) pfRun {
	t.Helper()
	nl := genOrDie(t, "pf-det", 420, 21)
	observer := complx.NewObserver()
	res, err := complx.PlaceContext(context.Background(), nl, complx.Options{
		MaxIterations: 18,
		Threads:       threads,
		Observer:      observer,
		Portfolio: complx.PortfolioOptions{
			Enabled: true, Members: 4, Rounds: 3, CullFraction: 0.25, Seed: 42,
		},
	})
	if err != nil {
		t.Fatalf("threads=%d: %v", threads, err)
	}
	if res.Portfolio == nil {
		t.Fatalf("threads=%d: no portfolio stats on result", threads)
	}
	run := pfRun{
		winner:    res.Portfolio.Winner,
		variant:   res.Portfolio.WinnerVariant,
		positions: snapshotPositions(nl),
	}
	for _, s := range res.Portfolio.Scores {
		run.scores = append(run.scores, math.Float64bits(s))
	}
	for _, s := range observer.Report().Trace {
		run.trace = append(run.trace, pfTraceRow{
			member: s.Member, iter: s.Iter, level: s.Level,
			hpwl:       math.Float64bits(s.HPWL),
			overflow:   math.Float64bits(s.Overflow),
			lambdaBits: math.Float64bits(s.Lambda),
		})
	}
	sort.Slice(run.trace, func(a, b int) bool {
		x, y := run.trace[a], run.trace[b]
		if x.member != y.member {
			return x.member < y.member
		}
		if x.iter != y.iter {
			return x.iter < y.iter
		}
		return x.level < y.level
	})
	return run
}

// TestPortfolioDeterminism pins the portfolio search's determinism contract:
// for a fixed seed, runs at 1, 2 and 8 worker threads produce bitwise
// identical member trajectories, final member scores, the same winner and
// bitwise identical final positions. Thread budgets change scheduling only,
// never results; under -race this also proves the member fan-out, the
// shared observer and the cull/reseed bookkeeping are data-race free.
func TestPortfolioDeterminism(t *testing.T) {
	ref := portfolioRun(t, 1)
	if len(ref.trace) == 0 {
		t.Fatal("reference run recorded no member iterations")
	}
	if len(ref.scores) != 4 {
		t.Fatalf("reference run scored %d members, want 4", len(ref.scores))
	}
	for _, threads := range []int{2, 8} {
		run := portfolioRun(t, threads)
		if run.winner != ref.winner || run.variant != ref.variant {
			t.Errorf("threads=%d: winner %d (%s), want %d (%s)",
				threads, run.winner, run.variant, ref.winner, ref.variant)
		}
		if len(run.scores) != len(ref.scores) {
			t.Fatalf("threads=%d: %d member scores, want %d", threads, len(run.scores), len(ref.scores))
		}
		for m := range ref.scores {
			if run.scores[m] != ref.scores[m] {
				t.Errorf("threads=%d: member %d score %x differs from reference %x",
					threads, m, run.scores[m], ref.scores[m])
			}
		}
		if len(run.trace) != len(ref.trace) {
			t.Fatalf("threads=%d: %d trace rows, want %d", threads, len(run.trace), len(ref.trace))
		}
		for i := range ref.trace {
			if run.trace[i] != ref.trace[i] {
				t.Fatalf("threads=%d: trace row %d = %+v, want %+v",
					threads, i, run.trace[i], ref.trace[i])
			}
		}
		if len(run.positions) != len(ref.positions) {
			t.Fatalf("threads=%d: %d cells, want %d", threads, len(run.positions), len(ref.positions))
		}
		for c := range ref.positions {
			if run.positions[c] != ref.positions[c] {
				t.Fatalf("threads=%d: cell %d position differs from the single-threaded run", threads, c)
			}
		}
	}
}
