package complx

import (
	"context"
	"math"
	"testing"
)

// invariantDesigns is the synthetic design matrix for the property suite:
// a plain standard-cell design, a fixed-macro design (ISPD-2005 style), a
// movable-macro design (ISPD-2006 style), and a dense high-utilization
// design. Kept small so the full placer × design × legalizer product stays
// fast under -race.
func invariantDesigns() []BenchSpec {
	return []BenchSpec{
		{Name: "inv-std", NumCells: 260, Seed: 7, Utilization: 0.7},
		{Name: "inv-fixed-macro", NumCells: 240, Seed: 11, Utilization: 0.65,
			NumMacros: 3, MacroAreaFrac: 0.2},
		{Name: "inv-mov-macro", NumCells: 220, Seed: 13, Utilization: 0.6,
			NumMacros: 2, MacroAreaFrac: 0.15, MovableMacros: true},
		{Name: "inv-dense", NumCells: 300, Seed: 17, Utilization: 0.85,
			GlobalNetFrac: 0.12},
	}
}

// naiveHPWL recomputes the weighted half-perimeter wirelength from first
// principles — a bounding box per net over absolute pin positions —
// independently of internal/netmodel, so the two implementations check each
// other.
func naiveHPWL(nl *Netlist) float64 {
	var total float64
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		if len(net.Pins) < 2 {
			continue
		}
		xmin, ymin := math.Inf(1), math.Inf(1)
		xmax, ymax := math.Inf(-1), math.Inf(-1)
		for _, pi := range net.Pins {
			p := &nl.Pins[pi]
			c := &nl.Cells[p.Cell]
			x := c.X + c.W/2 + p.DX
			y := c.Y + c.H/2 + p.DY
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
		total += net.Weight * ((xmax - xmin) + (ymax - ymin))
	}
	return total
}

// TestPlacementInvariants is the property-based invariant suite: every
// placer × every synthetic design × both legalizers must satisfy the
// structural placement contracts regardless of quality:
//
//  1. fixed cells (terminals, pads, fixed macros) never move;
//  2. every movable cell ends inside the core area;
//  3. after legalization the placement is overlap-free and row-aligned
//     (CheckLegal agrees with Result.LegalViolations);
//  4. Result.HPWL matches an independent recomputation of the wirelength;
//  5. the per-iteration overflow trace is finite and non-negative, and
//     iteration indices strictly increase.
func TestPlacementInvariants(t *testing.T) {
	algos := []Algorithm{AlgComPLx, AlgSimPL, AlgFastPlaceCS, AlgNLP, AlgRQL}
	legalizers := []struct {
		name   string
		abacus bool
	}{{"tetris", false}, {"abacus", true}}
	for _, spec := range invariantDesigns() {
		for _, alg := range algos {
			for _, lg := range legalizers {
				spec, alg, lg := spec, alg, lg
				t.Run(spec.Name+"/"+alg.String()+"/"+lg.name, func(t *testing.T) {
					t.Parallel()
					nl, err := Generate(spec)
					if err != nil {
						t.Fatal(err)
					}
					before := nl.SnapshotPositions()
					observer := NewObserver()
					res, err := PlaceContext(context.Background(), nl, Options{
						Algorithm:       alg,
						MaxIterations:   30,
						AbacusLegalizer: lg.abacus,
						Observer:        observer,
					})
					if err != nil {
						t.Fatal(err)
					}
					checkInvariants(t, nl, before, res)
					checkTraceInvariants(t, observer)
				})
			}
		}
	}
}

// TestPortfolioPlacementInvariants runs the portfolio placer through the
// same structural contracts: the winner's placement must satisfy every
// invariant the flat placers do, regardless of which perturbed member won.
// The trace check differs from the flat one — members race concurrently,
// so iteration indices only increase within a member, not globally.
func TestPortfolioPlacementInvariants(t *testing.T) {
	legalizers := []struct {
		name   string
		abacus bool
	}{{"tetris", false}, {"abacus", true}}
	for _, spec := range invariantDesigns() {
		for _, lg := range legalizers {
			spec, lg := spec, lg
			t.Run(spec.Name+"/"+lg.name, func(t *testing.T) {
				t.Parallel()
				nl, err := Generate(spec)
				if err != nil {
					t.Fatal(err)
				}
				before := nl.SnapshotPositions()
				observer := NewObserver()
				res, err := PlaceContext(context.Background(), nl, Options{
					MaxIterations:   30,
					AbacusLegalizer: lg.abacus,
					Observer:        observer,
					Portfolio:       PortfolioOptions{Enabled: true, Members: 3, Rounds: 2, Seed: 19},
				})
				if err != nil {
					t.Fatal(err)
				}
				checkInvariants(t, nl, before, res)
				checkPortfolioTraceInvariants(t, observer)
				pf := res.Portfolio
				if pf == nil {
					t.Fatal("portfolio run carries no portfolio stats")
				}
				if pf.Members != 3 || pf.Rounds != 2 {
					t.Errorf("stats report %d members / %d rounds, want 3 / 2", pf.Members, pf.Rounds)
				}
				if pf.Winner < 0 || pf.Winner >= pf.Members {
					t.Errorf("winner %d out of range [0,%d)", pf.Winner, pf.Members)
				}
				if len(pf.Scores) != pf.Members {
					t.Fatalf("%d member scores, want %d", len(pf.Scores), pf.Members)
				}
				for m, s := range pf.Scores {
					if math.IsNaN(s) || s < 0 {
						t.Errorf("member %d score = %g, want finite non-negative", m, s)
					}
					if s < pf.Scores[pf.Winner] {
						t.Errorf("member %d score %g beats the declared winner's %g", m, s, pf.Scores[pf.Winner])
					}
				}
			})
		}
	}
}

// checkPortfolioTraceInvariants is the per-member variant of the trace
// check: every member's iteration indices strictly increase and every
// recorded value is finite and non-negative.
func checkPortfolioTraceInvariants(t *testing.T, observer *Observer) {
	t.Helper()
	trace := observer.Report().Trace
	if len(trace) == 0 {
		t.Fatal("observer recorded no iterations")
	}
	prev := map[int]int{}
	members := map[int]bool{}
	for _, s := range trace {
		members[s.Member] = true
		if p, ok := prev[s.Member]; ok && s.Iter <= p {
			t.Errorf("member %d: iteration indices not strictly increasing: %d after %d", s.Member, s.Iter, p)
		}
		prev[s.Member] = s.Iter
		if math.IsNaN(s.Overflow) || math.IsInf(s.Overflow, 0) || s.Overflow < 0 {
			t.Errorf("member %d iter %d: overflow = %g, want finite non-negative", s.Member, s.Iter, s.Overflow)
		}
		for name, v := range map[string]float64{
			"lambda": s.Lambda, "phi": s.Phi, "phi_upper": s.PhiUpper,
			"pi": s.Pi, "lagrangian": s.L, "hpwl": s.HPWL,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Errorf("member %d iter %d: %s = %g, want finite non-negative", s.Member, s.Iter, name, v)
			}
		}
	}
	if len(members) < 2 {
		t.Errorf("trace covers %d member(s), want every racing member", len(members))
	}
}

func checkInvariants(t *testing.T, nl *Netlist, before []Point, res *Result) {
	t.Helper()
	// 1. Fixed cells never move.
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Movable() {
			continue
		}
		if c.X != before[i].X || c.Y != before[i].Y {
			t.Errorf("fixed cell %q moved: %v -> (%g,%g)", c.Name, before[i], c.X, c.Y)
		}
	}
	// 2. Movables inside the core (small slack for FP round-off).
	const eps = 1e-6
	core := nl.Core
	for _, i := range nl.Movables() {
		c := &nl.Cells[i]
		if c.X < core.XMin-eps || c.Y < core.YMin-eps ||
			c.X+c.W > core.XMax+eps || c.Y+c.H > core.YMax+eps {
			t.Errorf("movable %q outside core: cell [%g,%g]x[%g,%g], core %v",
				c.Name, c.X, c.X+c.W, c.Y, c.Y+c.H, core)
		}
	}
	// 3. Overlap-free and on rows after legalization; the result's violation
	// count must agree with an independent legality check.
	if res.Legalized {
		viol := CheckLegal(nl)
		if len(viol) != res.LegalViolations {
			t.Errorf("CheckLegal reports %d violations, Result.LegalViolations = %d: %v",
				len(viol), res.LegalViolations, viol[:min(3, len(viol))])
		}
		if len(viol) != 0 {
			t.Errorf("placement not legal: %v", viol[:min(3, len(viol))])
		}
	}
	// 4. Result.HPWL matches independent recomputation.
	if got := naiveHPWL(nl); !approxEqual(got, res.WHPWL, 1e-9) {
		t.Errorf("independent weighted HPWL = %g, Result.WHPWL = %g", got, res.WHPWL)
	}
	if got := HPWL(nl); !approxEqual(got, res.HPWL, 1e-12) {
		t.Errorf("HPWL(nl) = %g, Result.HPWL = %g", got, res.HPWL)
	}
	if res.HPWL <= 0 || math.IsNaN(res.HPWL) || math.IsInf(res.HPWL, 0) {
		t.Errorf("Result.HPWL = %g, want finite positive", res.HPWL)
	}
}

func checkTraceInvariants(t *testing.T, observer *Observer) {
	t.Helper()
	trace := observer.Report().Trace
	if len(trace) == 0 {
		t.Fatal("observer recorded no iterations")
	}
	prev := 0
	for _, s := range trace {
		if s.Iter <= prev {
			t.Errorf("iteration indices not strictly increasing: %d after %d", s.Iter, prev)
		}
		prev = s.Iter
		if math.IsNaN(s.Overflow) || math.IsInf(s.Overflow, 0) || s.Overflow < 0 {
			t.Errorf("iter %d: overflow = %g, want finite non-negative", s.Iter, s.Overflow)
		}
		for name, v := range map[string]float64{
			"lambda": s.Lambda, "phi": s.Phi, "phi_upper": s.PhiUpper,
			"pi": s.Pi, "lagrangian": s.L, "hpwl": s.HPWL,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Errorf("iter %d: %s = %g, want finite non-negative", s.Iter, name, v)
			}
		}
	}
}

func approxEqual(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*scale
}
