package complx_test

import (
	"fmt"

	"complx"
)

// ExamplePlace places a tiny hand-built design and reports that the flow
// produced a legal result.
func ExamplePlace() {
	b := complx.NewBuilder("doc")
	b.SetCore(complx.Rect{XMax: 20, YMax: 20})
	b.AddUniformRows(20, 1, 1)
	c1 := b.AddCell("c1", 2, 1)
	c2 := b.AddCell("c2", 2, 1)
	west := b.AddFixed("west", 0, 9, 1, 1)
	east := b.AddFixed("east", 19, 9, 1, 1)
	b.AddNet("n1", 1, []complx.PinSpec{{Cell: west}, {Cell: c1}})
	b.AddNet("n2", 1, []complx.PinSpec{{Cell: c1}, {Cell: c2}})
	b.AddNet("n3", 1, []complx.PinSpec{{Cell: c2}, {Cell: east}})
	nl, err := b.Build()
	if err != nil {
		panic(err)
	}

	res, err := complx.Place(nl, complx.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("legal:", res.Legalized && res.LegalViolations == 0)
	fmt.Println("positive wirelength:", res.HPWL > 0)
	// Output:
	// legal: true
	// positive wirelength: true
}

// ExampleGenerate builds a synthetic ISPD-analog benchmark.
func ExampleGenerate() {
	nl, err := complx.Generate(complx.BenchSpec{Name: "demo", NumCells: 500, Seed: 1})
	if err != nil {
		panic(err)
	}
	st := nl.Stats()
	fmt.Println("movable cells:", st.Movable)
	fmt.Println("has nets:", st.Nets > 0)
	// Output:
	// movable cells: 500
	// has nets: true
}

// ExampleBenchmarkByName looks up a named suite benchmark and scales it.
func ExampleBenchmarkByName() {
	spec, ok := complx.BenchmarkByName("bigblue4")
	fmt.Println("found:", ok)
	small := complx.ScaleBenchmark(spec, 0.25)
	fmt.Println("scaled cells:", small.NumCells)
	// Output:
	// found: true
	// scaled cells: 4000
}

// ExampleAnalyzeTiming runs the STA-lite analyzer after placement.
func ExampleAnalyzeTiming() {
	nl, err := complx.Generate(complx.BenchSpec{Name: "t", NumCells: 300, Seed: 2})
	if err != nil {
		panic(err)
	}
	if _, err := complx.Place(nl, complx.Options{MaxIterations: 15}); err != nil {
		panic(err)
	}
	rep := complx.AnalyzeTiming(nl, 0, 0)
	fmt.Println("has delay:", rep.MaxDelay > 0)
	fmt.Println("paths found:", len(complx.CriticalPaths(nl, 2)) > 0)
	// Output:
	// has delay: true
	// paths found: true
}
