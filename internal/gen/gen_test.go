package gen

import (
	"math"
	"runtime"
	"testing"

	"complx/internal/netlist"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "d", NumCells: 500, Seed: 7, NumMacros: 3, MacroAreaFrac: 0.2}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCells() != b.NumCells() || a.NumNets() != b.NumNets() || a.NumPins() != b.NumPins() {
		t.Fatal("same spec produced different designs")
	}
	for i := range a.Cells {
		if a.Cells[i].X != b.Cells[i].X || a.Cells[i].Y != b.Cells[i].Y || a.Cells[i].W != b.Cells[i].W {
			t.Fatalf("cell %d differs", i)
		}
	}
}

func TestGenerateValidates(t *testing.T) {
	nl, err := Generate(Spec{Name: "v", NumCells: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	st := nl.Stats()
	if st.Movable != 300 {
		t.Errorf("movable = %d", st.Movable)
	}
	if st.Nets < 250 || st.Nets > 400 {
		t.Errorf("nets = %d, want ~315", st.Nets)
	}
	if st.MaxNetDegree > 14 {
		t.Errorf("max degree = %d", st.MaxNetDegree)
	}
	if len(nl.Rows) == 0 {
		t.Error("no rows")
	}
}

func TestUtilizationHonored(t *testing.T) {
	for _, util := range []float64{0.4, 0.7, 0.9} {
		nl, err := Generate(Spec{Name: "u", NumCells: 1000, Seed: 2, Utilization: util})
		if err != nil {
			t.Fatal(err)
		}
		got := nl.Utilization()
		if math.Abs(got-util) > 0.1*util {
			t.Errorf("util %v: measured %v", util, got)
		}
	}
}

func TestFixedVsMovableMacros(t *testing.T) {
	fixed, err := Generate(Spec{Name: "f", NumCells: 400, Seed: 3, NumMacros: 5, MacroAreaFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if got := fixed.Stats().Macros; got != 0 {
		t.Errorf("fixed-macro design has %d movable macros", got)
	}
	movable, err := Generate(Spec{
		Name: "m", NumCells: 400, Seed: 3, NumMacros: 5, MacroAreaFrac: 0.3, MovableMacros: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := movable.Stats().Macros; got != 5 {
		t.Errorf("movable macros = %d, want 5", got)
	}
}

func TestPadsOnPeriphery(t *testing.T) {
	nl, err := Generate(Spec{Name: "p", NumCells: 400, Seed: 4, NumPads: 20})
	if err != nil {
		t.Fatal(err)
	}
	pads := 0
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Kind != netlist.Terminal || c.Name[0] != 'p' {
			continue
		}
		pads++
		onEdge := c.X <= 1 || c.Y <= 1 || c.X >= nl.Core.XMax-2 || c.Y >= nl.Core.YMax-2
		if !onEdge {
			t.Errorf("pad %q at (%v, %v) not on periphery", c.Name, c.X, c.Y)
		}
	}
	if pads != 20 {
		t.Errorf("pads = %d", pads)
	}
}

// TestLocality checks that local nets have much shorter natural spans than
// uniform-random pairs would.
func TestLocality(t *testing.T) {
	nl, err := Generate(Spec{Name: "l", NumCells: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var spanSum float64
	cnt := 0
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range net.Pins {
			x := nl.PinPosition(p).X
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		spanSum += hi - lo
		cnt++
	}
	avgSpan := spanSum / float64(cnt)
	// Uniform pairs on a side-S core would average ~S/3 span; locality
	// should bring this well below S/5.
	if S := nl.Core.Width(); avgSpan > S/5 {
		t.Errorf("avg span %v vs core %v: not local enough", avgSpan, S)
	}
}

func TestSuites(t *testing.T) {
	s5, s6 := Suite2005(), Suite2006()
	if len(s5) != 8 || len(s6) != 8 {
		t.Fatalf("suite sizes %d, %d", len(s5), len(s6))
	}
	names := map[string]bool{}
	for _, s := range append(append([]Spec{}, s5...), s6...) {
		if names[s.Name] {
			t.Errorf("duplicate name %q", s.Name)
		}
		names[s.Name] = true
		if s.NumCells <= 0 {
			t.Errorf("%s: no cells", s.Name)
		}
	}
	for _, s := range s6 {
		if !s.MovableMacros {
			t.Errorf("%s: 2006 designs need movable macros", s.Name)
		}
		if s.TargetDensity >= 1 {
			t.Errorf("%s: 2006 designs need density targets", s.Name)
		}
	}
	if _, ok := ByName("bigblue4"); !ok {
		t.Error("ByName(bigblue4) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
}

func TestScaled(t *testing.T) {
	s, _ := ByName("bigblue4")
	sc := Scaled(s, 0.1)
	if sc.NumCells != 1600 {
		t.Errorf("scaled cells = %d", sc.NumCells)
	}
	tiny := Scaled(s, 0.0001)
	if tiny.NumCells != 100 {
		t.Errorf("floor = %d", tiny.NumCells)
	}
}

func TestGenerateTooSmall(t *testing.T) {
	if _, err := Generate(Spec{Name: "x", NumCells: 2}); err == nil {
		t.Error("expected error")
	}
}

func TestGenerateSuiteSmoke(t *testing.T) {
	// Scaled-down versions of every suite entry must generate and validate.
	for _, s := range append(Suite2005(), Suite2006()...) {
		nl, err := Generate(Scaled(s, 0.05))
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if err := nl.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
}

func TestGenerateMesh(t *testing.T) {
	nl, natural, err := GenerateMesh(MeshSpec{Name: "mesh", Cols: 8, Rows: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	st := nl.Stats()
	if st.Movable != 48 {
		t.Errorf("movable = %d", st.Movable)
	}
	// 2 pads per row plus mesh nets: (cols-1)*rows horizontal + cols*(rows-1) vertical + 2*rows IO.
	wantNets := 7*6 + 8*5 + 12
	if st.Nets != wantNets {
		t.Errorf("nets = %d, want %d", st.Nets, wantNets)
	}
	if natural <= 0 {
		t.Errorf("natural HPWL = %v", natural)
	}
	// The natural placement's HPWL matches the returned value.
	if got := meshHPWL(nl); math.Abs(got-natural) > 1e-9 {
		t.Errorf("meshHPWL = %v vs %v", got, natural)
	}
}

func TestGenerateMeshTooSmall(t *testing.T) {
	if _, _, err := GenerateMesh(MeshSpec{Name: "x", Cols: 1, Rows: 5}); err == nil {
		t.Error("expected error")
	}
}

// TestGenerateAllocBound pins generation's allocation footprint: cells and
// nets stream into pre-reserved builder storage, locality buckets share one
// CSR index array, and per-net bookkeeping reuses one buffer. The old
// map-per-net / slice-per-bucket implementation spent ~1.9 KB and 14
// mallocs per cell; the bounds would catch a regression back to that shape
// while leaving ~2x headroom over the current ~550 B and ~10 mallocs.
func TestGenerateAllocBound(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement on a 50K-cell design")
	}
	spec := Spec{Name: "alloc", NumCells: 50000, Seed: 9, NumMacros: 12, MacroAreaFrac: 0.2}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	nl, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	perCell := float64(after.TotalAlloc-before.TotalAlloc) / float64(spec.NumCells)
	mallocs := float64(after.Mallocs-before.Mallocs) / float64(spec.NumCells)
	t.Logf("%d cells: %.0f B/cell, %.1f mallocs/cell", nl.NumCells(), perCell, mallocs)
	if perCell > 1100 {
		t.Errorf("allocated %.0f B/cell, want <= 1100", perCell)
	}
	if mallocs > 13 {
		t.Errorf("%.1f mallocs/cell, want <= 13", mallocs)
	}
}
