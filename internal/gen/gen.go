// Package gen generates deterministic synthetic benchmarks that stand in
// for the proprietary ISPD 2005/2006 contest circuits (see DESIGN.md §2).
//
// Each design is built around a "natural placement": standard cells get
// home locations on a jittered grid, and nets are drawn mostly between
// cells that are close in home space with a power-law reach distribution —
// the locality structure Rent's rule induces in real netlists and the
// property that makes wirelength-versus-spreading trade-offs realistic.
// Macros, fixed I/O pads on the periphery, obstacle-style fixed macros
// (ISPD 2005) and movable macros with density targets (ISPD 2006) are all
// supported.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"complx/internal/geom"
	"complx/internal/netlist"
)

// Spec describes one synthetic benchmark.
type Spec struct {
	Name     string
	NumCells int // movable standard cells
	Seed     int64

	// NetsPerCell scales net count (default 1.05).
	NetsPerCell float64
	// AvgDegreeExtra is the mean of the geometric part of net degree above
	// 2 (default 1.5, giving mean degree ~3.5, capped at 12).
	AvgDegreeExtra float64
	// GlobalNetFrac is the fraction of nets drawn uniformly instead of
	// locally (default 0.06).
	GlobalNetFrac float64
	// Reach is the base locality radius in home-grid cells (default 3).
	Reach float64

	// NumMacros and MacroAreaFrac configure macro blocks. MovableMacros
	// selects ISPD-2006-style movable macros; otherwise macros are fixed
	// obstacles as in ISPD 2005.
	NumMacros     int
	MacroAreaFrac float64
	MovableMacros bool

	// NumPads places fixed I/O pads on the core boundary (default
	// 2·sqrt(NumCells)).
	NumPads int

	// Utilization is movable area / free core area (default 0.7).
	Utilization float64
	// TargetDensity is the placement density limit γ (default 1.0).
	TargetDensity float64
}

func (s *Spec) fill() {
	if s.NetsPerCell <= 0 {
		s.NetsPerCell = 1.05
	}
	if s.AvgDegreeExtra <= 0 {
		s.AvgDegreeExtra = 1.5
	}
	if s.GlobalNetFrac < 0 {
		s.GlobalNetFrac = 0
	} else if s.GlobalNetFrac == 0 {
		s.GlobalNetFrac = 0.06
	}
	if s.Reach <= 0 {
		s.Reach = 3
	}
	if s.NumPads <= 0 {
		s.NumPads = 2 * int(math.Sqrt(float64(s.NumCells)))
	}
	if s.Utilization <= 0 || s.Utilization > 1 {
		s.Utilization = 0.7
	}
	if s.TargetDensity <= 0 || s.TargetDensity > 1 {
		s.TargetDensity = 1.0
	}
}

// Generate builds the netlist for a spec. The same spec always produces the
// same design.
func Generate(spec Spec) (*netlist.Netlist, error) {
	spec.fill()
	if spec.NumCells < 4 {
		return nil, fmt.Errorf("gen: NumCells %d too small", spec.NumCells)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	b := netlist.NewBuilder(spec.Name)
	// Pre-size the builder so generation streams cells and nets into their
	// final storage instead of paying append re-growth copies (the estimates
	// mirror the counts derived below; peak memory is the point — see the
	// alloc-bound test).
	numNets := int(float64(spec.NumCells) * spec.NetsPerCell)
	b.Reserve(spec.NumCells+spec.NumMacros+spec.NumPads, numNets,
		int(float64(numNets)*(2.2+spec.AvgDegreeExtra)))

	// Standard cell sizes: widths 1..3 (mean 2), height 1.
	widths := make([]uint8, spec.NumCells)
	var stdArea float64
	for i := range widths {
		widths[i] = uint8(1 + rng.Intn(3))
		stdArea += float64(widths[i])
	}
	macroArea := 0.0
	if spec.NumMacros > 0 && spec.MacroAreaFrac > 0 {
		macroArea = stdArea * spec.MacroAreaFrac / (1 - spec.MacroAreaFrac)
	}

	// Core sizing. Movable area must fit under utilization; fixed macros
	// additionally consume core area.
	movArea := stdArea
	obstacleArea := 0.0
	if spec.MovableMacros {
		movArea += macroArea
	} else {
		obstacleArea = macroArea
	}
	coreArea := movArea/(spec.Utilization*spec.TargetDensity) + obstacleArea
	side := math.Ceil(math.Sqrt(coreArea))
	core := geom.Rect{XMax: side, YMax: side}
	b.SetCore(core)

	// Home grid for standard cells.
	cols := int(math.Ceil(math.Sqrt(float64(spec.NumCells))))
	rows := (spec.NumCells + cols - 1) / cols
	cellW := side / float64(cols)
	cellH := side / float64(rows)
	homes := make([]geom.Point, spec.NumCells)
	perm := rng.Perm(spec.NumCells) // scatter cell index vs. home position
	for i := 0; i < spec.NumCells; i++ {
		slot := perm[i]
		gx, gy := slot%cols, slot/cols
		homes[i] = geom.Point{
			X: (float64(gx) + 0.2 + 0.6*rng.Float64()) * cellW,
			Y: (float64(gy) + 0.2 + 0.6*rng.Float64()) * cellH,
		}
		// Standard cells are the first adds, so cell i's netlist index is i.
		b.AddCell("o"+strconv.Itoa(i), float64(widths[i]), 1)
	}

	// Macros: sized as squares (rounded to integers), homed in a coarse
	// scatter; fixed macros keep those spots as obstacles.
	var macroIDs []int
	if spec.NumMacros > 0 && macroArea > 0 {
		per := macroArea / float64(spec.NumMacros)
		mside := math.Max(2, math.Round(math.Sqrt(per)))
		for m := 0; m < spec.NumMacros; m++ {
			x := math.Round((side - mside) * rng.Float64())
			y := math.Round((side - mside) * rng.Float64())
			name := "m" + strconv.Itoa(m)
			if spec.MovableMacros {
				id := b.AddMacro(name, mside, mside)
				macroIDs = append(macroIDs, id)
			} else {
				id := b.AddFixed(name, x, y, mside, mside)
				macroIDs = append(macroIDs, id)
			}
		}
	}

	// Pads on the periphery.
	var padIDs []int
	for p := 0; p < spec.NumPads; p++ {
		t := rng.Float64() * 4
		var x, y float64
		switch {
		case t < 1:
			x, y = t*side, 0
		case t < 2:
			x, y = side-1, (t-1)*side
		case t < 3:
			x, y = (t-2)*side, side-1
		default:
			x, y = 0, (t-3)*side
		}
		x = geom.Clamp(math.Floor(x), 0, side-1)
		y = geom.Clamp(math.Floor(y), 0, side-1)
		padIDs = append(padIDs, b.AddFixed("p"+strconv.Itoa(p), x, y, 1, 1))
	}

	// Home-grid buckets for locality sampling, in CSR layout: one shared
	// index array instead of cols*rows individually allocated slices (which
	// dominated generation's footprint at million-cell scale). Cells appear
	// in ascending order within each bucket, exactly as the per-bucket
	// appends used to produce.
	bucketOf := func(h geom.Point) int {
		bx := int(geom.Clamp(h.X/cellW, 0, float64(cols-1)))
		by := int(geom.Clamp(h.Y/cellH, 0, float64(rows-1)))
		return by*cols + bx
	}
	bucketStart := make([]int32, cols*rows+1)
	for _, h := range homes {
		bucketStart[bucketOf(h)+1]++
	}
	for i := 0; i < cols*rows; i++ {
		bucketStart[i+1] += bucketStart[i]
	}
	bucketCells := make([]int32, spec.NumCells)
	{
		next := make([]int32, cols*rows)
		copy(next, bucketStart[:cols*rows])
		for i, h := range homes {
			bkt := bucketOf(h)
			bucketCells[next[bkt]] = int32(i)
			next[bkt]++
		}
	}
	pickNear := func(seed int, reach float64) int {
		h := homes[seed]
		for tries := 0; tries < 16; tries++ {
			ang := 2 * math.Pi * rng.Float64()
			// Power-law reach: mostly short hops, occasional long ones.
			r := reach * math.Pow(rng.Float64(), 2) * (1 + 9*math.Pow(rng.Float64(), 8))
			bx := int(geom.Clamp((h.X+r*cellW*math.Cos(ang))/cellW, 0, float64(cols-1)))
			by := int(geom.Clamp((h.Y+r*cellH*math.Sin(ang))/cellH, 0, float64(rows-1)))
			bkt := by*cols + bx
			cands := bucketCells[bucketStart[bkt]:bucketStart[bkt+1]]
			if len(cands) > 0 {
				return int(cands[rng.Intn(len(cands))])
			}
		}
		return rng.Intn(spec.NumCells)
	}

	pGeom := 1 / (1 + spec.AvgDegreeExtra)
	// One pin buffer reused across nets (AddNet copies); membership is a
	// linear scan of the current pins — nets have at most 14 — replacing the
	// per-net map that used to dominate generation's allocation count.
	pins := make([]netlist.PinSpec, 0, 16)
	onNet := func(ci int) bool {
		for _, ps := range pins {
			if ps.Cell == ci {
				return true
			}
		}
		return false
	}
	for n := 0; n < numNets; n++ {
		deg := 2
		for deg < 12 && rng.Float64() > pGeom {
			deg++
		}
		pins = pins[:0]
		addCellPin := func(ci int) {
			if onNet(ci) {
				return
			}
			pins = append(pins, netlist.PinSpec{
				Cell: ci,
				DX:   (rng.Float64() - 0.5) * 0.8,
				DY:   (rng.Float64() - 0.5) * 0.8,
			})
		}
		global := rng.Float64() < spec.GlobalNetFrac
		seed := rng.Intn(spec.NumCells)
		addCellPin(seed)
		stuck := 0
		for len(pins) < deg && stuck < 24 {
			ci := -1
			if global {
				ci = rng.Intn(spec.NumCells)
			} else {
				// Retry with growing reach: buckets hold ~1 cell, so the
				// first candidates are often already on the net.
				for tries := 0; tries < 8; tries++ {
					cand := pickNear(seed, spec.Reach*(1+float64(tries)))
					if !onNet(cand) {
						ci = cand
						break
					}
				}
			}
			if ci < 0 || onNet(ci) {
				stuck++
				continue
			}
			addCellPin(ci)
		}
		// A slice of nets touch pads or macros.
		if len(padIDs) > 0 && rng.Float64() < 0.08 {
			pad := padIDs[rng.Intn(len(padIDs))]
			if !onNet(pad) {
				pins = append(pins, netlist.PinSpec{Cell: pad})
			}
		}
		if len(macroIDs) > 0 && rng.Float64() < 0.10 {
			mc := macroIDs[rng.Intn(len(macroIDs))]
			if !onNet(mc) {
				pins = append(pins, netlist.PinSpec{
					Cell: mc,
					DX:   (rng.Float64() - 0.5) * 2,
					DY:   (rng.Float64() - 0.5) * 2,
				})
			}
		}
		if len(pins) < 2 {
			continue
		}
		b.AddNet("n"+strconv.Itoa(n), 1, pins)
	}

	b.AddUniformRows(int(side), 1, 1)
	nl, err := b.Build()
	if err != nil {
		return nil, err
	}
	// Initial positions: standard cells at their homes, movable macros
	// scattered (non-overlap not required before placement).
	for i := 0; i < spec.NumCells; i++ {
		nl.Cells[i].SetCenter(homes[i])
	}
	if spec.MovableMacros {
		for _, id := range macroIDs {
			c := &nl.Cells[id]
			c.X = math.Round((side - c.W) * rng.Float64())
			c.Y = math.Round((side - c.H) * rng.Float64())
		}
	}
	return nl, nil
}

// Benchmark couples a spec with the density target its Table-2 row uses.
type Benchmark struct {
	Spec          Spec
	TargetDensity float64
}

// Suite2005 returns the eight ISPD 2005 analogs (fixed macros, no density
// target, γ = 1).
func Suite2005() []Spec {
	mk := func(name string, n int, seed int64, macros int, frac float64, util float64) Spec {
		return Spec{
			Name: name, NumCells: n, Seed: seed,
			NumMacros: macros, MacroAreaFrac: frac,
			Utilization: util,
		}
	}
	return []Spec{
		mk("adaptec1", 4000, 101, 8, 0.25, 0.72),
		mk("adaptec2", 5000, 102, 10, 0.30, 0.65),
		mk("adaptec3", 7000, 103, 12, 0.30, 0.60),
		mk("adaptec4", 8000, 104, 12, 0.25, 0.55),
		mk("bigblue1", 6000, 105, 6, 0.15, 0.70),
		mk("bigblue2", 9000, 106, 16, 0.35, 0.55),
		mk("bigblue3", 12000, 107, 14, 0.30, 0.60),
		mk("bigblue4", 16000, 108, 20, 0.30, 0.50),
	}
}

// Suite2006 returns the eight ISPD 2006 analogs (movable macros, per-design
// density targets from Table 2 of the paper).
func Suite2006() []Spec {
	mk := func(name string, n int, seed int64, macros int, frac, util, target float64) Spec {
		return Spec{
			Name: name, NumCells: n, Seed: seed,
			NumMacros: macros, MacroAreaFrac: frac, MovableMacros: true,
			Utilization: util, TargetDensity: target,
		}
	}
	return []Spec{
		mk("adaptec5", 8000, 201, 10, 0.20, 0.45, 0.50),
		mk("newblue1", 4000, 202, 12, 0.25, 0.65, 0.80),
		mk("newblue2", 5000, 203, 14, 0.30, 0.70, 0.90),
		mk("newblue3", 6000, 204, 8, 0.20, 0.60, 0.80),
		mk("newblue4", 6000, 205, 10, 0.25, 0.45, 0.50),
		mk("newblue5", 9000, 206, 12, 0.25, 0.45, 0.50),
		mk("newblue6", 10000, 207, 10, 0.20, 0.60, 0.80),
		mk("newblue7", 12000, 208, 14, 0.25, 0.60, 0.80),
	}
}

// ByName finds a spec in either suite.
func ByName(name string) (Spec, bool) {
	for _, s := range Suite2005() {
		if s.Name == name {
			return s, true
		}
	}
	for _, s := range Suite2006() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Scaled returns a copy of the spec with the cell count scaled by f (for
// fast test/bench variants).
func Scaled(s Spec, f float64) Spec {
	s.NumCells = int(float64(s.NumCells) * f)
	if s.NumCells < 100 {
		s.NumCells = 100
	}
	s.NumMacros = int(float64(s.NumMacros)*f + 0.5)
	return s
}

// MeshSpec describes a structured mesh circuit: a W×H grid of cells where
// each cell connects to its right and upper neighbor (plus I/O pads on the
// west and east edges). The "natural" placement — cells at their grid
// coordinates — is wirelength-optimal up to boundary effects, which makes
// meshes the classic probe for how far placers stay from manual layouts on
// structured logic (Ward et al., ISPD 2011; cited in the paper's intro).
type MeshSpec struct {
	Name       string
	Cols, Rows int
	// Utilization spaces the natural grid (default 0.5).
	Utilization float64
}

// GenerateMesh builds the mesh and returns the netlist placed at its
// natural positions, plus the natural HPWL of that placement.
func GenerateMesh(spec MeshSpec) (*netlist.Netlist, float64, error) {
	if spec.Cols < 2 || spec.Rows < 2 {
		return nil, 0, fmt.Errorf("gen: mesh needs at least 2x2 cells")
	}
	if spec.Utilization <= 0 || spec.Utilization > 1 {
		spec.Utilization = 0.5
	}
	b := netlist.NewBuilder(spec.Name)
	// Cell pitch chosen so that cellArea/pitch^2 = utilization.
	pitch := math.Sqrt(2 / spec.Utilization) // cells are 2x1
	w := float64(spec.Cols) * pitch
	h := float64(spec.Rows) * pitch
	b.SetCore(geom.Rect{XMax: math.Ceil(w), YMax: math.Ceil(h)})

	ids := make([][]int, spec.Rows)
	for r := range ids {
		ids[r] = make([]int, spec.Cols)
		for c := range ids[r] {
			ids[r][c] = b.AddCell(fmt.Sprintf("m%d_%d", r, c), 2, 1)
		}
	}
	for r := 0; r < spec.Rows; r++ {
		west := b.AddFixed(fmt.Sprintf("pw%d", r), 0, math.Floor(float64(r)*pitch), 1, 1)
		east := b.AddFixed(fmt.Sprintf("pe%d", r), math.Ceil(w)-1, math.Floor(float64(r)*pitch), 1, 1)
		b.AddNet(fmt.Sprintf("win%d", r), 1, []netlist.PinSpec{{Cell: west}, {Cell: ids[r][0]}})
		b.AddNet(fmt.Sprintf("eout%d", r), 1, []netlist.PinSpec{{Cell: east}, {Cell: ids[r][spec.Cols-1]}})
	}
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			if c+1 < spec.Cols {
				b.AddNet(fmt.Sprintf("h%d_%d", r, c), 1,
					[]netlist.PinSpec{{Cell: ids[r][c]}, {Cell: ids[r][c+1]}})
			}
			if r+1 < spec.Rows {
				b.AddNet(fmt.Sprintf("v%d_%d", r, c), 1,
					[]netlist.PinSpec{{Cell: ids[r][c]}, {Cell: ids[r+1][c]}})
			}
		}
	}
	b.AddUniformRows(int(math.Ceil(h)), 1, 1)
	nl, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	// Natural placement: grid coordinates.
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			nl.Cells[ids[r][c]].SetCenter(geom.Point{
				X: (float64(c) + 0.5) * pitch,
				Y: (float64(r) + 0.5) * pitch,
			})
		}
	}
	// Natural HPWL of this placement.
	natural := meshHPWL(nl)
	return nl, natural, nil
}

// meshHPWL avoids importing netmodel (which would be a dependency cycle for
// some callers): plain bounding-box HPWL.
func meshHPWL(nl *netlist.Netlist) float64 {
	var total float64
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		if len(net.Pins) < 2 {
			continue
		}
		xmin, xmax := math.Inf(1), math.Inf(-1)
		ymin, ymax := math.Inf(1), math.Inf(-1)
		for _, p := range net.Pins {
			pt := nl.PinPosition(p)
			xmin = math.Min(xmin, pt.X)
			xmax = math.Max(xmax, pt.X)
			ymin = math.Min(ymin, pt.Y)
			ymax = math.Max(ymax, pt.Y)
		}
		total += (xmax - xmin) + (ymax - ymin)
	}
	return total
}
