package region

import (
	"testing"

	"complx/internal/geom"
	"complx/internal/netlist"
)

func regionDesign(t *testing.T) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("reg")
	b.SetCore(geom.Rect{XMax: 100, YMax: 100})
	c1 := b.AddCell("c1", 2, 2)
	c2 := b.AddCell("c2", 2, 2)
	p := b.AddFixed("p", 0, 0, 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c1}, {Cell: c2}, {Cell: p}})
	r := b.AddRegion("clk", geom.Rect{XMin: 60, YMin: 60, XMax: 80, YMax: 80})
	b.ConstrainCell(c1, r)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells[c1].SetCenter(geom.Point{X: 10, Y: 10})
	nl.Cells[c2].SetCenter(geom.Point{X: 10, Y: 90})
	return nl
}

func TestSnapAnchors(t *testing.T) {
	nl := regionDesign(t)
	anchors := []geom.Point{{X: 10, Y: 10}, {X: 10, Y: 90}}
	SnapAnchors(nl, anchors)
	// c1 anchor clamps into [61,79]^2 (region minus half cell size).
	if anchors[0] != (geom.Point{X: 61, Y: 61}) {
		t.Errorf("c1 anchor = %v", anchors[0])
	}
	// c2 is unconstrained.
	if anchors[1] != (geom.Point{X: 10, Y: 90}) {
		t.Errorf("c2 anchor moved: %v", anchors[1])
	}
}

func TestSnapAnchorsNoRegionsIsNoop(t *testing.T) {
	b := netlist.NewBuilder("none")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c := b.AddCell("c", 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}})
	nl, _ := b.Build()
	anchors := []geom.Point{{X: -5, Y: -5}}
	SnapAnchors(nl, anchors)
	if anchors[0] != (geom.Point{X: -5, Y: -5}) {
		t.Error("anchors changed with no regions")
	}
}

func TestSnapPlacement(t *testing.T) {
	nl := regionDesign(t)
	if got := Violations(nl, 0); got != 1 {
		t.Fatalf("violations before = %d, want 1", got)
	}
	SnapPlacement(nl)
	if got := Violations(nl, 1e-9); got != 0 {
		t.Errorf("violations after = %d", got)
	}
	c1 := nl.Cells[nl.CellByName("c1")].Center()
	if c1 != (geom.Point{X: 61, Y: 61}) {
		t.Errorf("c1 snapped to %v", c1)
	}
	// Interior positions stay put.
	nl.Cells[nl.CellByName("c1")].SetCenter(geom.Point{X: 70, Y: 75})
	SnapPlacement(nl)
	if got := nl.Cells[nl.CellByName("c1")].Center(); got != (geom.Point{X: 70, Y: 75}) {
		t.Errorf("interior cell moved: %v", got)
	}
}

func TestOversizedCellCentersOnRegion(t *testing.T) {
	b := netlist.NewBuilder("big")
	b.SetCore(geom.Rect{XMax: 100, YMax: 100})
	m := b.AddMacro("m", 30, 30)
	p := b.AddFixed("p", 0, 0, 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: m}, {Cell: p}})
	r := b.AddRegion("r", geom.Rect{XMin: 40, YMin: 40, XMax: 50, YMax: 50})
	b.ConstrainCell(m, r)
	nl, _ := b.Build()
	nl.Cells[m].SetCenter(geom.Point{X: 90, Y: 90})
	SnapPlacement(nl)
	got := nl.Cells[m].Center()
	if got != (geom.Point{X: 45, Y: 45}) {
		t.Errorf("oversized cell centered at %v, want (45,45)", got)
	}
}
