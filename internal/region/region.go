// Package region enforces hard region constraints (paper §S5): after each
// feasibility projection, every constrained cell's anchor is snapped into
// its constraining rectangle, so the subsequent analytic iteration is pulled
// toward a constraint-satisfying placement.
package region

import (
	"math"

	"complx/internal/geom"
	"complx/internal/netlist"
)

// SnapAnchors clamps, in place, the anchors of region-constrained movable
// cells into their region rectangles (shrunk by half the cell dimensions so
// the whole cell fits). anchors is indexed in netlist.Movables order.
func SnapAnchors(nl *netlist.Netlist, anchors []geom.Point) {
	if len(nl.Regions) == 0 {
		return
	}
	for k, i := range nl.Movables() {
		c := &nl.Cells[i]
		if c.Region < 0 {
			continue
		}
		anchors[k] = snapCenter(c, nl.Regions[c.Region].Rect, anchors[k])
	}
}

// SnapPlacement moves region-constrained movable cells of nl into their
// regions (used to finalize placements and in legalization preprocessing).
func SnapPlacement(nl *netlist.Netlist) {
	if len(nl.Regions) == 0 {
		return
	}
	for _, i := range nl.Movables() {
		c := &nl.Cells[i]
		if c.Region < 0 {
			continue
		}
		c.SetCenter(snapCenter(c, nl.Regions[c.Region].Rect, c.Center()))
	}
}

// snapCenter returns p clamped so a cell of c's size centered there lies in
// r. Cells larger than the region are centered on it.
func snapCenter(c *netlist.Cell, r geom.Rect, p geom.Point) geom.Point {
	hw := math.Min(c.W/2, r.Width()/2)
	hh := math.Min(c.H/2, r.Height()/2)
	return geom.Point{
		X: geom.Clamp(p.X, r.XMin+hw, r.XMax-hw),
		Y: geom.Clamp(p.Y, r.YMin+hh, r.YMax-hh),
	}
}

// Violations returns the number of region-constrained movable cells whose
// rectangle is not fully inside its region (with tolerance tol).
func Violations(nl *netlist.Netlist, tol float64) int {
	n := 0
	for _, i := range nl.Movables() {
		c := &nl.Cells[i]
		if c.Region < 0 {
			continue
		}
		r := nl.Regions[c.Region].Rect.Expand(tol)
		if !r.ContainsRect(c.Rect()) {
			n++
		}
	}
	return n
}
