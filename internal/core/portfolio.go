package core

import (
	"context"
	"fmt"

	"complx/internal/chkpt"
	"complx/internal/netlist"
	"complx/internal/perr"
	"complx/internal/portfolio"
)

// placePortfolio maps Options onto the portfolio driver: every member
// segment is solved by placeSingle over the member's private netlist clone
// with the variant's perturbation applied to the member options. The
// driver owns member bookkeeping (round segmentation, scoring,
// cull/reseed, portfolio checkpointing); this function owns the
// Options→engine translation, the same inversion as placeMultilevel.
func placePortfolio(ctx context.Context, nl *netlist.Netlist, opt Options) (*Result, error) {
	if opt.Multilevel.Enabled {
		return nil, perr.New(perr.StageOptions,
			"core: portfolio search and the multilevel V-cycle are mutually exclusive")
	}
	if err := nl.Validate(); err != nil {
		return nil, perr.Wrap(perr.StageValidate, err)
	}
	popt := portfolio.Options{
		Members:      opt.Portfolio.Members,
		Rounds:       opt.Portfolio.Rounds,
		CullFraction: opt.Portfolio.CullFraction,
		Seed:         opt.Portfolio.Seed,
	}
	popt.Fill()
	if err := popt.Validate(); err != nil {
		return nil, err
	}
	filled := opt
	filled.fill()

	// Member snapshots are bound to a fingerprint even when nothing is
	// persisted: the reseed fork validates against it. A checkpoint manager
	// brings the facade-derived run fingerprint; otherwise a run-local one
	// is derived here (in-memory snapshots only need in-run consistency).
	var fp [32]byte
	sink, _ := opt.Checkpoint.(portfolio.Sink)
	if m, ok := opt.Checkpoint.(*chkpt.Manager); ok && m != nil {
		fp = m.Fingerprint
	} else {
		fp = chkpt.Fingerprint(
			"design="+nl.Name,
			fmt.Sprintf("pf=%d/%d/%g/%d", popt.Members, popt.Rounds, popt.CullFraction, popt.Seed),
		)
	}

	cfg := portfolio.Config{
		Options:       popt,
		MaxIterations: filled.MaxIterations,
		TargetDensity: filled.TargetDensity,
		Design:        nl.Name,
		Fingerprint:   fp,
		Checkpoint:    sink,
		Resume:        opt.PortfolioResume,
		Obs:           opt.Obs,
		Solve: func(ctx context.Context, run portfolio.MemberRun) (*Result, error) {
			return placeMember(ctx, run, opt)
		},
	}
	return portfolio.Run(ctx, nl, cfg)
}

// placeMember solves one portfolio member segment: the caller's options
// with the member variant's perturbation applied — λ schedule scale via
// the dampedSchedule first-scale seam, LSE primal, preconditioner and
// finest-grid overrides — run as a flat placeSingle over the member's
// netlist clone, resuming the member's round-boundary state and depositing
// the next one into run.Checkpoint.
func placeMember(ctx context.Context, run portfolio.MemberRun, opt Options) (*Result, error) {
	lopt := opt
	lopt.Portfolio = PortfolioOptions{}
	lopt.PortfolioResume = nil
	lopt.Checkpoint = run.Checkpoint
	lopt.Resume = run.Resume
	lopt.MaxIterations = run.MaxIterations

	v := run.Variant
	if v.UseLSE {
		lopt.UseLSE, lopt.UsePNorm = true, false
	}
	if v.Precond != "" {
		lopt.Precond = v.Precond
	}
	if v.FinestGrid {
		lopt.FinestGrid = true
	}
	firstScale := 1.0
	if v.LambdaScale > 0 {
		firstScale = v.LambdaScale
	}
	return placeSingle(ctx, run.Netlist, lopt, 0, false, 0, firstScale, run.Member)
}
