package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"complx/internal/gen"
	"complx/internal/netlist"
)

// The golden behavior-preservation suite pins the exact numerical behavior
// of the placement loop: final cell positions and the per-iteration history
// are hashed bit-for-bit and compared against testdata/golden.json, which
// was generated from the pre-engine-refactor implementation. Any change to
// the floating-point sequence of the primal-dual loop — reordered
// measurements, a different multiplier update, an altered projection — flips
// the hash and fails this test.
//
// Regenerate (only for intentional behavior changes) with
//
//	go test ./internal/core -run TestGoldenBehavior -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from the current implementation")

type goldenCase struct {
	name string
	spec gen.Spec
	opt  Options
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			name: "complx-default",
			spec: gen.Spec{Name: "g1", NumCells: 600, Seed: 41, Utilization: 0.7},
			opt:  Options{MaxIterations: 30},
		},
		{
			name: "simpl-schedule",
			spec: gen.Spec{Name: "g2", NumCells: 500, Seed: 42, Utilization: 0.7},
			opt:  Options{Schedule: ScheduleSimPL, MaxIterations: 30},
		},
		{
			name: "complx-macros-finest",
			spec: gen.Spec{
				Name: "g3", NumCells: 400, Seed: 43,
				NumMacros: 3, MacroAreaFrac: 0.2, MovableMacros: true,
				Utilization: 0.5, TargetDensity: 0.8,
			},
			opt: Options{TargetDensity: 0.8, FinestGrid: true, MaxIterations: 20},
		},
		{
			name: "lse",
			spec: gen.Spec{Name: "g4", NumCells: 250, Seed: 44},
			opt:  Options{UseLSE: true, MaxIterations: 14},
		},
		{
			name: "pnorm",
			spec: gen.Spec{Name: "g5", NumCells: 180, Seed: 45},
			opt:  Options{UsePNorm: true, MaxIterations: 10},
		},
	}
}

// goldenHash digests the final placement and the numerical (non-timing)
// iteration history bit-for-bit.
func goldenHash(nl *netlist.Netlist, res *Result) string {
	h := sha256.New()
	put := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	puti := func(v int) { put(float64(v)) }
	for i := range nl.Cells {
		put(nl.Cells[i].X)
		put(nl.Cells[i].Y)
	}
	puti(res.Iterations)
	if res.Converged {
		puti(1)
	} else {
		puti(0)
	}
	put(res.FinalLambda)
	put(res.HPWL)
	put(res.WHPWL)
	put(res.GapFinal)
	put(res.BestUpper)
	puti(res.SelfCons.Total)
	puti(res.SelfCons.Consistent)
	puti(res.SelfCons.Inconsistent)
	puti(res.SelfCons.PremiseFailed)
	for _, st := range res.History {
		puti(st.Iter)
		put(st.Lambda)
		put(st.Phi)
		put(st.PhiUpper)
		put(st.Pi)
		put(st.L)
		put(st.Overflow)
		puti(st.GridNX)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestGoldenBehavior(t *testing.T) {
	path := filepath.Join("testdata", "golden.json")
	want := map[string]string{}
	if !*updateGolden {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read golden file (regenerate with -update-golden): %v", err)
		}
		if err := json.Unmarshal(raw, &want); err != nil {
			t.Fatalf("parse golden file: %v", err)
		}
	}
	got := map[string]string{}
	for _, c := range goldenCases() {
		nl, err := gen.Generate(c.spec)
		if err != nil {
			t.Fatalf("%s: generate: %v", c.name, err)
		}
		res, err := Place(nl, c.opt)
		if err != nil {
			t.Fatalf("%s: place: %v", c.name, err)
		}
		got[c.name] = goldenHash(nl, res)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	for name, g := range got {
		if w, ok := want[name]; !ok {
			t.Errorf("%s: no golden entry (regenerate with -update-golden)", name)
		} else if g != w {
			t.Errorf("%s: behavior changed: hash %s, want %s", name, g, w)
		}
	}
}
