package core

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"

	"complx/internal/chkpt"
	"complx/internal/faultinject"
	"complx/internal/gen"
	"complx/internal/netlist"
	"complx/internal/perr"
	"complx/internal/resilience"
	"complx/internal/sparse"
)

// The fault-injection integration tests. They arm the process-global
// injector, so none of them may use t.Parallel, and every one deactivates
// on cleanup.

func faultSpec() gen.Spec {
	return gen.Spec{Name: "fault1", NumCells: 300, Seed: 61, Utilization: 0.7}
}

func genFaultNetlist(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl, err := gen.Generate(faultSpec())
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestFaultCGNaNLadderRecovers injects a single NaN into the Conjugate
// Gradient recurrence. The solver fallback ladder must restore the last
// finite snapshot, retry, and land on bit-for-bit the same placement as a
// run that never saw the fault — recovery may cost time, never accuracy.
func TestFaultCGNaNLadderRecovers(t *testing.T) {
	opt := Options{MaxIterations: 12}

	// Clean reference.
	nlRef := genFaultNetlist(t)
	resRef, err := Place(nlRef, opt)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	refHash := goldenHash(nlRef, resRef)

	// Faulted run: the rule fires once, in the first CG solve.
	inj := faultinject.New().Add(faultinject.Rule{Point: faultinject.CGResidual})
	faultinject.Activate(inj)
	t.Cleanup(faultinject.Deactivate)
	nl := genFaultNetlist(t)
	res, err := Place(nl, opt)
	if err != nil {
		t.Fatalf("faulted run did not recover: %v", err)
	}
	if got := inj.Fired(faultinject.CGResidual); got != 1 {
		t.Errorf("CG fault fired %d times, want 1", got)
	}
	if res.Recovery.Empty() || !res.Recovery.Recovered() {
		t.Fatalf("recovery log does not show a successful recovery: %+v", res.Recovery)
	}
	ev := res.Recovery.Events[0]
	if ev.Rung != resilience.RungRestore || !ev.Recovered {
		t.Errorf("first recovery event = %+v, want recovered %s", ev, resilience.RungRestore)
	}
	if h := goldenHash(nl, res); h != refHash {
		t.Errorf("recovered run diverged from the clean run:\n  clean:     %s\n  recovered: %s", refHash, h)
	}
}

// TestFaultLadderExhaustion makes every primal solve fail with a non-finite
// error: the ladder must walk all four rungs (5 budgeted attempts), log
// every one, and surface a stage=recover error instead of looping forever.
func TestFaultLadderExhaustion(t *testing.T) {
	inj := faultinject.New().Add(faultinject.Rule{
		Point: faultinject.QPSolve,
		Err:   sparse.ErrNotFinite,
		Times: 1 << 20, // never stop firing
	})
	faultinject.Activate(inj)
	t.Cleanup(faultinject.Deactivate)

	nl := genFaultNetlist(t)
	_, err := Place(nl, Options{MaxIterations: 12})
	if err == nil {
		t.Fatal("run with a permanently failing solver succeeded")
	}
	var pe *perr.Error
	if !errors.As(err, &pe) || pe.Stage != perr.StageRecover {
		t.Fatalf("want *perr.Error at stage %q, got %v", perr.StageRecover, err)
	}
	want := resilience.DefaultPolicy().MaxAttempts()
	if got := inj.Fired(faultinject.QPSolve); got != want+1 {
		t.Errorf("solver fired %d times, want %d (initial + %d ladder attempts)", got, want+1, want)
	}
}

// TestFaultCancelFlushesPendingCheckpoint cancels the run's context at the
// top of iteration 5 via an injected side effect and verifies the
// best-effort flush-on-cancel: with a sink interval far beyond the run
// length, the only snapshot saved must be the complete end-of-iteration-4
// state — and resuming from it reproduces the uninterrupted run bitwise.
func TestFaultCancelFlushesPendingCheckpoint(t *testing.T) {
	opt := Options{MaxIterations: 20}

	// Uninterrupted reference.
	nlRef := genFaultNetlist(t)
	resRef, err := Place(nlRef, opt)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refHash := goldenHash(nlRef, resRef)

	// Cancelled run: Do fires at the top of iteration 5, before any of its
	// numerics, so the pending checkpoint still holds iteration 4.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj := faultinject.New().Add(faultinject.Rule{
		Point: faultinject.EngineIteration,
		After: 4,
		Do:    func(string) { cancel() },
	})
	faultinject.Activate(inj)
	t.Cleanup(faultinject.Deactivate)
	sink := &memSink{t: t, states: map[int]*chkpt.State{}, interval: 1 << 20}
	nlInt := genFaultNetlist(t)
	optInt := opt
	optInt.Checkpoint = sink
	resInt, err := PlaceContext(ctx, nlInt, optInt)
	if err == nil || resInt == nil || !resInt.Cancelled {
		t.Fatalf("want cancelled run with result, got res=%v err=%v", resInt, err)
	}
	if len(sink.states) != 1 {
		t.Fatalf("flush-on-cancel saved %d snapshots, want exactly 1", len(sink.states))
	}
	st, ok := sink.states[4]
	if !ok || st.Kind != chkpt.KindLoop {
		t.Fatalf("pending snapshot is not the end-of-iteration-4 loop state: %v", sink.states)
	}
	faultinject.Deactivate()

	// Resume from the flushed snapshot and compare bitwise.
	nlRes := genFaultNetlist(t)
	optRes := opt
	optRes.Resume = st
	resRes, err := Place(nlRes, optRes)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !resRes.Resumed {
		t.Error("resumed run did not report Resumed")
	}
	if h := goldenHash(nlRes, resRes); h != refHash {
		t.Errorf("resume from cancel-flushed snapshot diverged:\n  straight: %s\n  resumed:  %s", refHash, h)
	}
}

// TestFaultCheckpointSaveNeverFatal fails every checkpoint persistence
// attempt: the run must complete bit-for-bit as if checkpointing were off,
// record the failures as checkpoint_save events in the recovery log, and
// leave no file on disk.
func TestFaultCheckpointSaveNeverFatal(t *testing.T) {
	opt := Options{MaxIterations: 12}

	nlRef := genFaultNetlist(t)
	resRef, err := Place(nlRef, opt)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	refHash := goldenHash(nlRef, resRef)

	inj := faultinject.New().Add(faultinject.Rule{
		Point: faultinject.CheckpointSave,
		Times: 1 << 20,
	})
	faultinject.Activate(inj)
	t.Cleanup(faultinject.Deactivate)
	mgr := &chkpt.Manager{Dir: t.TempDir(), Interval: 2}
	nl := genFaultNetlist(t)
	optCk := opt
	optCk.Checkpoint = mgr
	res, err := Place(nl, optCk)
	if err != nil {
		t.Fatalf("run with failing checkpoint saves died: %v", err)
	}
	if fired := inj.Fired(faultinject.CheckpointSave); fired < 2 {
		t.Fatalf("checkpoint-save fault fired %d times, want >= 2", fired)
	}
	saves := 0
	for _, e := range res.Recovery.Events {
		if e.Rung != resilience.RungCheckpoint {
			t.Errorf("unexpected non-checkpoint recovery event: %+v", e)
			continue
		}
		saves++
		if !errorsIsInjectedCause(e.Cause) {
			t.Errorf("checkpoint event cause %q does not mention the injected fault", e.Cause)
		}
	}
	if saves == 0 {
		t.Error("failed checkpoint saves left no checkpoint_save events in the recovery log")
	}
	if _, err := os.Stat(mgr.Path()); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("failing saves still produced a checkpoint file: stat err=%v", err)
	}
	if h := goldenHash(nl, res); h != refHash {
		t.Errorf("failing checkpoint saves perturbed the placement:\n  clean:   %s\n  faulted: %s", refHash, h)
	}
}

// errorsIsInjectedCause matches the rendered cause string of an injected
// checkpoint failure (the structured log stores rendered errors).
func errorsIsInjectedCause(cause string) bool {
	return strings.Contains(cause, faultinject.ErrInjected.Error())
}
