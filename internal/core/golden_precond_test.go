package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"complx/internal/gen"
)

// TestGoldenBehaviorExplicitJacobi is the bitwise-compatibility proof for
// the preconditioner extraction: requesting Precond "jacobi" explicitly
// must reproduce the pre-refactor solver — whose behavior testdata/
// golden.json pins — hash for hash. The default path already proves the
// ""/"auto" spelling (these designs sit below qp.AutoPrecondMinVars);
// this test proves the explicit spelling takes the identical code path
// rather than, say, a generically-dispatched Jacobi with a different
// rounding sequence.
func TestGoldenBehaviorExplicitJacobi(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatalf("read golden file: %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden file: %v", err)
	}
	for _, c := range goldenCases() {
		nl, err := gen.Generate(c.spec)
		if err != nil {
			t.Fatalf("%s: generate: %v", c.name, err)
		}
		opt := c.opt
		opt.Precond = "jacobi"
		res, err := Place(nl, opt)
		if err != nil {
			t.Fatalf("%s: place: %v", c.name, err)
		}
		if got := goldenHash(nl, res); got != want[c.name] {
			t.Errorf("%s: explicit jacobi diverges from the pinned golden hash: %s, want %s",
				c.name, got, want[c.name])
		}
	}
}
