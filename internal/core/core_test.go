package core

import (
	"math"
	"testing"

	"complx/internal/congest"
	"complx/internal/density"
	"complx/internal/gen"
	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/netmodel"
)

func genDesign(t *testing.T, spec gen.Spec) *netlist.Netlist {
	t.Helper()
	nl, err := gen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func overflowRatio(nl *netlist.Netlist, target float64) float64 {
	nx, ny := density.AutoResolution(nl.NumMovable(), 4, 128)
	g, err := density.NewGridForNetlist(nl, nx, ny, target)
	if err != nil {
		panic(err)
	}
	g.AccumulateMovable(nl)
	return g.OverflowRatio()
}

func TestPlaceSmallDesign(t *testing.T) {
	nl := genDesign(t, gen.Spec{Name: "t1", NumCells: 800, Seed: 11, Utilization: 0.7})
	res, err := Place(nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 || len(res.History) == 0 {
		t.Fatalf("no iterations ran: %+v", res)
	}
	if res.HPWL <= 0 {
		t.Errorf("HPWL = %v", res.HPWL)
	}
	// Duality sandwich: the lower-bound Φ never exceeds the upper-bound Φ
	// by more than numerical noise.
	for _, st := range res.History {
		if st.Phi > st.PhiUpper*1.02+1e-9 {
			t.Errorf("iter %d: lower Φ %v > upper Φ %v", st.Iter, st.Phi, st.PhiUpper)
		}
	}
	// Final placement should be close to density-feasible.
	if ov := overflowRatio(nl, 1.0); ov > 0.30 {
		t.Errorf("final overflow ratio = %v", ov)
	}
}

func TestFigure1Trends(t *testing.T) {
	nl := genDesign(t, gen.Spec{Name: "t2", NumCells: 1000, Seed: 12, Utilization: 0.7})
	res, err := Place(nl, Options{MaxIterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	if len(h) < 5 {
		t.Fatalf("only %d iterations", len(h))
	}
	// λ is non-decreasing.
	for i := 1; i < len(h); i++ {
		if h[i].Lambda < h[i-1].Lambda-1e-12 {
			t.Errorf("lambda decreased at iter %d: %v -> %v", h[i].Iter, h[i-1].Lambda, h[i].Lambda)
		}
	}
	// Π decreases substantially from start to finish.
	if h[len(h)-1].Pi > 0.5*h[0].Pi {
		t.Errorf("Pi did not decrease: %v -> %v", h[0].Pi, h[len(h)-1].Pi)
	}
	// Φ (lower bound) increases overall as spreading is enforced.
	if h[len(h)-1].Phi < h[0].Phi {
		t.Errorf("Phi did not increase: %v -> %v", h[0].Phi, h[len(h)-1].Phi)
	}
}

func TestSelfConsistencyHigh(t *testing.T) {
	nl := genDesign(t, gen.Spec{Name: "t3", NumCells: 800, Seed: 13})
	res, err := Place(nl, Options{MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.SelfCons.Total == 0 {
		t.Fatal("no consistency checks ran")
	}
	if f := res.SelfCons.ConsistentFrac(); f < 0.5 {
		t.Errorf("self-consistency %v too low: %+v", f, res.SelfCons)
	}
}

func TestSchedulesDiffer(t *testing.T) {
	mk := func(s Schedule) *Result {
		nl := genDesign(t, gen.Spec{Name: "t4", NumCells: 600, Seed: 14})
		res, err := Place(nl, Options{Schedule: s, MaxIterations: 50})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	c := mk(ScheduleComPLx)
	s := mk(ScheduleSimPL)
	if c.Iterations == s.Iterations && math.Abs(c.HPWL-s.HPWL) < 1e-9 {
		t.Error("ComPLx and SimPL schedules produced identical runs")
	}
	if ScheduleComPLx.String() != "complx" || ScheduleSimPL.String() != "simpl" {
		t.Error("Schedule.String wrong")
	}
}

func TestMovableMacros2006Style(t *testing.T) {
	nl := genDesign(t, gen.Spec{
		Name: "t5", NumCells: 700, Seed: 15,
		NumMacros: 4, MacroAreaFrac: 0.25, MovableMacros: true,
		Utilization: 0.5, TargetDensity: 0.8,
	})
	res, err := Place(nl, Options{TargetDensity: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL <= 0 {
		t.Fatal("no placement")
	}
	// Macros must end inside the core and mostly separated: total pairwise
	// overlap under 30% of macro area (paper §5 allows small overlaps for
	// the detailed placer to fix).
	var macros []geom.Rect
	var area float64
	for _, i := range nl.Movables() {
		if nl.Cells[i].Kind == netlist.Macro {
			r := nl.Cells[i].Rect()
			macros = append(macros, r)
			area += r.Area()
			if !nl.Core.Expand(1e-6).ContainsRect(r) {
				t.Errorf("macro outside core: %v", r)
			}
		}
	}
	var overlap float64
	for i := range macros {
		for j := i + 1; j < len(macros); j++ {
			overlap += macros[i].OverlapArea(macros[j])
		}
	}
	if overlap > 0.3*area {
		t.Errorf("macro overlap %v of %v total area", overlap, area)
	}
}

func TestRegionConstraintHonored(t *testing.T) {
	nl := genDesign(t, gen.Spec{Name: "t6", NumCells: 500, Seed: 16})
	// Constrain 30 cells to the top-right quadrant.
	r := geom.Rect{
		XMin: nl.Core.XMax * 0.6, YMin: nl.Core.YMax * 0.6,
		XMax: nl.Core.XMax, YMax: nl.Core.YMax,
	}
	nl.Regions = append(nl.Regions, netlist.Region{Name: "grp", Rect: r})
	mov := nl.Movables()
	for k := 0; k < 30; k++ {
		nl.Cells[mov[k]].Region = 0
	}
	if _, err := Place(nl, Options{}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 30; k++ {
		c := &nl.Cells[mov[k]]
		if !r.Expand(1e-6).ContainsRect(c.Rect()) {
			t.Errorf("cell %q at %v escaped region %v", c.Name, c.Rect(), r)
		}
	}
}

func TestCellPenaltyValidation(t *testing.T) {
	nl := genDesign(t, gen.Spec{Name: "t7", NumCells: 200, Seed: 17})
	if _, err := Place(nl, Options{CellPenalty: []float64{1, 2}}); err == nil {
		t.Error("expected error for short CellPenalty")
	}
}

func TestNoMovables(t *testing.T) {
	b := netlist.NewBuilder("fixedonly")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	f := b.AddFixed("f", 0, 0, 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: f}})
	nl, _ := b.Build()
	if _, err := Place(nl, Options{}); err == nil {
		t.Error("expected error for no movables")
	}
}

func TestLSEInstantiation(t *testing.T) {
	nl := genDesign(t, gen.Spec{Name: "t8", NumCells: 300, Seed: 18})
	res, err := Place(nl, Options{UseLSE: true, MaxIterations: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL <= 0 || len(res.History) == 0 {
		t.Fatalf("LSE run failed: %+v", res)
	}
	if ov := overflowRatio(nl, 1.0); ov > 0.4 {
		t.Errorf("LSE final overflow = %v", ov)
	}
}

func TestFinestGridOption(t *testing.T) {
	run := func(finest bool) (*Result, *netlist.Netlist) {
		nl := genDesign(t, gen.Spec{Name: "t9", NumCells: 600, Seed: 19})
		res, err := Place(nl, Options{FinestGrid: finest, MaxIterations: 40})
		if err != nil {
			t.Fatal(err)
		}
		return res, nl
	}
	rd, _ := run(false)
	rf, _ := run(true)
	// Finest grid must actually use the finest resolution from iteration 1.
	if rf.History[0].GridNX != rd.History[len(rd.History)-1].GridNX &&
		rf.History[0].GridNX < rd.History[0].GridNX {
		t.Errorf("finest grid started at %d, default at %d",
			rf.History[0].GridNX, rd.History[0].GridNX)
	}
	// Quality should be in the same ballpark (paper: marginal difference).
	if rf.HPWL > 1.5*rd.HPWL || rd.HPWL > 1.5*rf.HPWL {
		t.Errorf("finest %v vs default %v HPWL diverge", rf.HPWL, rd.HPWL)
	}
}

func TestOnIterationCallback(t *testing.T) {
	nl := genDesign(t, gen.Spec{Name: "t10", NumCells: 200, Seed: 20})
	calls := 0
	res, err := Place(nl, Options{OnIteration: func(IterStats) { calls++ }, MaxIterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(res.History) {
		t.Errorf("callback calls %d vs history %d", calls, len(res.History))
	}
}

func TestAlreadyFeasibleReturnsImmediately(t *testing.T) {
	// A tiny, sparse design whose initial solve is already feasible.
	b := netlist.NewBuilder("feas")
	b.SetCore(geom.Rect{XMax: 100, YMax: 100})
	c1 := b.AddCell("c1", 1, 1)
	c2 := b.AddCell("c2", 1, 1)
	p1 := b.AddFixed("p1", 0, 0, 1, 1)
	p2 := b.AddFixed("p2", 99, 99, 1, 1)
	b.AddNet("n1", 1, []netlist.PinSpec{{Cell: c1}, {Cell: p1}})
	b.AddNet("n2", 1, []netlist.PinSpec{{Cell: c2}, {Cell: p2}})
	b.AddUniformRows(100, 1, 1)
	nl, _ := b.Build()
	nl.Cells[c1].SetCenter(geom.Point{X: 20, Y: 20})
	nl.Cells[c2].SetCenter(geom.Point{X: 80, Y: 80})
	res, err := Place(nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("expected immediate convergence")
	}
}

func TestWeightedHPWLReported(t *testing.T) {
	nl := genDesign(t, gen.Spec{Name: "t11", NumCells: 300, Seed: 21})
	nl.Nets[0].Weight = 5
	res, err := Place(nl, Options{MaxIterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.WHPWL-netmodel.WeightedHPWL(nl)) > 1e-9 {
		t.Error("WHPWL mismatch")
	}
	if res.WHPWL <= res.HPWL {
		t.Error("weighted HPWL should exceed unweighted with a boosted net")
	}
}

func TestRoutabilityModeRuns(t *testing.T) {
	nl := genDesign(t, gen.Spec{Name: "t12", NumCells: 500, Seed: 22})
	res, err := Place(nl, Options{Routability: true, MaxIterations: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL <= 0 {
		t.Fatal("no placement")
	}
	if ov := overflowRatio(nl, 1.0); ov > 0.4 {
		t.Errorf("routability-mode overflow = %v", ov)
	}
}

func TestPNormInstantiation(t *testing.T) {
	nl := genDesign(t, gen.Spec{Name: "t13", NumCells: 250, Seed: 23})
	res, err := Place(nl, Options{UsePNorm: true, MaxIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL <= 0 || len(res.History) == 0 {
		t.Fatalf("PNorm run failed: %+v", res)
	}
}

func TestLSEAndPNormMutuallyExclusive(t *testing.T) {
	nl := genDesign(t, gen.Spec{Name: "t14", NumCells: 200, Seed: 24})
	if _, err := Place(nl, Options{UseLSE: true, UsePNorm: true}); err == nil {
		t.Error("expected error for UseLSE+UsePNorm")
	}
}

func TestNetModelVariants(t *testing.T) {
	for _, m := range []netmodel.Model{netmodel.B2B, netmodel.Clique, netmodel.Star, netmodel.Hybrid} {
		nl := genDesign(t, gen.Spec{Name: "t15" + m.String(), NumCells: 300, Seed: 25})
		res, err := Place(nl, Options{Model: m, MaxIterations: 25})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.HPWL <= 0 {
			t.Errorf("%v: HPWL = %v", m, res.HPWL)
		}
	}
}

// TestRoutabilityReducesCongestion: the SimPLR-style mode must trade some
// wirelength for lower peak congestion.
func TestRoutabilityReducesCongestion(t *testing.T) {
	spec := gen.Spec{Name: "t16", NumCells: 1200, Seed: 26, Utilization: 0.75, GlobalNetFrac: 0.12}
	maxCong := func(nl *netlist.Netlist) float64 {
		m, err := congest.NewMap(nl.Core, 24, 24, 1)
		if err != nil {
			t.Fatal(err)
		}
		m.AddNetlist(nl)
		st := m.Stats()
		// Normalize by average so the comparison is capacity-free.
		return st.Max / st.Avg
	}
	base := genDesign(t, spec)
	rb, err := Place(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt := genDesign(t, spec)
	rr, err := Place(rt, Options{Routability: true, RoutabilityAlpha: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if rr.HPWL < rb.HPWL {
		t.Logf("routability unexpectedly improved HPWL: %v vs %v", rr.HPWL, rb.HPWL)
	}
	if got, want := maxCong(rt), maxCong(base); got > want*1.05 {
		t.Errorf("peak/avg congestion rose: %v vs %v", got, want)
	}
	// The wirelength cost should be bounded.
	if rr.HPWL > 1.5*rb.HPWL {
		t.Errorf("routability mode cost too much HPWL: %v vs %v", rr.HPWL, rb.HPWL)
	}
}

func TestOptimalLeafSpreadingOption(t *testing.T) {
	nl := genDesign(t, gen.Spec{Name: "t17", NumCells: 500, Seed: 27})
	res, err := Place(nl, Options{OptimalLeafSpreading: true, MaxIterations: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL <= 0 {
		t.Fatal("no placement")
	}
	if ov := overflowRatio(nl, 1.0); ov > 0.35 {
		t.Errorf("PAV-leaf overflow = %v", ov)
	}
}
