package core

import (
	"errors"
	"testing"

	"complx/internal/chkpt"
	"complx/internal/gen"
	"complx/internal/perr"
)

// memSink is an in-memory engine.CheckpointSink that snapshots every
// iteration (or every interval-th, when set) and — to exercise the wire
// format on the way — round-trips each state through Encode/Decode before
// retaining it. The decoded states are therefore exactly what a resume from
// disk would see.
type memSink struct {
	t        *testing.T
	states   map[int]*chkpt.State
	interval int // 0 = every iteration
}

func newMemSink(t *testing.T) *memSink {
	return &memSink{t: t, states: map[int]*chkpt.State{}}
}

func (m *memSink) Save(st *chkpt.State) error {
	m.t.Helper()
	dec, err := chkpt.Decode(chkpt.Encode(st))
	if err != nil {
		m.t.Fatalf("checkpoint round-trip: %v", err)
	}
	m.states[dec.Iter] = dec
	return nil
}

func (m *memSink) IntervalOrDefault() int {
	if m.interval > 0 {
		return m.interval
	}
	return 1
}

// TestResumeBitwiseIdentical is the resume-determinism contract: running N
// iterations straight through must produce bit-for-bit the same placement,
// history and result scalars as running half of them, checkpointing, and
// resuming the rest from the decoded snapshot. The golden hash covers every
// float of the final positions and the per-iteration history, so any hidden
// state missing from the checkpoint flips it.
func TestResumeBitwiseIdentical(t *testing.T) {
	cases := []goldenCase{
		goldenCases()[0], // complx-default
		goldenCases()[1], // simpl-schedule
		goldenCases()[2], // complx-macros-finest (macro λ scaling)
		{
			// Routability exercises the projector's self-calibrated routing
			// capacity, the one piece of projector state in the checkpoint.
			name: "routability",
			spec: gen.Spec{Name: "g6", NumCells: 300, Seed: 46, Utilization: 0.7},
			opt:  Options{MaxIterations: 16, Routability: true},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			// Reference run, checkpointing every iteration.
			nlA, err := gen.Generate(c.spec)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			sink := newMemSink(t)
			optA := c.opt
			optA.Checkpoint = sink
			resA, err := Place(nlA, optA)
			if err != nil {
				t.Fatalf("reference place: %v", err)
			}
			hashA := goldenHash(nlA, resA)

			mid := resA.Iterations / 2
			if mid < 1 {
				t.Fatalf("reference run too short to split: %d iterations", resA.Iterations)
			}
			st, ok := sink.states[mid]
			if !ok {
				t.Fatalf("no checkpoint captured at iteration %d", mid)
			}

			// Resumed run: fresh netlist, primed from the mid-run snapshot.
			nlB, err := gen.Generate(c.spec)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			optB := c.opt
			optB.Resume = st
			resB, err := Place(nlB, optB)
			if err != nil {
				t.Fatalf("resumed place: %v", err)
			}
			if !resB.Resumed {
				t.Errorf("resumed run did not report Resumed")
			}
			if hashB := goldenHash(nlB, resB); hashB != hashA {
				t.Errorf("resume diverged from the uninterrupted run:\n  straight: %s\n  resumed:  %s", hashA, hashB)
			}
		})
	}
}

// TestResumeRejectsBadState tables the corrupted/mismatched-snapshot
// failures: every one must surface as a *perr.Error at the checkpoint stage
// before any numerics run.
func TestResumeRejectsBadState(t *testing.T) {
	spec := gen.Spec{Name: "g1", NumCells: 120, Seed: 41, Utilization: 0.7}
	nl, err := gen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	good := func() *chkpt.State {
		n, err := gen.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		sink := newMemSink(t)
		if _, err := Place(n, Options{MaxIterations: 10, Checkpoint: sink}); err != nil {
			t.Fatal(err)
		}
		st, ok := sink.states[4]
		if !ok {
			t.Fatal("no checkpoint at iteration 4")
		}
		return st
	}
	cases := []struct {
		name   string
		mutate func(*chkpt.State)
	}{
		{"wrong-kind", func(st *chkpt.State) { st.Kind = chkpt.KindOverflow }},
		{"wrong-position-count", func(st *chkpt.State) { st.Positions = st.Positions[:len(st.Positions)-1] }},
		{"orphan-projector-state", func(st *chkpt.State) { st.ProjectorState = []float64{1, 2, 3} }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st := good()
			c.mutate(st)
			_, err := Place(nl, Options{MaxIterations: 10, Resume: st})
			if err == nil {
				t.Fatal("corrupted resume state was accepted")
			}
			var pe *perr.Error
			if !errors.As(err, &pe) || pe.Stage != perr.StageCheckpoint {
				t.Errorf("want *perr.Error at stage %q, got %v", perr.StageCheckpoint, err)
			}
		})
	}
}
