// Package core implements the ComPLx global placement algorithm: a
// projected-subgradient primal-dual Lagrange optimization (paper §3–§5).
//
// Each iteration alternates
//
//  1. a dual step — the feasibility projection P_C (package spread, with
//     macro shredding from package shred and region snapping from package
//     region) producing C-feasible anchor locations (x°, y°);
//  2. a primal step — minimization of the simplified Lagrangian
//     L°(x, y, λ) = Φ(x, y) + λ‖(x, y) − (x°, y°)‖₁ via one anchored
//     quadratic solve (package qp) or a nonlinear log-sum-exp solve
//     (package lse);
//  3. the multiplier update of Formula 12 with λ₁ = Φ/(100·Π).
//
// Convergence is declared on the relative duality gap
// ΔΦ = Φ(x°, y°) − Φ(x, y) (Formula 8) or when the penalty Π nearly
// vanishes. Per-macro multipliers are scaled by macro area (paper §5) and
// the penalty term can be weighted by per-cell criticalities (Formula 13).
//
// The iteration skeleton itself lives in internal/engine; this package maps
// placement Options onto the engine's pluggable pieces — quadratic / LSE /
// p-norm primal solvers, the spreading projector (optionally decorated with
// a refinement hook), and the ComPLx / SimPL multiplier schedules — and
// keeps the public Place API stable. PlaceContext adds cooperative
// cancellation on the same engine.
package core

import (
	"context"
	"math"

	"complx/internal/chkpt"
	"complx/internal/engine"
	"complx/internal/multilevel"
	"complx/internal/netlist"
	"complx/internal/obs"
	"complx/internal/perr"
	"complx/internal/qp"
	"complx/internal/resilience"
	"complx/internal/sparse"

	"complx/internal/netmodel"
)

// Schedule selects the multiplier update rule.
type Schedule int

const (
	// ScheduleComPLx uses Formula 12: λ_{k+1} = min(2λ_k, λ_k + (Π_{k+1}/Π_k)·h).
	ScheduleComPLx Schedule = iota
	// ScheduleSimPL grows λ by a fixed increment per iteration — the
	// pseudonet-weight schedule of the SimPL special case.
	ScheduleSimPL
)

func (s Schedule) String() string {
	if s == ScheduleSimPL {
		return "simpl"
	}
	return "complx"
}

// Options configures a placement run.
type Options struct {
	// Model selects the quadratic net decomposition (default B2B).
	Model netmodel.Model
	// UseLSE switches the primal step to the nonlinear log-sum-exp
	// instantiation; UsePNorm to the p,β-regularization (paper §S1). At
	// most one may be set.
	UseLSE   bool
	UsePNorm bool
	// LSEGamma is the LSE smoothing parameter (0 → 1% of core width);
	// PNormP the p exponent (0 → 8).
	LSEGamma float64
	PNormP   float64

	// TargetDensity is the utilization limit γ in (0, 1]; default 1.
	TargetDensity float64
	// MaxIterations bounds global placement iterations (default 80).
	MaxIterations int
	// InitialSolves is the number of unconstrained interconnect solves
	// before the first projection (default 5).
	InitialSolves int
	// GapTol is the relative duality-gap convergence threshold (default 0.08).
	GapTol float64
	// PiTol stops when Π falls below PiTol·Π₁ (default 0.02).
	PiTol float64
	// MinIterations before convergence may be declared (default 8).
	MinIterations int

	// Schedule selects the λ update rule.
	Schedule Schedule
	// FinestGrid disables grid coarsening (Table 1 ablation).
	FinestGrid bool
	// OptimalLeafSpreading uses the exact 1-D PAV spreading in projection
	// leaves (§S2's convex subproblem) instead of uniform spreading.
	OptimalLeafSpreading bool
	// GridMax caps the bin grid dimension (0 → 192).
	GridMax int
	// ProjectionRefine, when set, post-processes each projection: it is
	// called with the netlist positioned at the anchors and may improve
	// them in place (the "P_C += FastPlace-DP" ablation of Table 1).
	ProjectionRefine func(nl *netlist.Netlist) error

	// Routability enables the SimPLR-style routability extension (paper
	// §5): cells in RUDY-congested bins are temporarily inflated before
	// each feasibility projection so P_C separates them further.
	Routability bool
	// RoutingCapacity is the routing supply per unit area for the RUDY
	// map; 0 self-calibrates so the initial average congestion is ~0.7.
	RoutingCapacity float64
	// RoutabilityAlpha scales the congestion-driven inflation (default 1).
	RoutabilityAlpha float64

	// CellPenalty weighs the penalty term per movable cell (Formula 13);
	// nil means uniform 1.
	CellPenalty []float64
	// NoMacroLambdaScale disables the per-macro λ scaling of §5.
	NoMacroLambdaScale bool

	// Eps is the linearization floor (0 → 1.5× row height).
	Eps float64
	// CG configures the linear solver.
	CG sparse.CGOptions
	// Precond selects the CG preconditioner: one of sparse.PrecondKinds
	// ("jacobi", "ssor", "ic0", "mg"), or ""/"auto" for the size heuristic
	// (Jacobi below qp.AutoPrecondMinVars variables, IC(0) above).
	Precond string
	// PrecondRefresh is the solve cadence at which factor-holding
	// preconditioners fully rebuild rather than diagonal-refresh
	// (0 → qp.DefaultPrecondRefresh); ignored for "jacobi".
	PrecondRefresh int
	// OnIteration, when set, observes per-iteration statistics.
	OnIteration func(IterStats)
	// Obs, when non-nil, instruments the run (spans, metrics, iteration
	// trace). Instrumentation only reads placement state, so observed runs
	// are bitwise identical to unobserved ones.
	Obs *obs.Observer

	// Checkpoint, when non-nil, receives complete engine snapshots every
	// IntervalOrDefault-th iteration and on cancellation (chkpt.Manager is
	// the persistent implementation). Resume, when non-nil, primes the run
	// from a previously saved snapshot; the resumed run is bitwise
	// identical to the uninterrupted one. See DESIGN.md §10.
	Checkpoint engine.CheckpointSink
	Resume     *chkpt.State
	// RecoveryPolicy overrides the solver fallback ladder (nil selects
	// resilience.DefaultPolicy).
	RecoveryPolicy *resilience.Policy

	// Multilevel, when Enabled, routes the run through the V-cycle driver
	// (DESIGN.md §13): coarsen to TargetCells movable cells, solve the
	// coarsest level with this Options' full budget, then interpolate and
	// warm-start-refine each finer level with RefineIters iterations. The
	// flat path (Enabled false) is bitwise untouched.
	Multilevel MultilevelOptions

	// Portfolio, when Enabled, routes the run through the competitive
	// portfolio driver (DESIGN.md §14): Members perturbed engine instances
	// race in Rounds synchronization rounds, losers are culled and reseeded
	// from the leader's forked checkpoint, and the best-scoring member's
	// placement wins. Mutually exclusive with Multilevel. The flat path
	// (Enabled false) is bitwise untouched.
	Portfolio PortfolioOptions
	// PortfolioResume, when non-nil, resumes a portfolio search from its
	// round-boundary checkpoint (member table, RNG streams, round index).
	PortfolioResume *chkpt.PortfolioState
}

// PortfolioOptions configures the portfolio search (portfolio.Options plus
// the enable switch; zero values select the driver defaults).
type PortfolioOptions struct {
	// Enabled turns the portfolio search on.
	Enabled bool
	// Members is the number of concurrent engine instances (default 4).
	Members int
	// Rounds is the number of synchronization rounds (default 4).
	Rounds int
	// CullFraction is the fraction of members culled per round (default 0.25).
	CullFraction float64
	// Seed seeds the perturbation RNG streams (default 1).
	Seed int64
}

// MultilevelOptions configures the multilevel V-cycle (multilevel.Options
// plus the enable switch; zero values select the driver defaults).
type MultilevelOptions struct {
	// Enabled turns the V-cycle on.
	Enabled bool
	// TargetCells is the movable-cell count coarsening descends to
	// (default 10000).
	TargetCells int
	// MaxLevels caps the coarsening passes (default 6).
	MaxLevels int
	// RefineIters is the per-level iteration budget of the warm-started
	// refinement levels below the coarsest (default 8).
	RefineIters int
}

func (o *Options) fill() {
	if o.TargetDensity <= 0 || o.TargetDensity > 1 {
		o.TargetDensity = 1
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 80
	}
	if o.InitialSolves <= 0 {
		o.InitialSolves = 5
	}
	if o.GapTol <= 0 {
		o.GapTol = 0.08
	}
	if o.PiTol <= 0 {
		o.PiTol = 0.02
	}
	if o.MinIterations <= 0 {
		o.MinIterations = 8
	}
	if o.GridMax <= 0 {
		o.GridMax = 192
	}
}

// IterStats records one global placement iteration (Figure 1 data). It is
// the engine's statistics record; see engine.IterStats for the fields.
type IterStats = engine.IterStats

// SelfConsistency aggregates the Formula 11 check (paper §S2).
type SelfConsistency = engine.SelfConsistency

// Result summarizes a placement run.
type Result = engine.Result

// PortfolioStats summarizes a portfolio search (Result.Portfolio).
type PortfolioStats = engine.PortfolioStats

// Place runs ComPLx global placement on nl in place. The final placement is
// the best C-feasible (anchor) placement found; it is nearly overlap-free
// and intended to be finished by legalization and detailed placement.
//
// Place follows the validate-then-place contract: nl is checked with
// netlist.Validate before any numerics run, and all failures are returned
// as *perr.Error values carrying the stage and iteration. When a primal
// solve produces a non-finite system (sparse.ErrNotFinite), Place degrades
// gracefully through the solver fallback ladder (internal/resilience):
// restore the last finite snapshot, relax the solver numerics, restart
// from the last projection, damp λ — surfacing a stage=recover error only
// when the whole ladder is exhausted. Every attempt is recorded in
// Result.Recovery.
func Place(nl *netlist.Netlist, opt Options) (*Result, error) {
	return PlaceContext(context.Background(), nl, opt)
}

// PlaceContext is Place with cooperative cancellation: the context is
// observed by the CG inner iterations, the nonlinear line searches and the
// projection's per-region sweeps, so the run stops within one inner sweep
// of cancellation. On cancellation the best C-feasible placement found so
// far is still applied to nl (the same selection rule as a completed run),
// Result.Cancelled is set, and the returned error wraps ctx.Err() in a
// *perr.Error carrying the stage and iteration.
func PlaceContext(ctx context.Context, nl *netlist.Netlist, opt Options) (*Result, error) {
	if opt.Portfolio.Enabled {
		return placePortfolio(ctx, nl, opt)
	}
	if opt.Multilevel.Enabled {
		return placeMultilevel(ctx, nl, opt)
	}
	return placeSingle(ctx, nl, opt, 0, false, 0, 1, 0)
}

// warmDamp scales the multiplier schedule's initial (λ₁, h) at warm-started
// refinement levels that have no coarser-level multiplier to continue from
// (e.g. a post-cancellation descent). A warm start is already near-feasible,
// so the ComPLx initialization λ₁ = Φ/(100·Π) lands orders of magnitude
// higher than on a cold start and would freeze the placement at its
// interpolated wirelength; damping gives the refinement a window of
// interconnect-driven iterations before the anchors take over.
const warmDamp = 1.0 / 4

// dampedSchedule scales First's (λ₁, h) by a constant factor; Next is the
// wrapped schedule's rule unchanged.
type dampedSchedule struct {
	engine.Schedule
	factor float64
}

func (d dampedSchedule) First(phi, pi float64) (lambda, h float64) {
	l, h := d.Schedule.First(phi, pi)
	return l * d.factor, h * d.factor
}

// warmChainDamp, coarseHandoffGap and refineCGTol are the V-cycle's tuned
// constants (bigblue3 analogs, 190K-290K cells; see DESIGN.md, section 13).
//
// warmChainDamp scales the chained multiplier a warm level starts from:
// the refinement needs a window of interconnect-driven iterations below
// the coarse level's final price before its own ramp climbs back through
// it. 1/4 and above freeze the interpolated placement; 1/8 collapses it
// faster than the short budget can re-spread.
//
// coarseHandoffGap is the duality-gap floor at which the coarsest level
// stops. Past it the coarse schedule only inflates its multiplier and
// spreads the clusters to near-full feasibility - baking cluster-grain
// positions in at a wirelength the refines cannot pull back - without
// improving the feasible upper bound at all.
//
// refineCGTol is the relative CG residual for warm refinement solves.
const (
	warmChainDamp    = 0.18
	coarseHandoffGap = 0.35
	refineCGTol      = 3e-3
)

// continuedSchedule continues the coarser level's dual trajectory: First
// ignores the warm state's phi/pi (near-feasibility would re-derive a
// frozen multiplier) and returns the renormalized chained lambda with the
// standard h = 100*lambda ramp. Next is the wrapped schedule's rule
// unchanged.
type continuedSchedule struct {
	engine.Schedule
	lambda float64
	h      float64
}

func (c continuedSchedule) First(phi, pi float64) (lambda, h float64) {
	return c.lambda, c.h
}

// placeMultilevel maps Options onto the multilevel V-cycle driver: each
// level is solved by placeSingle over the level's netlist, the coarsest
// with the caller's full budget from a cold start, every finer level
// warm-started from the interpolated coarse placement with the shortened
// RefineIters budget. Per-cell penalties apply at the finest level only
// (they are indexed by the fine movables). A Resume snapshot lands on its
// recorded level; see multilevel.Run for the resume contract.
func placeMultilevel(ctx context.Context, nl *netlist.Netlist, opt Options) (*Result, error) {
	if err := nl.Validate(); err != nil {
		return nil, perr.Wrap(perr.StageValidate, err)
	}
	refine := opt.Multilevel.RefineIters
	if refine <= 0 {
		refine = multilevel.DefaultRefineIters
	}
	cfg := multilevel.Config{
		Options: multilevel.Options{
			TargetCells: opt.Multilevel.TargetCells,
			MaxLevels:   opt.Multilevel.MaxLevels,
			RefineIters: refine,
		},
		Checkpoint: opt.Checkpoint,
		Resume:     opt.Resume,
		Obs:        opt.Obs,
		Solve: func(ctx context.Context, lv multilevel.Level) (*Result, error) {
			lopt := opt
			lopt.Multilevel = MultilevelOptions{}
			lopt.Checkpoint = lv.Checkpoint
			lopt.Resume = lv.Resume
			if lv.Level > 0 {
				// Coarse netlists have their own movables order; the fine
				// per-cell criticalities apply at the finest level only.
				lopt.CellPenalty = nil
			}
			warm := false
			firstScale := 1.0
			if lv.Coarsest {
				// λ₁ = Φ/(100·Π) is calibrated for the fine design: the
				// anchor force is λ per cell while the interconnect pull on
				// a cluster is the sum over its members, so the cold coarse
				// schedule spends its first ~6 iterations ramping λ through
				// a dead zone where nothing spreads. Boost (λ₁, h) by the
				// coarsening ratio so the coarse dual starts at an
				// equivalent per-cell price.
				if cn := lv.Netlist.NumMovable(); cn > 0 {
					firstScale = float64(nl.NumMovable()) / float64(cn)
				}
			}
			if lv.Coarsest {
				// The coarse solve only has to get the global structure
				// right — refinement repairs detail — and the cluster
				// netlist holds a wide duality gap far past the overflow
				// point where the flat schedule would stop on the fine
				// design. Running it to the flat tolerances spreads the
				// clusters to near-full feasibility, baking cluster-grain
				// positions in at a wirelength the short refines cannot
				// pull back (and a final λ far past any useful refine
				// price). The coarsest level therefore stops at a 2×
				// looser gap and, more importantly, at the overflow where
				// the flat schedule itself hands off to legalization:
				// Π/Π₁ ≈ 0.06 on the synthetic suites, 3× the default
				// PiTol.
				gap := opt.GapTol
				if gap <= 0 {
					gap = 0.08
				}
				lopt.GapTol = 2 * gap
				if lopt.GapTol < coarseHandoffGap {
					lopt.GapTol = coarseHandoffGap
				}
				pit := opt.PiTol
				if pit <= 0 {
					pit = 0.02
				}
				if 3*pit > lopt.PiTol {
					lopt.PiTol = 3 * pit
				}
			} else {
				// Intermediate levels only bridge to the next interpolation,
				// so their budget halves per level above the finest; the
				// finest level gets the full RefineIters. Budgets are a pure
				// function of the level, so a resumed run sees the same ones.
				budget := refine
				for l := 0; l < lv.Level; l++ {
					budget = (budget + 1) / 2
				}
				if budget < 3 {
					budget = 3
				}
				lopt.MaxIterations = budget
				minIt := opt.MinIterations
				if minIt <= 0 {
					minIt = 8
				}
				if budget < minIt {
					lopt.MinIterations = budget
				}
				warm = lv.Resume == nil
				// Refinement solves are re-anchored by the next projection
				// anyway, so converging CG to the flat 1e-6 residual is
				// wasted work - the warm levels run a looser tolerance
				// unless the caller pinned one. Cuts the finest level's
				// solve time ~3x at unchanged legalized wirelength on the
				// bigblue3 analogs.
				if lopt.CG.Tol == 0 {
					lopt.CG.Tol = refineCGTol
				}
			}
			return placeSingle(ctx, lv.Netlist, lopt, lv.Level, warm, lv.StartLambda, firstScale, 0)
		},
	}
	return multilevel.Run(ctx, nl, cfg)
}

// placeSingle runs one flat primal-dual placement over nl — the whole run
// when multilevel is off (level 0, cold start), one V-cycle level or one
// portfolio member segment otherwise. warm skips the initial interconnect
// solves so the loop starts from nl's current (interpolated) placement;
// startLambda, when positive, continues the coarser level's multiplier
// trajectory instead of re-deriving λ₁ from the warm state; member is the
// portfolio member index stamped into the iteration statistics (0 outside
// a portfolio).
func placeSingle(ctx context.Context, nl *netlist.Netlist, opt Options, level int, warm bool, startLambda, firstScale float64, member int) (*Result, error) {
	opt.fill()
	if err := nl.Validate(); err != nil {
		return nil, perr.Wrap(perr.StageValidate, err)
	}
	mov := nl.Movables()
	if len(mov) == 0 {
		return nil, perr.New(perr.StageValidate, "core: netlist %q has no movable cells", nl.Name)
	}
	if opt.CellPenalty != nil && len(opt.CellPenalty) != len(mov) {
		return nil, perr.New(perr.StageValidate, "core: CellPenalty has %d entries for %d movables",
			len(opt.CellPenalty), len(mov))
	}
	for k, p := range opt.CellPenalty {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return nil, perr.New(perr.StageValidate, "core: CellPenalty[%d] = %g is not a finite non-negative weight", k, p)
		}
	}

	// Per-cell λ scale: macro area ratio (paper §5) times criticality.
	scale := make([]float64, len(mov))
	avgStd := avgStdArea(nl)
	for k, i := range mov {
		s := 1.0
		c := &nl.Cells[i]
		if !opt.NoMacroLambdaScale && c.Kind == netlist.Macro && avgStd > 0 {
			s = math.Max(1, c.Area()/avgStd)
		}
		if opt.CellPenalty != nil {
			s *= opt.CellPenalty[k]
		}
		scale[k] = s
	}

	if opt.UseLSE && opt.UsePNorm {
		return nil, perr.New(perr.StageValidate, "core: UseLSE and UsePNorm are mutually exclusive")
	}
	// Validate the preconditioner name up front so a typo fails at
	// StageValidate instead of mid-run inside the first primal solve.
	if _, err := qp.ResolvePrecond(opt.Precond, 0); err != nil {
		return nil, perr.Wrap(perr.StageValidate, err)
	}
	// Primal step: the anchored quadratic solver with its incremental
	// assembler and CG workspaces reused across iterations, or one of the
	// nonlinear instantiations.
	var primal engine.PrimalSolver
	switch {
	case opt.UseLSE:
		primal = &engine.LSEPrimal{NL: nl, Gamma: opt.LSEGamma}
	case opt.UsePNorm:
		primal = &engine.PNormPrimal{NL: nl, P: opt.PNormP}
	default:
		primal = engine.NewQuadraticPrimal(nl, qp.Options{
			Model: opt.Model, Eps: opt.Eps, CG: opt.CG, Obs: opt.Obs,
			Precond: opt.Precond, PrecondRefresh: opt.PrecondRefresh,
		})
	}

	// Dual step: the spreading projector, optionally decorated with the
	// refinement hook.
	sp := engine.NewSpreadProjector(nl, opt.TargetDensity, opt.GridMax)
	sp.FinestGrid = opt.FinestGrid
	sp.OptimalLeaf = opt.OptimalLeafSpreading
	sp.Routability = opt.Routability
	sp.RoutingCapacity = opt.RoutingCapacity
	sp.RoutabilityAlpha = opt.RoutabilityAlpha
	sp.Obs = opt.Obs
	var projector engine.Projector = sp
	if opt.ProjectionRefine != nil {
		projector = &engine.RefineProjector{Inner: sp, NL: nl, Refine: opt.ProjectionRefine}
	}

	var sched engine.Schedule = engine.ComPLxSchedule{}
	if opt.Schedule == ScheduleSimPL {
		sched = engine.SimPLSchedule{}
	}
	if !warm && firstScale > 0 && firstScale != 1 {
		sched = dampedSchedule{Schedule: sched, factor: firstScale}
	}
	if warm {
		if startLambda > 0 {
			l1 := warmChainDamp * startLambda
			sched = continuedSchedule{Schedule: sched, lambda: l1, h: 100 * l1}
		} else {
			sched = dampedSchedule{Schedule: sched, factor: warmDamp}
		}
	}
	var mon engine.Monitor
	if opt.OnIteration != nil {
		mon = engine.MonitorFunc(opt.OnIteration)
	}

	loop := &engine.Loop{
		Netlist:        nl,
		Primal:         primal,
		Projector:      projector,
		Schedule:       sched,
		Monitor:        mon,
		Obs:            opt.Obs,
		MaxIterations:  opt.MaxIterations,
		InitialSolves:  opt.InitialSolves,
		MinIterations:  opt.MinIterations,
		GapTol:         opt.GapTol,
		PiTol:          opt.PiTol,
		LambdaScale:    scale,
		Design:         nl.Name,
		Algorithm:      opt.Schedule.String(),
		Level:          level,
		Member:         member,
		WarmStart:      warm,
		Checkpoint:     opt.Checkpoint,
		Resume:         opt.Resume,
		RecoveryPolicy: opt.RecoveryPolicy,
	}
	return loop.Run(ctx)
}

func avgStdArea(nl *netlist.Netlist) float64 {
	var a float64
	n := 0
	for _, i := range nl.Movables() {
		if nl.Cells[i].Kind == netlist.Std {
			a += nl.Cells[i].Area()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return a / float64(n)
}
