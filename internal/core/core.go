// Package core implements the ComPLx global placement algorithm: a
// projected-subgradient primal-dual Lagrange optimization (paper §3–§5).
//
// Each iteration alternates
//
//  1. a dual step — the feasibility projection P_C (package spread, with
//     macro shredding from package shred and region snapping from package
//     region) producing C-feasible anchor locations (x°, y°);
//  2. a primal step — minimization of the simplified Lagrangian
//     L°(x, y, λ) = Φ(x, y) + λ‖(x, y) − (x°, y°)‖₁ via one anchored
//     quadratic solve (package qp) or a nonlinear log-sum-exp solve
//     (package lse);
//  3. the multiplier update of Formula 12 with λ₁ = Φ/(100·Π).
//
// Convergence is declared on the relative duality gap
// ΔΦ = Φ(x°, y°) − Φ(x, y) (Formula 8) or when the penalty Π nearly
// vanishes. Per-macro multipliers are scaled by macro area (paper §5) and
// the penalty term can be weighted by per-cell criticalities (Formula 13).
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"complx/internal/congest"
	"complx/internal/density"
	"complx/internal/geom"
	"complx/internal/lse"
	"complx/internal/netlist"
	"complx/internal/netmodel"
	"complx/internal/perr"
	"complx/internal/qp"
	"complx/internal/region"
	"complx/internal/shred"
	"complx/internal/sparse"
	"complx/internal/spread"
)

// Schedule selects the multiplier update rule.
type Schedule int

const (
	// ScheduleComPLx uses Formula 12: λ_{k+1} = min(2λ_k, λ_k + (Π_{k+1}/Π_k)·h).
	ScheduleComPLx Schedule = iota
	// ScheduleSimPL grows λ by a fixed increment per iteration — the
	// pseudonet-weight schedule of the SimPL special case.
	ScheduleSimPL
)

func (s Schedule) String() string {
	if s == ScheduleSimPL {
		return "simpl"
	}
	return "complx"
}

// Options configures a placement run.
type Options struct {
	// Model selects the quadratic net decomposition (default B2B).
	Model netmodel.Model
	// UseLSE switches the primal step to the nonlinear log-sum-exp
	// instantiation; UsePNorm to the p,β-regularization (paper §S1). At
	// most one may be set.
	UseLSE   bool
	UsePNorm bool
	// LSEGamma is the LSE smoothing parameter (0 → 1% of core width);
	// PNormP the p exponent (0 → 8).
	LSEGamma float64
	PNormP   float64

	// TargetDensity is the utilization limit γ in (0, 1]; default 1.
	TargetDensity float64
	// MaxIterations bounds global placement iterations (default 80).
	MaxIterations int
	// InitialSolves is the number of unconstrained interconnect solves
	// before the first projection (default 5).
	InitialSolves int
	// GapTol is the relative duality-gap convergence threshold (default 0.08).
	GapTol float64
	// PiTol stops when Π falls below PiTol·Π₁ (default 0.02).
	PiTol float64
	// MinIterations before convergence may be declared (default 8).
	MinIterations int

	// Schedule selects the λ update rule.
	Schedule Schedule
	// FinestGrid disables grid coarsening (Table 1 ablation).
	FinestGrid bool
	// OptimalLeafSpreading uses the exact 1-D PAV spreading in projection
	// leaves (§S2's convex subproblem) instead of uniform spreading.
	OptimalLeafSpreading bool
	// GridMax caps the bin grid dimension (0 → 192).
	GridMax int
	// ProjectionRefine, when set, post-processes each projection: it is
	// called with the netlist positioned at the anchors and may improve
	// them in place (the "P_C += FastPlace-DP" ablation of Table 1).
	ProjectionRefine func(nl *netlist.Netlist) error

	// Routability enables the SimPLR-style routability extension (paper
	// §5): cells in RUDY-congested bins are temporarily inflated before
	// each feasibility projection so P_C separates them further.
	Routability bool
	// RoutingCapacity is the routing supply per unit area for the RUDY
	// map; 0 self-calibrates so the initial average congestion is ~0.7.
	RoutingCapacity float64
	// RoutabilityAlpha scales the congestion-driven inflation (default 1).
	RoutabilityAlpha float64

	// CellPenalty weighs the penalty term per movable cell (Formula 13);
	// nil means uniform 1.
	CellPenalty []float64
	// NoMacroLambdaScale disables the per-macro λ scaling of §5.
	NoMacroLambdaScale bool

	// Eps is the linearization floor (0 → 1.5× row height).
	Eps float64
	// CG configures the linear solver.
	CG sparse.CGOptions
	// OnIteration, when set, observes per-iteration statistics.
	OnIteration func(IterStats)
}

func (o *Options) fill() {
	if o.TargetDensity <= 0 || o.TargetDensity > 1 {
		o.TargetDensity = 1
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 80
	}
	if o.InitialSolves <= 0 {
		o.InitialSolves = 5
	}
	if o.GapTol <= 0 {
		o.GapTol = 0.08
	}
	if o.PiTol <= 0 {
		o.PiTol = 0.02
	}
	if o.MinIterations <= 0 {
		o.MinIterations = 8
	}
	if o.GridMax <= 0 {
		o.GridMax = 192
	}
}

// IterStats records one global placement iteration (Figure 1 data).
type IterStats struct {
	Iter   int
	Lambda float64
	// Phi is the interconnect cost Φ (weighted HPWL) of the lower-bound
	// placement; PhiUpper of the anchor (C-feasible) placement.
	Phi, PhiUpper float64
	// Pi is the L1 distance to the projection, L the Lagrangian Φ + λΠ.
	Pi, L float64
	// Overflow is the density overflow ratio of the lower-bound placement.
	Overflow float64
	// GridNX is the projection grid resolution used.
	GridNX int
}

// SelfConsistency aggregates the Formula 11 check (paper §S2).
type SelfConsistency struct {
	// Total checks performed (one per iteration after the first).
	Total int
	// Consistent: premise and conclusion both held.
	Consistent int
	// Inconsistent: premise held, conclusion failed.
	Inconsistent int
	// PremiseFailed: the sufficient condition was not satisfied.
	PremiseFailed int
}

// ConsistentFrac returns the fraction of checks that were self-consistent.
func (s SelfConsistency) ConsistentFrac() float64 {
	if s.Total == 0 {
		return 1
	}
	return float64(s.Consistent) / float64(s.Total)
}

// Result summarizes a placement run.
type Result struct {
	Iterations  int
	Converged   bool
	FinalLambda float64
	// HPWL is the unweighted HPWL of the final placement; WHPWL the
	// net-weighted value.
	HPWL, WHPWL float64
	// GapFinal is the last relative duality gap; BestUpper the lowest
	// anchor-placement Φ seen during the run.
	GapFinal, BestUpper float64
	History             []IterStats
	SelfCons            SelfConsistency
	// Kernel timing breakdown: system assembly, CG solves, and feasibility
	// projection (grid build + spreading + interpolation). Zero for the
	// LSE/PNorm primal steps, which do not use the quadratic solver.
	AssemblyTime, SolveTime, ProjectionTime time.Duration
}

// Place runs ComPLx global placement on nl in place. The final placement is
// the best C-feasible (anchor) placement found; it is nearly overlap-free
// and intended to be finished by legalization and detailed placement.
//
// Place follows the validate-then-place contract: nl is checked with
// netlist.Validate before any numerics run, and all failures are returned
// as *perr.Error values carrying the stage and iteration. When a primal
// solve produces a non-finite system (sparse.ErrNotFinite), Place degrades
// gracefully: it restores the last finite placement snapshot and retries
// once with a relaxed linearization floor and CG tolerance before
// surfacing the error.
func Place(nl *netlist.Netlist, opt Options) (*Result, error) {
	opt.fill()
	if err := nl.Validate(); err != nil {
		return nil, perr.Wrap(perr.StageValidate, err)
	}
	mov := nl.Movables()
	if len(mov) == 0 {
		return nil, perr.New(perr.StageValidate, "core: netlist %q has no movable cells", nl.Name)
	}
	if opt.CellPenalty != nil && len(opt.CellPenalty) != len(mov) {
		return nil, perr.New(perr.StageValidate, "core: CellPenalty has %d entries for %d movables",
			len(opt.CellPenalty), len(mov))
	}
	for k, p := range opt.CellPenalty {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return nil, perr.New(perr.StageValidate, "core: CellPenalty[%d] = %g is not a finite non-negative weight", k, p)
		}
	}

	// Per-cell λ scale: macro area ratio (paper §5) times criticality.
	scale := make([]float64, len(mov))
	avgStd := avgStdArea(nl)
	for k, i := range mov {
		s := 1.0
		c := &nl.Cells[i]
		if !opt.NoMacroLambdaScale && c.Kind == netlist.Macro && avgStd > 0 {
			s = math.Max(1, c.Area()/avgStd)
		}
		if opt.CellPenalty != nil {
			s *= opt.CellPenalty[k]
		}
		scale[k] = s
	}

	if opt.UseLSE && opt.UsePNorm {
		return nil, perr.New(perr.StageValidate, "core: UseLSE and UsePNorm are mutually exclusive")
	}
	// One reusable quadratic solver for the whole run: its incremental
	// assembler and CG workspaces persist across iterations. The solver
	// variable is reassigned by the graceful-degradation retry, so the
	// metrics of retired solvers are accumulated separately.
	qsolver := qp.NewSolver(nl, qp.Options{Model: opt.Model, Eps: opt.Eps, CG: opt.CG})
	var retired qp.Metrics
	kernelTimes := func() (assembly, cg time.Duration) {
		return retired.Assembly + qsolver.Metrics.Assembly, retired.CG + qsolver.Metrics.CG
	}
	solveWL := func(anchors []geom.Point, lambdas []float64) error {
		switch {
		case opt.UseLSE:
			o := lse.NewObjective(nl, opt.LSEGamma)
			o.Anchors = anchors
			o.Lambda = lambdas
			lse.Solve(o, lse.MinimizeOptions{MaxIter: 60})
			return nil
		case opt.UsePNorm:
			o := lse.NewPNorm(nl, opt.PNormP)
			o.Anchors = anchors
			o.Lambda = lambdas
			lse.SolveWith(nl, o, lse.MinimizeOptions{MaxIter: 60})
			return nil
		}
		var qa *qp.Anchors
		if anchors != nil {
			qa = &qp.Anchors{Pos: anchors, Lambda: lambdas}
		}
		_, err := qsolver.Solve(qa)
		return err
	}

	// lastFinite snapshots the most recent all-finite placement so that a
	// solve that goes non-finite (degenerate system, overflowing weights)
	// can be rolled back instead of poisoning the rest of the run.
	lastFinite := nl.SnapshotPositions()
	relaxedRetry := false
	solveStep := func(iter int, anchors []geom.Point, lambdas []float64) error {
		err := solveWL(anchors, lambdas)
		if err == nil && !finitePositions(nl, mov) {
			err = fmt.Errorf("core: placement went non-finite after primal solve: %w", sparse.ErrNotFinite)
		}
		if err != nil && errors.Is(err, sparse.ErrNotFinite) && !relaxedRetry {
			// Graceful degradation: restore the last finite snapshot and
			// retry once with a relaxed linearization floor and a looser CG
			// tolerance. This trades a little wirelength for survival on
			// near-degenerate systems; a second failure is surfaced.
			relaxedRetry = true
			if rerr := nl.RestorePositions(lastFinite); rerr != nil {
				return perr.WrapIter(perr.StageSolve, iter, rerr)
			}
			cg := opt.CG
			if cg.Tol <= 0 {
				cg.Tol = 1e-6
			}
			cg.Tol *= 100
			eps := math.Max(qsolver.Eps(), nl.RowHeight()) * 10
			retired.Assembly += qsolver.Metrics.Assembly
			retired.CG += qsolver.Metrics.CG
			retired.Solves += qsolver.Metrics.Solves
			qsolver = qp.NewSolver(nl, qp.Options{Model: opt.Model, Eps: eps, CG: cg})
			err = solveWL(anchors, lambdas)
			if err == nil && !finitePositions(nl, mov) {
				err = fmt.Errorf("core: placement still non-finite after relaxed retry: %w", sparse.ErrNotFinite)
			}
		}
		if err != nil {
			return perr.WrapIter(perr.StageSolve, iter, err)
		}
		lastFinite = nl.SnapshotPositions()
		return nil
	}

	// Initial interconnect-only iterations.
	for i := 0; i < opt.InitialSolves; i++ {
		if err := solveStep(0, nil, nil); err != nil {
			return nil, err
		}
	}

	shredder := shred.New(nl, opt.TargetDensity)
	finestNX, _ := density.AutoResolution(shredder.NumItems(), 2.5, opt.GridMax)

	res := &Result{}
	var lambda, h, piFirst, piPrev float64
	bestUpper := math.Inf(1)
	// bestFine tracks the lowest-Φ anchor placement among finest-grid
	// iterations: the projection there measures feasibility at full
	// accuracy, so that iterate is the best C-feasible result of the run
	// (the paper's refined convergence criterion reads the result from the
	// best upper bound).
	bestFine := math.Inf(1)
	var bestFineAnchors []geom.Point
	var prevPos, prevAnchors []geom.Point

	for k := 1; k <= opt.MaxIterations; k++ {
		tProj := time.Now()
		nx := gridDim(k, finestNX, opt.FinestGrid)
		grid, err := density.NewGridForNetlist(nl, nx, nx, opt.TargetDensity)
		if err != nil {
			return nil, perr.WrapIter(perr.StageProject, k, err)
		}
		proj := spread.NewProjector(grid, spread.Options{OptimalLeaf: opt.OptimalLeafSpreading})
		items := shredder.Items()
		if opt.Routability {
			if err := inflateItems(nl, shredder, items, nx, &opt); err != nil {
				return nil, perr.WrapIter(perr.StageProject, k, err)
			}
		}
		anchors, err := shredder.Interpolate(proj.Project(items))
		if err != nil {
			return nil, perr.WrapIter(perr.StageProject, k, err)
		}
		region.SnapAnchors(nl, anchors)
		res.ProjectionTime += time.Since(tProj)
		if opt.ProjectionRefine != nil {
			if err := refineAnchors(nl, anchors, opt.ProjectionRefine); err != nil {
				return nil, err
			}
		}

		curPos := nl.Positions()
		pi := spread.L1Distance(curPos, anchors)
		phi := netmodel.WeightedHPWL(nl)
		phiUpper, err := evalAt(nl, anchors)
		if err != nil {
			return nil, perr.WrapIter(perr.StageProject, k, err)
		}

		// Multiplier schedule.
		switch {
		case k == 1:
			if pi <= 1e-12 {
				// Already feasible: done before any penalized solve.
				res.Converged = true
				res.Iterations = 0
				res.AssemblyTime, res.SolveTime = kernelTimes()
				if err := finalize(nl, res, anchors); err != nil {
					return nil, err
				}
				return res, nil
			}
			lambda = phi / (100 * pi)
			// h is the additive scale of Formula 12. Setting it to Φ/Π (=
			// 100·λ₁) makes the 2× cap govern the early iterations and the
			// Π-proportional term self-regulate the later ones.
			h = 100 * lambda
			piFirst = pi
		case opt.Schedule == ScheduleSimPL:
			// SimPL's pseudonet weights ramp linearly with the iteration
			// number; h/12 reproduces that gentler, non-adaptive growth at
			// the ~40-60 iteration convergence range SimPL reports.
			lambda += h / 12
		default: // Formula 12
			ratio := 1.0
			if piPrev > 0 {
				ratio = pi / piPrev
			}
			// The paper suggests capping λ growth at, e.g., 100% per
			// iteration; 50% converges to slightly better wirelength on the
			// synthetic suites at the same iteration counts.
			lambda = math.Min(1.5*lambda, lambda+ratio*h)
		}
		piPrev = pi

		// Self-consistency check (Formula 11) against the previous iterate.
		if prevPos != nil {
			res.SelfCons.Total++
			premise := spread.L1Distance(prevPos, prevAnchors) > spread.L1Distance(curPos, prevAnchors)
			if !premise {
				res.SelfCons.PremiseFailed++
			} else if spread.L1Distance(prevPos, anchors) > spread.L1Distance(curPos, anchors) {
				res.SelfCons.Consistent++
			} else {
				res.SelfCons.Inconsistent++
			}
		}
		prevPos, prevAnchors = curPos, anchors

		grid.AccumulateMovable(nl)
		st := IterStats{
			Iter: k, Lambda: lambda,
			Phi: phi, PhiUpper: phiUpper,
			Pi: pi, L: phi + lambda*pi,
			Overflow: grid.OverflowRatio(),
			GridNX:   nx,
		}
		res.History = append(res.History, st)
		if opt.OnIteration != nil {
			opt.OnIteration(st)
		}

		if phiUpper < bestUpper {
			bestUpper = phiUpper
		}
		if nx == finestNX {
			// Rank finest-grid iterates by their ISPD-style scaled cost:
			// anchor wirelength inflated by the anchors' own residual
			// overflow (the approximate projection may leave some).
			ov, err := anchorOverflow(nl, grid, anchors)
			if err != nil {
				return nil, perr.WrapIter(perr.StageProject, k, err)
			}
			score := phiUpper * (1 + ov)
			if score < bestFine {
				bestFine = score
				bestFineAnchors = anchors
			}
		}
		gap := 0.0
		if phiUpper > 0 {
			gap = (phiUpper - phi) / phiUpper
		}
		res.GapFinal = gap
		res.Iterations = k
		res.FinalLambda = lambda
		if k >= opt.MinIterations && (gap < opt.GapTol || pi < opt.PiTol*piFirst) {
			res.Converged = true
			break
		}

		// Primal step: anchored interconnect solve.
		lambdas := make([]float64, len(mov))
		for i := range lambdas {
			lambdas[i] = lambda * scale[i]
		}
		if err := solveStep(k, anchors, lambdas); err != nil {
			return nil, err
		}
	}

	// The result is read from the best C-feasible iterate measured at the
	// finest projection grid (paper §4's refined criterion); earlier
	// coarse-grid upper bounds under-measure infeasibility and are tracked
	// only for statistics. Runs that never reach the finest grid fall back
	// to the last anchors.
	final := bestFineAnchors
	if final == nil {
		final = prevAnchors
	}
	if final == nil {
		final = nl.Positions()
	}
	res.BestUpper = bestUpper
	res.AssemblyTime, res.SolveTime = kernelTimes()
	if err := finalize(nl, res, final); err != nil {
		return nil, err
	}
	return res, nil
}

// finalize applies the chosen anchor placement and fills the result metrics.
func finalize(nl *netlist.Netlist, res *Result, anchors []geom.Point) error {
	if err := nl.SetPositions(anchors); err != nil {
		return perr.Wrap(perr.StageProject, err)
	}
	region.SnapPlacement(nl)
	res.HPWL = netmodel.HPWL(nl)
	res.WHPWL = netmodel.WeightedHPWL(nl)
	return nil
}

// finitePositions reports whether every movable cell position is finite.
func finitePositions(nl *netlist.Netlist, mov []int) bool {
	for _, i := range mov {
		c := &nl.Cells[i]
		if math.IsNaN(c.X) || math.IsNaN(c.Y) || math.IsInf(c.X, 0) || math.IsInf(c.Y, 0) {
			return false
		}
	}
	return true
}

// inflateItems applies SimPLR-style congestion-driven inflation: item
// dimensions are scaled by sqrt of the per-cell inflation factor, so item
// area grows by the factor. The routing capacity self-calibrates on first
// use so the initial average congestion is ~0.7.
func inflateItems(nl *netlist.Netlist, sh *shred.Shredder, items []spread.Item, nx int, opt *Options) error {
	if opt.RoutingCapacity <= 0 {
		// Calibrate against a unit-capacity map: congestion there equals raw
		// demand density, so capacity = avg/0.7 yields ~0.7 average
		// congestion.
		probe, err := congest.NewMap(nl.Core, nx, nx, 1)
		if err != nil {
			return err
		}
		probe.AddNetlist(nl)
		opt.RoutingCapacity = math.Max(probe.Stats().Avg/0.7, 1e-12)
	}
	cm, err := congest.NewMap(nl.Core, nx, nx, opt.RoutingCapacity)
	if err != nil {
		return err
	}
	cm.AddNetlist(nl)
	alpha := opt.RoutabilityAlpha
	if alpha <= 0 {
		alpha = 1
	}
	factors := cm.InflationFactors(nl, alpha, 2)
	for i := range items {
		f := math.Sqrt(factors[sh.Owner(i)])
		items[i].W *= f
		items[i].H *= f
	}
	return nil
}

// anchorOverflow measures the density overflow ratio of an anchor
// placement on the given grid.
func anchorOverflow(nl *netlist.Netlist, grid *density.Grid, anchors []geom.Point) (float64, error) {
	saved := nl.Positions()
	if err := nl.SetPositions(anchors); err != nil {
		return 0, err
	}
	grid.AccumulateMovable(nl)
	ov := grid.OverflowRatio()
	if err := nl.SetPositions(saved); err != nil {
		return 0, err
	}
	return ov, nil
}

// evalAt returns the weighted HPWL with movable centers temporarily set to
// the given positions.
func evalAt(nl *netlist.Netlist, pos []geom.Point) (float64, error) {
	saved := nl.Positions()
	if err := nl.SetPositions(pos); err != nil {
		return 0, err
	}
	v := netmodel.WeightedHPWL(nl)
	if err := nl.SetPositions(saved); err != nil {
		return 0, err
	}
	return v, nil
}

// refineAnchors runs the user hook on the netlist positioned at the anchors
// and reads the refined locations back, restoring the working placement.
func refineAnchors(nl *netlist.Netlist, anchors []geom.Point, hook func(*netlist.Netlist) error) error {
	saved := nl.Positions()
	if err := nl.SetPositions(anchors); err != nil {
		return err
	}
	err := hook(nl)
	if err == nil {
		copy(anchors, nl.Positions())
	}
	if rerr := nl.SetPositions(saved); rerr != nil && err == nil {
		err = rerr
	}
	return err
}

// gridDim implements the coarse-to-fine grid schedule: the projection grid
// starts at 1/8 of the finest resolution and doubles every six iterations
// (SimPL's accuracy ramp); FinestGrid pins it to the finest resolution.
func gridDim(iter, finest int, finestOnly bool) int {
	if finestOnly {
		return finest
	}
	shift := 3 - (iter-1)/6
	if shift < 0 {
		shift = 0
	}
	nx := finest >> uint(shift)
	if nx < 8 {
		nx = 8
	}
	if nx > finest {
		nx = finest
	}
	return nx
}

func avgStdArea(nl *netlist.Netlist) float64 {
	var a float64
	n := 0
	for _, i := range nl.Movables() {
		if nl.Cells[i].Kind == netlist.Std {
			a += nl.Cells[i].Area()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return a / float64(n)
}
