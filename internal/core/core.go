// Package core implements the ComPLx global placement algorithm: a
// projected-subgradient primal-dual Lagrange optimization (paper §3–§5).
//
// Each iteration alternates
//
//  1. a dual step — the feasibility projection P_C (package spread, with
//     macro shredding from package shred and region snapping from package
//     region) producing C-feasible anchor locations (x°, y°);
//  2. a primal step — minimization of the simplified Lagrangian
//     L°(x, y, λ) = Φ(x, y) + λ‖(x, y) − (x°, y°)‖₁ via one anchored
//     quadratic solve (package qp) or a nonlinear log-sum-exp solve
//     (package lse);
//  3. the multiplier update of Formula 12 with λ₁ = Φ/(100·Π).
//
// Convergence is declared on the relative duality gap
// ΔΦ = Φ(x°, y°) − Φ(x, y) (Formula 8) or when the penalty Π nearly
// vanishes. Per-macro multipliers are scaled by macro area (paper §5) and
// the penalty term can be weighted by per-cell criticalities (Formula 13).
//
// The iteration skeleton itself lives in internal/engine; this package maps
// placement Options onto the engine's pluggable pieces — quadratic / LSE /
// p-norm primal solvers, the spreading projector (optionally decorated with
// a refinement hook), and the ComPLx / SimPL multiplier schedules — and
// keeps the public Place API stable. PlaceContext adds cooperative
// cancellation on the same engine.
package core

import (
	"context"
	"math"

	"complx/internal/chkpt"
	"complx/internal/engine"
	"complx/internal/netlist"
	"complx/internal/obs"
	"complx/internal/perr"
	"complx/internal/qp"
	"complx/internal/resilience"
	"complx/internal/sparse"

	"complx/internal/netmodel"
)

// Schedule selects the multiplier update rule.
type Schedule int

const (
	// ScheduleComPLx uses Formula 12: λ_{k+1} = min(2λ_k, λ_k + (Π_{k+1}/Π_k)·h).
	ScheduleComPLx Schedule = iota
	// ScheduleSimPL grows λ by a fixed increment per iteration — the
	// pseudonet-weight schedule of the SimPL special case.
	ScheduleSimPL
)

func (s Schedule) String() string {
	if s == ScheduleSimPL {
		return "simpl"
	}
	return "complx"
}

// Options configures a placement run.
type Options struct {
	// Model selects the quadratic net decomposition (default B2B).
	Model netmodel.Model
	// UseLSE switches the primal step to the nonlinear log-sum-exp
	// instantiation; UsePNorm to the p,β-regularization (paper §S1). At
	// most one may be set.
	UseLSE   bool
	UsePNorm bool
	// LSEGamma is the LSE smoothing parameter (0 → 1% of core width);
	// PNormP the p exponent (0 → 8).
	LSEGamma float64
	PNormP   float64

	// TargetDensity is the utilization limit γ in (0, 1]; default 1.
	TargetDensity float64
	// MaxIterations bounds global placement iterations (default 80).
	MaxIterations int
	// InitialSolves is the number of unconstrained interconnect solves
	// before the first projection (default 5).
	InitialSolves int
	// GapTol is the relative duality-gap convergence threshold (default 0.08).
	GapTol float64
	// PiTol stops when Π falls below PiTol·Π₁ (default 0.02).
	PiTol float64
	// MinIterations before convergence may be declared (default 8).
	MinIterations int

	// Schedule selects the λ update rule.
	Schedule Schedule
	// FinestGrid disables grid coarsening (Table 1 ablation).
	FinestGrid bool
	// OptimalLeafSpreading uses the exact 1-D PAV spreading in projection
	// leaves (§S2's convex subproblem) instead of uniform spreading.
	OptimalLeafSpreading bool
	// GridMax caps the bin grid dimension (0 → 192).
	GridMax int
	// ProjectionRefine, when set, post-processes each projection: it is
	// called with the netlist positioned at the anchors and may improve
	// them in place (the "P_C += FastPlace-DP" ablation of Table 1).
	ProjectionRefine func(nl *netlist.Netlist) error

	// Routability enables the SimPLR-style routability extension (paper
	// §5): cells in RUDY-congested bins are temporarily inflated before
	// each feasibility projection so P_C separates them further.
	Routability bool
	// RoutingCapacity is the routing supply per unit area for the RUDY
	// map; 0 self-calibrates so the initial average congestion is ~0.7.
	RoutingCapacity float64
	// RoutabilityAlpha scales the congestion-driven inflation (default 1).
	RoutabilityAlpha float64

	// CellPenalty weighs the penalty term per movable cell (Formula 13);
	// nil means uniform 1.
	CellPenalty []float64
	// NoMacroLambdaScale disables the per-macro λ scaling of §5.
	NoMacroLambdaScale bool

	// Eps is the linearization floor (0 → 1.5× row height).
	Eps float64
	// CG configures the linear solver.
	CG sparse.CGOptions
	// Precond selects the CG preconditioner: one of sparse.PrecondKinds
	// ("jacobi", "ssor", "ic0", "mg"), or ""/"auto" for the size heuristic
	// (Jacobi below qp.AutoPrecondMinVars variables, IC(0) above).
	Precond string
	// PrecondRefresh is the solve cadence at which factor-holding
	// preconditioners fully rebuild rather than diagonal-refresh
	// (0 → qp.DefaultPrecondRefresh); ignored for "jacobi".
	PrecondRefresh int
	// OnIteration, when set, observes per-iteration statistics.
	OnIteration func(IterStats)
	// Obs, when non-nil, instruments the run (spans, metrics, iteration
	// trace). Instrumentation only reads placement state, so observed runs
	// are bitwise identical to unobserved ones.
	Obs *obs.Observer

	// Checkpoint, when non-nil, receives complete engine snapshots every
	// IntervalOrDefault-th iteration and on cancellation (chkpt.Manager is
	// the persistent implementation). Resume, when non-nil, primes the run
	// from a previously saved snapshot; the resumed run is bitwise
	// identical to the uninterrupted one. See DESIGN.md §10.
	Checkpoint engine.CheckpointSink
	Resume     *chkpt.State
	// RecoveryPolicy overrides the solver fallback ladder (nil selects
	// resilience.DefaultPolicy).
	RecoveryPolicy *resilience.Policy
}

func (o *Options) fill() {
	if o.TargetDensity <= 0 || o.TargetDensity > 1 {
		o.TargetDensity = 1
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 80
	}
	if o.InitialSolves <= 0 {
		o.InitialSolves = 5
	}
	if o.GapTol <= 0 {
		o.GapTol = 0.08
	}
	if o.PiTol <= 0 {
		o.PiTol = 0.02
	}
	if o.MinIterations <= 0 {
		o.MinIterations = 8
	}
	if o.GridMax <= 0 {
		o.GridMax = 192
	}
}

// IterStats records one global placement iteration (Figure 1 data). It is
// the engine's statistics record; see engine.IterStats for the fields.
type IterStats = engine.IterStats

// SelfConsistency aggregates the Formula 11 check (paper §S2).
type SelfConsistency = engine.SelfConsistency

// Result summarizes a placement run.
type Result = engine.Result

// Place runs ComPLx global placement on nl in place. The final placement is
// the best C-feasible (anchor) placement found; it is nearly overlap-free
// and intended to be finished by legalization and detailed placement.
//
// Place follows the validate-then-place contract: nl is checked with
// netlist.Validate before any numerics run, and all failures are returned
// as *perr.Error values carrying the stage and iteration. When a primal
// solve produces a non-finite system (sparse.ErrNotFinite), Place degrades
// gracefully through the solver fallback ladder (internal/resilience):
// restore the last finite snapshot, relax the solver numerics, restart
// from the last projection, damp λ — surfacing a stage=recover error only
// when the whole ladder is exhausted. Every attempt is recorded in
// Result.Recovery.
func Place(nl *netlist.Netlist, opt Options) (*Result, error) {
	return PlaceContext(context.Background(), nl, opt)
}

// PlaceContext is Place with cooperative cancellation: the context is
// observed by the CG inner iterations, the nonlinear line searches and the
// projection's per-region sweeps, so the run stops within one inner sweep
// of cancellation. On cancellation the best C-feasible placement found so
// far is still applied to nl (the same selection rule as a completed run),
// Result.Cancelled is set, and the returned error wraps ctx.Err() in a
// *perr.Error carrying the stage and iteration.
func PlaceContext(ctx context.Context, nl *netlist.Netlist, opt Options) (*Result, error) {
	opt.fill()
	if err := nl.Validate(); err != nil {
		return nil, perr.Wrap(perr.StageValidate, err)
	}
	mov := nl.Movables()
	if len(mov) == 0 {
		return nil, perr.New(perr.StageValidate, "core: netlist %q has no movable cells", nl.Name)
	}
	if opt.CellPenalty != nil && len(opt.CellPenalty) != len(mov) {
		return nil, perr.New(perr.StageValidate, "core: CellPenalty has %d entries for %d movables",
			len(opt.CellPenalty), len(mov))
	}
	for k, p := range opt.CellPenalty {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return nil, perr.New(perr.StageValidate, "core: CellPenalty[%d] = %g is not a finite non-negative weight", k, p)
		}
	}

	// Per-cell λ scale: macro area ratio (paper §5) times criticality.
	scale := make([]float64, len(mov))
	avgStd := avgStdArea(nl)
	for k, i := range mov {
		s := 1.0
		c := &nl.Cells[i]
		if !opt.NoMacroLambdaScale && c.Kind == netlist.Macro && avgStd > 0 {
			s = math.Max(1, c.Area()/avgStd)
		}
		if opt.CellPenalty != nil {
			s *= opt.CellPenalty[k]
		}
		scale[k] = s
	}

	if opt.UseLSE && opt.UsePNorm {
		return nil, perr.New(perr.StageValidate, "core: UseLSE and UsePNorm are mutually exclusive")
	}
	// Validate the preconditioner name up front so a typo fails at
	// StageValidate instead of mid-run inside the first primal solve.
	if _, err := qp.ResolvePrecond(opt.Precond, 0); err != nil {
		return nil, perr.Wrap(perr.StageValidate, err)
	}
	// Primal step: the anchored quadratic solver with its incremental
	// assembler and CG workspaces reused across iterations, or one of the
	// nonlinear instantiations.
	var primal engine.PrimalSolver
	switch {
	case opt.UseLSE:
		primal = &engine.LSEPrimal{NL: nl, Gamma: opt.LSEGamma}
	case opt.UsePNorm:
		primal = &engine.PNormPrimal{NL: nl, P: opt.PNormP}
	default:
		primal = engine.NewQuadraticPrimal(nl, qp.Options{
			Model: opt.Model, Eps: opt.Eps, CG: opt.CG, Obs: opt.Obs,
			Precond: opt.Precond, PrecondRefresh: opt.PrecondRefresh,
		})
	}

	// Dual step: the spreading projector, optionally decorated with the
	// refinement hook.
	sp := engine.NewSpreadProjector(nl, opt.TargetDensity, opt.GridMax)
	sp.FinestGrid = opt.FinestGrid
	sp.OptimalLeaf = opt.OptimalLeafSpreading
	sp.Routability = opt.Routability
	sp.RoutingCapacity = opt.RoutingCapacity
	sp.RoutabilityAlpha = opt.RoutabilityAlpha
	sp.Obs = opt.Obs
	var projector engine.Projector = sp
	if opt.ProjectionRefine != nil {
		projector = &engine.RefineProjector{Inner: sp, NL: nl, Refine: opt.ProjectionRefine}
	}

	var sched engine.Schedule = engine.ComPLxSchedule{}
	if opt.Schedule == ScheduleSimPL {
		sched = engine.SimPLSchedule{}
	}
	var mon engine.Monitor
	if opt.OnIteration != nil {
		mon = engine.MonitorFunc(opt.OnIteration)
	}

	loop := &engine.Loop{
		Netlist:        nl,
		Primal:         primal,
		Projector:      projector,
		Schedule:       sched,
		Monitor:        mon,
		Obs:            opt.Obs,
		MaxIterations:  opt.MaxIterations,
		InitialSolves:  opt.InitialSolves,
		MinIterations:  opt.MinIterations,
		GapTol:         opt.GapTol,
		PiTol:          opt.PiTol,
		LambdaScale:    scale,
		Design:         nl.Name,
		Algorithm:      opt.Schedule.String(),
		Checkpoint:     opt.Checkpoint,
		Resume:         opt.Resume,
		RecoveryPolicy: opt.RecoveryPolicy,
	}
	return loop.Run(ctx)
}

func avgStdArea(nl *netlist.Netlist) float64 {
	var a float64
	n := 0
	for _, i := range nl.Movables() {
		if nl.Cells[i].Kind == netlist.Std {
			a += nl.Cells[i].Area()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return a / float64(n)
}
