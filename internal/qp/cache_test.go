package qp

import (
	"fmt"
	"sync"
	"testing"

	"complx/internal/gen"
	"complx/internal/geom"
	"complx/internal/netlist"
)

// genDesign generates a small synthetic design with a per-stream seed so
// concurrent solve streams work on structurally distinct netlists.
func genDesign(t testing.TB, seed int64) *netlist.Netlist {
	t.Helper()
	nl, err := gen.Generate(gen.Spec{
		Name: fmt.Sprintf("cache-%d", seed), NumCells: 200, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// positions flattens a netlist's movable centers for bitwise comparison.
func positions(nl *netlist.Netlist) []geom.Point {
	mov := nl.Movables()
	out := make([]geom.Point, len(mov))
	for k, i := range mov {
		out[k] = nl.Cells[i].Center()
	}
	return out
}

// TestSolveConcurrentStreams runs several one-shot Solve streams on
// distinct netlists concurrently (the multi-tenant daemon shape) and
// requires each stream's trajectory to be bitwise identical to a serial
// reference — proving the facade cache neither shares Solver state between
// netlists nor perturbs results when entries are evicted or rebuilt. Run
// under -race this is also the facade cache's data-race proof.
func TestSolveConcurrentStreams(t *testing.T) {
	ResetSolverCache()
	const streams = 6 // more than SolverCacheSize: forces eviction churn
	const rounds = 8

	// Serial references: one fresh run per stream.
	refs := make([][]geom.Point, streams)
	for s := 0; s < streams; s++ {
		nl := genDesign(t, int64(1000+s))
		for r := 0; r < rounds; r++ {
			if _, err := Solve(nl, nil, Options{Eps: 1}); err != nil {
				t.Fatalf("stream %d serial round %d: %v", s, r, err)
			}
		}
		refs[s] = positions(nl)
	}
	ResetSolverCache()

	// Concurrent streams on freshly generated (identical-by-seed) netlists.
	got := make([][]geom.Point, streams)
	errs := make([]error, streams)
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			nl := genDesign(t, int64(1000+s))
			for r := 0; r < rounds; r++ {
				if _, err := Solve(nl, nil, Options{Eps: 1}); err != nil {
					errs[s] = fmt.Errorf("round %d: %w", r, err)
					return
				}
			}
			got[s] = positions(nl)
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			t.Fatalf("stream %d: %v", s, err)
		}
	}
	for s := range refs {
		if len(got[s]) != len(refs[s]) {
			t.Fatalf("stream %d: %d positions, want %d", s, len(got[s]), len(refs[s]))
		}
		for k := range refs[s] {
			if got[s][k] != refs[s][k] {
				t.Fatalf("stream %d movable %d: concurrent %v != serial %v",
					s, k, got[s][k], refs[s][k])
			}
		}
	}
	if n := CachedSolvers(); n > SolverCacheSize {
		t.Fatalf("cache retains %d solvers, bound is %d", n, SolverCacheSize)
	}
}

// TestSolveCacheBounded cycles one-shot solves over many distinct netlists
// and requires the retained-solver count to stay at the documented bound —
// the regression test for the old single-slot cache's last-writer-wins
// leak, where every concurrent loser's Solver allocation was stranded.
func TestSolveCacheBounded(t *testing.T) {
	ResetSolverCache()
	defer ResetSolverCache()
	for i := 0; i < 3*SolverCacheSize; i++ {
		nl := genDesign(t, int64(5000+i))
		if _, err := Solve(nl, nil, Options{Eps: 1}); err != nil {
			t.Fatal(err)
		}
		if n := CachedSolvers(); n > SolverCacheSize {
			t.Fatalf("after %d netlists the cache holds %d solvers, bound is %d",
				i+1, n, SolverCacheSize)
		}
	}
	if n := CachedSolvers(); n != SolverCacheSize {
		t.Fatalf("cache holds %d solvers after churn, want the full bound %d", n, SolverCacheSize)
	}
}

// TestSolveCacheReuseAndEvict pins the cache mechanics: a repeat solve on
// the same netlist reuses the cached instance (hit), a different netlist
// gets its own entry, and a preconditioner change on a hit resets the
// resolved kind so the factor is rebuilt.
func TestSolveCacheReuseAndEvict(t *testing.T) {
	ResetSolverCache()
	defer ResetSolverCache()
	nl := genDesign(t, 42)
	if _, err := Solve(nl, nil, Options{Eps: 1}); err != nil {
		t.Fatal(err)
	}
	if n := CachedSolvers(); n != 1 {
		t.Fatalf("cache holds %d entries after one solve, want 1", n)
	}
	s := acquireSolver(nl, Options{Eps: 1})
	if s.asm == nil || s.px == nil {
		t.Fatal("acquire after release returned a fresh solver, want the cached instance")
	}
	if s.sinceSetup != 0 {
		t.Fatalf("cached solver reacquired with sinceSetup=%d, want 0 (forced full Setup)", s.sinceSetup)
	}
	releaseSolver(nl, Options{Eps: 1}, s)

	// A preconditioner switch on a cache hit must drop the resolved factor.
	s = acquireSolver(nl, Options{Eps: 1, Precond: "ssor"})
	if s.px != nil || s.kind != "" {
		t.Fatal("preconditioner change must reset the cached factor state")
	}
	releaseSolver(nl, Options{Eps: 1, Precond: "ssor"}, s)
}
