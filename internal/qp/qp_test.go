package qp

import (
	"math"
	"math/rand"
	"testing"

	"complx/internal/gen"
	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/netmodel"
)

func chainDesign(t *testing.T) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("chain")
	b.SetCore(geom.Rect{XMax: 100, YMax: 100})
	left := b.AddFixed("pl", -0.5, 49.5, 1, 1)  // center (0, 50)
	right := b.AddFixed("pr", 99.5, 49.5, 1, 1) // center (100, 50)
	c1 := b.AddCell("c1", 1, 1)
	c2 := b.AddCell("c2", 1, 1)
	c3 := b.AddCell("c3", 1, 1)
	b.AddNet("n0", 1, []netlist.PinSpec{{Cell: left}, {Cell: c1}})
	b.AddNet("n1", 1, []netlist.PinSpec{{Cell: c1}, {Cell: c2}})
	b.AddNet("n2", 1, []netlist.PinSpec{{Cell: c2}, {Cell: c3}})
	b.AddNet("n3", 1, []netlist.PinSpec{{Cell: c3}, {Cell: right}})
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range nl.Movables() {
		nl.Cells[i].SetCenter(geom.Point{X: 50, Y: 50})
	}
	return nl
}

func TestSolveChainSymmetric(t *testing.T) {
	nl := chainDesign(t)
	// From a symmetric start, the chain solves to evenly-spaced cells
	// between the pads (25, 50, 75) because the linearized weights from the
	// coincident start are all equal.
	if _, err := Solve(nl, nil, Options{Eps: 1}); err != nil {
		t.Fatal(err)
	}
	// Weights: edges to pads have |d|=50, inner edges |d|=0. After one
	// iteration positions move; iterate a few times to reach the fixed
	// point of the linearization (which reproduces min-linear-WL spacing).
	for i := 0; i < 30; i++ {
		if _, err := Solve(nl, nil, Options{Eps: 1}); err != nil {
			t.Fatal(err)
		}
	}
	xs := nl.Positions()
	if !(xs[0].X < xs[1].X && xs[1].X < xs[2].X) {
		t.Fatalf("ordering lost: %v", xs)
	}
	if math.Abs(xs[1].X-50) > 1 {
		t.Errorf("middle cell at %v, want ~50", xs[1].X)
	}
	for _, p := range xs {
		if math.Abs(p.Y-50) > 1e-6 {
			t.Errorf("y = %v, want 50", p.Y)
		}
	}
}

func TestSolveLowersHPWL(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := netlist.NewBuilder("rand")
	b.SetCore(geom.Rect{XMax: 100, YMax: 100})
	var cells []int
	for i := 0; i < 30; i++ {
		cells = append(cells, b.AddCell(name("c", i), 1, 1))
	}
	cells = append(cells, b.AddFixed("p1", 0, 0, 1, 1), b.AddFixed("p2", 99, 99, 1, 1))
	for i := 0; i < 50; i++ {
		a, c := cells[rng.Intn(len(cells))], cells[rng.Intn(len(cells))]
		if a == c {
			continue
		}
		b.AddNet(name("n", i), 1, []netlist.PinSpec{{Cell: a}, {Cell: c}})
	}
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range nl.Movables() {
		nl.Cells[i].SetCenter(geom.Point{X: 100 * rng.Float64(), Y: 100 * rng.Float64()})
	}
	before := netmodel.HPWL(nl)
	for i := 0; i < 5; i++ {
		if _, err := Solve(nl, nil, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	after := netmodel.HPWL(nl)
	if after >= before {
		t.Errorf("HPWL did not improve: %v -> %v", before, after)
	}
}

func name(p string, i int) string {
	return p + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
}

func TestAnchorsPullCells(t *testing.T) {
	nl := chainDesign(t)
	for i := 0; i < 10; i++ {
		if _, err := Solve(nl, nil, Options{Eps: 1}); err != nil {
			t.Fatal(err)
		}
	}
	free := nl.Positions()
	// Anchor the middle cell strongly at (50, 90).
	anchors := &Anchors{
		Pos:    []geom.Point{{X: free[0].X, Y: free[0].Y}, {X: 50, Y: 90}, {X: free[2].X, Y: free[2].Y}},
		Lambda: []float64{0, 100, 0},
	}
	if _, err := Solve(nl, anchors, Options{Eps: 1}); err != nil {
		t.Fatal(err)
	}
	got := nl.Positions()
	if got[1].Y < 70 {
		t.Errorf("anchored cell y = %v, want near 90", got[1].Y)
	}
	// Unanchored cells should not fly away.
	if math.Abs(got[0].X-free[0].X) > 20 {
		t.Errorf("free cell moved too far: %v vs %v", got[0], free[0])
	}
}

func TestAnchorSizeMismatch(t *testing.T) {
	nl := chainDesign(t)
	_, err := Solve(nl, &Anchors{Pos: make([]geom.Point, 1), Lambda: make([]float64, 1)}, Options{})
	if err == nil {
		t.Error("expected error for mismatched anchors")
	}
}

func TestDisconnectedCellStaysInCore(t *testing.T) {
	b := netlist.NewBuilder("disc")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c := b.AddCell("c", 1, 1)
	d := b.AddCell("d", 1, 1)
	p := b.AddFixed("p", 0, 0, 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}, {Cell: p}})
	// d has a single-pin net only: no real constraint.
	b.AddNet("n2", 1, []netlist.PinSpec{{Cell: d}})
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells[d].SetCenter(geom.Point{X: 5, Y: 5})
	if _, err := Solve(nl, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	got := nl.Cells[d].Center()
	if math.IsNaN(got.X) || !nl.Core.Contains(got) {
		t.Errorf("disconnected cell at %v", got)
	}
}

func TestClampKeepsCellsInside(t *testing.T) {
	// A cell dragged toward a pad outside the core must be clamped.
	b := netlist.NewBuilder("clamp")
	b.SetCore(geom.Rect{XMin: 10, YMin: 10, XMax: 90, YMax: 90})
	c := b.AddCell("c", 4, 4)
	p := b.AddFixed("p", 0, 0, 1, 1) // outside core
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}, {Cell: p}})
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells[c].SetCenter(geom.Point{X: 50, Y: 50})
	for i := 0; i < 5; i++ {
		if _, err := Solve(nl, nil, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	got := nl.Cells[c].Center()
	if got.X < 12 || got.Y < 12 {
		t.Errorf("cell center %v violates core clamp", got)
	}
	// Raw mode skips the clamp.
	if _, err := Solve(nl, nil, Options{Raw: true}); err != nil {
		t.Fatal(err)
	}
	raw := nl.Cells[c].Center()
	if raw.X > got.X {
		t.Errorf("raw solve should move further out: %v vs %v", raw, got)
	}
}

func BenchmarkSolve(b *testing.B) {
	nl, err := gen.Generate(gen.Spec{Name: "bench", NumCells: 8000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	anchors := &Anchors{Pos: nl.Positions(), Lambda: make([]float64, nl.NumMovable())}
	for i := range anchors.Lambda {
		anchors.Lambda[i] = 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(nl, anchors, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDenormalEpsCoincidentAnchor is the regression test for the pseudonet
// denominator floor: with a denormal Eps and an anchor exactly on top of its
// cell, w = λ/(|d|+ε) would overflow to +Inf without the MinPseudoDenom
// clamp, poisoning the SPD system. The solve must stay finite and succeed.
func TestDenormalEpsCoincidentAnchor(t *testing.T) {
	nl := chainDesign(t)
	free := nl.Positions()
	anchors := &Anchors{
		Pos:    []geom.Point{free[0], free[1], free[2]}, // exactly coincident
		Lambda: []float64{1e6, 1e6, 1e6},
	}
	// 5e-324 is the smallest positive denormal: |d| + ε == 0 + 5e-324.
	if _, err := Solve(nl, anchors, Options{Eps: 5e-324}); err != nil {
		t.Fatalf("denormal-eps solve failed: %v", err)
	}
	for _, p := range nl.Positions() {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			t.Fatalf("non-finite position %v after denormal-eps solve", p)
		}
	}
}

// TestAnchorValidation: NaN/Inf anchors and negative or non-finite
// multipliers are rejected up-front with a descriptive error rather than
// surfacing later as an opaque CG failure.
func TestAnchorValidation(t *testing.T) {
	mk := func() *Anchors {
		return &Anchors{Pos: make([]geom.Point, 3), Lambda: make([]float64, 3)}
	}
	cases := []struct {
		name string
		mut  func(*Anchors)
	}{
		{"NaN lambda", func(a *Anchors) { a.Lambda[1] = math.NaN() }},
		{"Inf lambda", func(a *Anchors) { a.Lambda[0] = math.Inf(1) }},
		{"negative lambda", func(a *Anchors) { a.Lambda[2] = -1 }},
		{"NaN anchor x", func(a *Anchors) { a.Pos[1].X = math.NaN() }},
		{"Inf anchor y", func(a *Anchors) { a.Pos[2].Y = math.Inf(-1) }},
	}
	for _, tc := range cases {
		nl := chainDesign(t)
		a := mk()
		tc.mut(a)
		if _, err := Solve(nl, a, Options{}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
