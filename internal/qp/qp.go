// Package qp performs one step of anchored quadratic placement: it
// assembles the linearized net model at the current placement, adds the
// pseudonet anchor terms that represent the L1 penalty of the ComPLx
// Lagrangian (paper §5), solves the two separable SPD systems with
// preconditioned CG, and writes the new positions back to the netlist.
//
// The hot path lives in a reusable Solver: it keeps the netmodel.Assembler
// (with its incremental shard buffers and CSR arrays), the warm-start
// vectors and the per-dimension CG workspaces alive across the outer-loop
// iterations, so repeated solves neither reassemble symbolic state from
// scratch nor reallocate work vectors. The package-level Solve function
// remains as a convenience for one-shot solves.
package qp

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"complx/internal/faultinject"
	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/netmodel"
	"complx/internal/obs"
	"complx/internal/par"
	"complx/internal/sparse"
)

// Anchors holds per-movable anchor locations and multipliers. Pos and
// Lambda are indexed in netlist.Movables order. A movable with Lambda 0 is
// unanchored.
type Anchors struct {
	Pos    []geom.Point
	Lambda []float64
}

// MinPseudoDenom is the documented floor for the linearized pseudonet
// denominator |coordinate distance| + ε. Callers may pass any positive Eps
// — including denormals — and an anchor may coincide exactly with its cell,
// in which case λ / denom would overflow to +Inf and poison the linear
// system. Clamping the denominator here bounds every pseudonet weight by
// λ / MinPseudoDenom, which stays finite for all finite λ.
const MinPseudoDenom = 1e-12

// Options configures a solve.
type Options struct {
	// Model selects the net decomposition; default B2B.
	Model netmodel.Model
	// Eps is the linearization floor; <= 0 selects 1.5x row height.
	Eps float64
	// CG configures the linear solver.
	CG sparse.CGOptions
	// ClampToCore keeps solved centers inside the core (default on via
	// Solve; set Raw to skip).
	Raw bool
	// Obs, when non-nil, records assembly/CG spans, per-solve CG statistics
	// and live per-iteration CG progress. Instrumentation is read-only; a
	// nil observer costs one branch per solve.
	Obs *obs.Observer
	// Precond selects the CG preconditioner: "jacobi", "ssor", "ic0", "mg",
	// or ""/"auto" (pick by system size, see ResolvePrecond). Non-Jacobi
	// kinds also enable the extrapolated warm start (see Solver).
	Precond string
	// PrecondRefresh is the number of solves between full preconditioner
	// Setups; in between, only the factor diagonal is refreshed (the
	// λ-continuation rank-limited update — valid when successive systems
	// differ mainly in the pseudonet anchor weights, which stamp only the
	// diagonal). 0 picks DefaultPrecondRefresh. Jacobi ignores this: its
	// refresh is a full Setup. Cadences above 1 carry factor state across
	// solves that checkpoints do not capture, so engine resume is bitwise
	// identical only at cadence 1.
	PrecondRefresh int
}

// AutoPrecondMinVars is the system size at which ""/"auto" switches from
// Jacobi to the stronger IC(0) preconditioner. The threshold is measured,
// not theoretical: on the synthetic ISPD suites, IC(0) cuts CG iterations
// by ~60-80% at every size, but below roughly this many variables CG is a
// small enough share of placement wall-clock that the factor setup and the
// perturbed outer-loop trajectory eat the savings; from here up the
// wall-clock win is consistent. Keeping small systems on Jacobi also
// preserves bitwise compatibility with the historical solver for every
// existing small-design test.
const AutoPrecondMinVars = 8192

// ResolvePrecond maps an Options.Precond kind to the concrete
// preconditioner name for an n-variable system. Kinds: "" or "auto"
// (size heuristic), or one of sparse.PrecondKinds verbatim. Callers that
// only need validation may pass n = 0 (auto then resolves to "jacobi").
func ResolvePrecond(kind string, n int) (string, error) {
	switch kind {
	case "", "auto":
		if n >= AutoPrecondMinVars {
			return "ic0", nil
		}
		return "jacobi", nil
	case "jacobi", "ssor", "ic0", "mg":
		return kind, nil
	}
	return "", fmt.Errorf("qp: unknown preconditioner %q (want auto, jacobi, ssor, ic0 or mg)", kind)
}

// Result reports solver statistics.
type Result struct {
	X, Y sparse.CGResult
}

// Metrics accumulates kernel wall-clock time across Solver calls.
type Metrics struct {
	// Assembly is time spent building the two linear systems (net model
	// stamping, anchor terms, CSR construction).
	Assembly time.Duration
	// CG is time spent in the preconditioned CG solves (both dimensions,
	// measured as the wall-clock of the concurrent pair).
	CG time.Duration
	// PrecondSetup is time spent building or refreshing the two
	// preconditioners (outside the CG wall-clock above).
	PrecondSetup time.Duration
	// Solves counts Solve invocations; CGIters the total CG inner
	// iterations across both dimensions of every solve.
	Solves  int
	CGIters int
}

// Add accumulates other into m (used when a solver is retired and its
// totals must be preserved).
func (m *Metrics) Add(other Metrics) {
	m.Assembly += other.Assembly
	m.CG += other.CG
	m.PrecondSetup += other.PrecondSetup
	m.Solves += other.Solves
	m.CGIters += other.CGIters
}

// Solver runs repeated anchored quadratic placement steps on one netlist,
// reusing all assembly and CG state between calls. A Solver is not safe for
// concurrent use (internally it parallelizes each call on the shared worker
// pool; the x/y systems are assembled before the concurrent dimension split,
// so the Assembler is never shared between the two solve goroutines).
type Solver struct {
	nl  *netlist.Netlist
	opt Options
	asm *netmodel.Assembler
	// Reusable solve state.
	xs, ys   []float64
	cgX, cgY sparse.CGWorkspace
	// Preconditioner state: one instance per dimension (the x/y systems are
	// solved concurrently), the resolved kind, and the count of solves
	// since the last full Setup (λ-continuation refresh cadence).
	px, py     sparse.Preconditioner
	kind       string
	sinceSetup int
	// Extrapolated warm start (non-Jacobi kinds): the raw, unclamped
	// solutions of the previous two solves. x₀ = 2·x₋₁ − x₋₂ continues the
	// λ-trajectory instead of restarting from the clamped positions.
	prevX, prevY, prev2X, prev2Y []float64
	histCount                    int
	// Metrics accumulates kernel timings across calls.
	Metrics Metrics
}

// NewSolver prepares a reusable solver for nl. The netlist's structure
// (cells, nets, pins) must not change afterwards; positions may.
func NewSolver(nl *netlist.Netlist, opt Options) *Solver {
	return &Solver{
		nl:  nl,
		opt: opt,
		asm: netmodel.NewAssembler(nl, opt.Model, opt.Eps),
	}
}

// Eps returns the linearization floor of the underlying assembler.
func (s *Solver) Eps() float64 { return s.asm.Eps() }

// Precond returns the resolved preconditioner name ("jacobi", "ssor",
// "ic0" or "mg"). Before the first solve, the auto heuristic is resolved
// against the current system size.
func (s *Solver) Precond() string {
	if s.kind != "" {
		return s.kind
	}
	kind, err := ResolvePrecond(s.opt.Precond, s.asm.NumVars())
	if err != nil {
		return s.opt.Precond
	}
	return kind
}

// DefaultPrecondRefresh is the default number of solves between full
// preconditioner Setups (Options.PrecondRefresh = 0). The default is 1 —
// a full Setup every solve — for two reasons: the B2B model re-linearizes
// its off-diagonals at every placement iteration, so the "only the
// pseudonet diagonal changed" premise of the rank-limited refresh rarely
// holds in the outer loop (a stale factor costs more CG iterations than
// the O(nnz) factorization saves); and a cadence of 1 keeps each solve's
// preconditioner a pure function of the current system, which the
// checkpoint/resume bitwise-identity contract depends on. Flows that
// re-solve at a fixed linearization (λ-only sweeps) can raise the cadence
// via Options.PrecondRefresh.
const DefaultPrecondRefresh = 1

// preparePreconds resolves the preconditioner kind on first use and brings
// both per-dimension instances up to date: a full Setup every
// PrecondRefresh-th solve (or when a refresh fails), a diagonal-only
// RefreshDiag otherwise — the λ-continuation rank-limited update.
func (s *Solver) preparePreconds(ax, ay *sparse.CSR) error {
	if s.px == nil {
		kind, err := ResolvePrecond(s.opt.Precond, s.asm.NumVars())
		if err != nil {
			return err
		}
		px, err := sparse.NewPreconditioner(kind)
		if err != nil {
			return err
		}
		py, _ := sparse.NewPreconditioner(kind)
		s.kind, s.px, s.py = kind, px, py
		s.sinceSetup = 0
	}
	refresh := s.opt.PrecondRefresh
	if refresh <= 0 {
		refresh = DefaultPrecondRefresh
	}
	if s.sinceSetup > 0 && s.sinceSetup < refresh && s.kind != "jacobi" {
		rx, okx := s.px.(sparse.DiagRefresher)
		ry, oky := s.py.(sparse.DiagRefresher)
		if okx && oky && rx.RefreshDiag(ax) == nil && ry.RefreshDiag(ay) == nil {
			s.sinceSetup++
			return nil
		}
	}
	if err := s.px.Setup(ax); err != nil {
		return err
	}
	if err := s.py.Setup(ay); err != nil {
		return err
	}
	s.sinceSetup = 1
	return nil
}

// warmStart fills the CG initial guesses: the extrapolation
// x₀ = 2·x₋₁ − x₋₂ of the previous two raw solutions when available (and
// the preconditioner is not plain Jacobi, whose behavior is pinned to the
// historical solver), else the current cell centers.
func (s *Solver) warmStart(xs, ys []float64, mov []int) {
	n := len(xs)
	if s.kind != "jacobi" && s.histCount >= 2 && len(s.prevX) == n {
		ok := true
		for i := 0; i < n; i++ {
			vx := 2*s.prevX[i] - s.prev2X[i]
			vy := 2*s.prevY[i] - s.prev2Y[i]
			if math.IsNaN(vx) || math.IsInf(vx, 0) || math.IsNaN(vy) || math.IsInf(vy, 0) {
				ok = false
				break
			}
			xs[i] = vx
			ys[i] = vy
		}
		if ok {
			return
		}
	}
	for i := range xs {
		xs[i] = 0
		ys[i] = 0
	}
	for k, i := range mov {
		c := s.nl.Cells[i].Center()
		xs[k] = c.X
		ys[k] = c.Y
	}
}

// recordSolution rotates the raw solutions into the extrapolation history.
func (s *Solver) recordSolution(xs, ys []float64) {
	n := len(xs)
	if len(s.prevX) != n {
		// Size change (or first call): restart the history.
		s.histCount = 0
		s.prevX, s.prevY = growF64(nil, n), growF64(nil, n)
		s.prev2X, s.prev2Y = growF64(nil, n), growF64(nil, n)
	}
	s.prevX, s.prev2X = s.prev2X, s.prevX
	s.prevY, s.prev2Y = s.prev2Y, s.prevY
	copy(s.prevX, xs)
	copy(s.prevY, ys)
	if s.histCount < 2 {
		s.histCount++
	}
}

// CaptureContinuation returns the solver's cross-solve numeric state — the
// extrapolated warm-start history — flattened for checkpointing, or nil
// when no history has accumulated. RestoreContinuation accepts exactly this
// encoding; together they make a resumed run warm-start bitwise identically
// to the uninterrupted one.
func (s *Solver) CaptureContinuation() []float64 {
	if s.histCount == 0 {
		return nil
	}
	n := len(s.prevX)
	out := make([]float64, 0, 2+4*n)
	out = append(out, float64(s.histCount), float64(n))
	out = append(out, s.prevX...)
	out = append(out, s.prevY...)
	out = append(out, s.prev2X...)
	out = append(out, s.prev2Y...)
	return out
}

// RestoreContinuation primes the warm-start history from a
// CaptureContinuation encoding. nil or empty state resets the history.
func (s *Solver) RestoreContinuation(state []float64) error {
	if len(state) == 0 {
		s.histCount = 0
		return nil
	}
	if len(state) < 2 {
		return fmt.Errorf("qp: continuation state too short (%d values)", len(state))
	}
	hist, n := int(state[0]), int(state[1])
	if hist < 0 || hist > 2 || n < 0 || len(state) != 2+4*n {
		return fmt.Errorf("qp: malformed continuation state (hist=%d n=%d len=%d)", hist, n, len(state))
	}
	s.prevX = append(s.prevX[:0], state[2:2+n]...)
	s.prevY = append(s.prevY[:0], state[2+n:2+2*n]...)
	s.prev2X = append(s.prev2X[:0], state[2+2*n:2+3*n]...)
	s.prev2Y = append(s.prev2Y[:0], state[2+3*n:2+4*n]...)
	s.histCount = hist
	return nil
}

// growF64 mirrors sparse's slice helper for qp's own buffers.
func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Solve runs one anchored quadratic placement step and updates the movable
// cell positions of s's netlist in place. anchors may be nil for the
// unconstrained interconnect solve (λ = 0).
func (s *Solver) Solve(anchors *Anchors) (Result, error) {
	return s.SolveCtx(context.Background(), anchors)
}

// SolveCtx is Solve with cooperative cancellation: the context is checked
// before assembly and polled by both CG solves once per inner iteration. On
// cancellation the netlist positions are left at the last completed solve
// (the partial CG iterate is discarded) and the returned error wraps
// ctx.Err().
func (s *Solver) SolveCtx(ctx context.Context, anchors *Anchors) (Result, error) {
	nl, opt := s.nl, s.opt
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("qp: solve cancelled: %w", err)
	}
	if fi := faultinject.Active(); fi != nil {
		if err := fi.Fire(faultinject.QPSolve, nl.Name); err != nil {
			return Result{}, fmt.Errorf("qp: %w", err)
		}
	}
	mov := nl.Movables()
	if anchors != nil {
		if len(anchors.Pos) != len(mov) || len(anchors.Lambda) != len(mov) {
			return Result{}, fmt.Errorf("qp: anchors sized %d/%d for %d movables",
				len(anchors.Pos), len(anchors.Lambda), len(mov))
		}
		// Reject non-finite anchors/multipliers before they are stamped
		// into the SPD systems: a single NaN here would otherwise surface
		// later as an opaque CG failure.
		for k := range mov {
			a, lam := anchors.Pos[k], anchors.Lambda[k]
			if math.IsNaN(lam) || math.IsInf(lam, 0) || lam < 0 {
				return Result{}, fmt.Errorf("qp: movable %d: invalid anchor multiplier %g", k, lam)
			}
			if math.IsNaN(a.X) || math.IsNaN(a.Y) || math.IsInf(a.X, 0) || math.IsInf(a.Y, 0) {
				return Result{}, fmt.Errorf("qp: movable %d: non-finite anchor (%g, %g)", k, a.X, a.Y)
			}
		}
	}

	tAsm := time.Now()
	asmSpan := opt.Obs.StartSpan("assemble")
	sx, sy := s.asm.AssembleInto(func(bx, by *sparse.Builder, fx, fy []float64) {
		if anchors != nil {
			eps := s.asm.Eps()
			for k, i := range mov {
				lam := anchors.Lambda[k]
				if lam <= 0 {
					continue
				}
				c := nl.Cells[i].Center()
				a := anchors.Pos[k]
				// Linearized L1 pseudonets (paper §5):
				// w = λ / (|coordinate distance| + ε), per dimension. The
				// denominator is clamped to MinPseudoDenom so a denormal ε
				// with a coinciding anchor cannot overflow the weight to
				// +Inf (see the constant's doc comment).
				dx := abs(c.X-a.X) + eps
				dy := abs(c.Y-a.Y) + eps
				if dx < MinPseudoDenom {
					dx = MinPseudoDenom
				}
				if dy < MinPseudoDenom {
					dy = MinPseudoDenom
				}
				wx := lam / dx
				wy := lam / dy
				bx.AddDiag(k, wx)
				fx[k] += wx * a.X
				by.AddDiag(k, wy)
				fy[k] += wy * a.Y
			}
		}
		// Guard against singular systems (e.g. cells with no nets): a tiny
		// regularization pulls unconnected variables toward the core center.
		cc := nl.Core.Center()
		const tiny = 1e-12
		n := s.asm.NumVars()
		for k := 0; k < n; k++ {
			bx.AddDiag(k, tiny)
			fx[k] += tiny * cc.X
			by.AddDiag(k, tiny)
			fy[k] += tiny * cc.Y
		}
	})
	asmDur := time.Since(tAsm)
	s.Metrics.Assembly += asmDur
	asmSpan.End()
	opt.Obs.AddSeconds(obs.MetricAssemblySeconds, asmDur)

	// Preconditioners: full Setup or λ-continuation diagonal refresh.
	tPre := time.Now()
	if err := s.preparePreconds(sx.A, sy.A); err != nil {
		return Result{}, fmt.Errorf("qp: preconditioner: %w", err)
	}
	preDur := time.Since(tPre)
	s.Metrics.PrecondSetup += preDur
	opt.Obs.AddSeconds(obs.MetricPrecondSeconds, preDur)

	// Warm-start: extrapolate the previous two solutions, else start at the
	// current placement.
	n := s.asm.NumVars()
	if cap(s.xs) < n {
		s.xs = make([]float64, n)
		s.ys = make([]float64, n)
	}
	xs, ys := s.xs[:n], s.ys[:n]
	s.warmStart(xs, ys, mov)

	// The two dimensions are separable (paper §3): solve them concurrently.
	// Each solve issues parallel kernels against the shared worker pool.
	tCG := time.Now()
	cgSpan := opt.Obs.StartSpan("cg")
	cgOpt := opt.CG
	if cb := opt.Obs.CGProgress(); cb != nil {
		// The callback only touches atomic gauges, so sharing it between
		// the concurrent x/y solves is safe.
		cgOpt.Progress = cb
	}
	var res Result
	var errX, errY error
	var wg sync.WaitGroup
	wg.Add(1)
	// Per-job thread budgets bind to goroutines, so the y-solve goroutine
	// must re-bind the caller's limit or its kernels would run uncapped.
	lim := par.Current()
	go func() {
		defer wg.Done()
		par.With(lim, func() {
			cgOptY := cgOpt
			cgOptY.Precond = s.py
			res.Y, errY = sparse.SolvePCGCtx(ctx, sy.A, ys, sy.B, cgOptY, &s.cgY)
		})
	}()
	cgOptX := cgOpt
	cgOptX.Precond = s.px
	res.X, errX = sparse.SolvePCGCtx(ctx, sx.A, xs, sx.B, cgOptX, &s.cgX)
	wg.Wait()
	cgDur := time.Since(tCG)
	s.Metrics.CG += cgDur
	s.Metrics.Solves++
	s.Metrics.CGIters += res.X.Iterations + res.Y.Iterations
	if o := opt.Obs; o != nil {
		o.RecordCG(res.X.Iterations, res.X.Residual, res.X.Converged)
		o.RecordCG(res.Y.Iterations, res.Y.Residual, res.Y.Converged)
		o.AddSeconds(obs.MetricCGSeconds, cgDur)
		cgSpan.SetAttr("iters_x", float64(res.X.Iterations))
		cgSpan.SetAttr("iters_y", float64(res.Y.Iterations))
	}
	cgSpan.End()
	if errX != nil || errY != nil {
		// A failed solve may leave poisoned iterates; drop the extrapolation
		// history and force a full preconditioner rebuild on the next call.
		s.histCount = 0
		s.sinceSetup = 0
		if errX != nil {
			return res, fmt.Errorf("qp: x solve: %w", errX)
		}
		return res, fmt.Errorf("qp: y solve: %w", errY)
	}
	s.recordSolution(xs, ys)

	for k, i := range mov {
		p := geom.Point{X: xs[k], Y: ys[k]}
		if !opt.Raw {
			c := &nl.Cells[i]
			hw, hh := c.W/2, c.H/2
			if 2*hw > nl.Core.Width() {
				hw = nl.Core.Width() / 2
			}
			if 2*hh > nl.Core.Height() {
				hh = nl.Core.Height() / 2
			}
			p.X = geom.Clamp(p.X, nl.Core.XMin+hw, nl.Core.XMax-hw)
			p.Y = geom.Clamp(p.Y, nl.Core.YMin+hh, nl.Core.YMax-hh)
		}
		nl.Cells[i].SetCenter(p)
	}
	return res, nil
}

// SolverCacheSize bounds the number of idle facade solvers retained by
// Solve. The cache is keyed per netlist, so concurrent one-shot streams on
// up to this many distinct netlists each keep their incremental assembly
// shards, CG workspaces and warm-start history between calls; a stream
// rotating through more netlists evicts in least-recently-released order
// and pays the historical per-call build, never an unbounded pile of
// retained Solver allocations.
const SolverCacheSize = 4

// solverEntry is one idle cached solver with the identity it was built for:
// the netlist pointer plus the structural counts and assembly-relevant
// options (Model, Eps). The counts guard against a freed netlist's address
// being reused and against structural edits that change the sizes; edits
// that rewire connectivity at identical counts are — as for a long-lived
// Solver — the caller's responsibility to avoid (the netlist structure must
// not change between Solve calls, only positions).
type solverEntry struct {
	nl                *netlist.Netlist
	model             netmodel.Model
	eps               float64
	cells, nets, pins int
	s                 *Solver
}

// solverCache holds idle facade solvers in most-recently-released order.
// Entries are removed while in use, so concurrent Solve calls never share a
// Solver instance: a second concurrent solve on the same netlist simply
// builds a fresh one, and on release only one instance per netlist is
// retained (the loser is dropped, not leaked into a growing cache).
var solverCache struct {
	mu      sync.Mutex
	entries []solverEntry
}

// acquireSolver returns a cached solver for (nl, opt) when one matches,
// else a fresh one. A matching solver is removed from the cache while in
// use so concurrent Solve calls never share an instance.
func acquireSolver(nl *netlist.Netlist, opt Options) *Solver {
	c := &solverCache
	c.mu.Lock()
	for i, e := range c.entries {
		if e.nl == nl && e.model == opt.Model && e.eps == opt.Eps &&
			e.cells == nl.NumCells() && e.nets == nl.NumNets() && e.pins == nl.NumPins() {
			c.entries = append(c.entries[:i], c.entries[i+1:]...)
			c.mu.Unlock()
			s := e.s
			if s.opt.Precond != opt.Precond {
				// A different preconditioner request invalidates the resolved
				// kind, the factor state and the extrapolation history.
				s.px, s.py, s.kind = nil, nil, ""
				s.histCount = 0
			}
			// Everything the assembler depends on (Model, Eps) matched; the
			// remaining options only steer the solve itself.
			s.opt = opt
			// One-shot callers may have moved cells arbitrarily since the
			// solver was cached, so a carried preconditioner factor can be
			// stale for the system about to be assembled. Forcing the
			// since-Setup count to zero makes the next preparePreconds do a
			// full Setup even under a PrecondRefresh cadence > 1 — the
			// λ-continuation diagonal refresh is only sound inside one
			// owner's solve loop, which the facade cannot see.
			s.sinceSetup = 0
			return s
		}
	}
	c.mu.Unlock()
	return NewSolver(nl, opt)
}

// releaseSolver stores the solver back for the next one-shot call on the
// same netlist, retaining at most one instance per netlist and at most
// SolverCacheSize entries overall (least-recently-released eviction).
func releaseSolver(nl *netlist.Netlist, opt Options, s *Solver) {
	e := solverEntry{
		nl: nl, model: opt.Model, eps: opt.Eps,
		cells: nl.NumCells(), nets: nl.NumNets(), pins: nl.NumPins(),
		s: s,
	}
	c := &solverCache
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.entries {
		if c.entries[i].nl == nl {
			// A concurrent solve on the same netlist released first; keep the
			// newest instance and drop the older one instead of accumulating.
			copy(c.entries[i:], c.entries[i+1:])
			c.entries = c.entries[:len(c.entries)-1]
			break
		}
	}
	c.entries = append(c.entries, e)
	if len(c.entries) > SolverCacheSize {
		c.entries = append(c.entries[:0], c.entries[len(c.entries)-SolverCacheSize:]...)
	}
}

// CachedSolvers reports the number of idle solvers currently retained by
// the Solve facade cache (bounded by SolverCacheSize); exported for tests.
func CachedSolvers() int {
	solverCache.mu.Lock()
	defer solverCache.mu.Unlock()
	return len(solverCache.entries)
}

// ResetSolverCache drops every idle cached solver (test isolation helper).
func ResetSolverCache() {
	solverCache.mu.Lock()
	defer solverCache.mu.Unlock()
	solverCache.entries = nil
}

// Solve runs one anchored quadratic placement step and updates the movable
// cell positions of nl in place. anchors may be nil for the initial
// unconstrained solve (λ = 0). Hot loops should construct a Solver once and
// reuse it; this convenience keeps a small per-netlist cache of solvers
// behind the package facade (see SolverCacheSize), so repeated one-shot
// calls on the same netlist get incremental assembly too — including
// concurrent streams on distinct netlists, which each get their own cached
// instance instead of thrashing a single slot.
func Solve(nl *netlist.Netlist, anchors *Anchors, opt Options) (Result, error) {
	s := acquireSolver(nl, opt)
	res, err := s.Solve(anchors)
	releaseSolver(nl, opt, s)
	return res, err
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
