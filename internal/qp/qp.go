// Package qp performs one step of anchored quadratic placement: it
// assembles the linearized net model at the current placement, adds the
// pseudonet anchor terms that represent the L1 penalty of the ComPLx
// Lagrangian (paper §5), solves the two separable SPD systems with
// preconditioned CG, and writes the new positions back to the netlist.
package qp

import (
	"fmt"
	"sync"

	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/netmodel"
	"complx/internal/sparse"
)

// Anchors holds per-movable anchor locations and multipliers. Pos and
// Lambda are indexed in netlist.Movables order. A movable with Lambda 0 is
// unanchored.
type Anchors struct {
	Pos    []geom.Point
	Lambda []float64
}

// Options configures a solve.
type Options struct {
	// Model selects the net decomposition; default B2B.
	Model netmodel.Model
	// Eps is the linearization floor; <= 0 selects 1.5x row height.
	Eps float64
	// CG configures the linear solver.
	CG sparse.CGOptions
	// ClampToCore keeps solved centers inside the core (default on via
	// Solve; set Raw to skip).
	Raw bool
}

// Result reports solver statistics.
type Result struct {
	X, Y sparse.CGResult
}

// Solve runs one anchored quadratic placement step and updates the movable
// cell positions of nl in place. anchors may be nil for the initial
// unconstrained solve (λ = 0).
func Solve(nl *netlist.Netlist, anchors *Anchors, opt Options) (Result, error) {
	asm := netmodel.NewAssembler(nl, opt.Model, opt.Eps)
	bx, by, fx, fy := asm.Builders()
	mov := nl.Movables()
	if anchors != nil {
		if len(anchors.Pos) != len(mov) || len(anchors.Lambda) != len(mov) {
			return Result{}, fmt.Errorf("qp: anchors sized %d/%d for %d movables",
				len(anchors.Pos), len(anchors.Lambda), len(mov))
		}
		eps := asm.Eps()
		for k, i := range mov {
			lam := anchors.Lambda[k]
			if lam <= 0 {
				continue
			}
			c := nl.Cells[i].Center()
			a := anchors.Pos[k]
			// Linearized L1 pseudonets (paper §5):
			// w = λ / (|coordinate distance| + ε), per dimension.
			wx := lam / (abs(c.X-a.X) + eps)
			wy := lam / (abs(c.Y-a.Y) + eps)
			bx.AddDiag(k, wx)
			fx[k] += wx * a.X
			by.AddDiag(k, wy)
			fy[k] += wy * a.Y
		}
	}

	// Guard against singular systems (e.g. cells with no nets): a tiny
	// regularization pulls unconnected variables toward the core center.
	cc := nl.Core.Center()
	const tiny = 1e-12
	n := asm.NumVars()
	for k := 0; k < n; k++ {
		bx.AddDiag(k, tiny)
		fx[k] += tiny * cc.X
		by.AddDiag(k, tiny)
		fy[k] += tiny * cc.Y
	}

	ax, ay := bx.Build(), by.Build()
	// Warm-start at the current placement.
	xs := make([]float64, n)
	ys := make([]float64, n)
	for k, i := range mov {
		c := nl.Cells[i].Center()
		xs[k] = c.X
		ys[k] = c.Y
	}
	// The two dimensions are separable (paper §3): solve them concurrently.
	var res Result
	var errX, errY error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res.Y, errY = sparse.SolvePCG(ay, ys, fy, opt.CG)
	}()
	res.X, errX = sparse.SolvePCG(ax, xs, fx, opt.CG)
	wg.Wait()
	if errX != nil {
		return res, fmt.Errorf("qp: x solve: %w", errX)
	}
	if errY != nil {
		return res, fmt.Errorf("qp: y solve: %w", errY)
	}

	for k, i := range mov {
		p := geom.Point{X: xs[k], Y: ys[k]}
		if !opt.Raw {
			c := &nl.Cells[i]
			hw, hh := c.W/2, c.H/2
			if 2*hw > nl.Core.Width() {
				hw = nl.Core.Width() / 2
			}
			if 2*hh > nl.Core.Height() {
				hh = nl.Core.Height() / 2
			}
			p.X = geom.Clamp(p.X, nl.Core.XMin+hw, nl.Core.XMax-hw)
			p.Y = geom.Clamp(p.Y, nl.Core.YMin+hh, nl.Core.YMax-hh)
		}
		nl.Cells[i].SetCenter(p)
	}
	return res, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
