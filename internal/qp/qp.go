// Package qp performs one step of anchored quadratic placement: it
// assembles the linearized net model at the current placement, adds the
// pseudonet anchor terms that represent the L1 penalty of the ComPLx
// Lagrangian (paper §5), solves the two separable SPD systems with
// preconditioned CG, and writes the new positions back to the netlist.
//
// The hot path lives in a reusable Solver: it keeps the netmodel.Assembler
// (with its incremental shard buffers and CSR arrays), the warm-start
// vectors and the per-dimension CG workspaces alive across the outer-loop
// iterations, so repeated solves neither reassemble symbolic state from
// scratch nor reallocate work vectors. The package-level Solve function
// remains as a convenience for one-shot solves.
package qp

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"complx/internal/faultinject"
	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/netmodel"
	"complx/internal/obs"
	"complx/internal/sparse"
)

// Anchors holds per-movable anchor locations and multipliers. Pos and
// Lambda are indexed in netlist.Movables order. A movable with Lambda 0 is
// unanchored.
type Anchors struct {
	Pos    []geom.Point
	Lambda []float64
}

// MinPseudoDenom is the documented floor for the linearized pseudonet
// denominator |coordinate distance| + ε. Callers may pass any positive Eps
// — including denormals — and an anchor may coincide exactly with its cell,
// in which case λ / denom would overflow to +Inf and poison the linear
// system. Clamping the denominator here bounds every pseudonet weight by
// λ / MinPseudoDenom, which stays finite for all finite λ.
const MinPseudoDenom = 1e-12

// Options configures a solve.
type Options struct {
	// Model selects the net decomposition; default B2B.
	Model netmodel.Model
	// Eps is the linearization floor; <= 0 selects 1.5x row height.
	Eps float64
	// CG configures the linear solver.
	CG sparse.CGOptions
	// ClampToCore keeps solved centers inside the core (default on via
	// Solve; set Raw to skip).
	Raw bool
	// Obs, when non-nil, records assembly/CG spans, per-solve CG statistics
	// and live per-iteration CG progress. Instrumentation is read-only; a
	// nil observer costs one branch per solve.
	Obs *obs.Observer
}

// Result reports solver statistics.
type Result struct {
	X, Y sparse.CGResult
}

// Metrics accumulates kernel wall-clock time across Solver calls.
type Metrics struct {
	// Assembly is time spent building the two linear systems (net model
	// stamping, anchor terms, CSR construction).
	Assembly time.Duration
	// CG is time spent in the preconditioned CG solves (both dimensions,
	// measured as the wall-clock of the concurrent pair).
	CG time.Duration
	// Solves counts Solve invocations.
	Solves int
}

// Solver runs repeated anchored quadratic placement steps on one netlist,
// reusing all assembly and CG state between calls. A Solver is not safe for
// concurrent use (internally it parallelizes each call on the shared worker
// pool; the x/y systems are assembled before the concurrent dimension split,
// so the Assembler is never shared between the two solve goroutines).
type Solver struct {
	nl  *netlist.Netlist
	opt Options
	asm *netmodel.Assembler
	// Reusable solve state.
	xs, ys   []float64
	cgX, cgY sparse.CGWorkspace
	// Metrics accumulates kernel timings across calls.
	Metrics Metrics
}

// NewSolver prepares a reusable solver for nl. The netlist's structure
// (cells, nets, pins) must not change afterwards; positions may.
func NewSolver(nl *netlist.Netlist, opt Options) *Solver {
	return &Solver{
		nl:  nl,
		opt: opt,
		asm: netmodel.NewAssembler(nl, opt.Model, opt.Eps),
	}
}

// Eps returns the linearization floor of the underlying assembler.
func (s *Solver) Eps() float64 { return s.asm.Eps() }

// Solve runs one anchored quadratic placement step and updates the movable
// cell positions of s's netlist in place. anchors may be nil for the
// unconstrained interconnect solve (λ = 0).
func (s *Solver) Solve(anchors *Anchors) (Result, error) {
	return s.SolveCtx(context.Background(), anchors)
}

// SolveCtx is Solve with cooperative cancellation: the context is checked
// before assembly and polled by both CG solves once per inner iteration. On
// cancellation the netlist positions are left at the last completed solve
// (the partial CG iterate is discarded) and the returned error wraps
// ctx.Err().
func (s *Solver) SolveCtx(ctx context.Context, anchors *Anchors) (Result, error) {
	nl, opt := s.nl, s.opt
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("qp: solve cancelled: %w", err)
	}
	if fi := faultinject.Active(); fi != nil {
		if err := fi.Fire(faultinject.QPSolve, nl.Name); err != nil {
			return Result{}, fmt.Errorf("qp: %w", err)
		}
	}
	mov := nl.Movables()
	if anchors != nil {
		if len(anchors.Pos) != len(mov) || len(anchors.Lambda) != len(mov) {
			return Result{}, fmt.Errorf("qp: anchors sized %d/%d for %d movables",
				len(anchors.Pos), len(anchors.Lambda), len(mov))
		}
		// Reject non-finite anchors/multipliers before they are stamped
		// into the SPD systems: a single NaN here would otherwise surface
		// later as an opaque CG failure.
		for k := range mov {
			a, lam := anchors.Pos[k], anchors.Lambda[k]
			if math.IsNaN(lam) || math.IsInf(lam, 0) || lam < 0 {
				return Result{}, fmt.Errorf("qp: movable %d: invalid anchor multiplier %g", k, lam)
			}
			if math.IsNaN(a.X) || math.IsNaN(a.Y) || math.IsInf(a.X, 0) || math.IsInf(a.Y, 0) {
				return Result{}, fmt.Errorf("qp: movable %d: non-finite anchor (%g, %g)", k, a.X, a.Y)
			}
		}
	}

	tAsm := time.Now()
	asmSpan := opt.Obs.StartSpan("assemble")
	sx, sy := s.asm.AssembleInto(func(bx, by *sparse.Builder, fx, fy []float64) {
		if anchors != nil {
			eps := s.asm.Eps()
			for k, i := range mov {
				lam := anchors.Lambda[k]
				if lam <= 0 {
					continue
				}
				c := nl.Cells[i].Center()
				a := anchors.Pos[k]
				// Linearized L1 pseudonets (paper §5):
				// w = λ / (|coordinate distance| + ε), per dimension. The
				// denominator is clamped to MinPseudoDenom so a denormal ε
				// with a coinciding anchor cannot overflow the weight to
				// +Inf (see the constant's doc comment).
				dx := abs(c.X-a.X) + eps
				dy := abs(c.Y-a.Y) + eps
				if dx < MinPseudoDenom {
					dx = MinPseudoDenom
				}
				if dy < MinPseudoDenom {
					dy = MinPseudoDenom
				}
				wx := lam / dx
				wy := lam / dy
				bx.AddDiag(k, wx)
				fx[k] += wx * a.X
				by.AddDiag(k, wy)
				fy[k] += wy * a.Y
			}
		}
		// Guard against singular systems (e.g. cells with no nets): a tiny
		// regularization pulls unconnected variables toward the core center.
		cc := nl.Core.Center()
		const tiny = 1e-12
		n := s.asm.NumVars()
		for k := 0; k < n; k++ {
			bx.AddDiag(k, tiny)
			fx[k] += tiny * cc.X
			by.AddDiag(k, tiny)
			fy[k] += tiny * cc.Y
		}
	})
	asmDur := time.Since(tAsm)
	s.Metrics.Assembly += asmDur
	asmSpan.End()
	opt.Obs.AddSeconds(obs.MetricAssemblySeconds, asmDur)

	// Warm-start at the current placement.
	n := s.asm.NumVars()
	if cap(s.xs) < n {
		s.xs = make([]float64, n)
		s.ys = make([]float64, n)
	}
	xs, ys := s.xs[:n], s.ys[:n]
	for i := range xs {
		xs[i] = 0
		ys[i] = 0
	}
	for k, i := range mov {
		c := nl.Cells[i].Center()
		xs[k] = c.X
		ys[k] = c.Y
	}

	// The two dimensions are separable (paper §3): solve them concurrently.
	// Each solve issues parallel kernels against the shared worker pool.
	tCG := time.Now()
	cgSpan := opt.Obs.StartSpan("cg")
	cgOpt := opt.CG
	if cb := opt.Obs.CGProgress(); cb != nil {
		// The callback only touches atomic gauges, so sharing it between
		// the concurrent x/y solves is safe.
		cgOpt.Progress = cb
	}
	var res Result
	var errX, errY error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res.Y, errY = sparse.SolvePCGCtx(ctx, sy.A, ys, sy.B, cgOpt, &s.cgY)
	}()
	res.X, errX = sparse.SolvePCGCtx(ctx, sx.A, xs, sx.B, cgOpt, &s.cgX)
	wg.Wait()
	cgDur := time.Since(tCG)
	s.Metrics.CG += cgDur
	s.Metrics.Solves++
	if o := opt.Obs; o != nil {
		o.RecordCG(res.X.Iterations, res.X.Residual, res.X.Converged)
		o.RecordCG(res.Y.Iterations, res.Y.Residual, res.Y.Converged)
		o.AddSeconds(obs.MetricCGSeconds, cgDur)
		cgSpan.SetAttr("iters_x", float64(res.X.Iterations))
		cgSpan.SetAttr("iters_y", float64(res.Y.Iterations))
	}
	cgSpan.End()
	if errX != nil {
		return res, fmt.Errorf("qp: x solve: %w", errX)
	}
	if errY != nil {
		return res, fmt.Errorf("qp: y solve: %w", errY)
	}

	for k, i := range mov {
		p := geom.Point{X: xs[k], Y: ys[k]}
		if !opt.Raw {
			c := &nl.Cells[i]
			hw, hh := c.W/2, c.H/2
			if 2*hw > nl.Core.Width() {
				hw = nl.Core.Width() / 2
			}
			if 2*hh > nl.Core.Height() {
				hh = nl.Core.Height() / 2
			}
			p.X = geom.Clamp(p.X, nl.Core.XMin+hw, nl.Core.XMax-hw)
			p.Y = geom.Clamp(p.Y, nl.Core.YMin+hh, nl.Core.YMax-hh)
		}
		nl.Cells[i].SetCenter(p)
	}
	return res, nil
}

// Solve runs one anchored quadratic placement step and updates the movable
// cell positions of nl in place. anchors may be nil for the initial
// unconstrained solve (λ = 0). Hot loops should construct a Solver once and
// reuse it; this convenience rebuilds assembly state on every call.
func Solve(nl *netlist.Netlist, anchors *Anchors, opt Options) (Result, error) {
	return NewSolver(nl, opt).Solve(anchors)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
