// Package portfolio drives the competitive portfolio/restart search over
// the primal-dual engine: K members run the same design concurrently under
// perturbed configurations (λ ramp/damp variants, LSE primal,
// preconditioner choice, RNG-jittered starting positions), meet at
// synchronization rounds where each is scored by its overflow-weighted
// HPWL, and the bottom fraction is culled — each loser is reseeded by
// forking the leader's checkpoint state through the chkpt codec and
// perturbing the fork, so a reseeded member is bitwise a resume of the
// leader plus a jitter.
//
// The package owns member bookkeeping only — the variant table, the RNG
// streams, round segmentation, scoring, cull/reseed and the portfolio
// checkpoint — and delegates the placement of one member segment to a
// Solve callback, so it depends on the engine but not on internal/core
// (core imports this package, not the reverse; the same inversion as
// internal/multilevel).
//
// # Determinism
//
// For a fixed Options.Seed the whole search is deterministic at any thread
// count: each member's engine trajectory is thread-invariant (the par
// budgets change scheduling, never results), members only exchange
// information at round barriers, every cull/reseed decision is an ordered
// comparison with index tie-breaks, and all randomness comes from
// per-member splitmix64 streams advanced only in driver code.
//
// # Checkpoint/resume
//
// Members run each round as an engine segment that resumes the member's
// encoded snapshot and re-encodes the segment's final state, so a member's
// segmented trajectory is bitwise the uninterrupted one (the engine's
// resume guarantee). At every round boundary the driver persists a
// chkpt.PortfolioState — member table, RNG streams, round index — so a
// SIGKILL mid-round resumes from the last completed round and replays the
// interrupted round from identical inputs, bitwise.
package portfolio

import (
	"context"
	"fmt"
	"math"
	"time"

	"complx/internal/chkpt"
	"complx/internal/density"
	"complx/internal/engine"
	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/netmodel"
	"complx/internal/obs"
	"complx/internal/par"
	"complx/internal/perr"
	"complx/internal/region"
)

// Default option values (Options zero-value fills).
const (
	DefaultMembers      = 4
	DefaultRounds       = 4
	DefaultCullFraction = 0.25
	DefaultSeed         = 1
)

// Options configures the portfolio search shape.
type Options struct {
	// Members is the number of concurrent engine instances K (>= 2).
	Members int
	// Rounds is the number of synchronization rounds (>= 1) the iteration
	// budget is split into; culling happens at every boundary except the
	// last.
	Rounds int
	// CullFraction is the fraction of members culled and reseeded at each
	// synchronization round, in (0,1); floor(CullFraction·K) members are
	// culled (0 members for small K is legal — the portfolio degenerates
	// to independent restarts).
	CullFraction float64
	// Seed seeds the per-member perturbation RNG streams.
	Seed int64
}

// Fill replaces zero values with the defaults.
func (o *Options) Fill() {
	if o.Members == 0 {
		o.Members = DefaultMembers
	}
	if o.Rounds == 0 {
		o.Rounds = DefaultRounds
	}
	if o.CullFraction == 0 {
		o.CullFraction = DefaultCullFraction
	}
	if o.Seed == 0 {
		o.Seed = DefaultSeed
	}
}

// Enabled reports whether the options request a portfolio search at all (a
// zero Members means "flat run", not "default members").
func (o Options) Enabled() bool { return o.Members != 0 || o.Rounds != 0 || o.CullFraction != 0 }

// Validate rejects unusable configurations up front with stage "options"
// errors: Members < 2, Rounds < 1, CullFraction outside (0,1).
func (o Options) Validate() error {
	if o.Members < 2 {
		return perr.New(perr.StageOptions, "portfolio: Members must be >= 2 (got %d)", o.Members)
	}
	if o.Rounds < 1 {
		return perr.New(perr.StageOptions, "portfolio: Rounds must be >= 1 (got %d)", o.Rounds)
	}
	if !(o.CullFraction > 0 && o.CullFraction < 1) {
		return perr.New(perr.StageOptions, "portfolio: CullFraction must be in (0,1) (got %g)", o.CullFraction)
	}
	return nil
}

// MemberRun describes one member's round segment to the Solve callback.
type MemberRun struct {
	// Member is the member index (0 = the unperturbed base member).
	Member int
	// Variant is the member's configuration perturbation.
	Variant Variant
	// Netlist is the member's private netlist clone; the callback places it
	// in-place.
	Netlist *netlist.Netlist
	// Resume is the member's state at the previous round boundary; nil for
	// a cold (re)start.
	Resume *chkpt.State
	// Checkpoint captures the segment's end-of-round state; the callback
	// must hand it to the engine loop unchanged.
	Checkpoint engine.CheckpointSink
	// MaxIterations is the absolute iteration number this segment runs to
	// (the round's boundary), not a per-segment budget.
	MaxIterations int
}

// Sink persists portfolio round-boundary snapshots; chkpt.Manager is the
// production implementation.
type Sink interface {
	SavePortfolio(*chkpt.PortfolioState) error
}

// Config wires a portfolio run.
type Config struct {
	Options Options
	// Solve places one member segment and returns the engine result. The
	// callback must run its loop with Loop.Member = run.Member, honor
	// run.Resume and run.Checkpoint, derive the member's engine options
	// from run.Variant, and treat run.MaxIterations as the loop's absolute
	// iteration cap. internal/core provides the production implementation.
	Solve func(ctx context.Context, run MemberRun) (*engine.Result, error)
	// MaxIterations is the total per-member iteration budget the rounds
	// partition (default 80, the engine default).
	MaxIterations int
	// TargetDensity feeds the scalarized score's overflow measurement
	// (<= 0 or > 1 means 1.0, matching the facade's ScaledHPWL).
	TargetDensity float64
	// Design names the run for checkpoints and messages.
	Design string
	// Fingerprint binds member snapshots to this run; Fork rejects any
	// other. Must match the Manager fingerprint when Checkpoint is a
	// chkpt.Manager.
	Fingerprint [32]byte
	// Checkpoint, when non-nil, receives the portfolio state at every
	// round boundary. Save failures are logged in the winner's recovery
	// log, never fatal.
	Checkpoint Sink
	// Resume, when non-nil, restarts the search after its Round-th
	// completed round with the saved member table and RNG streams.
	Resume *chkpt.PortfolioState
	// Obs records per-member metrics and spans; nil disables.
	Obs *obs.Observer
}

// member is the in-memory member table entry.
type member struct {
	variant  Variant
	nl       *netlist.Netlist
	orig     []geom.Point // pristine starting placement (shared, read-only)
	rng      rngStream
	limit    *par.Limit
	snapshot []byte // encoded round-boundary engine state; nil = cold
	score    float64
	finished bool
	res      *engine.Result
}

// Run executes the portfolio search over nl and leaves nl at the winning
// member's placement. The returned Result is the winner's engine result
// with Result.Portfolio filled. On context cancellation the best member so
// far is still selected and applied, and the wrapped cancellation error is
// returned alongside it, matching the engine's contract.
func Run(ctx context.Context, nl *netlist.Netlist, cfg Config) (*engine.Result, error) {
	cfg.Options.Fill()
	if err := cfg.Options.Validate(); err != nil {
		return nil, err
	}
	if cfg.Solve == nil {
		return nil, perr.New(perr.StageValidate, "portfolio: Config.Solve is required")
	}
	budget := cfg.MaxIterations
	if budget <= 0 {
		budget = 80 // engine.Loop default
	}
	K := cfg.Options.Members
	R := cfg.Options.Rounds
	cfg.Obs.SetGauge(obs.MetricPortfolioMembers, float64(K))

	// Fair split of the caller's thread budget across members: the caller's
	// goroutine-bound par.Limit (or the process pool size) divided K ways,
	// first Threads mod K members getting the extra, every member at least
	// 1. Budgets change scheduling only, never results.
	total := 0
	if parent := par.Current(); parent != nil {
		total = parent.Budget()
	}
	if total <= 0 {
		total = par.Threads()
	}
	origPos := nl.SnapshotPositions()
	members := make([]*member, K)
	for i := range members {
		b := total / K
		if i < total%K {
			b++
		}
		if b < 1 {
			b = 1
		}
		m := &member{
			variant: variantFor(i),
			nl:      nl.Clone(),
			orig:    origPos,
			rng:     newStream(cfg.Options.Seed, i),
			limit:   par.NewLimit(b),
			score:   math.Inf(1),
		}
		members[i] = m
	}

	culls, reseeds := 0, 0
	startRound := 0
	if cfg.Resume != nil {
		ps := cfg.Resume
		if len(ps.Members) != K || len(ps.RNG) != K {
			return nil, perr.New(perr.StageCheckpoint,
				"portfolio: checkpoint has %d members / %d RNG streams, this run has %d",
				len(ps.Members), len(ps.RNG), K)
		}
		if ps.Round < 0 || ps.Round > R {
			return nil, perr.New(perr.StageCheckpoint,
				"portfolio: checkpoint round %d outside this run's schedule (0..%d)", ps.Round, R)
		}
		startRound = ps.Round
		culls, reseeds = ps.Culls, ps.Reseeds
		for i, m := range members {
			sm := ps.Members[i]
			m.rng.state = ps.RNG[i]
			m.finished = sm.Finished
			m.score = sm.Score
			m.snapshot = sm.Snapshot
			if m.snapshot != nil && (m.finished || startRound == R) {
				// A member that converged before the crash never re-enters
				// runRound — and when the crash hit after the final round's
				// save, no member does — so the placement and result must be
				// rebuilt from the snapshot now. A fork failure degrades to a
				// cold restart, exactly like a corrupt snapshot at a round
				// boundary.
				if err := materialize(m, cfg); err != nil {
					m.snapshot = nil
					m.finished = false
					m.res = nil
					m.score = math.Inf(1)
					if rerr := m.nl.RestorePositions(m.orig); rerr != nil {
						return nil, perr.Wrap(perr.StageCheckpoint, rerr)
					}
				}
			}
		}
		cfg.Obs.AddCount(obs.MetricResumes, 1)
	} else {
		// Round-1 cold start: perturb each member's starting placement with
		// its variant jitter (member 0 is never jittered — it reproduces the
		// flat run bitwise, so the portfolio can only match or beat it).
		for _, m := range members {
			jitterPositions(m.nl, m.variant.Jitter, &m.rng)
		}
	}

	var cancelErr error
	for r := startRound + 1; r <= R; r++ {
		roundSpan := cfg.Obs.StartSpan(fmt.Sprintf("portfolio_round_%d", r))
		boundary := budget * r / R
		if boundary < 1 {
			boundary = 1
		}
		if err := runRound(ctx, cfg, members, r, boundary); err != nil {
			if ctx.Err() == nil {
				roundSpan.End()
				return nil, err
			}
			cancelErr = err
		}
		for i, m := range members {
			cfg.Obs.SetGauge(memberMetric(obs.MetricPortfolioMemberHPWL, i), m.score)
		}
		cfg.Obs.SetGauge(obs.MetricPortfolioRound, float64(r))
		if cancelErr == nil && r < R {
			c, s := cullAndReseed(cfg, members)
			culls += c
			reseeds += s
		}
		cfg.Obs.SetGauge(obs.MetricPortfolioCulls, float64(culls))
		cfg.Obs.SetGauge(obs.MetricPortfolioReseeds, float64(reseeds))
		if cfg.Checkpoint != nil && cancelErr == nil {
			savePortfolio(cfg, members, r, culls, reseeds)
		}
		roundSpan.End()
		if cancelErr != nil {
			break
		}
	}

	// Winner selection: lowest scalarized score, member index breaking ties.
	w := -1
	for i, m := range members {
		if m.res == nil {
			continue
		}
		if w < 0 || m.score < members[w].score {
			w = i
		}
	}
	if w < 0 {
		if cancelErr != nil {
			return nil, cancelErr
		}
		return nil, perr.New(perr.StageSolve, "portfolio: no member produced a placement")
	}
	win := members[w]
	if err := nl.RestorePositions(win.nl.SnapshotPositions()); err != nil {
		return nil, perr.Wrap(perr.StageSolve, err)
	}
	res := win.res
	res.Resumed = cfg.Resume != nil
	scores := make([]float64, K)
	for i, m := range members {
		scores[i] = m.score
	}
	res.Portfolio = &engine.PortfolioStats{
		Members: K, Rounds: R,
		Winner: w, WinnerVariant: win.variant.Name,
		Culls: culls, Reseeds: reseeds,
		Scores: scores,
	}
	cfg.Obs.SetGauge(obs.MetricPortfolioWinner, float64(w))
	if cancelErr != nil {
		res.Cancelled = true
		return res, cancelErr
	}
	return res, nil
}

// runRound runs one synchronization round: every unfinished member executes
// its engine segment concurrently (under its own par budget), then scores
// are refreshed at the barrier. Member errors surface after all segments
// join; cancellation errors are merged into one.
func runRound(ctx context.Context, cfg Config, members []*member, round, boundary int) error {
	type outcome struct {
		res  *engine.Result
		last *chkpt.State
		err  error
		ran  bool
	}
	outs := make([]outcome, len(members))
	done := make(chan int, len(members))
	for i, m := range members {
		if m.finished && m.snapshot != nil {
			// Converged in an earlier round: the result is final; carry it.
			done <- i
			continue
		}
		var resume *chkpt.State
		if m.snapshot != nil {
			st, err := chkpt.Fork(m.snapshot, cfg.Fingerprint)
			if err != nil {
				// Unusable snapshot: cold-restart the member from the
				// original placement rather than failing the run. No jitter —
				// a resumed run reproduces this reset from the member table
				// alone (the snapshot is nil there too).
				m.snapshot = nil
				m.res = nil
				m.finished = false
				if rerr := m.nl.RestorePositions(m.orig); rerr != nil {
					outs[i] = outcome{err: perr.Wrap(perr.StageCheckpoint, rerr), ran: true}
					done <- i
					continue
				}
			} else {
				resume = st
			}
		}
		run := MemberRun{
			Member:        i,
			Variant:       m.variant,
			Netlist:       m.nl,
			Resume:        resume,
			Checkpoint:    &memSink{},
			MaxIterations: boundary,
		}
		go func(i int, m *member, run MemberRun) {
			span := cfg.Obs.StartSpan(fmt.Sprintf("portfolio_member_%d_round_%d", i, round))
			start := time.Now()
			par.With(m.limit, func() {
				res, err := cfg.Solve(ctx, run)
				outs[i] = outcome{res: res, last: run.Checkpoint.(*memSink).take(), err: err, ran: true}
			})
			cfg.Obs.AddSeconds(memberMetric(obs.MetricPortfolioMemberSeconds, i), time.Since(start))
			span.End()
			done <- i
		}(i, m, run)
	}
	for range members {
		<-done
	}

	var firstErr error
	for i, m := range members {
		o := outs[i]
		if !o.ran {
			continue
		}
		if o.err != nil && (o.res == nil || !o.res.Cancelled) {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		m.res = o.res
		m.finished = o.res.Converged || o.res.Cancelled
		if o.last != nil {
			o.last.Design = cfg.Design
			o.last.Fingerprint = cfg.Fingerprint
			m.snapshot = chkpt.Encode(o.last)
		} else if o.res.Converged {
			// Instantly feasible (no iteration ran): keep the prior snapshot,
			// the result is final either way.
			m.finished = true
		}
		m.score = scalarScore(m.nl, cfg.TargetDensity)
		if o.err != nil && firstErr == nil {
			firstErr = o.err // cancellation, after state capture
		}
	}
	return firstErr
}

// cullAndReseed sorts members by score, culls the floor(CullFraction·K)
// worst — never the leader, never member 0 (the unperturbed control) — and
// reseeds each loser by forking the leader's snapshot and jittering the
// fork with the loser's own RNG stream. A fork that fails (corrupt
// snapshot) degrades to a cold restart. Returns (culled, reseeded) counts.
func cullAndReseed(cfg Config, members []*member) (culled, reseeded int) {
	K := len(members)
	n := int(cfg.Options.CullFraction * float64(K))
	if n <= 0 {
		return 0, 0
	}
	order := rankMembers(members)
	leader := order[0]
	if members[leader].snapshot == nil {
		return 0, 0 // nothing usable to fork
	}
	// Walk from the worst upward, collecting cullable members.
	var losers []int
	for j := K - 1; j >= 1 && len(losers) < n; j-- {
		i := order[j]
		if i == 0 || i == leader {
			continue
		}
		losers = append(losers, i)
	}
	// Reseed in ascending member order so the RNG consumption order is a
	// pure function of the cull decision, not of the ranking walk.
	for a := 0; a < len(losers); a++ {
		for b := a + 1; b < len(losers); b++ {
			if losers[b] < losers[a] {
				losers[a], losers[b] = losers[b], losers[a]
			}
		}
	}
	for _, i := range losers {
		m := members[i]
		culled++
		st, err := chkpt.Fork(members[leader].snapshot, cfg.Fingerprint)
		if err != nil {
			// Corrupt leader snapshot: cold restart instead of failing.
			m.snapshot = nil
			m.res = nil
			m.finished = false
			m.score = math.Inf(1)
			_ = m.nl.RestorePositions(m.orig)
			continue
		}
		reseeded++
		jitterState(st, m.nl, reseedJitterRows, &m.rng)
		st.Design = cfg.Design
		st.Fingerprint = cfg.Fingerprint
		m.snapshot = chkpt.Encode(st)
		m.finished = false
		m.score = math.Inf(1)
		m.res = nil
	}
	return culled, reseeded
}

// rankMembers returns member indices ordered best-first: ascending score,
// ascending index on ties (deterministic at any thread count).
func rankMembers(members []*member) []int {
	order := make([]int, len(members))
	for i := range order {
		order[i] = i
	}
	for a := 1; a < len(order); a++ {
		for b := a; b > 0; b-- {
			x, y := order[b-1], order[b]
			if members[y].score < members[x].score || (members[y].score == members[x].score && y < x) {
				order[b-1], order[b] = y, x
			} else {
				break
			}
		}
	}
	return order
}

// savePortfolio persists the round-boundary portfolio state; failures are
// non-fatal (the sink/manager records them in its own metrics).
func savePortfolio(cfg Config, members []*member, round, culls, reseeds int) {
	ps := &chkpt.PortfolioState{
		Design:      cfg.Design,
		Fingerprint: cfg.Fingerprint,
		Round:       round,
		RNG:         make([]uint64, len(members)),
		Culls:       culls,
		Reseeds:     reseeds,
		Members:     make([]chkpt.MemberState, len(members)),
	}
	for i, m := range members {
		ps.RNG[i] = m.rng.state
		ps.Members[i] = chkpt.MemberState{
			Variant:  m.variant.Index,
			Finished: m.finished,
			Score:    m.score,
			Snapshot: m.snapshot,
		}
	}
	_ = cfg.Checkpoint.SavePortfolio(ps)
}

// materialize rebuilds a finished (converged) member's placement and result
// from its encoded snapshot after a portfolio resume, applying the engine's
// result-selection rule — best finest-grid anchors, else the last anchors,
// else the checkpointed positions — so the placement is bitwise the one the
// engine's finish produced before the crash. Wall-clock result fields are
// not reconstructed; everything winner selection and the facade read back
// (positions, history, convergence metrics) is.
func materialize(m *member, cfg Config) error {
	st, err := chkpt.Fork(m.snapshot, cfg.Fingerprint)
	if err != nil {
		return err
	}
	switch {
	case st.BestFineAnchors != nil:
		err = m.nl.SetPositions(st.BestFineAnchors)
	case st.PrevAnchors != nil:
		err = m.nl.SetPositions(st.PrevAnchors)
	default:
		err = m.nl.RestorePositions(st.Positions)
	}
	if err != nil {
		return err
	}
	region.SnapPlacement(m.nl)
	m.res = &engine.Result{
		Iterations:  st.Iter,
		Converged:   m.finished,
		Resumed:     true,
		FinalLambda: st.Lambda,
		BestUpper:   st.BestUpper,
		History:     engine.HistoryStats(st.History),
		HPWL:        netmodel.HPWL(m.nl),
		WHPWL:       netmodel.WeightedHPWL(m.nl),
	}
	return nil
}

// scalarScore is the synchronization-round member score: the ISPD-style
// overflow-weighted HPWL of the member's current placement (HPWL inflated
// by the contest grid's overflow penalty; plain HPWL on degenerate cores).
// Lower is better.
func scalarScore(nl *netlist.Netlist, targetDensity float64) float64 {
	if targetDensity <= 0 || targetDensity > 1 {
		targetDensity = 1
	}
	h := netmodel.HPWL(nl)
	g, err := density.ContestGrid(nl, targetDensity)
	if err != nil {
		return h
	}
	g.AccumulateMovable(nl)
	return g.ScaledHPWL(h)
}

// memSink is the in-memory interval-1 CheckpointSink a member segment runs
// under: it retains the last (= every) deposited snapshot, which at segment
// end is the member's round-boundary state.
type memSink struct{ last *chkpt.State }

func (s *memSink) Save(st *chkpt.State) error { s.last = st; return nil }
func (s *memSink) IntervalOrDefault() int     { return 1 }
func (s *memSink) take() *chkpt.State         { return s.last }

// memberMetric renders the labeled per-member series name for a catalog
// metric, e.g. complx_portfolio_member_hpwl{member="2"}.
func memberMetric(name string, member int) string {
	return fmt.Sprintf("%s{member=\"%d\"}", name, member)
}
