package portfolio

// rngStream is a splitmix64 pseudo-random stream. Chosen over math/rand
// because its entire state is one uint64 — it checkpoints trivially
// (chkpt.PortfolioState.RNG) and restores bitwise, which the portfolio's
// resume determinism depends on. Statistical quality is far beyond what a
// position jitter needs.
type rngStream struct{ state uint64 }

// golden is the splitmix64 increment (the 64-bit golden ratio).
const golden = 0x9e3779b97f4a7c15

// newStream derives member i's stream from the portfolio seed. Streams are
// decorrelated by spacing their initial states a large odd multiple of the
// golden-ratio increment apart and discarding one output.
func newStream(seed int64, member int) rngStream {
	s := rngStream{state: uint64(seed) ^ (uint64(member+1) * 0xbf58476d1ce4e5b9)}
	s.next()
	return s
}

// next advances the stream and returns the next 64 uniform bits.
func (r *rngStream) next() uint64 {
	r.state += golden
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (r *rngStream) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
