package portfolio

import (
	"context"
	"errors"
	"math"
	"testing"

	"complx/internal/chkpt"
	"complx/internal/engine"
	"complx/internal/gen"
	"complx/internal/netlist"
	"complx/internal/netmodel"
	"complx/internal/perr"
)

func testNetlist(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl, err := gen.Generate(gen.Spec{Name: "pf-test", NumCells: 60, Seed: 7})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	return nl
}

// fakeSolve is a Solve callback with the engine's segment contract — it
// restores run.Resume, iterates to the absolute cap run.MaxIterations,
// deposits a complete snapshot after every iteration — but a trivial
// "placement" step: each movable drifts by a member-dependent amount, so
// trajectories are a pure function of (state, member) and resume is
// bitwise by construction. convergeAt[member], when set, makes the member
// report convergence at that iteration.
func fakeSolve(convergeAt map[int]int) func(context.Context, MemberRun) (*engine.Result, error) {
	return func(ctx context.Context, run MemberRun) (*engine.Result, error) {
		nl := run.Netlist
		start := 1
		if run.Resume != nil {
			if err := nl.RestorePositions(run.Resume.Positions); err != nil {
				return nil, err
			}
			start = run.Resume.Iter + 1
		}
		res := &engine.Result{}
		drift := 0.1 * float64(run.Member+1)
		for k := start; k <= run.MaxIterations; k++ {
			if ctx.Err() != nil {
				res.Cancelled = true
				res.HPWL = netmodel.HPWL(nl)
				return res, perr.WrapIter(perr.StageCancel, k, ctx.Err())
			}
			for _, ci := range nl.Movables() {
				c := &nl.Cells[ci]
				c.X = clamp(c.X+drift, nl.Core.XMin, nl.Core.XMax-c.W)
			}
			if err := run.Checkpoint.Save(&chkpt.State{
				Kind:      chkpt.KindLoop,
				Design:    nl.Name,
				Iter:      k,
				Lambda:    float64(k),
				Positions: nl.SnapshotPositions(),
			}); err != nil {
				return nil, err
			}
			res.Iterations = k
			if ca, ok := convergeAt[run.Member]; ok && k >= ca {
				res.Converged = true
				break
			}
		}
		res.HPWL = netmodel.HPWL(nl)
		return res, nil
	}
}

func testConfig(nl *netlist.Netlist, o Options) Config {
	return Config{
		Options:       o,
		Solve:         fakeSolve(nil),
		MaxIterations: 12,
		Design:        nl.Name,
		Fingerprint:   chkpt.Fingerprint("pf-test"),
	}
}

// pfRecorder captures every round-boundary portfolio state, deep-copied
// through the codec so later rounds cannot alias earlier captures.
type pfRecorder struct{ states []*chkpt.PortfolioState }

func (r *pfRecorder) SavePortfolio(ps *chkpt.PortfolioState) error {
	cp, err := chkpt.DecodePortfolio(chkpt.EncodePortfolio(ps))
	if err != nil {
		return err
	}
	r.states = append(r.states, cp)
	return nil
}

func TestOptionsValidate(t *testing.T) {
	good := Options{Members: 4, Rounds: 3, CullFraction: 0.25, Seed: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	cases := []struct {
		name string
		o    Options
	}{
		{"members-1", Options{Members: 1, Rounds: 3, CullFraction: 0.25}},
		{"members-0", Options{Members: 0, Rounds: 3, CullFraction: 0.25}},
		{"rounds-0", Options{Members: 4, Rounds: 0, CullFraction: 0.25}},
		{"rounds-negative", Options{Members: 4, Rounds: -1, CullFraction: 0.25}},
		{"cull-0", Options{Members: 4, Rounds: 3, CullFraction: 0}},
		{"cull-1", Options{Members: 4, Rounds: 3, CullFraction: 1}},
		{"cull-negative", Options{Members: 4, Rounds: 3, CullFraction: -0.5}},
		{"cull-nan", Options{Members: 4, Rounds: 3, CullFraction: math.NaN()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.o.Validate()
			if err == nil {
				t.Fatal("invalid options accepted")
			}
			var pe *perr.Error
			if !errors.As(err, &pe) || pe.Stage != perr.StageOptions {
				t.Fatalf("want stage %q error, got %v", perr.StageOptions, err)
			}
		})
	}
}

func TestOptionsFillDefaults(t *testing.T) {
	var o Options
	if o.Enabled() {
		t.Fatal("zero Options reports Enabled")
	}
	o.Fill()
	if o.Members != DefaultMembers || o.Rounds != DefaultRounds ||
		o.CullFraction != DefaultCullFraction || o.Seed != DefaultSeed {
		t.Fatalf("Fill gave %+v", o)
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("filled defaults invalid: %v", err)
	}
}

func TestVariantTable(t *testing.T) {
	base := variantFor(0)
	if base.Name != "base" || base.Jitter != 0 || base.LambdaScale != 1 ||
		base.UseLSE || base.Precond != "" || base.FinestGrid {
		t.Fatalf("member 0 must be the unperturbed base config, got %+v", base)
	}
	for i := 1; i < 10; i++ {
		v := variantFor(i)
		if v.Index != i {
			t.Fatalf("variantFor(%d).Index = %d", i, v.Index)
		}
		if v.Jitter == 0 {
			t.Fatalf("member %d (%s) has no start jitter", i, v.Name)
		}
	}
}

func TestStreamDeterminismAndStateRoundTrip(t *testing.T) {
	a := newStream(42, 3)
	b := newStream(42, 3)
	for i := 0; i < 16; i++ {
		if a.float64() != b.float64() {
			t.Fatal("same seed/member streams diverge")
		}
	}
	saved := a.state
	x := a.float64()
	a.state = saved
	if a.float64() != x {
		t.Fatal("state restore does not reproduce the draw")
	}
	s00, s01, s10 := newStream(42, 0), newStream(42, 1), newStream(43, 0)
	if s00.next() == s01.next() {
		t.Fatal("streams not decorrelated across members")
	}
	s00 = newStream(42, 0)
	if s00.next() == s10.next() {
		t.Fatal("streams not decorrelated across seeds")
	}
}

func TestJitterPositionsDeterministicClampedAndZeroFree(t *testing.T) {
	nl := testNetlist(t)
	a, b := nl.Clone(), nl.Clone()
	ra, rb := newStream(5, 1), newStream(5, 1)
	jitterPositions(a, 2, &ra)
	jitterPositions(b, 2, &rb)
	for i := range a.Cells {
		if a.Cells[i].X != b.Cells[i].X || a.Cells[i].Y != b.Cells[i].Y {
			t.Fatalf("cell %d jitter not deterministic", i)
		}
	}
	moved := false
	for _, ci := range a.Cells {
		if ci.X < a.Core.XMin-1e-9 || ci.X+ci.W > a.Core.XMax+1e-9 ||
			ci.Y < a.Core.YMin-1e-9 || ci.Y+ci.H > a.Core.YMax+1e-9 {
			t.Fatalf("cell %q jittered outside the core", ci.Name)
		}
	}
	for i := range a.Cells {
		if a.Cells[i].X != nl.Cells[i].X {
			moved = true
		}
	}
	if !moved {
		t.Fatal("jitter moved nothing")
	}
	rc := newStream(5, 1)
	before := rc.state
	jitterPositions(nl.Clone(), 0, &rc)
	if rc.state != before {
		t.Fatal("rows=0 jitter consumed RNG draws")
	}
}

func TestRankMembers(t *testing.T) {
	ms := []*member{
		{score: 3},
		{score: 1},
		{score: 2},
		{score: 1},
	}
	got := rankMembers(ms)
	want := []int{1, 3, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rankMembers = %v, want %v", got, want)
		}
	}
}

func TestRunAppliesWinnerAndReportsStats(t *testing.T) {
	nl := testNetlist(t)
	cfg := testConfig(nl, Options{Members: 4, Rounds: 3, CullFraction: 0.25, Seed: 1})
	res, err := Run(context.Background(), nl, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	pf := res.Portfolio
	if pf == nil {
		t.Fatal("Result.Portfolio not filled")
	}
	if pf.Members != 4 || pf.Rounds != 3 {
		t.Fatalf("stats shape %+v", pf)
	}
	// floor(0.25*4)=1 cull at each of the 2 non-final boundaries.
	if pf.Culls != 2 || pf.Reseeds != 2 {
		t.Fatalf("culls/reseeds = %d/%d, want 2/2", pf.Culls, pf.Reseeds)
	}
	if pf.Winner < 0 || pf.Winner >= 4 || len(pf.Scores) != 4 {
		t.Fatalf("winner/scores %+v", pf)
	}
	for i, s := range pf.Scores {
		if math.IsInf(s, 1) {
			t.Fatalf("member %d score never measured", i)
		}
		if pf.Scores[pf.Winner] > s {
			t.Fatalf("winner %d (score %g) beaten by member %d (%g)", pf.Winner, pf.Scores[pf.Winner], i, s)
		}
	}
	// The winning member's placement was applied to the caller's netlist.
	if got := netmodel.HPWL(nl); got != res.HPWL {
		t.Fatalf("netlist HPWL %g != winner result HPWL %g", got, res.HPWL)
	}
}

func TestRunDeterministicAcrossRepeats(t *testing.T) {
	nl := testNetlist(t)
	run := func() ([]float64, int, []float64) {
		n := nl.Clone()
		cfg := testConfig(n, Options{Members: 4, Rounds: 3, CullFraction: 0.25, Seed: 9})
		res, err := Run(context.Background(), n, cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		xs := make([]float64, len(n.Cells))
		for i := range n.Cells {
			xs[i] = n.Cells[i].X
		}
		return res.Portfolio.Scores, res.Portfolio.Winner, xs
	}
	s1, w1, x1 := run()
	s2, w2, x2 := run()
	if w1 != w2 {
		t.Fatalf("winner %d vs %d", w1, w2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("member %d score %g vs %g", i, s1[i], s2[i])
		}
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("cell %d position differs across repeats", i)
		}
	}
}

// TestRunResumeBitwise replays the search from every recorded round
// boundary (including one where a member has converged, exercising
// materialize, and the post-final-round state, exercising the no-rounds-
// left path) and requires the final placement, winner and scores to be
// bitwise those of the uninterrupted run.
func TestRunResumeBitwise(t *testing.T) {
	nl := testNetlist(t)
	o := Options{Members: 4, Rounds: 3, CullFraction: 0.25, Seed: 3}
	rec := &pfRecorder{}
	full := nl.Clone()
	cfg := testConfig(full, o)
	cfg.Solve = fakeSolve(map[int]int{0: 4}) // member 0 converges at round 1's boundary
	cfg.Checkpoint = rec
	want, err := Run(context.Background(), full, cfg)
	if err != nil {
		t.Fatalf("uninterrupted Run: %v", err)
	}
	if len(rec.states) != 3 {
		t.Fatalf("recorded %d round states, want 3", len(rec.states))
	}
	for _, ps := range rec.states {
		n := nl.Clone()
		rcfg := testConfig(n, o)
		rcfg.Solve = fakeSolve(map[int]int{0: 4})
		rcfg.Resume = ps
		got, err := Run(context.Background(), n, rcfg)
		if err != nil {
			t.Fatalf("resume from round %d: %v", ps.Round, err)
		}
		if !got.Resumed {
			t.Fatalf("round %d: Result.Resumed not set", ps.Round)
		}
		if got.Portfolio.Winner != want.Portfolio.Winner {
			t.Fatalf("round %d: winner %d, uninterrupted %d", ps.Round, got.Portfolio.Winner, want.Portfolio.Winner)
		}
		for i := range want.Portfolio.Scores {
			if got.Portfolio.Scores[i] != want.Portfolio.Scores[i] {
				t.Fatalf("round %d: member %d score %g, uninterrupted %g",
					ps.Round, i, got.Portfolio.Scores[i], want.Portfolio.Scores[i])
			}
		}
		for i := range n.Cells {
			if n.Cells[i].X != full.Cells[i].X || n.Cells[i].Y != full.Cells[i].Y {
				t.Fatalf("round %d: cell %d placement differs from uninterrupted run", ps.Round, i)
			}
		}
	}
}

func TestRunResumeRejectsMismatchedShape(t *testing.T) {
	nl := testNetlist(t)
	o := Options{Members: 4, Rounds: 3, CullFraction: 0.25, Seed: 3}
	rec := &pfRecorder{}
	cfg := testConfig(nl.Clone(), o)
	cfg.Checkpoint = rec
	if _, err := Run(context.Background(), nl.Clone(), cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	bad := rec.states[0]
	rcfg := testConfig(nl.Clone(), Options{Members: 3, Rounds: 3, CullFraction: 0.3, Seed: 3})
	rcfg.Resume = bad
	_, err := Run(context.Background(), nl.Clone(), rcfg)
	var pe *perr.Error
	if err == nil || !errors.As(err, &pe) || pe.Stage != perr.StageCheckpoint {
		t.Fatalf("want stage checkpoint error for K mismatch, got %v", err)
	}
	badRound, err2 := chkpt.DecodePortfolio(chkpt.EncodePortfolio(bad))
	if err2 != nil {
		t.Fatal(err2)
	}
	badRound.Round = 7
	rcfg2 := testConfig(nl.Clone(), o)
	rcfg2.Resume = badRound
	_, err = Run(context.Background(), nl.Clone(), rcfg2)
	if err == nil || !errors.As(err, &pe) || pe.Stage != perr.StageCheckpoint {
		t.Fatalf("want stage checkpoint error for round out of schedule, got %v", err)
	}
}

// TestRunResumeCorruptSnapshotsColdRestart corrupts member snapshots in a
// recorded portfolio state and requires the resumed run to cold-restart the
// damaged members and complete, rather than fail.
func TestRunResumeCorruptSnapshotsColdRestart(t *testing.T) {
	nl := testNetlist(t)
	o := Options{Members: 4, Rounds: 3, CullFraction: 0.25, Seed: 3}
	rec := &pfRecorder{}
	cfg := testConfig(nl.Clone(), o)
	cfg.Solve = fakeSolve(map[int]int{0: 4})
	cfg.Checkpoint = rec
	if _, err := Run(context.Background(), nl.Clone(), cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	corrupt := func(ps *chkpt.PortfolioState, members ...int) *chkpt.PortfolioState {
		cp, err := chkpt.DecodePortfolio(chkpt.EncodePortfolio(ps))
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range members {
			if cp.Members[i].Snapshot == nil {
				t.Fatalf("member %d has no snapshot to corrupt", i)
			}
			cp.Members[i].Snapshot[len(cp.Members[i].Snapshot)/2] ^= 0xff
		}
		return cp
	}
	t.Run("one-member", func(t *testing.T) {
		n := nl.Clone()
		rcfg := testConfig(n, o)
		rcfg.Solve = fakeSolve(map[int]int{0: 4})
		rcfg.Resume = corrupt(rec.states[0], 2)
		res, err := Run(context.Background(), n, rcfg)
		if err != nil {
			t.Fatalf("resume with corrupt member snapshot failed the run: %v", err)
		}
		if res.Portfolio == nil {
			t.Fatal("no portfolio stats")
		}
	})
	t.Run("all-members-including-converged", func(t *testing.T) {
		n := nl.Clone()
		rcfg := testConfig(n, o)
		rcfg.Solve = fakeSolve(map[int]int{0: 4})
		rcfg.Resume = corrupt(rec.states[0], 0, 1, 2, 3)
		res, err := Run(context.Background(), n, rcfg)
		if err != nil {
			t.Fatalf("resume with all snapshots corrupt failed the run: %v", err)
		}
		if res.Portfolio == nil {
			t.Fatal("no portfolio stats")
		}
	})
}

func TestRunCancelMidSearchReturnsBestSoFar(t *testing.T) {
	nl := testNetlist(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inner := fakeSolve(nil)
	cfg := testConfig(nl, Options{Members: 4, Rounds: 3, CullFraction: 0.25, Seed: 1})
	cfg.Solve = func(c context.Context, run MemberRun) (*engine.Result, error) {
		if run.Resume != nil && run.Resume.Iter >= 4 {
			cancel() // round 3: cancel before the segment iterates
		}
		return inner(c, run)
	}
	res, err := Run(ctx, nl, cfg)
	if err == nil {
		t.Fatal("cancelled Run returned no error")
	}
	if res == nil {
		t.Fatal("cancelled Run returned no best-so-far result")
	}
	if !res.Cancelled {
		t.Fatal("Result.Cancelled not set")
	}
	if res.Portfolio == nil || res.Portfolio.Winner < 0 {
		t.Fatalf("no winner selected on cancellation: %+v", res.Portfolio)
	}
	if got := netmodel.HPWL(nl); math.IsNaN(got) || got <= 0 {
		t.Fatalf("cancelled run left netlist in bad state (HPWL %g)", got)
	}
}

func TestRunRequiresSolve(t *testing.T) {
	nl := testNetlist(t)
	cfg := testConfig(nl, Options{})
	cfg.Solve = nil
	if _, err := Run(context.Background(), nl, cfg); err == nil {
		t.Fatal("nil Solve accepted")
	}
}
