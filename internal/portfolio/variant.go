package portfolio

import (
	"fmt"

	"complx/internal/chkpt"
	"complx/internal/netlist"
)

// reseedJitterRows is the reseed perturbation radius in row heights: a
// forked loser starts at the leader's iterate displaced by up to this many
// rows per axis, enough to fall into a different spreading basin without
// discarding the leader's global structure.
const reseedJitterRows = 2.0

// Variant is one member's configuration perturbation. The table is a pure
// function of the member index (variantFor), so a resumed or re-run
// portfolio rebuilds identical configurations without persisting them.
type Variant struct {
	// Index is the member index the variant was derived for.
	Index int
	// Name labels the perturbation for stats and logs.
	Name string
	// LambdaScale scales the λ schedule's initial multiplier and additive
	// step (1 = the caller's schedule): < 1 damps the feasibility price —
	// longer wirelength-driven exploration; > 1 ramps it — earlier
	// spreading.
	LambdaScale float64
	// UseLSE switches the member's primal step to the log-sum-exp model.
	UseLSE bool
	// Precond overrides the CG preconditioner ("" keeps the caller's).
	Precond string
	// FinestGrid forces every projection onto the finest grid.
	FinestGrid bool
	// Jitter is the round-1 starting-position perturbation radius in row
	// heights (0 = start from the caller's placement exactly).
	Jitter float64
}

// variantFor derives member i's configuration. Member 0 is always the
// unperturbed base configuration — it is exempt from culling, so the flat
// run's trajectory is always in the portfolio and the winner can only
// match or beat it. Members beyond the table are pure RNG restarts (their
// diversity comes from the jittered start alone, which perturbs the CG
// iterates' early-stopping path).
func variantFor(i int) Variant {
	v := Variant{Index: i, LambdaScale: 1}
	switch i {
	case 0:
		v.Name = "base"
	case 1:
		v.Name = "lambda-damp"
		v.LambdaScale = 0.5
		v.Jitter = 2
	case 2:
		v.Name = "lambda-ramp"
		v.LambdaScale = 2
		v.Jitter = 2
	case 3:
		v.Name = "precond-ssor"
		v.Precond = "ssor"
		v.Jitter = 2
	case 4:
		v.Name = "finest-grid"
		v.FinestGrid = true
		v.Jitter = 2
	case 5:
		v.Name = "lse"
		v.UseLSE = true
		v.Jitter = 2
	default:
		v.Name = fmt.Sprintf("restart-%d", i)
		v.Jitter = 4
	}
	return v
}

// jitterPositions displaces every movable cell of nl by a uniform draw in
// [-rows, +rows] row heights per axis, clamped so the cell stays inside the
// core. rows == 0 is a no-op that consumes no RNG draws. The draw order is
// the netlist's movable order — deterministic.
func jitterPositions(nl *netlist.Netlist, rows float64, rng *rngStream) {
	if rows == 0 {
		return
	}
	amp := rows * nl.RowHeight()
	for _, ci := range nl.Movables() {
		c := &nl.Cells[ci]
		c.X = clamp(c.X+amp*(2*rng.float64()-1), nl.Core.XMin, nl.Core.XMax-c.W)
		c.Y = clamp(c.Y+amp*(2*rng.float64()-1), nl.Core.YMin, nl.Core.YMax-c.H)
	}
}

// jitterState applies the reseed perturbation to a forked engine state: the
// movable entries of st.Positions are displaced like jitterPositions, and
// the primal solver's warm-start history is dropped (it extrapolates the
// leader's trajectory, which the jitter just left). Result-selection state
// (best-so-far anchors) is kept, so a reseeded member can never end worse
// than the leader was at the fork point.
func jitterState(st *chkpt.State, nl *netlist.Netlist, rows float64, rng *rngStream) {
	amp := rows * nl.RowHeight()
	for _, ci := range nl.Movables() {
		if ci >= len(st.Positions) {
			break
		}
		c := &nl.Cells[ci]
		p := &st.Positions[ci]
		p.X = clamp(p.X+amp*(2*rng.float64()-1), nl.Core.XMin, nl.Core.XMax-c.W)
		p.Y = clamp(p.Y+amp*(2*rng.float64()-1), nl.Core.YMin, nl.Core.YMax-c.H)
	}
	st.PrimalState = nil
}

func clamp(v, lo, hi float64) float64 {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
