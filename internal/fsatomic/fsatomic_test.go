package fsatomic

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"complx/internal/faultinject"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFileBytes(path, 0o644, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// Overwrite is atomic too.
	if err := WriteFileBytes(path, 0o644, []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "world" {
		t.Fatalf("after overwrite: %q", got)
	}
}

func TestWriteErrorLeavesOldFileIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	if err := WriteFileBytes(path, 0o644, []byte("old-content")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("render failed")
	err := WriteFile(path, 0o644, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want render failure", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "old-content" {
		t.Fatalf("old file clobbered: %q", got)
	}
	assertNoTempFiles(t, dir)
}

// TestInjectedShortWriteLeavesOldFileIntact pins the satellite contract: a
// kill (here: an injected short write) mid-write never leaves a truncated
// output — the previous file survives byte-for-byte.
func TestInjectedShortWriteLeavesOldFileIntact(t *testing.T) {
	t.Cleanup(faultinject.Deactivate)
	dir := t.TempDir()
	path := filepath.Join(dir, "placed.pl")
	if err := WriteFileBytes(path, 0o644, []byte("legal placement v1\n")); err != nil {
		t.Fatal(err)
	}

	faultinject.Activate(faultinject.New().Add(faultinject.Rule{
		Point: faultinject.AtomicWriteShort, Match: "placed.pl",
	}))
	err := WriteFileBytes(path, 0o644, []byte("half written v2 that must never be seen\n"))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "legal placement v1\n" {
		t.Fatalf("old file not intact: %q, %v", got, rerr)
	}
	assertNoTempFiles(t, dir)

	// After the injector drains, the same write succeeds.
	if err := WriteFileBytes(path, 0o644, []byte("v2\n")); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2\n" {
		t.Fatalf("post-recovery write: %q", got)
	}
}

func TestInjectedOpenError(t *testing.T) {
	t.Cleanup(faultinject.Deactivate)
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ckpt")
	faultinject.Activate(faultinject.New().Add(faultinject.Rule{
		Point: faultinject.AtomicWriteOpen, Match: "x.ckpt",
	}))
	err := WriteFileBytes(path, 0o644, []byte("data"))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("target exists after injected open error: %v", serr)
	}
	assertNoTempFiles(t, dir)
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("stale temp file left behind: %s", e.Name())
		}
	}
}
