// Package fsatomic provides crash-safe file persistence for every output
// the placement runtime writes: checkpoints, .pl placements, Bookshelf
// benchmark files and run reports. WriteFile follows the classic
// temp-file → fsync → rename → directory-fsync protocol, so a kill at any
// instant leaves either the complete old file or the complete new file —
// never a truncated or interleaved one.
//
// The write path carries two fault-injection hook points
// (faultinject.AtomicWriteOpen and faultinject.AtomicWriteShort) so the
// crash-safety contract is exercised by tests rather than asserted; both
// are a single atomic nil-check in production.
package fsatomic

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"complx/internal/faultinject"
)

// WriteFile atomically replaces path with the bytes produced by write. The
// data is staged in a temp file in path's directory, fsynced, renamed over
// path, and the directory entry is fsynced, so either the old or the new
// content survives a crash at any point. On any error the temp file is
// removed and an existing path is left untouched.
func WriteFile(path string, perm os.FileMode, write func(io.Writer) error) (err error) {
	if err := faultinject.FireErr(faultinject.AtomicWriteOpen, path); err != nil {
		return fmt.Errorf("fsatomic: write %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("fsatomic: stage %s: %w", path, err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(faultinject.Writer(f, path)); err != nil {
		return fmt.Errorf("fsatomic: write %s: %w", path, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("fsatomic: sync %s: %w", path, err)
	}
	if err = f.Chmod(perm); err != nil {
		return fmt.Errorf("fsatomic: chmod %s: %w", path, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("fsatomic: close %s: %w", path, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("fsatomic: commit %s: %w", path, err)
	}
	if derr := syncDir(dir); derr != nil {
		// The rename is durable on fsync of the directory; surface the
		// failure but the file content itself is already consistent.
		return fmt.Errorf("fsatomic: sync dir %s: %w", dir, derr)
	}
	return nil
}

// WriteFileBytes is WriteFile for a pre-rendered payload.
func WriteFileBytes(path string, perm os.FileMode, data []byte) error {
	return WriteFile(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
