// Package detailed refines a legal placement while preserving legality —
// the role FastPlace-DP plays in the paper's flow. Three classic passes are
// implemented:
//
//   - global moves: relocate a cell into free space inside its optimal
//     region (the median interval of its incident nets' bounding boxes);
//   - global swaps: exchange two equal-width cells when that lowers HPWL
//     (vertical swaps between adjacent rows are the special case);
//   - local reordering: exhaustively permute small windows of consecutive
//     cells within a row.
//
// All moves are greedy and accepted only when the summed HPWL of the
// affected nets strictly improves, so the refined HPWL is monotonically
// non-increasing.
package detailed

import (
	"fmt"
	"math"
	"sort"

	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/netmodel"
)

// Options tunes the refinement.
type Options struct {
	// Passes is the number of full sweeps (default 3).
	Passes int
	// Window is the local-reordering window size (default 3, max 4).
	Window int
	// DisableMoves/DisableSwaps/DisableReorder turn off individual passes
	// (used by ablation benches).
	DisableMoves   bool
	DisableSwaps   bool
	DisableReorder bool
}

// Stats reports what the refinement did.
type Stats struct {
	Passes     int
	Moves      int
	Swaps      int
	Reorders   int
	HPWLBefore float64
	HPWLAfter  float64
}

type engine struct {
	nl    *netlist.Netlist
	rows  []netlist.Row
	rowOf []int   // cell -> row index, -1 if not row-bound
	inRow [][]int // row -> cells sorted by X
	// blocked holds per-row x-intervals covered by fixed cells and movable
	// macros; no standard cell may be moved into them.
	blocked [][]geom.Interval

	moves, swaps int
}

// Refine improves the legal placement of nl in place. The placement must be
// legal on entry (see legalize.Check); legality is preserved.
func Refine(nl *netlist.Netlist, opt Options) (Stats, error) {
	if opt.Passes <= 0 {
		opt.Passes = 3
	}
	if opt.Window <= 1 {
		opt.Window = 3
	}
	if opt.Window > 4 {
		opt.Window = 4
	}
	if len(nl.Rows) == 0 {
		return Stats{}, fmt.Errorf("detailed: netlist %q has no rows", nl.Name)
	}
	e := &engine{nl: nl, rows: nl.Rows}
	if err := e.index(); err != nil {
		return Stats{}, err
	}
	st := Stats{HPWLBefore: netmodel.WeightedHPWL(nl)}
	for p := 0; p < opt.Passes; p++ {
		improved := 0
		if !opt.DisableMoves || !opt.DisableSwaps {
			improved += e.globalPass(opt)
		}
		if !opt.DisableReorder {
			improved += e.reorderPass(opt.Window, &st)
		}
		st.Passes = p + 1
		if improved == 0 {
			break
		}
	}
	st.Moves = e.moves
	st.Swaps = e.swaps
	st.HPWLAfter = netmodel.WeightedHPWL(nl)
	return st, nil
}

func (e *engine) index() error {
	nl := e.nl
	e.rowOf = make([]int, len(nl.Cells))
	for i := range e.rowOf {
		e.rowOf[i] = -1
	}
	e.inRow = make([][]int, len(e.rows))
	rowByY := map[float64]int{}
	for ri, r := range e.rows {
		rowByY[r.Y] = ri
	}
	for _, i := range nl.Movables() {
		c := &nl.Cells[i]
		if c.Kind != netlist.Std {
			continue
		}
		ri, ok := rowByY[c.Y]
		if !ok {
			// Tolerant match for floating-point row Ys.
			found := false
			for y, idx := range rowByY {
				if math.Abs(y-c.Y) < 1e-6 {
					ri, found = idx, true
					break
				}
			}
			if !found {
				return fmt.Errorf("detailed: cell %q at y=%g is not on a row", c.Name, c.Y)
			}
		}
		e.rowOf[i] = ri
		e.inRow[ri] = append(e.inRow[ri], i)
	}
	for ri := range e.inRow {
		cells := e.inRow[ri]
		sort.Slice(cells, func(a, b int) bool { return e.nl.Cells[cells[a]].X < e.nl.Cells[cells[b]].X })
	}
	// Obstacles: fixed cells and (already-legalized) movable macros.
	e.blocked = make([][]geom.Interval, len(e.rows))
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Kind == netlist.Std {
			continue
		}
		r := c.Rect()
		for ri, row := range e.rows {
			if r.YMin < row.Y+row.Height && r.YMax > row.Y {
				e.blocked[ri] = append(e.blocked[ri], geom.Interval{Lo: r.XMin, Hi: r.XMax})
			}
		}
	}
	for ri := range e.blocked {
		iv := e.blocked[ri]
		sort.Slice(iv, func(a, b int) bool { return iv[a].Lo < iv[b].Lo })
	}
	return nil
}

// subtractBlocked splits [lo, hi] around the row's blocked intervals and
// calls fn for each free piece.
func (e *engine) subtractBlocked(ri int, lo, hi float64, fn func(lo, hi float64)) {
	cur := lo
	for _, b := range e.blocked[ri] {
		if b.Hi <= cur {
			continue
		}
		if b.Lo >= hi {
			break
		}
		if b.Lo > cur {
			fn(cur, b.Lo)
		}
		if b.Hi > cur {
			cur = b.Hi
		}
	}
	if cur < hi {
		fn(cur, hi)
	}
}

// affectedHPWL sums the HPWL of every net touching any of the given cells.
func (e *engine) affectedHPWL(cells ...int) float64 {
	seen := map[int]bool{}
	var s float64
	for _, ci := range cells {
		for _, p := range e.nl.Cells[ci].Pins {
			ni := e.nl.Pins[p].Net
			if seen[ni] {
				continue
			}
			seen[ni] = true
			s += e.nl.Nets[ni].Weight * netmodel.NetHPWL(e.nl, ni)
		}
	}
	return s
}

// optimalPoint returns the median-interval center of the cell's incident
// nets' bounding boxes, excluding the cell's own pins.
func (e *engine) optimalPoint(ci int) geom.Point {
	nl := e.nl
	var los, his, losY, hisY []float64
	for _, p := range nl.Cells[ci].Pins {
		net := &nl.Nets[nl.Pins[p].Net]
		lo, hi := math.Inf(1), math.Inf(-1)
		loY, hiY := math.Inf(1), math.Inf(-1)
		cnt := 0
		for _, q := range net.Pins {
			if nl.Pins[q].Cell == ci {
				continue
			}
			pt := nl.PinPosition(q)
			lo = math.Min(lo, pt.X)
			hi = math.Max(hi, pt.X)
			loY = math.Min(loY, pt.Y)
			hiY = math.Max(hiY, pt.Y)
			cnt++
		}
		if cnt == 0 {
			continue
		}
		los = append(los, lo)
		his = append(his, hi)
		losY = append(losY, loY)
		hisY = append(hisY, hiY)
	}
	c := nl.Cells[ci].Center()
	if len(los) == 0 {
		return c
	}
	return geom.Point{X: medianInterval(los, his, c.X), Y: medianInterval(losY, hisY, c.Y)}
}

// medianInterval returns the point of the median interval closest to cur.
func medianInterval(los, his []float64, cur float64) float64 {
	all := make([]float64, 0, len(los)+len(his))
	all = append(all, los...)
	all = append(all, his...)
	sort.Float64s(all)
	m := len(all) / 2
	lo, hi := all[m-1], all[m]
	return geom.Clamp(cur, lo, hi)
}

// globalPass tries moves and swaps for every standard cell; returns the
// number of accepted changes.
func (e *engine) globalPass(opt Options) int {
	accepted := 0
	for _, i := range e.nl.Movables() {
		if e.rowOf[i] < 0 || e.nl.Cells[i].Region >= 0 {
			continue
		}
		goal := e.optimalPoint(i)
		c := &e.nl.Cells[i]
		if math.Abs(goal.X-c.Center().X) < c.W && math.Abs(goal.Y-c.Center().Y) < c.H {
			continue // already near optimal
		}
		if !opt.DisableMoves && e.tryMove(i, goal) {
			accepted++
			continue
		}
		if !opt.DisableSwaps && e.trySwap(i, goal) {
			accepted++
		}
	}
	return accepted
}

// tryMove relocates cell i into a free gap near goal if that improves HPWL.
func (e *engine) tryMove(i int, goal geom.Point) bool {
	nl := e.nl
	c := &nl.Cells[i]
	// Candidate rows: the two rows nearest to goal.Y plus the current row.
	rows := e.nearRows(goal.Y, 2)
	bestGain := 1e-9
	bestRow, bestX := -1, 0.0
	before := e.affectedHPWL(i)
	oldX, oldY, oldRow := c.X, c.Y, e.rowOf[i]
	for _, ri := range rows {
		x, ok := e.gapFor(ri, i, goal.X, c.W)
		if !ok {
			continue
		}
		c.X, c.Y = x, e.rows[ri].Y
		after := e.affectedHPWL(i)
		c.X, c.Y = oldX, oldY
		if gain := before - after; gain > bestGain {
			bestGain, bestRow, bestX = gain, ri, x
		}
	}
	if bestRow < 0 {
		return false
	}
	c.X, c.Y = bestX, e.rows[bestRow].Y
	e.moveCell(i, oldRow, bestRow)
	e.moves++
	return true
}

// trySwap exchanges cell i with an equal-width cell near goal.
func (e *engine) trySwap(i int, goal geom.Point) bool {
	nl := e.nl
	ci := &nl.Cells[i]
	rows := e.nearRows(goal.Y, 1)
	for _, ri := range rows {
		j := e.cellNear(ri, goal.X)
		if j < 0 || j == i {
			continue
		}
		cj := &nl.Cells[j]
		if cj.Region >= 0 || math.Abs(ci.W-cj.W) > 1e-9 {
			continue
		}
		before := e.affectedHPWL(i, j)
		xi, yi, xj, yj := ci.X, ci.Y, cj.X, cj.Y
		ci.X, ci.Y, cj.X, cj.Y = xj, yj, xi, yi
		after := e.affectedHPWL(i, j)
		if after < before-1e-9 {
			ri2, rj2 := e.rowOf[i], e.rowOf[j]
			e.swapCells(i, j, ri2, rj2)
			e.swaps++
			return true
		}
		ci.X, ci.Y, cj.X, cj.Y = xi, yi, xj, yj
	}
	return false
}

// reorderPass permutes windows of consecutive cells within each row.
func (e *engine) reorderPass(window int, st *Stats) int {
	accepted := 0
	perms := permutations(window)
	for ri := range e.inRow {
		cells := e.inRow[ri]
		for s := 0; s+window <= len(cells); s++ {
			win := cells[s : s+window]
			if e.tryReorder(win, perms) {
				accepted++
				st.Reorders++
				// Re-sort the window slice by X to keep row order.
				sort.Slice(win, func(a, b int) bool { return e.nl.Cells[win[a]].X < e.nl.Cells[win[b]].X })
			}
		}
	}
	return accepted
}

// tryReorder packs the window cells left-to-right in each permutation order
// within their original span and keeps the best arrangement.
func (e *engine) tryReorder(win []int, perms [][]int) bool {
	nl := e.nl
	n := len(win)
	for _, ci := range win {
		if nl.Cells[ci].Region >= 0 {
			return false
		}
	}
	lo := nl.Cells[win[0]].X
	hi := nl.Cells[win[n-1]].X + nl.Cells[win[n-1]].W
	// Packing left would slide cells across any obstacle inside the span.
	ri := e.rowOf[win[0]]
	for _, b := range e.blocked[ri] {
		if b.Lo < hi && b.Hi > lo {
			return false
		}
	}
	origX := make([]float64, n)
	var width float64
	for k, ci := range win {
		origX[k] = nl.Cells[ci].X
		width += nl.Cells[ci].W
	}
	if width > hi-lo+1e-9 {
		return false
	}
	before := e.affectedHPWL(win...)
	bestGain := 1e-9
	var bestX []float64
	for _, perm := range perms {
		x := lo
		candX := make([]float64, n)
		ok := true
		for _, pi := range perm {
			candX[pi] = x
			x += nl.Cells[win[pi]].W
		}
		if x > hi+1e-9 {
			ok = false
		}
		if !ok {
			continue
		}
		for k, ci := range win {
			nl.Cells[ci].X = candX[k]
		}
		after := e.affectedHPWL(win...)
		for k, ci := range win {
			nl.Cells[ci].X = origX[k]
		}
		if gain := before - after; gain > bestGain {
			bestGain = gain
			bestX = append([]float64(nil), candX...)
		}
	}
	if bestX == nil {
		return false
	}
	for k, ci := range win {
		nl.Cells[ci].X = bestX[k]
	}
	return true
}

// permutations returns all permutations of 0..n-1.
func permutations(n int) [][]int {
	var out [][]int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}

// nearRows returns up to 2*radius+1 row indices closest to y.
func (e *engine) nearRows(y float64, radius int) []int {
	best := 0
	bestD := math.Inf(1)
	for ri, r := range e.rows {
		if d := math.Abs(r.Y - y); d < bestD {
			bestD, best = d, ri
		}
	}
	var out []int
	for d := -radius; d <= radius; d++ {
		ri := best + d
		if ri >= 0 && ri < len(e.rows) {
			out = append(out, ri)
		}
	}
	return out
}

// gapFor finds a free x position in row ri for a cell of width w near
// wantX, ignoring cell skip (which is being moved). Site alignment follows
// the row's site width.
func (e *engine) gapFor(ri, skip int, wantX, w float64) (float64, bool) {
	r := e.rows[ri]
	site := r.SiteWidth
	if site <= 0 {
		site = 1
	}
	// Build gap list from the sorted row cells.
	prevEnd := r.XMin
	bestX, ok := 0.0, false
	bestCost := math.Inf(1)
	consider := func(gapLo, gapHi float64) {
		if gapHi-gapLo < w-1e-9 {
			return
		}
		x := geom.Clamp(wantX, gapLo, gapHi-w)
		x = r.XMin + math.Round((x-r.XMin)/site)*site
		for x < gapLo-1e-9 {
			x += site
		}
		for x+w > gapHi+1e-9 {
			x -= site
		}
		if x < gapLo-1e-9 {
			return
		}
		if cost := math.Abs(x - wantX); cost < bestCost {
			bestCost, bestX, ok = cost, x, true
		}
	}
	freeGap := func(lo, hi float64) { e.subtractBlocked(ri, lo, hi, consider) }
	for _, ci := range e.inRow[ri] {
		if ci == skip {
			continue
		}
		c := &e.nl.Cells[ci]
		freeGap(prevEnd, c.X)
		if c.X+c.W > prevEnd {
			prevEnd = c.X + c.W
		}
	}
	freeGap(prevEnd, r.XMax)
	return bestX, ok
}

// cellNear returns the row cell whose center is closest to x.
func (e *engine) cellNear(ri int, x float64) int {
	cells := e.inRow[ri]
	if len(cells) == 0 {
		return -1
	}
	k := sort.Search(len(cells), func(a int) bool { return e.nl.Cells[cells[a]].X >= x })
	best, bestD := -1, math.Inf(1)
	for _, cand := range []int{k - 1, k} {
		if cand < 0 || cand >= len(cells) {
			continue
		}
		ci := cells[cand]
		if d := math.Abs(e.nl.Cells[ci].Center().X - x); d < bestD {
			bestD, best = d, ci
		}
	}
	return best
}

// moveCell updates the row indexes after relocating cell i.
func (e *engine) moveCell(i, fromRow, toRow int) {
	e.removeFromRow(i, fromRow)
	e.insertIntoRow(i, toRow)
	e.rowOf[i] = toRow
}

func (e *engine) swapCells(i, j, ri, rj int) {
	if ri == rj {
		// Same row: positions swapped; re-sort.
		cells := e.inRow[ri]
		sort.Slice(cells, func(a, b int) bool { return e.nl.Cells[cells[a]].X < e.nl.Cells[cells[b]].X })
		return
	}
	e.removeFromRow(i, ri)
	e.removeFromRow(j, rj)
	e.insertIntoRow(i, rj)
	e.insertIntoRow(j, ri)
	e.rowOf[i], e.rowOf[j] = rj, ri
}

func (e *engine) removeFromRow(i, ri int) {
	cells := e.inRow[ri]
	for k, ci := range cells {
		if ci == i {
			e.inRow[ri] = append(cells[:k], cells[k+1:]...)
			return
		}
	}
}

func (e *engine) insertIntoRow(i, ri int) {
	cells := e.inRow[ri]
	x := e.nl.Cells[i].X
	k := sort.Search(len(cells), func(a int) bool { return e.nl.Cells[cells[a]].X >= x })
	cells = append(cells, 0)
	copy(cells[k+1:], cells[k:])
	cells[k] = i
	e.inRow[ri] = cells
}
