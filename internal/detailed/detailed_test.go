package detailed

import (
	"math/rand"
	"testing"

	"complx/internal/geom"
	"complx/internal/legalize"
	"complx/internal/netlist"
	"complx/internal/netmodel"
)

// legalDesign builds a random design, scatters it and legalizes it.
func legalDesign(t *testing.T, seed int64, numCells, numNets int) *netlist.Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder("dp")
	b.SetCore(geom.Rect{XMax: 60, YMax: 60})
	ids := make([]int, 0, numCells)
	for i := 0; i < numCells; i++ {
		ids = append(ids, b.AddCell(nm(i), float64(1+rng.Intn(2)), 1))
	}
	ids = append(ids, b.AddFixed("p1", 0, 0, 1, 1), b.AddFixed("p2", 59, 59, 1, 1))
	for i := 0; i < numNets; i++ {
		deg := 2 + rng.Intn(4)
		seen := map[int]bool{}
		var pins []netlist.PinSpec
		for len(pins) < deg {
			c := ids[rng.Intn(len(ids))]
			if seen[c] {
				continue
			}
			seen[c] = true
			pins = append(pins, netlist.PinSpec{Cell: c})
		}
		b.AddNet(nm2(i), 1, pins)
	}
	b.AddUniformRows(60, 1, 1)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range nl.Movables() {
		nl.Cells[i].SetCenter(geom.Point{X: 5 + 50*rng.Float64(), Y: 5 + 50*rng.Float64()})
	}
	if err := legalize.Legalize(nl, legalize.Options{}); err != nil {
		t.Fatal(err)
	}
	return nl
}

func nm(i int) string {
	return "c" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
}
func nm2(i int) string {
	return "n" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
}

func TestRefineImprovesHPWLAndStaysLegal(t *testing.T) {
	nl := legalDesign(t, 1, 300, 400)
	before := netmodel.WeightedHPWL(nl)
	st, err := Refine(nl, Options{Passes: 3})
	if err != nil {
		t.Fatal(err)
	}
	after := netmodel.WeightedHPWL(nl)
	if after > before+1e-9 {
		t.Errorf("HPWL rose: %v -> %v", before, after)
	}
	if st.HPWLBefore != before || st.HPWLAfter != after {
		t.Errorf("stats HPWL mismatch: %+v", st)
	}
	if after >= before {
		t.Errorf("expected strict improvement on random design: %v -> %v", before, after)
	}
	if v := legalize.Check(nl, 1e-6); len(v) != 0 {
		t.Fatalf("legality violated: %+v", v[:minInt(len(v), 5)])
	}
}

func TestRefineConvergesToFixedPoint(t *testing.T) {
	nl := legalDesign(t, 2, 150, 200)
	if _, err := Refine(nl, Options{Passes: 10}); err != nil {
		t.Fatal(err)
	}
	h1 := netmodel.WeightedHPWL(nl)
	st, err := Refine(nl, Options{Passes: 10})
	if err != nil {
		t.Fatal(err)
	}
	h2 := netmodel.WeightedHPWL(nl)
	if h2 > h1+1e-9 {
		t.Errorf("second refine increased HPWL: %v -> %v", h1, h2)
	}
	if h1-h2 > 0.05*h1 {
		t.Errorf("second refine improved too much (%v -> %v, %d moves): first was not converged",
			h1, h2, st.Moves+st.Swaps+st.Reorders)
	}
}

func TestRefinePassAblations(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"moves-only", Options{DisableSwaps: true, DisableReorder: true}},
		{"swaps-only", Options{DisableMoves: true, DisableReorder: true}},
		{"reorder-only", Options{DisableMoves: true, DisableSwaps: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nl := legalDesign(t, 3, 200, 250)
			before := netmodel.WeightedHPWL(nl)
			if _, err := Refine(nl, tc.opt); err != nil {
				t.Fatal(err)
			}
			after := netmodel.WeightedHPWL(nl)
			if after > before+1e-9 {
				t.Errorf("HPWL rose: %v -> %v", before, after)
			}
			if v := legalize.Check(nl, 1e-6); len(v) != 0 {
				t.Fatalf("legality violated: %+v", v[:minInt(len(v), 5)])
			}
		})
	}
}

func TestRefineNoRows(t *testing.T) {
	b := netlist.NewBuilder("norows")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c := b.AddCell("c", 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}})
	nl, _ := b.Build()
	if _, err := Refine(nl, Options{}); err == nil {
		t.Error("expected error without rows")
	}
}

func TestRefineOffRowCell(t *testing.T) {
	b := netlist.NewBuilder("off")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c := b.AddCell("c", 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}})
	b.AddUniformRows(10, 1, 1)
	nl, _ := b.Build()
	nl.Cells[c].X, nl.Cells[c].Y = 2, 2.5
	if _, err := Refine(nl, Options{}); err == nil {
		t.Error("expected error for off-row cell")
	}
}

func TestPermutations(t *testing.T) {
	p3 := permutations(3)
	if len(p3) != 6 {
		t.Errorf("3! = %d", len(p3))
	}
	seen := map[[3]int]bool{}
	for _, p := range p3 {
		var k [3]int
		copy(k[:], p)
		if seen[k] {
			t.Errorf("duplicate perm %v", p)
		}
		seen[k] = true
	}
}

func TestMedianInterval(t *testing.T) {
	// Single interval [2, 8]: cur clamped into it.
	if got := medianInterval([]float64{2}, []float64{8}, 5); got != 5 {
		t.Errorf("inside = %v", got)
	}
	if got := medianInterval([]float64{2}, []float64{8}, 0); got != 2 {
		t.Errorf("below = %v", got)
	}
	// Two intervals [0,2] and [4,10]: median interval is [2,4].
	if got := medianInterval([]float64{0, 4}, []float64{2, 10}, 9); got != 4 {
		t.Errorf("two-interval = %v", got)
	}
}

func TestVerticalSwapHappens(t *testing.T) {
	// Two cells on adjacent rows whose nets clearly prefer swapped spots.
	b := netlist.NewBuilder("vswap")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c1 := b.AddCell("c1", 1, 1)
	c2 := b.AddCell("c2", 1, 1)
	pTop := b.AddFixed("pt", 4.5, 9, 1, 1)
	pBot := b.AddFixed("pb", 4.5, 0, 1, 1)
	b.AddNet("n1", 1, []netlist.PinSpec{{Cell: c1}, {Cell: pTop}})
	b.AddNet("n2", 1, []netlist.PinSpec{{Cell: c2}, {Cell: pBot}})
	b.AddUniformRows(10, 1, 1)
	nl, _ := b.Build()
	// c1 (wants top) at bottom, c2 (wants bottom) at top; rows 4 and 5 are
	// otherwise full? They're empty, so tryMove will fix it — fine either way.
	nl.Cells[c1].X, nl.Cells[c1].Y = 4, 4
	nl.Cells[c2].X, nl.Cells[c2].Y = 4, 5
	before := netmodel.WeightedHPWL(nl)
	if _, err := Refine(nl, Options{Passes: 3}); err != nil {
		t.Fatal(err)
	}
	after := netmodel.WeightedHPWL(nl)
	if after >= before {
		t.Errorf("no improvement: %v -> %v", before, after)
	}
	if nl.Cells[c1].Y <= nl.Cells[c2].Y {
		t.Errorf("cells not reordered vertically: c1.y=%v c2.y=%v", nl.Cells[c1].Y, nl.Cells[c2].Y)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
