// Package lse provides the log-sum-exp smoothed wirelength (paper §S1,
// Ruehli et al.) and a Polak–Ribière nonlinear Conjugate Gradient minimizer,
// so the ComPLx Lagrangian can be instantiated with a non-quadratic
// interconnect model: Φ_LSE(x, y) + λ Σ γ_i·smoothabs(distance to anchor).
//
// The smoothed wirelength for a net e and smoothing parameter γ is
//
//	γ·log Σ_k exp(x_k/γ) + γ·log Σ_k exp(−x_k/γ)   (+ same in y)
//
// which over-approximates the HPWL and converges to it as γ → 0. The
// anchor penalty uses the β-regularized absolute value √(d²+β²) (paper §S1).
package lse

import (
	"context"
	"math"

	"complx/internal/geom"
	"complx/internal/netlist"
)

// Objective is the nonlinear placement objective over the movable cells of
// a netlist. X/Y variables are movable cell centers in Movables order.
type Objective struct {
	NL *netlist.Netlist
	// Gamma is the LSE smoothing parameter (in core units). Typical: 1% of
	// core width.
	Gamma float64
	// Anchors and Lambda add the ComPLx penalty term when non-nil
	// (per-movable, Movables order).
	Anchors []geom.Point
	Lambda  []float64
	// Beta is the smooth-abs regularization for the penalty; defaults to
	// Gamma when zero.
	Beta float64

	varOf []int
}

// NewObjective builds an objective for nl. gamma <= 0 defaults to 1% of the
// core width.
func NewObjective(nl *netlist.Netlist, gamma float64) *Objective {
	if gamma <= 0 {
		gamma = 0.01 * nl.Core.Width()
	}
	o := &Objective{NL: nl, Gamma: gamma}
	o.varOf = make([]int, len(nl.Cells))
	for i := range o.varOf {
		o.varOf[i] = -1
	}
	for k, i := range nl.Movables() {
		o.varOf[i] = k
	}
	return o
}

func (o *Objective) beta() float64 {
	if o.Beta > 0 {
		return o.Beta
	}
	return o.Gamma
}

// pinXY returns the pin position given candidate variable vectors.
func (o *Objective) pinXY(p int, xs, ys []float64) (px, py float64) {
	pin := &o.NL.Pins[p]
	v := o.varOf[pin.Cell]
	if v < 0 {
		pt := o.NL.PinPosition(p)
		return pt.X, pt.Y
	}
	return xs[v] + pin.DX, ys[v] + pin.DY
}

// Value evaluates the objective at (xs, ys).
func (o *Objective) Value(xs, ys []float64) float64 {
	g := o.Gamma
	var total float64
	for ni := range o.NL.Nets {
		net := &o.NL.Nets[ni]
		if len(net.Pins) < 2 {
			continue
		}
		total += net.Weight * (o.netLSE(net, xs, ys, true, g) + o.netLSE(net, xs, ys, false, g))
	}
	total += o.penaltyValue(xs, ys)
	return total
}

// netLSE returns lse+(v) + lse−(v) for one dimension of one net.
func (o *Objective) netLSE(net *netlist.Net, xs, ys []float64, isX bool, g float64) float64 {
	maxV, minV := math.Inf(-1), math.Inf(1)
	for _, p := range net.Pins {
		px, py := o.pinXY(p, xs, ys)
		v := px
		if !isX {
			v = py
		}
		maxV = math.Max(maxV, v)
		minV = math.Min(minV, v)
	}
	var sPos, sNeg float64
	for _, p := range net.Pins {
		px, py := o.pinXY(p, xs, ys)
		v := px
		if !isX {
			v = py
		}
		sPos += math.Exp((v - maxV) / g)
		sNeg += math.Exp((minV - v) / g)
	}
	return g*math.Log(sPos) + maxV + g*math.Log(sNeg) - minV
}

func (o *Objective) penaltyValue(xs, ys []float64) float64 {
	if o.Anchors == nil {
		return 0
	}
	b := o.beta()
	var total float64
	for k := range o.Anchors {
		lam := o.Lambda[k]
		if lam <= 0 {
			continue
		}
		dx := xs[k] - o.Anchors[k].X
		dy := ys[k] - o.Anchors[k].Y
		total += lam * (math.Sqrt(dx*dx+b*b) - b + math.Sqrt(dy*dy+b*b) - b)
	}
	return total
}

// Gradient writes the objective gradient at (xs, ys) into (gx, gy).
func (o *Objective) Gradient(xs, ys, gx, gy []float64) {
	for i := range gx {
		gx[i] = 0
		gy[i] = 0
	}
	g := o.Gamma
	for ni := range o.NL.Nets {
		net := &o.NL.Nets[ni]
		if len(net.Pins) < 2 {
			continue
		}
		o.netGrad(net, xs, ys, gx, true, g)
		o.netGrad(net, xs, ys, gy, false, g)
	}
	if o.Anchors != nil {
		b := o.beta()
		for k := range o.Anchors {
			lam := o.Lambda[k]
			if lam <= 0 {
				continue
			}
			dx := xs[k] - o.Anchors[k].X
			dy := ys[k] - o.Anchors[k].Y
			gx[k] += lam * dx / math.Sqrt(dx*dx+b*b)
			gy[k] += lam * dy / math.Sqrt(dy*dy+b*b)
		}
	}
}

func (o *Objective) netGrad(net *netlist.Net, xs, ys, grad []float64, isX bool, g float64) {
	maxV, minV := math.Inf(-1), math.Inf(1)
	for _, p := range net.Pins {
		px, py := o.pinXY(p, xs, ys)
		v := px
		if !isX {
			v = py
		}
		maxV = math.Max(maxV, v)
		minV = math.Min(minV, v)
	}
	var sPos, sNeg float64
	for _, p := range net.Pins {
		px, py := o.pinXY(p, xs, ys)
		v := px
		if !isX {
			v = py
		}
		sPos += math.Exp((v - maxV) / g)
		sNeg += math.Exp((minV - v) / g)
	}
	for _, p := range net.Pins {
		pin := &o.NL.Pins[p]
		k := o.varOf[pin.Cell]
		if k < 0 {
			continue
		}
		px, py := o.pinXY(p, xs, ys)
		v := px
		if !isX {
			v = py
		}
		d := net.Weight * (math.Exp((v-maxV)/g)/sPos - math.Exp((minV-v)/g)/sNeg)
		grad[k] += d
	}
}

// MinimizeOptions tunes the nonlinear CG solver.
type MinimizeOptions struct {
	MaxIter int     // default 100
	GradTol float64 // stop when ‖g‖∞ < GradTol; default 1e-4
}

// MinimizeResult reports the solve outcome.
type MinimizeResult struct {
	Iterations int
	Value      float64
	GradNorm   float64
}

// Function is a twice-usable placement objective over the movable-cell
// coordinate vectors: any smooth interconnect model (log-sum-exp, p,β-
// regularization, ...) optionally augmented with penalty terms.
type Function interface {
	Value(xs, ys []float64) float64
	Gradient(xs, ys, gx, gy []float64)
}

// Minimize runs Polak–Ribière nonlinear CG with Armijo backtracking from the
// given starting point, updating xs/ys in place.
func Minimize(o Function, xs, ys []float64, opt MinimizeOptions) MinimizeResult {
	res, _ := MinimizeCtx(context.Background(), o, xs, ys, opt)
	return res
}

// MinimizeCtx is Minimize with cooperative cancellation: ctx is polled once
// per outer nonlinear-CG iteration. On cancellation xs/ys hold the best
// iterate reached so far (every accepted step is monotone non-increasing in
// the objective) and the returned error wraps ctx.Err().
func MinimizeCtx(ctx context.Context, o Function, xs, ys []float64, opt MinimizeOptions) (MinimizeResult, error) {
	if opt.MaxIter <= 0 {
		opt.MaxIter = 100
	}
	if opt.GradTol <= 0 {
		opt.GradTol = 1e-4
	}
	n := len(xs)
	gx, gy := make([]float64, n), make([]float64, n)
	pgx, pgy := make([]float64, n), make([]float64, n)
	dx, dy := make([]float64, n), make([]float64, n)
	tx, ty := make([]float64, n), make([]float64, n)

	f := o.Value(xs, ys)
	o.Gradient(xs, ys, gx, gy)
	for i := 0; i < n; i++ {
		dx[i], dy[i] = -gx[i], -gy[i]
	}
	res := MinimizeResult{Value: f}
	step := 1.0
	for it := 0; it < opt.MaxIter; it++ {
		if err := ctx.Err(); err != nil {
			res.Value = f
			return res, err
		}
		gInf := 0.0
		for i := 0; i < n; i++ {
			gInf = math.Max(gInf, math.Max(math.Abs(gx[i]), math.Abs(gy[i])))
		}
		res.GradNorm = gInf
		res.Iterations = it
		if gInf < opt.GradTol {
			break
		}
		// Directional derivative; reset to steepest descent if not a
		// descent direction.
		var dd float64
		for i := 0; i < n; i++ {
			dd += gx[i]*dx[i] + gy[i]*dy[i]
		}
		if dd >= 0 {
			for i := 0; i < n; i++ {
				dx[i], dy[i] = -gx[i], -gy[i]
			}
			dd = 0
			for i := 0; i < n; i++ {
				dd += gx[i]*dx[i] + gy[i]*dy[i]
			}
		}
		// Armijo backtracking.
		alpha := step
		const c1 = 1e-4
		ok := false
		for tries := 0; tries < 40; tries++ {
			for i := 0; i < n; i++ {
				tx[i] = xs[i] + alpha*dx[i]
				ty[i] = ys[i] + alpha*dy[i]
			}
			ft := o.Value(tx, ty)
			if ft <= f+c1*alpha*dd {
				ok = true
				break
			}
			alpha /= 2
		}
		if !ok {
			break // no progress possible
		}
		copy(xs, tx)
		copy(ys, ty)
		f = o.Value(xs, ys)
		step = alpha * 2 // mild step growth for the next iteration

		copy(pgx, gx)
		copy(pgy, gy)
		o.Gradient(xs, ys, gx, gy)
		// Polak–Ribière+ beta.
		var num, den float64
		for i := 0; i < n; i++ {
			num += gx[i]*(gx[i]-pgx[i]) + gy[i]*(gy[i]-pgy[i])
			den += pgx[i]*pgx[i] + pgy[i]*pgy[i]
		}
		beta := 0.0
		if den > 0 {
			beta = math.Max(0, num/den)
		}
		for i := 0; i < n; i++ {
			dx[i] = -gx[i] + beta*dx[i]
			dy[i] = -gy[i] + beta*dy[i]
		}
	}
	res.Value = f
	return res, nil
}

// Solve minimizes the objective starting from the current netlist placement
// and writes the optimized centers back into the netlist (clamped to the
// core).
func Solve(o *Objective, opt MinimizeOptions) MinimizeResult {
	return SolveWith(o.NL, o, opt)
}

// SolveCtx is Solve with cooperative cancellation (see SolveWithCtx).
func SolveCtx(ctx context.Context, o *Objective, opt MinimizeOptions) (MinimizeResult, error) {
	return SolveWithCtx(ctx, o.NL, o, opt)
}

// SolveWith minimizes any Function over nl's movable-cell coordinates,
// writing the optimized centers back (clamped to the core).
func SolveWith(nl *netlist.Netlist, o Function, opt MinimizeOptions) MinimizeResult {
	res, _ := SolveWithCtx(context.Background(), nl, o, opt)
	return res
}

// SolveWithCtx is SolveWith with cooperative cancellation: ctx is polled
// once per outer nonlinear-CG iteration. On cancellation the best iterate
// reached so far is still written back to the netlist (it is usable as a
// best-so-far placement) and the returned error wraps ctx.Err().
func SolveWithCtx(ctx context.Context, nl *netlist.Netlist, o Function, opt MinimizeOptions) (MinimizeResult, error) {
	mov := nl.Movables()
	xs := make([]float64, len(mov))
	ys := make([]float64, len(mov))
	for k, i := range mov {
		c := nl.Cells[i].Center()
		xs[k] = c.X
		ys[k] = c.Y
	}
	res, err := MinimizeCtx(ctx, o, xs, ys, opt)
	for k, i := range mov {
		c := &nl.Cells[i]
		hw, hh := c.W/2, c.H/2
		p := geom.Point{
			X: geom.Clamp(xs[k], nl.Core.XMin+hw, nl.Core.XMax-hw),
			Y: geom.Clamp(ys[k], nl.Core.YMin+hh, nl.Core.YMax-hh),
		}
		c.SetCenter(p)
	}
	return res, err
}
