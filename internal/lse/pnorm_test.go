package lse

import (
	"math"
	"math/rand"
	"testing"

	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/netmodel"
)

func TestPNormUpperBoundsHPWL(t *testing.T) {
	nl := design(t, 21, 10, 14)
	hp := netmodel.HPWL(nl)
	xs, ys := vars(nl)
	var prev = math.Inf(1)
	for _, p := range []float64{2, 4, 8, 16} {
		o := NewPNorm(nl, p)
		v := o.Value(xs, ys)
		if v < hp-1e-6 {
			t.Errorf("p=%v: value %v below HPWL %v", p, v, hp)
		}
		if v > prev+1e-9 {
			t.Errorf("p=%v: value %v not monotone decreasing (prev %v)", p, v, prev)
		}
		prev = v
	}
	// Large p approaches the exact HPWL within a modest band (pairwise sums
	// over-count, so the bound is loose but must shrink).
	o := NewPNorm(nl, 24)
	if v := o.Value(xs, ys); v > 1.5*hp {
		t.Errorf("p=24 value %v too far above HPWL %v", v, hp)
	}
}

func TestPNormGradientMatchesFiniteDifferences(t *testing.T) {
	nl := design(t, 22, 7, 9)
	o := NewPNorm(nl, 6)
	n := nl.NumMovable()
	o.Anchors = make([]geom.Point, n)
	o.Lambda = make([]float64, n)
	rng := rand.New(rand.NewSource(9))
	for k := range o.Anchors {
		o.Anchors[k] = geom.Point{X: 100 * rng.Float64(), Y: 100 * rng.Float64()}
		o.Lambda[k] = rng.Float64()
	}
	xs, ys := vars(nl)
	gx := make([]float64, n)
	gy := make([]float64, n)
	o.Gradient(xs, ys, gx, gy)
	const h = 1e-5
	for k := 0; k < n; k++ {
		for _, isX := range []bool{true, false} {
			v, g := &xs[k], gx[k]
			if !isX {
				v, g = &ys[k], gy[k]
			}
			orig := *v
			*v = orig + h
			fp := o.Value(xs, ys)
			*v = orig - h
			fm := o.Value(xs, ys)
			*v = orig
			fd := (fp - fm) / (2 * h)
			if math.Abs(fd-g) > 1e-3*(1+math.Abs(fd)) {
				t.Fatalf("var %d (isX=%v): grad %v vs fd %v", k, isX, g, fd)
			}
		}
	}
}

func TestPNormMinimizeConverges(t *testing.T) {
	b := netlist.NewBuilder("two")
	b.SetCore(geom.Rect{XMax: 100, YMax: 100})
	c := b.AddCell("c", 1, 1)
	p := b.AddFixed("p", 39.5, 59.5, 1, 1) // center (40, 60)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}, {Cell: p}})
	nl, _ := b.Build()
	nl.Cells[c].SetCenter(geom.Point{X: 90, Y: 5})
	o := NewPNorm(nl, 8)
	SolveWith(nl, o, MinimizeOptions{MaxIter: 400, GradTol: 1e-7})
	got := nl.Cells[c].Center()
	if math.Abs(got.X-40) > 1.5 || math.Abs(got.Y-60) > 1.5 {
		t.Errorf("cell at %v, want near (40, 60)", got)
	}
}

func TestPNormReducesWirelength(t *testing.T) {
	nl := design(t, 23, 12, 18)
	before := netmodel.HPWL(nl)
	o := NewPNorm(nl, 8)
	SolveWith(nl, o, MinimizeOptions{MaxIter: 120})
	after := netmodel.HPWL(nl)
	if after >= before {
		t.Errorf("HPWL %v -> %v", before, after)
	}
}

func TestPNormCoincidentPinsStable(t *testing.T) {
	// All pins at one point: value is the beta floor, gradient is zero and
	// finite.
	b := netlist.NewBuilder("co")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c1 := b.AddCell("c1", 1, 1)
	c2 := b.AddCell("c2", 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c1}, {Cell: c2}})
	nl, _ := b.Build()
	nl.Cells[c1].SetCenter(geom.Point{X: 5, Y: 5})
	nl.Cells[c2].SetCenter(geom.Point{X: 5, Y: 5})
	o := NewPNorm(nl, 8)
	xs, ys := vars(nl)
	v := o.Value(xs, ys)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("value = %v", v)
	}
	gx := make([]float64, 2)
	gy := make([]float64, 2)
	o.Gradient(xs, ys, gx, gy)
	for i := range gx {
		if math.IsNaN(gx[i]) || math.IsNaN(gy[i]) {
			t.Fatalf("gradient NaN at %d", i)
		}
	}
}

func TestPNormDefaults(t *testing.T) {
	nl := design(t, 24, 3, 3)
	o := NewPNorm(nl, 0)
	if o.P != 8 {
		t.Errorf("default P = %v", o.P)
	}
	if o.Beta <= 0 {
		t.Errorf("default Beta = %v", o.Beta)
	}
}
