package lse

import (
	"math"
	"math/rand"
	"testing"

	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/netmodel"
)

func design(t *testing.T, seed int64, nCells, nNets int) *netlist.Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder("lse")
	b.SetCore(geom.Rect{XMax: 100, YMax: 100})
	ids := []int{}
	for i := 0; i < nCells; i++ {
		ids = append(ids, b.AddCell(nm("c", i), 1, 1))
	}
	ids = append(ids, b.AddFixed("p1", 0, 0, 1, 1), b.AddFixed("p2", 99, 99, 1, 1))
	for i := 0; i < nNets; i++ {
		deg := 2 + rng.Intn(4)
		seen := map[int]bool{}
		var pins []netlist.PinSpec
		for len(pins) < deg {
			c := ids[rng.Intn(len(ids))]
			if seen[c] {
				continue
			}
			seen[c] = true
			pins = append(pins, netlist.PinSpec{Cell: c, DX: rng.Float64() - 0.5, DY: rng.Float64() - 0.5})
		}
		b.AddNet(nm("n", i), 1, pins)
	}
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range nl.Movables() {
		nl.Cells[i].SetCenter(geom.Point{X: 10 + 80*rng.Float64(), Y: 10 + 80*rng.Float64()})
	}
	return nl
}

func nm(p string, i int) string {
	return p + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('0'+i/260))
}

func vars(nl *netlist.Netlist) (xs, ys []float64) {
	for _, i := range nl.Movables() {
		c := nl.Cells[i].Center()
		xs = append(xs, c.X)
		ys = append(ys, c.Y)
	}
	return
}

// TestLSEUpperBoundsHPWL: the log-sum-exp wirelength over-approximates HPWL
// and tightens as gamma shrinks.
func TestLSEUpperBoundsHPWL(t *testing.T) {
	nl := design(t, 1, 12, 15)
	hp := netmodel.HPWL(nl)
	var prev float64 = math.Inf(1)
	for _, gamma := range []float64{4, 2, 1, 0.5, 0.25} {
		o := NewObjective(nl, gamma)
		xs, ys := vars(nl)
		v := o.Value(xs, ys)
		if v < hp-1e-6 {
			t.Errorf("gamma %v: LSE %v below HPWL %v", gamma, v, hp)
		}
		if v > prev+1e-9 {
			t.Errorf("gamma %v: LSE %v not monotone (prev %v)", gamma, v, prev)
		}
		prev = v
	}
	// At small gamma, LSE ~ HPWL.
	o := NewObjective(nl, 0.05)
	xs, ys := vars(nl)
	if v := o.Value(xs, ys); math.Abs(v-hp) > 0.05*hp {
		t.Errorf("small-gamma LSE %v too far from HPWL %v", v, hp)
	}
}

// TestGradientMatchesFiniteDifferences is the key correctness property for
// the nonlinear model.
func TestGradientMatchesFiniteDifferences(t *testing.T) {
	nl := design(t, 2, 8, 10)
	o := NewObjective(nl, 1.5)
	// Include the anchor penalty in the check.
	n := nl.NumMovable()
	o.Anchors = make([]geom.Point, n)
	o.Lambda = make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for k := range o.Anchors {
		o.Anchors[k] = geom.Point{X: 100 * rng.Float64(), Y: 100 * rng.Float64()}
		o.Lambda[k] = rng.Float64()
	}
	xs, ys := vars(nl)
	gx := make([]float64, n)
	gy := make([]float64, n)
	o.Gradient(xs, ys, gx, gy)
	const h = 1e-5
	for k := 0; k < n; k++ {
		for _, isX := range []bool{true, false} {
			v := &xs[k]
			g := gx[k]
			if !isX {
				v = &ys[k]
				g = gy[k]
			}
			orig := *v
			*v = orig + h
			fp := o.Value(xs, ys)
			*v = orig - h
			fm := o.Value(xs, ys)
			*v = orig
			fd := (fp - fm) / (2 * h)
			if math.Abs(fd-g) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("var %d (isX=%v): grad %v vs fd %v", k, isX, g, fd)
			}
		}
	}
}

func TestMinimizeReducesValue(t *testing.T) {
	nl := design(t, 4, 15, 25)
	o := NewObjective(nl, 1)
	xs, ys := vars(nl)
	before := o.Value(xs, ys)
	res := Minimize(o, xs, ys, MinimizeOptions{MaxIter: 150})
	if res.Value >= before {
		t.Errorf("minimize did not reduce: %v -> %v", before, res.Value)
	}
	if res.Value > 0.8*before {
		t.Errorf("expected substantial reduction, got %v -> %v", before, res.Value)
	}
}

func TestMinimizeTwoPinNetConverges(t *testing.T) {
	b := netlist.NewBuilder("two")
	b.SetCore(geom.Rect{XMax: 100, YMax: 100})
	c := b.AddCell("c", 1, 1)
	p := b.AddFixed("p", 29.5, 69.5, 1, 1) // center (30, 70)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}, {Cell: p}})
	nl, _ := b.Build()
	nl.Cells[c].SetCenter(geom.Point{X: 80, Y: 10})
	o := NewObjective(nl, 0.5)
	res := Solve(o, MinimizeOptions{MaxIter: 300, GradTol: 1e-6})
	got := nl.Cells[c].Center()
	if math.Abs(got.X-30) > 1 || math.Abs(got.Y-70) > 1 {
		t.Errorf("cell at %v after %d iters, want (30, 70)", got, res.Iterations)
	}
}

func TestAnchorPenaltyPullsTowardAnchor(t *testing.T) {
	nl := design(t, 5, 6, 8)
	n := nl.NumMovable()
	o := NewObjective(nl, 1)
	o.Anchors = make([]geom.Point, n)
	o.Lambda = make([]float64, n)
	for k := range o.Anchors {
		o.Anchors[k] = geom.Point{X: 90, Y: 90}
		o.Lambda[k] = 50 // dominate wirelength
	}
	Solve(o, MinimizeOptions{MaxIter: 200})
	for _, i := range nl.Movables() {
		c := nl.Cells[i].Center()
		if c.L1(geom.Point{X: 90, Y: 90}) > 25 {
			t.Errorf("cell %q at %v, want near (90,90)", nl.Cells[i].Name, c)
		}
	}
}

func TestDefaultGamma(t *testing.T) {
	nl := design(t, 6, 3, 3)
	o := NewObjective(nl, 0)
	if o.Gamma != 1 { // 1% of 100-wide core
		t.Errorf("default gamma = %v", o.Gamma)
	}
	if o.beta() != o.Gamma {
		t.Errorf("default beta = %v", o.beta())
	}
	o.Beta = 0.5
	if o.beta() != 0.5 {
		t.Errorf("explicit beta = %v", o.beta())
	}
}

func TestSolveClampsToCore(t *testing.T) {
	b := netlist.NewBuilder("clamp")
	b.SetCore(geom.Rect{XMin: 10, YMin: 10, XMax: 90, YMax: 90})
	c := b.AddCell("c", 4, 4)
	p := b.AddFixed("p", -20, -20, 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}, {Cell: p}})
	nl, _ := b.Build()
	nl.Cells[c].SetCenter(geom.Point{X: 50, Y: 50})
	o := NewObjective(nl, 0.5)
	Solve(o, MinimizeOptions{MaxIter: 300})
	got := nl.Cells[c].Center()
	if got.X < 12-1e-9 || got.Y < 12-1e-9 {
		t.Errorf("cell at %v escaped core", got)
	}
}
