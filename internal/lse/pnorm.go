package lse

import (
	"math"

	"complx/internal/geom"
	"complx/internal/netlist"
)

// PNorm is the p,β-regularization of the HPWL (paper §S1, Kennings &
// Markov): for each net e and dimension,
//
//	( Σ_{i<j∈e} |x_i − x_j|^p + β )^{1/p}  →  max_{i,j∈e} |x_i − x_j|  as p → ∞.
//
// It is smooth, over-approximates the pin spread, and tightens as p grows —
// one more interconnect model the ComPLx Lagrangian can be instantiated
// with. The same optional anchor penalty as Objective is supported.
type PNorm struct {
	NL *netlist.Netlist
	// P is the norm exponent (default 8).
	P float64
	// Beta is the regularizer inside the p-th root and the smooth-abs
	// parameter of the penalty (default 1e-3 of core width, to the p-th
	// power for the root term).
	Beta float64
	// Anchors and Lambda add the ComPLx penalty term when non-nil.
	Anchors []geom.Point
	Lambda  []float64

	varOf []int
}

// NewPNorm builds a p,β-regularized objective for nl. p <= 0 selects 8.
func NewPNorm(nl *netlist.Netlist, p float64) *PNorm {
	if p <= 0 {
		p = 8
	}
	o := &PNorm{NL: nl, P: p, Beta: 1e-3 * nl.Core.Width()}
	o.varOf = make([]int, len(nl.Cells))
	for i := range o.varOf {
		o.varOf[i] = -1
	}
	for k, i := range nl.Movables() {
		o.varOf[i] = k
	}
	return o
}

func (o *PNorm) pinXY(p int, xs, ys []float64) (px, py float64) {
	pin := &o.NL.Pins[p]
	v := o.varOf[pin.Cell]
	if v < 0 {
		pt := o.NL.PinPosition(p)
		return pt.X, pt.Y
	}
	return xs[v] + pin.DX, ys[v] + pin.DY
}

// netValue returns the p,β-regularized spread of one net along one
// dimension, scaling by the maximum pairwise distance for numerical
// stability: (Σ|d|^p + β)^{1/p} = M·(Σ(|d|/M)^p + β/M^p)^{1/p}.
func (o *PNorm) netValue(net *netlist.Net, xs, ys []float64, isX bool) float64 {
	coords := o.coords(net, xs, ys, isX)
	m := maxPairDist(coords)
	if m <= 0 {
		return math.Pow(o.Beta, 1/o.P)
	}
	var s float64
	for i := 0; i < len(coords); i++ {
		for j := i + 1; j < len(coords); j++ {
			s += math.Pow(math.Abs(coords[i]-coords[j])/m, o.P)
		}
	}
	s += o.Beta / math.Pow(m, o.P)
	return m * math.Pow(s, 1/o.P)
}

func (o *PNorm) coords(net *netlist.Net, xs, ys []float64, isX bool) []float64 {
	out := make([]float64, len(net.Pins))
	for k, p := range net.Pins {
		px, py := o.pinXY(p, xs, ys)
		if isX {
			out[k] = px
		} else {
			out[k] = py
		}
	}
	return out
}

func maxPairDist(coords []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range coords {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return hi - lo
}

// Value evaluates the objective.
func (o *PNorm) Value(xs, ys []float64) float64 {
	var total float64
	for ni := range o.NL.Nets {
		net := &o.NL.Nets[ni]
		if len(net.Pins) < 2 {
			continue
		}
		total += net.Weight * (o.netValue(net, xs, ys, true) + o.netValue(net, xs, ys, false))
	}
	total += o.penaltyValue(xs, ys)
	return total
}

func (o *PNorm) penaltyValue(xs, ys []float64) float64 {
	if o.Anchors == nil {
		return 0
	}
	b := o.Beta
	if b <= 0 {
		b = 1e-6
	}
	var total float64
	for k := range o.Anchors {
		lam := o.Lambda[k]
		if lam <= 0 {
			continue
		}
		dx := xs[k] - o.Anchors[k].X
		dy := ys[k] - o.Anchors[k].Y
		total += lam * (math.Sqrt(dx*dx+b*b) - b + math.Sqrt(dy*dy+b*b) - b)
	}
	return total
}

// Gradient writes the analytic gradient into gx, gy.
func (o *PNorm) Gradient(xs, ys, gx, gy []float64) {
	for i := range gx {
		gx[i] = 0
		gy[i] = 0
	}
	for ni := range o.NL.Nets {
		net := &o.NL.Nets[ni]
		if len(net.Pins) < 2 {
			continue
		}
		o.netGrad(net, xs, ys, gx, true)
		o.netGrad(net, xs, ys, gy, false)
	}
	if o.Anchors != nil {
		b := o.Beta
		if b <= 0 {
			b = 1e-6
		}
		for k := range o.Anchors {
			lam := o.Lambda[k]
			if lam <= 0 {
				continue
			}
			dx := xs[k] - o.Anchors[k].X
			dy := ys[k] - o.Anchors[k].Y
			gx[k] += lam * dx / math.Sqrt(dx*dx+b*b)
			gy[k] += lam * dy / math.Sqrt(dy*dy+b*b)
		}
	}
}

// netGrad accumulates w·∂/∂x of (Σ|d|^p + β)^{1/p}:
//
//	∂V/∂x_k = V^{1−p} · Σ_j |x_k − x_j|^{p−1}·sign(x_k − x_j)
func (o *PNorm) netGrad(net *netlist.Net, xs, ys, grad []float64, isX bool) {
	coords := o.coords(net, xs, ys, isX)
	m := maxPairDist(coords)
	if m <= 0 {
		return // flat at coincident pins (subgradient 0)
	}
	v := o.netValue(net, xs, ys, isX)
	if v <= 0 {
		return
	}
	// Work in scaled space: V = m·u where u = (Σ(|d|/m)^p + β/m^p)^{1/p};
	// ∂V/∂x_k = (V/(m·u^p))·Σ_j (|d_kj|/m)^{p−1}·sign(d_kj)
	//         = V^{1−p}·Σ_j |d_kj|^{p−1}·sign(d_kj) computed stably.
	u := v / m
	up := math.Pow(u, o.P-1)
	for k, p := range net.Pins {
		pin := &o.NL.Pins[p]
		vi := o.varOf[pin.Cell]
		if vi < 0 {
			continue
		}
		var s float64
		for j := range coords {
			if j == k {
				continue
			}
			d := (coords[k] - coords[j]) / m
			s += math.Pow(math.Abs(d), o.P-1) * sign(d)
		}
		grad[vi] += net.Weight * s / up
	}
}

func sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}
