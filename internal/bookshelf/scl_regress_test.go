package bookshelf

import (
	"strings"
	"testing"
)

// TestSclSubrowOriginShortMiddle is the regression test for the readScl
// index-out-of-range crash found by fuzzing: a SubrowOrigin line whose
// middle colon-separated segment carries fewer than two fields (e.g.
// "SubrowOrigin : 0 : 100", where the benchmark writer intended
// "SubrowOrigin : 0 NumSites : 100") used to index past the end of the
// field slice. The reader's contract is lenient — malformed per-row lines
// are skipped, never panicked on — so every variant must parse with a nil
// error, and only the well-formed pairings may set the subrow geometry.
func TestSclSubrowOriginShortMiddle(t *testing.T) {
	cases := []struct {
		name  string
		input string
		// wantXMax is the expected XMax of the parsed row: SubrowOrigin +
		// NumSites·SiteWidth when the line was understood, 0 when it was
		// skipped as malformed.
		wantXMax float64
	}{
		// The original crasher: middle segment has one field, so the
		// "NumSites" keyword is missing. Skipped, not panicked on.
		{"crasher", "CoreRow\nSubrowOrigin : 0 : 100\nEnd\n", 0},
		{"crasher-padded", "CoreRow\n  SubrowOrigin :  7  : 100\nEnd\n", 0},
		// Well-formed pairings keep parsing.
		{"wellformed", "CoreRow\nSubrowOrigin : 5 NumSites : 100\nEnd\n", 105},
		{"wellformed-tabs", "CoreRow\nSubrowOrigin :\t5\tNumSites : 10\nEnd\n", 15},
		// Other degenerate colon arrangements must also stay panic-free.
		{"empty-middle", "CoreRow\nSubrowOrigin :  : 100\nEnd\n", 0},
		{"no-value", "CoreRow\nSubrowOrigin :\nEnd\n", 0},
		{"key-only", "CoreRow\nSubrowOrigin\nEnd\n", 0},
		{"four-segments", "CoreRow\nSubrowOrigin : 3 NumSites : 10 : 9\nEnd\n", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := &Design{Name: "regress", TargetDensity: 1.0}
			if err := d.readScl(strings.NewReader(tc.input)); err != nil {
				t.Fatalf("readScl(%q) = %v, want nil (lenient skip)", tc.input, err)
			}
			if len(d.Rows) != 1 {
				t.Fatalf("parsed %d rows, want 1", len(d.Rows))
			}
			if got := d.Rows[0].XMax; got != tc.wantXMax {
				t.Errorf("row XMax = %g, want %g", got, tc.wantXMax)
			}
		})
	}
	// Non-finite subrow values are the one hard error on this line.
	d := &Design{Name: "regress", TargetDensity: 1.0}
	if err := d.readScl(strings.NewReader("CoreRow\nSubrowOrigin : NaN NumSites : 10\nEnd\n")); err == nil {
		t.Error("non-finite SubrowOrigin accepted")
	}
}
