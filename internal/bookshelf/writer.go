package bookshelf

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"complx/internal/netlist"
)

// WriteNetlist writes nl as a complete Bookshelf benchmark (aux, nodes,
// nets, wts, pl, scl) under dir using the design name as the file stem.
// targetDensity is recorded as a comment in the .aux file.
func WriteNetlist(dir string, nl *netlist.Netlist, targetDensity float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := nl.Name
	write := func(ext string, fn func(w io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name+ext))
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		if err := fn(bw); err != nil {
			f.Close()
			return err
		}
		if err := bw.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(".aux", func(w io.Writer) error {
		if targetDensity > 0 && targetDensity < 1 {
			fmt.Fprintf(w, "# TargetDensity : %g\n", targetDensity)
		}
		_, err := fmt.Fprintf(w, "RowBasedPlacement : %s.nodes %s.nets %s.wts %s.pl %s.scl\n",
			name, name, name, name, name)
		return err
	}); err != nil {
		return err
	}
	if err := write(".nodes", func(w io.Writer) error { return writeNodes(w, nl) }); err != nil {
		return err
	}
	if err := write(".nets", func(w io.Writer) error { return writeNets(w, nl) }); err != nil {
		return err
	}
	if err := write(".wts", func(w io.Writer) error { return writeWts(w, nl) }); err != nil {
		return err
	}
	if err := write(".pl", func(w io.Writer) error { return WritePl(w, nl) }); err != nil {
		return err
	}
	return write(".scl", func(w io.Writer) error { return writeScl(w, nl) })
}

func writeNodes(w io.Writer, nl *netlist.Netlist) error {
	fmt.Fprintln(w, "UCLA nodes 1.0")
	terms := 0
	for i := range nl.Cells {
		if nl.Cells[i].Fixed() {
			terms++
		}
	}
	fmt.Fprintf(w, "NumNodes : %d\n", len(nl.Cells))
	fmt.Fprintf(w, "NumTerminals : %d\n", terms)
	for i := range nl.Cells {
		c := &nl.Cells[i]
		suffix := ""
		if c.Fixed() {
			suffix = " terminal"
		}
		if _, err := fmt.Fprintf(w, "\t%s\t%g\t%g%s\n", c.Name, c.W, c.H, suffix); err != nil {
			return err
		}
	}
	return nil
}

func writeNets(w io.Writer, nl *netlist.Netlist) error {
	fmt.Fprintln(w, "UCLA nets 1.0")
	fmt.Fprintf(w, "NumNets : %d\n", len(nl.Nets))
	fmt.Fprintf(w, "NumPins : %d\n", len(nl.Pins))
	for i := range nl.Nets {
		n := &nl.Nets[i]
		fmt.Fprintf(w, "NetDegree : %d  %s\n", len(n.Pins), n.Name)
		for _, p := range n.Pins {
			pin := &nl.Pins[p]
			if _, err := fmt.Fprintf(w, "\t%s I : %g %g\n",
				nl.Cells[pin.Cell].Name, pin.DX, pin.DY); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeWts(w io.Writer, nl *netlist.Netlist) error {
	fmt.Fprintln(w, "UCLA wts 1.0")
	for i := range nl.Nets {
		if _, err := fmt.Fprintf(w, "%s %g\n", nl.Nets[i].Name, nl.Nets[i].Weight); err != nil {
			return err
		}
	}
	return nil
}

// WritePl writes only the .pl placement body for nl to w.
func WritePl(w io.Writer, nl *netlist.Netlist) error {
	fmt.Fprintln(w, "UCLA pl 1.0")
	for i := range nl.Cells {
		c := &nl.Cells[i]
		suffix := ""
		if c.Fixed() {
			suffix = " /FIXED"
		}
		if _, err := fmt.Fprintf(w, "%s\t%g\t%g\t: N%s\n", c.Name, c.X, c.Y, suffix); err != nil {
			return err
		}
	}
	return nil
}

func writeScl(w io.Writer, nl *netlist.Netlist) error {
	fmt.Fprintln(w, "UCLA scl 1.0")
	fmt.Fprintf(w, "NumRows : %d\n", len(nl.Rows))
	for _, r := range nl.Rows {
		sw := r.SiteWidth
		if sw <= 0 {
			sw = 1
		}
		numSites := int((r.XMax - r.XMin) / sw)
		fmt.Fprintln(w, "CoreRow Horizontal")
		fmt.Fprintf(w, "  Coordinate : %g\n", r.Y)
		fmt.Fprintf(w, "  Height : %g\n", r.Height)
		fmt.Fprintf(w, "  Sitewidth : %g\n", sw)
		fmt.Fprintf(w, "  Sitespacing : %g\n", sw)
		fmt.Fprintf(w, "  Siteorient : 1\n")
		fmt.Fprintf(w, "  Sitesymmetry : 1\n")
		if _, err := fmt.Fprintf(w, "  SubrowOrigin : %g  NumSites : %d\nEnd\n", r.XMin, numSites); err != nil {
			return err
		}
	}
	return nil
}
