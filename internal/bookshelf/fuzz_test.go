package bookshelf

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The fuzz targets in this file assert the reader's two safety contracts on
// arbitrary bytes:
//
//  1. no panic — every malformed input is rejected with an error, and
//  2. no poison — every value that survives parsing is finite (and sizes
//     and weights are non-negative), so NaN/Inf can never enter the
//     placement pipeline through Bookshelf I/O.
//
// Run long sessions with e.g.
//
//	go test ./internal/bookshelf -fuzz FuzzReadAux -fuzztime 60s

// checkDesignFinite asserts invariant (2) on a successfully parsed design.
func checkDesignFinite(t *testing.T, d *Design) {
	t.Helper()
	fin := func(what string, vs ...float64) {
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite %s survived parsing: %v", what, v)
			}
		}
	}
	fin("target density", d.TargetDensity)
	if !(d.TargetDensity > 0) || d.TargetDensity > 1 {
		t.Fatalf("target density out of (0, 1]: %v", d.TargetDensity)
	}
	for i := range d.Nodes {
		n := &d.Nodes[i]
		fin("node geometry", n.W, n.H, n.X, n.Y)
		if n.W < 0 || n.H < 0 {
			t.Fatalf("negative node size survived parsing: %v x %v", n.W, n.H)
		}
		if n.FixedNI && !n.Fixed {
			t.Fatalf("node %q: FixedNI without Fixed", n.Name)
		}
	}
	for i := range d.Nets {
		net := &d.Nets[i]
		fin("net weight", net.Weight)
		if !(net.Weight > 0) {
			t.Fatalf("non-positive net weight survived parsing: %v", net.Weight)
		}
		for _, p := range net.Pins {
			fin("pin offset", p.DX, p.DY)
		}
	}
	for i := range d.Rows {
		r := &d.Rows[i]
		fin("row geometry", r.XMin, r.XMax, r.Y, r.Height, r.SiteWidth)
	}
}

// fuzzSection fuzzes one per-file reader method against arbitrary bytes.
func fuzzSection(f *testing.F, seeds []string, read func(d *Design, data string) error) {
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		d := &Design{Name: "fuzz", TargetDensity: 1.0}
		if err := read(d, data); err != nil {
			if strings.Count(err.Error(), "\n") != 0 {
				t.Fatalf("multi-line error message: %q", err.Error())
			}
			return
		}
		checkDesignFinite(t, d)
	})
}

func FuzzNodes(f *testing.F) {
	fuzzSection(f, []string{
		"UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 1\na 2 1\npad 1 1 terminal\n",
		"a 2 1\nb 3 1 terminal_NI\n",
		"a NaN 1\n",
		"a 2 Inf\n",
		"a -1 1\n",
		"a\n",
		"NumNodes :\n",
		"# only a comment\n",
	}, func(d *Design, data string) error {
		return d.readNodes(strings.NewReader(data))
	})
}

func FuzzNets(f *testing.F) {
	fuzzSection(f, []string{
		"UCLA nets 1.0\nNumNets : 1\nNetDegree : 2 n1\n a I : 0.5 0\n b O\n",
		"NetDegree : 1\n a I : NaN 0\n",
		"a I : 1 2\n", // pin before any NetDegree
		"NetDegree :\n",
		"NetDegree : 2 n1\n : 1 2\n",
	}, func(d *Design, data string) error {
		return d.readNets(strings.NewReader(data))
	})
}

func FuzzPl(f *testing.F) {
	fuzzSection(f, []string{
		"UCLA pl 1.0\na 10 20 : N\nb 0 0 : N /FIXED\nc 1 1 : N /FIXED_NI\n",
		"a 10\n",
		"a NaN 20 : N\n",
		"unknown 1 2 : N\n",
		"a 1 2 /FIXED_NI\n",
	}, func(d *Design, data string) error {
		d.Nodes = []Node{{Name: "a"}, {Name: "b"}, {Name: "c"}}
		return d.readPl(strings.NewReader(data))
	})
}

func FuzzScl(f *testing.F) {
	fuzzSection(f, []string{
		"UCLA scl 1.0\nNumRows : 1\nCoreRow Horizontal\n  Coordinate : 0\n  Height : 1\n  Sitewidth : 1\n  SubrowOrigin : 0  NumSites : 10\nEnd\n",
		"CoreRow\nHeight :\nEnd\n",
		"CoreRow\nCoordinate : NaN\nEnd\n",
		"CoreRow\nSubrowOrigin : 0 NumSites : -5\nEnd\n",
		"End\n",
	}, func(d *Design, data string) error {
		return d.readScl(strings.NewReader(data))
	})
}

func FuzzWts(f *testing.F) {
	fuzzSection(f, []string{
		"UCLA wts 1.0\nn1 2.5\n",
		"n1 NaN\nn2 Inf\nn3 -1\nn4\n",
	}, func(d *Design, data string) error {
		d.Nets = []NetDecl{{Name: "n1", Weight: 1}, {Name: "n2", Weight: 1}}
		return d.readWts(strings.NewReader(data))
	})
}

// FuzzReadAux drives the whole multi-file entry point: the fuzzed bytes are
// written as each of the five referenced files in turn while the others stay
// well-formed, exercising the cross-file paths (aux dispatch, pl name lookup,
// wts application, ToNetlist conversion).
func FuzzReadAux(f *testing.F) {
	wellFormed := map[string]string{
		"f.nodes": "UCLA nodes 1.0\nNumNodes : 2\na 2 1\nb 3 1\n",
		"f.nets":  "UCLA nets 1.0\nNetDegree : 2 n1\n a I : 0.5 0\n b O\n",
		"f.wts":   "UCLA wts 1.0\nn1 2\n",
		"f.pl":    "UCLA pl 1.0\na 10 20 : N\nb 30 40 : N /FIXED\n",
		"f.scl":   "UCLA scl 1.0\nNumRows : 1\nCoreRow Horizontal\n  Coordinate : 0\n  Height : 1\n  Sitewidth : 1\n  SubrowOrigin : 0  NumSites : 100\nEnd\n",
	}
	names := []string{"f.nodes", "f.nets", "f.wts", "f.pl", "f.scl"}
	for _, content := range wellFormed {
		for i := range names {
			f.Add(i, content)
		}
	}
	f.Add(0, "a NaN 1\n")
	f.Add(3, "a 10\n")
	f.Add(4, "CoreRow\nHeight :\nEnd\n")
	f.Fuzz(func(t *testing.T, which int, data string) {
		dir := t.TempDir()
		aux := filepath.Join(dir, "f.aux")
		if err := os.WriteFile(aux,
			[]byte("# TargetDensity : 0.9\nRowBasedPlacement : f.nodes f.nets f.wts f.pl f.scl\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		target := names[((which%len(names))+len(names))%len(names)]
		for name, content := range wellFormed {
			if name == target {
				content = data
			}
			if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		d, err := ReadAux(aux)
		if err != nil {
			if strings.Count(err.Error(), "\n") != 0 {
				t.Fatalf("multi-line error message: %q", err.Error())
			}
			return
		}
		checkDesignFinite(t, d)
		// A design that parses must also convert (or fail cleanly).
		if nl, err := d.ToNetlist(); err == nil && nl != nil {
			if err := nl.Validate(); err != nil {
				t.Fatalf("parsed design produced invalid netlist: %v", err)
			}
		}
	})
}
