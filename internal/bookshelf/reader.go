// Package bookshelf reads and writes the UCLA/ISPD Bookshelf placement
// format used by the ISPD 2005 and 2006 contests: .aux, .nodes, .nets, .pl,
// .scl and .wts files.
//
// Conventions implemented here follow the contest definitions: node
// positions are lower-left corners, pin offsets are measured from the node
// center, nodes marked "terminal" (or "terminal_NI") are fixed, and movable
// nodes taller than the row height are classified as movable macros.
package bookshelf

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/perr"
)

// finite64 reports whether v is neither NaN nor infinite. strconv.ParseFloat
// happily parses "NaN" and "Inf", so every numeric field read from a
// Bookshelf file is checked before it can poison downstream solvers.
func finite64(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Design holds the raw contents of a Bookshelf benchmark before conversion
// to a netlist.
type Design struct {
	Name string
	// Nodes in file order.
	Nodes []Node
	Nets  []NetDecl
	Rows  []netlist.Row
	// TargetDensity is the contest utilization target (1.0 when absent).
	TargetDensity float64
}

// Node is one .nodes entry plus its .pl placement.
type Node struct {
	Name     string
	W, H     float64
	Terminal bool
	X, Y     float64
	Fixed    bool // from .pl "/FIXED" or "/FIXED_NI"
	// FixedNI marks the ISPD-2006 "/FIXED_NI" variant: fixed, but other
	// objects may overlap it (non-image obstruction). It implies Fixed.
	FixedNI bool
}

// NetDecl is one .nets entry.
type NetDecl struct {
	Name   string
	Weight float64
	Pins   []PinDecl
}

// PinDecl is one pin line of a net: node name, direction and center offsets.
type PinDecl struct {
	Node   string
	Dir    string
	DX, DY float64
}

// ReadAux reads a .aux file and all files it references, returning the raw
// design. The target density is parsed from an optional "TargetDensity : v"
// comment line in the .aux or .scl file; it defaults to 1.0.
func ReadAux(path string) (*Design, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, perr.WithFile(perr.Wrap(perr.StageIO, err), path)
	}
	dir := filepath.Dir(path)
	d := &Design{
		Name:          strings.TrimSuffix(filepath.Base(path), ".aux"),
		TargetDensity: 1.0,
	}
	var files []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parseDensityComment(line, d)
			continue
		}
		// "RowBasedPlacement : f1 f2 ..."
		if i := strings.Index(line, ":"); i >= 0 {
			line = line[i+1:]
		}
		files = append(files, strings.Fields(line)...)
	}
	if len(files) == 0 {
		return nil, perr.WithFile(perr.New(perr.StageParse, "bookshelf: aux file lists no files"), path)
	}
	for _, f := range files {
		full := filepath.Join(dir, f)
		var err error
		switch filepath.Ext(f) {
		case ".nodes":
			err = withFile(full, d.readNodes)
		case ".nets":
			err = withFile(full, d.readNets)
		case ".wts":
			err = withFile(full, d.readWts)
		case ".pl":
			err = withFile(full, d.readPl)
		case ".scl":
			err = withFile(full, d.readScl)
		default:
			continue
		}
		if err != nil {
			return nil, perr.WithFile(perr.Wrap(perr.StageParse, err), f)
		}
	}
	return d, nil
}

func parseDensityComment(line string, d *Design) {
	// e.g. "# TargetDensity : 0.8"
	l := strings.ToLower(line)
	if !strings.Contains(l, "targetdensity") {
		return
	}
	if i := strings.LastIndex(line, ":"); i >= 0 {
		if v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64); err == nil && v > 0 && v <= 1 {
			d.TargetDensity = v
		}
	}
}

func withFile(path string, fn func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return perr.Wrap(perr.StageIO, err)
	}
	defer f.Close()
	return fn(bufio.NewReader(f))
}

// lineScanner iterates over non-empty, non-comment lines, stripping
// comments and the "UCLA <type> 1.0" header.
type lineScanner struct {
	s    *bufio.Scanner
	line string
	num  int
	d    *Design
}

func newLineScanner(r io.Reader, d *Design) *lineScanner {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 1<<16), 1<<22)
	return &lineScanner{s: s, d: d}
}

// next advances to the next meaningful line, returning false at EOF.
func (ls *lineScanner) next() bool {
	for ls.s.Scan() {
		ls.num++
		line := ls.s.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			if ls.d != nil {
				parseDensityComment(line, ls.d)
			}
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "UCLA ") {
			continue
		}
		ls.line = line
		return true
	}
	return false
}

// errf builds a structured parse error carrying the current line number; the
// caller (ReadAux / ApplyPl) annotates the file name.
func (ls *lineScanner) errf(format string, args ...any) error {
	return &perr.Error{Stage: perr.StageParse, Line: ls.num, Err: fmt.Errorf(format, args...)}
}

// keyVal parses "Key : value" lines, returning ok=false otherwise.
func keyVal(line string) (key, val string, ok bool) {
	i := strings.Index(line, ":")
	if i < 0 {
		return "", "", false
	}
	return strings.TrimSpace(line[:i]), strings.TrimSpace(line[i+1:]), true
}

func (d *Design) readNodes(r io.Reader) error {
	ls := newLineScanner(r, d)
	for ls.next() {
		if k, _, ok := keyVal(ls.line); ok && (k == "NumNodes" || k == "NumTerminals") {
			continue
		}
		f := strings.Fields(ls.line)
		if len(f) < 3 {
			return ls.errf("malformed node line %q", ls.line)
		}
		w, err1 := strconv.ParseFloat(f[1], 64)
		h, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			return ls.errf("bad node size in %q", ls.line)
		}
		if !finite64(w) || !finite64(h) || w < 0 || h < 0 {
			return ls.errf("non-finite or negative node size in %q", ls.line)
		}
		n := Node{Name: f[0], W: w, H: h}
		if len(f) > 3 {
			t := strings.ToLower(f[3])
			if t == "terminal" || t == "terminal_ni" {
				n.Terminal = true
			}
		}
		d.Nodes = append(d.Nodes, n)
	}
	return ls.s.Err()
}

func (d *Design) readNets(r io.Reader) error {
	ls := newLineScanner(r, d)
	var cur *NetDecl
	netCount := 0
	for ls.next() {
		if k, v, ok := keyVal(ls.line); ok {
			switch k {
			case "NumNets", "NumPins":
				continue
			default:
				if strings.HasPrefix(k, "NetDegree") {
					// "NetDegree : 3  name" (name optional)
					fields := strings.Fields(v)
					name := fmt.Sprintf("net%d", netCount)
					if len(fields) >= 2 {
						name = fields[1]
					}
					netCount++
					d.Nets = append(d.Nets, NetDecl{Name: name, Weight: 1})
					cur = &d.Nets[len(d.Nets)-1]
					continue
				}
			}
		}
		// Pin line: "nodename I : dx dy" or "nodename O" (offsets optional).
		if cur == nil {
			return ls.errf("pin line before NetDegree: %q", ls.line)
		}
		line := ls.line
		var dx, dy float64
		if i := strings.Index(line, ":"); i >= 0 {
			offs := strings.Fields(line[i+1:])
			if len(offs) >= 2 {
				var err1, err2 error
				dx, err1 = strconv.ParseFloat(offs[0], 64)
				dy, err2 = strconv.ParseFloat(offs[1], 64)
				if err1 != nil || err2 != nil {
					return ls.errf("bad pin offsets in %q", ls.line)
				}
				if !finite64(dx) || !finite64(dy) {
					return ls.errf("non-finite pin offsets in %q", ls.line)
				}
			}
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			return ls.errf("malformed pin line %q", ls.line)
		}
		pin := PinDecl{Node: f[0], DX: dx, DY: dy}
		if len(f) > 1 {
			pin.Dir = f[1]
		}
		cur.Pins = append(cur.Pins, pin)
	}
	return ls.s.Err()
}

func (d *Design) readWts(r io.Reader) error {
	ls := newLineScanner(r, d)
	weights := make(map[string]float64)
	for ls.next() {
		f := strings.Fields(ls.line)
		if len(f) < 2 {
			continue
		}
		// !(w > 0) rather than w <= 0: the latter is false for NaN, which
		// ParseFloat happily produces from the literal "NaN".
		w, err := strconv.ParseFloat(f[1], 64)
		if err != nil || !(w > 0) || math.IsInf(w, 0) {
			continue
		}
		weights[f[0]] = w
	}
	if err := ls.s.Err(); err != nil {
		return err
	}
	for i := range d.Nets {
		if w, ok := weights[d.Nets[i].Name]; ok {
			d.Nets[i].Weight = w
		}
	}
	return nil
}

func (d *Design) readPl(r io.Reader) error {
	pos := make(map[string]int, len(d.Nodes))
	for i := range d.Nodes {
		pos[d.Nodes[i].Name] = i
	}
	ls := newLineScanner(r, d)
	for ls.next() {
		line := ls.line
		// Recognize the two fixity markers explicitly: "/FIXED_NI" (ISPD 2006
		// non-image fixed objects) must be tested before its prefix "/FIXED".
		fixed, fixedNI := false, false
		if i := strings.Index(line, "/FIXED_NI"); i >= 0 {
			fixed, fixedNI = true, true
			line = line[:i]
		} else if i := strings.Index(line, "/FIXED"); i >= 0 {
			fixed = true
			line = line[:i]
		}
		if i := strings.Index(line, ":"); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) < 3 {
			// A truncated placement line is a corrupt file, not a line to
			// skip: silently continuing here used to leave nodes at (0, 0).
			return ls.errf("truncated placement line %q (want \"name x y ...\")", ls.line)
		}
		x, err1 := strconv.ParseFloat(f[1], 64)
		y, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			return ls.errf("bad placement in %q", ls.line)
		}
		if !finite64(x) || !finite64(y) {
			return ls.errf("non-finite placement in %q", ls.line)
		}
		i, ok := pos[f[0]]
		if !ok {
			return ls.errf("placement for unknown node %q", f[0])
		}
		d.Nodes[i].X, d.Nodes[i].Y = x, y
		if fixed {
			d.Nodes[i].Fixed = true
		}
		if fixedNI {
			d.Nodes[i].FixedNI = true
		}
	}
	return ls.s.Err()
}

func (d *Design) readScl(r io.Reader) error {
	ls := newLineScanner(r, d)
	var row *netlist.Row
	var numSites float64
	for ls.next() {
		switch {
		case strings.HasPrefix(ls.line, "CoreRow"):
			d.Rows = append(d.Rows, netlist.Row{SiteWidth: 1})
			row = &d.Rows[len(d.Rows)-1]
			numSites = 0
		case ls.line == "End":
			if row != nil {
				row.XMax = row.XMin + numSites*row.SiteWidth
				row = nil
			}
		default:
			if row == nil {
				continue // NumRows header etc.
			}
			// Lines may carry two key:value pairs ("SubrowOrigin : x NumSites : n").
			parts := strings.Split(ls.line, ":")
			if len(parts) == 3 {
				k1 := strings.TrimSpace(parts[0])
				mid := strings.Fields(strings.TrimSpace(parts[1]))
				if len(mid) >= 2 && strings.EqualFold(k1, "SubrowOrigin") {
					v1, err1 := strconv.ParseFloat(mid[0], 64)
					v2, err2 := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
					if err1 != nil || err2 != nil {
						return ls.errf("bad subrow line %q", ls.line)
					}
					if !finite64(v1) || !finite64(v2) || v2 < 0 {
						return ls.errf("non-finite subrow line %q", ls.line)
					}
					row.XMin = v1
					numSites = v2
					continue
				}
			}
			k, v, ok := keyVal(ls.line)
			if !ok {
				continue
			}
			vf := strings.Fields(v)
			if len(vf) == 0 {
				continue // "Key :" with no value
			}
			val, err := strconv.ParseFloat(vf[0], 64)
			if err != nil {
				continue
			}
			switch k {
			case "Coordinate", "Height", "Sitewidth":
				if !finite64(val) {
					return ls.errf("non-finite %s in %q", k, ls.line)
				}
			}
			switch k {
			case "Coordinate":
				row.Y = val
			case "Height":
				row.Height = val
			case "Sitewidth":
				row.SiteWidth = val
			}
		}
	}
	return ls.s.Err()
}

// ToNetlist converts the raw design into a validated netlist. Movable nodes
// taller than the row height are classified as macros. The core area is the
// bounding box of all rows, or of all nodes when no rows are given.
func (d *Design) ToNetlist() (*netlist.Netlist, error) {
	b := netlist.NewBuilder(d.Name)
	rowH := 0.0
	core := geom.Rect{XMin: 1e300, YMin: 1e300, XMax: -1e300, YMax: -1e300}
	if len(d.Rows) > 0 {
		rowH = d.Rows[0].Height
		for _, r := range d.Rows {
			core = core.Union(geom.Rect{XMin: r.XMin, YMin: r.Y, XMax: r.XMax, YMax: r.Y + r.Height})
		}
	} else {
		for _, n := range d.Nodes {
			core = core.Union(geom.RectWH(n.X, n.Y, n.W, n.H))
		}
	}
	b.SetCore(core)
	ids := make(map[string]int, len(d.Nodes))
	for _, n := range d.Nodes {
		var id int
		switch {
		case n.Terminal || n.Fixed:
			id = b.AddFixed(n.Name, n.X, n.Y, n.W, n.H)
		case rowH > 0 && n.H > rowH*1.5:
			id = b.AddMacro(n.Name, n.W, n.H)
		default:
			id = b.AddCell(n.Name, n.W, n.H)
		}
		if id >= 0 {
			ids[n.Name] = id
		}
	}
	for _, nd := range d.Nets {
		pins := make([]netlist.PinSpec, 0, len(nd.Pins))
		for _, p := range nd.Pins {
			id, ok := ids[p.Node]
			if !ok {
				return nil, perr.New(perr.StageValidate,
					"bookshelf: net %q references unknown node %q", nd.Name, p.Node)
			}
			pins = append(pins, netlist.PinSpec{Cell: id, DX: p.DX, DY: p.DY})
		}
		if len(pins) == 0 {
			continue
		}
		b.AddNet(nd.Name, nd.Weight, pins)
	}
	for _, r := range d.Rows {
		b.AddRow(r)
	}
	nl, err := b.Build()
	if err != nil {
		return nil, err
	}
	// Apply initial placement to movable nodes too (the .pl may carry one).
	for _, n := range d.Nodes {
		id := ids[n.Name]
		if nl.Cells[id].Movable() {
			nl.Cells[id].X, nl.Cells[id].Y = n.X, n.Y
		}
	}
	return nl, nil
}

// ReadNetlist reads a .aux benchmark and converts it to a netlist.
func ReadNetlist(path string) (*netlist.Netlist, float64, error) {
	d, err := ReadAux(path)
	if err != nil {
		return nil, 0, err
	}
	nl, err := d.ToNetlist()
	if err != nil {
		return nil, 0, err
	}
	return nl, d.TargetDensity, nil
}

// ApplyPl overlays the placement in a .pl file onto an existing netlist:
// every named node's position is updated (fixed cells included, matching
// the Bookshelf convention that the .pl is authoritative).
func ApplyPl(path string, nl *netlist.Netlist) error {
	idx := make(map[string]int, len(nl.Cells))
	for i := range nl.Cells {
		idx[nl.Cells[i].Name] = i
	}
	err := withFile(path, func(r io.Reader) error {
		ls := newLineScanner(r, nil)
		for ls.next() {
			line := ls.line
			// "/FIXED_NI" shares the "/FIXED" prefix; stripping either marker
			// is enough here since ApplyPl only overlays positions.
			if i := strings.Index(line, "/FIXED"); i >= 0 {
				line = line[:i]
			}
			if i := strings.Index(line, ":"); i >= 0 {
				line = line[:i]
			}
			f := strings.Fields(line)
			if len(f) < 3 {
				return ls.errf("truncated placement line %q (want \"name x y ...\")", ls.line)
			}
			x, err1 := strconv.ParseFloat(f[1], 64)
			y, err2 := strconv.ParseFloat(f[2], 64)
			if err1 != nil || err2 != nil {
				return ls.errf("bad placement in %q", ls.line)
			}
			if !finite64(x) || !finite64(y) {
				return ls.errf("non-finite placement in %q", ls.line)
			}
			i, ok := idx[f[0]]
			if !ok {
				return ls.errf("placement for unknown node %q", f[0])
			}
			nl.Cells[i].X, nl.Cells[i].Y = x, y
		}
		return ls.s.Err()
	})
	return perr.WithFile(err, path)
}
