package bookshelf

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"complx/internal/perr"
)

// writeVariantFixture writes the tiny fixture with one file's content
// replaced, returning the .aux path.
func writeVariantFixture(t *testing.T, name, content string) string {
	t.Helper()
	dir := t.TempDir()
	aux := writeFixture(t, dir)
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return aux
}

func TestPlTruncatedLineIsError(t *testing.T) {
	aux := writeVariantFixture(t, "tiny.pl", "UCLA pl 1.0\na 10 20 : N\nb 30\n")
	_, err := ReadAux(aux)
	if err == nil {
		t.Fatal("truncated .pl line was silently accepted")
	}
	var pe *perr.Error
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *perr.Error: %v", err, err)
	}
	if pe.Stage != perr.StageParse {
		t.Errorf("stage = %q, want %q", pe.Stage, perr.StageParse)
	}
	if pe.File != "tiny.pl" {
		t.Errorf("file = %q, want tiny.pl", pe.File)
	}
	if pe.Line != 3 {
		t.Errorf("line = %d, want 3", pe.Line)
	}
	if strings.Count(err.Error(), "\n") != 0 {
		t.Errorf("error message is not one line: %q", err.Error())
	}
}

func TestPlFixedNIRecognized(t *testing.T) {
	aux := writeVariantFixture(t, "tiny.pl",
		"UCLA pl 1.0\na 10 20 : N\nb 30 40 : N\nmac 5 5 : N /FIXED_NI\npad 0 50 : N /FIXED\n")
	d, err := ReadAux(aux)
	if err != nil {
		t.Fatal(err)
	}
	mac := d.Nodes[2]
	if !mac.Fixed || !mac.FixedNI {
		t.Errorf("mac fixity = Fixed=%v FixedNI=%v, want both true", mac.Fixed, mac.FixedNI)
	}
	pad := d.Nodes[3]
	if !pad.Fixed || pad.FixedNI {
		t.Errorf("pad fixity = Fixed=%v FixedNI=%v, want Fixed only", pad.Fixed, pad.FixedNI)
	}
}

func TestPlNonFinitePositionRejected(t *testing.T) {
	for _, bad := range []string{"NaN", "Inf", "-Inf"} {
		aux := writeVariantFixture(t, "tiny.pl",
			"UCLA pl 1.0\na 10 "+bad+" : N\nb 30 40 : N\nmac 5 5 : N\npad 0 50 : N /FIXED\n")
		if _, err := ReadAux(aux); err == nil {
			t.Errorf("%s position accepted", bad)
		}
	}
}

func TestNodesNonFiniteSizeRejected(t *testing.T) {
	for _, bad := range []string{"a NaN 1\n", "a 2 Inf\n", "a -3 1\n"} {
		aux := writeVariantFixture(t, "tiny.nodes", "UCLA nodes 1.0\n"+bad)
		if _, err := ReadAux(aux); err == nil {
			t.Errorf("node line %q accepted", bad)
		}
	}
}

func TestNetsNonFiniteOffsetRejected(t *testing.T) {
	aux := writeVariantFixture(t, "tiny.nets",
		"UCLA nets 1.0\nNetDegree : 2 n1\n a I : NaN 0\n b O\n")
	if _, err := ReadAux(aux); err == nil {
		t.Error("NaN pin offset accepted")
	}
}

func TestWtsNaNWeightIgnored(t *testing.T) {
	aux := writeVariantFixture(t, "tiny.wts", "UCLA wts 1.0\nn1 NaN\nnet1 Inf\n")
	d, err := ReadAux(aux)
	if err != nil {
		t.Fatal(err)
	}
	if d.Nets[0].Weight != 1 || d.Nets[1].Weight != 1 {
		t.Errorf("non-finite weights applied: %v %v", d.Nets[0].Weight, d.Nets[1].Weight)
	}
}

func TestSclNonFiniteRejected(t *testing.T) {
	aux := writeVariantFixture(t, "tiny.scl",
		"UCLA scl 1.0\nNumRows : 1\nCoreRow Horizontal\n  Coordinate : NaN\n  Height : 1\n  Sitewidth : 1\n  SubrowOrigin : 0  NumSites : 100\nEnd\n")
	if _, err := ReadAux(aux); err == nil {
		t.Error("NaN row coordinate accepted")
	}
}

func TestApplyPlTruncatedLineIsError(t *testing.T) {
	dir := t.TempDir()
	aux := writeFixture(t, dir)
	d, err := ReadAux(aux)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := d.ToNetlist()
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.pl")
	if err := os.WriteFile(bad, []byte("UCLA pl 1.0\na 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = ApplyPl(bad, nl)
	if err == nil {
		t.Fatal("truncated ApplyPl line accepted")
	}
	var pe *perr.Error
	if !errors.As(err, &pe) || pe.File == "" || pe.Line != 2 {
		t.Errorf("unstructured ApplyPl error: %v", err)
	}
}

func TestReadAuxMissingFileIsIOStage(t *testing.T) {
	_, err := ReadAux(filepath.Join(t.TempDir(), "nope.aux"))
	if err == nil {
		t.Fatal("missing aux accepted")
	}
	var pe *perr.Error
	if !errors.As(err, &pe) || pe.Stage != perr.StageIO {
		t.Errorf("missing-file error not io stage: %v", err)
	}
}
