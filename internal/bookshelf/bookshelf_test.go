package bookshelf

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"complx/internal/gen"
	"complx/internal/geom"
	"complx/internal/netlist"
)

// writeFixture writes a small hand-authored benchmark into dir and returns
// the .aux path.
func writeFixture(t *testing.T, dir string) string {
	t.Helper()
	files := map[string]string{
		"tiny.aux": "# TargetDensity : 0.8\nRowBasedPlacement : tiny.nodes tiny.nets tiny.wts tiny.pl tiny.scl\n",
		"tiny.nodes": `UCLA nodes 1.0
# comment line
NumNodes : 4
NumTerminals : 1
   a  2  1
   b  3  1
   mac 8 4
   pad 1 1 terminal
`,
		"tiny.nets": `UCLA nets 1.0
NumNets : 2
NumPins : 5
NetDegree : 3  n1
   a I : 0.5 0.0
   b O : -1.0 0.25
   pad I
NetDegree : 2
   b I
   mac O : 2 -1
`,
		"tiny.wts": `UCLA wts 1.0
n1 2.5
net1 1.0
`,
		"tiny.pl": `UCLA pl 1.0
a 10 20 : N
b 30 40 : N
mac 5 5 : N
pad 0 50 : N /FIXED
`,
		"tiny.scl": `UCLA scl 1.0
NumRows : 2
CoreRow Horizontal
  Coordinate : 0
  Height : 1
  Sitewidth : 1
  Sitespacing : 1
  Siteorient : 1
  Sitesymmetry : 1
  SubrowOrigin : 0  NumSites : 100
End
CoreRow Horizontal
  Coordinate : 1
  Height : 1
  Sitewidth : 1
  Sitespacing : 1
  Siteorient : 1
  Sitesymmetry : 1
  SubrowOrigin : 0  NumSites : 100
End
`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return filepath.Join(dir, "tiny.aux")
}

func TestReadAux(t *testing.T) {
	dir := t.TempDir()
	d, err := ReadAux(writeFixture(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "tiny" {
		t.Errorf("Name = %q", d.Name)
	}
	if d.TargetDensity != 0.8 {
		t.Errorf("TargetDensity = %v", d.TargetDensity)
	}
	if len(d.Nodes) != 4 || len(d.Nets) != 2 || len(d.Rows) != 2 {
		t.Fatalf("counts: %d nodes, %d nets, %d rows", len(d.Nodes), len(d.Nets), len(d.Rows))
	}
	if !d.Nodes[3].Terminal || d.Nodes[3].Name != "pad" {
		t.Errorf("terminal node wrong: %+v", d.Nodes[3])
	}
	if !d.Nodes[3].Fixed {
		t.Error("pad should be /FIXED")
	}
	if d.Nodes[0].X != 10 || d.Nodes[0].Y != 20 {
		t.Errorf("placement of a = (%v, %v)", d.Nodes[0].X, d.Nodes[0].Y)
	}
	if d.Nets[0].Weight != 2.5 {
		t.Errorf("n1 weight = %v", d.Nets[0].Weight)
	}
	if d.Nets[1].Name != "net1" || d.Nets[1].Weight != 1 {
		t.Errorf("unnamed net: %+v", d.Nets[1])
	}
	if len(d.Nets[0].Pins) != 3 {
		t.Fatalf("n1 pins = %d", len(d.Nets[0].Pins))
	}
	p := d.Nets[0].Pins[1]
	if p.Node != "b" || p.DX != -1 || p.DY != 0.25 || p.Dir != "O" {
		t.Errorf("pin = %+v", p)
	}
	if d.Rows[1].Y != 1 || d.Rows[1].XMax != 100 {
		t.Errorf("row 1 = %+v", d.Rows[1])
	}
}

func TestToNetlist(t *testing.T) {
	dir := t.TempDir()
	d, err := ReadAux(writeFixture(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	nl, err := d.ToNetlist()
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	// mac (8x4, rows are height 1) must be classified as a macro.
	mi := nl.CellByName("mac")
	if nl.Cells[mi].Kind != netlist.Macro {
		t.Errorf("mac kind = %v", nl.Cells[mi].Kind)
	}
	if nl.Cells[nl.CellByName("a")].Kind != netlist.Std {
		t.Error("a should be std")
	}
	pi := nl.CellByName("pad")
	if !nl.Cells[pi].Fixed() {
		t.Error("pad should be fixed")
	}
	// Core is the union of rows: [0,100]x[0,2].
	want := geom.Rect{XMin: 0, YMin: 0, XMax: 100, YMax: 2}
	if nl.Core != want {
		t.Errorf("core = %v, want %v", nl.Core, want)
	}
	// Movable placement carried over from .pl.
	if nl.Cells[0].X != 10 || nl.Cells[0].Y != 20 {
		t.Errorf("a at (%v, %v)", nl.Cells[0].X, nl.Cells[0].Y)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	nl1, density, err := ReadNetlist(writeFixture(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if density != 0.8 {
		t.Errorf("density = %v", density)
	}
	out := filepath.Join(dir, "out")
	if err := WriteNetlist(out, nl1, density); err != nil {
		t.Fatal(err)
	}
	nl2, density2, err := ReadNetlist(filepath.Join(out, "tiny.aux"))
	if err != nil {
		t.Fatal(err)
	}
	if density2 != 0.8 {
		t.Errorf("round-trip density = %v", density2)
	}
	if nl2.NumCells() != nl1.NumCells() || nl2.NumNets() != nl1.NumNets() || nl2.NumPins() != nl1.NumPins() {
		t.Fatalf("counts changed: %v vs %v", nl2.Stats(), nl1.Stats())
	}
	for i := range nl1.Cells {
		c1, c2 := &nl1.Cells[i], &nl2.Cells[i]
		if c1.Name != c2.Name || c1.W != c2.W || c1.H != c2.H || c1.Kind != c2.Kind {
			t.Errorf("cell %d: %+v vs %+v", i, c1, c2)
		}
		if math.Abs(c1.X-c2.X) > 1e-9 || math.Abs(c1.Y-c2.Y) > 1e-9 {
			t.Errorf("cell %d moved: (%v,%v) vs (%v,%v)", i, c1.X, c1.Y, c2.X, c2.Y)
		}
	}
	for i := range nl1.Nets {
		if nl1.Nets[i].Weight != nl2.Nets[i].Weight || len(nl1.Nets[i].Pins) != len(nl2.Nets[i].Pins) {
			t.Errorf("net %d changed", i)
		}
	}
	for i := range nl1.Pins {
		if nl1.Pins[i].DX != nl2.Pins[i].DX || nl1.Pins[i].DY != nl2.Pins[i].DY {
			t.Errorf("pin %d offsets changed", i)
		}
	}
	if len(nl2.Rows) != len(nl1.Rows) {
		t.Errorf("rows = %d vs %d", len(nl2.Rows), len(nl1.Rows))
	}
}

func TestReadAuxMissingFile(t *testing.T) {
	dir := t.TempDir()
	aux := filepath.Join(dir, "x.aux")
	os.WriteFile(aux, []byte("RowBasedPlacement : x.nodes\n"), 0o644)
	if _, err := ReadAux(aux); err == nil {
		t.Error("expected error for missing .nodes")
	}
}

func TestReadAuxEmpty(t *testing.T) {
	dir := t.TempDir()
	aux := filepath.Join(dir, "x.aux")
	os.WriteFile(aux, []byte("# nothing\n"), 0o644)
	if _, err := ReadAux(aux); err == nil || !strings.Contains(err.Error(), "no files") {
		t.Errorf("err = %v", err)
	}
}

func TestNetWithUnknownNode(t *testing.T) {
	d := &Design{
		Name:  "bad",
		Nodes: []Node{{Name: "a", W: 1, H: 1}},
		Nets:  []NetDecl{{Name: "n", Weight: 1, Pins: []PinDecl{{Node: "ghost"}}}},
	}
	if _, err := d.ToNetlist(); err == nil || !strings.Contains(err.Error(), "unknown node") {
		t.Errorf("err = %v", err)
	}
}

func TestMalformedNodeLine(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"b.aux":   "RowBasedPlacement : b.nodes\n",
		"b.nodes": "UCLA nodes 1.0\nbadline\n",
	}
	for n, c := range files {
		os.WriteFile(filepath.Join(dir, n), []byte(c), 0o644)
	}
	if _, err := ReadAux(filepath.Join(dir, "b.aux")); err == nil {
		t.Error("expected parse error")
	}
}

// TestRandomDesignRoundTripProperty: generated designs survive a full
// write/read cycle bit-exactly in all structural fields.
func TestRandomDesignRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		spec := gen.Spec{
			Name:      "rt",
			NumCells:  150,
			Seed:      seed,
			NumMacros: int(seed % 4), MacroAreaFrac: 0.2,
			MovableMacros: seed%2 == 0,
		}
		nl, err := gen.Generate(spec)
		if err != nil {
			return false
		}
		dir := t.TempDir()
		if err := WriteNetlist(dir, nl, 0.85); err != nil {
			return false
		}
		nl2, density, err := ReadNetlist(filepath.Join(dir, "rt.aux"))
		if err != nil || density != 0.85 {
			return false
		}
		if nl2.NumCells() != nl.NumCells() || nl2.NumNets() != nl.NumNets() || nl2.NumPins() != nl.NumPins() {
			return false
		}
		for i := range nl.Cells {
			a, b := &nl.Cells[i], &nl2.Cells[i]
			if a.Name != b.Name || a.W != b.W || a.H != b.H || a.Kind != b.Kind ||
				math.Abs(a.X-b.X) > 1e-9 || math.Abs(a.Y-b.Y) > 1e-9 {
				return false
			}
		}
		for i := range nl.Pins {
			if nl.Pins[i] != nl2.Pins[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestApplyPl(t *testing.T) {
	dir := t.TempDir()
	nl, _, err := ReadNetlist(writeFixture(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	plPath := filepath.Join(dir, "override.pl")
	os.WriteFile(plPath, []byte("UCLA pl 1.0\na 77 88 : N\n"), 0o644)
	if err := ApplyPl(plPath, nl); err != nil {
		t.Fatal(err)
	}
	a := nl.Cells[nl.CellByName("a")]
	if a.X != 77 || a.Y != 88 {
		t.Errorf("a at (%v, %v)", a.X, a.Y)
	}
	// Unknown node errors out.
	os.WriteFile(plPath, []byte("UCLA pl 1.0\nghost 1 2 : N\n"), 0o644)
	if err := ApplyPl(plPath, nl); err == nil {
		t.Error("expected error for unknown node")
	}
}
