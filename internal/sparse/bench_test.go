// Kernel micro-benchmarks for the primal hot path: sparse matrix-vector
// products, dot products, full system assembly and HPWL evaluation, each at
// 10k and 100k variables on a representative synthetic netlist. Run with
//
//	go test ./internal/sparse -bench BenchmarkKernels -benchmem
//
// and vary the worker pool with par.SetThreads (or GOMAXPROCS) to measure
// parallel scaling; results are bitwise identical at any thread count.
package sparse_test

import (
	"fmt"
	"testing"

	"complx/internal/gen"
	"complx/internal/netlist"
	"complx/internal/netmodel"
	"complx/internal/sparse"
)

// benchSizes are the variable counts exercised by every kernel benchmark.
var benchSizes = []int{10_000, 100_000}

// benchNetlists caches one synthetic design per size so repeated benchmarks
// don't regenerate it.
var benchNetlists = map[int]*netlist.Netlist{}

func benchNetlist(b *testing.B, n int) *netlist.Netlist {
	if nl, ok := benchNetlists[n]; ok {
		return nl
	}
	nl, err := gen.Generate(gen.Spec{
		Name:     fmt.Sprintf("bench%d", n),
		NumCells: n,
		Seed:     7,
	})
	if err != nil {
		b.Fatalf("generate: %v", err)
	}
	benchNetlists[n] = nl
	return nl
}

// benchSystem assembles the x-dimension B2B system of the benchmark design.
func benchSystem(b *testing.B, n int) netmodel.System {
	nl := benchNetlist(b, n)
	sx, _ := netmodel.NewAssembler(nl, netmodel.B2B, 0).Assemble()
	return sx
}

func BenchmarkKernelsMulVec(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sys := benchSystem(b, n)
			x := make([]float64, len(sys.B))
			dst := make([]float64, len(sys.B))
			for i := range x {
				x[i] = float64(i%17) - 8
			}
			b.SetBytes(int64(sys.A.NNZ()) * 12) // 8B val + 4B col per nnz
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.A.MulVec(dst, x)
			}
		})
	}
}

func BenchmarkKernelsDot(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := make([]float64, n)
			y := make([]float64, n)
			for i := range x {
				x[i] = float64(i%13) * 0.25
				y[i] = float64(i%7) - 3
			}
			b.SetBytes(int64(n) * 16)
			b.ReportAllocs()
			b.ResetTimer()
			var s float64
			for i := 0; i < b.N; i++ {
				s += sparse.Dot(x, y)
			}
			_ = s
		})
	}
}

func BenchmarkKernelsAssembly(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			nl := benchNetlist(b, n)
			asm := netmodel.NewAssembler(nl, netmodel.B2B, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				asm.Assemble()
			}
		})
	}
}

func BenchmarkKernelsHPWL(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			nl := benchNetlist(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			var s float64
			for i := 0; i < b.N; i++ {
				s += netmodel.HPWL(nl)
			}
			_ = s
		})
	}
}

func BenchmarkKernelsCG(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sys := benchSystem(b, n)
			x := make([]float64, len(sys.B))
			var ws sparse.CGWorkspace
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range x {
					x[j] = 0
				}
				if _, err := sparse.SolvePCGWS(sys.A, x, sys.B, sparse.CGOptions{MaxIter: 30}, &ws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
