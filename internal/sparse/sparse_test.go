package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2)
	b.Add(1, 2, -1)
	b.Add(2, 1, -1)
	b.Add(0, 2, 0) // zero entries are dropped
	m := b.Build()
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if m.At(0, 0) != 3 {
		t.Errorf("At(0,0) = %v", m.At(0, 0))
	}
	if m.At(1, 2) != -1 || m.At(2, 1) != -1 {
		t.Error("off-diagonals wrong")
	}
	if m.At(0, 1) != 0 {
		t.Error("missing entry should be 0")
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBuilder(2).Add(2, 0, 1)
}

func TestAddSym(t *testing.T) {
	b := NewBuilder(2)
	b.AddSym(0, 1, 5)
	m := b.Build()
	if m.At(0, 0) != 5 || m.At(1, 1) != 5 || m.At(0, 1) != -5 || m.At(1, 0) != -5 {
		t.Errorf("AddSym stamp wrong: %+v", m)
	}
}

func TestMulVec(t *testing.T) {
	// [2 -1 0; -1 2 -1; 0 -1 2] * [1 2 3] = [0, 0, 4]
	b := NewBuilder(3)
	b.AddSym(0, 1, 1)
	b.AddSym(1, 2, 1)
	b.AddDiag(0, 1)
	b.AddDiag(2, 1)
	m := b.Build()
	dst := make([]float64, 3)
	m.MulVec(dst, []float64{1, 2, 3})
	want := []float64{0, 0, 4}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("MulVec[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestDiag(t *testing.T) {
	b := NewBuilder(3)
	b.AddDiag(0, 2)
	b.AddDiag(2, 7)
	m := b.Build()
	d := make([]float64, 3)
	m.Diag(d)
	if d[0] != 2 || d[1] != 0 || d[2] != 7 {
		t.Errorf("Diag = %v", d)
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	bb := []float64{4, 5, 6}
	if Dot(a, bb) != 32 {
		t.Errorf("Dot = %v", Dot(a, bb))
	}
	Axpy(a, 2, bb)
	if a[0] != 9 || a[1] != 12 || a[2] != 15 {
		t.Errorf("Axpy = %v", a)
	}
	if Norm2Sq(bb) != 77 {
		t.Errorf("Norm2Sq = %v", Norm2Sq(bb))
	}
}

// laplacianPlusDiag builds the standard SPD test matrix: a path-graph
// Laplacian with added diagonal mass.
func laplacianPlusDiag(n int, mass float64) *CSR {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddSym(i, i+1, 1)
	}
	for i := 0; i < n; i++ {
		b.AddDiag(i, mass)
	}
	return b.Build()
}

func TestSolvePCGTridiagonal(t *testing.T) {
	n := 50
	a := laplacianPlusDiag(n, 0.1)
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(float64(i))
	}
	bvec := make([]float64, n)
	a.MulVec(bvec, want)
	x := make([]float64, n)
	res, err := SolvePCG(a, x, bvec, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolvePCGZeroRHS(t *testing.T) {
	a := laplacianPlusDiag(5, 1)
	x := []float64{1, 2, 3, 4, 5}
	res, err := SolvePCG(a, x, make([]float64, 5), CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("zero-rhs solve should converge")
	}
	for i, v := range x {
		if v != 0 {
			t.Errorf("x[%d] = %v, want 0", i, v)
		}
	}
}

func TestSolvePCGNotSPD(t *testing.T) {
	// Pure negative-definite matrix triggers ErrNotSPD.
	b := NewBuilder(2)
	b.AddDiag(0, -1)
	b.AddDiag(1, -1)
	a := b.Build()
	x := make([]float64, 2)
	_, err := SolvePCG(a, x, []float64{1, 1}, CGOptions{})
	if err != ErrNotSPD {
		t.Errorf("err = %v, want ErrNotSPD", err)
	}
}

func TestSolvePCGWarmStart(t *testing.T) {
	n := 30
	a := laplacianPlusDiag(n, 0.5)
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i % 7)
	}
	bvec := make([]float64, n)
	a.MulVec(bvec, want)
	// Warm start at the exact solution: zero iterations needed.
	x := append([]float64(nil), want...)
	res, err := SolvePCG(a, x, bvec, CGOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 || !res.Converged {
		t.Errorf("warm start took %d iterations", res.Iterations)
	}
}

// TestSolvePCGRandomSPD is a property test: random diagonally-dominant
// symmetric matrices are SPD and PCG must recover a known solution.
func TestSolvePCGRandomSPD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		b := NewBuilder(n)
		rowAbs := make([]float64, n)
		for e := 0; e < 3*n; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			w := rng.Float64() + 0.01
			b.AddSym(i, j, w)
			rowAbs[i] += w
			rowAbs[j] += w
		}
		for i := 0; i < n; i++ {
			b.AddDiag(i, 0.1+rng.Float64())
		}
		a := b.Build()
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		bvec := make([]float64, n)
		a.MulVec(bvec, want)
		x := make([]float64, n)
		res, err := SolvePCG(a, x, bvec, CGOptions{Tol: 1e-10, MaxIter: 10 * n})
		if err != nil || !res.Converged {
			return false
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-5*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolvePCG(b *testing.B) {
	n := 10000
	a := laplacianPlusDiag(n, 0.05)
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(float64(i) / 100)
	}
	bvec := make([]float64, n)
	a.MulVec(bvec, want)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, n)
		if _, err := SolvePCG(a, x, bvec, CGOptions{Tol: 1e-6}); err != nil {
			b.Fatal(err)
		}
	}
}
