package sparse

import (
	"context"
	"errors"
	"fmt"
	"math"

	"complx/internal/faultinject"
	"complx/internal/par"
)

// CGOptions controls the Conjugate Gradient solver.
type CGOptions struct {
	// Tol is the relative residual tolerance ‖r‖/‖b‖ at which the solve
	// stops. Defaults to 1e-6 when zero.
	Tol float64
	// MaxIter bounds the iteration count. Defaults to 4*N when zero.
	MaxIter int
	// Progress, when non-nil, is invoked once per CG iteration with the
	// iteration number and the current relative residual ‖r‖/‖b‖. It is
	// observational only: the solver ignores anything it does, and the
	// callback must be safe for concurrent use when the same options are
	// shared between concurrent solves (the placement engine solves x and y
	// concurrently).
	Progress func(iter int, relResidual float64)
	// Precond selects the preconditioner. It must already be Setup for the
	// matrix being solved; the solver only calls Apply. Nil selects the
	// built-in per-solve Jacobi (the historical default, bitwise identical
	// to the pre-interface solver). Unlike Progress, a Preconditioner holds
	// per-solve state: concurrent solves must not share one instance.
	Precond Preconditioner
}

// CGResult reports how a solve went.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual ‖r‖/‖b‖
	Converged  bool
}

// ErrNotSPD is returned when CG detects the matrix is not positive definite
// (a non-positive curvature direction).
var ErrNotSPD = errors.New("sparse: matrix is not positive definite")

// ErrNotFinite is returned when CG encounters a NaN or Inf in the
// right-hand side, the matrix, or an intermediate scalar. Without this
// check a single non-finite entry makes every convergence comparison
// false (NaN compares false with everything), so the solve would silently
// burn MaxIter iterations and return garbage.
var ErrNotFinite = errors.New("sparse: non-finite value (NaN or Inf) in linear system")

// CGWorkspace holds the work vectors of a PCG solve plus the built-in
// Jacobi preconditioner used when CGOptions.Precond is nil. Reusing a
// workspace across the repeated per-iteration solves of the placement outer
// loop eliminates the O(N) allocations per call that SolvePCG otherwise
// pays.
type CGWorkspace struct {
	r, z, p, ap []float64
	jac         Jacobi
}

// ensure sizes the workspace for an n-variable solve, reusing capacity.
func (w *CGWorkspace) ensure(n int) {
	w.r = growF64(w.r, n)
	w.z = growF64(w.z, n)
	w.p = growF64(w.p, n)
	w.ap = growF64(w.ap, n)
}

// SolvePCG solves A x = b for symmetric positive-definite A using
// Jacobi-preconditioned Conjugate Gradient. x holds the initial guess on
// entry and the solution on return. It allocates a fresh workspace; hot
// callers should hold a CGWorkspace and use SolvePCGWS.
func SolvePCG(a *CSR, x, b []float64, opt CGOptions) (CGResult, error) {
	var w CGWorkspace
	return SolvePCGWS(a, x, b, opt, &w)
}

// SolvePCGWS is SolvePCG with a caller-owned workspace. The workspace is
// resized as needed and may be reused across solves of any size. When the
// initial guess is identically zero the initial residual is taken directly
// from b, skipping one matrix-vector product (warm-start fast path for
// cold solves).
func SolvePCGWS(a *CSR, x, b []float64, opt CGOptions, w *CGWorkspace) (CGResult, error) {
	return SolvePCGCtx(context.Background(), a, x, b, opt, w)
}

// SolvePCGCtx is SolvePCGWS with cooperative cancellation: ctx is polled
// once per CG iteration (each iteration is at least one O(nnz) product, so
// the check never dominates), and a done context stops the solve with
// ctx.Err() wrapped by the iterate reached so far. x holds the best iterate
// at the moment of cancellation, so callers can roll forward from it.
func SolvePCGCtx(ctx context.Context, a *CSR, x, b []float64, opt CGOptions, w *CGWorkspace) (CGResult, error) {
	n := a.N
	if len(x) != n || len(b) != n {
		return CGResult{}, fmt.Errorf("sparse: SolvePCG dimension mismatch: len(x)=%d len(b)=%d n=%d",
			len(x), len(b), n)
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-6
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 4 * n
		if opt.MaxIter < 100 {
			opt.MaxIter = 100
		}
	}
	w.ensure(n)
	r, z, p, ap := w.r, w.z, w.p, w.ap

	// Preconditioner: the caller's (already Setup for a), or the built-in
	// Jacobi M = diag(A) rebuilt per solve — arithmetic-identical to the
	// historical inline path, including the zero-diagonal guard that lets
	// isolated variables pass through unpreconditioned.
	precond := opt.Precond
	if precond == nil {
		w.jac.Setup(a) // never fails
		precond = &w.jac
	}

	// Initial residual r = b - A x; the A x product is skipped when the
	// guess is zero (r = b exactly).
	if isZero(x) {
		copy(r, b)
	} else {
		a.MulVec(ap, x)
		par.For(n, axpyGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				r[i] = b[i] - ap[i]
			}
		})
	}
	bNorm := math.Sqrt(Norm2Sq(b))
	if !isFinite(bNorm) {
		return CGResult{}, ErrNotFinite
	}
	if bNorm == 0 {
		// Solution of A x = 0 is x = 0 for SPD A.
		for i := range x {
			x[i] = 0
		}
		return CGResult{Converged: true}, nil
	}

	precond.Apply(z, r)
	copy(p, z)
	rz := Dot(r, z)

	res := CGResult{}
	for k := 0; k < opt.MaxIter; k++ {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("sparse: CG cancelled after %d iterations: %w", res.Iterations, err)
		}
		rNorm := math.Sqrt(Norm2Sq(r))
		if fi := faultinject.Active(); fi != nil && fi.Fire(faultinject.CGResidual, "") != nil {
			// Test-only fault injection: poison the recurrence exactly as a
			// real numeric breakdown would, so the NaN propagates through the
			// solution update and trips the usual ErrNotFinite guards.
			rz = math.NaN()
		}
		res.Residual = rNorm / bNorm
		if opt.Progress != nil {
			opt.Progress(k, res.Residual)
		}
		if res.Residual <= opt.Tol {
			res.Converged = true
			return res, nil
		}
		a.MulVec(ap, p)
		pap := Dot(p, ap)
		// Order matters: NaN compares false with everything, so a plain
		// "pap <= 0" guard lets a NaN system iterate to MaxIter. Detect
		// non-finite curvature (NaN/Inf in A, b or the initial guess)
		// explicitly before the SPD check.
		if !isFinite(pap) {
			return res, ErrNotFinite
		}
		if pap <= 0 {
			return res, ErrNotSPD
		}
		alpha := rz / pap
		Axpy(x, alpha, p)
		Axpy(r, -alpha, ap)
		precond.Apply(z, r)
		rzNew := Dot(r, z)
		if !isFinite(rzNew) {
			return res, ErrNotFinite
		}
		beta := rzNew / rz
		rz = rzNew
		par.For(n, axpyGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				p[i] = z[i] + beta*p[i]
			}
		})
		res.Iterations = k + 1
	}
	res.Residual = math.Sqrt(Norm2Sq(r)) / bNorm
	res.Converged = res.Residual <= opt.Tol
	return res, nil
}

// isFinite reports whether v is neither NaN nor infinite.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// isZero reports whether every element of v is exactly zero.
func isZero(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}
