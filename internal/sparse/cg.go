package sparse

import (
	"errors"
	"math"
)

// CGOptions controls the Conjugate Gradient solver.
type CGOptions struct {
	// Tol is the relative residual tolerance ‖r‖/‖b‖ at which the solve
	// stops. Defaults to 1e-6 when zero.
	Tol float64
	// MaxIter bounds the iteration count. Defaults to 4*N when zero.
	MaxIter int
}

// CGResult reports how a solve went.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual ‖r‖/‖b‖
	Converged  bool
}

// ErrNotSPD is returned when CG detects the matrix is not positive definite
// (a non-positive curvature direction).
var ErrNotSPD = errors.New("sparse: matrix is not positive definite")

// SolvePCG solves A x = b for symmetric positive-definite A using
// Jacobi-preconditioned Conjugate Gradient. x holds the initial guess on
// entry and the solution on return.
func SolvePCG(a *CSR, x, b []float64, opt CGOptions) (CGResult, error) {
	n := a.N
	if len(x) != n || len(b) != n {
		panic("sparse: SolvePCG dimension mismatch")
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-6
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 4 * n
		if opt.MaxIter < 100 {
			opt.MaxIter = 100
		}
	}

	// Jacobi preconditioner: M = diag(A). Guard zero diagonals (isolated
	// variables) with 1 so they pass through unpreconditioned.
	invD := make([]float64, n)
	a.Diag(invD)
	for i, d := range invD {
		if d > 0 {
			invD[i] = 1 / d
		} else {
			invD[i] = 1
		}
	}

	r := make([]float64, n)  // residual b - A x
	z := make([]float64, n)  // preconditioned residual
	p := make([]float64, n)  // search direction
	ap := make([]float64, n) // A p

	a.MulVec(ap, x)
	for i := 0; i < n; i++ {
		r[i] = b[i] - ap[i]
	}
	bNorm := math.Sqrt(Norm2Sq(b))
	if bNorm == 0 {
		// Solution of A x = 0 is x = 0 for SPD A.
		for i := range x {
			x[i] = 0
		}
		return CGResult{Converged: true}, nil
	}

	for i := 0; i < n; i++ {
		z[i] = invD[i] * r[i]
	}
	copy(p, z)
	rz := Dot(r, z)

	res := CGResult{}
	for k := 0; k < opt.MaxIter; k++ {
		rNorm := math.Sqrt(Norm2Sq(r))
		res.Residual = rNorm / bNorm
		if res.Residual <= opt.Tol {
			res.Converged = true
			return res, nil
		}
		a.MulVec(ap, p)
		pap := Dot(p, ap)
		if pap <= 0 {
			return res, ErrNotSPD
		}
		alpha := rz / pap
		Axpy(x, alpha, p)
		Axpy(r, -alpha, ap)
		for i := 0; i < n; i++ {
			z[i] = invD[i] * r[i]
		}
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < n; i++ {
			p[i] = z[i] + beta*p[i]
		}
		res.Iterations = k + 1
	}
	res.Residual = math.Sqrt(Norm2Sq(r)) / bNorm
	res.Converged = res.Residual <= opt.Tol
	return res, nil
}
