package sparse

import (
	"errors"
	"math"
	"testing"
)

// spd2 returns a small SPD matrix for the non-finite propagation tests.
func spd2() *CSR {
	b := NewBuilder(2)
	b.AddDiag(0, 4)
	b.AddDiag(1, 4)
	b.AddSym(0, 1, 1)
	return b.Build()
}

// TestCGNaNInRHS: a NaN in b makes bNorm NaN; the old code compared
// residual <= tol (false for NaN) and silently burned MaxIter iterations.
// Now the solve fails fast with ErrNotFinite.
func TestCGNaNInRHS(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		x := make([]float64, 2)
		_, err := SolvePCG(spd2(), x, []float64{1, bad}, CGOptions{})
		if !errors.Is(err, ErrNotFinite) {
			t.Errorf("rhs %v: err = %v, want ErrNotFinite", bad, err)
		}
	}
}

// TestCGNaNInMatrix: a NaN matrix entry surfaces through pAp (whose <= 0
// SPD check is false for NaN) and must be reported, not looped on.
func TestCGNaNInMatrix(t *testing.T) {
	b := NewBuilder(2)
	b.AddDiag(0, math.NaN())
	b.AddDiag(1, 4)
	m := b.Build()
	x := make([]float64, 2)
	_, err := SolvePCG(m, x, []float64{1, 1}, CGOptions{})
	if !errors.Is(err, ErrNotFinite) {
		t.Errorf("err = %v, want ErrNotFinite", err)
	}
}

// TestCGNaNInWarmStart: a non-finite warm start poisons the first residual.
func TestCGNaNInWarmStart(t *testing.T) {
	x := []float64{math.NaN(), 0}
	_, err := SolvePCG(spd2(), x, []float64{1, 1}, CGOptions{})
	if !errors.Is(err, ErrNotFinite) {
		t.Errorf("err = %v, want ErrNotFinite", err)
	}
}

// TestCGDimensionMismatch: mismatched x/b no longer panic.
func TestCGDimensionMismatch(t *testing.T) {
	x := make([]float64, 1)
	if _, err := SolvePCG(spd2(), x, []float64{1, 1}, CGOptions{}); err == nil {
		t.Error("expected error for mismatched x")
	}
	x2 := make([]float64, 2)
	if _, err := SolvePCG(spd2(), x2, []float64{1}, CGOptions{}); err == nil {
		t.Error("expected error for mismatched b")
	}
}

// TestCGFiniteSolveUnaffected: the finite checks must not change behaviour
// on well-posed systems.
func TestCGFiniteSolveUnaffected(t *testing.T) {
	x := make([]float64, 2)
	res, err := SolvePCG(spd2(), x, []float64{5, 5}, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	// AddSym is a Laplacian stamp (adds +w to both diagonals and -w to the
	// off-diagonals), so A = [[5,-1],[-1,5]] and b = (5,5) → x = (1.25, 1.25).
	// Verify via the residual rather than hard-coding the solution.
	r0 := 5*x[0] - x[1] - 5
	r1 := -x[0] + 5*x[1] - 5
	if math.Abs(r0) > 1e-8 || math.Abs(r1) > 1e-8 {
		t.Errorf("residual (%g, %g) too large; x = %v", r0, r1, x)
	}
}
