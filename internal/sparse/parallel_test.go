package sparse

import (
	"math"
	"math/rand"
	"testing"

	"complx/internal/par"
)

// withThreads runs fn once per pool size and restores the default.
func withThreads(t *testing.T, fn func(threads int)) {
	t.Helper()
	defer par.SetThreads(0)
	for _, n := range []int{1, 2, 8} {
		par.SetThreads(n)
		fn(n)
	}
}

// oddSizes exercises the degenerate and off-by-one chunk decompositions of
// every blocked kernel.
func oddSizes(grain int) []int {
	return []int{0, 1, grain - 1, grain, grain + 1, 3*grain + 17}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64() * math.Ldexp(1, rng.Intn(20)-10)
	}
	return v
}

// serialDot is the reference reduction: fixed-size blocks summed in order,
// computed without the worker pool.
func serialDot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	// Reference must match the blocked order, so recompute blockwise.
	nb := (len(a) + dotBlock - 1) / dotBlock
	s = 0
	for c := 0; c < nb; c++ {
		lo := c * dotBlock
		hi := lo + dotBlock
		if hi > len(a) {
			hi = len(a)
		}
		var p float64
		for i := lo; i < hi; i++ {
			p += a[i] * b[i]
		}
		s += p
	}
	return s
}

func TestDotBitwiseAcrossThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range oddSizes(dotBlock) {
		a := randVec(rng, n)
		b := randVec(rng, n)
		want := serialDot(a, b)
		withThreads(t, func(threads int) {
			got := Dot(a, b)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("Dot n=%d threads=%d: got %x want %x", n, threads, math.Float64bits(got), math.Float64bits(want))
			}
			got2 := Norm2Sq(a)
			want2 := serialDot(a, a)
			if math.Float64bits(got2) != math.Float64bits(want2) {
				t.Errorf("Norm2Sq n=%d threads=%d: got %x want %x", n, threads, math.Float64bits(got2), math.Float64bits(want2))
			}
		})
	}
}

func TestAxpyBitwiseAcrossThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range oddSizes(axpyGrain) {
		x := randVec(rng, n)
		base := randVec(rng, n)
		want := make([]float64, n)
		copy(want, base)
		for i := range want {
			want[i] += 0.37 * x[i]
		}
		withThreads(t, func(threads int) {
			dst := make([]float64, n)
			copy(dst, base)
			Axpy(dst, 0.37, x)
			for i := range dst {
				if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
					t.Fatalf("Axpy n=%d threads=%d: dst[%d]=%x want %x", n, threads, i, math.Float64bits(dst[i]), math.Float64bits(want[i]))
				}
			}
		})
	}
}

// randSPD builds a random diagonally-dominant symmetric matrix with about
// nnzPerRow off-diagonals per row.
func randSPD(rng *rand.Rand, n, nnzPerRow int) *CSR {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddDiag(i, 1+rng.Float64())
	}
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			b.AddSym(i, j, 0.5*rng.Float64())
		}
	}
	return b.Build()
}

func TestMulVecBitwiseAcrossThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 7, 100, 5000} {
		var m *CSR
		if n == 0 {
			m = NewBuilder(0).Build()
		} else {
			m = randSPD(rng, n, 6)
		}
		x := randVec(rng, n)
		// Reference: row-serial product (each row is a serial sum in both
		// paths, so row order doesn't matter — only per-row order does).
		want := make([]float64, n)
		m.mulRows(want, x, 0, int32(n))
		withThreads(t, func(threads int) {
			dst := make([]float64, n)
			m.MulVec(dst, x)
			for i := range dst {
				if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
					t.Fatalf("MulVec n=%d threads=%d row %d: got %x want %x", n, threads, i, math.Float64bits(dst[i]), math.Float64bits(want[i]))
				}
			}
		})
	}
}

func TestBuildBitwiseAcrossThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range []int{0, 1, buildRowGrain - 1, buildRowGrain + 1, 4*buildRowGrain + 3} {
		// Emit a reproducible triplet stream with duplicates.
		emit := func(b *Builder) {
			r := rand.New(rand.NewSource(int64(n) + 99))
			for i := 0; i < n; i++ {
				b.AddDiag(i, 1+r.Float64())
			}
			for k := 0; k < 4*n; k++ {
				i, j := r.Intn(max(n, 1)), r.Intn(max(n, 1))
				if n == 0 {
					break
				}
				b.Add(i, j, r.NormFloat64())
			}
		}
		var wantRowPtr []int32
		var wantCol []int32
		var wantVal []float64
		first := true
		withThreads(t, func(threads int) {
			b := NewBuilder(n)
			emit(b)
			m := b.Build()
			if first {
				wantRowPtr = append([]int32(nil), m.RowPtr...)
				wantCol = append([]int32(nil), m.Col...)
				wantVal = append([]float64(nil), m.Val...)
				first = false
				return
			}
			if len(m.RowPtr) != len(wantRowPtr) || len(m.Col) != len(wantCol) || len(m.Val) != len(wantVal) {
				t.Fatalf("Build n=%d threads=%d: shape mismatch", n, threads)
			}
			for i := range m.RowPtr {
				if m.RowPtr[i] != wantRowPtr[i] {
					t.Fatalf("Build n=%d threads=%d: RowPtr[%d]=%d want %d", n, threads, i, m.RowPtr[i], wantRowPtr[i])
				}
			}
			for i := range m.Col {
				if m.Col[i] != wantCol[i] {
					t.Fatalf("Build n=%d threads=%d: Col[%d]=%d want %d", n, threads, i, m.Col[i], wantCol[i])
				}
				if math.Float64bits(m.Val[i]) != math.Float64bits(wantVal[i]) {
					t.Fatalf("Build n=%d threads=%d: Val[%d]=%x want %x", n, threads, i, math.Float64bits(m.Val[i]), math.Float64bits(wantVal[i]))
				}
			}
		})
		_ = rng
	}
}

func TestCGBitwiseAcrossThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m := randSPD(rng, 3000, 5)
	b := randVec(rng, 3000)
	var wantX []float64
	var wantIter int
	first := true
	withThreads(t, func(threads int) {
		x := make([]float64, 3000)
		res, err := SolvePCG(m, x, b, CGOptions{Tol: 1e-10, MaxIter: 200})
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if first {
			wantX = append([]float64(nil), x...)
			wantIter = res.Iterations
			first = false
			return
		}
		if res.Iterations != wantIter {
			t.Fatalf("threads=%d: %d iterations, want %d", threads, res.Iterations, wantIter)
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(wantX[i]) {
				t.Fatalf("threads=%d: x[%d]=%x want %x", threads, i, math.Float64bits(x[i]), math.Float64bits(wantX[i]))
			}
		}
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
