package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// denseSolve solves A x = b by Gaussian elimination with partial pivoting,
// as an oracle for the CG solver.
func denseSolve(a [][]float64, b []float64) []float64 {
	n := len(b)
	// Augmented matrix copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		m[col], m[p] = m[p], m[col]
		piv := m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / piv
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x
}

// TestCGMatchesDenseSolver cross-checks PCG against Gaussian elimination on
// random SPD systems.
func TestCGMatchesDenseSolver(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		dense := make([][]float64, n)
		for i := range dense {
			dense[i] = make([]float64, n)
		}
		bld := NewBuilder(n)
		// Diagonally dominant symmetric matrix.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					w := rng.Float64()
					bld.AddSym(i, j, w)
					dense[i][i] += w
					dense[j][j] += w
					dense[i][j] -= w
					dense[j][i] -= w
				}
			}
			d := 0.5 + rng.Float64()
			bld.AddDiag(i, d)
			dense[i][i] += d
		}
		a := bld.Build()
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		want := denseSolve(dense, rhs)
		got := make([]float64, n)
		res, err := SolvePCG(a, got, rhs, CGOptions{Tol: 1e-12, MaxIter: 50 * n})
		if err != nil || !res.Converged {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
