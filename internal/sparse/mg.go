package sparse

import (
	"math"

	"complx/internal/par"
)

// MGLite is an aggregation-based multigrid V-cycle preconditioner
// ("multigrid-lite"): greedy heavy-edge pairwise aggregation builds a
// hierarchy of Galerkin coarse operators (piecewise-constant prolongation,
// Aᶜ = Pᵀ A P), each Apply runs one symmetric V(1,1) cycle with damped
// Jacobi smoothing, and the coarsest system is solved by a pivot-guarded
// dense Cholesky. The cycle uses the same smoother before and after the
// coarse correction, which makes the preconditioner symmetric (and, for the
// default damping, positive definite), as PCG requires.
//
// Determinism: aggregation order, the Galerkin triple product (built
// through the deterministic Builder), restriction (a serial ascending
// scatter) and the dense factorization are all independent of the worker
// pool; the elementwise smoothing stages use fixed-grain par.For. Apply is
// therefore 0-ULP thread-equivalent like every other sparse kernel.
type MGLite struct {
	// MaxLevels caps the hierarchy depth (0 → 12); CoarseN is the size at
	// which coarsening stops and the dense solver takes over (0 → 96).
	// Omega is the Jacobi smoother damping (0 → 0.6).
	MaxLevels, CoarseN int
	Omega              float64

	levels []*mgLevel
	chol   *denseChol
}

// mgLevel holds one level's operator, smoother and work vectors. The
// vectors r/x/res are the level's restricted residual, correction and
// smoothing scratch.
type mgLevel struct {
	a         *CSR
	invD      []float64 // guarded inverse diagonal for the smoother
	agg       []int32   // fine variable → coarse aggregate (empty on the coarsest level)
	r, x, res []float64
}

func (m *MGLite) fill() {
	if m.MaxLevels <= 0 {
		m.MaxLevels = 12
	}
	if m.CoarseN <= 0 {
		m.CoarseN = 96
	}
	if m.Omega <= 0 {
		m.Omega = 0.6
	}
}

// Setup builds the aggregation hierarchy and coarse operators for a.
func (m *MGLite) Setup(a *CSR) error {
	m.fill()
	m.levels = m.levels[:0]
	m.chol = nil
	cur := a
	for {
		lvl := &mgLevel{a: cur}
		lvl.buildSmoother()
		m.levels = append(m.levels, lvl)
		n := cur.N
		if n <= m.CoarseN || len(m.levels) >= m.MaxLevels {
			break
		}
		agg, nc := aggregate(cur)
		if nc >= n { // no coarsening progress (e.g. a diagonal matrix)
			break
		}
		lvl.agg = agg
		cur = galerkin(cur, agg, nc)
	}
	bottom := m.levels[len(m.levels)-1]
	if bottom.a.N <= 2*m.CoarseN {
		c, err := newDenseChol(bottom.a)
		if err != nil {
			return err
		}
		m.chol = c
	}
	return nil
}

// RefreshDiag rebuilds only the finest-level smoother from the live matrix,
// keeping the aggregation, the coarse Galerkin operators and the dense
// factor. The finest level's residual computations always read the live
// matrix (the level stores the caller's CSR), so after a diagonal-dominated
// update the cycle remains a valid SPD preconditioner with slightly stale
// coarse corrections.
func (m *MGLite) RefreshDiag(a *CSR) error {
	if len(m.levels) == 0 || m.levels[0].a.N != a.N {
		return m.Setup(a)
	}
	m.levels[0].a = a
	m.levels[0].buildSmoother()
	return nil
}

// Apply runs one symmetric V(1,1) cycle: z ≈ A⁻¹ r.
func (m *MGLite) Apply(z, r []float64) {
	m.cycle(0, r, z)
}

// Name identifies the implementation.
func (m *MGLite) Name() string { return "mg" }

func (l *mgLevel) buildSmoother() {
	n := l.a.N
	l.invD = growF64(l.invD, n)
	l.r = growF64(l.r, n)
	l.x = growF64(l.x, n)
	l.res = growF64(l.res, n)
	invD := l.invD
	l.a.Diag(invD)
	par.For(n, axpyGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			invD[i] = 1 / guardDiag(invD[i])
		}
	})
}

// smoothZero writes one damped-Jacobi sweep from a zero start: x = ω D⁻¹ r.
func (l *mgLevel) smoothZero(omega float64, x, r []float64) {
	invD := l.invD
	par.For(l.a.N, axpyGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] = omega * invD[i] * r[i]
		}
	})
}

// smooth adds one damped-Jacobi correction: x += ω D⁻¹ (r − A x), using the
// level's res buffer for the product.
func (l *mgLevel) smooth(omega float64, x, r []float64) {
	l.a.MulVec(l.res, x)
	invD, res := l.invD, l.res
	par.For(l.a.N, axpyGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] += omega * invD[i] * (r[i] - res[i])
		}
	})
}

// cycle runs the V-cycle at level k, solving into x (overwritten).
func (m *MGLite) cycle(k int, r, x []float64) {
	lvl := m.levels[k]
	if k == len(m.levels)-1 {
		if m.chol != nil {
			m.chol.solve(x, r)
			return
		}
		// Coarsening stalled above the dense threshold: smooth in place.
		lvl.smoothZero(m.Omega, x, r)
		lvl.smooth(m.Omega, x, r)
		lvl.smooth(m.Omega, x, r)
		return
	}
	next := m.levels[k+1]
	// Pre-smooth from zero, then restrict the residual.
	lvl.smoothZero(m.Omega, x, r)
	lvl.a.MulVec(lvl.res, x)
	res, agg := lvl.res, lvl.agg
	par.For(lvl.a.N, axpyGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			res[i] = r[i] - res[i]
		}
	})
	rc := next.r
	for i := range rc {
		rc[i] = 0
	}
	for i, v := range res { // serial ascending scatter: deterministic
		rc[agg[i]] += v
	}
	m.cycle(k+1, rc, next.x)
	// Prolong the coarse correction and post-smooth.
	xc := next.x
	par.For(lvl.a.N, axpyGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] += xc[agg[i]]
		}
	})
	lvl.smooth(m.Omega, x, r)
}

// aggregate pairs each variable with its strongest unaggregated neighbor
// (greedy heavy-edge matching in row order, ties to the lowest column),
// leaving unmatched variables as singletons. Returns the fine→coarse map
// and the coarse variable count.
func aggregate(a *CSR) ([]int32, int) {
	n := a.N
	agg := make([]int32, n)
	for i := range agg {
		agg[i] = -1
	}
	nc := 0
	for i := 0; i < n; i++ {
		if agg[i] >= 0 {
			continue
		}
		best := -1
		bestW := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := int(a.Col[k])
			if j == i || agg[j] >= 0 {
				continue
			}
			if w := math.Abs(a.Val[k]); w > bestW {
				bestW = w
				best = j
			}
		}
		agg[i] = int32(nc)
		if best >= 0 {
			agg[best] = int32(nc)
		}
		nc++
	}
	return agg, nc
}

// galerkin forms the coarse operator Aᶜ = Pᵀ A P for the piecewise-constant
// prolongation given by agg, through the deterministic triplet builder.
func galerkin(a *CSR, agg []int32, nc int) *CSR {
	b := NewBuilder(nc)
	for i := 0; i < a.N; i++ {
		ci := int(agg[i])
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			b.Add(ci, int(agg[a.Col[k]]), a.Val[k])
		}
	}
	return b.Build()
}

// denseChol is a pivot-guarded dense Cholesky factorization of the coarsest
// operator. Coarse Galerkin operators of a singular-direction-free SPD fine
// matrix are SPD, but the guard keeps the solve usable even when
// aggregation maps an isolated variable to a (near-)zero coarse row.
type denseChol struct {
	n int
	l []float64 // row-major lower triangle including diagonal
}

func newDenseChol(a *CSR) (*denseChol, error) {
	n := a.N
	c := &denseChol{n: n, l: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if j := int(a.Col[k]); j <= i {
				c.l[i*n+j] += a.Val[k]
			}
		}
	}
	for j := 0; j < n; j++ {
		s := c.l[j*n+j]
		for k := 0; k < j; k++ {
			s -= c.l[j*n+k] * c.l[j*n+k]
		}
		if !(s > 1e-300) { // non-positive or NaN pivot: guarded fallback
			s = 1
		}
		d := math.Sqrt(s)
		c.l[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := c.l[i*n+j]
			for k := 0; k < j; k++ {
				s -= c.l[i*n+k] * c.l[j*n+k]
			}
			c.l[i*n+j] = s / d
		}
		if !isFinite(d) {
			return nil, ErrNotFinite
		}
	}
	return c, nil
}

// solve computes x = (L Lᵀ)⁻¹ b by forward/backward substitution.
func (c *denseChol) solve(x, b []float64) {
	n := c.n
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= c.l[i*n+j] * x[j]
		}
		x[i] = s / c.l[i*n+i]
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= c.l[j*n+i] * x[j]
		}
		x[i] = s / c.l[i*n+i]
	}
}
