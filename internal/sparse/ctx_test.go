package sparse

import (
	"context"
	"errors"
	"math"
	"testing"
)

// TestSolvePCGCtxPreCancelled proves the CG inner loop observes the context
// before every iteration: a pre-cancelled context returns immediately with
// zero iterations performed and an error wrapping context.Canceled.
func TestSolvePCGCtxPreCancelled(t *testing.T) {
	n := 50
	a := laplacianPlusDiag(n, 0.1)
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(float64(i))
	}
	bvec := make([]float64, n)
	a.MulVec(bvec, want)
	x := make([]float64, n)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var w CGWorkspace
	res, err := SolvePCGCtx(ctx, a, x, bvec, CGOptions{Tol: 1e-10}, &w)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if res.Iterations != 0 {
		t.Errorf("CG ran %d iterations under a pre-cancelled context", res.Iterations)
	}
	if res.Converged {
		t.Error("cancelled solve reported convergence")
	}
}

// TestSolvePCGCtxMidSolve cancels after a fixed number of iterations (via a
// context that flips when polled) and checks the loop stops within one
// iteration of the flip, leaving x finite.
func TestSolvePCGCtxMidSolve(t *testing.T) {
	n := 400
	a := laplacianPlusDiag(n, 1e-4) // ill-conditioned: needs many iterations
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(float64(i) * 0.7)
	}
	bvec := make([]float64, n)
	a.MulVec(bvec, want)
	x := make([]float64, n)

	const stopAfter = 3
	ctx := &countingCtx{Context: context.Background(), stopAfter: stopAfter}
	var w CGWorkspace
	res, err := SolvePCGCtx(ctx, a, x, bvec, CGOptions{Tol: 1e-12}, &w)
	if err == nil {
		t.Fatalf("expected cancellation, got convergence after %d iterations", res.Iterations)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if res.Iterations > stopAfter {
		t.Errorf("CG performed %d iterations, want <= %d (one poll per iteration)", res.Iterations, stopAfter)
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("x[%d] = %v after cancellation", i, v)
		}
	}
}

// countingCtx reports context.Canceled from the stopAfter-th Err poll on.
type countingCtx struct {
	context.Context
	polls, stopAfter int
}

func (c *countingCtx) Err() error {
	c.polls++
	if c.polls > c.stopAfter {
		return context.Canceled
	}
	return nil
}
