package sparse

import (
	"fmt"
	"math"

	"complx/internal/par"
)

// Preconditioner approximates the action of A⁻¹ for an SPD CSR matrix
// inside the PCG solve. Setup (re)builds all internal state for a matrix;
// Apply computes z ≈ A⁻¹ r for vectors of the last Setup's dimension.
//
// Every implementation shares three contracts with the rest of the sparse
// kernels:
//
//   - Determinism: Apply's floating-point result is a pure function of the
//     matrix and r — never of the worker-pool size. Elementwise stages run
//     on the internal/par pool with fixed grains; the triangular sweeps of
//     SSOR/IC(0) are inherently sequential recurrences and run serially, so
//     they are trivially 0-ULP thread-equivalent.
//   - Zero-diagonal guard: rows with a non-positive diagonal (isolated
//     variables) pass through unpreconditioned, exactly like the historical
//     Jacobi floor of 1 (see Jacobi.Setup).
//   - Concurrency: one Preconditioner instance serves one solve at a time.
//     Concurrent solves (the placement engine solves x and y concurrently)
//     need one instance per system.
type Preconditioner interface {
	Setup(a *CSR) error
	Apply(z, r []float64)
	Name() string
}

// DiagRefresher is optionally implemented by preconditioners that can
// absorb a diagonal-dominated matrix update without a full Setup. The
// placement outer loop exploits this for λ-continuation: successive systems
// differ mainly in the pseudonet anchor weights, which stamp only the
// diagonal, so refreshing the diagonal of the stored factor/sweep state is
// a rank-limited update that keeps the (slightly stale) off-diagonal state
// as a valid SPD preconditioner.
type DiagRefresher interface {
	RefreshDiag(a *CSR) error
}

// PrecondKinds lists the concrete preconditioner names accepted by
// NewPreconditioner, in documentation order.
var PrecondKinds = []string{"jacobi", "ssor", "ic0", "mg"}

// NewPreconditioner constructs a preconditioner by name: "jacobi"
// (diagonal scaling, the historical default), "ssor" (symmetric
// Gauss-Seidel forward/backward sweeps), "ic0" (zero-fill incomplete
// Cholesky) or "mg" (aggregation-based multigrid-lite V-cycle).
func NewPreconditioner(kind string) (Preconditioner, error) {
	switch kind {
	case "jacobi":
		return &Jacobi{}, nil
	case "ssor":
		return &SSOR{}, nil
	case "ic0":
		return &IC0{}, nil
	case "mg":
		return &MGLite{}, nil
	}
	return nil, fmt.Errorf("sparse: unknown preconditioner %q (have %v)", kind, PrecondKinds)
}

// guardDiag floors non-positive diagonals with 1 so isolated variables pass
// through unpreconditioned. This is the single definition of the
// zero-diagonal guard all preconditioners share.
func guardDiag(d float64) float64 {
	if d > 0 {
		return d
	}
	return 1
}

// ---------------------------------------------------------------------------
// Jacobi

// Jacobi is diagonal scaling: M = diag(A). It is the extracted form of the
// historical inline Jacobi-PCG preconditioner and is arithmetic-identical
// to it (same guard, same parallel grain), so a solve through Jacobi is
// bitwise equal to the pre-interface solver.
type Jacobi struct {
	invD []float64
}

// Setup extracts and inverts the guarded diagonal.
func (j *Jacobi) Setup(a *CSR) error {
	n := a.N
	j.invD = growF64(j.invD, n)
	invD := j.invD
	a.Diag(invD)
	par.For(n, axpyGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if d := invD[i]; d > 0 {
				invD[i] = 1 / d
			} else {
				invD[i] = 1
			}
		}
	})
	return nil
}

// RefreshDiag is a full Setup: the diagonal is the whole state.
func (j *Jacobi) RefreshDiag(a *CSR) error { return j.Setup(a) }

// Apply computes z = diag(A)⁻¹ r.
func (j *Jacobi) Apply(z, r []float64) {
	invD := j.invD
	par.For(len(r), axpyGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			z[i] = invD[i] * r[i]
		}
	})
}

// Name identifies the implementation.
func (j *Jacobi) Name() string { return "jacobi" }

// ---------------------------------------------------------------------------
// SSOR

// SSOR is the symmetric Gauss-Seidel preconditioner (SSOR with ω = 1):
// M = (D + L) D⁻¹ (D + U) over the symmetric CSR, applied as one forward
// and one backward triangular sweep per Apply (Eisenstat-style splitting of
// the stored matrix — no separate factor is formed; the sweeps read the
// live matrix rows). The sweeps are sequential recurrences, so Apply is
// deterministic at any thread count by construction.
type SSOR struct {
	a    *CSR
	diag []float64 // guarded diagonal
	u    []float64 // forward-sweep intermediate
}

// Setup stores the matrix and extracts its guarded diagonal.
func (s *SSOR) Setup(a *CSR) error {
	n := a.N
	s.a = a
	s.diag = growF64(s.diag, n)
	s.u = growF64(s.u, n)
	a.Diag(s.diag)
	d := s.diag
	par.For(n, axpyGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] = guardDiag(d[i])
		}
	})
	return nil
}

// RefreshDiag re-reads the diagonal from the (possibly updated) matrix; the
// sweep structure always follows the live matrix, so this is all the state
// there is to refresh.
func (s *SSOR) RefreshDiag(a *CSR) error { return s.Setup(a) }

// Apply solves (D+L) u = r, then (D+U) z = D u.
func (s *SSOR) Apply(z, r []float64) {
	a, d, u := s.a, s.diag, s.u
	n := a.N
	for i := 0; i < n; i++ {
		sum := r[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if j := int(a.Col[k]); j < i {
				sum -= a.Val[k] * u[j]
			}
		}
		u[i] = sum / d[i]
	}
	for i := n - 1; i >= 0; i-- {
		sum := d[i] * u[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if j := int(a.Col[k]); j > i {
				sum -= a.Val[k] * z[j]
			}
		}
		z[i] = sum / d[i]
	}
}

// Name identifies the implementation.
func (s *SSOR) Name() string { return "ssor" }

// ---------------------------------------------------------------------------
// IC(0)

// IC0 is the zero-fill incomplete Cholesky preconditioner: a lower factor L
// with exactly the strict-lower sparsity of A plus a positive diagonal d,
// M = L̂ L̂ᵀ with L̂ = L + diag(d). Breakdown (a non-positive pivot, which
// cannot happen for the M-matrices quadratic placement assembles but can
// for arbitrary SPD input) is repaired per-row by falling back to the
// guarded √diag pivot, which keeps L̂ nonsingular and M SPD.
type IC0 struct {
	n      int
	rowPtr []int32
	col    []int32
	val    []float64
	d      []float64
	aDiag  []float64 // scratch: raw diagonal of the last matrix seen
	y      []float64 // forward-sweep intermediate
}

// pivot applies the IC(0) pivot rule: the exact pivot when it is usably
// positive, else the guarded diagonal fallback.
func pivot(s, aii float64) float64 {
	// Accept the exact pivot only while it retains a meaningful fraction of
	// the diagonal: a collapsing pivot (s → 0⁺) would inject a huge 1/d
	// into the factor and destabilize Apply.
	if s > 1e-8*aii && s > 0 {
		return math.Sqrt(s)
	}
	if aii > 0 {
		return math.Sqrt(aii)
	}
	return 1
}

// Setup computes the IC(0) factorization of a.
func (f *IC0) Setup(a *CSR) error {
	n := a.N
	f.n = n
	f.rowPtr = growI32(f.rowPtr, n+1)
	f.d = growF64(f.d, n)
	f.aDiag = growF64(f.aDiag, n)
	f.y = growF64(f.y, n)
	a.Diag(f.aDiag)

	// Strict-lower pattern (CSR rows are sorted by column, so the lower
	// part of each row is a prefix).
	nnz := 0
	f.rowPtr[0] = 0
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if int(a.Col[k]) < i {
				nnz++
			} else {
				break
			}
		}
		f.rowPtr[i+1] = int32(nnz)
	}
	f.col = growI32(f.col, nnz)
	f.val = growF64(f.val, nnz)
	idx := 0
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if int(a.Col[k]) >= i {
				break
			}
			f.col[idx] = a.Col[k]
			f.val[idx] = a.Val[k]
			idx++
		}
	}

	// Row-wise left-looking factorization on the fixed pattern. Rows are
	// short (a handful of B2B couplings), so the sparse dot products via
	// two-pointer merges stay linear in nnz in practice.
	for i := 0; i < n; i++ {
		ri0, ri1 := f.rowPtr[i], f.rowPtr[i+1]
		for kk := ri0; kk < ri1; kk++ {
			j := int(f.col[kk])
			s := f.val[kk]
			// s -= Σ_{c < j} l_ic · l_jc over the shared pattern.
			pi, pj := ri0, f.rowPtr[j]
			rj1 := f.rowPtr[j+1]
			for pi < kk && pj < rj1 {
				ci, cj := f.col[pi], f.col[pj]
				switch {
				case ci == cj:
					s -= f.val[pi] * f.val[pj]
					pi++
					pj++
				case ci < cj:
					pi++
				default:
					pj++
				}
			}
			f.val[kk] = s / f.d[j]
		}
		s := f.aDiag[i]
		for kk := ri0; kk < ri1; kk++ {
			s -= f.val[kk] * f.val[kk]
		}
		f.d[i] = pivot(s, f.aDiag[i])
		if !isFinite(f.d[i]) {
			return fmt.Errorf("sparse: IC(0) row %d: %w", i, ErrNotFinite)
		}
	}
	return nil
}

// RefreshDiag recomputes only the factor diagonal from the matrix's current
// diagonal, keeping the off-diagonal factor entries: d_i = √(a_ii − Σ l_ik²)
// with the same pivot guard as Setup. This is the λ-continuation rank-limited
// update — pseudonet weight changes stamp only diag(A), so the stale L still
// matches the off-diagonal structure and M = L̂ L̂ᵀ stays SPD.
func (f *IC0) RefreshDiag(a *CSR) error {
	if a.N != f.n {
		return f.Setup(a)
	}
	a.Diag(f.aDiag)
	n := f.n
	var bad bool
	par.For(n, buildRowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := f.aDiag[i]
			for kk := f.rowPtr[i]; kk < f.rowPtr[i+1]; kk++ {
				s -= f.val[kk] * f.val[kk]
			}
			f.d[i] = pivot(s, f.aDiag[i])
			if !isFinite(f.d[i]) {
				bad = true
			}
		}
	})
	if bad {
		return fmt.Errorf("sparse: IC(0) diagonal refresh: %w", ErrNotFinite)
	}
	return nil
}

// Apply solves L̂ y = r (forward) then L̂ᵀ z = y (backward column sweep).
func (f *IC0) Apply(z, r []float64) {
	n := f.n
	y := f.y
	for i := 0; i < n; i++ {
		s := r[i]
		for kk := f.rowPtr[i]; kk < f.rowPtr[i+1]; kk++ {
			s -= f.val[kk] * y[f.col[kk]]
		}
		y[i] = s / f.d[i]
	}
	copy(z[:n], y[:n])
	for i := n - 1; i >= 0; i-- {
		zi := z[i] / f.d[i]
		z[i] = zi
		for kk := f.rowPtr[i]; kk < f.rowPtr[i+1]; kk++ {
			z[f.col[kk]] -= f.val[kk] * zi
		}
	}
}

// Name identifies the implementation.
func (f *IC0) Name() string { return "ic0" }
