package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// preconds constructs one fresh instance of every preconditioner kind.
func preconds(t *testing.T) []Preconditioner {
	t.Helper()
	out := make([]Preconditioner, 0, len(PrecondKinds))
	for _, kind := range PrecondKinds {
		p, err := NewPreconditioner(kind)
		if err != nil {
			t.Fatalf("NewPreconditioner(%q): %v", kind, err)
		}
		if p.Name() != kind {
			t.Fatalf("NewPreconditioner(%q).Name() = %q", kind, p.Name())
		}
		out = append(out, p)
	}
	return out
}

func TestNewPreconditionerUnknown(t *testing.T) {
	if _, err := NewPreconditioner("cholesky"); err == nil {
		t.Fatal("expected an error for an unknown preconditioner kind")
	}
}

// TestPreconditionedCGMatchesDenseSolver cross-checks PCG under every
// preconditioner against Gaussian elimination on random SPD systems (the
// dense_test.go oracle pattern).
func TestPreconditionedCGMatchesDenseSolver(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		dense := make([][]float64, n)
		for i := range dense {
			dense[i] = make([]float64, n)
		}
		bld := NewBuilder(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					w := rng.Float64()
					bld.AddSym(i, j, w)
					dense[i][i] += w
					dense[j][j] += w
					dense[i][j] -= w
					dense[j][i] -= w
				}
			}
			d := 0.5 + rng.Float64()
			bld.AddDiag(i, d)
			dense[i][i] += d
		}
		a := bld.Build()
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		want := denseSolve(dense, rhs)
		for _, p := range preconds(t) {
			if err := p.Setup(a); err != nil {
				t.Logf("%s: Setup: %v", p.Name(), err)
				return false
			}
			got := make([]float64, n)
			res, err := SolvePCG(a, got, rhs, CGOptions{Tol: 1e-12, MaxIter: 50 * n, Precond: p})
			if err != nil || !res.Converged {
				t.Logf("%s: err=%v converged=%v", p.Name(), err, res.Converged)
				return false
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
					t.Logf("%s: x[%d]=%g want %g", p.Name(), i, got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPrecondBitwiseAcrossThreads pins the 0-ULP thread-equivalence
// contract: Setup+Apply produce bit-identical output at 1, 2 and 8 workers,
// and so does a full PCG solve through each preconditioner.
func TestPrecondBitwiseAcrossThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randSPD(rng, 3000, 5)
	r := randVec(rng, 3000)
	for _, kind := range PrecondKinds {
		var wantZ, wantX []float64
		var wantIter int
		first := true
		withThreads(t, func(threads int) {
			p, err := NewPreconditioner(kind)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Setup(a); err != nil {
				t.Fatalf("%s threads=%d: Setup: %v", kind, threads, err)
			}
			z := make([]float64, a.N)
			p.Apply(z, r)
			x := make([]float64, a.N)
			res, err := SolvePCG(a, x, r, CGOptions{Tol: 1e-10, MaxIter: 200, Precond: p})
			if err != nil {
				t.Fatalf("%s threads=%d: %v", kind, threads, err)
			}
			if first {
				wantZ = append([]float64(nil), z...)
				wantX = append([]float64(nil), x...)
				wantIter = res.Iterations
				first = false
				return
			}
			if res.Iterations != wantIter {
				t.Fatalf("%s threads=%d: %d iterations, want %d", kind, threads, res.Iterations, wantIter)
			}
			for i := range z {
				if math.Float64bits(z[i]) != math.Float64bits(wantZ[i]) {
					t.Fatalf("%s threads=%d: Apply z[%d]=%x want %x", kind, threads, i, math.Float64bits(z[i]), math.Float64bits(wantZ[i]))
				}
				if math.Float64bits(x[i]) != math.Float64bits(wantX[i]) {
					t.Fatalf("%s threads=%d: x[%d]=%x want %x", kind, threads, i, math.Float64bits(x[i]), math.Float64bits(wantX[i]))
				}
			}
		})
	}
}

// TestExplicitJacobiBitwiseEqualsDefault proves the extracted Jacobi
// implementation is behavior-identical to the built-in nil-Precond path
// (which itself is the pre-interface solver): same iterate sequence, bit
// for bit.
func TestExplicitJacobiBitwiseEqualsDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randSPD(rng, 2000, 6)
	b := randVec(rng, 2000)

	xDefault := make([]float64, a.N)
	resDefault, err := SolvePCG(a, xDefault, b, CGOptions{Tol: 1e-10, MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	jac := &Jacobi{}
	if err := jac.Setup(a); err != nil {
		t.Fatal(err)
	}
	xJac := make([]float64, a.N)
	resJac, err := SolvePCG(a, xJac, b, CGOptions{Tol: 1e-10, MaxIter: 300, Precond: jac})
	if err != nil {
		t.Fatal(err)
	}
	if resJac.Iterations != resDefault.Iterations || math.Float64bits(resJac.Residual) != math.Float64bits(resDefault.Residual) {
		t.Fatalf("explicit Jacobi diverged from default: %+v vs %+v", resJac, resDefault)
	}
	for i := range xJac {
		if math.Float64bits(xJac[i]) != math.Float64bits(xDefault[i]) {
			t.Fatalf("x[%d]=%x want %x", i, math.Float64bits(xJac[i]), math.Float64bits(xDefault[i]))
		}
	}
}

// TestPrecondZeroDiagonalGuard is the zero-diagonal audit regression: a
// system with isolated variables (empty rows, matching the Jacobi floor of
// 1) must pass through every preconditioner without producing NaN/Inf, and
// the solve must still converge to the connected component's solution.
func TestPrecondZeroDiagonalGuard(t *testing.T) {
	// 8 variables: 0..3 form a well-conditioned SPD block, 4..7 are fully
	// isolated (no entries at all — their rows are empty and their
	// diagonal is zero).
	n := 8
	bld := NewBuilder(n)
	for i := 0; i < 4; i++ {
		bld.AddDiag(i, 2)
	}
	bld.AddSym(0, 1, 1)
	bld.AddSym(1, 2, 1)
	bld.AddSym(2, 3, 1)
	a := bld.Build()
	b := []float64{1, -2, 3, -4, 0, 0, 0, 0}

	dense := make([][]float64, 4)
	for i := range dense {
		dense[i] = make([]float64, 4)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			dense[i][j] = a.At(i, j)
		}
	}
	want := denseSolve(dense, b[:4])

	for _, p := range preconds(t) {
		if err := p.Setup(a); err != nil {
			t.Fatalf("%s: Setup: %v", p.Name(), err)
		}
		// The guard itself: applying to a vector with mass on the isolated
		// variables must pass them through finitely (Jacobi passes them
		// unchanged; all kinds must at least stay finite).
		r := []float64{1, 1, 1, 1, 5, -5, 2, -2}
		z := make([]float64, n)
		p.Apply(z, r)
		for i, v := range z {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: Apply produced non-finite z[%d]=%g on zero-diagonal system", p.Name(), i, v)
			}
		}
		for i := 4; i < 8; i++ {
			if math.Float64bits(z[i]) != math.Float64bits(r[i]) {
				t.Fatalf("%s: isolated variable %d not passed through: z=%g r=%g", p.Name(), i, z[i], r[i])
			}
		}
		x := make([]float64, n)
		res, err := SolvePCG(a, x, b, CGOptions{Tol: 1e-12, MaxIter: 500, Precond: p})
		if err != nil || !res.Converged {
			t.Fatalf("%s: solve on zero-diagonal system: err=%v res=%+v", p.Name(), err, res)
		}
		for i := 0; i < 4; i++ {
			if math.Abs(x[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Fatalf("%s: x[%d]=%g want %g", p.Name(), i, x[i], want[i])
			}
		}
	}
}

// TestDiagRefreshTracksDiagonalUpdate exercises the λ-continuation path:
// after a diagonal-only matrix update, RefreshDiag must keep each
// preconditioner a valid SPD operator that still converges the solve, and
// for Jacobi/SSOR (whose state is exactly the diagonal) it must match a
// full Setup bit for bit.
func TestDiagRefreshTracksDiagonalUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 500

	build := func(extraDiag float64) *CSR {
		r := rand.New(rand.NewSource(31))
		b := NewBuilder(n)
		for i := 0; i < n; i++ {
			b.AddDiag(i, 1+r.Float64()+extraDiag*float64(i%7))
		}
		for i := 0; i < n; i++ {
			for k := 0; k < 4; k++ {
				j := r.Intn(n)
				if j != i {
					b.AddSym(i, j, 0.5*r.Float64())
				}
			}
		}
		return b.Build()
	}
	a0 := build(0)
	a1 := build(0.35) // same off-diagonal pattern+values, heavier diagonal
	rhs := randVec(rng, n)

	for _, kind := range PrecondKinds {
		refreshed, err := NewPreconditioner(kind)
		if err != nil {
			t.Fatal(err)
		}
		if err := refreshed.Setup(a0); err != nil {
			t.Fatalf("%s: Setup(a0): %v", kind, err)
		}
		dr, ok := refreshed.(DiagRefresher)
		if !ok {
			t.Fatalf("%s does not implement DiagRefresher", kind)
		}
		if err := dr.RefreshDiag(a1); err != nil {
			t.Fatalf("%s: RefreshDiag: %v", kind, err)
		}
		x := make([]float64, n)
		res, err := SolvePCG(a1, x, rhs, CGOptions{Tol: 1e-10, MaxIter: 10 * n, Precond: refreshed})
		if err != nil || !res.Converged {
			t.Fatalf("%s: solve after RefreshDiag: err=%v res=%+v", kind, err, res)
		}

		if kind == "jacobi" || kind == "ssor" {
			full, _ := NewPreconditioner(kind)
			if err := full.Setup(a1); err != nil {
				t.Fatal(err)
			}
			zr := make([]float64, n)
			zf := make([]float64, n)
			refreshed.Apply(zr, rhs)
			full.Apply(zf, rhs)
			for i := range zr {
				if math.Float64bits(zr[i]) != math.Float64bits(zf[i]) {
					t.Fatalf("%s: RefreshDiag differs from Setup at %d", kind, i)
				}
			}
		}
	}
}

// TestIC0ReducesIterations pins the point of the exercise: on a
// placement-like diagonally-dominant system, IC(0) must need substantially
// fewer CG iterations than Jacobi.
func TestIC0ReducesIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	// 2-D grid Laplacian + small diagonal shift: the sparsity and
	// conditioning structure of a quadratic placement system.
	side := 60
	n := side * side
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddDiag(i, 1e-3)
		x, y := i%side, i/side
		if x+1 < side {
			b.AddSym(i, i+1, 1)
			b.AddDiag(i, 1)
			b.AddDiag(i+1, 1)
			b.Add(i, i+1, -1)
			b.Add(i+1, i, -1)
		}
		if y+1 < side {
			b.AddDiag(i, 1)
			b.AddDiag(i+side, 1)
			b.Add(i, i+side, -1)
			b.Add(i+side, i, -1)
		}
	}
	a := b.Build()
	rhs := randVec(rng, n)

	solve := func(p Preconditioner) int {
		x := make([]float64, n)
		res, err := SolvePCG(a, x, rhs, CGOptions{Tol: 1e-8, MaxIter: 10 * n, Precond: p})
		if err != nil || !res.Converged {
			t.Fatalf("%v: err=%v res=%+v", p, err, res)
		}
		return res.Iterations
	}
	jac := &Jacobi{}
	if err := jac.Setup(a); err != nil {
		t.Fatal(err)
	}
	ic := &IC0{}
	if err := ic.Setup(a); err != nil {
		t.Fatal(err)
	}
	jacIters, icIters := solve(jac), solve(ic)
	if float64(icIters) > 0.75*float64(jacIters) {
		t.Fatalf("IC(0) took %d iterations vs Jacobi's %d; expected at least a 25%% reduction", icIters, jacIters)
	}
	t.Logf("jacobi=%d ic0=%d iterations", jacIters, icIters)
}
