// Package sparse implements the sparse linear algebra needed by quadratic
// placement: a coordinate-format accumulator, compressed sparse row (CSR)
// matrices, and a Jacobi-preconditioned Conjugate Gradient solver for
// symmetric positive-definite systems.
//
// Quadratic placement matrices are extremely sparse (a handful of nonzeros
// per row from the Bound2Bound net model plus one diagonal anchor term), so
// CSR with a diagonal preconditioner is the standard choice; it is also what
// SimPL and ComPLx use.
package sparse

import (
	"fmt"
	"sort"
)

// Builder accumulates matrix entries in coordinate form. Duplicate entries
// for the same (row, col) are summed, which matches how net models stamp
// element contributions.
type Builder struct {
	n          int
	rows, cols []int32
	vals       []float64
}

// NewBuilder returns a Builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// N returns the matrix dimension.
func (b *Builder) N() int { return b.n }

// Add accumulates v into entry (i, j).
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("sparse: Add(%d, %d) out of range for n=%d", i, j, b.n))
	}
	if v == 0 {
		return
	}
	b.rows = append(b.rows, int32(i))
	b.cols = append(b.cols, int32(j))
	b.vals = append(b.vals, v)
}

// AddSym accumulates the symmetric 2x2 stamp of a spring of weight w between
// variables i and j: +w on both diagonals, -w on both off-diagonals. This is
// the element contribution of the quadratic term w(x_i - x_j)^2.
func (b *Builder) AddSym(i, j int, w float64) {
	b.Add(i, i, w)
	b.Add(j, j, w)
	b.Add(i, j, -w)
	b.Add(j, i, -w)
}

// AddDiag accumulates w on the diagonal entry (i, i); the element
// contribution of an anchor term w(x_i - a)^2.
func (b *Builder) AddDiag(i int, w float64) {
	b.Add(i, i, w)
}

// Build compresses the accumulated entries into a CSR matrix. The Builder
// may be reused afterwards (it is reset).
func (b *Builder) Build() *CSR {
	n := b.n
	// Count entries per row after merging duplicates. First sort by (row, col).
	idx := make([]int, len(b.vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(p, q int) bool {
		ip, iq := idx[p], idx[q]
		if b.rows[ip] != b.rows[iq] {
			return b.rows[ip] < b.rows[iq]
		}
		return b.cols[ip] < b.cols[iq]
	})

	m := &CSR{
		N:      n,
		RowPtr: make([]int32, n+1),
	}
	var lastR, lastC int32 = -1, -1
	for _, k := range idx {
		r, c, v := b.rows[k], b.cols[k], b.vals[k]
		if r == lastR && c == lastC {
			m.Val[len(m.Val)-1] += v
			continue
		}
		m.Col = append(m.Col, c)
		m.Val = append(m.Val, v)
		m.RowPtr[r+1]++
		lastR, lastC = r, c
	}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	b.rows, b.cols, b.vals = b.rows[:0], b.cols[:0], b.vals[:0]
	return m
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	N      int
	RowPtr []int32
	Col    []int32
	Val    []float64
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes dst = m * x. dst must have length N and may not alias x.
func (m *CSR) MulVec(dst, x []float64) {
	if len(dst) != m.N || len(x) != m.N {
		panic("sparse: MulVec dimension mismatch")
	}
	for i := 0; i < m.N; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.Col[k]]
		}
		dst[i] = s
	}
}

// Diag extracts the diagonal into dst (length N). Missing diagonal entries
// yield zero.
func (m *CSR) Diag(dst []float64) {
	if len(dst) != m.N {
		panic("sparse: Diag dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if int(m.Col[k]) == i {
				dst[i] += m.Val[k]
			}
		}
	}
}

// At returns entry (i, j); zero when not stored.
func (m *CSR) At(i, j int) float64 {
	var v float64
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		if int(m.Col[k]) == j {
			v += m.Val[k]
		}
	}
	return v
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes dst[i] += alpha * x[i].
func Axpy(dst []float64, alpha float64, x []float64) {
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// Norm2Sq returns the squared Euclidean norm of v.
func Norm2Sq(v []float64) float64 { return Dot(v, v) }
