// Package sparse implements the sparse linear algebra needed by quadratic
// placement: a coordinate-format accumulator, compressed sparse row (CSR)
// matrices, and a Jacobi-preconditioned Conjugate Gradient solver for
// symmetric positive-definite systems.
//
// Quadratic placement matrices are extremely sparse (a handful of nonzeros
// per row from the Bound2Bound net model plus one diagonal anchor term), so
// CSR with a diagonal preconditioner is the standard choice; it is also what
// SimPL and ComPLx use.
//
// The kernels on the primal hot path — MulVec, Dot, Axpy, Norm2Sq and CSR
// construction — run on the shared worker pool of package par. All of them
// honor the pool's determinism contract: work decomposition is a pure
// function of the problem size, and reductions merge fixed-size block
// partials in index order, so results are bitwise identical at any
// parallelism level.
package sparse

import (
	"fmt"
	"sort"

	"complx/internal/par"
)

// Tunable kernel decomposition constants. These are sizes, not thread
// counts: changing the pool's parallelism never changes the decomposition.
const (
	// dotBlock is the fixed reduction block length for Dot/Norm2Sq. Partial
	// sums are computed per block and added in block order.
	dotBlock = 8192
	// axpyGrain is the chunk length for element-wise vector kernels.
	axpyGrain = 16384
	// mulChunkNNZ is the target number of nonzeros per MulVec row chunk.
	mulChunkNNZ = 16384
	// maxMulChunks caps the precomputed row-split count.
	maxMulChunks = 64
	// buildRowGrain is the row-chunk length for the parallel phases of CSR
	// construction (per-row sort/merge and segment copy).
	buildRowGrain = 2048
)

// Builder accumulates matrix entries in coordinate form. Duplicate entries
// for the same (row, col) are summed, which matches how net models stamp
// element contributions.
type Builder struct {
	n          int
	rows, cols []int32
	vals       []float64
}

// NewBuilder returns a Builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// N returns the matrix dimension.
func (b *Builder) N() int { return b.n }

// Len returns the number of accumulated (unmerged) entries.
func (b *Builder) Len() int { return len(b.vals) }

// Reset drops all accumulated entries but keeps the allocated capacity, so
// a Builder can be reused across assembly iterations without reallocating
// its triplet arrays.
func (b *Builder) Reset() {
	b.rows, b.cols, b.vals = b.rows[:0], b.cols[:0], b.vals[:0]
}

// Add accumulates v into entry (i, j).
//
// Indices out of range panic rather than return an error: Add sits on the
// innermost assembly loop and its indices are derived from a validated
// netlist, so an out-of-range index is a provable programmer bug (a broken
// variable-numbering invariant), never a data error. The library-facing
// robustness contract is enforced one level up by netlist.Validate.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("sparse: Add(%d, %d) out of range for n=%d", i, j, b.n))
	}
	if v == 0 {
		return
	}
	b.rows = append(b.rows, int32(i))
	b.cols = append(b.cols, int32(j))
	b.vals = append(b.vals, v)
}

// AddSym accumulates the symmetric 2x2 stamp of a spring of weight w between
// variables i and j: +w on both diagonals, -w on both off-diagonals. This is
// the element contribution of the quadratic term w(x_i - x_j)^2.
func (b *Builder) AddSym(i, j int, w float64) {
	b.Add(i, i, w)
	b.Add(j, j, w)
	b.Add(i, j, -w)
	b.Add(j, i, -w)
}

// AddDiag accumulates w on the diagonal entry (i, i); the element
// contribution of an anchor term w(x_i - a)^2.
func (b *Builder) AddDiag(i int, w float64) {
	b.Add(i, i, w)
}

// Build compresses the accumulated entries into a CSR matrix. The Builder
// may be reused afterwards (it is reset).
func (b *Builder) Build() *CSR {
	m := BuildMergedInto(nil, nil, b.n, b)
	b.Reset()
	return m
}

// BuildScratch holds the reusable intermediate buffers of CSR construction.
// Reusing one BuildScratch across iterations eliminates the per-Assemble
// allocation of the scatter and counting arrays.
type BuildScratch struct {
	start  []int32   // per-row raw segment starts (n+1)
	cur    []int32   // per-row scatter cursors (n)
	rawCol []int32   // scattered, unmerged columns (nnz raw)
	rawVal []float64 // scattered, unmerged values (nnz raw)
	rowNNZ []int32   // merged entry count per row (n)
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// BuildMergedInto builds the CSR matrix for the concatenation of the
// shards' triplet streams, taken in shard order. It replaces the sort-based
// Build with a deterministic two-phase counting build:
//
//  1. count triplets per row and scatter them (sequentially, preserving the
//     within-row triplet order) into contiguous row segments;
//  2. per row — in parallel over fixed row chunks — stably sort the segment
//     by column and sum duplicates in first-appearance order, then compact
//     the merged segments into the final arrays.
//
// Because the duplicate-summation order equals the triplet emission order
// (never the worker count), the numeric result is bitwise deterministic.
//
// m and ws may be nil (fresh allocations) or carry buffers from a previous
// call, which are reused when large enough — the incremental-assembly path
// reuses both across placement iterations. The shards are not reset.
//
// Shards whose dimension disagrees with n panic (documented programmer
// bug): shard dimensions are fixed when the assembler is constructed and
// never depend on external input.
func BuildMergedInto(m *CSR, ws *BuildScratch, n int, shards ...*Builder) *CSR {
	if m == nil {
		m = &CSR{}
	}
	if ws == nil {
		ws = &BuildScratch{}
	}
	total := 0
	for _, b := range shards {
		if b.n != n {
			panic(fmt.Sprintf("sparse: BuildMergedInto shard dimension %d != %d", b.n, n))
		}
		total += len(b.vals)
	}
	m.N = n
	m.RowPtr = growI32(m.RowPtr, n+1)

	// Phase 1a: raw per-row counts over all shards in order.
	start := growI32(ws.start, n+1)
	for i := range start {
		start[i] = 0
	}
	for _, b := range shards {
		for _, r := range b.rows {
			start[r+1]++
		}
	}
	for i := 0; i < n; i++ {
		start[i+1] += start[i]
	}

	// Phase 1b: scatter triplets into row segments. Sequential on purpose:
	// it preserves the emission order of duplicates within each row, which
	// fixes the floating-point summation order.
	cur := growI32(ws.cur, n)
	copy(cur, start[:n])
	rawCol := growI32(ws.rawCol, total)
	rawVal := growF64(ws.rawVal, total)
	for _, b := range shards {
		for k, r := range b.rows {
			p := cur[r]
			cur[r] = p + 1
			rawCol[p] = b.cols[k]
			rawVal[p] = b.vals[k]
		}
	}

	// Phase 2a: per-row stable sort by column + in-place duplicate merge.
	rowNNZ := growI32(ws.rowNNZ, n)
	par.For(n, buildRowGrain, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			s, e := int(start[r]), int(start[r+1])
			seg := e - s
			if seg == 0 {
				rowNNZ[r] = 0
				continue
			}
			insertionSortByCol(rawCol[s:e], rawVal[s:e])
			// Merge duplicates in place at the segment head.
			w := s
			for k := s + 1; k < e; k++ {
				if rawCol[k] == rawCol[w] {
					rawVal[w] += rawVal[k]
				} else {
					w++
					rawCol[w] = rawCol[k]
					rawVal[w] = rawVal[k]
				}
			}
			rowNNZ[r] = int32(w - s + 1)
		}
	})

	// Phase 2b: prefix-sum the merged counts into the final row pointers.
	m.RowPtr[0] = 0
	for r := 0; r < n; r++ {
		m.RowPtr[r+1] = m.RowPtr[r] + rowNNZ[r]
	}
	nnz := int(m.RowPtr[n])
	m.Col = growI32(m.Col, nnz)
	m.Val = growF64(m.Val, nnz)

	// Phase 2c: compact merged segments into the final arrays.
	par.For(n, buildRowGrain, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			src := int(start[r])
			dst := int(m.RowPtr[r])
			cnt := int(rowNNZ[r])
			copy(m.Col[dst:dst+cnt], rawCol[src:src+cnt])
			copy(m.Val[dst:dst+cnt], rawVal[src:src+cnt])
		}
	})

	ws.start, ws.cur, ws.rawCol, ws.rawVal, ws.rowNNZ = start, cur, rawCol, rawVal, rowNNZ
	m.splits = m.computeSplits(m.splits[:0])
	return m
}

// insertionSortByCol stably sorts the (col, val) pairs by column. Stability
// keeps duplicate entries in emission order so their summation order is
// deterministic. Row segments are small (a handful of stamps per variable),
// where insertion sort beats the generic sort; very long segments fall back
// to a stable pre-pass.
func insertionSortByCol(cols []int32, vals []float64) {
	if len(cols) > 64 {
		// Rare hub rows: stable sort via sort.SliceStable on an index view
		// would allocate; a binary-insertion variant keeps it allocation-free
		// and stable while avoiding the quadratic scan's worst constant.
		binaryInsertionSortByCol(cols, vals)
		return
	}
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1], vals[j+1] = cols[j], vals[j]
			j--
		}
		cols[j+1], vals[j+1] = c, v
	}
}

// binaryInsertionSortByCol is the stable fallback for long row segments:
// binary search for the insertion point, then a block move.
func binaryInsertionSortByCol(cols []int32, vals []float64) {
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		// First position whose col is > c (keeps equal cols stable).
		p := sort.Search(i, func(k int) bool { return cols[k] > c })
		copy(cols[p+1:i+1], cols[p:i])
		copy(vals[p+1:i+1], vals[p:i])
		cols[p] = c
		vals[p] = v
	}
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	N      int
	RowPtr []int32
	Col    []int32
	Val    []float64
	// splits caches the nnz-balanced row boundaries used by the parallel
	// MulVec. Builder-produced matrices get them precomputed; hand-built
	// matrices compute them on the fly (uncached, so CSR literals stay
	// safe for concurrent reads).
	splits []int32
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// computeSplits appends to dst the row boundaries of an nnz-balanced chunk
// partition: chunk c covers rows [dst[c], dst[c+1]) and holds roughly equal
// numbers of nonzeros. The partition depends only on the matrix itself.
func (m *CSR) computeSplits(dst []int32) []int32 {
	nnz := len(m.Val)
	k := nnz / mulChunkNNZ
	if k > maxMulChunks {
		k = maxMulChunks
	}
	if k > m.N {
		k = m.N
	}
	if k <= 1 {
		return append(dst, 0, int32(m.N))
	}
	dst = append(dst, 0)
	for c := 1; c < k; c++ {
		target := int32(int64(nnz) * int64(c) / int64(k))
		// First row whose segment starts at or after the target.
		row := sort.Search(m.N, func(r int) bool { return m.RowPtr[r] >= target })
		prev := dst[len(dst)-1]
		if int32(row) <= prev {
			continue // empty chunk collapsed
		}
		dst = append(dst, int32(row))
	}
	return append(dst, int32(m.N))
}

// mulRows computes dst[i] = Σ_k val·x for rows [lo, hi).
func (m *CSR) mulRows(dst, x []float64, lo, hi int32) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.Col[k]]
		}
		dst[i] = s
	}
}

// MulVec computes dst = m * x. dst must have length N and may not alias x.
// Rows are processed in parallel over nnz-balanced chunks; since each output
// element is produced by exactly one chunk, the result is independent of the
// partition and bitwise identical to the serial product.
//
// A dimension mismatch panics (documented programmer bug): MulVec is a hot
// kernel whose operand sizes are fixed by the caller-owned workspaces, never
// by external input.
func (m *CSR) MulVec(dst, x []float64) {
	if len(dst) != m.N || len(x) != m.N {
		panic("sparse: MulVec dimension mismatch")
	}
	sp := m.splits
	if sp == nil {
		if len(m.Val) < 2*mulChunkNNZ || par.Threads() == 1 {
			m.mulRows(dst, x, 0, int32(m.N))
			return
		}
		sp = m.computeSplits(nil)
	}
	if len(sp) <= 2 || par.Threads() == 1 {
		m.mulRows(dst, x, 0, int32(m.N))
		return
	}
	par.Run(len(sp)-1, func(c int) {
		m.mulRows(dst, x, sp[c], sp[c+1])
	})
}

// Diag extracts the diagonal into dst (length N). Missing diagonal entries
// yield zero. A dimension mismatch panics (documented programmer bug, same
// contract as MulVec).
func (m *CSR) Diag(dst []float64) {
	if len(dst) != m.N {
		panic("sparse: Diag dimension mismatch")
	}
	par.For(m.N, buildRowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var d float64
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				if int(m.Col[k]) == i {
					d += m.Val[k]
				}
			}
			dst[i] = d
		}
	})
}

// At returns entry (i, j); zero when not stored.
func (m *CSR) At(i, j int) float64 {
	var v float64
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		if int(m.Col[k]) == j {
			v += m.Val[k]
		}
	}
	return v
}

func dotRange(a, b []float64, lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Dot returns the inner product of two equal-length vectors. Long vectors
// are reduced in fixed blocks of dotBlock elements whose partial sums are
// added in block order, so the result is bitwise deterministic at any
// parallelism level (and identical to executing the same blocked reduction
// serially).
func Dot(a, b []float64) float64 {
	n := len(a)
	if n <= dotBlock {
		return dotRange(a, b, 0, n)
	}
	nb := par.Chunks(n, dotBlock)
	partial := make([]float64, nb)
	par.For(n, dotBlock, func(lo, hi int) {
		partial[lo/dotBlock] = dotRange(a, b, lo, hi)
	})
	var s float64
	for _, v := range partial {
		s += v
	}
	return s
}

// Axpy computes dst[i] += alpha * x[i].
func Axpy(dst []float64, alpha float64, x []float64) {
	par.For(len(dst), axpyGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] += alpha * x[i]
		}
	})
}

// Norm2Sq returns the squared Euclidean norm of v.
func Norm2Sq(v []float64) float64 { return Dot(v, v) }
