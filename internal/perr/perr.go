// Package perr defines the structured error type shared by the placement
// pipeline. Every stage of the flow — Bookshelf parsing, netlist
// validation, system assembly, the CG solves, projection, legalization —
// wraps its failures in an *Error carrying the stage name and, when known,
// the offending input file, line number and global-placement iteration.
//
// The type renders as a single line
//
//	stage=parse file=bad.pl line=7: truncated placement line "o1 12"
//
// so command-line front ends can print it directly, and it participates in
// errors.Is/errors.As chains through Unwrap, so callers can still test for
// sentinel causes (for example sparse.ErrNotFinite).
package perr

import (
	"fmt"
	"strings"
)

// Well-known stage names. Stages are plain strings rather than an enum so
// that extensions can introduce their own without touching this package.
const (
	StageIO       = "io"       // file access
	StageParse    = "parse"    // Bookshelf (or other format) parsing
	StageValidate = "validate" // netlist validation
	StageAssemble = "assemble" // linear-system assembly
	StageSolve    = "solve"    // CG / nonlinear primal solves
	StageProject  = "project"  // feasibility projection
	StageLegalize = "legalize" // legalization
	StageDetailed = "detailed" // detailed placement
	StageCancel   = "cancel"   // run stopped by context cancellation

	StageCheckpoint = "checkpoint" // checkpoint persistence / resumption
	StageRecover    = "recover"    // solver fallback ladder exhausted
	StageOptions    = "options"    // caller-supplied option validation

	// Service-hardening stages emitted by the complxd daemon (DESIGN.md
	// §15): failures of the job, not of the placement numerics.
	StagePanic      = "panic"      // worker panic converted to a job failure
	StageWatchdog   = "watchdog"   // progress watchdog cancelled a stalled job
	StageDeadline   = "deadline"   // per-job deadline exceeded
	StageAdmission  = "admission"  // admission control rejected or shed work
	StageQuarantine = "quarantine" // crash-loop breaker quarantined a poison job
)

// Error is a structured placement-pipeline error.
type Error struct {
	// Stage names the pipeline stage that failed (one of the Stage*
	// constants, or a caller-defined string).
	Stage string
	// File is the input file involved, when known.
	File string
	// Line is the 1-based line number within File, when known (0 = unknown).
	Line int
	// Iter is the global placement iteration at failure time (0 = not
	// applicable / before the first iteration).
	Iter int
	// Err is the underlying cause.
	Err error
}

// Error renders the structured fields followed by the cause, on one line.
func (e *Error) Error() string {
	var b strings.Builder
	b.WriteString("stage=")
	if e.Stage == "" {
		b.WriteString("unknown")
	} else {
		b.WriteString(e.Stage)
	}
	if e.File != "" {
		fmt.Fprintf(&b, " file=%s", e.File)
	}
	if e.Line > 0 {
		fmt.Fprintf(&b, " line=%d", e.Line)
	}
	if e.Iter > 0 {
		fmt.Fprintf(&b, " iter=%d", e.Iter)
	}
	b.WriteString(": ")
	if e.Err != nil {
		b.WriteString(e.Err.Error())
	} else {
		b.WriteString("unspecified error")
	}
	return b.String()
}

// Unwrap exposes the cause for errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }

// New builds a stage error from a formatted message.
func New(stage, format string, args ...any) *Error {
	return &Error{Stage: stage, Err: fmt.Errorf(format, args...)}
}

// Wrap attaches a stage to err. nil stays nil. When err itself is an
// *Error (direct, not nested behind other wrappers), the stage is filled
// into a copy instead of double-wrapping, so messages never read
// "stage=x: stage=y: ...".
func Wrap(stage string, err error) error {
	if err == nil {
		return nil
	}
	if pe, ok := err.(*Error); ok {
		if pe.Stage == "" {
			cp := *pe
			cp.Stage = stage
			return &cp
		}
		return err
	}
	return &Error{Stage: stage, Err: err}
}

// WrapIter attaches a stage and iteration number to err (nil stays nil).
func WrapIter(stage string, iter int, err error) error {
	if err == nil {
		return nil
	}
	if pe, ok := err.(*Error); ok {
		cp := *pe
		if cp.Stage == "" {
			cp.Stage = stage
		}
		if cp.Iter == 0 {
			cp.Iter = iter
		}
		return &cp
	}
	return &Error{Stage: stage, Iter: iter, Err: err}
}

// WithFile returns err annotated with the given file name. A direct *Error
// has its File field filled (in a copy) when empty; any other error is
// wrapped in a fresh *Error carrying the file.
func WithFile(err error, file string) error {
	if err == nil {
		return nil
	}
	if pe, ok := err.(*Error); ok {
		cp := *pe
		if cp.File == "" {
			cp.File = file
		}
		return &cp
	}
	return &Error{File: file, Err: err}
}
