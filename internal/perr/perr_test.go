package perr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestErrorRendersOneLine(t *testing.T) {
	e := &Error{Stage: StageParse, File: "bad.pl", Line: 7, Err: errors.New("truncated line")}
	got := e.Error()
	want := "stage=parse file=bad.pl line=7: truncated line"
	if got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	if strings.Count(got, "\n") != 0 {
		t.Errorf("message is not one line: %q", got)
	}
}

func TestErrorRendersIterAndDefaults(t *testing.T) {
	e := &Error{Stage: StageSolve, Iter: 12, Err: errors.New("cg diverged")}
	if got, want := e.Error(), "stage=solve iter=12: cg diverged"; got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	empty := &Error{}
	if got, want := empty.Error(), "stage=unknown: unspecified error"; got != want {
		t.Errorf("zero Error() = %q, want %q", got, want)
	}
}

func TestWrapNilStaysNil(t *testing.T) {
	if Wrap(StageSolve, nil) != nil || WrapIter(StageSolve, 3, nil) != nil || WithFile(nil, "f") != nil {
		t.Error("nil error did not stay nil")
	}
}

func TestWrapDoesNotDoubleWrap(t *testing.T) {
	inner := New(StageParse, "bad token")
	out := Wrap(StageValidate, inner)
	pe, ok := out.(*Error)
	if !ok {
		t.Fatalf("Wrap returned %T", out)
	}
	if pe.Stage != StageParse {
		t.Errorf("existing stage overwritten: %q", pe.Stage)
	}
	if strings.Count(out.Error(), "stage=") != 1 {
		t.Errorf("double-wrapped message: %q", out.Error())
	}
}

func TestWrapFillsEmptyStageInCopy(t *testing.T) {
	inner := &Error{Line: 3, Err: errors.New("x")}
	out := Wrap(StageParse, inner)
	pe := out.(*Error)
	if pe.Stage != StageParse || pe.Line != 3 {
		t.Errorf("copy not filled: %+v", pe)
	}
	if inner.Stage != "" {
		t.Error("Wrap mutated its argument")
	}
}

func TestWithFileKeepsInnermostFile(t *testing.T) {
	e := WithFile(WithFile(New(StageParse, "x"), "inner.pl"), "outer.aux")
	pe := e.(*Error)
	if pe.File != "inner.pl" {
		t.Errorf("file = %q, want inner.pl", pe.File)
	}
}

func TestWrapIterFillsBothFields(t *testing.T) {
	e := WrapIter(StageSolve, 9, errors.New("boom"))
	pe := e.(*Error)
	if pe.Stage != StageSolve || pe.Iter != 9 {
		t.Errorf("fields = %+v", pe)
	}
	// Pre-set iteration wins.
	e2 := WrapIter(StageSolve, 9, &Error{Iter: 2, Err: errors.New("boom")})
	if pe2 := e2.(*Error); pe2.Iter != 2 {
		t.Errorf("iter overwritten: %d", pe2.Iter)
	}
}

func TestUnwrapChain(t *testing.T) {
	sentinel := errors.New("sentinel")
	err := Wrap(StageSolve, fmt.Errorf("context: %w", sentinel))
	if !errors.Is(err, sentinel) {
		t.Error("errors.Is lost the sentinel through Wrap")
	}
	var pe *Error
	if !errors.As(err, &pe) || pe.Stage != StageSolve {
		t.Errorf("errors.As failed: %v", err)
	}
}
