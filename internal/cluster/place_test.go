// External test package: these tests drive internal/core, which (via the
// multilevel driver) imports internal/cluster — an in-package test would be
// an import cycle.
package cluster_test

import (
	"testing"

	"complx/internal/cluster"
	"complx/internal/core"
	"complx/internal/gen"
	"complx/internal/netlist"
	"complx/internal/netmodel"
)

func design(t *testing.T, n int, seed int64) *netlist.Netlist {
	t.Helper()
	nl, err := gen.Generate(gen.Spec{Name: "cl", NumCells: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestClusteredPlacementFlow: place coarse, expand, refine — final quality
// should be comparable to flat placement and the flow must stay legal-able.
func TestClusteredPlacementFlow(t *testing.T) {
	flat := design(t, 800, 4)
	flatRes, err := core.Place(flat, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	fine := design(t, 800, 4)
	c, err := cluster.Cluster(fine, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Place(c.Coarse, core.Options{}); err != nil {
		t.Fatal(err)
	}
	c.Expand()
	// Short refinement on the fine netlist from the expanded placement.
	refined, err := core.Place(fine, core.Options{InitialSolves: 1, MaxIterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	if refined.HPWL <= 0 {
		t.Fatal("no refined placement")
	}
	hpwl := netmodel.HPWL(fine)
	if hpwl > 1.4*flatRes.HPWL {
		t.Errorf("clustered flow HPWL %v vs flat %v", hpwl, flatRes.HPWL)
	}
}
