package cluster

import (
	"math"
	"testing"

	"complx/internal/core"
	"complx/internal/gen"
	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/netmodel"
)

func design(t *testing.T, n int, seed int64) *netlist.Netlist {
	t.Helper()
	nl, err := gen.Generate(gen.Spec{Name: "cl", NumCells: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestClusterHalvesDesign(t *testing.T) {
	nl := design(t, 1000, 1)
	c, err := Cluster(nl, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Coarse.Validate(); err != nil {
		t.Fatal(err)
	}
	// A full matching on a well-connected design should pair most cells.
	if r := c.Ratio(); r > 0.8 {
		t.Errorf("ratio = %v, want substantial coarsening", r)
	}
	// Area is conserved across clustering.
	if math.Abs(c.Coarse.MovableArea()-nl.MovableArea()) > 1e-6 {
		t.Errorf("movable area changed: %v vs %v", c.Coarse.MovableArea(), nl.MovableArea())
	}
	// Fixed cells survive untouched.
	if got, want := c.Coarse.Stats().Terminals, nl.Stats().Terminals; got != want {
		t.Errorf("terminals = %d, want %d", got, want)
	}
}

func TestClusterPreservesConnectivityDirection(t *testing.T) {
	// Two tightly bound cells and a pad: the pair clusters, the pad net
	// survives, and the intra-pair net collapses.
	b := netlist.NewBuilder("pair")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c1 := b.AddCell("c1", 1, 1)
	c2 := b.AddCell("c2", 1, 1)
	p := b.AddFixed("p", 0, 0, 1, 1)
	b.AddNet("bond", 5, []netlist.PinSpec{{Cell: c1}, {Cell: c2}})
	b.AddNet("io", 1, []netlist.PinSpec{{Cell: c1}, {Cell: p}})
	nl, _ := b.Build()
	c, err := Cluster(nl, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Coarse.NumMovable() != 1 {
		t.Fatalf("movable coarse cells = %d, want 1", c.Coarse.NumMovable())
	}
	if c.Coarse.NumNets() != 1 {
		t.Errorf("coarse nets = %d, want 1 (bond collapsed)", c.Coarse.NumNets())
	}
}

func TestMacrosAndRegionsNotClustered(t *testing.T) {
	nl, err := gen.Generate(gen.Spec{
		Name: "mx", NumCells: 300, Seed: 2,
		NumMacros: 3, MacroAreaFrac: 0.2, MovableMacros: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	nl.Regions = append(nl.Regions, netlist.Region{Name: "r", Rect: geom.Rect{XMax: 10, YMax: 10}})
	mov := nl.Movables()
	nl.Cells[mov[0]].Region = 0
	c, err := Cluster(nl, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Coarse.Stats().Macros; got != 3 {
		t.Errorf("coarse macros = %d", got)
	}
	// The constrained cell survives as its own coarse cell with the region.
	ci := c.coarseOf[mov[0]]
	if c.Coarse.Cells[ci].Region != 0 {
		t.Error("region constraint lost")
	}
	if len(c.members[membersIndex(c, ci)]) != 1 {
		t.Error("constrained cell was clustered")
	}
}

func membersIndex(c *Clustering, coarseIdx int) int {
	for g := range c.members {
		if c.coarseIndexOfGroup(g) == coarseIdx {
			return g
		}
	}
	return -1
}

func TestExpandPlacesMembersSideBySide(t *testing.T) {
	nl := design(t, 400, 3)
	c, err := Cluster(nl, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Move every coarse cell somewhere known, expand, and verify members
	// straddle the center.
	for i := range c.Coarse.Cells {
		if c.Coarse.Cells[i].Movable() {
			c.Coarse.Cells[i].SetCenter(geom.Point{X: 40, Y: 40})
		}
	}
	c.Expand()
	for g, mem := range c.members {
		if len(mem) != 2 {
			continue
		}
		cc := c.Coarse.Cells[c.coarseIndexOfGroup(g)]
		if cc.Fixed() {
			continue
		}
		a := nl.Cells[mem[0]].Center()
		b := nl.Cells[mem[1]].Center()
		mid := (a.X*nl.Cells[mem[0]].Area() + b.X*nl.Cells[mem[1]].Area()) // not exact midpoint; just check straddle
		_ = mid
		if !(a.X < 40 && b.X > 40) {
			t.Fatalf("members not side by side: %v, %v", a, b)
		}
		if a.Y != 40 || b.Y != 40 {
			t.Fatalf("members off row center: %v, %v", a, b)
		}
	}
}

// TestClusteredPlacementFlow: place coarse, expand, refine — final quality
// should be comparable to flat placement and the flow must stay legal-able.
func TestClusteredPlacementFlow(t *testing.T) {
	flat := design(t, 800, 4)
	flatRes, err := core.Place(flat, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	fine := design(t, 800, 4)
	c, err := Cluster(fine, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Place(c.Coarse, core.Options{}); err != nil {
		t.Fatal(err)
	}
	c.Expand()
	// Short refinement on the fine netlist from the expanded placement.
	refined, err := core.Place(fine, core.Options{InitialSolves: 1, MaxIterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	if refined.HPWL <= 0 {
		t.Fatal("no refined placement")
	}
	hpwl := netmodel.HPWL(fine)
	if hpwl > 1.4*flatRes.HPWL {
		t.Errorf("clustered flow HPWL %v vs flat %v", hpwl, flatRes.HPWL)
	}
}

func TestClusterRatioBudget(t *testing.T) {
	nl := design(t, 600, 5)
	half, err := Cluster(nl, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Cluster(design(t, 600, 5), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if half.Ratio() <= full.Ratio() {
		t.Errorf("ratio budget ignored: %v vs %v", half.Ratio(), full.Ratio())
	}
}
