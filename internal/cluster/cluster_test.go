package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"complx/internal/gen"
	"complx/internal/geom"
	"complx/internal/netlist"
)

func design(t *testing.T, n int, seed int64) *netlist.Netlist {
	t.Helper()
	nl, err := gen.Generate(gen.Spec{Name: "cl", NumCells: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestClusterHalvesDesign(t *testing.T) {
	nl := design(t, 1000, 1)
	c, err := Cluster(nl, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Coarse.Validate(); err != nil {
		t.Fatal(err)
	}
	// A full matching on a well-connected design should pair most cells.
	if r := c.Ratio(); r > 0.8 {
		t.Errorf("ratio = %v, want substantial coarsening", r)
	}
	// Area is conserved across clustering.
	if math.Abs(c.Coarse.MovableArea()-nl.MovableArea()) > 1e-6 {
		t.Errorf("movable area changed: %v vs %v", c.Coarse.MovableArea(), nl.MovableArea())
	}
	// Fixed cells survive untouched.
	if got, want := c.Coarse.Stats().Terminals, nl.Stats().Terminals; got != want {
		t.Errorf("terminals = %d, want %d", got, want)
	}
}

func TestClusterPreservesConnectivityDirection(t *testing.T) {
	// Two tightly bound cells and a pad: the pair clusters, the pad net
	// survives, and the intra-pair net collapses.
	b := netlist.NewBuilder("pair")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c1 := b.AddCell("c1", 1, 1)
	c2 := b.AddCell("c2", 1, 1)
	p := b.AddFixed("p", 0, 0, 1, 1)
	b.AddNet("bond", 5, []netlist.PinSpec{{Cell: c1}, {Cell: c2}})
	b.AddNet("io", 1, []netlist.PinSpec{{Cell: c1}, {Cell: p}})
	nl, _ := b.Build()
	c, err := Cluster(nl, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Coarse.NumMovable() != 1 {
		t.Fatalf("movable coarse cells = %d, want 1", c.Coarse.NumMovable())
	}
	if c.Coarse.NumNets() != 1 {
		t.Errorf("coarse nets = %d, want 1 (bond collapsed)", c.Coarse.NumNets())
	}
}

func TestMacrosAndRegionsNotClustered(t *testing.T) {
	nl, err := gen.Generate(gen.Spec{
		Name: "mx", NumCells: 300, Seed: 2,
		NumMacros: 3, MacroAreaFrac: 0.2, MovableMacros: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	nl.Regions = append(nl.Regions, netlist.Region{Name: "r", Rect: geom.Rect{XMax: 10, YMax: 10}})
	mov := nl.Movables()
	nl.Cells[mov[0]].Region = 0
	c, err := Cluster(nl, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Coarse.Stats().Macros; got != 3 {
		t.Errorf("coarse macros = %d", got)
	}
	// The constrained cell survives as its own coarse cell with the region.
	ci := c.coarseOf[mov[0]]
	if c.Coarse.Cells[ci].Region != 0 {
		t.Error("region constraint lost")
	}
	if len(c.members[membersIndex(c, ci)]) != 1 {
		t.Error("constrained cell was clustered")
	}
}

func membersIndex(c *Clustering, coarseIdx int) int {
	for g := range c.members {
		if c.coarseIndexOfGroup(g) == coarseIdx {
			return g
		}
	}
	return -1
}

func TestExpandPlacesMembersSideBySide(t *testing.T) {
	nl := design(t, 400, 3)
	c, err := Cluster(nl, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Move every coarse cell somewhere known, expand, and verify members
	// straddle the center.
	for i := range c.Coarse.Cells {
		if c.Coarse.Cells[i].Movable() {
			c.Coarse.Cells[i].SetCenter(geom.Point{X: 40, Y: 40})
		}
	}
	c.Expand()
	for g, mem := range c.members {
		if len(mem) != 2 {
			continue
		}
		cc := c.Coarse.Cells[c.coarseIndexOfGroup(g)]
		if cc.Fixed() {
			continue
		}
		a := nl.Cells[mem[0]].Center()
		b := nl.Cells[mem[1]].Center()
		mid := (a.X*nl.Cells[mem[0]].Area() + b.X*nl.Cells[mem[1]].Area()) // not exact midpoint; just check straddle
		_ = mid
		if !(a.X < 40 && b.X > 40) {
			t.Fatalf("members not side by side: %v, %v", a, b)
		}
		if a.Y != 40 || b.Y != 40 {
			t.Fatalf("members off row center: %v, %v", a, b)
		}
	}
}

func TestClusterRatioBudget(t *testing.T) {
	nl := design(t, 600, 5)
	half, err := Cluster(nl, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Cluster(design(t, 600, 5), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if half.Ratio() <= full.Ratio() {
		t.Errorf("ratio budget ignored: %v vs %v", half.Ratio(), full.Ratio())
	}
}

// TestClusterConservation pins the two invariants multilevel coarsening
// relies on (DESIGN.md §13): total movable area is preserved exactly per
// pass, and net-weight propagation keeps each net's surviving cross-cluster
// clique mass — w/(d−1) per cell pair — exact, with untouched nets keeping
// their weight bitwise.
func TestClusterConservation(t *testing.T) {
	b := netlist.NewBuilder("conserve")
	b.SetCore(geom.Rect{XMax: 60, YMax: 60})
	ids := make([]int, 40)
	for i := range ids {
		ids[i] = b.AddCell(fmt.Sprintf("c%d", i), float64(1+i%3), 1)
	}
	mc := b.AddMacro("mac", 6, 6)
	pad := b.AddFixed("pad", 0, 0, 1, 1)
	rng := rand.New(rand.NewSource(42))
	for n := 0; n < 60; n++ {
		deg := 2 + rng.Intn(5)
		seen := map[int]bool{}
		var pins []netlist.PinSpec
		for len(pins) < deg {
			ci := ids[rng.Intn(len(ids))]
			if seen[ci] {
				continue
			}
			seen[ci] = true
			pins = append(pins, netlist.PinSpec{Cell: ci})
		}
		if n%7 == 0 {
			pins = append(pins, netlist.PinSpec{Cell: mc})
		}
		if n%11 == 0 {
			pins = append(pins, netlist.PinSpec{Cell: pad})
		}
		b.AddNet(fmt.Sprintf("n%d", n), 0.5+rng.Float64(), pins)
	}
	// Parallel pair: the macro never clusters, so these two nets always land
	// on the same coarse cell pair; each must survive with its own weight.
	b.AddNet("par0", 0.3, []netlist.PinSpec{{Cell: ids[5]}, {Cell: mc, DX: 1}})
	b.AddNet("par1", 0.4, []netlist.PinSpec{{Cell: ids[5], DX: 0.2}, {Cell: mc, DX: -1}})
	b.AddUniformRows(60, 1, 1)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		nl.Cells[id].SetCenter(geom.Point{X: float64(1 + i%6*2), Y: float64(1 + i/6*2)})
	}

	movableArea := func(d *netlist.Netlist) float64 {
		var sum float64
		for i := range d.Cells {
			if !d.Cells[i].Fixed() {
				sum += d.Cells[i].Area()
			}
		}
		return sum
	}

	cl, err := Cluster(nl, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Coarse.NumMovable() >= nl.NumMovable() {
		t.Fatalf("no coarsening: %d -> %d movables", nl.NumMovable(), cl.Coarse.NumMovable())
	}
	if fine, coarse := movableArea(nl), movableArea(cl.Coarse); fine != coarse {
		t.Errorf("movable area not preserved exactly: fine %v, coarse %v", fine, coarse)
	}

	// Recompute every fine net's expected surviving clique mass from the
	// cell -> cluster mapping, independent of the implementation.
	coarseNet := map[string]*netlist.Net{}
	for ni := range cl.Coarse.Nets {
		coarseNet[cl.Coarse.Nets[ni].Name] = &cl.Coarse.Nets[ni]
	}
	var totalMass float64
	checked, unchanged := 0, 0
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		d := len(net.Pins)
		mult := map[int]int{}
		var cells []int
		for _, p := range net.Pins {
			cc := cl.coarseOf[nl.Pins[p].Cell]
			if mult[cc] == 0 {
				cells = append(cells, cc)
			}
			mult[cc]++
		}
		dp := len(cells)
		if dp < 2 {
			if coarseNet[net.Name] != nil {
				t.Errorf("net %s collapsed to %d pins but survived", net.Name, dp)
			}
			continue
		}
		// Surviving cross-cluster pairs of the fine clique, and the mass
		// they carry: cross·w/(d−1).
		intra := 0
		for _, m := range mult {
			intra += m * (m - 1) / 2
		}
		cross := d*(d-1)/2 - intra
		fineMass := float64(cross) * net.Weight / float64(d-1)
		totalMass += fineMass
		cn := coarseNet[net.Name]
		if cn == nil {
			t.Errorf("net %s (%d coarse pins) missing from coarse netlist", net.Name, dp)
			continue
		}
		if len(cn.Pins) != dp {
			t.Errorf("net %s: coarse degree %d, want %d", net.Name, len(cn.Pins), dp)
		}
		if dp == d {
			// Untouched nets keep their weight bitwise unchanged.
			if cn.Weight != net.Weight {
				t.Errorf("net %s lost no pins but weight changed: %v -> %v", net.Name, net.Weight, cn.Weight)
			}
			unchanged++
			continue
		}
		// Clique-mass identity: the coarse net spreads w'/(d'−1) over
		// d'(d'−1)/2 pairs, i.e. carries w'·d'/2 mass.
		coarseMass := cn.Weight * float64(dp) / 2
		if math.Abs(fineMass-coarseMass) > 1e-12*fineMass {
			t.Errorf("net %s: cross clique mass %v, coarse carries %v", net.Name, fineMass, coarseMass)
		}
		checked++
	}
	// The global invariant: total surviving clique mass is exact.
	var coarseTotal float64
	for ni := range cl.Coarse.Nets {
		cn := &cl.Coarse.Nets[ni]
		coarseTotal += cn.Weight * float64(len(cn.Pins)) / 2
	}
	if math.Abs(totalMass-coarseTotal) > 1e-9*totalMass {
		t.Errorf("total clique mass %v, coarse carries %v", totalMass, coarseTotal)
	}
	// Parallel 2-pin nets on one coarse pair stay independent nets, each
	// keeping its own weight (they share the pair ids[5]–macro).
	for name, w := range map[string]float64{"par0": 0.3, "par1": 0.4} {
		cn := coarseNet[name]
		if cn == nil || cn.Weight != w {
			t.Errorf("parallel net %s: got %v, want weight %v preserved", name, cn, w)
		}
	}
	if checked == 0 || unchanged == 0 {
		t.Fatalf("test design too easy: %d rescaled, %d unchanged nets", checked, unchanged)
	}

	// Multi-pass coarsening preserves area through the whole stack.
	stack, err := Coarsen(nl, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(stack) == 0 {
		t.Fatal("Coarsen produced no levels")
	}
	want := movableArea(nl)
	for k, cl := range stack {
		if got := movableArea(cl.Coarse); got != want {
			t.Errorf("level %d: movable area %v, want %v", k+1, got, want)
		}
	}
}
