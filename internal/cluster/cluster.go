// Package cluster implements heavy-edge netlist clustering, the coarsening
// substrate multilevel placers (FastPlace 3.0, mPL6) build on. Pairs of
// highly-connected movable standard cells are merged into cluster cells; the
// coarse design places faster, and Expand maps the coarse placement back to
// the original cells for fine-grained refinement.
//
// Connectivity between two cells is scored as Σ w_e/(|e|−1) over shared
// nets — the standard clique-weighting used by first-choice clustering.
package cluster

import (
	"fmt"
	"sort"

	"complx/internal/geom"
	"complx/internal/netlist"
)

// Clustering maps a fine netlist to its coarsened version.
type Clustering struct {
	Fine, Coarse *netlist.Netlist
	// coarseOf[fineCell] is the coarse cell index for every fine cell.
	coarseOf []int
	// members[coarseCell] lists the fine cells merged into it.
	members [][]int
}

// Cluster coarsens nl by greedy heavy-edge matching of movable standard
// cells. Macros, fixed cells and region-constrained cells are never
// clustered. The result contains roughly (1−ratio/2)·n movable cells for a
// full matching; ratio in (0, 1] bounds the fraction of cells considered
// for matching (1 = all).
func Cluster(nl *netlist.Netlist, ratio float64) (*Clustering, error) {
	if ratio <= 0 || ratio > 1 {
		ratio = 1
	}
	n := len(nl.Cells)
	// Connectivity scoring between pairs sharing small nets.
	type edgeKey struct{ a, b int }
	conn := make(map[edgeKey]float64)
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		d := len(net.Pins)
		if d < 2 || d > 8 {
			continue // large nets contribute negligible clique weight
		}
		w := net.Weight / float64(d-1)
		for i := 0; i < d; i++ {
			ci := nl.Pins[net.Pins[i]].Cell
			if !clusterable(nl, ci) {
				continue
			}
			for j := i + 1; j < d; j++ {
				cj := nl.Pins[net.Pins[j]].Cell
				if ci == cj || !clusterable(nl, cj) {
					continue
				}
				a, b := ci, cj
				if a > b {
					a, b = b, a
				}
				conn[edgeKey{a, b}] += w
			}
		}
	}
	type scored struct {
		a, b int
		w    float64
	}
	edges := make([]scored, 0, len(conn))
	for k, w := range conn {
		edges = append(edges, scored{k.a, k.b, w})
	}
	sort.Slice(edges, func(x, y int) bool {
		if edges[x].w != edges[y].w {
			return edges[x].w > edges[y].w
		}
		if edges[x].a != edges[y].a {
			return edges[x].a < edges[y].a
		}
		return edges[x].b < edges[y].b
	})

	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	budget := int(ratio * float64(nl.NumMovable()) / 2)
	matched := 0
	for _, e := range edges {
		if matched >= budget {
			break
		}
		if mate[e.a] >= 0 || mate[e.b] >= 0 {
			continue
		}
		mate[e.a], mate[e.b] = e.b, e.a
		matched++
	}

	// Build the coarse netlist.
	b := netlist.NewBuilder(nl.Name + "-coarse")
	b.SetCore(nl.Core)
	for _, r := range nl.Rows {
		b.AddRow(r)
	}
	for _, r := range nl.Regions {
		b.AddRegion(r.Name, r.Rect)
	}
	c := &Clustering{Fine: nl, coarseOf: make([]int, n)}
	for i := range c.coarseOf {
		c.coarseOf[i] = -1
	}
	addCoarse := func(name string, w, h float64, kind netlist.Kind, x, y float64) int {
		switch kind {
		case netlist.Terminal:
			return b.AddFixed(name, x, y, w, h)
		case netlist.Macro:
			return b.AddMacro(name, w, h)
		default:
			return b.AddCell(name, w, h)
		}
	}
	for i := 0; i < n; i++ {
		if c.coarseOf[i] >= 0 {
			continue
		}
		cell := &nl.Cells[i]
		if mate[i] < 0 {
			id := addCoarse(cell.Name, cell.W, cell.H, cell.Kind, cell.X, cell.Y)
			if id < 0 {
				break
			}
			c.coarseOf[i] = id
			c.members = append(c.members, []int{i})
			continue
		}
		j := mate[i]
		other := &nl.Cells[j]
		// Cluster cell: widths add, height is the row height (std cells
		// only are clusterable).
		id := addCoarse(cell.Name+"+"+other.Name, cell.W+other.W, cell.H, netlist.Std, 0, 0)
		if id < 0 {
			break
		}
		c.coarseOf[i] = id
		c.coarseOf[j] = id
		c.members = append(c.members, []int{i, j})
	}
	// Nets: remap pins to coarse cells, dropping nets collapsed inside one
	// cluster and duplicate pins on the same coarse cell.
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		seen := map[int]bool{}
		var pins []netlist.PinSpec
		for _, p := range net.Pins {
			cc := c.coarseOf[nl.Pins[p].Cell]
			if seen[cc] {
				continue
			}
			seen[cc] = true
			pins = append(pins, netlist.PinSpec{Cell: cc, DX: nl.Pins[p].DX, DY: nl.Pins[p].DY})
		}
		if len(pins) < 2 {
			continue
		}
		b.AddNet(net.Name, net.Weight, pins)
	}
	coarse, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	c.Coarse = coarse
	// Region constraints carry over to cluster cells (only unclustered
	// cells can be constrained, so the mapping is 1:1).
	for i := 0; i < n; i++ {
		if nl.Cells[i].Region >= 0 {
			coarse.Cells[c.coarseOf[i]].Region = nl.Cells[i].Region
		}
	}
	// Initial coarse placement from the fine one.
	for ci, mem := range c.members {
		var p geom.Point
		for _, i := range mem {
			p = p.Add(nl.Cells[i].Center())
		}
		idx := c.coarseIndexOfGroup(ci)
		coarse.Cells[idx].SetCenter(p.Scale(1 / float64(len(mem))))
	}
	return c, nil
}

// clusterable reports whether a cell may participate in matching.
func clusterable(nl *netlist.Netlist, i int) bool {
	cell := &nl.Cells[i]
	return cell.Kind == netlist.Std && cell.Region < 0
}

// coarseIndexOfGroup returns the coarse cell index of member group g (the
// groups were appended in coarse-cell creation order).
func (c *Clustering) coarseIndexOfGroup(g int) int {
	return c.coarseOf[c.members[g][0]]
}

// Ratio returns coarse cell count over fine cell count.
func (c *Clustering) Ratio() float64 {
	return float64(len(c.Coarse.Cells)) / float64(len(c.Fine.Cells))
}

// Expand writes the coarse placement back onto the fine netlist: cluster
// members are placed side by side around the cluster center.
func (c *Clustering) Expand() {
	for g, mem := range c.members {
		cc := c.Coarse.Cells[c.coarseIndexOfGroup(g)]
		if cc.Fixed() {
			continue
		}
		ctr := cc.Center()
		if len(mem) == 1 {
			c.Fine.Cells[mem[0]].SetCenter(ctr)
			continue
		}
		// Two members: split the cluster width left/right.
		a, b := &c.Fine.Cells[mem[0]], &c.Fine.Cells[mem[1]]
		total := a.W + b.W
		a.SetCenter(geom.Point{X: ctr.X - total/2 + a.W/2, Y: ctr.Y})
		b.SetCenter(geom.Point{X: ctr.X + total/2 - b.W/2, Y: ctr.Y})
	}
}
