// Package cluster implements heavy-edge netlist clustering, the coarsening
// substrate multilevel placers (FastPlace 3.0, mPL6) build on. Pairs of
// highly-connected movable standard cells are merged into cluster cells; the
// coarse design places faster, and Expand maps the coarse placement back to
// the original cells for fine-grained refinement.
//
// Connectivity between two cells is scored as Σ w_e/(|e|−1) over shared
// nets — the standard clique-weighting used by first-choice clustering.
package cluster

import (
	"fmt"
	"sort"

	"complx/internal/geom"
	"complx/internal/netlist"
)

// Clustering maps a fine netlist to its coarsened version.
type Clustering struct {
	Fine, Coarse *netlist.Netlist
	// coarseOf[fineCell] is the coarse cell index for every fine cell.
	coarseOf []int
	// members[coarseCell] lists the fine cells merged into it.
	members [][]int
}

// Cluster coarsens nl by greedy heavy-edge matching of movable standard
// cells. Macros, fixed cells and region-constrained cells are never
// clustered. The result contains roughly (1−ratio/2)·n movable cells for a
// full matching; ratio in (0, 1] bounds the fraction of cells considered
// for matching (1 = all).
func Cluster(nl *netlist.Netlist, ratio float64) (*Clustering, error) {
	if ratio <= 0 || ratio > 1 {
		ratio = 1
	}
	n := len(nl.Cells)
	// Connectivity scoring between pairs sharing small nets. Contributions
	// are collected flat and aggregated after a key sort — on large designs
	// this is severalfold faster than accumulating in a hash map, and the
	// coarsening pass is a visible slice of V-cycle wall-clock.
	type pairw struct {
		key uint64 // a<<32 | b, a < b
		w   float64
	}
	var contribs []pairw
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		d := len(net.Pins)
		if d < 2 || d > 8 {
			continue // large nets contribute negligible clique weight
		}
		w := net.Weight / float64(d-1)
		for i := 0; i < d; i++ {
			ci := nl.Pins[net.Pins[i]].Cell
			if !clusterable(nl, ci) {
				continue
			}
			for j := i + 1; j < d; j++ {
				cj := nl.Pins[net.Pins[j]].Cell
				if ci == cj || !clusterable(nl, cj) {
					continue
				}
				a, b := ci, cj
				if a > b {
					a, b = b, a
				}
				contribs = append(contribs, pairw{uint64(a)<<32 | uint64(b), w})
			}
		}
	}
	sort.Slice(contribs, func(x, y int) bool { return contribs[x].key < contribs[y].key })
	type scored struct {
		a, b int
		w    float64
	}
	var edges []scored
	for i := 0; i < len(contribs); {
		j, w := i, 0.0
		for ; j < len(contribs) && contribs[j].key == contribs[i].key; j++ {
			w += contribs[j].w
		}
		k := contribs[i].key
		edges = append(edges, scored{int(k >> 32), int(k & 0xffffffff), w})
		i = j
	}
	sort.Slice(edges, func(x, y int) bool {
		if edges[x].w != edges[y].w {
			return edges[x].w > edges[y].w
		}
		if edges[x].a != edges[y].a {
			return edges[x].a < edges[y].a
		}
		return edges[x].b < edges[y].b
	})

	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	budget := int(ratio * float64(nl.NumMovable()) / 2)
	matched := 0
	for _, e := range edges {
		if matched >= budget {
			break
		}
		if mate[e.a] >= 0 || mate[e.b] >= 0 {
			continue
		}
		mate[e.a], mate[e.b] = e.b, e.a
		matched++
	}

	// Build the coarse netlist.
	b := netlist.NewBuilder(nl.Name + "-coarse")
	b.SetCore(nl.Core)
	for _, r := range nl.Rows {
		b.AddRow(r)
	}
	for _, r := range nl.Regions {
		b.AddRegion(r.Name, r.Rect)
	}
	c := &Clustering{Fine: nl, coarseOf: make([]int, n)}
	for i := range c.coarseOf {
		c.coarseOf[i] = -1
	}
	addCoarse := func(name string, w, h float64, kind netlist.Kind, x, y float64) int {
		switch kind {
		case netlist.Terminal:
			return b.AddFixed(name, x, y, w, h)
		case netlist.Macro:
			return b.AddMacro(name, w, h)
		default:
			return b.AddCell(name, w, h)
		}
	}
	for i := 0; i < n; i++ {
		if c.coarseOf[i] >= 0 {
			continue
		}
		cell := &nl.Cells[i]
		if mate[i] < 0 {
			id := addCoarse(cell.Name, cell.W, cell.H, cell.Kind, cell.X, cell.Y)
			if id < 0 {
				break
			}
			c.coarseOf[i] = id
			c.members = append(c.members, []int{i})
			continue
		}
		j := mate[i]
		other := &nl.Cells[j]
		// Cluster cell: the exact merged area at the row height (std cells
		// only are clusterable), so Σ movable area is invariant per level
		// even when member heights differ.
		name := cell.Name + "+" + other.Name
		if len(name) > 48 {
			// Deep multi-pass stacks would otherwise double name length per
			// level; (i, j) is unique within this pass.
			name = fmt.Sprintf("cl%d+%d", i, j)
		}
		id := addCoarse(name, (cell.Area()+other.Area())/cell.H, cell.H, netlist.Std, 0, 0)
		if id < 0 {
			break
		}
		c.coarseOf[i] = id
		c.coarseOf[j] = id
		c.members = append(c.members, []int{i, j})
	}
	// Nets: remap pins to coarse cells, dropping nets collapsed inside one
	// cluster and duplicate pins on the same coarse cell. Weights are
	// rescaled so the net's surviving cross-cluster clique mass is exact:
	// a d-pin net of weight w spreads w/(d−1) over its d(d−1)/2 cell pairs;
	// pairs absorbed into one cluster vanish, and the coarse d'-pin net
	// carries w' = 2·crossMass/d' so that w'·d'/2 equals the cross mass.
	// Nets that lose no pins keep their weight bitwise unchanged.
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		d := len(net.Pins)
		seen := map[int]int{} // coarse cell -> collapsed pin multiplicity
		var pins []netlist.PinSpec
		for _, p := range net.Pins {
			cc := c.coarseOf[nl.Pins[p].Cell]
			if seen[cc] == 0 {
				pins = append(pins, netlist.PinSpec{Cell: cc, DX: nl.Pins[p].DX, DY: nl.Pins[p].DY})
			}
			seen[cc]++
		}
		dp := len(pins)
		if dp < 2 {
			continue
		}
		w := net.Weight
		if dp < d && d >= 2 {
			intraPairs := 0
			for _, m := range seen {
				intraPairs += m * (m - 1) / 2
			}
			crossPairs := d*(d-1)/2 - intraPairs
			w = 2 * net.Weight * float64(crossPairs) / (float64(d-1) * float64(dp))
		}
		b.AddNet(net.Name, w, pins)
	}
	coarse, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	c.Coarse = coarse
	// Region constraints carry over to cluster cells (only unclustered
	// cells can be constrained, so the mapping is 1:1).
	for i := 0; i < n; i++ {
		if nl.Cells[i].Region >= 0 {
			coarse.Cells[c.coarseOf[i]].Region = nl.Cells[i].Region
		}
	}
	// Initial coarse placement from the fine one.
	for ci, mem := range c.members {
		var p geom.Point
		for _, i := range mem {
			p = p.Add(nl.Cells[i].Center())
		}
		idx := c.coarseIndexOfGroup(ci)
		coarse.Cells[idx].SetCenter(p.Scale(1 / float64(len(mem))))
	}
	return c, nil
}

// clusterable reports whether a cell may participate in matching.
func clusterable(nl *netlist.Netlist, i int) bool {
	cell := &nl.Cells[i]
	return cell.Kind == netlist.Std && cell.Region < 0
}

// coarseIndexOfGroup returns the coarse cell index of member group g (the
// groups were appended in coarse-cell creation order).
func (c *Clustering) coarseIndexOfGroup(g int) int {
	return c.coarseOf[c.members[g][0]]
}

// Ratio returns coarse cell count over fine cell count.
func (c *Clustering) Ratio() float64 {
	return float64(len(c.Coarse.Cells)) / float64(len(c.Fine.Cells))
}

// Expand writes the coarse placement back onto the fine netlist: cluster
// members are laid out side by side by cumulative width, centered on the
// cluster cell's center so the member centroid lands on the cluster
// centroid the coarse solve optimized.
func (c *Clustering) Expand() {
	for g, mem := range c.members {
		cc := c.Coarse.Cells[c.coarseIndexOfGroup(g)]
		if cc.Fixed() {
			continue
		}
		ctr := cc.Center()
		if len(mem) == 1 {
			c.Fine.Cells[mem[0]].SetCenter(ctr)
			continue
		}
		total := 0.0
		for _, i := range mem {
			total += c.Fine.Cells[i].W
		}
		x := ctr.X - total/2
		for _, i := range mem {
			f := &c.Fine.Cells[i]
			f.SetCenter(geom.Point{X: x + f.W/2, Y: ctr.Y})
			x += f.W
		}
	}
}

// Coarsen builds the bottom-up coarsening stack of a multilevel V-cycle:
// repeated full-matching Cluster passes until the coarsest netlist has at
// most targetCells movable cells, maxLevels passes have run, or a pass
// stops making progress (<5% reduction — the matching has dried up on
// macros, pads and region-constrained cells). stack[k] maps level k to
// level k+1 (level 0 = the input netlist, len(stack) = coarsest level); an
// empty stack means nl is already at or below the target. The stack is a
// pure function of nl, so a resumed run rebuilds it deterministically.
func Coarsen(nl *netlist.Netlist, targetCells, maxLevels int) ([]*Clustering, error) {
	if targetCells <= 0 {
		targetCells = 10000
	}
	if maxLevels <= 0 {
		maxLevels = 6
	}
	var stack []*Clustering
	cur := nl
	for len(stack) < maxLevels && cur.NumMovable() > targetCells {
		cl, err := Cluster(cur, 1.0)
		if err != nil {
			return nil, err
		}
		if float64(cl.Coarse.NumMovable()) > 0.95*float64(cur.NumMovable()) {
			break
		}
		stack = append(stack, cl)
		cur = cl.Coarse
	}
	return stack, nil
}
