package timing

import (
	"math"
	"testing"

	"complx/internal/geom"
	"complx/internal/netlist"
)

// chain builds in -> c0 -> c1 -> ... -> out with unit spacing.
func chain(t *testing.T, n int) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("chain")
	b.SetCore(geom.Rect{XMax: 100, YMax: 10})
	prev := b.AddFixed("in", 0, 4.5, 1, 1)
	for i := 0; i < n; i++ {
		c := b.AddCell("c"+string(rune('0'+i)), 1, 1)
		b.AddNet("n"+string(rune('0'+i)), 1, []netlist.PinSpec{{Cell: prev}, {Cell: c}})
		prev = c
	}
	out := b.AddFixed("out", 99, 4.5, 1, 1)
	b.AddNet("nout", 1, []netlist.PinSpec{{Cell: prev}, {Cell: out}})
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for k, i := range nl.Movables() {
		nl.Cells[i].SetCenter(geom.Point{X: float64(10 * (k + 1)), Y: 5})
	}
	return nl
}

func TestChainArrivals(t *testing.T) {
	nl := chain(t, 3) // in(0.5) -> c0(10) -> c1(20) -> c2(30) -> out(99.5)
	a := New(nl, Options{WireDelay: 1, CellDelay: 1})
	r := a.Analyze()
	in := nl.CellByName("in")
	c0 := nl.CellByName("c0")
	c2 := nl.CellByName("c2")
	out := nl.CellByName("out")
	if r.Arrival[in] != 0 {
		t.Errorf("arrival(in) = %v", r.Arrival[in])
	}
	// in center (0.5, 5) -> c0 (10, 5): wire 9.5 + cell 1 = 10.5.
	if math.Abs(r.Arrival[c0]-10.5) > 1e-9 {
		t.Errorf("arrival(c0) = %v, want 10.5", r.Arrival[c0])
	}
	// Each chain hop adds 10 wire + 1 cell.
	if math.Abs(r.Arrival[c2]-32.5) > 1e-9 {
		t.Errorf("arrival(c2) = %v, want 32.5", r.Arrival[c2])
	}
	// out: c2 at 30 -> out at 99.5: +69.5 wire + 1 cell delay at c2.
	if math.Abs(r.Arrival[out]-103) > 1e-9 {
		t.Errorf("arrival(out) = %v, want 103", r.Arrival[out])
	}
	if math.Abs(r.MaxDelay-104) > 1e-9 {
		t.Errorf("MaxDelay = %v, want 104", r.MaxDelay)
	}
	// Everything on the single path is fully critical: slack 0.
	for _, ci := range []int{in, c0, c2, out} {
		if math.Abs(r.Slack[ci]) > 1e-9 {
			t.Errorf("slack[%d] = %v, want 0", ci, r.Slack[ci])
		}
		if r.Criticality[ci] != 1 {
			t.Errorf("criticality[%d] = %v, want 1", ci, r.Criticality[ci])
		}
	}
}

func TestSlackOnSidePath(t *testing.T) {
	// in -> a -> out (long) and in -> b -> out (short): b has slack.
	b := netlist.NewBuilder("two")
	b.SetCore(geom.Rect{XMax: 100, YMax: 100})
	in := b.AddFixed("in", 0, 49.5, 1, 1)
	ca := b.AddCell("a", 1, 1)
	cb := b.AddCell("b", 1, 1)
	out := b.AddFixed("out", 99, 49.5, 1, 1)
	b.AddNet("n1", 1, []netlist.PinSpec{{Cell: in}, {Cell: ca}})
	b.AddNet("n2", 1, []netlist.PinSpec{{Cell: ca}, {Cell: out}})
	b.AddNet("n3", 1, []netlist.PinSpec{{Cell: in}, {Cell: cb}})
	b.AddNet("n4", 1, []netlist.PinSpec{{Cell: cb}, {Cell: out}})
	nl, _ := b.Build()
	// a detours far (long path); b sits on the straight line.
	nl.Cells[ca].SetCenter(geom.Point{X: 50, Y: 95})
	nl.Cells[cb].SetCenter(geom.Point{X: 50, Y: 50})
	an := New(nl, Options{})
	r := an.Analyze()
	if r.Slack[ca] > 1e-9 {
		t.Errorf("slack(a) = %v, want 0 (critical)", r.Slack[ca])
	}
	if r.Slack[cb] <= 1 {
		t.Errorf("slack(b) = %v, want > 1", r.Slack[cb])
	}
	if r.Criticality[ca] != 1 {
		t.Errorf("criticality(a) = %v", r.Criticality[ca])
	}
	if r.Criticality[cb] >= 1 {
		t.Errorf("criticality(b) = %v, want < 1", r.Criticality[cb])
	}
	if r.WNS > 1e-9 || r.WNS < -1e-9 {
		t.Errorf("WNS = %v, want 0", r.WNS)
	}
}

func TestCycleBrokenGracefully(t *testing.T) {
	b := netlist.NewBuilder("cyc")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c1 := b.AddCell("c1", 1, 1)
	c2 := b.AddCell("c2", 1, 1)
	b.AddNet("n1", 1, []netlist.PinSpec{{Cell: c1}, {Cell: c2}})
	b.AddNet("n2", 1, []netlist.PinSpec{{Cell: c2}, {Cell: c1}})
	nl, _ := b.Build()
	nl.Cells[c1].SetCenter(geom.Point{X: 2, Y: 5})
	nl.Cells[c2].SetCenter(geom.Point{X: 8, Y: 5})
	a := New(nl, Options{})
	r := a.Analyze()
	if math.IsInf(r.MaxDelay, 0) || math.IsNaN(r.MaxDelay) {
		t.Fatalf("MaxDelay = %v", r.MaxDelay)
	}
	if r.MaxDelay <= 0 {
		t.Errorf("MaxDelay = %v, want > 0", r.MaxDelay)
	}
}

func TestCriticalPaths(t *testing.T) {
	nl := chain(t, 3)
	a := New(nl, Options{})
	paths := a.CriticalPaths(2)
	if len(paths) == 0 {
		t.Fatal("no paths found")
	}
	p := paths[0]
	if len(p.Cells) < 4 {
		t.Errorf("path too short: %v", p.Cells)
	}
	if len(p.Nets) != len(p.Cells)-1 {
		t.Errorf("nets %d for %d cells", len(p.Nets), len(p.Cells))
	}
	if p.Delay <= 0 {
		t.Errorf("delay = %v", p.Delay)
	}
	// First cell should be the fixed input (arrival 0).
	if nl.Cells[p.Cells[0]].Name != "in" {
		t.Errorf("path starts at %q", nl.Cells[p.Cells[0]].Name)
	}
}

func TestBoostAndRestoreNetWeights(t *testing.T) {
	nl := chain(t, 2)
	nets := []int{0, 1}
	old := BoostNetWeights(nl, nets, 20)
	if nl.Nets[0].Weight != 20 || nl.Nets[1].Weight != 20 {
		t.Errorf("weights = %v, %v", nl.Nets[0].Weight, nl.Nets[1].Weight)
	}
	SetNetWeights(nl, nets, old)
	if nl.Nets[0].Weight != 1 || nl.Nets[1].Weight != 1 {
		t.Error("weights not restored")
	}
}

func TestCellCriticalities(t *testing.T) {
	nl := chain(t, 3)
	a := New(nl, Options{})
	r := a.Analyze()
	gamma := CellCriticalities(nl, r, 0.5)
	if len(gamma) != nl.NumMovable() {
		t.Fatalf("len = %d", len(gamma))
	}
	for _, g := range gamma {
		if g < 1 || g > 1.5 {
			t.Errorf("gamma = %v out of [1, 1.5]", g)
		}
	}
	// All chain cells are critical: gamma = 1.5.
	if gamma[0] != 1.5 {
		t.Errorf("gamma[0] = %v, want 1.5", gamma[0])
	}
}

func TestActivityNetWeights(t *testing.T) {
	nl := chain(t, 3)
	act := make([]float64, len(nl.Cells))
	// The driver of net n0 is "in"; give it full activity.
	act[nl.CellByName("in")] = 1.0
	act[nl.CellByName("c0")] = 2.0 // clamped to 1
	old, err := ActivityNetWeights(nl, act, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Nets[0].Weight != 1.5 {
		t.Errorf("n0 weight = %v, want 1.5", nl.Nets[0].Weight)
	}
	if nl.Nets[1].Weight != 1.5 {
		t.Errorf("n1 weight = %v, want 1.5 (clamped activity)", nl.Nets[1].Weight)
	}
	// Inactive drivers leave weights unchanged.
	if nl.Nets[3].Weight != 1 {
		t.Errorf("nout weight = %v", nl.Nets[3].Weight)
	}
	SetNetWeights(nl, AllNets(nl), old)
	for i := range nl.Nets {
		if nl.Nets[i].Weight != 1 {
			t.Errorf("weight %d not restored", i)
		}
	}
}

func TestActivityNetWeightsRejectsMismatch(t *testing.T) {
	nl := chain(t, 2)
	if _, err := ActivityNetWeights(nl, []float64{1}, 1); err == nil {
		t.Error("expected error for mismatched activity slice")
	}
	for i := range nl.Nets {
		if nl.Nets[i].Weight != 1 {
			t.Errorf("weight %d modified on failed call", i)
		}
	}
}
