// Package timing implements the lightweight static timing analysis used by
// the timing-driven extension of ComPLx (paper Formula 13, §S6): a
// levelized longest-path analysis over the netlist with a linear wire-delay
// model, producing per-cell slacks, per-cell criticalities γ_i for the
// weighted penalty term, and net-weight updates for critical paths.
//
// The Bookshelf format carries no pin directions or register markings, so
// the analyzer adopts the standard convention for such netlists: the first
// pin of every net drives the remaining pins. Cycles (which arise when
// netlists contain sequential loops) are broken at back edges found during
// the depth-first ordering; the cells where edges were cut behave like
// register boundaries.
package timing

import (
	"fmt"
	"math"
	"sort"

	"complx/internal/netlist"
	"complx/internal/netmodel"
)

// Options sets the delay model.
type Options struct {
	// WireDelay is delay per unit of net HPWL. Default 1.
	WireDelay float64
	// CellDelay is the fixed delay through any cell. Default 1.
	CellDelay float64
}

func (o *Options) fill() {
	if o.WireDelay <= 0 {
		o.WireDelay = 1
	}
	if o.CellDelay <= 0 {
		o.CellDelay = 1
	}
}

// Report holds the analysis results.
type Report struct {
	// Arrival and Required are per cell (netlist index); Slack = Required −
	// Arrival.
	Arrival, Required, Slack []float64
	// Criticality in [0, 1] per cell: 1 on the most critical path.
	Criticality []float64
	// WNS is the worst (smallest) slack; TNS the sum of negative slacks
	// against the implicit deadline = longest path delay.
	WNS, TNS float64
	// MaxDelay is the longest path delay found.
	MaxDelay float64
	// Order is a topological order of cells after cycle breaking.
	Order []int
}

// Analyzer runs STA over a netlist at its current placement.
type Analyzer struct {
	nl  *netlist.Netlist
	opt Options
	// succ[c] lists (sinkCell, net) fanout edges of cell c.
	succ  [][2]int
	off   []int // CSR offsets into succ per cell
	order []int
}

// New builds an analyzer. The netlist topology is captured once; delays are
// recomputed from current positions on each Analyze call.
func New(nl *netlist.Netlist, opt Options) *Analyzer {
	opt.fill()
	a := &Analyzer{nl: nl, opt: opt}
	a.buildGraph()
	return a
}

func (a *Analyzer) buildGraph() {
	nl := a.nl
	n := len(nl.Cells)
	cnt := make([]int, n+1)
	type edge struct{ from, to, net int }
	var edges []edge
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		if len(net.Pins) < 2 {
			continue
		}
		drv := nl.Pins[net.Pins[0]].Cell
		for _, p := range net.Pins[1:] {
			snk := nl.Pins[p].Cell
			if snk == drv {
				continue
			}
			edges = append(edges, edge{drv, snk, ni})
		}
	}
	// DFS to find and drop back edges (cycle breaking).
	adj := make([][]int, n) // indices into edges
	for ei, e := range edges {
		adj[e.from] = append(adj[e.from], ei)
	}
	state := make([]int8, n) // 0 unvisited, 1 on stack, 2 done
	keep := make([]bool, len(edges))
	a.order = a.order[:0]
	type frame struct{ cell, next int }
	var stack []frame
	for s := 0; s < n; s++ {
		if state[s] != 0 {
			continue
		}
		stack = append(stack[:0], frame{s, 0})
		state[s] = 1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.cell]) {
				ei := adj[f.cell][f.next]
				f.next++
				to := edges[ei].to
				switch state[to] {
				case 0:
					keep[ei] = true
					state[to] = 1
					stack = append(stack, frame{to, 0})
				case 1:
					// back edge: drop to break the cycle
				case 2:
					keep[ei] = true
				}
				continue
			}
			state[f.cell] = 2
			a.order = append(a.order, f.cell)
			stack = stack[:len(stack)-1]
		}
	}
	// a.order is reverse-topological; reverse it.
	for i, j := 0, len(a.order)-1; i < j; i, j = i+1, j-1 {
		a.order[i], a.order[j] = a.order[j], a.order[i]
	}
	// Build CSR of kept edges.
	for ei, e := range edges {
		if keep[ei] {
			cnt[e.from+1]++
		}
	}
	for i := 0; i < n; i++ {
		cnt[i+1] += cnt[i]
	}
	a.off = cnt
	a.succ = make([][2]int, a.off[n])
	fill := make([]int, n)
	for ei, e := range edges {
		if keep[ei] {
			a.succ[a.off[e.from]+fill[e.from]] = [2]int{e.to, e.net}
			fill[e.from]++
		}
	}
}

// Analyze computes arrivals, slacks and criticalities at the current
// placement.
func (a *Analyzer) Analyze() *Report {
	nl := a.nl
	n := len(nl.Cells)
	r := &Report{
		Arrival:     make([]float64, n),
		Required:    make([]float64, n),
		Slack:       make([]float64, n),
		Criticality: make([]float64, n),
		Order:       a.order,
	}
	netDelay := make([]float64, len(nl.Nets))
	for ni := range nl.Nets {
		netDelay[ni] = a.opt.WireDelay * netmodel.NetHPWL(nl, ni)
	}
	// Forward pass: longest arrival.
	for _, c := range a.order {
		base := r.Arrival[c] + a.opt.CellDelay
		for k := a.off[c]; k < a.off[c+1]; k++ {
			to, ni := a.succ[k][0], a.succ[k][1]
			if t := base + netDelay[ni]; t > r.Arrival[to] {
				r.Arrival[to] = t
			}
		}
		if t := r.Arrival[c] + a.opt.CellDelay; t > r.MaxDelay {
			r.MaxDelay = t
		}
	}
	// Backward pass: required times against deadline = MaxDelay.
	for i := range r.Required {
		r.Required[i] = r.MaxDelay - a.opt.CellDelay
	}
	for i := len(a.order) - 1; i >= 0; i-- {
		c := a.order[i]
		for k := a.off[c]; k < a.off[c+1]; k++ {
			to, ni := a.succ[k][0], a.succ[k][1]
			if t := r.Required[to] - netDelay[ni] - a.opt.CellDelay; t < r.Required[c] {
				r.Required[c] = t
			}
		}
	}
	r.WNS = math.Inf(1)
	for i := 0; i < n; i++ {
		r.Slack[i] = r.Required[i] - r.Arrival[i]
		if r.Slack[i] < r.WNS {
			r.WNS = r.Slack[i]
		}
		if r.Slack[i] < -1e-12 {
			r.TNS += r.Slack[i]
		}
	}
	if n == 0 {
		r.WNS = 0
	}
	// Criticality: 1 − slack / maxSlack, clamped to [0, 1].
	maxSlack := 0.0
	for _, s := range r.Slack {
		if s > maxSlack {
			maxSlack = s
		}
	}
	for i, s := range r.Slack {
		if maxSlack <= 0 {
			r.Criticality[i] = 1
			continue
		}
		c := 1 - s/maxSlack
		if c < 0 {
			c = 0
		}
		if c > 1 {
			c = 1
		}
		r.Criticality[i] = c
	}
	return r
}

// Path is a cell sequence with its nets and total delay.
type Path struct {
	Cells []int
	Nets  []int
	Delay float64
}

// CriticalPaths extracts up to k maximal-delay paths by tracing the worst
// predecessor chain from the k latest-arrival endpoint cells.
func (a *Analyzer) CriticalPaths(k int) []Path {
	nl := a.nl
	r := a.Analyze()
	n := len(nl.Cells)
	// Predecessor with max arrival contribution.
	pred := make([]int, n)
	predNet := make([]int, n)
	for i := range pred {
		pred[i] = -1
		predNet[i] = -1
	}
	netDelay := make([]float64, len(nl.Nets))
	for ni := range nl.Nets {
		netDelay[ni] = a.opt.WireDelay * netmodel.NetHPWL(nl, ni)
	}
	for _, c := range a.order {
		base := r.Arrival[c] + a.opt.CellDelay
		for kk := a.off[c]; kk < a.off[c+1]; kk++ {
			to, ni := a.succ[kk][0], a.succ[kk][1]
			if t := base + netDelay[ni]; math.Abs(t-r.Arrival[to]) < 1e-9 && pred[to] < 0 {
				pred[to] = c
				predNet[to] = ni
			}
		}
	}
	// Endpoints sorted by arrival, descending.
	ends := make([]int, n)
	for i := range ends {
		ends[i] = i
	}
	sort.Slice(ends, func(x, y int) bool { return r.Arrival[ends[x]] > r.Arrival[ends[y]] })
	var paths []Path
	used := make([]bool, n)
	for _, e := range ends {
		if len(paths) >= k {
			break
		}
		if used[e] || r.Arrival[e] <= 0 {
			continue
		}
		var cells, nets []int
		for c := e; c >= 0; c = pred[c] {
			cells = append(cells, c)
			if predNet[c] >= 0 {
				nets = append(nets, predNet[c])
			}
			used[c] = true
			if pred[c] < 0 {
				break
			}
		}
		// Reverse into source→sink order.
		for i, j := 0, len(cells)-1; i < j; i, j = i+1, j-1 {
			cells[i], cells[j] = cells[j], cells[i]
		}
		for i, j := 0, len(nets)-1; i < j; i, j = i+1, j-1 {
			nets[i], nets[j] = nets[j], nets[i]
		}
		if len(cells) < 2 {
			continue
		}
		paths = append(paths, Path{Cells: cells, Nets: nets, Delay: r.Arrival[e] + a.opt.CellDelay})
	}
	return paths
}

// BoostNetWeights multiplies the weight of every listed net by factor
// (>= 1) and returns the previous weights so callers can restore them.
func BoostNetWeights(nl *netlist.Netlist, nets []int, factor float64) []float64 {
	old := make([]float64, len(nets))
	for k, ni := range nets {
		old[k] = nl.Nets[ni].Weight
		nl.Nets[ni].Weight *= factor
	}
	return old
}

// SetNetWeights assigns absolute weights to the listed nets.
func SetNetWeights(nl *netlist.Netlist, nets []int, weights []float64) {
	for k, ni := range nets {
		nl.Nets[ni].Weight = weights[k]
	}
}

// CellCriticalities maps a Report's per-cell criticalities to the movable
// vector expected by the placer's weighted penalty term (Formula 13):
// γ_i = 1 + boost·criticality_i.
func CellCriticalities(nl *netlist.Netlist, r *Report, boost float64) []float64 {
	mov := nl.Movables()
	out := make([]float64, len(mov))
	for k, i := range mov {
		out[k] = 1 + boost*r.Criticality[i]
	}
	return out
}

// ActivityNetWeights implements power-driven net weighting (the SimPL
// power-aware extension the paper cites): each net's weight is scaled by
// 1 + alpha·activity(driver), where activity is a per-cell switching
// activity factor in [0, 1] (values outside that range, including NaN, are
// clamped). Returns the previous weights for restoration via SetNetWeights
// over all nets. An activity slice whose length disagrees with the cell
// count returns an error and leaves the weights untouched.
func ActivityNetWeights(nl *netlist.Netlist, activity []float64, alpha float64) ([]float64, error) {
	if len(activity) != len(nl.Cells) {
		return nil, fmt.Errorf("timing: ActivityNetWeights got %d activities for %d cells",
			len(activity), len(nl.Cells))
	}
	old := make([]float64, len(nl.Nets))
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		old[ni] = net.Weight
		if len(net.Pins) == 0 {
			continue
		}
		drv := nl.Pins[net.Pins[0]].Cell
		a := activity[drv]
		if !(a > 0) { // also catches NaN
			a = 0
		}
		if a > 1 {
			a = 1
		}
		net.Weight *= 1 + alpha*a
	}
	return old, nil
}

// AllNets returns 0..NumNets-1, for use with SetNetWeights after
// ActivityNetWeights.
func AllNets(nl *netlist.Netlist) []int {
	out := make([]int, nl.NumNets())
	for i := range out {
		out[i] = i
	}
	return out
}
