// Package viz renders quick-look ASCII visualizations of placements:
// density heat maps, macro outlines and congestion maps. They are meant for
// terminal inspection of global placement behaviour (the textual analog of
// the paper's Figures 2 and 4).
package viz

import (
	"fmt"
	"io"
	"strings"

	"complx/internal/congest"
	"complx/internal/density"
	"complx/internal/netlist"
)

// shades orders glyphs from empty to overfull.
var shades = []byte(" .:-=+*#%@")

// shade maps v in [0, 1+] to a glyph; values above 1 saturate.
func shade(v float64) byte {
	if v < 0 {
		v = 0
	}
	idx := int(v * float64(len(shades)-1))
	if idx >= len(shades) {
		idx = len(shades) - 1
	}
	return shades[idx]
}

// DensityMap writes an ASCII heat map of movable-cell density (usage over
// target capacity per bin). Rows print top to bottom; '@' marks saturated
// (overfilled) bins and 'X' bins fully blocked by obstacles.
func DensityMap(w io.Writer, nl *netlist.Netlist, cols, rows int, target float64) {
	if cols < 1 {
		cols = 48
	}
	if rows < 1 {
		rows = 24
	}
	if target <= 0 || target > 1 {
		target = 1
	}
	g, err := density.NewGridForNetlist(nl, cols, rows, target)
	if err != nil {
		fmt.Fprintf(w, "density map unavailable: %v\n", err)
		return
	}
	g.AccumulateMovable(nl)
	fmt.Fprintf(w, "density map %dx%d (target %.2f), '@'=overfull, 'X'=blocked\n", cols, rows, target)
	var b strings.Builder
	for iy := rows - 1; iy >= 0; iy-- {
		b.Reset()
		for ix := 0; ix < cols; ix++ {
			if g.Free(ix, iy) <= 0 {
				b.WriteByte('X')
				continue
			}
			b.WriteByte(shade(g.Usage(ix, iy) / g.Capacity(ix, iy)))
		}
		fmt.Fprintln(w, b.String())
	}
}

// MacroMap writes an ASCII map of macro and fixed-object outlines: 'M' for
// movable macros, 'F' for fixed objects, '.' for cells of the grid covered
// by standard-cell area above half the target.
func MacroMap(w io.Writer, nl *netlist.Netlist, cols, rows int) {
	if cols < 1 {
		cols = 48
	}
	if rows < 1 {
		rows = 24
	}
	grid := make([]byte, cols*rows)
	for i := range grid {
		grid[i] = ' '
	}
	binW := nl.Core.Width() / float64(cols)
	binH := nl.Core.Height() / float64(rows)
	mark := func(c *netlist.Cell, glyph byte) {
		r := c.Rect().Intersect(nl.Core)
		if r.Empty() {
			return
		}
		x0 := int((r.XMin - nl.Core.XMin) / binW)
		x1 := int((r.XMax - nl.Core.XMin) / binW)
		y0 := int((r.YMin - nl.Core.YMin) / binH)
		y1 := int((r.YMax - nl.Core.YMin) / binH)
		for iy := y0; iy <= y1 && iy < rows; iy++ {
			for ix := x0; ix <= x1 && ix < cols; ix++ {
				if iy >= 0 && ix >= 0 {
					grid[iy*cols+ix] = glyph
				}
			}
		}
	}
	// Standard-cell density as light background.
	g, err := density.NewGridForNetlist(nl, cols, rows, 1)
	if err != nil {
		fmt.Fprintf(w, "macro map unavailable: %v\n", err)
		return
	}
	g.ResetUsage()
	for _, i := range nl.Movables() {
		if nl.Cells[i].Kind == netlist.Std {
			g.AddUsage(nl.Cells[i].Rect())
		}
	}
	for iy := 0; iy < rows; iy++ {
		for ix := 0; ix < cols; ix++ {
			if g.Capacity(ix, iy) > 0 && g.Usage(ix, iy) > 0.5*g.Capacity(ix, iy) {
				grid[iy*cols+ix] = '.'
			}
		}
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		switch {
		case c.Kind == netlist.Macro:
			mark(c, 'M')
		case c.Fixed():
			mark(c, 'F')
		}
	}
	fmt.Fprintf(w, "macro map %dx%d: M=movable macro, F=fixed, .=dense std cells\n", cols, rows)
	for iy := rows - 1; iy >= 0; iy-- {
		fmt.Fprintln(w, string(grid[iy*cols:(iy+1)*cols]))
	}
}

// CongestionMap writes an ASCII RUDY congestion heat map.
func CongestionMap(w io.Writer, nl *netlist.Netlist, cols, rows int, capacity float64) {
	if cols < 1 {
		cols = 48
	}
	if rows < 1 {
		rows = 24
	}
	m, err := congest.NewMap(nl.Core, cols, rows, capacity)
	if err != nil {
		fmt.Fprintf(w, "congestion map unavailable: %v\n", err)
		return
	}
	m.AddNetlist(nl)
	if capacity <= 0 {
		// Self-calibrate to the average so mid-gray is the mean.
		st := m.Stats()
		if st.Avg > 0 {
			if m2, err := congest.NewMap(nl.Core, cols, rows, 2*st.Avg); err == nil {
				m2.AddNetlist(nl)
				m = m2
			}
		}
	}
	st := m.Stats()
	fmt.Fprintf(w, "congestion map %dx%d (max %.2f, avg %.2f, overflow %.1f%%)\n",
		cols, rows, st.Max, st.Avg, 100*st.OverflowFrac)
	var b strings.Builder
	for iy := rows - 1; iy >= 0; iy-- {
		b.Reset()
		for ix := 0; ix < cols; ix++ {
			b.WriteByte(shade(m.Congestion(ix, iy)))
		}
		fmt.Fprintln(w, b.String())
	}
}
