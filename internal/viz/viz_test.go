package viz

import (
	"bytes"
	"strings"
	"testing"

	"complx/internal/gen"
	"complx/internal/geom"
	"complx/internal/netlist"
)

func design(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl, err := gen.Generate(gen.Spec{
		Name: "viz", NumCells: 400, Seed: 1,
		NumMacros: 3, MacroAreaFrac: 0.2, MovableMacros: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestShade(t *testing.T) {
	if shade(0) != ' ' {
		t.Errorf("shade(0) = %q", shade(0))
	}
	if shade(1) != '@' {
		t.Errorf("shade(1) = %q", shade(1))
	}
	if shade(5) != '@' {
		t.Errorf("shade(5) = %q", shade(5))
	}
	if shade(-1) != ' ' {
		t.Errorf("shade(-1) = %q", shade(-1))
	}
}

func TestDensityMap(t *testing.T) {
	nl := design(t)
	var buf bytes.Buffer
	DensityMap(&buf, nl, 20, 10, 1.0)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 11 { // header + 10 rows
		t.Fatalf("lines = %d", len(lines))
	}
	for _, l := range lines[1:] {
		if len(l) != 20 {
			t.Errorf("row width = %d", len(l))
		}
	}
	// Cells start clustered at homes: some ink must appear.
	if !strings.ContainsAny(buf.String(), ".:-=+*#%@") {
		t.Error("density map is blank")
	}
}

func TestDensityMapBlockedBins(t *testing.T) {
	b := netlist.NewBuilder("blocked")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c := b.AddCell("c", 1, 1)
	f := b.AddFixed("f", 0, 0, 5, 5)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}, {Cell: f}})
	nl, _ := b.Build()
	nl.Cells[c].SetCenter(geom.Point{X: 8, Y: 8})
	var buf bytes.Buffer
	DensityMap(&buf, nl, 4, 4, 1.0)
	if !strings.Contains(buf.String(), "X") {
		t.Error("blocked bins not marked")
	}
}

func TestMacroMap(t *testing.T) {
	nl := design(t)
	var buf bytes.Buffer
	MacroMap(&buf, nl, 30, 15)
	out := buf.String()
	if !strings.Contains(out, "M") {
		t.Error("no movable macros drawn")
	}
	if !strings.Contains(out, "F") {
		t.Error("no fixed objects drawn")
	}
}

func TestCongestionMap(t *testing.T) {
	nl := design(t)
	var buf bytes.Buffer
	CongestionMap(&buf, nl, 20, 10, 0) // self-calibrated
	out := buf.String()
	if !strings.Contains(out, "congestion map") {
		t.Error("missing header")
	}
	if !strings.ContainsAny(out, ".:-=+*#%@") {
		t.Error("congestion map is blank")
	}
}

func TestDefaultDims(t *testing.T) {
	nl := design(t)
	var buf bytes.Buffer
	DensityMap(&buf, nl, 0, 0, 0)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 25 { // header + default 24 rows
		t.Errorf("default rows = %d", len(lines)-1)
	}
}
