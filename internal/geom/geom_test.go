package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.L1(q); got != 8 {
		t.Errorf("L1 = %v, want 8", got)
	}
	if got := p.L2(q); math.Abs(got-math.Sqrt(40)) > 1e-12 {
		t.Errorf("L2 = %v", got)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	want := Rect{1, 2, 5, 7}
	if r != want {
		t.Errorf("NewRect = %v, want %v", r, want)
	}
}

func TestRectBasics(t *testing.T) {
	r := RectWH(1, 2, 3, 4)
	if r.Width() != 3 || r.Height() != 4 {
		t.Errorf("dims = %v x %v", r.Width(), r.Height())
	}
	if r.Area() != 12 {
		t.Errorf("Area = %v", r.Area())
	}
	if c := r.Center(); c != (Point{2.5, 4}) {
		t.Errorf("Center = %v", c)
	}
	if !r.Contains(Point{1, 2}) || !r.Contains(Point{4, 6}) {
		t.Error("boundary points should be contained")
	}
	if r.Contains(Point{0.99, 3}) {
		t.Error("outside point reported contained")
	}
}

func TestRectEmpty(t *testing.T) {
	if !(Rect{3, 0, 1, 5}).Empty() {
		t.Error("inverted rect should be empty")
	}
	if (Rect{0, 0, 1, 1}).Empty() {
		t.Error("unit rect should not be empty")
	}
	if got := (Rect{3, 0, 1, 5}).Area(); got != 0 {
		t.Errorf("empty rect area = %v", got)
	}
	// Zero-width rect is empty.
	if !(Rect{1, 0, 1, 5}).Empty() {
		t.Error("zero-width rect should be empty")
	}
}

func TestIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	got := a.Intersect(b)
	want := Rect{5, 5, 10, 10}
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if a.OverlapArea(b) != 25 {
		t.Errorf("OverlapArea = %v", a.OverlapArea(b))
	}
	c := Rect{20, 20, 30, 30}
	if a.Intersects(c) {
		t.Error("disjoint rects reported intersecting")
	}
	if a.OverlapArea(c) != 0 {
		t.Error("disjoint overlap area nonzero")
	}
	// Touching rects share no area.
	d := Rect{10, 0, 20, 10}
	if a.Intersects(d) {
		t.Error("touching rects reported intersecting")
	}
}

func TestUnion(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{2, 3, 4, 5}
	got := a.Union(b)
	want := Rect{0, 0, 4, 5}
	if got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
	empty := Rect{5, 5, 5, 5}
	if a.Union(empty) != a || empty.Union(a) != a {
		t.Error("union with empty should return the other rect")
	}
}

func TestContainsRect(t *testing.T) {
	outer := Rect{0, 0, 10, 10}
	if !outer.ContainsRect(Rect{1, 1, 9, 9}) {
		t.Error("inner rect should be contained")
	}
	if outer.ContainsRect(Rect{1, 1, 11, 9}) {
		t.Error("protruding rect should not be contained")
	}
	if !outer.ContainsRect(outer) {
		t.Error("rect should contain itself")
	}
}

func TestExpandTranslate(t *testing.T) {
	r := Rect{1, 1, 3, 3}
	if got := r.Expand(1); got != (Rect{0, 0, 4, 4}) {
		t.Errorf("Expand = %v", got)
	}
	if got := r.Translate(2, -1); got != (Rect{3, 0, 5, 2}) {
		t.Errorf("Translate = %v", got)
	}
}

func TestClampPoint(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	cases := []struct{ in, want Point }{
		{Point{5, 5}, Point{5, 5}},
		{Point{-3, 5}, Point{0, 5}},
		{Point{12, 20}, Point{10, 10}},
	}
	for _, c := range cases {
		if got := r.ClampPoint(c.in); got != c.want {
			t.Errorf("ClampPoint(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClampRect(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	// Fully inside: unchanged.
	s := Rect{2, 2, 4, 4}
	if got := r.ClampRect(s); got != s {
		t.Errorf("ClampRect inside = %v", got)
	}
	// Off to the left: pushed to x=0.
	if got := r.ClampRect(Rect{-3, 2, -1, 4}); got != (Rect{0, 2, 2, 4}) {
		t.Errorf("ClampRect left = %v", got)
	}
	// Off top-right: pushed back in.
	if got := r.ClampRect(Rect{9, 9, 12, 12}); got != (Rect{7, 7, 10, 10}) {
		t.Errorf("ClampRect topright = %v", got)
	}
	// Larger than r: aligned to lower edge.
	if got := r.ClampRect(Rect{3, 3, 20, 5}); got.XMin != 0 {
		t.Errorf("oversized ClampRect = %v", got)
	}
}

func TestClampRectProperty(t *testing.T) {
	r := Rect{0, 0, 100, 50}
	f := func(x, y, w, h float64) bool {
		w = math.Mod(math.Abs(w), 99) + 0.5
		h = math.Mod(math.Abs(h), 49) + 0.5
		x = math.Mod(x, 1000)
		y = math.Mod(y, 1000)
		s := RectWH(x, y, w, h)
		got := r.ClampRect(s)
		// Size preserved.
		if math.Abs(got.Width()-w) > 1e-9 || math.Abs(got.Height()-h) > 1e-9 {
			return false
		}
		return r.ContainsRect(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterval(t *testing.T) {
	iv := Interval{2, 5}
	if iv.Len() != 3 {
		t.Errorf("Len = %v", iv.Len())
	}
	if !iv.Contains(2) || !iv.Contains(5) || iv.Contains(5.01) {
		t.Error("Contains wrong")
	}
	if iv.Clamp(1) != 2 || iv.Clamp(6) != 5 || iv.Clamp(3) != 3 {
		t.Error("Clamp wrong")
	}
	if got := iv.Overlap(Interval{4, 9}); got != 1 {
		t.Errorf("Overlap = %v", got)
	}
	if got := iv.Overlap(Interval{6, 9}); got != 0 {
		t.Errorf("disjoint Overlap = %v", got)
	}
}

func TestClampAndOverlapLen(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Error("Clamp wrong")
	}
	if OverlapLen(0, 5, 3, 8) != 2 {
		t.Error("OverlapLen wrong")
	}
	if OverlapLen(0, 5, 5, 8) != 0 {
		t.Error("touching OverlapLen should be 0")
	}
}

func TestIntersectCommutativeProperty(t *testing.T) {
	f := func(a1, b1, w1, h1, a2, b2, w2, h2 float64) bool {
		norm := func(v float64) float64 { return math.Mod(v, 100) }
		r := RectWH(norm(a1), norm(b1), math.Abs(norm(w1)), math.Abs(norm(h1)))
		s := RectWH(norm(a2), norm(b2), math.Abs(norm(w2)), math.Abs(norm(h2)))
		return r.OverlapArea(s) == s.OverlapArea(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
