// Package geom provides the planar geometry primitives used throughout the
// placer: points, rectangles and closed intervals with the overlap, clamp
// and distance arithmetic that placement algorithms rely on.
//
// All coordinates are float64 and use the conventional screen-independent
// orientation: x grows to the right, y grows upward. Rectangles are
// axis-aligned and represented by their lower-left and upper-right corners.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p with both coordinates multiplied by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// L1 returns the Manhattan (L1) distance between p and q.
func (p Point) L1(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// L2 returns the Euclidean distance between p and q.
func (p Point) L2(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle spanning [XMin, XMax] × [YMin, YMax].
// A rectangle with XMin > XMax or YMin > YMax is empty.
type Rect struct {
	XMin, YMin, XMax, YMax float64
}

// NewRect returns the rectangle with the given corners, normalizing the
// coordinate order so the result is never inverted.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{x1, y1, x2, y2}
}

// RectWH returns the rectangle with lower-left corner (x, y), width w and
// height h.
func RectWH(x, y, w, h float64) Rect { return Rect{x, y, x + w, y + h} }

// Width returns the horizontal extent of r (possibly negative when empty).
func (r Rect) Width() float64 { return r.XMax - r.XMin }

// Height returns the vertical extent of r (possibly negative when empty).
func (r Rect) Height() float64 { return r.YMax - r.YMin }

// Area returns the area of r, or 0 when r is empty.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Empty reports whether r encloses no area.
func (r Rect) Empty() bool { return r.XMax <= r.XMin || r.YMax <= r.YMin }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.XMin + r.XMax) / 2, (r.YMin + r.YMax) / 2}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.XMin && p.X <= r.XMax && p.Y >= r.YMin && p.Y <= r.YMax
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.XMin >= r.XMin && s.XMax <= r.XMax && s.YMin >= r.YMin && s.YMax <= r.YMax
}

// Intersect returns the overlap of r and s; the result may be empty.
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		XMin: math.Max(r.XMin, s.XMin),
		YMin: math.Max(r.YMin, s.YMin),
		XMax: math.Min(r.XMax, s.XMax),
		YMax: math.Min(r.YMax, s.YMax),
	}
}

// Intersects reports whether r and s share positive area.
func (r Rect) Intersects(s Rect) bool { return !r.Intersect(s).Empty() }

// OverlapArea returns the area shared by r and s.
func (r Rect) OverlapArea(s Rect) float64 { return r.Intersect(s).Area() }

// Union returns the smallest rectangle containing both r and s. Empty
// operands are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		XMin: math.Min(r.XMin, s.XMin),
		YMin: math.Min(r.YMin, s.YMin),
		XMax: math.Max(r.XMax, s.XMax),
		YMax: math.Max(r.YMax, s.YMax),
	}
}

// Expand returns r grown by d on every side (shrunk when d < 0).
func (r Rect) Expand(d float64) Rect {
	return Rect{r.XMin - d, r.YMin - d, r.XMax + d, r.YMax + d}
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{r.XMin + dx, r.YMin + dy, r.XMax + dx, r.YMax + dy}
}

// ClampPoint returns the point of r closest to p.
func (r Rect) ClampPoint(p Point) Point {
	return Point{Clamp(p.X, r.XMin, r.XMax), Clamp(p.Y, r.YMin, r.YMax)}
}

// ClampRect returns s translated by the smallest displacement that places it
// inside r. When s is larger than r in a dimension, s is aligned to r's lower
// edge in that dimension.
func (r Rect) ClampRect(s Rect) Rect {
	dx, dy := 0.0, 0.0
	switch {
	case s.Width() > r.Width() || s.XMin < r.XMin:
		dx = r.XMin - s.XMin
	case s.XMax > r.XMax:
		dx = r.XMax - s.XMax
	}
	switch {
	case s.Height() > r.Height() || s.YMin < r.YMin:
		dy = r.YMin - s.YMin
	case s.YMax > r.YMax:
		dy = r.YMax - s.YMax
	}
	return s.Translate(dx, dy)
}

func (r Rect) String() string {
	return fmt.Sprintf("[%g, %g]x[%g, %g]", r.XMin, r.XMax, r.YMin, r.YMax)
}

// Interval is a closed 1-D interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Len returns the length of the interval (possibly negative when inverted).
func (iv Interval) Len() float64 { return iv.Hi - iv.Lo }

// Contains reports whether v lies inside the interval (boundary inclusive).
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Clamp returns v limited to the interval.
func (iv Interval) Clamp(v float64) float64 { return Clamp(v, iv.Lo, iv.Hi) }

// Overlap returns the length of the overlap between iv and other, or 0.
func (iv Interval) Overlap(other Interval) float64 {
	lo := math.Max(iv.Lo, other.Lo)
	hi := math.Min(iv.Hi, other.Hi)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Clamp returns v limited to [lo, hi]. It assumes lo <= hi.
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// OverlapLen returns the length of the overlap of [a1, a2] and [b1, b2].
func OverlapLen(a1, a2, b1, b2 float64) float64 {
	lo := math.Max(a1, b1)
	hi := math.Min(a2, b2)
	if hi <= lo {
		return 0
	}
	return hi - lo
}
