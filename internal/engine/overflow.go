package engine

import (
	"context"

	"complx/internal/chkpt"
	"complx/internal/density"
	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/netmodel"
	"complx/internal/obs"
	"complx/internal/perr"
	"complx/internal/resilience"
)

// DualStep is one dual step of the overflow-driven loop: the anchor
// placement and per-movable multipliers for the next primal solve, or Done
// when the dual step itself declares convergence (e.g. the NLP baseline's
// vanishing projection distance).
type DualStep struct {
	Anchors []geom.Point
	Lambdas []float64
	Done    bool
}

// DualStepper produces the dual step for an overflow-driven iteration. The
// grid is the iteration's measurement grid, already accumulated at the
// current placement, so steppers that spread on the same resolution (the
// FastPlace-CS cell shifter) can reuse it. Steppers hold per-run state
// (hold weights, penalty multipliers) and must not be shared between runs.
type DualStepper interface {
	Step(ctx context.Context, iter int, grid *density.Grid) (DualStep, error)
}

// OverflowResult reports an overflow-driven run.
type OverflowResult struct {
	Iterations int
	Converged  bool
	HPWL       float64
	Overflow   float64
	// Cancelled reports that the run was stopped by context cancellation;
	// the placement holds the last completed iterate.
	Cancelled bool
	// Resumed reports that the run was primed from a checkpoint.
	Resumed bool
	// Recovery logs checkpoint-save failures (the overflow loops have no
	// solver fallback ladder). Never nil; empty when nothing failed.
	Recovery *resilience.Log
}

// OverflowLoop is the iteration skeleton shared by the quadratic +
// local-spreading placer family (FastPlace-CS, RQL) and the nonlinear
// penalty method (NLP): per iteration, measure the density overflow on a
// fresh grid, stop when it falls below the threshold, otherwise take a
// dual step (spreading producing anchors and multipliers) and an anchored
// primal solve. All run state lives in the loop value and its stepper, so
// distinct loops may run concurrently on distinct netlists.
type OverflowLoop struct {
	Netlist *netlist.Netlist
	Primal  PrimalSolver
	Dual    DualStepper
	// Obs, when non-nil, records the per-iteration overflow/HPWL trace and
	// the dual/primal stage spans. The per-iteration HPWL shown in the trace
	// is measured only when an observer is attached (a read-only
	// computation, so observed runs stay bitwise identical).
	Obs *obs.Observer

	// MaxIterations bounds the measure/spread/solve loop (required > 0).
	MaxIterations int
	// StopOverflow ends the loop when the overflow ratio drops below it.
	StopOverflow float64
	// TargetDensity is the utilization limit γ of the measurement grid.
	TargetDensity float64
	// NX, NY are the measurement grid dimensions.
	NX, NY int
	// InitialSolves is the number of unconstrained primal solves before
	// the loop (0 = none).
	InitialSolves int

	// Design and Algorithm describe the run for checkpoints; optional
	// metadata.
	Design, Algorithm string
	// Checkpoint, when non-nil, receives a complete state snapshot every
	// IntervalOrDefault-th completed iteration and best-effort on
	// cancellation; failed saves are logged, never fatal.
	Checkpoint CheckpointSink
	// Resume, when non-nil, primes the loop from a saved snapshot: the
	// placement and the dual stepper's numeric state (hold weights,
	// penalty multipliers) are restored, the initial solves are skipped,
	// and iteration Resume.Iter+1 runs next.
	Resume *chkpt.State
}

// captureState builds a snapshot of the loop at the end of iteration iter
// (after that iteration's primal solve).
func (l *OverflowLoop) captureState(iter int) *chkpt.State {
	return &chkpt.State{
		Design:    l.Design,
		Algorithm: l.Algorithm,
		Kind:      chkpt.KindOverflow,
		Iter:      iter,
		Positions: l.Netlist.SnapshotPositions(),
		DualState: captureCodec(l.Dual),
	}
}

// primeResume restores the loop from l.Resume so the next iteration to run
// is Resume.Iter+1, bitwise identical to the uninterrupted run.
func (l *OverflowLoop) primeResume(res *OverflowResult) error {
	st := l.Resume
	if st.Kind != chkpt.KindOverflow {
		return perr.New(perr.StageCheckpoint,
			"engine: checkpoint kind %q cannot resume an overflow loop", st.Kind)
	}
	if err := l.Netlist.RestorePositions(st.Positions); err != nil {
		return perr.Wrap(perr.StageCheckpoint, err)
	}
	if err := restoreCodec(l.Dual, st.DualState); err != nil {
		return perr.Wrap(perr.StageCheckpoint, err)
	}
	res.Resumed = true
	res.Iterations = st.Iter
	l.Obs.AddCount(obs.MetricResumes, 1)
	return nil
}

// Run executes the overflow-driven loop. On ordinary errors it returns
// (nil, err); on cancellation it returns the result so far — with HPWL
// measured and Cancelled set — together with the wrapped context error.
func (l *OverflowLoop) Run(ctx context.Context) (*OverflowResult, error) {
	nl := l.Netlist
	res := &OverflowResult{Recovery: &resilience.Log{}}
	ckpt := newCheckpointer(l.Checkpoint, res.Recovery)
	cancelExit := func(iter int, cause error) (*OverflowResult, error) {
		res.Cancelled = true
		ckpt.flush()
		res.HPWL = netmodel.HPWL(nl)
		return res, perr.WrapIter(perr.StageCancel, iter, cause)
	}
	startIter := 1
	if l.Resume != nil {
		if err := l.primeResume(res); err != nil {
			return nil, err
		}
		startIter = l.Resume.Iter + 1
	} else {
		for i := 0; i < l.InitialSolves; i++ {
			if err := l.Primal.Solve(ctx, nil, nil); err != nil {
				if ctx.Err() != nil {
					return cancelExit(0, err)
				}
				return nil, perr.Wrap(perr.StageSolve, err)
			}
		}
		if ckpt != nil {
			ckpt.set(0, l.captureState(0))
		}
	}
	for k := startIter; k <= l.MaxIterations; k++ {
		grid, err := density.NewGridForNetlist(nl, l.NX, l.NY, l.TargetDensity)
		if err != nil {
			return nil, perr.WrapIter(perr.StageProject, k, err)
		}
		grid.AccumulateMovable(nl)
		res.Overflow = grid.OverflowRatio()
		res.Iterations = k
		if l.Obs != nil {
			// HPWL here is a read-only measurement taken only for the trace;
			// unobserved runs skip it entirely.
			l.Obs.RecordIteration(obs.IterSample{
				Iter: k, Overflow: res.Overflow, HPWL: netmodel.HPWL(nl),
			})
		}
		if res.Overflow < l.StopOverflow {
			res.Converged = true
			break
		}
		dualSpan := l.Obs.StartSpan("dual_step")
		step, err := l.Dual.Step(ctx, k, grid)
		dualSpan.End()
		if err != nil {
			if ctx.Err() != nil {
				return cancelExit(k, err)
			}
			return nil, perr.WrapIter(perr.StageProject, k, err)
		}
		if step.Done {
			res.Converged = true
			break
		}
		if step.Lambdas != nil {
			l.Obs.RecordPseudoWeights(step.Lambdas)
		}
		solveSpan := l.Obs.StartSpan("solve")
		err = l.Primal.Solve(ctx, step.Anchors, step.Lambdas)
		solveSpan.End()
		if err != nil {
			if ctx.Err() != nil {
				return cancelExit(k, err)
			}
			return nil, perr.WrapIter(perr.StageSolve, k, err)
		}
		// End of iteration k: deposit a complete snapshot.
		if ckpt != nil {
			ckpt.set(k, l.captureState(k))
		}
	}
	res.HPWL = netmodel.HPWL(nl)
	return res, nil
}
