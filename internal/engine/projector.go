package engine

import (
	"context"
	"fmt"
	"math"

	"complx/internal/congest"
	"complx/internal/density"
	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/obs"
	"complx/internal/region"
	"complx/internal/shred"
	"complx/internal/spread"
)

// SpreadProjector is the paper's feasibility projection P_C (Formula 9): a
// SimPL-style look-ahead legalization over a density grid, with macro
// shredding, optional SimPLR-style congestion-driven inflation, and region
// snapping. The grid follows a coarse-to-fine schedule (1/8 of the finest
// resolution, doubling every six iterations) unless pinned to the finest
// grid. A SpreadProjector holds per-run state (the shredder and the
// routing-capacity calibration) and must not be shared between concurrent
// runs; build one per run with NewSpreadProjector.
type SpreadProjector struct {
	// TargetDensity is the utilization limit γ in (0, 1].
	TargetDensity float64
	// FinestGrid disables grid coarsening (Table 1 ablation).
	FinestGrid bool
	// OptimalLeaf selects the exact 1-D PAV spreading in projection leaves.
	OptimalLeaf bool
	// Routability enables congestion-driven item inflation before each
	// projection; RoutingCapacity is the routing supply per unit area (0
	// self-calibrates on first use and persists); RoutabilityAlpha scales
	// the inflation (0 → 1).
	Routability      bool
	RoutingCapacity  float64
	RoutabilityAlpha float64
	// Obs, when non-nil, is forwarded to the spreader so it can count
	// sweeps and processed regions.
	Obs *obs.Observer

	nl       *netlist.Netlist
	shredder *shred.Shredder
	finestNX int
}

// NewSpreadProjector builds the projector for nl: movable macros are
// shredded into row-height pieces and the finest grid resolution is derived
// from the item count, capped at gridMax (0 → 192).
func NewSpreadProjector(nl *netlist.Netlist, targetDensity float64, gridMax int) *SpreadProjector {
	if targetDensity <= 0 || targetDensity > 1 {
		targetDensity = 1
	}
	if gridMax <= 0 {
		gridMax = 192
	}
	shredder := shred.New(nl, targetDensity)
	finestNX, _ := density.AutoResolution(shredder.NumItems(), 2.5, gridMax)
	return &SpreadProjector{
		TargetDensity: targetDensity,
		nl:            nl,
		shredder:      shredder,
		finestNX:      finestNX,
	}
}

// FinestNX returns the finest grid resolution of the schedule.
func (p *SpreadProjector) FinestNX() int { return p.finestNX }

// CaptureState implements StateCodec: the only numeric per-run state is the
// self-calibrated routing capacity of the routability extension (nil when
// never calibrated), so a resumed run reuses the original calibration
// instead of re-deriving one from mid-run congestion.
func (p *SpreadProjector) CaptureState() []float64 {
	if p.RoutingCapacity == 0 {
		return nil
	}
	return []float64{p.RoutingCapacity}
}

// RestoreState implements StateCodec.
func (p *SpreadProjector) RestoreState(state []float64) error {
	if len(state) != 1 {
		return fmt.Errorf("engine: SpreadProjector state wants 1 value, checkpoint carries %d", len(state))
	}
	p.RoutingCapacity = state[0]
	return nil
}

// Project runs one feasibility projection at the iteration's grid
// resolution and returns the anchors plus grid-bound overflow closures.
func (p *SpreadProjector) Project(ctx context.Context, iter int) (*Projection, error) {
	nl := p.nl
	nx := gridDim(iter, p.finestNX, p.FinestGrid)
	grid, err := density.NewGridForNetlist(nl, nx, nx, p.TargetDensity)
	if err != nil {
		return nil, err
	}
	proj := spread.NewProjector(grid, spread.Options{OptimalLeaf: p.OptimalLeaf, Obs: p.Obs})
	items := p.shredder.Items()
	if p.Routability {
		if err := p.inflateItems(items, nx); err != nil {
			return nil, err
		}
	}
	pts, err := proj.ProjectCtx(ctx, items)
	if err != nil {
		return nil, err
	}
	anchors, err := p.shredder.Interpolate(pts)
	if err != nil {
		return nil, err
	}
	region.SnapAnchors(nl, anchors)
	return &Projection{
		Anchors: anchors,
		GridNX:  nx,
		Finest:  nx == p.finestNX,
		Overflow: func() float64 {
			grid.AccumulateMovable(nl)
			return grid.OverflowRatio()
		},
		AnchorOverflow: func() (float64, error) {
			return anchorOverflow(nl, grid, anchors)
		},
	}, nil
}

// inflateItems applies SimPLR-style congestion-driven inflation: item
// dimensions are scaled by sqrt of the per-cell inflation factor, so item
// area grows by the factor. The routing capacity self-calibrates on first
// use so the initial average congestion is ~0.7, and the calibrated value
// persists in p for the rest of the run.
func (p *SpreadProjector) inflateItems(items []spread.Item, nx int) error {
	nl := p.nl
	if p.RoutingCapacity <= 0 {
		// Calibrate against a unit-capacity map: congestion there equals raw
		// demand density, so capacity = avg/0.7 yields ~0.7 average
		// congestion.
		probe, err := congest.NewMap(nl.Core, nx, nx, 1)
		if err != nil {
			return err
		}
		probe.AddNetlist(nl)
		p.RoutingCapacity = math.Max(probe.Stats().Avg/0.7, 1e-12)
	}
	cm, err := congest.NewMap(nl.Core, nx, nx, p.RoutingCapacity)
	if err != nil {
		return err
	}
	cm.AddNetlist(nl)
	alpha := p.RoutabilityAlpha
	if alpha <= 0 {
		alpha = 1
	}
	factors := cm.InflationFactors(nl, alpha, 2)
	for i := range items {
		f := math.Sqrt(factors[p.shredder.Owner(i)])
		items[i].W *= f
		items[i].H *= f
	}
	return nil
}

// RefineProjector decorates a Projector with a post-projection refinement
// hook (the "P_C += FastPlace-DP" ablation of Table 1): after the inner
// projection, the netlist is temporarily positioned at the anchors, the
// hook may improve them in place, and the refined anchors replace the
// originals. The working placement is restored afterwards.
type RefineProjector struct {
	Inner Projector
	NL    *netlist.Netlist
	// Refine is called with the netlist positioned at the anchors.
	Refine func(nl *netlist.Netlist) error
}

// CaptureState forwards to the inner projector's StateCodec (nil when the
// inner projector holds no checkpointable state).
func (r *RefineProjector) CaptureState() []float64 {
	if sc, ok := r.Inner.(StateCodec); ok {
		return sc.CaptureState()
	}
	return nil
}

// RestoreState forwards to the inner projector's StateCodec.
func (r *RefineProjector) RestoreState(state []float64) error {
	if sc, ok := r.Inner.(StateCodec); ok {
		return sc.RestoreState(state)
	}
	return fmt.Errorf("engine: inner projector cannot restore checkpoint state")
}

// Project runs the inner projection, then the refinement hook.
func (r *RefineProjector) Project(ctx context.Context, iter int) (*Projection, error) {
	pr, err := r.Inner.Project(ctx, iter)
	if err != nil {
		return pr, err
	}
	if err := refineAnchors(r.NL, pr.Anchors, r.Refine); err != nil {
		return nil, err
	}
	return pr, nil
}

// refineAnchors runs the hook on the netlist positioned at the anchors and
// reads the refined locations back, restoring the working placement.
func refineAnchors(nl *netlist.Netlist, anchors []geom.Point, hook func(*netlist.Netlist) error) error {
	saved := nl.Positions()
	if err := nl.SetPositions(anchors); err != nil {
		return err
	}
	err := hook(nl)
	if err == nil {
		copy(anchors, nl.Positions())
	}
	if rerr := nl.SetPositions(saved); rerr != nil && err == nil {
		err = rerr
	}
	return err
}

// anchorOverflow measures the density overflow ratio of an anchor
// placement on the given grid.
func anchorOverflow(nl *netlist.Netlist, grid *density.Grid, anchors []geom.Point) (float64, error) {
	saved := nl.Positions()
	if err := nl.SetPositions(anchors); err != nil {
		return 0, err
	}
	grid.AccumulateMovable(nl)
	ov := grid.OverflowRatio()
	if err := nl.SetPositions(saved); err != nil {
		return 0, err
	}
	return ov, nil
}

// gridDim implements the coarse-to-fine grid schedule: the projection grid
// starts at 1/8 of the finest resolution and doubles every six iterations
// (SimPL's accuracy ramp); FinestGrid pins it to the finest resolution.
func gridDim(iter, finest int, finestOnly bool) int {
	if finestOnly {
		return finest
	}
	shift := 3 - (iter-1)/6
	if shift < 0 {
		shift = 0
	}
	nx := finest >> uint(shift)
	if nx < 8 {
		nx = 8
	}
	if nx > finest {
		nx = finest
	}
	return nx
}
