// Package engine provides the pluggable primal-dual placement engine that
// underlies both the ComPLx placer (internal/core) and the baseline placers
// (internal/baseline).
//
// The package owns the iteration skeleton of the paper's Algorithm 1 —
// dual step (feasibility projection), primal step (anchored interconnect
// minimization), multiplier update, convergence test and statistics
// emission — and delegates every policy decision to a small interface:
//
//   - PrimalSolver minimizes the Lagrangian at fixed anchors (quadratic
//     B2B, log-sum-exp, or p-norm instantiations live in primal.go);
//   - Projector produces the C-feasible anchor placement P_C (the
//     spreading-based projector and the FastPlace-DP refinement decorator
//     live in projector.go);
//   - Schedule updates the multiplier λ (ComPLx Formula 12 and the SimPL
//     linear ramp live in schedule.go);
//   - Monitor observes per-iteration statistics.
//
// Loop is the full ComPLx-style loop with duality-gap convergence;
// OverflowLoop (overflow.go) is the simpler overflow-driven skeleton shared
// by the quadratic + local-spreading baselines (FastPlace-CS, RQL, NLP).
//
// Both loops are fully reentrant — all state lives in the loop value — and
// cancellable: the context is observed by the CG inner iterations, the
// nonlinear line searches and the projection's per-region sweeps, so a run
// stops within one inner sweep of cancellation. On cancellation Loop.Run
// still finalizes the best C-feasible placement found so far and returns it
// together with the wrapped context error, so callers always hold a usable
// placement.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"complx/internal/chkpt"
	"complx/internal/faultinject"
	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/netmodel"
	"complx/internal/obs"
	"complx/internal/perr"
	"complx/internal/region"
	"complx/internal/resilience"
	"complx/internal/sparse"
	"complx/internal/spread"
)

// PrimalSolver minimizes the simplified Lagrangian
// L°(x, y, λ) = Φ(x, y) + Σ λ_i ‖(x_i, y_i) − (x°_i, y°_i)‖₁ over the
// movable cells of its netlist, updating positions in place. anchors and
// lambdas are indexed in netlist.Movables order; both nil requests the
// unconstrained interconnect-only solve (λ = 0). Implementations must honor
// ctx cooperatively (at worst once per inner iteration).
type PrimalSolver interface {
	Solve(ctx context.Context, anchors []geom.Point, lambdas []float64) error
}

// Relaxer is optionally implemented by primal solvers that can retry with
// relaxed numerics after a non-finite failure (see Loop's graceful
// degradation). Relax reconfigures the solver for the retry.
type Relaxer interface {
	Relax()
}

// KernelTimer is optionally implemented by primal solvers that track kernel
// wall-clock time. KernelTimes returns the cumulative system-assembly and
// linear/nonlinear solve durations since construction.
type KernelTimer interface {
	KernelTimes() (assembly, solve time.Duration)
}

// PrecondStatser is optionally implemented by primal solvers whose inner
// solve is preconditioned CG. PrecondStats returns the cumulative CG inner
// iteration count and preconditioner setup/refresh wall-clock since
// construction, plus the resolved preconditioner name.
type PrecondStatser interface {
	PrecondStats() (cgIters int, setup time.Duration, name string)
}

// Projection is the result of one dual step: the C-feasible anchor
// placement plus lazy measurement closures bound to the projection grid.
// The closures are lazy because the loop must interleave them with other
// measurements in a fixed order (overflow is measured at the lower-bound
// placement after the multiplier update, anchor overflow only on
// finest-grid iterations) without re-deriving the grid.
type Projection struct {
	// Anchors are the projected movable-cell centers, in Movables order.
	Anchors []geom.Point
	// GridNX is the projection grid resolution used this iteration.
	GridNX int
	// Finest reports whether this iteration ran at the finest grid
	// resolution (where the upper bound is trusted for result selection).
	Finest bool
	// Overflow accumulates the current placement on the projection grid
	// and returns its density overflow ratio.
	Overflow func() float64
	// AnchorOverflow measures the residual overflow of the anchor
	// placement itself on the projection grid.
	AnchorOverflow func() (float64, error)
}

// Projector produces the feasibility projection P_C for one iteration.
// Implementations read the current placement from the netlist they were
// constructed over.
type Projector interface {
	Project(ctx context.Context, iter int) (*Projection, error)
}

// Schedule is the multiplier update policy. First computes the initial
// (λ₁, h) from the first iteration's interconnect cost Φ and penalty Π;
// Next maps the previous λ to the next using the additive scale h and the
// current and previous penalties.
type Schedule interface {
	First(phi, pi float64) (lambda, h float64)
	Next(lambda, h, pi, piPrev float64) float64
}

// Monitor observes per-iteration statistics.
type Monitor interface {
	OnIteration(IterStats)
}

// MonitorFunc adapts a function to the Monitor interface.
type MonitorFunc func(IterStats)

// OnIteration calls f.
func (f MonitorFunc) OnIteration(st IterStats) { f(st) }

// IterStats records one global placement iteration (Figure 1 data).
type IterStats struct {
	Iter   int
	Lambda float64
	// Phi is the interconnect cost Φ (weighted HPWL) of the lower-bound
	// placement; PhiUpper of the anchor (C-feasible) placement.
	Phi, PhiUpper float64
	// Pi is the L1 distance to the projection, L the Lagrangian Φ + λΠ.
	Pi, L float64
	// Overflow is the density overflow ratio of the lower-bound placement.
	Overflow float64
	// GridNX is the projection grid resolution used.
	GridNX int
	// Level is the multilevel V-cycle level the iteration ran at (0 for
	// flat placement and the finest level, higher = coarser).
	Level int
	// Member is the portfolio member the iteration belongs to (0 for flat
	// runs and for the portfolio's unperturbed base member).
	Member int

	// ProjectTime is the wall-clock of this iteration's feasibility
	// projection (grid build, spreading, interpolation, refinement).
	ProjectTime time.Duration
	// AssemblyTime and SolveTime are the kernel durations spent since the
	// previous iteration's stats emission (so iteration k reports the
	// primal solve that ended iteration k−1; iteration 1 reports the
	// initial interconnect-only solves). Zero when the primal solver does
	// not implement KernelTimer.
	AssemblyTime, SolveTime time.Duration
	// CGIters and PrecondTime are the CG inner iterations and preconditioner
	// setup/refresh wall-clock spent since the previous stats emission, on
	// the same delta schedule as AssemblyTime/SolveTime. Zero when the primal
	// solver does not implement PrecondStatser.
	CGIters     int
	PrecondTime time.Duration
}

// SelfConsistency aggregates the Formula 11 check (paper §S2).
type SelfConsistency struct {
	// Total checks performed (one per iteration after the first).
	Total int
	// Consistent: premise and conclusion both held.
	Consistent int
	// Inconsistent: premise held, conclusion failed.
	Inconsistent int
	// PremiseFailed: the sufficient condition was not satisfied.
	PremiseFailed int
}

// ConsistentFrac returns the fraction of checks that were self-consistent.
func (s SelfConsistency) ConsistentFrac() float64 {
	if s.Total == 0 {
		return 1
	}
	return float64(s.Consistent) / float64(s.Total)
}

// Result summarizes a placement run.
type Result struct {
	Iterations  int
	Converged   bool
	FinalLambda float64
	// HPWL is the unweighted HPWL of the final placement; WHPWL the
	// net-weighted value.
	HPWL, WHPWL float64
	// GapFinal is the last relative duality gap; BestUpper the lowest
	// anchor-placement Φ seen during the run.
	GapFinal, BestUpper float64
	History             []IterStats
	SelfCons            SelfConsistency
	// Kernel timing breakdown: system assembly, CG solves, and feasibility
	// projection (grid build + spreading + interpolation). Zero for the
	// LSE/PNorm primal steps, which do not use the quadratic solver.
	AssemblyTime, SolveTime, ProjectionTime time.Duration
	// CGIters is the total CG inner iterations, PrecondTime the total
	// preconditioner setup/refresh wall-clock, and Precond the resolved
	// preconditioner name ("jacobi", "ssor", "ic0", "mg"). Zero/empty when
	// the primal solver does not implement PrecondStatser.
	CGIters     int
	PrecondTime time.Duration
	Precond     string
	// Cancelled reports that the run was stopped by context cancellation;
	// the placement holds the best C-feasible iterate reached before the
	// cancellation (the same selection rule as a completed run).
	Cancelled bool
	// Resumed reports that the run was primed from a checkpoint instead of
	// running its initial interconnect solves.
	Resumed bool
	// Recovery is the structured fallback-ladder log: one event per solver
	// recovery attempt (and per failed checkpoint save). Never nil; empty
	// when no recovery was needed.
	Recovery *resilience.Log
	// Portfolio summarizes the portfolio search that produced this result;
	// nil for flat (single-member) runs. Filled by internal/portfolio.
	Portfolio *PortfolioStats
}

// PortfolioStats summarizes a portfolio/restart search: how many members
// ran, which one won, and how much culling/reseeding the synchronization
// rounds performed. Scores are the final scalarized overflow-weighted HPWL
// per member (lower is better; +Inf for members that never produced a
// placement).
type PortfolioStats struct {
	Members, Rounds int
	Winner          int
	WinnerVariant   string
	Culls, Reseeds  int
	Scores          []float64
}

// Loop is the pluggable ComPLx-style primal-dual loop. Every field with a
// zero default is filled by Run; Netlist, Primal, Projector and Schedule
// are required. A Loop value holds all run state, so distinct Loop values
// may run concurrently on distinct netlists; a single Loop must not be
// shared between goroutines.
type Loop struct {
	Netlist   *netlist.Netlist
	Primal    PrimalSolver
	Projector Projector
	Schedule  Schedule
	// Monitor observes per-iteration statistics; nil disables.
	Monitor Monitor
	// Obs, when non-nil, records the iteration trace, pipeline spans and
	// pseudonet multiplier statistics. Instrumentation only reads placement
	// state, so observed runs are bitwise identical to unobserved ones.
	Obs *obs.Observer

	// MaxIterations bounds global placement iterations (default 80).
	MaxIterations int
	// InitialSolves is the number of unconstrained interconnect solves
	// before the first projection (default 5).
	InitialSolves int
	// MinIterations before convergence may be declared (default 8).
	MinIterations int
	// GapTol is the relative duality-gap convergence threshold (default
	// 0.08); PiTol stops when Π falls below PiTol·Π₁ (default 0.02).
	GapTol, PiTol float64
	// LambdaScale is the per-movable multiplier scale (macro area ratio ×
	// criticality, paper §5); nil means uniform 1.
	LambdaScale []float64

	// Design and Algorithm describe the run for checkpoints and error
	// messages; both are optional metadata.
	Design, Algorithm string
	// Level is the multilevel V-cycle level this loop solves (0 = finest /
	// flat). It is stamped into every IterStats, iteration sample and
	// checkpoint, and a Resume snapshot must carry the same level.
	Level int
	// Member is the portfolio member index this loop runs as (0 outside a
	// portfolio). Stamped into IterStats and iteration samples; unlike
	// Level it is pure observability metadata and is not checkpointed —
	// the portfolio's member table owns that association.
	Member int
	// WarmStart skips the initial interconnect-only solves and instead
	// starts the primal-dual iterations directly from the netlist's current
	// placement — the multilevel refinement entry point, where the
	// interpolated coarse placement seeds the first projection. Ignored
	// when Resume is set (a resume restores its own iterate).
	WarmStart bool
	// Checkpoint, when non-nil, receives a complete state snapshot every
	// IntervalOrDefault-th completed iteration and best-effort on
	// cancellation. A failed save is logged in Result.Recovery, never
	// fatal. Nil disables checkpointing at one branch per iteration.
	Checkpoint CheckpointSink
	// Resume, when non-nil, primes the loop from a saved snapshot: the
	// placement, multiplier schedule, result-selection state and history
	// are restored, the initial solves are skipped, and iteration
	// Resume.Iter+1 runs next. A resumed run is bitwise identical to the
	// uninterrupted one (pinned by the resume-determinism golden tests).
	Resume *chkpt.State
	// RecoveryPolicy overrides the solver fallback ladder; nil selects
	// resilience.DefaultPolicy.
	RecoveryPolicy *resilience.Policy

	// run state
	mov        []int
	lastFinite []geom.Point
	relaxCount int
	esc        *resilience.Escalator
}

func (l *Loop) fill() {
	if l.MaxIterations <= 0 {
		l.MaxIterations = 80
	}
	if l.InitialSolves <= 0 {
		l.InitialSolves = 5
	}
	if l.MinIterations <= 0 {
		l.MinIterations = 8
	}
	if l.GapTol <= 0 {
		l.GapTol = 0.08
	}
	if l.PiTol <= 0 {
		l.PiTol = 0.02
	}
}

// kernelTimes reads the primal solver's cumulative kernel durations, when
// it exposes them.
func (l *Loop) kernelTimes() (assembly, solve time.Duration) {
	if kt, ok := l.Primal.(KernelTimer); ok {
		return kt.KernelTimes()
	}
	return 0, 0
}

// precondStats reads the primal solver's cumulative CG/preconditioner
// statistics, when it exposes them.
func (l *Loop) precondStats() (cgIters int, setup time.Duration, name string) {
	if ps, ok := l.Primal.(PrecondStatser); ok {
		return ps.PrecondStats()
	}
	return 0, 0, ""
}

// solveStep runs one primal solve under the solver fallback ladder: when
// the solve reports (or produces) non-finite values, the escalator walks
// the declarative recovery policy — restore the last finite snapshot, relax
// the solver numerics, restart from the projection anchors, damp λ — until
// an attempt succeeds or the ladder's attempt budget is exhausted, at which
// point a stage=recover error surfaces. Every attempt is recorded in the
// run's recovery log and the labeled recovery_attempts metric.
//
// damp, when non-nil, is called with the relaxed_restart rung's λ factor so
// the loop's multiplier schedule continues from the damped value.
func (l *Loop) solveStep(ctx context.Context, iter int, anchors []geom.Point, lambdas []float64, damp func(factor float64)) error {
	nl := l.Netlist
	attempt := func() error {
		err := l.Primal.Solve(ctx, anchors, lambdas)
		if err == nil && !finitePositions(nl, l.mov) {
			err = fmt.Errorf("engine: placement went non-finite after primal solve: %w", sparse.ErrNotFinite)
		}
		return err
	}
	err := attempt()
	for err != nil && errors.Is(err, sparse.ErrNotFinite) && ctx.Err() == nil {
		step, ok := l.esc.Next(iter, err)
		if !ok {
			return perr.WrapIter(perr.StageRecover, iter,
				fmt.Errorf("engine: recovery ladder exhausted after %d attempts: %w", l.esc.Log().Attempts(), err))
		}
		if aerr := l.applyRecovery(step.Action, anchors, lambdas, damp); aerr != nil {
			return perr.WrapIter(perr.StageSolve, iter, aerr)
		}
		err = attempt()
		l.esc.Outcome(err == nil)
	}
	if err != nil {
		return perr.WrapIter(perr.StageSolve, iter, err)
	}
	l.lastFinite = nl.SnapshotPositions()
	return nil
}

// applyRecovery executes one ladder rung's action before the retry.
func (l *Loop) applyRecovery(a resilience.Action, anchors []geom.Point, lambdas []float64, damp func(float64)) error {
	nl := l.Netlist
	switch {
	case a.Reanchor && anchors != nil:
		// Restart from the last projection: a C-feasible, finite placement
		// with a different (better-spread) geometry than the snapshot.
		if err := nl.SetPositions(anchors); err != nil {
			return err
		}
	case a.Restore || a.Reanchor:
		if err := nl.RestorePositions(l.lastFinite); err != nil {
			return err
		}
	}
	if a.Relax {
		if r, ok := l.Primal.(Relaxer); ok {
			r.Relax()
			l.relaxCount++
		}
	}
	if f := a.LambdaDamp; f > 0 && f != 1 {
		if damp != nil {
			damp(f)
		}
		for i := range lambdas {
			lambdas[i] *= f
		}
	}
	return nil
}

// Run executes the primal-dual loop until convergence, iteration
// exhaustion, error, or cancellation, and leaves the netlist at the best
// C-feasible placement. On ordinary errors it returns (nil, err); on
// cancellation it finalizes the best placement reached so far and returns
// it together with the wrapped context error (Result.Cancelled is set), so
// the caller can still use — and legalize — the partial result.
func (l *Loop) Run(ctx context.Context) (*Result, error) {
	l.fill()
	nl := l.Netlist
	l.mov = nl.Movables()
	l.relaxCount = 0
	policy := resilience.DefaultPolicy()
	if l.RecoveryPolicy != nil {
		policy = *l.RecoveryPolicy
	}
	l.esc = resilience.NewEscalator(policy, l.Obs)
	if l.LambdaScale != nil && len(l.LambdaScale) != len(l.mov) {
		return nil, perr.New(perr.StageValidate, "engine: LambdaScale has %d entries for %d movables",
			len(l.LambdaScale), len(l.mov))
	}

	res := &Result{Recovery: l.esc.Log()}
	// Multiplier-schedule and result-selection state. Grouped in a struct
	// so checkpoint capture and resume priming see every scalar the next
	// iteration depends on.
	var s loopState
	s.bestUpper = math.Inf(1)
	// bestFine tracks the lowest-Φ anchor placement among finest-grid
	// iterations: the projection there measures feasibility at full
	// accuracy, so that iterate is the best C-feasible result of the run
	// (the paper's refined convergence criterion reads the result from the
	// best upper bound).
	s.bestFine = math.Inf(1)
	ckpt := newCheckpointer(l.Checkpoint, l.esc.Log())

	// finish applies the run's result-selection rule — best finest-grid
	// anchors, else the last anchors, else the current positions — and
	// fills the final metrics. Shared by the normal exit and the
	// cancellation exit.
	finish := func() error {
		final := s.bestFineAnchors
		if final == nil {
			final = s.prevAnchors
		}
		if final == nil {
			final = nl.Positions()
		}
		res.BestUpper = s.bestUpper
		res.AssemblyTime, res.SolveTime = l.kernelTimes()
		res.CGIters, res.PrecondTime, res.Precond = l.precondStats()
		return finalize(nl, res, final)
	}
	// cancelExit saves the last complete-iteration snapshot (best effort),
	// finalizes the best-so-far placement and reports the cancellation
	// cause, wrapped with the stage and iteration.
	cancelExit := func(iter int, cause error) (*Result, error) {
		res.Cancelled = true
		ckpt.flush()
		if err := finish(); err != nil {
			return nil, err
		}
		return res, perr.WrapIter(perr.StageCancel, iter, cause)
	}

	startIter := 1
	if l.Resume != nil {
		if err := l.primeResume(res, &s); err != nil {
			return nil, err
		}
		startIter = l.Resume.Iter + 1
	} else {
		l.lastFinite = nl.SnapshotPositions()
		if !l.WarmStart {
			// Initial interconnect-only iterations.
			initSpan := l.Obs.StartSpan("initial_solves")
			for i := 0; i < l.InitialSolves; i++ {
				if err := l.solveStep(ctx, 0, nil, nil, nil); err != nil {
					initSpan.End()
					if ctx.Err() != nil {
						return cancelExit(0, err)
					}
					return nil, err
				}
			}
			initSpan.End()
		}
		if ckpt != nil {
			ckpt.set(0, l.captureState(0, &s, res))
		}
	}

	var lastAsm, lastSolve, lastPre time.Duration
	var lastCG int

	for k := startIter; k <= l.MaxIterations; k++ {
		if fi := faultinject.Active(); fi != nil {
			if err := fi.Fire(faultinject.EngineIteration, l.Design); err != nil {
				if ctx.Err() != nil {
					return cancelExit(k, err)
				}
				return nil, perr.WrapIter(perr.StageSolve, k, err)
			}
			if err := ctx.Err(); err != nil {
				return cancelExit(k, err)
			}
		}
		tProj := time.Now()
		projSpan := l.Obs.StartSpan("project")
		pr, err := l.Projector.Project(ctx, k)
		projSpan.End()
		if err != nil {
			if ctx.Err() != nil {
				return cancelExit(k, err)
			}
			return nil, perr.WrapIter(perr.StageProject, k, err)
		}
		projTime := time.Since(tProj)
		res.ProjectionTime += projTime
		l.Obs.AddSeconds(obs.MetricProjectionSeconds, projTime)
		anchors := pr.Anchors

		curPos := nl.Positions()
		pi := spread.L1Distance(curPos, anchors)
		phi := netmodel.WeightedHPWL(nl)
		phiUpper, err := evalAt(nl, anchors)
		if err != nil {
			return nil, perr.WrapIter(perr.StageProject, k, err)
		}

		// Multiplier schedule.
		if k == 1 {
			if pi <= 1e-12 {
				// Already feasible: done before any penalized solve.
				res.Converged = true
				res.Iterations = 0
				res.AssemblyTime, res.SolveTime = l.kernelTimes()
				res.CGIters, res.PrecondTime, res.Precond = l.precondStats()
				if err := finalize(nl, res, anchors); err != nil {
					return nil, err
				}
				return res, nil
			}
			s.lambda, s.h = l.Schedule.First(phi, pi)
			s.piFirst = pi
		} else {
			s.lambda = l.Schedule.Next(s.lambda, s.h, pi, s.piPrev)
		}
		s.piPrev = pi

		// Self-consistency check (Formula 11) against the previous iterate.
		if s.prevPos != nil {
			res.SelfCons.Total++
			premise := spread.L1Distance(s.prevPos, s.prevAnchors) > spread.L1Distance(curPos, s.prevAnchors)
			if !premise {
				res.SelfCons.PremiseFailed++
			} else if spread.L1Distance(s.prevPos, anchors) > spread.L1Distance(curPos, anchors) {
				res.SelfCons.Consistent++
			} else {
				res.SelfCons.Inconsistent++
			}
		}
		s.prevPos, s.prevAnchors = curPos, anchors

		asm, slv := l.kernelTimes()
		cg, pre, _ := l.precondStats()
		st := IterStats{
			Iter: k, Lambda: s.lambda,
			Phi: phi, PhiUpper: phiUpper,
			Pi: pi, L: phi + s.lambda*pi,
			Overflow: pr.Overflow(),
			GridNX:   pr.GridNX,
			Level:    l.Level,
			Member:   l.Member,

			ProjectTime:  projTime,
			AssemblyTime: asm - lastAsm,
			SolveTime:    slv - lastSolve,
			CGIters:      cg - lastCG,
			PrecondTime:  pre - lastPre,
		}
		lastAsm, lastSolve = asm, slv
		lastCG, lastPre = cg, pre
		res.History = append(res.History, st)
		if l.Monitor != nil {
			l.Monitor.OnIteration(st)
		}
		l.Obs.RecordIteration(obs.IterSample{
			Iter: st.Iter, Lambda: st.Lambda,
			Phi: st.Phi, PhiUpper: st.PhiUpper,
			Pi: st.Pi, L: st.L,
			Overflow: st.Overflow, GridNX: st.GridNX,
			Level:           st.Level,
			Member:          st.Member,
			ProjectSeconds:  st.ProjectTime.Seconds(),
			AssemblySeconds: st.AssemblyTime.Seconds(),
			SolveSeconds:    st.SolveTime.Seconds(),
			PrecondSeconds:  st.PrecondTime.Seconds(),
			CGIterations:    st.CGIters,
		})

		if phiUpper < s.bestUpper {
			s.bestUpper = phiUpper
		}
		if pr.Finest {
			// Rank finest-grid iterates by their ISPD-style scaled cost:
			// anchor wirelength inflated by the anchors' own residual
			// overflow (the approximate projection may leave some).
			ov, err := pr.AnchorOverflow()
			if err != nil {
				return nil, perr.WrapIter(perr.StageProject, k, err)
			}
			score := phiUpper * (1 + ov)
			if score < s.bestFine {
				s.bestFine = score
				s.bestFineAnchors = anchors
			}
		}
		gap := 0.0
		if phiUpper > 0 {
			gap = (phiUpper - phi) / phiUpper
		}
		res.GapFinal = gap
		res.Iterations = k
		res.FinalLambda = s.lambda
		if k >= l.MinIterations && (gap < l.GapTol || pi < l.PiTol*s.piFirst) {
			res.Converged = true
			break
		}

		// Primal step: anchored interconnect solve.
		lambdas := make([]float64, len(l.mov))
		for i := range lambdas {
			sc := 1.0
			if l.LambdaScale != nil {
				sc = l.LambdaScale[i]
			}
			lambdas[i] = s.lambda * sc
		}
		l.Obs.RecordPseudoWeights(lambdas)
		solveSpan := l.Obs.StartSpan("solve")
		err = l.solveStep(ctx, k, anchors, lambdas, func(f float64) { s.lambda *= f })
		solveSpan.End()
		if err != nil {
			if ctx.Err() != nil {
				return cancelExit(k, err)
			}
			return nil, err
		}
		// End of iteration k: deposit a complete snapshot (flushed every
		// interval-th iteration and on cancellation).
		if ckpt != nil {
			ckpt.set(k, l.captureState(k, &s, res))
		}
	}

	// The result is read from the best C-feasible iterate measured at the
	// finest projection grid (paper §4's refined criterion); earlier
	// coarse-grid upper bounds under-measure infeasibility and are tracked
	// only for statistics. Runs that never reach the finest grid fall back
	// to the last anchors.
	if err := finish(); err != nil {
		return nil, err
	}
	return res, nil
}

// finalize applies the chosen anchor placement and fills the result metrics.
func finalize(nl *netlist.Netlist, res *Result, anchors []geom.Point) error {
	if err := nl.SetPositions(anchors); err != nil {
		return perr.Wrap(perr.StageProject, err)
	}
	region.SnapPlacement(nl)
	res.HPWL = netmodel.HPWL(nl)
	res.WHPWL = netmodel.WeightedHPWL(nl)
	return nil
}

// finitePositions reports whether every movable cell position is finite.
func finitePositions(nl *netlist.Netlist, mov []int) bool {
	for _, i := range mov {
		c := &nl.Cells[i]
		if math.IsNaN(c.X) || math.IsNaN(c.Y) || math.IsInf(c.X, 0) || math.IsInf(c.Y, 0) {
			return false
		}
	}
	return true
}

// evalAt returns the weighted HPWL with movable centers temporarily set to
// the given positions.
func evalAt(nl *netlist.Netlist, pos []geom.Point) (float64, error) {
	saved := nl.Positions()
	if err := nl.SetPositions(pos); err != nil {
		return 0, err
	}
	v := netmodel.WeightedHPWL(nl)
	if err := nl.SetPositions(saved); err != nil {
		return 0, err
	}
	return v, nil
}
