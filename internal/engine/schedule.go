package engine

import "math"

// ComPLxSchedule implements the paper's Formula 12 multiplier update:
// λ_{k+1} = min(c·λ_k, λ_k + (Π_{k+1}/Π_k)·h) with λ₁ = Φ/(100·Π) and
// h = 100·λ₁. Setting h to Φ/Π makes the multiplicative cap govern the
// early iterations and the Π-proportional term self-regulate the later
// ones. The cap uses 1.5 instead of the paper's suggested 2: 50% growth per
// iteration converges to slightly better wirelength on the synthetic suites
// at the same iteration counts.
type ComPLxSchedule struct{}

// First computes λ₁ = Φ/(100·Π) and h = 100·λ₁.
func (ComPLxSchedule) First(phi, pi float64) (lambda, h float64) {
	lambda = phi / (100 * pi)
	return lambda, 100 * lambda
}

// Next applies Formula 12 with the 1.5× growth cap.
func (ComPLxSchedule) Next(lambda, h, pi, piPrev float64) float64 {
	ratio := 1.0
	if piPrev > 0 {
		ratio = pi / piPrev
	}
	return math.Min(1.5*lambda, lambda+ratio*h)
}

// SimPLSchedule grows λ by a fixed increment per iteration — the
// pseudonet-weight schedule of the SimPL special case (paper §5 casts
// SimPL as ComPLx with a linear ramp). h/12 reproduces SimPL's gentler,
// non-adaptive growth at the ~40–60 iteration convergence range SimPL
// reports. The initial multiplier is shared with ComPLxSchedule.
type SimPLSchedule struct{}

// First matches ComPLxSchedule.First: λ₁ = Φ/(100·Π), h = 100·λ₁.
func (SimPLSchedule) First(phi, pi float64) (lambda, h float64) {
	return ComPLxSchedule{}.First(phi, pi)
}

// Next ramps λ linearly: λ_{k+1} = λ_k + h/12.
func (SimPLSchedule) Next(lambda, h, pi, piPrev float64) float64 {
	return lambda + h/12
}
