package engine

import (
	"context"
	"math"
	"time"

	"complx/internal/geom"
	"complx/internal/lse"
	"complx/internal/netlist"
	"complx/internal/qp"
)

// QuadraticPrimal is the anchored quadratic primal solver (paper §5): one
// B2B (or clique/star) linearized system per dimension, solved by
// Jacobi-PCG with the L1 anchor penalty stamped as pseudonets. It owns a
// reusable qp.Solver — incremental assembly and CG workspaces persist
// across iterations — and implements Relaxer by rebuilding the solver with
// a relaxed linearization floor and CG tolerance (the engine's graceful
// degradation after a non-finite solve), and KernelTimer by accumulating
// the solver's metrics including those of retired (pre-relaxation) solvers.
type QuadraticPrimal struct {
	nl      *netlist.Netlist
	opt     qp.Options
	solver  *qp.Solver
	retired qp.Metrics
}

// NewQuadraticPrimal builds the quadratic primal solver for nl. The
// netlist's structure must not change afterwards; positions may.
func NewQuadraticPrimal(nl *netlist.Netlist, opt qp.Options) *QuadraticPrimal {
	return &QuadraticPrimal{nl: nl, opt: opt, solver: qp.NewSolver(nl, opt)}
}

// Solve runs one anchored quadratic step. Both anchors and lambdas nil
// requests the unconstrained interconnect solve.
func (q *QuadraticPrimal) Solve(ctx context.Context, anchors []geom.Point, lambdas []float64) error {
	var qa *qp.Anchors
	if anchors != nil {
		qa = &qp.Anchors{Pos: anchors, Lambda: lambdas}
	}
	_, err := q.solver.SolveCtx(ctx, qa)
	return err
}

// Relax rebuilds the solver with a 10× relaxed linearization floor (at
// least 10 row heights) and a 100× looser CG tolerance. The retiring
// solver's kernel metrics are preserved in the KernelTimes totals. The
// replacement keeps every other option — model, observer, preconditioner
// choice — so a relaxed retry differs from the original only in numerics.
func (q *QuadraticPrimal) Relax() {
	cg := q.opt.CG
	if cg.Tol <= 0 {
		cg.Tol = 1e-6
	}
	cg.Tol *= 100
	eps := math.Max(q.solver.Eps(), q.nl.RowHeight()) * 10
	q.retired.Add(q.solver.Metrics)
	opt := q.opt
	opt.Eps = eps
	opt.CG = cg
	q.solver = qp.NewSolver(q.nl, opt)
}

// KernelTimes returns the cumulative assembly and CG wall-clock across all
// solves, including retired pre-relaxation solvers.
func (q *QuadraticPrimal) KernelTimes() (assembly, solve time.Duration) {
	return q.retired.Assembly + q.solver.Metrics.Assembly, q.retired.CG + q.solver.Metrics.CG
}

// CaptureState implements StateCodec: the qp solver's extrapolated
// warm-start history is the only cross-solve numeric state, and it must
// survive a checkpoint/resume cycle for the resumed run to warm-start (and
// therefore place) bitwise identically to the uninterrupted one.
func (q *QuadraticPrimal) CaptureState() []float64 { return q.solver.CaptureContinuation() }

// RestoreState implements StateCodec.
func (q *QuadraticPrimal) RestoreState(state []float64) error {
	return q.solver.RestoreContinuation(state)
}

// PrecondStats returns the cumulative CG iteration count and preconditioner
// setup wall-clock across all solves (including retired pre-relaxation
// solvers), plus the resolved preconditioner name of the active solver.
func (q *QuadraticPrimal) PrecondStats() (cgIters int, setup time.Duration, name string) {
	return q.retired.CGIters + q.solver.Metrics.CGIters,
		q.retired.PrecondSetup + q.solver.Metrics.PrecondSetup,
		q.solver.Precond()
}

// LSEPrimal minimizes the log-sum-exp instantiation of the Lagrangian
// (paper §S1) by nonlinear Conjugate Gradient. By default a fresh objective
// is built per solve (matching the historical core behavior); Reuse keeps
// one objective alive across solves, as the NLP baseline's persistent
// penalty method requires.
type LSEPrimal struct {
	NL *netlist.Netlist
	// Gamma is the LSE smoothing parameter (0 → 1% of core width).
	Gamma float64
	// MaxIter bounds each nonlinear CG solve (default 60).
	MaxIter int
	// InitMaxIter, when positive, bounds unconstrained solves (anchors ==
	// nil) instead of MaxIter — the NLP baseline's longer initial solve.
	InitMaxIter int
	// Reuse keeps a single objective across solves.
	Reuse bool

	obj *lse.Objective
}

// Solve minimizes the LSE Lagrangian at the given anchors, writing the
// optimized centers back to the netlist.
func (p *LSEPrimal) Solve(ctx context.Context, anchors []geom.Point, lambdas []float64) error {
	o := p.obj
	if o == nil {
		o = lse.NewObjective(p.NL, p.Gamma)
		if p.Reuse {
			p.obj = o
		}
	}
	o.Anchors = anchors
	o.Lambda = lambdas
	maxIter := p.MaxIter
	if maxIter <= 0 {
		maxIter = 60
	}
	if anchors == nil && p.InitMaxIter > 0 {
		maxIter = p.InitMaxIter
	}
	_, err := lse.SolveCtx(ctx, o, lse.MinimizeOptions{MaxIter: maxIter})
	return err
}

// PNormPrimal minimizes the p,β-regularized instantiation of the
// Lagrangian (paper §S1). A fresh objective is built per solve, matching
// the historical core behavior.
type PNormPrimal struct {
	NL *netlist.Netlist
	// P is the norm exponent (0 → 8).
	P float64
	// MaxIter bounds each nonlinear CG solve (default 60).
	MaxIter int
}

// Solve minimizes the p-norm Lagrangian at the given anchors, writing the
// optimized centers back to the netlist.
func (p *PNormPrimal) Solve(ctx context.Context, anchors []geom.Point, lambdas []float64) error {
	o := lse.NewPNorm(p.NL, p.P)
	o.Anchors = anchors
	o.Lambda = lambdas
	maxIter := p.MaxIter
	if maxIter <= 0 {
		maxIter = 60
	}
	_, err := lse.SolveWithCtx(ctx, p.NL, o, lse.MinimizeOptions{MaxIter: maxIter})
	return err
}
