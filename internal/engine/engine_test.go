package engine

import (
	"context"
	"errors"
	"testing"

	"complx/internal/density"
	"complx/internal/gen"
	"complx/internal/netlist"
	"complx/internal/perr"
	"complx/internal/qp"
)

func genDesign(t *testing.T, spec gen.Spec) *netlist.Netlist {
	t.Helper()
	nl, err := gen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestGridDimSchedule(t *testing.T) {
	if gridDim(1, 64, false) != 8 {
		t.Errorf("iter1 = %d", gridDim(1, 64, false))
	}
	if gridDim(7, 64, false) != 16 {
		t.Errorf("iter7 = %d", gridDim(7, 64, false))
	}
	if gridDim(25, 64, false) != 64 {
		t.Errorf("iter25 = %d", gridDim(25, 64, false))
	}
	if gridDim(1, 64, true) != 64 {
		t.Errorf("finest = %d", gridDim(1, 64, true))
	}
	if gridDim(1, 32, false) != 8 {
		t.Errorf("min clamp = %d", gridDim(1, 32, false))
	}
}

func newTestLoop(nl *netlist.Netlist, maxIter int) *Loop {
	return &Loop{
		Netlist:       nl,
		Primal:        NewQuadraticPrimal(nl, qp.Options{}),
		Projector:     NewSpreadProjector(nl, 0.7, 0),
		Schedule:      ComPLxSchedule{},
		MaxIterations: maxIter,
	}
}

func TestLoopRuns(t *testing.T) {
	nl := genDesign(t, gen.Spec{Name: "e1", NumCells: 300, Seed: 7, Utilization: 0.7})
	res, err := newTestLoop(nl, 20).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 || len(res.History) != res.Iterations {
		t.Errorf("iterations %d, history %d", res.Iterations, len(res.History))
	}
	if res.HPWL <= 0 {
		t.Errorf("HPWL = %g", res.HPWL)
	}
	if res.Cancelled {
		t.Error("uncancelled run reported Cancelled")
	}
}

func TestLoopPreCancelledContext(t *testing.T) {
	nl := genDesign(t, gen.Spec{Name: "e2", NumCells: 200, Seed: 8, Utilization: 0.7})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := newTestLoop(nl, 20).Run(ctx)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	var pe *perr.Error
	if !errors.As(err, &pe) {
		t.Errorf("error %v is not a *perr.Error", err)
	}
	if res == nil {
		t.Fatal("expected a best-so-far result on cancellation")
	}
	if !res.Cancelled {
		t.Error("Cancelled flag not set")
	}
	// The placement must be usable: finite positions inside the core.
	for _, i := range nl.Movables() {
		c := &nl.Cells[i]
		if c.X != c.X || c.Y != c.Y {
			t.Fatalf("cell %d has NaN position after cancellation", i)
		}
	}
}

// TestLoopCancelMidRun cancels from the monitor after a few iterations and
// checks the loop stops within one iteration.
func TestLoopCancelMidRun(t *testing.T) {
	nl := genDesign(t, gen.Spec{Name: "e3", NumCells: 300, Seed: 9, Utilization: 0.7})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	l := newTestLoop(nl, 40)
	l.MinIterations = 40 // keep it running
	var seen int
	l.Monitor = MonitorFunc(func(st IterStats) {
		seen = st.Iter
		if st.Iter == 3 {
			cancel()
		}
	})
	res, err := l.Run(ctx)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if res == nil || !res.Cancelled {
		t.Fatal("expected a Cancelled best-so-far result")
	}
	// Cancelled during iteration 3's primal solve: no stats may be emitted
	// beyond iteration 4 (the next projection observes the cancel).
	if seen > 4 {
		t.Errorf("loop kept running %d iterations past the cancel", seen-3)
	}
}

func TestOverflowLoopPreCancelled(t *testing.T) {
	nl := genDesign(t, gen.Spec{Name: "e4", NumCells: 150, Seed: 10, Utilization: 0.7})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	l := &OverflowLoop{
		Netlist:       nl,
		Primal:        NewQuadraticPrimal(nl, qp.Options{}),
		Dual:          dualNop{},
		MaxIterations: 10,
		StopOverflow:  0.0001,
		TargetDensity: 1,
		NX:            16, NY: 16,
		InitialSolves: 1,
	}
	res, err := l.Run(ctx)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if res == nil || !res.Cancelled {
		t.Fatal("expected a Cancelled result")
	}
}

type dualNop struct{}

func (dualNop) Step(ctx context.Context, iter int, _ *density.Grid) (DualStep, error) {
	return DualStep{Done: true}, nil
}
