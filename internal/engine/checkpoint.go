package engine

import (
	"complx/internal/chkpt"
	"complx/internal/geom"
	"complx/internal/obs"
	"complx/internal/perr"
	"complx/internal/resilience"
)

// loopState groups the multiplier-schedule and result-selection scalars of
// one Loop.Run so checkpoint capture and resume priming see every value the
// next iteration depends on.
type loopState struct {
	lambda, h, piFirst, piPrev float64
	bestUpper, bestFine        float64
	bestFineAnchors            []geom.Point
	prevPos, prevAnchors       []geom.Point
}

// CheckpointSink receives complete engine state snapshots at iteration
// boundaries. chkpt.Manager is the production implementation (atomic
// persistence into a checkpoint directory); tests substitute in-memory
// doubles. Save must not retain st's slices beyond the call unless it owns
// them (the engine hands over freshly built snapshots, so Manager may).
type CheckpointSink interface {
	// Save persists one snapshot.
	Save(st *chkpt.State) error
	// IntervalOrDefault is the snapshot cadence in completed iterations.
	IntervalOrDefault() int
}

// StateCodec is optionally implemented by projectors and dual steppers
// whose numeric per-run state must survive a checkpoint/resume cycle (for
// example the routability extension's self-calibrated routing capacity, or
// the overflow steppers' hold weights). CaptureState returns nil when the
// component currently holds no state; RestoreState accepts exactly what
// CaptureState produced.
type StateCodec interface {
	CaptureState() []float64
	RestoreState(state []float64) error
}

// captureCodec reads v's numeric state when it implements StateCodec.
func captureCodec(v any) []float64 {
	if sc, ok := v.(StateCodec); ok {
		return sc.CaptureState()
	}
	return nil
}

// restoreCodec writes numeric state back into v when it implements
// StateCodec; state == nil is a no-op (nothing was captured).
func restoreCodec(v any, state []float64) error {
	if state == nil {
		return nil
	}
	sc, ok := v.(StateCodec)
	if !ok {
		return perr.New(perr.StageCheckpoint,
			"engine: checkpoint carries %d state values but the component cannot restore them", len(state))
	}
	return sc.RestoreState(state)
}

// historyRecords projects the run history into checkpointable records
// (timing fields dropped — they are excluded from the golden hashes).
func historyRecords(hist []IterStats) []chkpt.IterRecord {
	if hist == nil {
		return nil
	}
	out := make([]chkpt.IterRecord, len(hist))
	for i, h := range hist {
		out[i] = chkpt.IterRecord{
			Iter: h.Iter, Lambda: h.Lambda,
			Phi: h.Phi, PhiUpper: h.PhiUpper,
			Pi: h.Pi, L: h.L,
			Overflow: h.Overflow, GridNX: h.GridNX,
		}
	}
	return out
}

// HistoryStats converts checkpointed history records back into run history
// (timings zero). Exported for drivers that rebuild a Result from an
// encoded snapshot, e.g. the portfolio's resume materialization.
func HistoryStats(recs []chkpt.IterRecord) []IterStats { return historyStats(recs) }

// historyStats is the inverse of historyRecords (timings zero).
func historyStats(recs []chkpt.IterRecord) []IterStats {
	if recs == nil {
		return nil
	}
	out := make([]IterStats, len(recs))
	for i, r := range recs {
		out[i] = IterStats{
			Iter: r.Iter, Lambda: r.Lambda,
			Phi: r.Phi, PhiUpper: r.PhiUpper,
			Pi: r.Pi, L: r.L,
			Overflow: r.Overflow, GridNX: r.GridNX,
		}
	}
	return out
}

// captureState builds a complete, self-contained snapshot of the loop at
// the end of iteration iter (after that iteration's primal solve). The
// snapshot references the loop's current slices — all of which are
// replaced, never mutated, by subsequent iterations — so capture is cheap:
// no position copies beyond the O(history) record conversion.
func (l *Loop) captureState(iter int, s *loopState, res *Result) *chkpt.State {
	st := &chkpt.State{
		Design:    l.Design,
		Algorithm: l.Algorithm,
		Kind:      chkpt.KindLoop,
		Iter:      iter,
		Level:     l.Level,
		Positions: l.lastFinite,

		Lambda: s.lambda, H: s.h, PiFirst: s.piFirst, PiPrev: s.piPrev,
		BestUpper: s.bestUpper, BestFine: s.bestFine,
		BestFineAnchors: s.bestFineAnchors,
		PrevPos:         s.prevPos, PrevAnchors: s.prevAnchors,
		RelaxCount: l.relaxCount,
		SelfCons: [4]int{
			res.SelfCons.Total, res.SelfCons.Consistent,
			res.SelfCons.Inconsistent, res.SelfCons.PremiseFailed,
		},
		ProjectorState: captureCodec(l.Projector),
		PrimalState:    captureCodec(l.Primal),
		History:        historyRecords(res.History),
	}
	return st
}

// primeResume restores the loop and result from l.Resume so the next
// iteration to run is Resume.Iter+1, bitwise identical to the
// uninterrupted run: positions, schedule scalars, result-selection state,
// history and the solver's relaxation level are all replayed.
func (l *Loop) primeResume(res *Result, s *loopState) error {
	st := l.Resume
	if st.Kind != chkpt.KindLoop {
		return perr.New(perr.StageCheckpoint,
			"engine: checkpoint kind %q cannot resume a primal-dual loop", st.Kind)
	}
	if st.Level != l.Level {
		return perr.New(perr.StageCheckpoint,
			"engine: checkpoint from V-cycle level %d cannot resume level %d", st.Level, l.Level)
	}
	nl := l.Netlist
	if err := nl.RestorePositions(st.Positions); err != nil {
		return perr.Wrap(perr.StageCheckpoint, err)
	}
	s.lambda, s.h, s.piFirst, s.piPrev = st.Lambda, st.H, st.PiFirst, st.PiPrev
	s.bestUpper, s.bestFine = st.BestUpper, st.BestFine
	s.bestFineAnchors = st.BestFineAnchors
	s.prevPos, s.prevAnchors = st.PrevPos, st.PrevAnchors
	res.SelfCons = SelfConsistency{
		Total:         st.SelfCons[0],
		Consistent:    st.SelfCons[1],
		Inconsistent:  st.SelfCons[2],
		PremiseFailed: st.SelfCons[3],
	}
	res.History = historyStats(st.History)
	res.Resumed = true
	if st.Iter > 0 && len(res.History) > 0 {
		// Re-derive the last iteration's summary scalars bitwise from the
		// final history record, so a resume that immediately stops (e.g.
		// Iter == MaxIterations) still reports them.
		last := res.History[len(res.History)-1]
		res.Iterations = st.Iter
		res.FinalLambda = last.Lambda
		if last.PhiUpper > 0 {
			res.GapFinal = (last.PhiUpper - last.Phi) / last.PhiUpper
		}
	}
	// Re-apply the recovery ladder's numeric relaxations so the solver
	// configuration matches the checkpointed run. (Ladder budgets are NOT
	// restored: a resumed run earns a fresh recovery budget.)
	if r, ok := l.Primal.(Relaxer); ok {
		for i := 0; i < st.RelaxCount; i++ {
			r.Relax()
		}
	}
	l.relaxCount = st.RelaxCount
	if err := restoreCodec(l.Projector, st.ProjectorState); err != nil {
		return perr.Wrap(perr.StageCheckpoint, err)
	}
	// After the relax replay above, so the state lands in the solver that
	// will actually run (Relax replaces the qp solver wholesale).
	if err := restoreCodec(l.Primal, st.PrimalState); err != nil {
		return perr.Wrap(perr.StageCheckpoint, err)
	}
	l.lastFinite = nl.SnapshotPositions()
	l.Obs.AddCount(obs.MetricResumes, 1)
	return nil
}

// checkpointer drives the pending-state snapshot protocol shared by both
// engine loops: after every completed iteration the loop deposits a
// complete state via set; every interval-th iteration (and best-effort on
// cancellation) the pending state is flushed to the sink. A checkpoint
// that fails to save never kills the run — the failure is recorded in the
// recovery log and the loop continues.
type checkpointer struct {
	sink     CheckpointSink
	interval int
	pending  *chkpt.State
	log      *resilience.Log
}

// newCheckpointer returns nil when sink is nil, so the loops pay a single
// nil-check per iteration when checkpointing is disabled.
func newCheckpointer(sink CheckpointSink, log *resilience.Log) *checkpointer {
	if sink == nil {
		return nil
	}
	return &checkpointer{sink: sink, interval: sink.IntervalOrDefault(), log: log}
}

// set deposits the snapshot for iteration iter and flushes it on interval
// boundaries. Nil receivers are no-ops.
func (c *checkpointer) set(iter int, st *chkpt.State) {
	if c == nil {
		return
	}
	c.pending = st
	if c.interval > 0 && iter > 0 && iter%c.interval == 0 {
		c.flush()
	}
}

// flush saves the pending snapshot, logging (not propagating) failures.
func (c *checkpointer) flush() {
	if c == nil || c.pending == nil {
		return
	}
	if err := c.sink.Save(c.pending); err != nil {
		if c.log != nil {
			c.log.Add(resilience.Event{
				Iter:    c.pending.Iter,
				Rung:    resilience.RungCheckpoint,
				Attempt: 1,
				Cause:   err.Error(),
			})
		}
	}
	c.pending = nil
}
