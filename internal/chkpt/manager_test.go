package chkpt

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"complx/internal/faultinject"
	"complx/internal/perr"
)

func newManager(t *testing.T) *Manager {
	t.Helper()
	return &Manager{
		Dir:         t.TempDir(),
		Fingerprint: Fingerprint("algo=complx", "design=adaptec-mini"),
	}
}

func TestManagerSaveLoadRoundTrip(t *testing.T) {
	m := newManager(t)
	st := fullState()
	st.Fingerprint = [32]byte{} // Save must stamp the manager's fingerprint
	if err := m.Save(st); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if !m.Exists() {
		t.Fatal("Exists() false after Save")
	}
	got, err := m.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Fingerprint != m.Fingerprint {
		t.Error("loaded fingerprint differs from manager's")
	}
	if got.Iter != st.Iter || got.Design != st.Design {
		t.Errorf("loaded state mismatch: iter=%d design=%q", got.Iter, got.Design)
	}
}

func TestManagerSaveOverwritesAtomically(t *testing.T) {
	m := newManager(t)
	st := fullState()
	if err := m.Save(st); err != nil {
		t.Fatalf("Save 1: %v", err)
	}
	st.Iter = 99
	if err := m.Save(st); err != nil {
		t.Fatalf("Save 2: %v", err)
	}
	got, err := m.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Iter != 99 {
		t.Errorf("Load returned iter %d, want 99", got.Iter)
	}
	// No stale temp files from the staged writes.
	entries, err := os.ReadDir(m.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("stale temp file %q left behind", e.Name())
		}
	}
}

func TestManagerLoadRejectsWrongFingerprint(t *testing.T) {
	m := newManager(t)
	if err := m.Save(fullState()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	other := &Manager{Dir: m.Dir, Fingerprint: Fingerprint("algo=simpl", "design=other")}
	_, err := other.Load()
	if !errors.Is(err, ErrFingerprint) {
		t.Fatalf("Load with wrong fingerprint = %v, want ErrFingerprint", err)
	}
	var pe *perr.Error
	if !errors.As(err, &pe) || pe.Stage != perr.StageCheckpoint {
		t.Errorf("error not wrapped with checkpoint stage: %v", err)
	}
}

func TestManagerLoadRejectsCorruptFile(t *testing.T) {
	m := newManager(t)
	if err := m.Save(fullState()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	data, err := os.ReadFile(m.Path())
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(m.Path(), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, lerr := m.Load()
	if !errors.Is(lerr, ErrCorrupt) {
		t.Fatalf("Load of corrupt file = %v, want ErrCorrupt", lerr)
	}
}

func TestManagerLoadMissingFile(t *testing.T) {
	m := newManager(t)
	if m.Exists() {
		t.Fatal("Exists() true for empty dir")
	}
	_, err := m.Load()
	if err == nil {
		t.Fatal("Load of missing checkpoint succeeded")
	}
}

// TestManagerSaveInjectedFailureKeepsOldCheckpoint pins the crash-safety
// contract: a failed save (here an injected I/O error) must leave the
// previous checkpoint loadable.
func TestManagerSaveInjectedFailureKeepsOldCheckpoint(t *testing.T) {
	m := newManager(t)
	st := fullState()
	st.Iter = 10
	if err := m.Save(st); err != nil {
		t.Fatalf("Save: %v", err)
	}

	inj := faultinject.New()
	inj.Add(faultinject.Rule{Point: faultinject.CheckpointSave})
	faultinject.Activate(inj)
	defer faultinject.Deactivate()

	st.Iter = 20
	err := m.Save(st)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Save with injected fault = %v, want ErrInjected", err)
	}
	faultinject.Deactivate()

	got, lerr := m.Load()
	if lerr != nil {
		t.Fatalf("Load after failed save: %v", lerr)
	}
	if got.Iter != 10 {
		t.Errorf("old checkpoint clobbered: iter=%d, want 10", got.Iter)
	}
}

// TestManagerSaveShortWriteKeepsOldCheckpoint does the same through the
// fsatomic short-write injection point: the staged temp file is abandoned,
// the published checkpoint untouched.
func TestManagerSaveShortWriteKeepsOldCheckpoint(t *testing.T) {
	m := newManager(t)
	st := fullState()
	st.Iter = 10
	if err := m.Save(st); err != nil {
		t.Fatalf("Save: %v", err)
	}

	inj := faultinject.New()
	inj.Add(faultinject.Rule{Point: faultinject.AtomicWriteShort, Match: FileName})
	faultinject.Activate(inj)
	defer faultinject.Deactivate()

	st.Iter = 20
	if err := m.Save(st); err == nil {
		t.Fatal("Save with injected short write succeeded")
	}
	faultinject.Deactivate()

	got, lerr := m.Load()
	if lerr != nil {
		t.Fatalf("Load after short write: %v", lerr)
	}
	if got.Iter != 10 {
		t.Errorf("old checkpoint clobbered: iter=%d, want 10", got.Iter)
	}
	entries, err := os.ReadDir(m.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != FileName {
			t.Errorf("unexpected file %q in checkpoint dir", filepath.Join(m.Dir, e.Name()))
		}
	}
}

func TestManagerEmptyDirRejected(t *testing.T) {
	m := &Manager{}
	if err := m.Save(fullState()); err == nil {
		t.Fatal("Save with empty Dir succeeded")
	}
}

func TestIntervalOrDefault(t *testing.T) {
	if got := (&Manager{}).IntervalOrDefault(); got != DefaultInterval {
		t.Errorf("default interval = %d, want %d", got, DefaultInterval)
	}
	if got := (&Manager{Interval: 3}).IntervalOrDefault(); got != 3 {
		t.Errorf("interval = %d, want 3", got)
	}
}
