package chkpt

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"complx/internal/geom"
)

// fullState builds a State exercising every field, including awkward float
// bit patterns (negative zero, denormals, huge values) that must round-trip
// bit-for-bit.
func fullState() *State {
	st := &State{
		Design:    "adaptec-mini",
		Algorithm: "complx",
		Kind:      KindLoop,
		Iter:      17,
		Positions: []geom.Point{
			{X: 0, Y: 0},
			{X: math.Copysign(0, -1), Y: 5e-324},
			{X: 1.5e308, Y: -42.25},
		},
		Lambda:    0.1875,
		H:         2.5,
		PiFirst:   1234.5,
		PiPrev:    1200.25,
		BestUpper: 98765.4321,
		BestFine:  91234.5,
		BestFineAnchors: []geom.Point{
			{X: 1, Y: 2}, {X: 3, Y: 4},
		},
		PrevPos:        []geom.Point{{X: 9, Y: 8}},
		PrevAnchors:    []geom.Point{},
		RelaxCount:     3,
		SelfCons:       [4]int{10, 7, 2, 1},
		ProjectorState: []float64{1.25, -0.5},
		DualState:      nil,
		History: []IterRecord{
			{Iter: 1, Lambda: 0.1, Phi: 10, PhiUpper: 11, Pi: 5, L: 9, Overflow: 0.4, GridNX: 8},
			{Iter: 2, Lambda: 0.2, Phi: 9.5, PhiUpper: 10.5, Pi: 4, L: 8.5, Overflow: 0.3, GridNX: 16},
		},
		RNG: []byte{0xde, 0xad, 0xbe, 0xef},
	}
	st.Fingerprint = Fingerprint("algo=complx", "design=adaptec-mini")
	return st
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	st := fullState()
	data := Encode(st)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", st, got)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := Encode(fullState())
	b := Encode(fullState())
	if !bytes.Equal(a, b) {
		t.Fatal("identical states encoded to different bytes")
	}
}

// TestNilVersusEmptySlices pins the nil/empty distinction: nil slices drive
// fallback behaviour in the engine (no best-so-far anchors yet), so the
// codec must not collapse them into empty slices.
func TestNilVersusEmptySlices(t *testing.T) {
	st := fullState()
	st.BestFineAnchors = nil
	st.PrevAnchors = []geom.Point{}
	st.ProjectorState = nil
	st.DualState = []float64{}
	got, err := Decode(Encode(st))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.BestFineAnchors != nil {
		t.Error("nil BestFineAnchors decoded non-nil")
	}
	if got.PrevAnchors == nil || len(got.PrevAnchors) != 0 {
		t.Error("empty PrevAnchors did not survive")
	}
	if got.ProjectorState != nil {
		t.Error("nil ProjectorState decoded non-nil")
	}
	if got.DualState == nil || len(got.DualState) != 0 {
		t.Error("empty DualState did not survive")
	}
}

func TestFloatBitsSurvive(t *testing.T) {
	st := fullState()
	st.Lambda = math.Float64frombits(0x7ff8000000000001) // a specific NaN payload
	got, err := Decode(Encode(st))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if math.Float64bits(got.Lambda) != math.Float64bits(st.Lambda) {
		t.Fatalf("NaN payload not preserved: %x != %x",
			math.Float64bits(got.Lambda), math.Float64bits(st.Lambda))
	}
	if math.Signbit(got.Positions[1].X) != true || got.Positions[1].X != 0 {
		t.Error("negative zero not preserved")
	}
	if got.Positions[1].Y != 5e-324 {
		t.Error("denormal not preserved")
	}
}

// TestDecodeRejectsCorruption covers the malformed-input table: every
// mutation must fail with the matching typed sentinel, never a panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	good := Encode(fullState())
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrCorrupt},
		{"short header", good[:10], ErrCorrupt},
		{"bad magic", append([]byte("NOTCKPT0"), good[8:]...), ErrBadMagic},
		{"future version", func() []byte {
			d := append([]byte(nil), good...)
			d[8] = 99
			return d
		}(), ErrBadVersion},
		{"flipped payload byte", func() []byte {
			d := append([]byte(nil), good...)
			d[len(magic)+4+8+3] ^= 0x40
			return d
		}(), ErrCorrupt},
		{"flipped checksum byte", func() []byte {
			d := append([]byte(nil), good...)
			d[len(d)-1] ^= 0x01
			return d
		}(), ErrCorrupt},
		{"truncated tail", good[:len(good)-5], ErrCorrupt},
		{"trailing garbage", append(append([]byte(nil), good...), 0, 0, 0), ErrCorrupt},
		{"absurd length field", func() []byte {
			d := append([]byte(nil), good...)
			d[len(magic)+4] = 0xff // payload length no longer matches file size
			return d
		}(), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Decode(%s) = %v, want %v", tc.name, err, tc.want)
			}
		})
	}
}

func TestFingerprintOrderInsensitive(t *testing.T) {
	a := Fingerprint("x=1", "y=2", "z=3")
	b := Fingerprint("z=3", "x=1", "y=2")
	if a != b {
		t.Error("fingerprint depends on part order")
	}
	c := Fingerprint("x=1", "y=2", "z=4")
	if a == c {
		t.Error("different parts produced equal fingerprints")
	}
}
