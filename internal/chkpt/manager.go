package chkpt

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"complx/internal/faultinject"
	"complx/internal/fsatomic"
	"complx/internal/obs"
	"complx/internal/perr"
)

// DefaultInterval is the checkpoint cadence (iterations between snapshots)
// when the caller does not choose one.
const DefaultInterval = 5

// FileName is the checkpoint file inside a checkpoint directory. Writes
// replace it atomically, so the directory always holds the last complete
// snapshot.
const FileName = "complx.ckpt"

// Manager owns the checkpoint directory of one placement run: it persists
// engine snapshots (Save) and loads/validates them for resumption (Load).
// A Manager is bound to one run's fingerprint; Save stamps it into every
// state, Load rejects states carrying any other.
type Manager struct {
	// Dir is the checkpoint directory; created on first Save.
	Dir string
	// Interval is the snapshot cadence in iterations (<= 0 selects
	// DefaultInterval).
	Interval int
	// Fingerprint binds checkpoints to this run's design and options (see
	// Fingerprint).
	Fingerprint [32]byte
	// Obs, when non-nil, counts saves/errors and records checkpoint spans;
	// nil disables at the usual one-branch cost.
	Obs *obs.Observer
}

// IntervalOrDefault returns the effective snapshot cadence.
func (m *Manager) IntervalOrDefault() int {
	if m.Interval <= 0 {
		return DefaultInterval
	}
	return m.Interval
}

// Path returns the checkpoint file path.
func (m *Manager) Path() string { return filepath.Join(m.Dir, FileName) }

// Save persists st atomically: the fingerprint is stamped, the encoded
// image is staged to a temp file, fsynced and renamed over the previous
// checkpoint, so a crash at any instant leaves the old snapshot readable.
// Save implements the engine.CheckpointSink seam.
func (m *Manager) Save(st *State) error {
	span := m.Obs.StartSpan("checkpoint")
	defer span.End()
	st.Fingerprint = m.Fingerprint
	err := m.save(st)
	if err != nil {
		m.Obs.AddCount(obs.MetricCheckpointErrors, 1)
		return perr.Wrap(perr.StageCheckpoint, err)
	}
	m.Obs.AddCount(obs.MetricCheckpointSaves, 1)
	m.Obs.SetGauge(obs.MetricCheckpointIter, float64(st.Iter))
	return nil
}

func (m *Manager) save(st *State) error {
	if m.Dir == "" {
		return fmt.Errorf("chkpt: Manager.Dir is empty")
	}
	if err := faultinject.FireErr(faultinject.CheckpointSave, m.Path()); err != nil {
		return err
	}
	if err := os.MkdirAll(m.Dir, 0o755); err != nil {
		return err
	}
	data := Encode(st)
	if err := fsatomic.WriteFile(m.Path(), 0o644, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	}); err != nil {
		return err
	}
	m.Obs.SetGauge(obs.MetricCheckpointBytes, float64(len(data)))
	return nil
}

// Load reads, decodes and validates the directory's checkpoint. Corruption,
// version and fingerprint failures return a *perr.Error (stage
// "checkpoint") wrapping the typed sentinel, so callers can errors.Is
// against ErrCorrupt / ErrBadVersion / ErrFingerprint.
func (m *Manager) Load() (*State, error) {
	data, err := os.ReadFile(m.Path())
	if err != nil {
		return nil, perr.Wrap(perr.StageCheckpoint, fmt.Errorf("chkpt: read checkpoint: %w", err))
	}
	st, err := Decode(data)
	if err != nil {
		return nil, perr.WithFile(perr.Wrap(perr.StageCheckpoint, err), m.Path())
	}
	if st.Fingerprint != m.Fingerprint {
		return nil, perr.WithFile(perr.Wrap(perr.StageCheckpoint,
			fmt.Errorf("%w (checkpoint design %q, algorithm %q)", ErrFingerprint, st.Design, st.Algorithm)), m.Path())
	}
	return st, nil
}

// Exists reports whether the directory holds a checkpoint file (readable or
// not — Load performs the validation).
func (m *Manager) Exists() bool {
	_, err := os.Stat(m.Path())
	return err == nil
}
