// Package chkpt implements versioned, checksummed, atomically-persisted
// checkpoints of the placement engine's state, plus the Manager that owns a
// checkpoint directory for one run.
//
// The paper's primal-dual loop is naturally checkpointable: the complete
// optimizer state is (positions, λ, anchors, iteration) plus a handful of
// schedule scalars. State captures exactly that — bit-for-bit, via the
// float64 bit patterns — so a run resumed from a checkpoint is bitwise
// identical to the uninterrupted run (pinned by the resume-determinism
// golden tests in internal/core and internal/baseline).
//
// # File format
//
// A checkpoint file is
//
//	magic "CPLXCKP1" (8 bytes)
//	version        uint32 LE
//	payload length uint64 LE
//	payload        (deterministic binary encoding of State)
//	checksum       SHA-256 over everything above (32 bytes)
//
// Decode rejects bad magic, unknown versions, truncation and checksum
// mismatches with typed sentinel errors; Manager.Load additionally rejects
// fingerprint mismatches so a checkpoint can never be resumed against a
// different design or option set.
//
// Persistence goes through internal/fsatomic (temp file + fsync + rename +
// directory fsync), so a SIGKILL mid-save leaves the previous checkpoint
// intact.
package chkpt

import (
	"crypto/sha256"
	"sort"
	"strings"

	"complx/internal/geom"
)

// Version is the current checkpoint format version. Decode refuses other
// versions (forward compatibility is explicit, never silent).
//
// Version history: 2 added per-solver PrimalState; 3 added the multilevel
// Level field.
const Version = 3

// magic identifies a complx checkpoint file.
const magic = "CPLXCKP1"

// Kind discriminates which engine loop produced the state.
type Kind string

const (
	// KindLoop is the full ComPLx-style primal-dual loop (engine.Loop).
	KindLoop Kind = "loop"
	// KindOverflow is the overflow-driven baseline loop
	// (engine.OverflowLoop).
	KindOverflow Kind = "overflow"
)

// IterRecord is the numeric (non-timing) projection of one engine.IterStats
// history entry. Timing fields are deliberately dropped: they are excluded
// from the golden hashes and would differ between a resumed and an
// uninterrupted run anyway.
type IterRecord struct {
	Iter                                   int
	Lambda, Phi, PhiUpper, Pi, L, Overflow float64
	GridNX                                 int
}

// State is one complete, self-contained snapshot of an engine loop at an
// iteration boundary. Every float64 survives encoding bit-for-bit.
type State struct {
	// Design and Algorithm describe the run for humans and error messages;
	// Fingerprint is the binding check (see Fingerprint).
	Design      string
	Algorithm   string
	Kind        Kind
	Fingerprint [32]byte

	// Iter is the last fully completed global placement iteration.
	Iter int
	// Level is the V-cycle level the snapshot belongs to (0 = finest /
	// flat placement, higher = coarser). A resume must land on the same
	// level of the same deterministic coarsening stack; engine loops
	// reject checkpoints carrying any other level.
	Level int
	// Positions are the lower-left coordinates of every cell (fixed cells
	// included), in netlist order — netlist.SnapshotPositions format.
	Positions []geom.Point

	// Primal-dual schedule scalars (engine.Loop).
	Lambda, H, PiFirst, PiPrev float64
	// Result-selection state: best upper bound and best finest-grid score
	// seen so far, with the anchors that achieved it (nil when none).
	BestUpper, BestFine float64
	BestFineAnchors     []geom.Point
	// Previous iterate for the Formula 11 self-consistency check.
	PrevPos, PrevAnchors []geom.Point
	// RelaxCount is how many times the primal solver's numerics were
	// relaxed by the recovery ladder; the relaxation is re-applied on
	// resume so the solver configuration matches.
	RelaxCount int
	// Self-consistency counters (total, consistent, inconsistent,
	// premise-failed).
	SelfCons [4]int

	// ProjectorState carries per-run projector numerics (currently the
	// self-calibrated routing capacity of the routability extension); nil
	// when the projector holds no numeric state.
	ProjectorState []float64
	// DualState carries the overflow-loop stepper's numeric state (hold
	// weights, penalty multipliers); nil for engine.Loop checkpoints.
	DualState []float64
	// PrimalState carries the primal solver's cross-solve numerics
	// (currently the qp solver's extrapolated warm-start history); nil when
	// the solver holds no such state.
	PrimalState []float64

	// History holds the numeric iteration history accumulated so far.
	History []IterRecord

	// RNG is reserved for pseudo-random generator state. The placement
	// loops are RNG-free today (all randomness lives in benchmark
	// generation, before the loop), so it is always empty; the field keeps
	// the format stable if a stochastic stage (restart perturbation) lands.
	RNG []byte
}

// Fingerprint derives the options-plus-design fingerprint from an
// order-insensitive list of "key=value" strings. Both checkpoint writers
// and resumers must build the list from every option that affects the
// numeric trajectory (algorithm, model, tolerances, netlist identity);
// Manager.Load rejects checkpoints whose fingerprint differs.
func Fingerprint(parts ...string) [32]byte {
	sorted := append([]string(nil), parts...)
	sort.Strings(sorted)
	return sha256.Sum256([]byte(strings.Join(sorted, "\x00")))
}
