package chkpt

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"complx/internal/geom"
)

// Typed decode failures; test with errors.Is. Manager.Load wraps them in a
// *perr.Error carrying the checkpoint stage and path.
var (
	// ErrBadMagic: the file is not a complx checkpoint.
	ErrBadMagic = errors.New("chkpt: bad magic (not a complx checkpoint)")
	// ErrBadVersion: the checkpoint was written by an incompatible format
	// version.
	ErrBadVersion = errors.New("chkpt: unsupported checkpoint version")
	// ErrCorrupt: truncation, length mismatch or checksum failure.
	ErrCorrupt = errors.New("chkpt: corrupt checkpoint (truncated or checksum mismatch)")
	// ErrFingerprint: the checkpoint belongs to a different design or
	// option set.
	ErrFingerprint = errors.New("chkpt: checkpoint fingerprint does not match this run's options and design")
)

// Encode renders st into the versioned, checksummed checkpoint format. The
// encoding is deterministic: identical states produce identical bytes.
func Encode(st *State) []byte {
	var p payload
	p.str(st.Design)
	p.str(st.Algorithm)
	p.str(string(st.Kind))
	p.bytes(st.Fingerprint[:])
	p.i64(st.Iter)
	p.i64(st.Level)
	p.points(st.Positions)
	p.f64(st.Lambda)
	p.f64(st.H)
	p.f64(st.PiFirst)
	p.f64(st.PiPrev)
	p.f64(st.BestUpper)
	p.f64(st.BestFine)
	p.points(st.BestFineAnchors)
	p.points(st.PrevPos)
	p.points(st.PrevAnchors)
	p.i64(st.RelaxCount)
	for _, v := range st.SelfCons {
		p.i64(v)
	}
	p.f64s(st.ProjectorState)
	p.f64s(st.DualState)
	p.f64s(st.PrimalState)
	p.i64(len(st.History))
	for _, h := range st.History {
		p.i64(h.Iter)
		p.f64(h.Lambda)
		p.f64(h.Phi)
		p.f64(h.PhiUpper)
		p.f64(h.Pi)
		p.f64(h.L)
		p.f64(h.Overflow)
		p.i64(h.GridNX)
	}
	p.blob(st.RNG)

	out := make([]byte, 0, len(magic)+4+8+len(p.b)+sha256.Size)
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(p.b)))
	out = append(out, p.b...)
	sum := sha256.Sum256(out)
	return append(out, sum[:]...)
}

// Decode parses and verifies a checkpoint file image. It returns typed
// sentinel errors (ErrBadMagic, ErrBadVersion, ErrCorrupt) on malformed
// input; fingerprint validation is the caller's job (Manager.Load).
func Decode(data []byte) (*State, error) {
	head := len(magic) + 4 + 8
	if len(data) < head+sha256.Size {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the fixed header", ErrCorrupt, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	ver := binary.LittleEndian.Uint32(data[len(magic):])
	if ver != Version {
		return nil, fmt.Errorf("%w: file version %d, supported %d", ErrBadVersion, ver, Version)
	}
	plen := binary.LittleEndian.Uint64(data[len(magic)+4:])
	if uint64(len(data)) != uint64(head)+plen+sha256.Size {
		return nil, fmt.Errorf("%w: payload length %d does not match file size %d", ErrCorrupt, plen, len(data))
	}
	body := data[:head+int(plen)]
	sum := sha256.Sum256(body)
	if subtle.ConstantTimeCompare(sum[:], data[len(body):]) != 1 {
		return nil, fmt.Errorf("%w: SHA-256 mismatch", ErrCorrupt)
	}

	r := &reader{b: data[head : head+int(plen)]}
	st := &State{}
	st.Design = r.str()
	st.Algorithm = r.str()
	st.Kind = Kind(r.str())
	copy(st.Fingerprint[:], r.take(32))
	st.Iter = r.i64()
	st.Level = r.i64()
	st.Positions = r.points()
	st.Lambda = r.f64()
	st.H = r.f64()
	st.PiFirst = r.f64()
	st.PiPrev = r.f64()
	st.BestUpper = r.f64()
	st.BestFine = r.f64()
	st.BestFineAnchors = r.points()
	st.PrevPos = r.points()
	st.PrevAnchors = r.points()
	st.RelaxCount = r.i64()
	for i := range st.SelfCons {
		st.SelfCons[i] = r.i64()
	}
	st.ProjectorState = r.f64s()
	st.DualState = r.f64s()
	st.PrimalState = r.f64s()
	nh := r.i64()
	if r.err == nil && (nh < 0 || nh > r.remaining()/16) {
		r.err = fmt.Errorf("%w: absurd history length %d", ErrCorrupt, nh)
	}
	if r.err == nil {
		st.History = make([]IterRecord, nh)
		for i := range st.History {
			h := &st.History[i]
			h.Iter = r.i64()
			h.Lambda = r.f64()
			h.Phi = r.f64()
			h.PhiUpper = r.f64()
			h.Pi = r.f64()
			h.L = r.f64()
			h.Overflow = r.f64()
			h.GridNX = r.i64()
		}
	}
	st.RNG = r.blob()
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, r.remaining())
	}
	return st, nil
}

// payload accumulates the deterministic little-endian field encoding.
type payload struct{ b []byte }

func (p *payload) u64(v uint64)   { p.b = binary.LittleEndian.AppendUint64(p.b, v) }
func (p *payload) i64(v int)      { p.u64(uint64(int64(v))) }
func (p *payload) f64(v float64)  { p.u64(math.Float64bits(v)) }
func (p *payload) bytes(b []byte) { p.b = append(p.b, b...) }
func (p *payload) str(s string)   { p.u64(uint64(len(s))); p.b = append(p.b, s...) }
func (p *payload) blob(b []byte)  { p.u64(uint64(len(b))); p.b = append(p.b, b...) }

func (p *payload) points(pts []geom.Point) {
	if pts == nil {
		p.u64(math.MaxUint64) // distinguish nil from empty: nil drives fallbacks
		return
	}
	p.u64(uint64(len(pts)))
	for _, pt := range pts {
		p.f64(pt.X)
		p.f64(pt.Y)
	}
}

func (p *payload) f64s(vs []float64) {
	if vs == nil {
		p.u64(math.MaxUint64)
		return
	}
	p.u64(uint64(len(vs)))
	for _, v := range vs {
		p.f64(v)
	}
}

// reader decodes the payload with sticky error handling.
type reader struct {
	b   []byte
	err error
}

func (r *reader) remaining() int { return len(r.b) }

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b) {
		r.err = fmt.Errorf("%w: truncated payload (want %d bytes, have %d)", ErrCorrupt, n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i64() int     { return int(int64(r.u64())) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str() string { return string(r.take(int(r.u64()))) }

func (r *reader) blob() []byte {
	n := r.u64()
	if n == 0 {
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (r *reader) points() []geom.Point {
	n := r.u64()
	if n == math.MaxUint64 {
		return nil
	}
	if r.err == nil && int(n) > r.remaining()/16 {
		r.err = fmt.Errorf("%w: absurd point count %d", ErrCorrupt, n)
		return nil
	}
	out := make([]geom.Point, int(n))
	for i := range out {
		out[i].X = r.f64()
		out[i].Y = r.f64()
	}
	return out
}

func (r *reader) f64s() []float64 {
	n := r.u64()
	if n == math.MaxUint64 {
		return nil
	}
	if r.err == nil && int(n) > r.remaining()/8 {
		r.err = fmt.Errorf("%w: absurd float count %d", ErrCorrupt, n)
		return nil
	}
	out := make([]float64, int(n))
	for i := range out {
		out[i] = r.f64()
	}
	return out
}
