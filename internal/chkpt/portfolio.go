package chkpt

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"complx/internal/faultinject"
	"complx/internal/fsatomic"
	"complx/internal/obs"
	"complx/internal/perr"
)

// PortfolioVersion is the portfolio checkpoint format version; decoding
// refuses other versions.
const PortfolioVersion = 1

// pfMagic identifies a complx portfolio checkpoint file.
const pfMagic = "CPLXPFK1"

// PortfolioFileName is the portfolio checkpoint file inside a checkpoint
// directory. It lives next to FileName; a portfolio run persists the member
// table here and never writes the single-run file.
const PortfolioFileName = "portfolio.ckpt"

// MemberState is one portfolio member's entry in the round-boundary member
// table. The engine snapshot is kept in its encoded form: resuming a member
// or forking it into a reseed goes through Fork, so a restored portfolio is
// byte-for-byte the one that was saved and nested corruption is detected at
// use, where the driver can fall back to a cold restart instead of failing
// the run.
type MemberState struct {
	// Variant is the member's configuration-variant index (a pure function
	// of the member index; recorded for humans and sanity checks).
	Variant int
	// Finished marks a member whose engine loop converged; it skips further
	// segments and carries its result forward unless reseeded.
	Finished bool
	// Score is the member's scalarized score at the last synchronization
	// round (overflow-weighted HPWL; lower is better).
	Score float64
	// Snapshot is the Encode image of the member's engine state at the
	// round boundary; nil means the member (re)starts cold.
	Snapshot []byte
}

// PortfolioState is the portfolio driver's round-boundary snapshot: the
// member table, the per-member perturbation RNG streams and the round
// index. Together with the deterministic round loop it makes a SIGKILL
// mid-round resume bitwise: the run restarts from the last completed round
// and replays the interrupted round from identical inputs.
type PortfolioState struct {
	// Design names the netlist; Fingerprint binds the file to one design
	// and option set (Manager.SavePortfolio stamps, LoadPortfolio rejects).
	Design      string
	Fingerprint [32]byte
	// Round is the number of fully completed synchronization rounds
	// (cull/reseed included); the resumed run continues with round Round+1.
	Round int
	// RNG holds each member's perturbation stream state (splitmix64),
	// advanced past every draw the completed rounds consumed.
	RNG []uint64
	// Culls and Reseeds are cumulative driver counters, carried so a
	// resumed run reports the same totals as an uninterrupted one.
	Culls, Reseeds int
	// Members is the member table, indexed by member.
	Members []MemberState
}

// Fork materializes an encoded engine snapshot into a fresh State: decode,
// verify (magic, version, checksum) and check that the snapshot carries
// this run's fingerprint. Because it is exactly the resume decode path, a
// forked member is bitwise a resume — the portfolio's reseed is Fork plus
// a perturbation. Errors are the codec's typed sentinels (ErrCorrupt,
// ErrFingerprint, ...); callers are expected to treat a failed fork as
// "snapshot unusable" and cold-restart the member rather than fail the run.
func Fork(data []byte, fingerprint [32]byte) (*State, error) {
	st, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if st.Fingerprint != fingerprint {
		return nil, fmt.Errorf("%w (forked snapshot: design %q, algorithm %q)",
			ErrFingerprint, st.Design, st.Algorithm)
	}
	return st, nil
}

// EncodePortfolio renders ps into the versioned, checksummed portfolio
// checkpoint format. Deterministic: identical states produce identical
// bytes. Member snapshots are embedded verbatim, so a save/load round-trip
// preserves them bit-for-bit without re-encoding.
func EncodePortfolio(ps *PortfolioState) []byte {
	var p payload
	p.str(ps.Design)
	p.bytes(ps.Fingerprint[:])
	p.i64(ps.Round)
	p.i64(len(ps.RNG))
	for _, v := range ps.RNG {
		p.u64(v)
	}
	p.i64(ps.Culls)
	p.i64(ps.Reseeds)
	p.i64(len(ps.Members))
	for _, m := range ps.Members {
		p.i64(m.Variant)
		if m.Finished {
			p.i64(1)
		} else {
			p.i64(0)
		}
		p.f64(m.Score)
		if m.Snapshot == nil {
			p.u64(math.MaxUint64)
		} else {
			p.blob(m.Snapshot)
		}
	}

	out := make([]byte, 0, len(pfMagic)+4+8+len(p.b)+sha256.Size)
	out = append(out, pfMagic...)
	out = binary.LittleEndian.AppendUint32(out, PortfolioVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(p.b)))
	out = append(out, p.b...)
	sum := sha256.Sum256(out)
	return append(out, sum[:]...)
}

// DecodePortfolio parses and verifies a portfolio checkpoint image. Nested
// member snapshots are not decoded here — Fork validates them at use, so a
// single corrupt member degrades to a cold restart instead of discarding
// the whole portfolio. Fingerprint validation is the caller's job
// (Manager.LoadPortfolio).
func DecodePortfolio(data []byte) (*PortfolioState, error) {
	head := len(pfMagic) + 4 + 8
	if len(data) < head+sha256.Size {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the fixed header", ErrCorrupt, len(data))
	}
	if string(data[:len(pfMagic)]) != pfMagic {
		return nil, ErrBadMagic
	}
	ver := binary.LittleEndian.Uint32(data[len(pfMagic):])
	if ver != PortfolioVersion {
		return nil, fmt.Errorf("%w: file version %d, supported %d", ErrBadVersion, ver, PortfolioVersion)
	}
	plen := binary.LittleEndian.Uint64(data[len(pfMagic)+4:])
	if uint64(len(data)) != uint64(head)+plen+sha256.Size {
		return nil, fmt.Errorf("%w: payload length %d does not match file size %d", ErrCorrupt, plen, len(data))
	}
	body := data[:head+int(plen)]
	sum := sha256.Sum256(body)
	if subtle.ConstantTimeCompare(sum[:], data[len(body):]) != 1 {
		return nil, fmt.Errorf("%w: SHA-256 mismatch", ErrCorrupt)
	}

	r := &reader{b: data[head : head+int(plen)]}
	ps := &PortfolioState{}
	ps.Design = r.str()
	copy(ps.Fingerprint[:], r.take(32))
	ps.Round = r.i64()
	nr := r.i64()
	if r.err == nil && (nr < 0 || nr > r.remaining()/8) {
		r.err = fmt.Errorf("%w: absurd RNG stream count %d", ErrCorrupt, nr)
	}
	if r.err == nil {
		ps.RNG = make([]uint64, nr)
		for i := range ps.RNG {
			ps.RNG[i] = r.u64()
		}
	}
	ps.Culls = r.i64()
	ps.Reseeds = r.i64()
	nm := r.i64()
	if r.err == nil && (nm < 0 || nm > r.remaining()/24) {
		r.err = fmt.Errorf("%w: absurd member count %d", ErrCorrupt, nm)
	}
	if r.err == nil {
		ps.Members = make([]MemberState, nm)
		for i := range ps.Members {
			m := &ps.Members[i]
			m.Variant = r.i64()
			m.Finished = r.i64() != 0
			m.Score = r.f64()
			n := r.u64()
			if n != math.MaxUint64 {
				b := r.take(int(n))
				if b != nil {
					m.Snapshot = append([]byte(nil), b...)
				}
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, r.remaining())
	}
	return ps, nil
}

// PortfolioPath returns the portfolio checkpoint file path.
func (m *Manager) PortfolioPath() string { return filepath.Join(m.Dir, PortfolioFileName) }

// SavePortfolio persists the portfolio round-boundary state with the same
// atomicity contract as Save: fingerprint stamped, temp file + fsync +
// rename, so a crash at any instant leaves the previous round readable.
func (m *Manager) SavePortfolio(ps *PortfolioState) error {
	span := m.Obs.StartSpan("checkpoint_portfolio")
	defer span.End()
	ps.Fingerprint = m.Fingerprint
	err := m.savePortfolio(ps)
	if err != nil {
		m.Obs.AddCount(obs.MetricCheckpointErrors, 1)
		return perr.Wrap(perr.StageCheckpoint, err)
	}
	m.Obs.AddCount(obs.MetricCheckpointSaves, 1)
	m.Obs.SetGauge(obs.MetricCheckpointIter, float64(ps.Round))
	return nil
}

func (m *Manager) savePortfolio(ps *PortfolioState) error {
	if m.Dir == "" {
		return fmt.Errorf("chkpt: Manager.Dir is empty")
	}
	if err := faultinject.FireErr(faultinject.CheckpointSave, m.PortfolioPath()); err != nil {
		return err
	}
	if err := os.MkdirAll(m.Dir, 0o755); err != nil {
		return err
	}
	data := EncodePortfolio(ps)
	if err := fsatomic.WriteFile(m.PortfolioPath(), 0o644, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	}); err != nil {
		return err
	}
	m.Obs.SetGauge(obs.MetricCheckpointBytes, float64(len(data)))
	return nil
}

// LoadPortfolio reads, decodes and validates the directory's portfolio
// checkpoint, with the same error contract as Load.
func (m *Manager) LoadPortfolio() (*PortfolioState, error) {
	data, err := os.ReadFile(m.PortfolioPath())
	if err != nil {
		return nil, perr.Wrap(perr.StageCheckpoint, fmt.Errorf("chkpt: read portfolio checkpoint: %w", err))
	}
	ps, err := DecodePortfolio(data)
	if err != nil {
		return nil, perr.WithFile(perr.Wrap(perr.StageCheckpoint, err), m.PortfolioPath())
	}
	if ps.Fingerprint != m.Fingerprint {
		return nil, perr.WithFile(perr.Wrap(perr.StageCheckpoint,
			fmt.Errorf("%w (portfolio checkpoint design %q)", ErrFingerprint, ps.Design)), m.PortfolioPath())
	}
	return ps, nil
}

// PortfolioExists reports whether the directory holds a portfolio
// checkpoint file (readable or not — LoadPortfolio validates).
func (m *Manager) PortfolioExists() bool {
	_, err := os.Stat(m.PortfolioPath())
	return err == nil
}
