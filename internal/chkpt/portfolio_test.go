package chkpt

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
)

func fullPortfolioState() *PortfolioState {
	snap := Encode(fullState())
	ps := &PortfolioState{
		Design:  "adaptec-mini",
		Round:   2,
		RNG:     []uint64{0, 1, math.MaxUint64, 0x9e3779b97f4a7c15},
		Culls:   3,
		Reseeds: 3,
		Members: []MemberState{
			{Variant: 0, Score: 12345.5, Snapshot: snap},
			{Variant: 1, Finished: true, Score: 13000.25, Snapshot: append([]byte(nil), snap...)},
			{Variant: 2, Score: math.Inf(1), Snapshot: nil}, // cold member
		},
	}
	ps.Fingerprint = Fingerprint("algo=complx", "design=adaptec-mini")
	return ps
}

func TestPortfolioEncodeDecodeRoundTrip(t *testing.T) {
	ps := fullPortfolioState()
	got, err := DecodePortfolio(EncodePortfolio(ps))
	if err != nil {
		t.Fatalf("DecodePortfolio: %v", err)
	}
	if !reflect.DeepEqual(ps, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", ps, got)
	}
	// Nested member snapshots must survive byte-for-byte: a resumed member
	// decodes the exact image the interrupted run encoded.
	if !bytes.Equal(got.Members[0].Snapshot, ps.Members[0].Snapshot) {
		t.Fatal("member snapshot bytes changed across the portfolio round trip")
	}
}

func TestPortfolioEncodeDeterministic(t *testing.T) {
	a := EncodePortfolio(fullPortfolioState())
	b := EncodePortfolio(fullPortfolioState())
	if !bytes.Equal(a, b) {
		t.Fatal("EncodePortfolio is not deterministic")
	}
}

func TestPortfolioDecodeRejectsCorruption(t *testing.T) {
	good := EncodePortfolio(fullPortfolioState())

	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodePortfolio(good[:len(good)-7]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt, got %v", err)
		}
	})
	t.Run("bit-flip", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)/2] ^= 0x40
		if _, err := DecodePortfolio(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt, got %v", err)
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		copy(bad, "NOTAPFKP")
		if _, err := DecodePortfolio(bad); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("want ErrBadMagic, got %v", err)
		}
	})
	t.Run("single-run-checkpoint", func(t *testing.T) {
		// The two formats share a directory; feeding one to the other's
		// decoder must fail loudly, not misparse.
		if _, err := DecodePortfolio(Encode(fullState())); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("want ErrBadMagic, got %v", err)
		}
	})
}

// TestForkRoundTripsCodec pins the fork contract: forking an encoded
// snapshot yields a state that is deep-equal to the original and re-encodes
// to the identical bytes, so a reseeded member starts bitwise as a resume
// would.
func TestForkRoundTripsCodec(t *testing.T) {
	st := fullState()
	data := Encode(st)
	forked, err := Fork(data, st.Fingerprint)
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if !reflect.DeepEqual(st, forked) {
		t.Fatalf("forked state differs from original:\n in: %+v\nout: %+v", st, forked)
	}
	if !bytes.Equal(Encode(forked), data) {
		t.Fatal("forked state does not re-encode to the original bytes")
	}
	// The fork is a deep copy: mutating it must not alias the original.
	forked.Positions[0].X = 777
	forked.History[0].Phi = -1
	if st.Positions[0].X == 777 || st.History[0].Phi == -1 {
		t.Fatal("Fork aliased the original state's slices")
	}
}

// TestForkRejectsFingerprintMismatch: a member snapshot from a different
// design/option set must not be forked into this portfolio.
func TestForkRejectsFingerprintMismatch(t *testing.T) {
	st := fullState()
	other := Fingerprint("algo=complx", "design=somebody-else")
	if _, err := Fork(Encode(st), other); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("want ErrFingerprint, got %v", err)
	}
}

// TestForkCorruptSnapshot: forking a corrupt snapshot reports ErrCorrupt —
// the portfolio driver's reseed path treats that as "snapshot unusable"
// and cold-restarts the member instead of failing the run (pinned end to
// end by the driver tests in internal/portfolio).
func TestForkCorruptSnapshot(t *testing.T) {
	st := fullState()
	data := Encode(st)
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0x01 // break the checksum
	if _, err := Fork(bad, st.Fingerprint); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if _, err := Fork(nil, st.Fingerprint); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("nil snapshot: want ErrCorrupt, got %v", err)
	}
}

func TestManagerPortfolioSaveLoadRoundTrip(t *testing.T) {
	m := newManager(t)
	ps := fullPortfolioState()
	ps.Fingerprint = [32]byte{} // SavePortfolio must stamp the manager's
	if err := m.SavePortfolio(ps); err != nil {
		t.Fatalf("SavePortfolio: %v", err)
	}
	if !m.PortfolioExists() {
		t.Fatal("PortfolioExists is false after SavePortfolio")
	}
	got, err := m.LoadPortfolio()
	if err != nil {
		t.Fatalf("LoadPortfolio: %v", err)
	}
	if got.Fingerprint != m.Fingerprint {
		t.Fatal("loaded portfolio does not carry the manager fingerprint")
	}
	if !reflect.DeepEqual(ps, got) {
		t.Fatalf("portfolio save/load mismatch:\n in: %+v\nout: %+v", ps, got)
	}
	// The single-run checkpoint file is untouched by portfolio saves.
	if m.Exists() {
		t.Fatal("SavePortfolio created the single-run checkpoint file")
	}
}

func TestManagerLoadPortfolioRejectsWrongFingerprint(t *testing.T) {
	m := newManager(t)
	if err := m.SavePortfolio(fullPortfolioState()); err != nil {
		t.Fatalf("SavePortfolio: %v", err)
	}
	m2 := &Manager{Dir: m.Dir, Fingerprint: Fingerprint("design=other")}
	if _, err := m2.LoadPortfolio(); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("want ErrFingerprint, got %v", err)
	}
}
