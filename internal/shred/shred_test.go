package shred

import (
	"math"
	"testing"

	"complx/internal/geom"
	"complx/internal/netlist"
)

// mixedDesign has one std cell and one 8x8 macro with row height 1.
func mixedDesign(t *testing.T) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("mix")
	b.SetCore(geom.Rect{XMax: 100, YMax: 100})
	c := b.AddCell("c", 2, 1)
	m := b.AddMacro("m", 8, 8)
	p := b.AddFixed("p", 0, 0, 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}, {Cell: m}, {Cell: p}})
	b.AddUniformRows(100, 1, 1)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells[c].SetCenter(geom.Point{X: 20, Y: 20})
	nl.Cells[m].SetCenter(geom.Point{X: 50, Y: 50})
	return nl
}

func TestShredCounts(t *testing.T) {
	nl := mixedDesign(t)
	s := New(nl, 1.0)
	// Row height 1 => shred side 2 => the 8x8 macro becomes 4x4 = 16 shreds.
	if s.NumItems() != 1+16 {
		t.Fatalf("NumItems = %d, want 17", s.NumItems())
	}
	if s.ShredCount(0) != 1 || s.ShredCount(1) != 16 {
		t.Errorf("ShredCount = %d, %d", s.ShredCount(0), s.ShredCount(1))
	}
	if s.Owner(0) != 0 || s.Owner(1) != 1 || s.Owner(16) != 1 {
		t.Error("Owner mapping wrong")
	}
}

func TestItemsTileTheMacro(t *testing.T) {
	nl := mixedDesign(t)
	s := New(nl, 1.0)
	items := s.Items()
	// Std cell item sits at the cell center with full dims.
	if items[0].Pos != (geom.Point{X: 20, Y: 20}) || items[0].W != 2 || items[0].H != 1 {
		t.Errorf("std item = %+v", items[0])
	}
	// Shreds: 16 items of 2x2 centered inside the macro, total area = macro
	// area at gamma=1.
	var area float64
	box := geom.Rect{XMin: 1e300, YMin: 1e300, XMax: -1e300, YMax: -1e300}
	for _, it := range items[1:] {
		area += it.Area()
		box = box.Union(geom.RectWH(it.Pos.X-it.W/2, it.Pos.Y-it.H/2, it.W, it.H))
	}
	if math.Abs(area-64) > 1e-9 {
		t.Errorf("shred area = %v, want 64", area)
	}
	want := geom.Rect{XMin: 46, YMin: 46, XMax: 54, YMax: 54}
	if box != want {
		t.Errorf("shred bbox = %v, want %v", box, want)
	}
}

func TestGammaScalesShreds(t *testing.T) {
	nl := mixedDesign(t)
	s := New(nl, 0.25)
	items := s.Items()
	// sqrt(0.25) = 0.5: each 2x2 shred becomes 1x1.
	for _, it := range items[1:] {
		if math.Abs(it.W-1) > 1e-9 || math.Abs(it.H-1) > 1e-9 {
			t.Fatalf("shred dims = %v x %v, want 1x1", it.W, it.H)
		}
	}
	// Std cells are never scaled.
	if items[0].W != 2 {
		t.Errorf("std cell scaled: %v", items[0].W)
	}
}

func TestInterpolateIdentity(t *testing.T) {
	nl := mixedDesign(t)
	s := New(nl, 1.0)
	items := s.Items()
	proj := make([]geom.Point, len(items))
	for i := range items {
		proj[i] = items[i].Pos
	}
	out, err := s.Interpolate(proj)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != (geom.Point{X: 20, Y: 20}) || out[1] != (geom.Point{X: 50, Y: 50}) {
		t.Errorf("identity interpolation moved cells: %v", out)
	}
}

func TestInterpolateAveragesDisplacement(t *testing.T) {
	nl := mixedDesign(t)
	s := New(nl, 1.0)
	items := s.Items()
	proj := make([]geom.Point, len(items))
	for i := range items {
		proj[i] = items[i].Pos
	}
	// Move every macro shred by (+10, -5); move the std cell by (1, 2).
	proj[0] = proj[0].Add(geom.Point{X: 1, Y: 2})
	for i := 1; i < len(proj); i++ {
		proj[i] = proj[i].Add(geom.Point{X: 10, Y: -5})
	}
	out, err := s.Interpolate(proj)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != (geom.Point{X: 21, Y: 22}) {
		t.Errorf("std moved to %v", out[0])
	}
	if out[1] != (geom.Point{X: 60, Y: 45}) {
		t.Errorf("macro moved to %v, want (60, 45)", out[1])
	}
}

func TestInterpolatePartialDisplacement(t *testing.T) {
	nl := mixedDesign(t)
	s := New(nl, 1.0)
	items := s.Items()
	proj := make([]geom.Point, len(items))
	for i := range items {
		proj[i] = items[i].Pos
	}
	// Move only half the shreds by +8 in x: macro moves by the average +4.
	moved := 0
	for i := 1; i < len(proj) && moved < 8; i++ {
		proj[i] = proj[i].Add(geom.Point{X: 8})
		moved++
	}
	out, err := s.Interpolate(proj)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[1].X-54) > 1e-9 {
		t.Errorf("macro x = %v, want 54", out[1].X)
	}
}

func TestInterpolateClampsToCore(t *testing.T) {
	nl := mixedDesign(t)
	s := New(nl, 1.0)
	items := s.Items()
	proj := make([]geom.Point, len(items))
	for i := range items {
		proj[i] = items[i].Pos.Add(geom.Point{X: 1000}) // far outside
	}
	out, err := s.Interpolate(proj)
	if err != nil {
		t.Fatal(err)
	}
	// Macro is 8 wide: center can be at most 96.
	if out[1].X > 96+1e-9 {
		t.Errorf("macro center %v beyond clamp", out[1].X)
	}
}

func TestInterpolateLengthMismatchErrors(t *testing.T) {
	nl := mixedDesign(t)
	s := New(nl, 1.0)
	if _, err := s.Interpolate(make([]geom.Point, 2)); err == nil {
		t.Error("expected error for mismatched projection slice")
	}
}

func TestShredBBox(t *testing.T) {
	nl := mixedDesign(t)
	s := New(nl, 1.0)
	items := s.Items()
	proj := make([]geom.Point, len(items))
	for i := range items {
		proj[i] = items[i].Pos
	}
	box := s.ShredBBox(1, proj)
	want := geom.Rect{XMin: 46, YMin: 46, XMax: 54, YMax: 54}
	if box != want {
		t.Errorf("ShredBBox = %v, want %v", box, want)
	}
}

func TestTinyMacroGetsOneShred(t *testing.T) {
	b := netlist.NewBuilder("tiny")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	m := b.AddMacro("m", 1.5, 1.5)
	p := b.AddFixed("p", 0, 0, 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: m}, {Cell: p}})
	b.AddUniformRows(10, 1, 1)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(nl, 1.0)
	if s.NumItems() != 1 {
		t.Errorf("tiny macro shreds = %d, want 1", s.NumItems())
	}
}
