// Package shred implements the macro-shredding technique ComPLx uses for
// mixed-size feasibility projection (paper §5, Figure 2): each movable macro
// is divided into equal-sized constituent cells ("shreds") of roughly
// 2×2-standard-row-height, with no fake nets connecting them. The
// feasibility projection acts on the shreds; the projected macro location is
// then interpolated as the average shred displacement. Shred dimensions are
// scaled by √γ so that the spread array of shreds leaves a whitespace halo
// around the macro.
package shred

import (
	"fmt"
	"math"

	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/spread"
)

// Shredder maps the movable objects of a netlist to projection items:
// standard cells map 1:1, movable macros map to grids of shreds.
type Shredder struct {
	nl *netlist.Netlist
	// owner[i] is the movable index (into nl.Movables()) of item i.
	owner []int
	// offset[i] is the item's offset from its owner's center (zero for
	// standard cells).
	offset []geom.Point
	// dims[i] are the item dimensions.
	dims []geom.Point
	// shredsOf[k] counts the items of movable k.
	shredsOf []int
}

// New builds a shredder for the current netlist. gamma is the target
// density used for the √γ halo scaling (clamped to (0,1]).
func New(nl *netlist.Netlist, gamma float64) *Shredder {
	if gamma <= 0 || gamma > 1 {
		gamma = 1
	}
	scale := math.Sqrt(gamma)
	shredSide := 2 * nl.RowHeight()
	s := &Shredder{nl: nl}
	s.shredsOf = make([]int, nl.NumMovable())
	for k, i := range nl.Movables() {
		c := &nl.Cells[i]
		if c.Kind != netlist.Macro {
			s.owner = append(s.owner, k)
			s.offset = append(s.offset, geom.Point{})
			s.dims = append(s.dims, geom.Point{X: c.W, Y: c.H})
			s.shredsOf[k] = 1
			continue
		}
		nx := int(math.Max(1, math.Round(c.W/shredSide)))
		ny := int(math.Max(1, math.Round(c.H/shredSide)))
		sw, sh := c.W/float64(nx), c.H/float64(ny)
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				off := geom.Point{
					X: -c.W/2 + (float64(ix)+0.5)*sw,
					Y: -c.H/2 + (float64(iy)+0.5)*sh,
				}
				s.owner = append(s.owner, k)
				s.offset = append(s.offset, off)
				// √γ scaling creates the halo (paper §5).
				s.dims = append(s.dims, geom.Point{X: sw * scale, Y: sh * scale})
			}
		}
		s.shredsOf[k] = nx * ny
	}
	return s
}

// NumItems returns the total projection item count.
func (s *Shredder) NumItems() int { return len(s.owner) }

// Owner returns the movable index of item i.
func (s *Shredder) Owner(i int) int { return s.owner[i] }

// ShredCount returns the number of items representing movable k.
func (s *Shredder) ShredCount(k int) int { return s.shredsOf[k] }

// Items materializes the projection items at the netlist's current
// positions.
func (s *Shredder) Items() []spread.Item {
	mov := s.nl.Movables()
	items := make([]spread.Item, len(s.owner))
	for i, k := range s.owner {
		c := s.nl.Cells[mov[k]].Center()
		items[i] = spread.Item{
			Pos: c.Add(s.offset[i]),
			W:   s.dims[i].X,
			H:   s.dims[i].Y,
		}
	}
	return items
}

// Interpolate converts projected item positions back to per-movable centers:
// a standard cell takes its item position; a macro takes its current center
// plus the average displacement of its shreds (paper §5). A projected slice
// whose length disagrees with the shredder's item count returns an error.
func (s *Shredder) Interpolate(projected []geom.Point) ([]geom.Point, error) {
	if len(projected) != len(s.owner) {
		return nil, fmt.Errorf("shred: Interpolate got %d projected points for %d items",
			len(projected), len(s.owner))
	}
	mov := s.nl.Movables()
	out := make([]geom.Point, len(mov))
	count := make([]int, len(mov))
	// Accumulate displacements.
	for i, k := range s.owner {
		c := s.nl.Cells[mov[k]].Center()
		want := c.Add(s.offset[i])
		d := projected[i].Sub(want)
		out[k] = out[k].Add(d)
		count[k]++
	}
	for k := range out {
		c := s.nl.Cells[mov[k]].Center()
		if count[k] > 0 {
			out[k] = c.Add(out[k].Scale(1 / float64(count[k])))
		} else {
			out[k] = c
		}
	}
	// Keep interpolated centers inside the core.
	core := s.nl.Core
	for k := range out {
		cell := &s.nl.Cells[mov[k]]
		hw := math.Min(cell.W/2, core.Width()/2)
		hh := math.Min(cell.H/2, core.Height()/2)
		out[k].X = geom.Clamp(out[k].X, core.XMin+hw, core.XMax-hw)
		out[k].Y = geom.Clamp(out[k].Y, core.YMin+hh, core.YMax-hh)
	}
	return out, nil
}

// ShredBBox returns the bounding box of the projected shreds of movable k —
// used for diagnostics such as the Figure 2 halo statistics.
func (s *Shredder) ShredBBox(k int, projected []geom.Point) geom.Rect {
	box := geom.Rect{XMin: math.Inf(1), YMin: math.Inf(1), XMax: math.Inf(-1), YMax: math.Inf(-1)}
	for i, owner := range s.owner {
		if owner != k {
			continue
		}
		p := projected[i]
		hw, hh := s.dims[i].X/2, s.dims[i].Y/2
		box = box.Union(geom.Rect{XMin: p.X - hw, YMin: p.Y - hh, XMax: p.X + hw, YMax: p.Y + hh})
	}
	return box
}
