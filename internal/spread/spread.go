// Package spread implements the feasibility projection P_C of ComPLx
// (paper Formula 9): an approximate look-ahead legalization that maps the
// current placement to a nearby density-feasible one.
//
// The algorithm follows SimPL's look-ahead legalization restructured as in
// paper §S2: overfilled bins are clustered and each cluster is expanded to
// the smallest rectangular bin region whose capacity (free area × target
// density γ) covers the contained movable area; the region is then processed
// top-down by geometric partitioning with cell-area-median cutlines and
// order-preserving linear scaling of the coordinates, alternating split
// directions. The projection is approximate by design — the paper proves
// convergence only needs P_C not to increase the distance to the feasible
// set — and returns its input untouched when the input is already feasible.
package spread

import (
	"context"
	"fmt"
	"math"
	"sort"

	"complx/internal/density"
	"complx/internal/geom"
	"complx/internal/obs"
)

// Item is one movable object seen by the projection: a standard cell, a
// movable macro shred, or any other area-carrying rectangle.
type Item struct {
	// Pos is the item center.
	Pos geom.Point
	// W, H are the item dimensions used for area accounting.
	W, H float64
}

// Area returns the item's area.
func (it Item) Area() float64 { return it.W * it.H }

// Options tunes the projection.
type Options struct {
	// MinItems is the leaf threshold of the recursive partitioning.
	// Defaults to 2.
	MinItems int
	// MaxPasses bounds how many cluster-and-spread sweeps run per call;
	// a sweep is skipped early once no bin is overfilled. Defaults to 2.
	MaxPasses int
	// OptimalLeaf distributes leaf regions by the exact 1-D
	// squared-displacement optimum (pool-adjacent-violators over the §S2
	// gap variables) instead of uniform cumulative-area spreading; lower
	// displacement at slightly higher residual overflow.
	OptimalLeaf bool
	// Obs, when non-nil, counts cluster-and-spread sweeps and processed
	// overfilled regions. Read-only instrumentation; never changes the
	// projection.
	Obs *obs.Observer
}

func (o *Options) fill() {
	if o.MinItems <= 0 {
		o.MinItems = 2
	}
	if o.MaxPasses <= 0 {
		o.MaxPasses = 2
	}
}

// Projector computes feasibility projections against a density grid. The
// grid provides per-bin capacities (already excluding fixed obstacles and
// scaled by the target density).
type Projector struct {
	g   *density.Grid
	opt Options

	// scratch, sized to the grid
	usage   []float64
	cluster []int32
	// scratch, sized to the item set
	pos     []geom.Point
	binOf   []int32
	claimed []bool
}

// NewProjector returns a projector over the given grid.
func NewProjector(g *density.Grid, opt Options) *Projector {
	opt.fill()
	n := g.NX * g.NY
	return &Projector{
		g:       g,
		opt:     opt,
		usage:   make([]float64, n),
		cluster: make([]int32, n),
	}
}

// Project returns the projected center positions for items. The input slice
// is not modified. Projected positions satisfy the per-bin density targets
// approximately; items in feasible areas are left in place.
func (p *Projector) Project(items []Item) []geom.Point {
	out, _ := p.ProjectCtx(context.Background(), items)
	return out
}

// ProjectCtx is Project with cooperative cancellation: the context is polled
// between passes and once per cluster region inside each pass, so even a
// single sweep over a pathological placement observes cancellation within
// one region. On cancellation the positions projected so far are clamped to
// the core and returned together with the wrapped ctx error; they remain a
// usable (if less feasible) placement.
func (p *Projector) ProjectCtx(ctx context.Context, items []Item) ([]geom.Point, error) {
	out := make([]geom.Point, len(items))
	for i := range items {
		out[i] = items[i].Pos
	}
	if len(p.claimed) < len(items) {
		p.binOf = make([]int32, len(items))
		p.claimed = make([]bool, len(items))
	}
	p.pos = out
	var err error
	for pass := 0; pass < p.opt.MaxPasses; pass++ {
		var again bool
		again, err = p.sweep(ctx, items)
		if err != nil || !again {
			break
		}
	}
	p.clampToCore(items)
	return out, err
}

// sweep performs one cluster-and-spread pass; it reports whether any
// overfilled region was processed. The context is checked once per cluster
// region; on cancellation the sweep stops between regions and returns the
// wrapped ctx error.
func (p *Projector) sweep(ctx context.Context, items []Item) (bool, error) {
	g := p.g
	nBins := g.NX * g.NY
	for i := 0; i < nBins; i++ {
		p.usage[i] = 0
		p.cluster[i] = -1
	}
	for i := range items {
		ix, iy := g.BinOf(p.pos[i])
		k := iy*g.NX + ix
		p.binOf[i] = int32(k)
		p.usage[k] += items[i].Area()
		p.claimed[i] = false
	}

	// Identify overfilled bins and cluster them with 4-neighbor BFS.
	type clusterInfo struct {
		id       int32
		overflow float64
		x0, y0   int
		x1, y1   int // inclusive bin bbox
	}
	var clusters []clusterInfo
	queue := make([]int, 0, 64)
	for start := 0; start < nBins; start++ {
		if p.cluster[start] >= 0 || !p.overfilledBin(start) {
			continue
		}
		id := int32(len(clusters))
		ci := clusterInfo{id: id, x0: g.NX, y0: g.NY, x1: -1, y1: -1}
		queue = append(queue[:0], start)
		p.cluster[start] = id
		for len(queue) > 0 {
			b := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			bx, by := b%g.NX, b/g.NX
			ci.overflow += p.usage[b] - p.capOf(b)
			if bx < ci.x0 {
				ci.x0 = bx
			}
			if bx > ci.x1 {
				ci.x1 = bx
			}
			if by < ci.y0 {
				ci.y0 = by
			}
			if by > ci.y1 {
				ci.y1 = by
			}
			for _, nb := range p.neighbors(bx, by) {
				if p.cluster[nb] < 0 && p.overfilledBin(nb) {
					p.cluster[nb] = id
					queue = append(queue, nb)
				}
			}
		}
		clusters = append(clusters, ci)
	}
	if len(clusters) == 0 {
		return false, nil
	}
	sort.Slice(clusters, func(a, b int) bool { return clusters[a].overflow > clusters[b].overflow })
	p.opt.Obs.AddCount(obs.MetricSpreadSweeps, 1)
	p.opt.Obs.AddCount(obs.MetricSpreadRegions, float64(len(clusters)))

	for _, ci := range clusters {
		if err := ctx.Err(); err != nil {
			return true, fmt.Errorf("spread: projection cancelled: %w", err)
		}
		region := p.expandRegion(ci.x0, ci.y0, ci.x1+1, ci.y1+1)
		sel := p.itemsIn(items, region)
		if len(sel) == 0 {
			continue
		}
		p.spreadRegion(items, region, sel, 0)
		for _, i := range sel {
			p.claimed[i] = true
		}
		// Update bin assignment and usage for moved items so later
		// clusters see current state.
		for _, i := range sel {
			old := p.binOf[i]
			p.usage[old] -= items[i].Area()
			ix, iy := p.g.BinOf(p.pos[i])
			k := iy*p.g.NX + ix
			p.binOf[i] = int32(k)
			p.usage[k] += items[i].Area()
		}
	}
	return true, nil
}

func (p *Projector) capOf(bin int) float64 {
	return p.g.Capacity(bin%p.g.NX, bin/p.g.NX)
}

func (p *Projector) overfilledBin(bin int) bool {
	return p.usage[bin] > p.capOf(bin)*(1+1e-9)+1e-12
}

func (p *Projector) neighbors(bx, by int) []int {
	var out [4]int
	n := 0
	if bx > 0 {
		out[n] = by*p.g.NX + bx - 1
		n++
	}
	if bx+1 < p.g.NX {
		out[n] = by*p.g.NX + bx + 1
		n++
	}
	if by > 0 {
		out[n] = (by-1)*p.g.NX + bx
		n++
	}
	if by+1 < p.g.NY {
		out[n] = (by+1)*p.g.NX + bx
		n++
	}
	return out[:n]
}

// binRegion is a half-open bin-index rectangle.
type binRegion struct {
	x0, y0, x1, y1 int
}

func (r binRegion) bins() int { return (r.x1 - r.x0) * (r.y1 - r.y0) }

// rect converts the bin region to core coordinates.
func (p *Projector) rect(r binRegion) geom.Rect {
	g := p.g
	return geom.Rect{
		XMin: g.Core.XMin + float64(r.x0)*g.BinW,
		YMin: g.Core.YMin + float64(r.y0)*g.BinH,
		XMax: g.Core.XMin + float64(r.x1)*g.BinW,
		YMax: g.Core.YMin + float64(r.y1)*g.BinH,
	}
}

func (p *Projector) regionCapacity(r binRegion) float64 {
	var s float64
	for iy := r.y0; iy < r.y1; iy++ {
		for ix := r.x0; ix < r.x1; ix++ {
			s += p.g.Capacity(ix, iy)
		}
	}
	return s
}

func (p *Projector) regionArea(r binRegion) float64 {
	var s float64
	for iy := r.y0; iy < r.y1; iy++ {
		for ix := r.x0; ix < r.x1; ix++ {
			s += p.usage[iy*p.g.NX+ix]
		}
	}
	return s
}

// itemsIn returns the unclaimed items whose current bin lies in the region.
func (p *Projector) itemsIn(items []Item, r binRegion) []int {
	var sel []int
	for i := range items {
		if p.claimed[i] {
			continue
		}
		b := int(p.binOf[i])
		bx, by := b%p.g.NX, b/p.g.NX
		if bx >= r.x0 && bx < r.x1 && by >= r.y0 && by < r.y1 {
			sel = append(sel, i)
		}
	}
	return sel
}

// expandRegion grows the seed bin rectangle one ring at a time until the
// contained movable area fits under the contained capacity, preferring the
// expansion direction with the largest spare capacity per step.
func (p *Projector) expandRegion(x0, y0, x1, y1 int) binRegion {
	g := p.g
	r := binRegion{x0, y0, x1, y1}
	for {
		if p.regionArea(r) <= p.regionCapacity(r) {
			return r
		}
		if r.x0 == 0 && r.y0 == 0 && r.x1 == g.NX && r.y1 == g.NY {
			return r // whole grid; nothing more to do
		}
		// Evaluate the four single-step expansions by spare capacity
		// (capacity - usage) of the added strip.
		bestGain := math.Inf(-1)
		best := r
		try := func(nr binRegion) {
			gain := p.stripGain(r, nr)
			if gain > bestGain {
				bestGain, best = gain, nr
			}
		}
		if r.x0 > 0 {
			try(binRegion{r.x0 - 1, r.y0, r.x1, r.y1})
		}
		if r.x1 < g.NX {
			try(binRegion{r.x0, r.y0, r.x1 + 1, r.y1})
		}
		if r.y0 > 0 {
			try(binRegion{r.x0, r.y0 - 1, r.x1, r.y1})
		}
		if r.y1 < g.NY {
			try(binRegion{r.x0, r.y0, r.x1, r.y1 + 1})
		}
		r = best
	}
}

// stripGain returns capacity minus usage of the bins in nr but not in r.
func (p *Projector) stripGain(r, nr binRegion) float64 {
	var gain float64
	for iy := nr.y0; iy < nr.y1; iy++ {
		for ix := nr.x0; ix < nr.x1; ix++ {
			if ix >= r.x0 && ix < r.x1 && iy >= r.y0 && iy < r.y1 {
				continue
			}
			gain += p.g.Capacity(ix, iy) - p.usage[iy*p.g.NX+ix]
		}
	}
	return gain
}

// spreadRegion recursively partitions the region and its items, scaling
// item coordinates into the sub-regions so that per-side area matches
// per-side capacity (the cell-area-median cutline of SimPL).
func (p *Projector) spreadRegion(items []Item, r binRegion, sel []int, depth int) {
	if len(sel) == 0 {
		return
	}
	wide := r.x1 - r.x0
	tall := r.y1 - r.y0
	if len(sel) <= p.opt.MinItems || (wide <= 1 && tall <= 1) || depth > 64 {
		p.distribute(items, r, sel)
		return
	}
	// Split along the physically longer side that still has >1 bin.
	horiz := p.rect(r).Width() >= p.rect(r).Height()
	if horiz && wide <= 1 {
		horiz = false
	}
	if !horiz && tall <= 1 {
		horiz = true
	}

	coord := func(i int) float64 {
		if horiz {
			return p.pos[i].X
		}
		return p.pos[i].Y
	}
	sort.Slice(sel, func(a, b int) bool { return coord(sel[a]) < coord(sel[b]) })
	var total float64
	prefix := make([]float64, len(sel)+1)
	for k, i := range sel {
		total += items[i].Area()
		prefix[k+1] = total
	}
	capTot := p.regionCapacity(r)
	if total == 0 || capTot == 0 {
		p.distribute(items, r, sel)
		return
	}

	// Choose the bin-boundary cut whose capacity fraction can be matched by
	// a feasible prefix of items.
	lo, hi := r.x0, r.x1
	if !horiz {
		lo, hi = r.y0, r.y1
	}
	bestCut, bestSplit, bestBad := -1, 0, math.Inf(1)
	for c := lo + 1; c < hi; c++ {
		var left binRegion
		if horiz {
			left = binRegion{r.x0, r.y0, c, r.y1}
		} else {
			left = binRegion{r.x0, r.y0, r.x1, c}
		}
		capL := p.regionCapacity(left)
		f := capL / capTot
		// Find the item split whose prefix area best matches f*total.
		k := sort.SearchFloat64s(prefix, f*total)
		if k > len(sel) {
			k = len(sel)
		}
		if k > 0 && k <= len(sel) && f*total-prefix[k-1] < prefix[k]-f*total {
			k--
		}
		areaL := prefix[k]
		areaR := total - areaL
		bad := math.Max(areaL-capL, 0) + math.Max(areaR-(capTot-capL), 0)
		// Prefer balanced, feasible cuts; penalize degenerate splits.
		score := bad*1e6 + math.Abs(f-0.5)
		if k == 0 || k == len(sel) {
			score += 10
		}
		if score < bestBad {
			bestBad, bestCut, bestSplit = score, c, k
		}
	}
	if bestCut < 0 {
		p.distribute(items, r, sel)
		return
	}

	var left, right binRegion
	if horiz {
		left = binRegion{r.x0, r.y0, bestCut, r.y1}
		right = binRegion{bestCut, r.y0, r.x1, r.y1}
	} else {
		left = binRegion{r.x0, r.y0, r.x1, bestCut}
		right = binRegion{r.x0, bestCut, r.x1, r.y1}
	}
	k := bestSplit
	p.scaleInto(items, sel[:k], horiz, r, left)
	p.scaleInto(items, sel[k:], horiz, r, right)
	p.spreadRegion(items, left, sel[:k], depth+1)
	p.spreadRegion(items, right, sel[k:], depth+1)
}

// scaleInto linearly maps the split coordinate of the selected items from
// their current sub-interval of the source region into the destination
// region, preserving order (SimPL's 1-D nonlinear scaling step).
func (p *Projector) scaleInto(items []Item, sel []int, horiz bool, src, dst binRegion) {
	if len(sel) == 0 {
		return
	}
	srcR, dstR := p.rect(src), p.rect(dst)
	var sLo, sHi, dLo, dHi float64
	if horiz {
		sLo, sHi, dLo, dHi = srcR.XMin, srcR.XMax, dstR.XMin, dstR.XMax
	} else {
		sLo, sHi, dLo, dHi = srcR.YMin, srcR.YMax, dstR.YMin, dstR.YMax
	}
	// The actual source span of this item group.
	gLo, gHi := math.Inf(1), math.Inf(-1)
	for _, i := range sel {
		v := p.pos[i].X
		if !horiz {
			v = p.pos[i].Y
		}
		gLo = math.Min(gLo, v)
		gHi = math.Max(gHi, v)
	}
	gLo = math.Max(math.Min(gLo, sHi), sLo)
	gHi = math.Max(math.Min(gHi, sHi), sLo)
	span := gHi - gLo
	for _, i := range sel {
		v := p.pos[i].X
		if !horiz {
			v = p.pos[i].Y
		}
		v = geom.Clamp(v, gLo, gHi)
		var nv float64
		if span <= 0 {
			nv = (dLo + dHi) / 2
		} else {
			nv = dLo + (v-gLo)/span*(dHi-dLo)
		}
		if horiz {
			p.pos[i].X = nv
		} else {
			p.pos[i].Y = nv
		}
	}
}

// distribute evens out a leaf region: items are ordered along the longer
// side and placed so cumulative area maps linearly onto the interval, while
// the other coordinate is clamped into the region.
func (p *Projector) distribute(items []Item, r binRegion, sel []int) {
	if len(sel) == 0 {
		return
	}
	rect := p.rect(r)
	horiz := rect.Width() >= rect.Height()
	coord := func(i int) float64 {
		if horiz {
			return p.pos[i].X
		}
		return p.pos[i].Y
	}
	sort.Slice(sel, func(a, b int) bool { return coord(sel[a]) < coord(sel[b]) })
	var total float64
	for _, i := range sel {
		total += items[i].Area()
	}
	var lo, hi, cross float64
	if horiz {
		lo, hi = rect.XMin, rect.XMax
		cross = rect.Height()
	} else {
		lo, hi = rect.YMin, rect.YMax
		cross = rect.Width()
	}
	span := hi - lo
	if p.opt.OptimalLeaf && total > 0 && cross > 0 {
		// Exact 1-D spreading: pitch_i = area_i / (γ·crossExtent) is the
		// axis extent each item needs to stay under the density target.
		target := p.g.Target
		desired := make([]float64, len(sel))
		pitch := make([]float64, len(sel))
		for k, i := range sel {
			w := items[i].Area() / (target * cross)
			if w > span {
				w = span
			}
			desired[k] = coord(i) - w/2 // lower edge in axis direction
			pitch[k] = w
		}
		xs := pav1D(desired, pitch, lo, hi)
		for k, i := range sel {
			v := xs[k] + pitch[k]/2
			if horiz {
				p.pos[i].X = v
				p.pos[i].Y = geom.Clamp(p.pos[i].Y, rect.YMin, rect.YMax)
			} else {
				p.pos[i].Y = v
				p.pos[i].X = geom.Clamp(p.pos[i].X, rect.XMin, rect.XMax)
			}
		}
		return
	}
	var cum float64
	for k, i := range sel {
		a := items[i].Area()
		var v float64
		if total > 0 {
			v = lo + span*(cum+a/2)/total
		} else {
			v = lo + span*(float64(k)+0.5)/float64(len(sel))
		}
		cum += a
		if horiz {
			p.pos[i].X = v
			p.pos[i].Y = geom.Clamp(p.pos[i].Y, rect.YMin, rect.YMax)
		} else {
			p.pos[i].Y = v
			p.pos[i].X = geom.Clamp(p.pos[i].X, rect.XMin, rect.XMax)
		}
	}
}

// clampToCore keeps every item's rectangle inside the core.
func (p *Projector) clampToCore(items []Item) {
	core := p.g.Core
	for i := range items {
		hw, hh := items[i].W/2, items[i].H/2
		if 2*hw > core.Width() {
			hw = core.Width() / 2
		}
		if 2*hh > core.Height() {
			hh = core.Height() / 2
		}
		p.pos[i].X = geom.Clamp(p.pos[i].X, core.XMin+hw, core.XMax-hw)
		p.pos[i].Y = geom.Clamp(p.pos[i].Y, core.YMin+hh, core.YMax-hh)
	}
}

// L1Distance returns Σ|a−b| over item centers: the Π term of the paper when
// applied to (placement, projection) pairs.
//
// A length mismatch panics (documented programmer bug): both arguments are
// always produced by Positions()/Interpolate over the same movable set
// within one iteration, so unequal lengths can only come from a broken
// internal invariant, never from external input.
func L1Distance(a, b []geom.Point) float64 {
	if len(a) != len(b) {
		panic("spread: L1Distance length mismatch")
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i].X-b[i].X) + math.Abs(a[i].Y-b[i].Y)
	}
	return s
}
