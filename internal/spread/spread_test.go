package spread

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"complx/internal/density"
	"complx/internal/geom"
)

func grid(nx, ny int, target float64) *density.Grid {
	g, err := density.NewGrid(geom.Rect{XMax: 100, YMax: 100}, nx, ny, target)
	if err != nil {
		panic(err)
	}
	return g
}

// overflowOf measures center-based overflow of items on a fresh grid.
func overflowOf(g *density.Grid, items []Item, pos []geom.Point) float64 {
	usage := make([]float64, g.NX*g.NY)
	for i := range items {
		ix, iy := g.BinOf(pos[i])
		usage[iy*g.NX+ix] += items[i].Area()
	}
	var over float64
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			if d := usage[iy*g.NX+ix] - g.Capacity(ix, iy); d > 0 {
				over += d
			}
		}
	}
	return over
}

func positions(items []Item) []geom.Point {
	out := make([]geom.Point, len(items))
	for i := range items {
		out[i] = items[i].Pos
	}
	return out
}

func TestFeasibleInputIsIdentity(t *testing.T) {
	g := grid(10, 10, 1.0)
	// Four small items in separate bins: trivially feasible.
	items := []Item{
		{Pos: geom.Point{X: 5, Y: 5}, W: 2, H: 2},
		{Pos: geom.Point{X: 35, Y: 25}, W: 2, H: 2},
		{Pos: geom.Point{X: 65, Y: 75}, W: 2, H: 2},
		{Pos: geom.Point{X: 95, Y: 95}, W: 2, H: 2},
	}
	p := NewProjector(g, Options{})
	out := p.Project(items)
	for i := range items {
		if out[i] != items[i].Pos {
			t.Errorf("item %d moved: %v -> %v", i, items[i].Pos, out[i])
		}
	}
}

func TestStackedCellsAreSpread(t *testing.T) {
	g := grid(10, 10, 1.0)
	// 100 cells of area 16 all at one point: bin capacity is 100, total
	// area 1600, so they must spread over >= 16 bins.
	var items []Item
	for i := 0; i < 100; i++ {
		items = append(items, Item{Pos: geom.Point{X: 50, Y: 50}, W: 4, H: 4})
	}
	p := NewProjector(g, Options{})
	out := p.Project(items)
	before := overflowOf(g, items, positions(items))
	after := overflowOf(g, items, out)
	if after > 0.2*before {
		t.Errorf("overflow only dropped %v -> %v", before, after)
	}
	// Everything stays inside the core.
	for i, pt := range out {
		if pt.X < 0 || pt.X > 100 || pt.Y < 0 || pt.Y > 100 {
			t.Fatalf("item %d escaped core: %v", i, pt)
		}
	}
}

func TestSpreadAvoidsObstacleCapacity(t *testing.T) {
	g := grid(10, 10, 1.0)
	// Block the left half entirely.
	g.AddObstacle(geom.Rect{XMin: 0, YMin: 0, XMax: 50, YMax: 100})
	var items []Item
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		items = append(items, Item{
			Pos: geom.Point{X: 5 + 40*rng.Float64(), Y: 100 * rng.Float64()},
			W:   3, H: 3,
		})
	}
	p := NewProjector(g, Options{})
	out := p.Project(items)
	// Blocked bins have zero capacity; most area must land on the right.
	var leftArea, total float64
	for i, pt := range out {
		total += items[i].Area()
		if pt.X < 50 {
			leftArea += items[i].Area()
		}
	}
	if leftArea > 0.15*total {
		t.Errorf("area still in blocked half: %v of %v", leftArea, total)
	}
}

func TestOrderPreservedIn1D(t *testing.T) {
	// One-row grid forces horizontal splits only; the relative x order of
	// items must be preserved (the projection is monotone per SimPL).
	g, err := density.NewGrid(geom.Rect{XMax: 100, YMax: 10}, 20, 1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var items []Item
	for i := 0; i < 60; i++ {
		items = append(items, Item{
			Pos: geom.Point{X: 40 + 20*rng.Float64(), Y: 5},
			W:   3, H: 3,
		})
	}
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return items[order[a]].Pos.X < items[order[b]].Pos.X })
	// Order preservation is guaranteed per sweep; independent regions of a
	// second pass may interleave (the projection only needs to be
	// approximately order-preserving).
	p := NewProjector(g, Options{MinItems: 1, MaxPasses: 1})
	out := p.Project(items)
	for k := 1; k < len(order); k++ {
		if out[order[k]].X < out[order[k-1]].X-1e-9 {
			t.Fatalf("order violated at rank %d: %v < %v", k, out[order[k]].X, out[order[k-1]].X)
		}
	}
	after := overflowOf(g, items, out)
	if before := overflowOf(g, items, positions(items)); after > 0.3*before {
		t.Errorf("1-D overflow %v -> %v", before, after)
	}
}

func TestProjectionRoughlyIdempotent(t *testing.T) {
	g := grid(8, 8, 0.9)
	rng := rand.New(rand.NewSource(3))
	var items []Item
	for i := 0; i < 300; i++ {
		items = append(items, Item{
			Pos: geom.Point{X: 30 + 20*rng.Float64(), Y: 30 + 20*rng.Float64()},
			W:   2.5, H: 2.5,
		})
	}
	p := NewProjector(g, Options{})
	out1 := p.Project(items)
	moved1 := L1Distance(positions(items), out1)
	items2 := make([]Item, len(items))
	copy(items2, items)
	for i := range items2 {
		items2[i].Pos = out1[i]
	}
	out2 := p.Project(items2)
	moved2 := L1Distance(out1, out2)
	if moved2 > 0.35*moved1 {
		t.Errorf("second projection moved too much: %v vs first %v", moved2, moved1)
	}
}

func TestTargetDensityRespected(t *testing.T) {
	// With γ=0.5 the same cells must spread about twice as widely.
	gTight := grid(10, 10, 1.0)
	gLoose := grid(10, 10, 0.5)
	var items []Item
	for i := 0; i < 64; i++ {
		items = append(items, Item{Pos: geom.Point{X: 50, Y: 50}, W: 5, H: 5})
	}
	span := func(pts []geom.Point) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range pts {
			lo = math.Min(lo, p.X)
			hi = math.Max(hi, p.X)
		}
		return hi - lo
	}
	out1 := NewProjector(gTight, Options{}).Project(items)
	out2 := NewProjector(gLoose, Options{}).Project(items)
	if span(out2) < span(out1) {
		t.Errorf("looser target should spread wider: %v vs %v", span(out2), span(out1))
	}
}

func TestBigItemClampedToCore(t *testing.T) {
	g := grid(4, 4, 1.0)
	items := []Item{{Pos: geom.Point{X: -50, Y: 300}, W: 10, H: 10}}
	out := NewProjector(g, Options{}).Project(items)
	if out[0].X < 5 || out[0].Y > 95 {
		t.Errorf("clamp failed: %v", out[0])
	}
}

func TestL1Distance(t *testing.T) {
	a := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}
	b := []geom.Point{{X: 2, Y: 1}, {X: 1, Y: 1}}
	if got := L1Distance(a, b); got != 3 {
		t.Errorf("L1Distance = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	L1Distance(a, b[:1])
}

func TestBinsHelper(t *testing.T) {
	r := binRegion{1, 2, 4, 5}
	if r.bins() != 9 {
		t.Errorf("bins = %d", r.bins())
	}
}

func TestHeavyCornerCluster(t *testing.T) {
	// Dense cluster in a corner must expand toward free space and end with
	// low overflow.
	g := grid(10, 10, 1.0)
	rng := rand.New(rand.NewSource(4))
	var items []Item
	for i := 0; i < 400; i++ {
		items = append(items, Item{
			Pos: geom.Point{X: 10 * rng.Float64(), Y: 10 * rng.Float64()},
			W:   3, H: 3,
		})
	}
	p := NewProjector(g, Options{})
	out := p.Project(items)
	before := overflowOf(g, items, positions(items))
	after := overflowOf(g, items, out)
	if after > 0.25*before {
		t.Errorf("corner overflow %v -> %v", before, after)
	}
}

// TestSelfConsistencyFormula11: direct check of the paper's Formula 11 on
// successive projections along a simulated optimization trajectory — if v'
// is closer to P(v) than v, then v' should be closer to P(v') than v too.
func TestSelfConsistencyFormula11(t *testing.T) {
	g := grid(12, 12, 0.9)
	rng := rand.New(rand.NewSource(8))
	var items []Item
	for i := 0; i < 350; i++ {
		items = append(items, Item{
			Pos: geom.Point{X: 35 + 30*rng.Float64(), Y: 35 + 30*rng.Float64()},
			W:   2.2, H: 2.2,
		})
	}
	p := NewProjector(g, Options{})
	consistent, inconsistent, premiseFailed := 0, 0, 0
	v := positions(items)
	for step := 0; step < 12; step++ {
		cur := make([]Item, len(items))
		copy(cur, items)
		for i := range cur {
			cur[i].Pos = v[i]
		}
		pv := p.Project(cur)
		// Simulated primal step: move 40% of the way toward the projection.
		vNext := make([]geom.Point, len(v))
		for i := range v {
			vNext[i] = geom.Point{
				X: v[i].X + 0.4*(pv[i].X-v[i].X),
				Y: v[i].Y + 0.4*(pv[i].Y-v[i].Y),
			}
		}
		next := make([]Item, len(items))
		copy(next, items)
		for i := range next {
			next[i].Pos = vNext[i]
		}
		pvNext := p.Project(next)
		premise := L1Distance(v, pv) > L1Distance(vNext, pv)
		switch {
		case !premise:
			premiseFailed++
		case L1Distance(v, pvNext) > L1Distance(vNext, pvNext):
			consistent++
		default:
			inconsistent++
		}
		v = vNext
	}
	t.Logf("consistent=%d inconsistent=%d premiseFailed=%d", consistent, inconsistent, premiseFailed)
	if consistent < inconsistent {
		t.Errorf("projection mostly inconsistent: %d vs %d", consistent, inconsistent)
	}
}

func BenchmarkProject(b *testing.B) {
	g, err := density.NewGrid(geom.Rect{XMax: 200, YMax: 200}, 48, 48, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var items []Item
	for i := 0; i < 10000; i++ {
		items = append(items, Item{
			Pos: geom.Point{X: 60 + 80*rng.Float64(), Y: 60 + 80*rng.Float64()},
			W:   1.5, H: 1.5,
		})
	}
	p := NewProjector(g, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Project(items)
	}
}
