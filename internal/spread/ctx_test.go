package spread

import (
	"context"
	"errors"
	"math"
	"testing"

	"complx/internal/geom"
)

func stackedItems(n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Pos: geom.Point{X: 50, Y: 50}, W: 4, H: 4}
	}
	return items
}

// TestProjectCtxPreCancelled proves the projection observes the context
// before the first region sweep: a pre-cancelled context returns an error
// wrapping context.Canceled together with finite, in-core positions.
func TestProjectCtxPreCancelled(t *testing.T) {
	g := grid(10, 10, 1.0)
	items := stackedItems(100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := NewProjector(g, Options{}).ProjectCtx(ctx, items)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if len(out) != len(items) {
		t.Fatalf("got %d positions for %d items", len(out), len(items))
	}
	for i, p := range out {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Fatalf("position %d is NaN after cancellation", i)
		}
		if p.X < 0 || p.X > 100 || p.Y < 0 || p.Y > 100 {
			t.Fatalf("position %d = %v escaped the core", i, p)
		}
	}
}

// TestProjectCtxMidSweep cancels after a bounded number of context polls and
// checks the sweep stops within one additional cluster region, still
// returning clamped finite positions for every item.
func TestProjectCtxMidSweep(t *testing.T) {
	g := grid(10, 10, 1.0)
	items := stackedItems(400)
	const stopAfter = 2
	ctx := &countingCtx{Context: context.Background(), stopAfter: stopAfter}
	out, err := NewProjector(g, Options{}).ProjectCtx(ctx, items)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	// Within one region of the flip: at most one poll after the cancel.
	if ctx.polls > stopAfter+1 {
		t.Errorf("projection polled the context %d times, want <= %d (one region past the cancel)",
			ctx.polls, stopAfter+1)
	}
	for i, p := range out {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || p.X < 0 || p.X > 100 || p.Y < 0 || p.Y > 100 {
			t.Fatalf("position %d = %v invalid after cancellation", i, p)
		}
	}
}

// countingCtx reports context.Canceled from the stopAfter-th Err poll on.
type countingCtx struct {
	context.Context
	polls, stopAfter int
}

func (c *countingCtx) Err() error {
	c.polls++
	if c.polls > c.stopAfter {
		return context.Canceled
	}
	return nil
}
