package spread

import "complx/internal/geom"

// pav1D solves the §S2 one-dimensional spreading subproblem exactly for the
// squared-displacement objective: given desired coordinates d (already in
// the order that must be preserved) and per-item pitches (the space each
// item must occupy), find positions x minimizing Σ (x_i − d_i)² subject to
//
//	x_{i+1} ≥ x_i + pitch_i      (order and spacing preserved)
//	lo ≤ x_1,  x_n + pitch_n ≤ hi
//
// The paper observes that after the change of variables δ_i = gaps between
// neighbors this is a convex problem; with the L2 objective it is an
// isotonic regression solved exactly by pool-adjacent-violators (the same
// collapse Abacus uses for legalization).
func pav1D(desired, pitch []float64, lo, hi float64) []float64 {
	n := len(desired)
	if n == 0 {
		return nil
	}
	// Change of variables: y_i = x_i − prefix(i) turns the spacing
	// constraints into y_{i+1} ≥ y_i (isotonic).
	prefix := make([]float64, n)
	var acc float64
	for i := 0; i < n; i++ {
		prefix[i] = acc
		acc += pitch[i]
	}
	total := acc

	type block struct {
		mean  float64 // unconstrained optimum of the pooled block
		count int
	}
	blocks := make([]block, 0, n)
	for i := 0; i < n; i++ {
		blocks = append(blocks, block{mean: desired[i] - prefix[i], count: 1})
		// Pool while monotonicity is violated.
		for len(blocks) > 1 {
			b := blocks[len(blocks)-1]
			a := blocks[len(blocks)-2]
			if a.mean <= b.mean {
				break
			}
			merged := block{
				mean:  (a.mean*float64(a.count) + b.mean*float64(b.count)) / float64(a.count+b.count),
				count: a.count + b.count,
			}
			blocks = blocks[:len(blocks)-2]
			blocks = append(blocks, merged)
		}
	}
	// Emit y values, then clamp the whole solution into the interval by
	// clamping each y to the feasible band (the bands are themselves
	// monotone, so order is preserved).
	out := make([]float64, 0, n)
	for _, b := range blocks {
		for k := 0; k < b.count; k++ {
			out = append(out, b.mean)
		}
	}
	for i := 0; i < n; i++ {
		// x_i ∈ [lo + prefix_i − prefix_i, hi − total + prefix_i] in y-space:
		// y_i ∈ [lo, hi − total].
		out[i] = geom.Clamp(out[i], lo, hi-total)
	}
	// Back to x.
	for i := 0; i < n; i++ {
		out[i] += prefix[i]
	}
	return out
}
