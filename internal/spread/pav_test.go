package spread

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"complx/internal/density"
	"complx/internal/geom"
)

func TestPAVAlreadyFeasible(t *testing.T) {
	// Well-separated desired positions: output equals input.
	d := []float64{0, 5, 10}
	w := []float64{1, 1, 1}
	got := pav1D(d, w, -10, 30)
	for i := range d {
		if math.Abs(got[i]-d[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, got[i], d[i])
		}
	}
}

func TestPAVResolvesOverlap(t *testing.T) {
	// Two items wanting the same spot split symmetrically.
	d := []float64{5, 5}
	w := []float64{2, 2}
	got := pav1D(d, w, 0, 20)
	if math.Abs(got[0]-4) > 1e-12 || math.Abs(got[1]-6) > 1e-12 {
		t.Errorf("got %v, want [4 6]", got)
	}
}

func TestPAVClampsToInterval(t *testing.T) {
	d := []float64{-100, -99}
	w := []float64{1, 1}
	got := pav1D(d, w, 0, 10)
	if got[0] < 0 || got[1]+1 > 10 || got[1] < got[0]+1-1e-12 {
		t.Errorf("clamped solution infeasible: %v", got)
	}
}

// TestPAVOptimalProperty: the output is feasible and no single-coordinate
// (or uniform-block) perturbation reduces the squared displacement — the
// KKT conditions of the convex program.
func TestPAVOptimalProperty(t *testing.T) {
	cost := func(x, d []float64) float64 {
		var s float64
		for i := range x {
			s += (x[i] - d[i]) * (x[i] - d[i])
		}
		return s
	}
	feasible := func(x, w []float64, lo, hi float64) bool {
		if x[0] < lo-1e-9 || x[len(x)-1]+w[len(w)-1] > hi+1e-9 {
			return false
		}
		for i := 1; i < len(x); i++ {
			if x[i] < x[i-1]+w[i-1]-1e-9 {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		d := make([]float64, n)
		w := make([]float64, n)
		for i := range d {
			d[i] = 20 * rng.Float64()
			w[i] = 0.5 + rng.Float64()
		}
		// Keep the order constraint meaningful: sort desired.
		for i := 1; i < n; i++ {
			if d[i] < d[i-1] {
				d[i], d[i-1] = d[i-1], d[i]
			}
		}
		lo, hi := 0.0, 30.0
		x := pav1D(d, w, lo, hi)
		if !feasible(x, w, lo, hi) {
			return false
		}
		base := cost(x, d)
		// Perturb every contiguous block by ±eps; none may improve.
		const eps = 1e-3
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				for _, dir := range []float64{eps, -eps} {
					y := append([]float64(nil), x...)
					for i := a; i <= b; i++ {
						y[i] += dir
					}
					if feasible(y, w, lo, hi) && cost(y, d) < base-1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestOptimalLeafReducesDisplacement: with the PAV leaf, the projection
// moves items less while still relieving most overflow.
func TestOptimalLeafReducesDisplacement(t *testing.T) {
	mk := func() []Item {
		rng := rand.New(rand.NewSource(6))
		var items []Item
		for i := 0; i < 300; i++ {
			items = append(items, Item{
				Pos: geom.Point{X: 30 + 25*rng.Float64(), Y: 30 + 25*rng.Float64()},
				W:   2.4, H: 2.4,
			})
		}
		return items
	}
	g1, err := density.NewGrid(geom.Rect{XMax: 100, YMax: 100}, 10, 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	items := mk()
	uni := NewProjector(g1, Options{}).Project(items)
	g2, err := density.NewGrid(geom.Rect{XMax: 100, YMax: 100}, 10, 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewProjector(g2, Options{OptimalLeaf: true}).Project(mk())

	orig := positions(items)
	dUni := L1Distance(orig, uni)
	dOpt := L1Distance(orig, opt)
	t.Logf("displacement: uniform=%.1f pav=%.1f", dUni, dOpt)
	if dOpt > 1.05*dUni {
		t.Errorf("PAV leaf displaced more: %v vs %v", dOpt, dUni)
	}
	// Overflow must still drop substantially.
	before := overflowOf(g2, items, orig)
	after := overflowOf(g2, items, opt)
	if after > 0.45*before {
		t.Errorf("PAV leaf overflow %v -> %v", before, after)
	}
}
