// Package netlist defines the circuit data model shared by every stage of
// the placement flow: cells (standard cells, movable macros, fixed
// terminals), pins with offsets from cell centers, weighted multi-pin nets,
// placement rows, and optional region constraints.
//
// Positions follow the Bookshelf convention: Cell.X/Cell.Y is the lower-left
// corner of the cell. Analytical optimization works with cell centers; the
// Center/SetCenter helpers and the Positions/SetPositions bulk accessors
// convert between the two views.
package netlist

import (
	"fmt"
	"math"

	"complx/internal/geom"
)

// Kind classifies a cell.
type Kind int

const (
	// Std is a movable standard cell.
	Std Kind = iota
	// Macro is a movable macro block (taller than one row).
	Macro
	// Terminal is a fixed object: pad, pre-placed block or obstacle.
	Terminal
)

func (k Kind) String() string {
	switch k {
	case Std:
		return "std"
	case Macro:
		return "macro"
	case Terminal:
		return "terminal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Cell is a placeable or fixed rectangular object.
type Cell struct {
	Name string
	// W, H are the cell dimensions.
	W, H float64
	// X, Y is the lower-left corner of the cell.
	X, Y float64
	Kind Kind
	// Region is the index of the region constraint restricting this cell,
	// or -1 when unconstrained.
	Region int
	// Pins indexes Netlist.Pins.
	Pins []int
}

// Fixed reports whether the cell may not be moved by the placer.
func (c *Cell) Fixed() bool { return c.Kind == Terminal }

// Movable reports whether the placer may move the cell.
func (c *Cell) Movable() bool { return c.Kind != Terminal }

// Area returns the cell area.
func (c *Cell) Area() float64 { return c.W * c.H }

// Rect returns the cell's bounding rectangle at its current position.
func (c *Cell) Rect() geom.Rect { return geom.RectWH(c.X, c.Y, c.W, c.H) }

// Center returns the cell's center point.
func (c *Cell) Center() geom.Point { return geom.Point{X: c.X + c.W/2, Y: c.Y + c.H/2} }

// SetCenter moves the cell so its center is at p.
func (c *Cell) SetCenter(p geom.Point) {
	c.X = p.X - c.W/2
	c.Y = p.Y - c.H/2
}

// Pin is a net connection point on a cell. DX, DY are offsets from the cell
// center, so the pin location is Center() + (DX, DY).
type Pin struct {
	Cell int
	Net  int
	// DX, DY are the pin offsets from the owning cell's center.
	DX, DY float64
}

// Net connects two or more pins.
type Net struct {
	Name   string
	Weight float64
	// Pins indexes Netlist.Pins.
	Pins []int
}

// Degree returns the number of pins on the net.
func (n *Net) Degree() int { return len(n.Pins) }

// Row is a standard-cell placement row.
type Row struct {
	// Y is the bottom of the row; Height its (site) height.
	Y, Height float64
	// XMin, XMax bound the usable span of the row.
	XMin, XMax float64
	// SiteWidth is the legalization grid pitch along the row.
	SiteWidth float64
}

// Region is a named rectangular placement constraint: every cell whose
// Region field names it must be placed inside Rect.
type Region struct {
	Name string
	Rect geom.Rect
}

// Netlist is the full design: cells, nets, pins, rows and the core area.
type Netlist struct {
	Name    string
	Cells   []Cell
	Nets    []Net
	Pins    []Pin
	Rows    []Row
	Regions []Region
	// Core is the placement area.
	Core geom.Rect

	movables []int
}

// NumCells returns the total cell count (movable + fixed).
func (nl *Netlist) NumCells() int { return len(nl.Cells) }

// NumNets returns the net count.
func (nl *Netlist) NumNets() int { return len(nl.Nets) }

// NumPins returns the pin count.
func (nl *Netlist) NumPins() int { return len(nl.Pins) }

// Movables returns the indices of movable cells, cached after first use.
func (nl *Netlist) Movables() []int {
	if nl.movables == nil {
		for i := range nl.Cells {
			if nl.Cells[i].Movable() {
				nl.movables = append(nl.movables, i)
			}
		}
	}
	return nl.movables
}

// NumMovable returns the number of movable cells.
func (nl *Netlist) NumMovable() int { return len(nl.Movables()) }

// MovableArea returns the total area of movable cells.
func (nl *Netlist) MovableArea() float64 {
	var a float64
	for _, i := range nl.Movables() {
		a += nl.Cells[i].Area()
	}
	return a
}

// FixedAreaInCore returns the core area blocked by fixed objects.
func (nl *Netlist) FixedAreaInCore() float64 {
	var a float64
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Fixed() {
			a += c.Rect().OverlapArea(nl.Core)
		}
	}
	return a
}

// Utilization returns movable area divided by free core area (core minus
// fixed blockages). Returns 0 when there is no free area.
func (nl *Netlist) Utilization() float64 {
	free := nl.Core.Area() - nl.FixedAreaInCore()
	if free <= 0 {
		return 0
	}
	return nl.MovableArea() / free
}

// RowHeight returns the height of the first row, or the median movable
// standard-cell height when no rows are defined, or 1 as a last resort.
func (nl *Netlist) RowHeight() float64 {
	if len(nl.Rows) > 0 {
		return nl.Rows[0].Height
	}
	var h float64
	var cnt int
	for _, i := range nl.Movables() {
		if nl.Cells[i].Kind == Std {
			h += nl.Cells[i].H
			cnt++
		}
	}
	if cnt == 0 {
		return 1
	}
	return h / float64(cnt)
}

// AvgMovableArea returns the average area of movable cells (0 when none).
func (nl *Netlist) AvgMovableArea() float64 {
	m := nl.Movables()
	if len(m) == 0 {
		return 0
	}
	return nl.MovableArea() / float64(len(m))
}

// PinPosition returns the absolute location of pin p.
func (nl *Netlist) PinPosition(p int) geom.Point {
	pin := &nl.Pins[p]
	c := nl.Cells[pin.Cell].Center()
	return geom.Point{X: c.X + pin.DX, Y: c.Y + pin.DY}
}

// Positions returns the centers of the movable cells, in Movables() order.
func (nl *Netlist) Positions() []geom.Point {
	m := nl.Movables()
	out := make([]geom.Point, len(m))
	for k, i := range m {
		out[k] = nl.Cells[i].Center()
	}
	return out
}

// SetPositions sets the centers of the movable cells from pts, which must
// have NumMovable() entries in Movables() order. A length mismatch returns
// an error and leaves the netlist untouched.
func (nl *Netlist) SetPositions(pts []geom.Point) error {
	m := nl.Movables()
	if len(pts) != len(m) {
		return fmt.Errorf("netlist: SetPositions got %d points for %d movables", len(pts), len(m))
	}
	for k, i := range m {
		nl.Cells[i].SetCenter(pts[k])
	}
	return nil
}

// CellByName returns the index of the named cell, or -1.
func (nl *Netlist) CellByName(name string) int {
	for i := range nl.Cells {
		if nl.Cells[i].Name == name {
			return i
		}
	}
	return -1
}

// finite reports whether v is neither NaN nor infinite.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// finiteRect reports whether every coordinate of r is finite.
func finiteRect(r geom.Rect) bool {
	return finite(r.XMin) && finite(r.YMin) && finite(r.XMax) && finite(r.YMax)
}

// Validate checks structural and numerical invariants: pin indices in
// range, every net has >= 1 pin, every pin belongs to the net and cell that
// reference it, regions in range with usable rectangles, positive finite
// cell sizes, finite positions, pin offsets and net weights, rows with
// positive height/site width and a non-empty span, and a finite non-empty
// core area.
//
// Single-pin nets are tolerated (they contribute nothing to the
// interconnect model) but empty nets are rejected. Validate is the
// validate-then-place contract boundary: every entry point of the placement
// flow (core.Place and the complx facade) runs it before touching the
// numerics, so the kernels below may assume these invariants.
func (nl *Netlist) Validate() error {
	if !finiteRect(nl.Core) {
		return fmt.Errorf("netlist %q: non-finite core area (%g,%g)-(%g,%g)",
			nl.Name, nl.Core.XMin, nl.Core.YMin, nl.Core.XMax, nl.Core.YMax)
	}
	if nl.Core.Empty() {
		return fmt.Errorf("netlist %q: empty core area", nl.Name)
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if !finite(c.W) || !finite(c.H) {
			return fmt.Errorf("cell %q: non-finite size %gx%g", c.Name, c.W, c.H)
		}
		if c.W <= 0 || c.H <= 0 {
			return fmt.Errorf("cell %q: non-positive size %gx%g", c.Name, c.W, c.H)
		}
		if !finite(c.X) || !finite(c.Y) {
			return fmt.Errorf("cell %q: non-finite position (%g, %g)", c.Name, c.X, c.Y)
		}
		if c.Region < -1 || c.Region >= len(nl.Regions) {
			return fmt.Errorf("cell %q: region index %d out of range", c.Name, c.Region)
		}
		for _, p := range c.Pins {
			if p < 0 || p >= len(nl.Pins) {
				return fmt.Errorf("cell %q: pin index %d out of range", c.Name, p)
			}
			if nl.Pins[p].Cell != i {
				return fmt.Errorf("cell %q: pin %d does not reference it back", c.Name, p)
			}
		}
	}
	for i := range nl.Nets {
		n := &nl.Nets[i]
		if len(n.Pins) == 0 {
			return fmt.Errorf("net %q: no pins", n.Name)
		}
		if !finite(n.Weight) {
			return fmt.Errorf("net %q: non-finite weight %g", n.Name, n.Weight)
		}
		if n.Weight <= 0 {
			return fmt.Errorf("net %q: non-positive weight %g", n.Name, n.Weight)
		}
		for _, p := range n.Pins {
			if p < 0 || p >= len(nl.Pins) {
				return fmt.Errorf("net %q: pin index %d out of range", n.Name, p)
			}
			if nl.Pins[p].Net != i {
				return fmt.Errorf("net %q: pin %d does not reference it back", n.Name, p)
			}
		}
	}
	for i := range nl.Pins {
		p := &nl.Pins[i]
		if p.Cell < 0 || p.Cell >= len(nl.Cells) {
			return fmt.Errorf("pin %d: cell index %d out of range", i, p.Cell)
		}
		if p.Net < 0 || p.Net >= len(nl.Nets) {
			return fmt.Errorf("pin %d: net index %d out of range", i, p.Net)
		}
		if !finite(p.DX) || !finite(p.DY) {
			return fmt.Errorf("pin %d (cell %q): non-finite offset (%g, %g)",
				i, nl.Cells[p.Cell].Name, p.DX, p.DY)
		}
	}
	for i := range nl.Rows {
		r := &nl.Rows[i]
		if !finite(r.Y) || !finite(r.Height) || !finite(r.XMin) || !finite(r.XMax) || !finite(r.SiteWidth) {
			return fmt.Errorf("row %d: non-finite geometry", i)
		}
		if r.Height <= 0 {
			return fmt.Errorf("row %d: non-positive height %g", i, r.Height)
		}
		if r.SiteWidth <= 0 {
			return fmt.Errorf("row %d: non-positive site width %g", i, r.SiteWidth)
		}
		if r.XMax <= r.XMin {
			return fmt.Errorf("row %d: empty span [%g, %g]", i, r.XMin, r.XMax)
		}
	}
	for i := range nl.Regions {
		r := &nl.Regions[i]
		if !finiteRect(r.Rect) {
			return fmt.Errorf("region %q: non-finite rectangle", r.Name)
		}
		if r.Rect.Empty() {
			return fmt.Errorf("region %q: empty rectangle", r.Name)
		}
	}
	return nil
}

// Stats summarizes a design.
type Stats struct {
	Cells, Movable, Macros, Terminals int
	Nets, Pins                        int
	MaxNetDegree                      int
	MovableArea, CoreArea             float64
	Utilization                       float64
}

// Stats computes summary statistics for the design.
func (nl *Netlist) Stats() Stats {
	s := Stats{
		Cells:       len(nl.Cells),
		Nets:        len(nl.Nets),
		Pins:        len(nl.Pins),
		MovableArea: nl.MovableArea(),
		CoreArea:    nl.Core.Area(),
		Utilization: nl.Utilization(),
	}
	for i := range nl.Cells {
		switch nl.Cells[i].Kind {
		case Std:
			s.Movable++
		case Macro:
			s.Movable++
			s.Macros++
		case Terminal:
			s.Terminals++
		}
	}
	for i := range nl.Nets {
		if d := nl.Nets[i].Degree(); d > s.MaxNetDegree {
			s.MaxNetDegree = d
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("cells=%d (movable=%d, macros=%d, terminals=%d) nets=%d pins=%d maxdeg=%d util=%.3f",
		s.Cells, s.Movable, s.Macros, s.Terminals, s.Nets, s.Pins, s.MaxNetDegree, s.Utilization)
}

// SnapshotPositions returns a copy of every cell's lower-left position
// (movable and fixed), for later restore.
func (nl *Netlist) SnapshotPositions() []geom.Point {
	out := make([]geom.Point, len(nl.Cells))
	for i := range nl.Cells {
		out[i] = geom.Point{X: nl.Cells[i].X, Y: nl.Cells[i].Y}
	}
	return out
}

// RestorePositions restores positions captured by SnapshotPositions. A
// length mismatch returns an error and leaves the netlist untouched.
func (nl *Netlist) RestorePositions(snap []geom.Point) error {
	if len(snap) != len(nl.Cells) {
		return fmt.Errorf("netlist: RestorePositions got %d points for %d cells", len(snap), len(nl.Cells))
	}
	for i := range nl.Cells {
		nl.Cells[i].X = snap[i].X
		nl.Cells[i].Y = snap[i].Y
	}
	return nil
}

// TotalDisplacement returns the summed L1 displacement of movable-cell
// centers between two position snapshots taken with Positions(). A length
// mismatch returns an error.
func TotalDisplacement(a, b []geom.Point) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("netlist: TotalDisplacement got %d vs %d points", len(a), len(b))
	}
	var d float64
	for i := range a {
		d += math.Abs(a[i].X-b[i].X) + math.Abs(a[i].Y-b[i].Y)
	}
	return d, nil
}

// Clone returns a deep copy of the netlist: mutations of cells, nets, pins,
// rows or regions of the copy do not affect the original.
func (nl *Netlist) Clone() *Netlist {
	out := &Netlist{
		Name:    nl.Name,
		Cells:   append([]Cell(nil), nl.Cells...),
		Nets:    append([]Net(nil), nl.Nets...),
		Pins:    append([]Pin(nil), nl.Pins...),
		Rows:    append([]Row(nil), nl.Rows...),
		Regions: append([]Region(nil), nl.Regions...),
		Core:    nl.Core,
	}
	for i := range out.Cells {
		out.Cells[i].Pins = append([]int(nil), nl.Cells[i].Pins...)
	}
	for i := range out.Nets {
		out.Nets[i].Pins = append([]int(nil), nl.Nets[i].Pins...)
	}
	return out
}
