package netlist

import (
	"fmt"

	"complx/internal/geom"
)

// Builder assembles a Netlist incrementally. It keeps cell/net name
// uniqueness and wires the cross-references between cells, nets and pins so
// the resulting Netlist always passes Validate.
type Builder struct {
	nl        Netlist
	cellIndex map[string]int
	netIndex  map[string]int
	err       error
}

// NewBuilder returns a Builder for a design with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		nl:        Netlist{Name: name},
		cellIndex: make(map[string]int),
		netIndex:  make(map[string]int),
	}
}

func (b *Builder) fail(format string, args ...any) int {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
	return -1
}

func (b *Builder) addCell(name string, w, h float64, kind Kind) int {
	if _, dup := b.cellIndex[name]; dup {
		return b.fail("duplicate cell %q", name)
	}
	if !finite(w) || !finite(h) {
		return b.fail("cell %q: non-finite size %gx%g", name, w, h)
	}
	if w <= 0 || h <= 0 {
		return b.fail("cell %q: non-positive size %gx%g", name, w, h)
	}
	id := len(b.nl.Cells)
	b.nl.Cells = append(b.nl.Cells, Cell{Name: name, W: w, H: h, Kind: kind, Region: -1})
	b.cellIndex[name] = id
	return id
}

// AddCell adds a movable standard cell and returns its index.
func (b *Builder) AddCell(name string, w, h float64) int {
	return b.addCell(name, w, h, Std)
}

// AddMacro adds a movable macro and returns its index.
func (b *Builder) AddMacro(name string, w, h float64) int {
	return b.addCell(name, w, h, Macro)
}

// AddFixed adds a fixed terminal (pad or obstacle) with its lower-left
// corner at (x, y) and returns its index.
func (b *Builder) AddFixed(name string, x, y, w, h float64) int {
	if !finite(x) || !finite(y) {
		return b.fail("cell %q: non-finite position (%g, %g)", name, x, y)
	}
	id := b.addCell(name, w, h, Terminal)
	if id >= 0 {
		b.nl.Cells[id].X = x
		b.nl.Cells[id].Y = y
	}
	return id
}

// PinSpec names one pin of a net under construction.
type PinSpec struct {
	Cell int
	// DX, DY are the pin offsets from the cell center.
	DX, DY float64
}

// AddNet adds a net with the given weight connecting the given pins and
// returns its index. Weight must be positive; pins must reference cells
// already added.
func (b *Builder) AddNet(name string, weight float64, pins []PinSpec) int {
	if _, dup := b.netIndex[name]; dup {
		return b.fail("duplicate net %q", name)
	}
	if !finite(weight) {
		return b.fail("net %q: non-finite weight %g", name, weight)
	}
	if weight <= 0 {
		return b.fail("net %q: non-positive weight %g", name, weight)
	}
	if len(pins) == 0 {
		return b.fail("net %q: no pins", name)
	}
	netID := len(b.nl.Nets)
	net := Net{Name: name, Weight: weight}
	for _, ps := range pins {
		if ps.Cell < 0 || ps.Cell >= len(b.nl.Cells) {
			return b.fail("net %q: pin references unknown cell %d", name, ps.Cell)
		}
		if !finite(ps.DX) || !finite(ps.DY) {
			return b.fail("net %q: non-finite pin offset (%g, %g)", name, ps.DX, ps.DY)
		}
		pinID := len(b.nl.Pins)
		b.nl.Pins = append(b.nl.Pins, Pin{Cell: ps.Cell, Net: netID, DX: ps.DX, DY: ps.DY})
		net.Pins = append(net.Pins, pinID)
		b.nl.Cells[ps.Cell].Pins = append(b.nl.Cells[ps.Cell].Pins, pinID)
	}
	b.nl.Nets = append(b.nl.Nets, net)
	b.netIndex[name] = netID
	return netID
}

// Reserve pre-sizes the builder's backing storage for a design whose
// approximate shape is known up front, so bulk generation does not pay
// append re-growth copies. Estimates may be low (storage still grows) and
// are most effective when Reserve is called before the first Add.
func (b *Builder) Reserve(cells, nets, pins int) {
	if cells > cap(b.nl.Cells) {
		grown := make([]Cell, len(b.nl.Cells), cells)
		copy(grown, b.nl.Cells)
		b.nl.Cells = grown
	}
	if nets > cap(b.nl.Nets) {
		grown := make([]Net, len(b.nl.Nets), nets)
		copy(grown, b.nl.Nets)
		b.nl.Nets = grown
	}
	if pins > cap(b.nl.Pins) {
		grown := make([]Pin, len(b.nl.Pins), pins)
		copy(grown, b.nl.Pins)
		b.nl.Pins = grown
	}
	if len(b.cellIndex) == 0 && cells > 0 {
		b.cellIndex = make(map[string]int, cells)
	}
	if len(b.netIndex) == 0 && nets > 0 {
		b.netIndex = make(map[string]int, nets)
	}
}

// SetCore sets the placement area.
func (b *Builder) SetCore(r geom.Rect) { b.nl.Core = r }

// AddRow appends one placement row.
func (b *Builder) AddRow(row Row) { b.nl.Rows = append(b.nl.Rows, row) }

// AddUniformRows fills the core with numRows rows of the given height and
// site width, starting at the bottom of the core.
func (b *Builder) AddUniformRows(numRows int, height, siteWidth float64) {
	for i := 0; i < numRows; i++ {
		b.nl.Rows = append(b.nl.Rows, Row{
			Y:         b.nl.Core.YMin + float64(i)*height,
			Height:    height,
			XMin:      b.nl.Core.XMin,
			XMax:      b.nl.Core.XMax,
			SiteWidth: siteWidth,
		})
	}
}

// AddRegion registers a named region constraint and returns its index.
func (b *Builder) AddRegion(name string, r geom.Rect) int {
	id := len(b.nl.Regions)
	b.nl.Regions = append(b.nl.Regions, Region{Name: name, Rect: r})
	return id
}

// ConstrainCell assigns cell to the region with the given index.
func (b *Builder) ConstrainCell(cell, region int) {
	if cell < 0 || cell >= len(b.nl.Cells) {
		b.fail("ConstrainCell: unknown cell %d", cell)
		return
	}
	if region < 0 || region >= len(b.nl.Regions) {
		b.fail("ConstrainCell: unknown region %d", region)
		return
	}
	b.nl.Cells[cell].Region = region
}

// CellID returns the index of a previously added cell, or -1.
func (b *Builder) CellID(name string) int {
	if id, ok := b.cellIndex[name]; ok {
		return id
	}
	return -1
}

// NumCells returns the number of cells added so far.
func (b *Builder) NumCells() int { return len(b.nl.Cells) }

// Build finalizes and validates the netlist. The Builder must not be reused
// afterwards.
func (b *Builder) Build() (*Netlist, error) {
	if b.err != nil {
		return nil, b.err
	}
	nl := b.nl
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return &nl, nil
}
