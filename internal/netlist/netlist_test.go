package netlist

import (
	"math"
	"strings"
	"testing"

	"complx/internal/geom"
)

// buildSmall constructs a 4-cell, 2-net design used by several tests.
func buildSmall(t *testing.T) *Netlist {
	t.Helper()
	b := NewBuilder("small")
	b.SetCore(geom.Rect{XMin: 0, YMin: 0, XMax: 100, YMax: 100})
	a := b.AddCell("a", 2, 1)
	c := b.AddCell("c", 4, 1)
	m := b.AddMacro("m", 10, 10)
	p := b.AddFixed("pad", 0, 50, 1, 1)
	b.AddNet("n1", 1, []PinSpec{{Cell: a}, {Cell: c, DX: 0.5}, {Cell: p}})
	b.AddNet("n2", 2, []PinSpec{{Cell: c}, {Cell: m, DX: -2, DY: 3}})
	b.AddUniformRows(10, 1, 0.5)
	nl, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return nl
}

func TestBuilderBasics(t *testing.T) {
	nl := buildSmall(t)
	if nl.NumCells() != 4 || nl.NumNets() != 2 || nl.NumPins() != 5 {
		t.Fatalf("counts: cells=%d nets=%d pins=%d", nl.NumCells(), nl.NumNets(), nl.NumPins())
	}
	if nl.NumMovable() != 3 {
		t.Errorf("movable = %d, want 3", nl.NumMovable())
	}
	if got := nl.CellByName("m"); got != 2 {
		t.Errorf("CellByName(m) = %d", got)
	}
	if got := nl.CellByName("zzz"); got != -1 {
		t.Errorf("CellByName(zzz) = %d, want -1", got)
	}
	if len(nl.Rows) != 10 {
		t.Errorf("rows = %d", len(nl.Rows))
	}
	if nl.RowHeight() != 1 {
		t.Errorf("RowHeight = %v", nl.RowHeight())
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   func(b *Builder)
		want string
	}{
		{"duplicate cell", func(b *Builder) { b.AddCell("x", 1, 1); b.AddCell("x", 1, 1) }, "duplicate cell"},
		{"bad size", func(b *Builder) { b.AddCell("x", 0, 1) }, "non-positive size"},
		{"duplicate net", func(b *Builder) {
			c := b.AddCell("x", 1, 1)
			b.AddNet("n", 1, []PinSpec{{Cell: c}})
			b.AddNet("n", 1, []PinSpec{{Cell: c}})
		}, "duplicate net"},
		{"bad weight", func(b *Builder) {
			c := b.AddCell("x", 1, 1)
			b.AddNet("n", 0, []PinSpec{{Cell: c}})
		}, "non-positive weight"},
		{"empty net", func(b *Builder) { b.AddNet("n", 1, nil) }, "no pins"},
		{"unknown cell", func(b *Builder) { b.AddNet("n", 1, []PinSpec{{Cell: 7}}) }, "unknown cell"},
		{"bad region ref", func(b *Builder) { c := b.AddCell("x", 1, 1); b.ConstrainCell(c, 3) }, "unknown region"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder("bad")
			b.SetCore(geom.Rect{XMax: 10, YMax: 10})
			tc.fn(b)
			_, err := b.Build()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Build err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestBuildRejectsEmptyCore(t *testing.T) {
	b := NewBuilder("nocore")
	b.AddCell("x", 1, 1)
	if _, err := b.Build(); err == nil {
		t.Error("expected error for empty core")
	}
}

func TestCellGeometry(t *testing.T) {
	c := Cell{W: 4, H: 2, X: 10, Y: 20}
	if got := c.Center(); got != (geom.Point{X: 12, Y: 21}) {
		t.Errorf("Center = %v", got)
	}
	c.SetCenter(geom.Point{X: 0, Y: 0})
	if c.X != -2 || c.Y != -1 {
		t.Errorf("SetCenter moved to (%v, %v)", c.X, c.Y)
	}
	if c.Area() != 8 {
		t.Errorf("Area = %v", c.Area())
	}
	if got := c.Rect(); got != (geom.Rect{XMin: -2, YMin: -1, XMax: 2, YMax: 1}) {
		t.Errorf("Rect = %v", got)
	}
}

func TestPinPosition(t *testing.T) {
	nl := buildSmall(t)
	// Cell c has a pin on n1 with DX=0.5. Move c and check.
	ci := nl.CellByName("c")
	nl.Cells[ci].SetCenter(geom.Point{X: 30, Y: 40})
	// Find c's pin on net n1 (pin index 1 by construction order).
	p := nl.PinPosition(1)
	if p != (geom.Point{X: 30.5, Y: 40}) {
		t.Errorf("PinPosition = %v", p)
	}
}

func TestPositionsRoundTrip(t *testing.T) {
	nl := buildSmall(t)
	pts := nl.Positions()
	if len(pts) != 3 {
		t.Fatalf("Positions len = %d", len(pts))
	}
	want := []geom.Point{{X: 7, Y: 8}, {X: 50, Y: 60}, {X: 20, Y: 20}}
	if err := nl.SetPositions(want); err != nil {
		t.Fatal(err)
	}
	got := nl.Positions()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pos[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSetPositionsRejectsMismatch(t *testing.T) {
	nl := buildSmall(t)
	if err := nl.SetPositions([]geom.Point{{}}); err == nil {
		t.Error("expected error for mismatched position slice")
	}
}

func TestAreasAndUtilization(t *testing.T) {
	nl := buildSmall(t)
	wantMov := 2.0*1 + 4*1 + 10*10
	if got := nl.MovableArea(); got != wantMov {
		t.Errorf("MovableArea = %v, want %v", got, wantMov)
	}
	if got := nl.FixedAreaInCore(); got != 1 {
		t.Errorf("FixedAreaInCore = %v, want 1", got)
	}
	wantU := wantMov / (100*100 - 1)
	if got := nl.Utilization(); math.Abs(got-wantU) > 1e-12 {
		t.Errorf("Utilization = %v, want %v", got, wantU)
	}
	if got := nl.AvgMovableArea(); math.Abs(got-wantMov/3) > 1e-12 {
		t.Errorf("AvgMovableArea = %v", got)
	}
}

func TestStats(t *testing.T) {
	nl := buildSmall(t)
	s := nl.Stats()
	if s.Cells != 4 || s.Movable != 3 || s.Macros != 1 || s.Terminals != 1 {
		t.Errorf("stats cells: %+v", s)
	}
	if s.Nets != 2 || s.Pins != 5 || s.MaxNetDegree != 3 {
		t.Errorf("stats nets: %+v", s)
	}
	if !strings.Contains(s.String(), "macros=1") {
		t.Errorf("String = %q", s.String())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	nl := buildSmall(t)
	if err := nl.Validate(); err != nil {
		t.Fatalf("valid netlist rejected: %v", err)
	}
	// Corrupt a pin's net back-reference.
	bad := *nl
	bad.Pins = append([]Pin(nil), nl.Pins...)
	bad.Pins[0].Net = 1
	if err := bad.Validate(); err == nil {
		t.Error("expected validation error for corrupted pin")
	}
}

func TestSnapshotRestore(t *testing.T) {
	nl := buildSmall(t)
	snap := nl.SnapshotPositions()
	nl.Cells[0].X = 99
	nl.Cells[3].Y = 7
	if err := nl.RestorePositions(snap); err != nil {
		t.Fatal(err)
	}
	if nl.Cells[0].X != 0 || nl.Cells[3].Y != 50 {
		t.Error("restore did not revert positions")
	}
}

func TestTotalDisplacement(t *testing.T) {
	a := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}
	b := []geom.Point{{X: 3, Y: 4}, {X: 1, Y: 1}}
	got, err := TotalDisplacement(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("TotalDisplacement = %v", got)
	}
	if _, err := TotalDisplacement(a, b[:1]); err == nil {
		t.Error("expected error for mismatched slices")
	}
}

func TestRegions(t *testing.T) {
	b := NewBuilder("reg")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c := b.AddCell("c", 1, 1)
	r := b.AddRegion("clk", geom.Rect{XMin: 2, YMin: 2, XMax: 5, YMax: 5})
	b.ConstrainCell(c, r)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if nl.Cells[c].Region != r {
		t.Errorf("cell region = %d", nl.Cells[c].Region)
	}
	if nl.Regions[r].Name != "clk" {
		t.Errorf("region name = %q", nl.Regions[r].Name)
	}
}

func TestKindString(t *testing.T) {
	if Std.String() != "std" || Macro.String() != "macro" || Terminal.String() != "terminal" {
		t.Error("Kind.String wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown Kind.String wrong")
	}
}

func TestClone(t *testing.T) {
	nl := buildSmall(t)
	cp := nl.Clone()
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mutating the clone leaves the original untouched.
	cp.Cells[0].X = 99
	cp.Nets[0].Weight = 42
	cp.Nets[0].Pins[0] = 0
	cp.Cells[1].Pins[0] = 0
	if nl.Cells[0].X == 99 || nl.Nets[0].Weight == 42 {
		t.Error("clone shares cell/net storage")
	}
	if nl.Nets[0].Pins[0] == 0 && nl.Nets[0].Pins[0] != cp.Nets[0].Pins[0] {
		t.Error("net pin slices shared")
	}
	// Clone carries identical stats.
	if cp.NumPins() != nl.NumPins() || len(cp.Rows) != len(nl.Rows) {
		t.Error("clone lost structure")
	}
}

func TestRowHeightFallbacks(t *testing.T) {
	// No rows: median std height.
	b := NewBuilder("nr")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c := b.AddCell("c", 1, 2)
	b.AddNet("n", 1, []PinSpec{{Cell: c}})
	nl, _ := b.Build()
	if nl.RowHeight() != 2 {
		t.Errorf("RowHeight = %v, want 2", nl.RowHeight())
	}
	// No std cells at all: 1.
	b2 := NewBuilder("nm")
	b2.SetCore(geom.Rect{XMax: 10, YMax: 10})
	m := b2.AddMacro("m", 4, 4)
	b2.AddNet("n", 1, []PinSpec{{Cell: m}})
	nl2, _ := b2.Build()
	if nl2.RowHeight() != 1 {
		t.Errorf("macro-only RowHeight = %v, want 1", nl2.RowHeight())
	}
	if nl2.AvgMovableArea() != 16 {
		t.Errorf("AvgMovableArea = %v", nl2.AvgMovableArea())
	}
}

func TestUtilizationNoFreeArea(t *testing.T) {
	b := NewBuilder("full")
	b.SetCore(geom.Rect{XMax: 2, YMax: 2})
	c := b.AddCell("c", 1, 1)
	f := b.AddFixed("f", 0, 0, 2, 2) // blocks the whole core
	b.AddNet("n", 1, []PinSpec{{Cell: c}, {Cell: f}})
	nl, _ := b.Build()
	if nl.Utilization() != 0 {
		t.Errorf("Utilization = %v, want 0", nl.Utilization())
	}
}

func TestRestorePositionsRejectsMismatch(t *testing.T) {
	nl := buildSmall(t)
	if err := nl.RestorePositions(nil); err == nil {
		t.Error("expected error for nil snapshot")
	}
}
