// Package experiments regenerates every table and figure of the paper's
// evaluation (DESIGN.md §4) on the synthetic ISPD-analog benchmark suites.
// Each experiment returns structured rows and can print a formatted table,
// so the same code backs cmd/experiments, the root bench harness and the
// integration tests.
package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"complx/internal/core"
	"complx/internal/gen"
	"complx/internal/netlist"
)

// Config controls experiment scope.
type Config struct {
	// Scale multiplies benchmark cell counts (default 1.0). Benches use a
	// small scale to stay fast.
	Scale float64
	// MaxBenchmarks truncates each suite (0 = all).
	MaxBenchmarks int
}

func (c *Config) fill() {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
}

func (c *Config) suite2005() []gen.Spec { return c.trim(scaleAll(gen.Suite2005(), c.Scale)) }
func (c *Config) suite2006() []gen.Spec { return c.trim(scaleAll(gen.Suite2006(), c.Scale)) }

func (c *Config) trim(specs []gen.Spec) []gen.Spec {
	if c.MaxBenchmarks > 0 && len(specs) > c.MaxBenchmarks {
		return specs[:c.MaxBenchmarks]
	}
	return specs
}

func scaleAll(specs []gen.Spec, f float64) []gen.Spec {
	out := make([]gen.Spec, len(specs))
	for i, s := range specs {
		out[i] = gen.Scaled(s, f)
	}
	return out
}

// geomean returns the geometric mean of positive values.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// flowResult is one full placement run's metrics.
type flowResult struct {
	HPWL, Scaled, Penalty float64
	Iterations            int
	FinalLambda           float64
	SelfCons              core.SelfConsistency
	Runtime               time.Duration
}

// durSec formats a duration in seconds with two decimals.
func durSec(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }

// fresh generates a benchmark netlist, failing loudly on generator errors.
func fresh(spec gen.Spec) (*netlist.Netlist, error) {
	return gen.Generate(spec)
}

// Run dispatches an experiment by id ("table1", "table2", "figure1" ...
// "figure5", "s2") and writes its report to w.
func Run(id string, w io.Writer, cfg Config) error {
	switch id {
	case "table1":
		_, err := Table1(w, cfg)
		return err
	case "table2":
		_, err := Table2(w, cfg)
		return err
	case "figure1":
		_, err := Figure1(w, cfg)
		return err
	case "figure2":
		_, err := Figure2(w, cfg)
		return err
	case "figure3":
		_, err := Figure3(w, cfg)
		return err
	case "figure4":
		_, err := Figure4(w, cfg)
		return err
	case "figure5":
		_, err := Figure5(w, cfg)
		return err
	case "s2":
		_, err := S2(w, cfg)
		return err
	case "ablation":
		_, err := Ablation(w, cfg)
		return err
	case "s3runtime":
		_, err := RuntimeScaling(w, cfg)
		return err
	case "structured":
		_, err := Structured(w, cfg)
		return err
	default:
		return fmt.Errorf("experiments: unknown experiment %q", id)
	}
}

// All lists the experiment ids in paper order.
func All() []string {
	return []string{"table1", "table2", "figure1", "figure2", "figure3", "figure4", "figure5", "s2", "ablation", "s3runtime", "structured"}
}
