package experiments

import (
	"fmt"
	"io"
)

// Table1Row is one ISPD-2005-analog comparison row (paper Table 1).
type Table1Row struct {
	Name    string
	Modules int
	// Best is the best-published proxy (SimPL, the strongest prior placer
	// we implement; the paper's best-published column mixes SimPL and RQL).
	Best flowResult
	// Finest, ProjDP and Default are the three ComPLx configurations.
	Finest, ProjDP, Default flowResult
}

// Table1Result aggregates the rows and geomean ratios vs the default
// configuration.
type Table1Result struct {
	Rows []Table1Row
	// Geomeans of HPWL and runtime, normalized to ComPLx default = 1.0.
	HPWLRatio    map[string]float64
	RuntimeRatio map[string]float64
}

// Table1 regenerates paper Table 1: legal HPWL and total runtime on the
// ISPD 2005 analogs for the best-published proxy and three ComPLx
// configurations.
func Table1(w io.Writer, cfg Config) (*Table1Result, error) {
	cfg.fill()
	res := &Table1Result{
		HPWLRatio:    map[string]float64{},
		RuntimeRatio: map[string]float64{},
	}
	type variant struct {
		key string
		opt flowOptions
	}
	variants := []variant{
		{"best", flowOptions{algorithm: "simpl"}},
		{"finest", flowOptions{algorithm: "complx", finestGrid: true}},
		{"projdp", flowOptions{algorithm: "complx", projectionDP: true}},
		{"default", flowOptions{algorithm: "complx"}},
	}
	ratios := map[string][]float64{}
	rratios := map[string][]float64{}
	for _, spec := range cfg.suite2005() {
		row := Table1Row{Name: spec.Name}
		results := map[string]flowResult{}
		for _, v := range variants {
			nl, err := fresh(spec)
			if err != nil {
				return nil, err
			}
			row.Modules = nl.NumCells()
			fr, err := runFlow(nl, v.opt)
			if err != nil {
				return nil, fmt.Errorf("table1 %s/%s: %w", spec.Name, v.key, err)
			}
			results[v.key] = fr
		}
		row.Best = results["best"]
		row.Finest = results["finest"]
		row.ProjDP = results["projdp"]
		row.Default = results["default"]
		res.Rows = append(res.Rows, row)
		for _, v := range variants {
			ratios[v.key] = append(ratios[v.key], results[v.key].HPWL/row.Default.HPWL)
			rratios[v.key] = append(rratios[v.key], results[v.key].Runtime.Seconds()/row.Default.Runtime.Seconds())
		}
	}
	for k, v := range ratios {
		res.HPWLRatio[k] = geomean(v)
	}
	for k, v := range rratios {
		res.RuntimeRatio[k] = geomean(v)
	}
	if w != nil {
		printTable1(w, res)
	}
	return res, nil
}

func printTable1(w io.Writer, res *Table1Result) {
	fmt.Fprintln(w, "Table 1: legal HPWL and total runtime (s) on ISPD 2005 analogs")
	fmt.Fprintln(w, "(best published proxy = SimPL; three ComPLx configurations)")
	fmt.Fprintf(w, "%-10s %8s | %12s %8s | %12s %8s | %12s %8s | %12s %8s\n",
		"bench", "modules", "best HPWL", "time", "finest HPWL", "time",
		"P_C+=DP", "time", "default", "time")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-10s %8d | %12.0f %8s | %12.0f %8s | %12.0f %8s | %12.0f %8s\n",
			r.Name, r.Modules,
			r.Best.HPWL, durSec(r.Best.Runtime),
			r.Finest.HPWL, durSec(r.Finest.Runtime),
			r.ProjDP.HPWL, durSec(r.ProjDP.Runtime),
			r.Default.HPWL, durSec(r.Default.Runtime))
	}
	fmt.Fprintf(w, "%-10s %8s | %12.3f %8.2f | %12.3f %8.2f | %12.3f %8.2f | %12.3f %8.2f\n",
		"geomean", "",
		res.HPWLRatio["best"], res.RuntimeRatio["best"],
		res.HPWLRatio["finest"], res.RuntimeRatio["finest"],
		res.HPWLRatio["projdp"], res.RuntimeRatio["projdp"],
		res.HPWLRatio["default"], res.RuntimeRatio["default"])
	fmt.Fprintln(w, "(ratios normalized to ComPLx default = 1.0)")
}

// Table2Row is one ISPD-2006-analog comparison row (paper Table 2). The
// paper compares NTUPlace3, mPL6 and RQL against ComPLx (SimPL cannot
// handle the 2006 movable macros); our columns are the NLP proxy for the
// nonlinear family, FastPlace-CS, the RQL-style placer, and ComPLx.
type Table2Row struct {
	Name                        string
	Target                      float64
	NLP, FastPlace, RQL, ComPLx flowResult
}

// Table2Result aggregates rows plus geomean scaled-HPWL ratios.
type Table2Result struct {
	Rows        []Table2Row
	ScaledRatio map[string]float64
	// AvgPenalty is the mean overflow penalty percentage per placer.
	AvgPenalty map[string]float64
}

// Table2 regenerates paper Table 2: scaled HPWL (with overflow penalty in
// parentheses) on the ISPD 2006 analogs under per-design density targets.
func Table2(w io.Writer, cfg Config) (*Table2Result, error) {
	cfg.fill()
	res := &Table2Result{
		ScaledRatio: map[string]float64{},
		AvgPenalty:  map[string]float64{},
	}
	variants := []struct {
		key string
		alg string
	}{
		{"nlp", "nlp"},
		{"fastplace", "fastplace-cs"},
		{"rql", "rql"},
		{"complx", "complx"},
	}
	ratios := map[string][]float64{}
	penalties := map[string][]float64{}
	for _, spec := range cfg.suite2006() {
		row := Table2Row{Name: spec.Name, Target: spec.TargetDensity}
		results := map[string]flowResult{}
		for _, v := range variants {
			nl, err := fresh(spec)
			if err != nil {
				return nil, err
			}
			fr, err := runFlow(nl, flowOptions{algorithm: v.alg, targetDensity: spec.TargetDensity})
			if err != nil {
				return nil, fmt.Errorf("table2 %s/%s: %w", spec.Name, v.key, err)
			}
			results[v.key] = fr
		}
		row.NLP = results["nlp"]
		row.FastPlace = results["fastplace"]
		row.RQL = results["rql"]
		row.ComPLx = results["complx"]
		res.Rows = append(res.Rows, row)
		for _, v := range variants {
			ratios[v.key] = append(ratios[v.key], results[v.key].Scaled/row.ComPLx.Scaled)
			penalties[v.key] = append(penalties[v.key], results[v.key].Penalty)
		}
	}
	for k, v := range ratios {
		res.ScaledRatio[k] = geomean(v)
	}
	for k, v := range penalties {
		var s float64
		for _, p := range v {
			s += p
		}
		res.AvgPenalty[k] = s / float64(len(v))
	}
	if w != nil {
		printTable2(w, res)
	}
	return res, nil
}

func printTable2(w io.Writer, res *Table2Result) {
	fmt.Fprintln(w, "Table 2: scaled HPWL (overflow penalty %) on ISPD 2006 analogs")
	fmt.Fprintln(w, "(NLP ~ NTUPlace3/mPL6 family proxy; FastPlace-CS; RQL-style; ComPLx)")
	fmt.Fprintf(w, "%-10s %6s | %14s | %14s | %14s | %14s\n",
		"bench", "target", "NLP", "FastPlace-CS", "RQL", "ComPLx")
	cell := func(fr flowResult) string {
		return fmt.Sprintf("%9.0f(%4.1f)", fr.Scaled, fr.Penalty)
	}
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-10s %6.2f | %14s | %14s | %14s | %14s\n",
			r.Name, r.Target, cell(r.NLP), cell(r.FastPlace), cell(r.RQL), cell(r.ComPLx))
	}
	fmt.Fprintf(w, "%-10s %6s | %9.3f(%4.1f) | %9.3f(%4.1f) | %9.3f(%4.1f) | %9.3f(%4.1f)\n",
		"geomean", "",
		res.ScaledRatio["nlp"], res.AvgPenalty["nlp"],
		res.ScaledRatio["fastplace"], res.AvgPenalty["fastplace"],
		res.ScaledRatio["rql"], res.AvgPenalty["rql"],
		res.ScaledRatio["complx"], res.AvgPenalty["complx"])
	fmt.Fprintln(w, "(scaled-HPWL ratios normalized to ComPLx = 1.0; penalties are averages)")
}
