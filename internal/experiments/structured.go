package experiments

import (
	"fmt"
	"io"
	"math"

	"complx/internal/gen"
	"complx/internal/geom"
	"complx/internal/netlist"
)

// StructuredRow is one placer's result on the mesh circuit.
type StructuredRow struct {
	Placer string
	HPWL   float64
	// Ratio is HPWL over the natural (grid) placement's HPWL — how far the
	// placer lands from the manual layout.
	Ratio float64
}

// StructuredResult probes the paper-intro observation (Ward et al., ISPD
// 2011) that analytical placers lag manual layouts on structured circuits:
// on a mesh whose natural placement is wirelength-optimal up to boundary
// effects, every placer's HPWL is reported relative to that natural layout.
type StructuredResult struct {
	Cols, Rows int
	Natural    float64
	Rows_      []StructuredRow
}

// Structured runs the structured-circuit study.
func Structured(w io.Writer, cfg Config) (*StructuredResult, error) {
	cfg.fill()
	side := int(20 * math.Sqrt(cfg.Scale) * 4)
	if side < 8 {
		side = 8
	}
	spec := gen.MeshSpec{Name: "mesh", Cols: side, Rows: side * 3 / 4}
	res := &StructuredResult{Cols: spec.Cols, Rows: spec.Rows}
	for _, alg := range []string{"complx", "simpl", "fastplace-cs", "rql"} {
		nl, natural, err := gen.GenerateMesh(spec)
		if err != nil {
			return nil, err
		}
		res.Natural = natural
		scramble(nl)
		fr, err := runFlow(nl, flowOptions{algorithm: alg})
		if err != nil {
			return nil, fmt.Errorf("structured %s: %w", alg, err)
		}
		res.Rows_ = append(res.Rows_, StructuredRow{
			Placer: alg,
			HPWL:   fr.HPWL,
			Ratio:  fr.HPWL / natural,
		})
	}
	if w != nil {
		fmt.Fprintf(w, "Structured-circuit study: %dx%d mesh, natural HPWL %.0f\n",
			res.Cols, res.Rows, res.Natural)
		fmt.Fprintf(w, "%-14s %12s %8s\n", "placer", "HPWL", "ratio")
		for _, r := range res.Rows_ {
			fmt.Fprintf(w, "%-14s %12.0f %8.2f\n", r.Placer, r.HPWL, r.Ratio)
		}
		fmt.Fprintln(w, "(ratio = placer HPWL / natural grid placement; 1.0 would match manual layout)")
	}
	return res, nil
}

// scramble moves every movable cell to a deterministic pseudo-random spot
// so placers cannot free-ride on the natural initial placement.
func scramble(nl *netlist.Netlist) {
	// Simple LCG keeps the scramble deterministic without math/rand state.
	state := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	for _, i := range nl.Movables() {
		c := &nl.Cells[i]
		c.SetCenter(geom.Point{
			X: nl.Core.XMin + next()*nl.Core.Width(),
			Y: nl.Core.YMin + next()*nl.Core.Height(),
		})
	}
}
