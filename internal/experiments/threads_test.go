package experiments

import (
	"math"
	"testing"

	"complx/internal/core"
	"complx/internal/gen"
	"complx/internal/netlist"
	"complx/internal/par"
)

// TestPlacementBitwiseAcrossThreads is the end-to-end determinism gate for
// the parallel kernels: a full ComPLx global placement must produce
// bitwise-identical cell positions whether the worker pool has 1, 2 or 8
// workers. Every parallel decomposition (matrix assembly shards, CSR row
// chunks, reduction blocks, density bins) is a pure function of problem
// size, so parallelism may only change scheduling — never arithmetic order.
func TestPlacementBitwiseAcrossThreads(t *testing.T) {
	defer par.SetThreads(0)
	spec := gen.Scaled(mustSpec("adaptec1"), 0.04)
	one := func(threads int) (*netlist.Netlist, *core.Result) {
		par.SetThreads(threads)
		nl, err := gen.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Place(nl, core.Options{TargetDensity: spec.TargetDensity})
		if err != nil {
			t.Fatal(err)
		}
		return nl, res
	}
	refNl, refRes := one(1)
	for _, threads := range []int{2, 8} {
		nl, res := one(threads)
		if res.Iterations != refRes.Iterations {
			t.Errorf("threads=%d: %d iterations, want %d", threads, res.Iterations, refRes.Iterations)
		}
		if math.Float64bits(res.HPWL) != math.Float64bits(refRes.HPWL) {
			t.Errorf("threads=%d: HPWL %x want %x", threads,
				math.Float64bits(res.HPWL), math.Float64bits(refRes.HPWL))
		}
		for i := range nl.Cells {
			a, b := nl.Cells[i].Center(), refNl.Cells[i].Center()
			if math.Float64bits(a.X) != math.Float64bits(b.X) || math.Float64bits(a.Y) != math.Float64bits(b.Y) {
				t.Fatalf("threads=%d: cell %d at (%x,%x) want (%x,%x)", threads, i,
					math.Float64bits(a.X), math.Float64bits(a.Y),
					math.Float64bits(b.X), math.Float64bits(b.Y))
			}
		}
	}
}
