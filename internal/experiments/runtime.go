package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"complx/internal/gen"
)

// RuntimePoint is one (size, wall-clock) sample for one placer.
type RuntimePoint struct {
	Cells   int
	Seconds float64
}

// RuntimeResult holds the §S3 runtime-scaling study: global placement
// wall-clock against design size, with fitted log-log slopes. The paper
// estimates ComPLx near-linear, O(n·(log n)^p) per iteration with a
// size-independent iteration count, versus Θ(n^1.38) for FastPlace.
type RuntimeResult struct {
	ComPLx, FastPlace []RuntimePoint
	// Exponents are the least-squares slopes of log(time) vs log(n).
	ComPLxExponent, FastPlaceExponent float64
}

// RuntimeScaling measures global placement runtime across a geometric size
// sweep (paper §S3).
func RuntimeScaling(w io.Writer, cfg Config) (*RuntimeResult, error) {
	cfg.fill()
	base, _ := gen.ByName("adaptec1")
	sizes := []int{
		int(2000 * cfg.Scale * 4),
		int(4000 * cfg.Scale * 4),
		int(8000 * cfg.Scale * 4),
		int(16000 * cfg.Scale * 4),
	}
	res := &RuntimeResult{}
	for _, n := range sizes {
		if n < 200 {
			n = 200
		}
		spec := base
		spec.Name = fmt.Sprintf("scale%d", n)
		spec.NumCells = n
		spec.NumMacros = 0
		for _, alg := range []string{"complx", "fastplace-cs"} {
			nl, err := fresh(spec)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := runFlow(nl, flowOptions{algorithm: alg, skipLegal: true}); err != nil {
				return nil, fmt.Errorf("runtime %s/%d: %w", alg, n, err)
			}
			pt := RuntimePoint{Cells: n, Seconds: time.Since(start).Seconds()}
			if alg == "complx" {
				res.ComPLx = append(res.ComPLx, pt)
			} else {
				res.FastPlace = append(res.FastPlace, pt)
			}
		}
	}
	res.ComPLxExponent = fitExponent(res.ComPLx)
	res.FastPlaceExponent = fitExponent(res.FastPlace)
	if w != nil {
		fmt.Fprintln(w, "S3: global placement runtime scaling (seconds)")
		fmt.Fprintf(w, "%8s %10s %14s\n", "cells", "ComPLx", "FastPlace-CS")
		for i := range res.ComPLx {
			fmt.Fprintf(w, "%8d %10.2f %14.2f\n",
				res.ComPLx[i].Cells, res.ComPLx[i].Seconds, res.FastPlace[i].Seconds)
		}
		fmt.Fprintf(w, "fitted exponent: ComPLx n^%.2f, FastPlace-CS n^%.2f\n",
			res.ComPLxExponent, res.FastPlaceExponent)
		fmt.Fprintln(w, "(paper: ComPLx near-linear; FastPlace estimated Θ(n^1.38))")
	}
	return res, nil
}

// fitExponent computes the least-squares slope of log(seconds) vs log(n).
func fitExponent(pts []RuntimePoint) float64 {
	if len(pts) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(pts))
	for _, p := range pts {
		x := math.Log(float64(p.Cells))
		y := math.Log(math.Max(p.Seconds, 1e-6))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
