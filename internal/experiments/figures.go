package experiments

import (
	"fmt"
	"io"
	"sort"

	"complx/internal/core"
	"complx/internal/density"
	"complx/internal/gen"
	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/netmodel"
	"complx/internal/shred"
	"complx/internal/spread"
	"complx/internal/timing"
)

// Figure1Result traces L, Φ and Π over ComPLx iterations on the largest
// 2005 analog (paper Figure 1, BIGBLUE4).
type Figure1Result struct {
	Benchmark string
	History   []core.IterStats
}

// Figure1 regenerates the convergence trace of paper Figure 1.
func Figure1(w io.Writer, cfg Config) (*Figure1Result, error) {
	cfg.fill()
	base, err := specByName("bigblue4")
	if err != nil {
		return nil, err
	}
	spec := gen.Scaled(base, cfg.Scale)
	nl, err := fresh(spec)
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{Benchmark: spec.Name}
	_, err = runFlow(nl, flowOptions{
		algorithm: "complx",
		skipLegal: true,
		onIteration: func(st core.IterStats) {
			res.History = append(res.History, st)
		},
	})
	if err != nil {
		return nil, err
	}
	if w != nil {
		fmt.Fprintf(w, "Figure 1: progression of L, Phi, Pi over ComPLx iterations on %s\n", spec.Name)
		fmt.Fprintf(w, "%4s %12s %12s %12s %10s\n", "iter", "L", "Phi", "Pi", "lambda")
		for _, st := range res.History {
			fmt.Fprintf(w, "%4d %12.0f %12.0f %12.0f %10.4f\n", st.Iter, st.L, st.Phi, st.Pi, st.Lambda)
		}
	}
	return res, nil
}

// Figure2Macro summarizes one macro's shredding state (paper Figure 2).
type Figure2Macro struct {
	Name string
	// W, H are the macro dimensions; BBoxW/BBoxH the projected shred
	// bounding box (the halo of §5 makes the bbox outgrow the macro).
	W, H, BBoxW, BBoxH float64
	Shreds             int
	// Displacement is the interpolated macro move of this projection.
	Displacement float64
}

// Figure2Result reports shredding on the newblue1 analog at an
// intermediate placement.
type Figure2Result struct {
	Benchmark string
	Iteration int
	Macros    []Figure2Macro
	// MeanHalo is the average bbox-area / macro-area ratio.
	MeanHalo float64
}

// Figure2 regenerates the macro-shredding snapshot of paper Figure 2:
// ComPLx is stopped at an intermediate iteration on the newblue1 analog and
// the feasibility projection of the shredded macros is inspected.
func Figure2(w io.Writer, cfg Config) (*Figure2Result, error) {
	cfg.fill()
	base, err := specByName("newblue1")
	if err != nil {
		return nil, err
	}
	spec := gen.Scaled(base, cfg.Scale)
	nl, err := fresh(spec)
	if err != nil {
		return nil, err
	}
	const iter = 12
	if _, err := runFlow(nl, flowOptions{
		algorithm:     "complx",
		targetDensity: spec.TargetDensity,
		maxIterations: iter,
		skipLegal:     true,
	}); err != nil {
		return nil, err
	}
	// One more projection at the intermediate placement.
	sh := shred.New(nl, spec.TargetDensity)
	nx, _ := density.AutoResolution(sh.NumItems(), 2.5, 192)
	grid, err := density.NewGridForNetlist(nl, nx, nx, spec.TargetDensity)
	if err != nil {
		return nil, err
	}
	items := sh.Items()
	proj := spread.NewProjector(grid, spread.Options{}).Project(items)
	anchors, err := sh.Interpolate(proj)
	if err != nil {
		return nil, err
	}

	res := &Figure2Result{Benchmark: spec.Name, Iteration: iter}
	mov := nl.Movables()
	var haloSum float64
	for k, i := range mov {
		c := &nl.Cells[i]
		if c.Kind != netlist.Macro {
			continue
		}
		box := sh.ShredBBox(k, proj)
		m := Figure2Macro{
			Name: c.Name, W: c.W, H: c.H,
			BBoxW: box.Width(), BBoxH: box.Height(),
			Shreds:       sh.ShredCount(k),
			Displacement: c.Center().L1(anchors[k]),
		}
		res.Macros = append(res.Macros, m)
		haloSum += (m.BBoxW * m.BBoxH) / (m.W * m.H)
	}
	if len(res.Macros) > 0 {
		res.MeanHalo = haloSum / float64(len(res.Macros))
	}
	if w != nil {
		fmt.Fprintf(w, "Figure 2: macro shredding on %s at iteration %d\n", spec.Name, iter)
		fmt.Fprintf(w, "%-8s %7s %7s %9s %9s %7s %12s\n",
			"macro", "W", "H", "shredW", "shredH", "shreds", "displacement")
		for _, m := range res.Macros {
			fmt.Fprintf(w, "%-8s %7.1f %7.1f %9.1f %9.1f %7d %12.2f\n",
				m.Name, m.W, m.H, m.BBoxW, m.BBoxH, m.Shreds, m.Displacement)
		}
		fmt.Fprintf(w, "mean shred-bbox / macro area ratio (halo): %.2f\n", res.MeanHalo)
	}
	return res, nil
}

// Figure3Row is one benchmark's scalability datum (paper Figure 3 / §S3).
type Figure3Row struct {
	Benchmark   string
	Nets        int
	Iterations  int
	FinalLambda float64
}

// Figure3Result holds the final λ and iteration counts against design size.
type Figure3Result struct {
	Rows []Figure3Row
}

// Figure3 regenerates paper Figure 3: final λ values and global placement
// iteration counts across both suites, plotted against net count.
func Figure3(w io.Writer, cfg Config) (*Figure3Result, error) {
	cfg.fill()
	res := &Figure3Result{}
	specs := append(cfg.suite2005(), cfg.suite2006()...)
	for _, spec := range specs {
		nl, err := fresh(spec)
		if err != nil {
			return nil, err
		}
		fr, err := runFlow(nl, flowOptions{
			algorithm:     "complx",
			targetDensity: spec.TargetDensity,
			skipLegal:     true,
		})
		if err != nil {
			return nil, fmt.Errorf("figure3 %s: %w", spec.Name, err)
		}
		res.Rows = append(res.Rows, Figure3Row{
			Benchmark:   spec.Name,
			Nets:        nl.NumNets(),
			Iterations:  fr.Iterations,
			FinalLambda: fr.FinalLambda,
		})
	}
	sort.Slice(res.Rows, func(a, b int) bool { return res.Rows[a].Nets < res.Rows[b].Nets })
	if w != nil {
		fmt.Fprintln(w, "Figure 3: final lambda and iteration count vs number of nets")
		fmt.Fprintf(w, "%-10s %8s %10s %12s\n", "bench", "nets", "iters", "final lambda")
		for _, r := range res.Rows {
			fmt.Fprintf(w, "%-10s %8d %10d %12.4f\n", r.Benchmark, r.Nets, r.Iterations, r.FinalLambda)
		}
	}
	return res, nil
}

// Figure4Result compares placements without and with a hard region
// constraint on a group of cells (paper Figure 4 / §S5).
type Figure4Result struct {
	CellsConstrained          int
	HPWLFree, HPWLConstrained float64
	ViolationsAfter           int
}

// Figure4 regenerates the region-constraint experiment of paper Figure 4:
// 50 cells are constrained to a region; the constraint is enforced through
// the feasibility projection and the final HPWL stays close to (or better
// than) the unconstrained value.
func Figure4(w io.Writer, cfg Config) (*Figure4Result, error) {
	cfg.fill()
	spec := gen.Spec{Name: "region-demo", NumCells: int(2000 * cfg.Scale), Seed: 77, Utilization: 0.6}
	if spec.NumCells < 200 {
		spec.NumCells = 200
	}
	res := &Figure4Result{CellsConstrained: 50}

	// Unconstrained run.
	nl, err := fresh(spec)
	if err != nil {
		return nil, err
	}
	fr, err := runFlow(nl, flowOptions{algorithm: "complx"})
	if err != nil {
		return nil, err
	}
	res.HPWLFree = fr.HPWL

	// Constrained run: the 50 cells of the densest nets go to a region in
	// the upper-right quadrant.
	nl2, err := fresh(spec)
	if err != nil {
		return nil, err
	}
	r := geom.Rect{
		XMin: nl2.Core.XMax * 0.5, YMin: nl2.Core.YMax * 0.5,
		XMax: nl2.Core.XMax * 0.95, YMax: nl2.Core.YMax * 0.95,
	}
	nl2.Regions = append(nl2.Regions, netlist.Region{Name: "grp", Rect: r})
	group := pickConnectedCells(nl2, 50)
	for _, ci := range group {
		nl2.Cells[ci].Region = 0
	}
	fr2, err := runFlow(nl2, flowOptions{algorithm: "complx"})
	if err != nil {
		return nil, err
	}
	res.HPWLConstrained = fr2.HPWL
	for _, ci := range group {
		if !r.Expand(1e-6).ContainsRect(nl2.Cells[ci].Rect()) {
			res.ViolationsAfter++
		}
	}
	if w != nil {
		fmt.Fprintln(w, "Figure 4: hard region constraint on 50 cells")
		fmt.Fprintf(w, "unconstrained HPWL:   %.0f\n", res.HPWLFree)
		fmt.Fprintf(w, "with region:          %.0f  (%.2fx)\n",
			res.HPWLConstrained, res.HPWLConstrained/res.HPWLFree)
		fmt.Fprintf(w, "region violations:    %d of %d cells\n", res.ViolationsAfter, len(group))
	}
	return res, nil
}

// pickConnectedCells gathers n movable std cells by walking nets from a
// seed cell, so the constrained group is topologically connected.
func pickConnectedCells(nl *netlist.Netlist, n int) []int {
	mov := nl.Movables()
	seen := map[int]bool{}
	var out []int
	queue := []int{mov[0]}
	for len(queue) > 0 && len(out) < n {
		ci := queue[0]
		queue = queue[1:]
		if seen[ci] || !nl.Cells[ci].Movable() || nl.Cells[ci].Kind != netlist.Std {
			continue
		}
		seen[ci] = true
		out = append(out, ci)
		for _, p := range nl.Cells[ci].Pins {
			net := &nl.Nets[nl.Pins[p].Net]
			for _, q := range net.Pins {
				if !seen[nl.Pins[q].Cell] {
					queue = append(queue, nl.Pins[q].Cell)
				}
			}
		}
	}
	// Fallback: top up from the movable list.
	for _, ci := range mov {
		if len(out) >= n {
			break
		}
		if !seen[ci] && nl.Cells[ci].Kind == netlist.Std {
			seen[ci] = true
			out = append(out, ci)
		}
	}
	return out
}

// Figure5Run is one net-weight configuration of the timing experiment.
type Figure5Run struct {
	Weight float64
	// PathHPWL is the summed HPWL of the selected critical-path nets;
	// TotalHPWL the legal HPWL of the whole design.
	PathHPWL, TotalHPWL float64
}

// Figure5Result reproduces paper Figure 5 / §S6: raising the weights of
// three critical paths shrinks them without hurting total HPWL.
type Figure5Result struct {
	Benchmark string
	PathNets  int
	Runs      []Figure5Run
}

// Figure5 regenerates the timing-driven net-weighting experiment.
func Figure5(w io.Writer, cfg Config) (*Figure5Result, error) {
	cfg.fill()
	base, err := specByName("bigblue1")
	if err != nil {
		return nil, err
	}
	spec := gen.Scaled(base, cfg.Scale)
	res := &Figure5Result{Benchmark: spec.Name}

	// Stable intermediate placement to estimate net lengths (paper: 30
	// global iterations).
	probe, err := fresh(spec)
	if err != nil {
		return nil, err
	}
	if _, err := runFlow(probe, flowOptions{algorithm: "complx", maxIterations: 30, skipLegal: true}); err != nil {
		return nil, err
	}
	paths := timing.New(probe, timing.Options{}).CriticalPaths(3)
	netSet := map[int]bool{}
	for _, p := range paths {
		nets := p.Nets
		// Keep the boosted set a small fraction of the design so the
		// "largely unaffected total HPWL" property is meaningful at reduced
		// benchmark scale (the paper boosts 3 paths of a 278k-cell design).
		if len(nets) > 8 {
			nets = nets[:8]
		}
		for _, ni := range nets {
			netSet[ni] = true
		}
	}
	nets := make([]int, 0, len(netSet))
	for ni := range netSet {
		nets = append(nets, ni)
	}
	sort.Ints(nets)
	res.PathNets = len(nets)

	for _, weight := range []float64{1, 20, 40} {
		nl, err := fresh(spec)
		if err != nil {
			return nil, err
		}
		for _, ni := range nets {
			nl.Nets[ni].Weight = weight
		}
		fr, err := runFlow(nl, flowOptions{algorithm: "complx"})
		if err != nil {
			return nil, err
		}
		var pathHPWL float64
		for _, ni := range nets {
			pathHPWL += netmodel.NetHPWL(nl, ni)
		}
		res.Runs = append(res.Runs, Figure5Run{Weight: weight, PathHPWL: pathHPWL, TotalHPWL: fr.HPWL})
	}
	if w != nil {
		fmt.Fprintf(w, "Figure 5: net weighting on 3 critical paths of %s (%d nets)\n",
			spec.Name, res.PathNets)
		fmt.Fprintf(w, "%8s %14s %14s\n", "weight", "path HPWL", "total HPWL")
		for _, r := range res.Runs {
			fmt.Fprintf(w, "%8.0f %14.1f %14.0f\n", r.Weight, r.PathHPWL, r.TotalHPWL)
		}
	}
	return res, nil
}

// S2Result aggregates the self-consistency statistics of the feasibility
// projection (paper §S2).
type S2Result struct {
	Checks        int
	Consistent    float64 // fraction
	Inconsistent  float64
	PremiseFailed float64
}

// S2 measures Formula 11 self-consistency across the 2005 suite.
func S2(w io.Writer, cfg Config) (*S2Result, error) {
	cfg.fill()
	agg := core.SelfConsistency{}
	for _, spec := range cfg.suite2005() {
		nl, err := fresh(spec)
		if err != nil {
			return nil, err
		}
		fr, err := runFlow(nl, flowOptions{algorithm: "complx", skipLegal: true})
		if err != nil {
			return nil, err
		}
		agg.Total += fr.SelfCons.Total
		agg.Consistent += fr.SelfCons.Consistent
		agg.Inconsistent += fr.SelfCons.Inconsistent
		agg.PremiseFailed += fr.SelfCons.PremiseFailed
	}
	res := &S2Result{Checks: agg.Total}
	if agg.Total > 0 {
		res.Consistent = float64(agg.Consistent) / float64(agg.Total)
		res.Inconsistent = float64(agg.Inconsistent) / float64(agg.Total)
		res.PremiseFailed = float64(agg.PremiseFailed) / float64(agg.Total)
	}
	if w != nil {
		fmt.Fprintln(w, "S2: self-consistency of the feasibility projection (Formula 11)")
		fmt.Fprintf(w, "checks: %d\n", res.Checks)
		fmt.Fprintf(w, "consistent:        %5.1f%%  (paper: 96.0%%)\n", 100*res.Consistent)
		fmt.Fprintf(w, "inconsistent:      %5.1f%%  (paper:  0.6%%)\n", 100*res.Inconsistent)
		fmt.Fprintf(w, "premise not held:  %5.1f%%  (paper:  3.3%%)\n", 100*res.PremiseFailed)
	}
	return res, nil
}

// specByName resolves a generator benchmark spec, returning an error (not a
// panic) when the name is unknown so misconfigured experiment runs surface a
// diagnosable failure.
func specByName(name string) (gen.Spec, error) {
	s, ok := gen.ByName(name)
	if !ok {
		return gen.Spec{}, fmt.Errorf("experiments: unknown benchmark %q", name)
	}
	return s, nil
}
