package experiments

import (
	"testing"

	"complx/internal/gen"
)

// mustSpec is the test-side convenience over specByName: unknown benchmark
// names are impossible in the test suite, so a failure is fatal.
func mustSpec(name string) gen.Spec {
	s, err := specByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

func TestSpecByNameUnknown(t *testing.T) {
	if _, err := specByName("no-such-benchmark"); err == nil {
		t.Fatal("specByName accepted an unknown benchmark name")
	}
}
