package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tiny keeps experiment tests fast: ~400-cell designs, two benchmarks per
// suite.
var tiny = Config{Scale: 0.06, MaxBenchmarks: 2}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	res, err := Table1(&buf, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		for name, fr := range map[string]flowResult{
			"best": r.Best, "finest": r.Finest, "projdp": r.ProjDP, "default": r.Default,
		} {
			if fr.HPWL <= 0 {
				t.Errorf("%s/%s: HPWL = %v", r.Name, name, fr.HPWL)
			}
		}
		// The qualitative Table 1 shape: finest-grid and P_C+=DP quality is
		// within a modest band of the default configuration.
		if r.Finest.HPWL > 1.35*r.Default.HPWL || r.ProjDP.HPWL > 1.35*r.Default.HPWL {
			t.Errorf("%s: configs diverge: finest=%v projdp=%v default=%v",
				r.Name, r.Finest.HPWL, r.ProjDP.HPWL, r.Default.HPWL)
		}
	}
	if res.HPWLRatio["default"] != 1.0 {
		t.Errorf("default ratio = %v", res.HPWLRatio["default"])
	}
	out := buf.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "geomean") {
		t.Errorf("output malformed:\n%s", out)
	}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	res, err := Table2(&buf, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.ComPLx.Scaled <= 0 || r.NLP.Scaled <= 0 || r.FastPlace.Scaled <= 0 || r.RQL.Scaled <= 0 {
			t.Errorf("%s: zero scaled HPWL", r.Name)
		}
		if r.Target >= 1 {
			t.Errorf("%s: target = %v", r.Name, r.Target)
		}
	}
	if res.ScaledRatio["complx"] != 1.0 {
		t.Errorf("complx ratio = %v", res.ScaledRatio["complx"])
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Error("output malformed")
	}
}

func TestFigure1(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure1(&buf, tiny)
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	if len(h) < 5 {
		t.Fatalf("history = %d", len(h))
	}
	// Paper Figure 1 trends: Pi down, Phi up, L rises then flattens.
	if h[len(h)-1].Pi > 0.6*h[0].Pi {
		t.Errorf("Pi trend: %v -> %v", h[0].Pi, h[len(h)-1].Pi)
	}
	if h[len(h)-1].Phi < h[0].Phi {
		t.Errorf("Phi trend: %v -> %v", h[0].Phi, h[len(h)-1].Phi)
	}
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Error("output malformed")
	}
}

func TestFigure2(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure2(&buf, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Macros) == 0 {
		t.Fatal("no macros reported")
	}
	for _, m := range res.Macros {
		if m.Shreds < 1 {
			t.Errorf("macro %s: %d shreds", m.Name, m.Shreds)
		}
		if m.BBoxW <= 0 || m.BBoxH <= 0 {
			t.Errorf("macro %s: empty bbox", m.Name)
		}
	}
	if res.MeanHalo <= 0 {
		t.Errorf("halo = %v", res.MeanHalo)
	}
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Error("output malformed")
	}
}

func TestFigure3(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure3(&buf, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // 2 per suite
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Iterations <= 0 || r.Nets <= 0 {
			t.Errorf("row %+v", r)
		}
		if r.FinalLambda <= 0 {
			t.Errorf("%s: final lambda = %v", r.Benchmark, r.FinalLambda)
		}
	}
	// Sorted by net count.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Nets < res.Rows[i-1].Nets {
			t.Error("rows not sorted")
		}
	}
}

func TestFigure4(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure4(&buf, Config{Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolationsAfter != 0 {
		t.Errorf("region violations = %d", res.ViolationsAfter)
	}
	// The paper observes HPWL barely changes (even improves); allow a
	// modest band for the synthetic analog.
	if res.HPWLConstrained > 1.35*res.HPWLFree {
		t.Errorf("region cost too high: %v vs %v", res.HPWLConstrained, res.HPWLFree)
	}
}

func TestFigure5(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure5(&buf, Config{Scale: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	base, boosted := res.Runs[0], res.Runs[2]
	// Paper Figure 5: boosted weights shrink the paths...
	if boosted.PathHPWL >= base.PathHPWL {
		t.Errorf("path did not shrink: %v -> %v", base.PathHPWL, boosted.PathHPWL)
	}
	// ...with only marginal total HPWL impact.
	if boosted.TotalHPWL > 1.10*base.TotalHPWL {
		t.Errorf("total HPWL degraded: %v -> %v", base.TotalHPWL, boosted.TotalHPWL)
	}
}

func TestS2(t *testing.T) {
	var buf bytes.Buffer
	res, err := S2(&buf, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checks == 0 {
		t.Fatal("no checks")
	}
	total := res.Consistent + res.Inconsistent + res.PremiseFailed
	if total < 0.999 || total > 1.001 {
		t.Errorf("fractions sum to %v", total)
	}
	if res.Consistent < 0.5 {
		t.Errorf("consistency %v too low", res.Consistent)
	}
}

func TestRunDispatcher(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("figure1", &buf, tiny); err != nil {
		t.Fatal(err)
	}
	if err := Run("nope", &buf, tiny); err == nil {
		t.Error("expected error for unknown experiment")
	}
	if len(All()) != 11 {
		t.Errorf("All() = %v", All())
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g != 4 {
		t.Errorf("geomean = %v", g)
	}
	if g := geomean(nil); g != 0 {
		t.Errorf("empty geomean = %v", g)
	}
}

func TestAblation(t *testing.T) {
	var buf bytes.Buffer
	res, err := Ablation(&buf, Config{Scale: 0.06})
	if err != nil {
		t.Fatal(err)
	}
	groups := map[string]int{}
	for _, r := range res.Rows {
		groups[r.Group]++
		if r.HPWL <= 0 {
			t.Errorf("%s/%s: HPWL = %v", r.Group, r.Name, r.HPWL)
		}
	}
	want := map[string]int{"netmodel": 4, "wirelength": 3, "schedule": 2, "detailed": 3, "macro-lambda": 2, "legalizer": 2}
	for g, n := range want {
		if groups[g] != n {
			t.Errorf("group %s has %d rows, want %d", g, groups[g], n)
		}
	}
	// Detailed placement must help: "full" beats "none" on the same GP.
	var full, none float64
	for _, r := range res.Rows {
		if r.Group == "detailed" && r.Name == "full" {
			full = r.HPWL
		}
		if r.Group == "detailed" && r.Name == "none" {
			none = r.HPWL
		}
	}
	if full >= none {
		t.Errorf("detailed placement did not improve: full=%v none=%v", full, none)
	}
	if !strings.Contains(buf.String(), "Ablations") {
		t.Error("output malformed")
	}
}

func TestRuntimeScaling(t *testing.T) {
	var buf bytes.Buffer
	res, err := RuntimeScaling(&buf, Config{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ComPLx) != 4 || len(res.FastPlace) != 4 {
		t.Fatalf("points: %d, %d", len(res.ComPLx), len(res.FastPlace))
	}
	// Runtime grows with size for both placers.
	if res.ComPLx[3].Seconds <= res.ComPLx[0].Seconds {
		t.Errorf("ComPLx runtime not growing: %+v", res.ComPLx)
	}
	// Fitted exponents exist and are positive; at tiny scales constant
	// overheads dominate, so only sanity-check the range.
	if res.ComPLxExponent <= 0 || res.ComPLxExponent > 3 {
		t.Errorf("ComPLx exponent = %v", res.ComPLxExponent)
	}
	if !strings.Contains(buf.String(), "fitted exponent") {
		t.Error("output malformed")
	}
}

func TestFitExponent(t *testing.T) {
	// Perfect quadratic data fits slope 2.
	pts := []RuntimePoint{{100, 1}, {200, 4}, {400, 16}}
	if got := fitExponent(pts); math.Abs(got-2) > 1e-9 {
		t.Errorf("exponent = %v, want 2", got)
	}
	if fitExponent(pts[:1]) != 0 {
		t.Error("single point should fit 0")
	}
}

func TestStructured(t *testing.T) {
	var buf bytes.Buffer
	res, err := Structured(&buf, Config{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows_) != 4 {
		t.Fatalf("rows = %d", len(res.Rows_))
	}
	for _, r := range res.Rows_ {
		// Every placer must beat total chaos but is expected to lag the
		// manual layout (ratio > 1); allow a wide band.
		if r.Ratio < 0.95 || r.Ratio > 6 {
			t.Errorf("%s: ratio = %v", r.Placer, r.Ratio)
		}
	}
	if !strings.Contains(buf.String(), "Structured") {
		t.Error("output malformed")
	}
}
