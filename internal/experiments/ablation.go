package experiments

import (
	"fmt"
	"io"
	"time"

	"complx/internal/core"
	"complx/internal/detailed"
	"complx/internal/gen"
	"complx/internal/legalize"
	"complx/internal/netlist"
	"complx/internal/netmodel"
)

// AblationRow is one design-choice variant's outcome on the reference
// benchmark.
type AblationRow struct {
	Group, Name string
	HPWL        float64
	Iterations  int
	Runtime     time.Duration
}

// AblationResult collects all variants, grouped by the design choice they
// ablate.
type AblationResult struct {
	Benchmark string
	Rows      []AblationRow
}

// Ablation quantifies the design choices DESIGN.md calls out, all on the
// same ISPD-2005-analog benchmark:
//
//   - net model: B2B vs clique vs star vs hybrid (paper §2);
//   - interconnect instantiation: linearized quadratic vs log-sum-exp vs
//     p,β-regularization (paper §S1);
//   - λ schedule: Formula 12 vs SimPL's linear ramp (paper §4);
//   - per-macro λ scaling on/off (paper §5, on a mixed-size analog);
//   - detailed placement passes: none/moves-only/full (flow substrate).
func Ablation(w io.Writer, cfg Config) (*AblationResult, error) {
	cfg.fill()
	base, err := specByName("adaptec1")
	if err != nil {
		return nil, err
	}
	spec := gen.Scaled(base, cfg.Scale)
	res := &AblationResult{Benchmark: spec.Name}

	runCore := func(group, name string, opt core.Options, dp *detailed.Options) error {
		nl, err := fresh(spec)
		if err != nil {
			return err
		}
		start := time.Now()
		r, err := core.Place(nl, opt)
		if err != nil {
			return fmt.Errorf("ablation %s/%s: %w", group, name, err)
		}
		if err := legalize.Legalize(nl, legalize.Options{}); err != nil {
			return err
		}
		dpo := detailed.Options{}
		if dp != nil {
			dpo = *dp
		}
		if !dpo.DisableMoves || !dpo.DisableSwaps || !dpo.DisableReorder {
			if _, err := detailed.Refine(nl, dpo); err != nil {
				return err
			}
		}
		res.Rows = append(res.Rows, AblationRow{
			Group: group, Name: name,
			HPWL:       netmodel.HPWL(nl),
			Iterations: r.Iterations,
			Runtime:    time.Since(start),
		})
		return nil
	}

	// Net models.
	for _, m := range []netmodel.Model{netmodel.B2B, netmodel.Clique, netmodel.Star, netmodel.Hybrid} {
		if err := runCore("netmodel", m.String(), core.Options{Model: m}, nil); err != nil {
			return nil, err
		}
	}
	// Interconnect instantiations.
	if err := runCore("wirelength", "quadratic", core.Options{}, nil); err != nil {
		return nil, err
	}
	if err := runCore("wirelength", "log-sum-exp", core.Options{UseLSE: true}, nil); err != nil {
		return nil, err
	}
	if err := runCore("wirelength", "p-norm", core.Options{UsePNorm: true}, nil); err != nil {
		return nil, err
	}
	// λ schedules.
	if err := runCore("schedule", "complx", core.Options{}, nil); err != nil {
		return nil, err
	}
	if err := runCore("schedule", "simpl-linear", core.Options{Schedule: core.ScheduleSimPL}, nil); err != nil {
		return nil, err
	}
	// Detailed placement passes.
	full := detailed.Options{}
	movesOnly := detailed.Options{DisableSwaps: true, DisableReorder: true}
	none := detailed.Options{DisableMoves: true, DisableSwaps: true, DisableReorder: true}
	if err := runCore("detailed", "full", core.Options{}, &full); err != nil {
		return nil, err
	}
	if err := runCore("detailed", "moves-only", core.Options{}, &movesOnly); err != nil {
		return nil, err
	}
	if err := runCore("detailed", "none", core.Options{}, &none); err != nil {
		return nil, err
	}

	// Legalizers: Tetris greedy vs Abacus within-row DP.
	for _, lg := range []struct {
		name string
		fn   func(*netlist.Netlist, legalize.Options) error
	}{
		{"tetris", legalize.Legalize},
		{"abacus", legalize.LegalizeAbacus},
	} {
		nl, err := fresh(spec)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		r, err := core.Place(nl, core.Options{})
		if err != nil {
			return nil, err
		}
		if err := lg.fn(nl, legalize.Options{}); err != nil {
			return nil, err
		}
		if _, err := detailed.Refine(nl, detailed.Options{}); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Group: "legalizer", Name: lg.name,
			HPWL:       netmodel.HPWL(nl),
			Iterations: r.Iterations,
			Runtime:    time.Since(start),
		})
	}

	// Per-macro λ scaling, on a mixed-size analog.
	mixBase, err := specByName("newblue1")
	if err != nil {
		return nil, err
	}
	mixSpec := gen.Scaled(mixBase, cfg.Scale)
	runMix := func(name string, opt core.Options) error {
		nl, err := fresh(mixSpec)
		if err != nil {
			return err
		}
		opt.TargetDensity = mixSpec.TargetDensity
		start := time.Now()
		r, err := core.Place(nl, opt)
		if err != nil {
			return err
		}
		if err := legalize.Legalize(nl, legalize.Options{}); err != nil {
			return err
		}
		if _, err := detailed.Refine(nl, detailed.Options{}); err != nil {
			return err
		}
		res.Rows = append(res.Rows, AblationRow{
			Group: "macro-lambda", Name: name,
			HPWL:       netmodel.HPWL(nl),
			Iterations: r.Iterations,
			Runtime:    time.Since(start),
		})
		return nil
	}
	if err := runMix("scaled (paper)", core.Options{}); err != nil {
		return nil, err
	}
	if err := runMix("unscaled", core.Options{NoMacroLambdaScale: true}); err != nil {
		return nil, err
	}

	if w != nil {
		fmt.Fprintf(w, "Ablations on %s (and %s for macro-lambda)\n", spec.Name, mixSpec.Name)
		fmt.Fprintf(w, "%-14s %-16s %12s %8s %10s\n", "group", "variant", "HPWL", "iters", "time")
		prev := ""
		for _, r := range res.Rows {
			g := r.Group
			if g == prev {
				g = ""
			} else {
				prev = r.Group
			}
			fmt.Fprintf(w, "%-14s %-16s %12.0f %8d %10s\n", g, r.Name, r.HPWL, r.Iterations, durSec(r.Runtime))
		}
	}
	return res, nil
}
