package experiments

import (
	"time"

	"complx/internal/baseline"
	"complx/internal/core"
	"complx/internal/density"
	"complx/internal/detailed"
	"complx/internal/legalize"
	"complx/internal/netlist"
	"complx/internal/netmodel"
)

// flowOptions mirrors the public flow configuration for experiment runs.
type flowOptions struct {
	algorithm     string // "complx", "simpl", "fastplace-cs", "nlp"
	targetDensity float64
	finestGrid    bool
	projectionDP  bool
	maxIterations int
	skipLegal     bool
	onIteration   func(core.IterStats)
}

// runFlow executes global placement + legalization + detailed placement and
// measures the metrics the paper's tables report.
func runFlow(nl *netlist.Netlist, opt flowOptions) (flowResult, error) {
	if opt.targetDensity <= 0 || opt.targetDensity > 1 {
		opt.targetDensity = 1
	}
	start := time.Now()
	var fr flowResult
	coreOpt := core.Options{
		TargetDensity: opt.targetDensity,
		FinestGrid:    opt.finestGrid,
		MaxIterations: opt.maxIterations,
		OnIteration:   opt.onIteration,
	}
	if opt.projectionDP {
		coreOpt.ProjectionRefine = func(n *netlist.Netlist) error {
			if err := legalize.Legalize(n, legalize.Options{}); err != nil {
				return nil // best-effort refinement
			}
			detailed.Refine(n, detailed.Options{Passes: 1})
			return nil
		}
	}
	switch opt.algorithm {
	case "", "complx":
		r, err := core.Place(nl, coreOpt)
		if err != nil {
			return fr, err
		}
		fr.Iterations = r.Iterations
		fr.FinalLambda = r.FinalLambda
		fr.SelfCons = r.SelfCons
	case "simpl":
		r, err := baseline.SimPL(nl, coreOpt)
		if err != nil {
			return fr, err
		}
		fr.Iterations = r.Iterations
		fr.FinalLambda = r.FinalLambda
		fr.SelfCons = r.SelfCons
	case "fastplace-cs":
		r, err := baseline.FastPlaceCS(nl, baseline.FPOptions{TargetDensity: opt.targetDensity})
		if err != nil {
			return fr, err
		}
		fr.Iterations = r.Iterations
	case "nlp":
		r, err := baseline.NLP(nl, baseline.NLPOptions{TargetDensity: opt.targetDensity})
		if err != nil {
			return fr, err
		}
		fr.Iterations = r.Iterations
	case "rql":
		r, err := baseline.RQL(nl, baseline.RQLOptions{TargetDensity: opt.targetDensity})
		if err != nil {
			return fr, err
		}
		fr.Iterations = r.Iterations
	}
	if !opt.skipLegal && len(nl.Rows) > 0 {
		if err := legalize.Legalize(nl, legalize.Options{}); err != nil {
			return fr, err
		}
		if _, err := detailed.Refine(nl, detailed.Options{}); err != nil {
			return fr, err
		}
	}
	fr.HPWL = netmodel.HPWL(nl)
	fr.Scaled, fr.Penalty = scaledHPWL(nl, opt.targetDensity)
	fr.Runtime = time.Since(start)
	return fr, nil
}

// scaledHPWL evaluates the ISPD 2006 contest metric on the contest's
// ten-row-height bin grid. Designs too degenerate to carry a contest grid
// (e.g. a zero-area core) report the plain HPWL with zero penalty.
func scaledHPWL(nl *netlist.Netlist, target float64) (scaled, penaltyPercent float64) {
	g, err := density.ContestGrid(nl, target)
	if err != nil {
		return netmodel.HPWL(nl), 0
	}
	g.AccumulateMovable(nl)
	return g.ScaledHPWL(netmodel.HPWL(nl)), g.PenaltyPercent()
}
