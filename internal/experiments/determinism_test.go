package experiments

import (
	"testing"

	"complx/internal/core"
	"complx/internal/gen"
)

// TestPlacementDeterministic: the same spec and options must produce
// bit-identical results across runs — this catches nondeterministic map
// iteration or data races leaking into the algorithm.
func TestPlacementDeterministic(t *testing.T) {
	one := func() (float64, int) {
		spec := gen.Scaled(mustSpec("newblue2"), 0.06)
		nl, err := gen.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Place(nl, core.Options{TargetDensity: spec.TargetDensity})
		if err != nil {
			t.Fatal(err)
		}
		return res.HPWL, res.Iterations
	}
	h1, i1 := one()
	h2, i2 := one()
	if h1 != h2 || i1 != i2 {
		t.Errorf("nondeterministic: (%v, %d) vs (%v, %d)", h1, i1, h2, i2)
	}
}

// TestFullFlowDeterministic covers legalization and detailed placement too.
func TestFullFlowDeterministic(t *testing.T) {
	one := func() flowResult {
		spec := gen.Scaled(mustSpec("adaptec2"), 0.06)
		nl, err := gen.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := runFlow(nl, flowOptions{algorithm: "complx"})
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}
	a, b := one(), one()
	if a.HPWL != b.HPWL || a.Scaled != b.Scaled || a.Iterations != b.Iterations {
		t.Errorf("nondeterministic flow: %+v vs %+v", a, b)
	}
}
