// Package resilience implements the solver fallback ladder: a declarative
// escalation policy that replaces ad-hoc retry logic in the placement
// engine. When a primal solve fails with non-finite numerics, the engine
// asks an Escalator what to try next; the Escalator walks a Policy — an
// ordered list of rungs, each naming a recovery action and an attempt
// budget — and records every attempt in a structured Log that surfaces on
// the run's Result.
//
// The default ladder (DefaultPolicy) escalates through
//
//  1. restore_snapshot — restore the last finite placement and retry as-is;
//  2. relax_numerics   — restore and retry with relaxed solver numerics
//     (PrimalSolver.Relax): larger regularization eps, looser CG tolerance;
//  3. reanchor         — restart the solve from the last feasibility
//     projection's anchors, a guaranteed-finite C-feasible placement;
//  4. relaxed_restart  — restore, relax again, and damp the Lagrange
//     multiplier ×0.5 so the penalized system is better conditioned.
//
// Escalation is monotone within a run: rungs are consumed in order and
// never reset, so the total number of recovery attempts is bounded by the
// sum of the budgets. Recovery state is deliberately not checkpointed — a
// resumed run gets a fresh ladder (documented in DESIGN.md §10).
//
// Every attempt increments the labeled counter
// complx_recovery_attempts_total{rung="..."} (and _successes_total on
// recovery) when an Observer is attached.
package resilience

import (
	"fmt"

	"complx/internal/obs"
)

// Rung names one level of the fallback ladder. Rungs are plain strings so
// logs and metrics render them directly.
type Rung string

const (
	// RungRestore restores the last finite snapshot and retries unchanged.
	RungRestore Rung = "restore_snapshot"
	// RungRelax restores and relaxes the solver numerics before retrying.
	RungRelax Rung = "relax_numerics"
	// RungReanchor restarts the solve from the last projection's anchors.
	RungReanchor Rung = "reanchor"
	// RungRelaxedRestart restores, relaxes again and damps λ ×0.5.
	RungRelaxedRestart Rung = "relaxed_restart"

	// RungCheckpoint tags non-ladder log events: a failed checkpoint save
	// is recorded (and counted) but never kills the run.
	RungCheckpoint Rung = "checkpoint_save"
)

// Action tells the engine what to do before retrying a failed solve. The
// fields compose; the engine applies them in declaration order.
type Action struct {
	// Restore the last finite placement snapshot.
	Restore bool
	// Relax the primal solver's numerics (PrimalSolver.Relax), when the
	// solver supports it.
	Relax bool
	// Reanchor sets the movable positions to the last feasibility
	// projection's anchors instead of the snapshot (falls back to Restore
	// before any projection exists).
	Reanchor bool
	// LambdaDamp scales the current multiplier λ (and the per-cell pseudonet
	// weights of the retried solve) by this factor; 0 or 1 leaves λ alone.
	LambdaDamp float64
}

// Step is one rung of a Policy: the action to take and how many times it
// may be attempted before the ladder escalates past it.
type Step struct {
	Rung   Rung
	Action Action
	// Budget is the attempt budget of this rung (<= 0 means 1).
	Budget int
}

// Policy is an ordered fallback ladder.
type Policy struct {
	Steps []Step
}

// DefaultPolicy returns the standard four-rung ladder described in the
// package comment.
func DefaultPolicy() Policy {
	return Policy{Steps: []Step{
		{Rung: RungRestore, Action: Action{Restore: true}, Budget: 1},
		{Rung: RungRelax, Action: Action{Restore: true, Relax: true}, Budget: 2},
		{Rung: RungReanchor, Action: Action{Reanchor: true}, Budget: 1},
		{Rung: RungRelaxedRestart, Action: Action{Restore: true, Relax: true, LambdaDamp: 0.5}, Budget: 1},
	}}
}

// MaxAttempts returns the total attempt budget across all rungs.
func (p Policy) MaxAttempts() int {
	n := 0
	for _, s := range p.Steps {
		b := s.Budget
		if b <= 0 {
			b = 1
		}
		n += b
	}
	return n
}

// Event records one recovery attempt (or checkpoint-save failure) for the
// run's structured recovery log.
type Event struct {
	// Iter is the global placement iteration at which the failure occurred
	// (0 = during the initial interconnect solves).
	Iter int
	// Rung that was attempted.
	Rung Rung
	// Attempt is the 1-based attempt number within the rung.
	Attempt int
	// Cause is the rendered error that triggered the attempt.
	Cause string
	// Recovered reports whether the retry after this attempt succeeded.
	Recovered bool
}

// String renders the event as a single log-friendly line.
func (e Event) String() string {
	verdict := "failed"
	if e.Recovered {
		verdict = "recovered"
	}
	return fmt.Sprintf("iter=%d rung=%s attempt=%d %s: %s", e.Iter, e.Rung, e.Attempt, verdict, e.Cause)
}

// Log is the structured recovery history of one run.
type Log struct {
	Events []Event
}

// Empty reports whether no recovery was needed.
func (l *Log) Empty() bool { return l == nil || len(l.Events) == 0 }

// Attempts returns the number of logged events.
func (l *Log) Attempts() int {
	if l == nil {
		return 0
	}
	return len(l.Events)
}

// Recovered reports whether any logged attempt succeeded.
func (l *Log) Recovered() bool {
	if l == nil {
		return false
	}
	for _, e := range l.Events {
		if e.Recovered {
			return true
		}
	}
	return false
}

// Add appends an out-of-ladder event (for example a checkpoint-save
// failure) to the log.
func (l *Log) Add(e Event) { l.Events = append(l.Events, e) }

// Escalator walks a Policy for one run, counting attempts per rung and
// recording the structured log. The zero value is not useful; construct
// with NewEscalator. An Escalator is not safe for concurrent use (the
// engine loops are single-goroutine).
type Escalator struct {
	policy Policy
	obs    *obs.Observer
	log    Log

	idx  int // current rung index
	used int // attempts consumed at the current rung
}

// NewEscalator builds an Escalator over policy. A nil observer disables
// metrics at the usual one-branch cost.
func NewEscalator(policy Policy, o *obs.Observer) *Escalator {
	return &Escalator{policy: policy, obs: o}
}

// Next returns the next recovery step for a failure at iteration iter with
// the given cause, consuming one attempt of the current rung's budget. It
// returns ok=false when the ladder is exhausted; otherwise the attempt is
// logged (Recovered pending — see Outcome) and counted in the labeled
// recovery_attempts metric.
func (e *Escalator) Next(iter int, cause error) (Step, bool) {
	for e.idx < len(e.policy.Steps) {
		s := e.policy.Steps[e.idx]
		budget := s.Budget
		if budget <= 0 {
			budget = 1
		}
		if e.used >= budget {
			e.idx++
			e.used = 0
			continue
		}
		e.used++
		msg := ""
		if cause != nil {
			msg = cause.Error()
		}
		e.log.Events = append(e.log.Events, Event{
			Iter:    iter,
			Rung:    s.Rung,
			Attempt: e.used,
			Cause:   msg,
		})
		e.obs.AddCount(attemptMetric(s.Rung), 1)
		return s, true
	}
	return Step{}, false
}

// Outcome marks the most recent attempt returned by Next as recovered (or
// not). Calling it with recovered=true also bumps the successes counter.
func (e *Escalator) Outcome(recovered bool) {
	if len(e.log.Events) == 0 {
		return
	}
	e.log.Events[len(e.log.Events)-1].Recovered = recovered
	if recovered {
		e.obs.AddCount(obs.MetricRecoverySuccesses, 1)
	}
}

// Log returns the escalator's structured recovery log (nil-safe: a nil
// escalator has an empty log).
func (e *Escalator) Log() *Log {
	if e == nil {
		return &Log{}
	}
	return &e.log
}

// attemptMetric renders the labeled per-rung attempts counter name.
func attemptMetric(r Rung) string {
	return obs.MetricRecoveryAttempts + `{rung="` + string(r) + `"}`
}
