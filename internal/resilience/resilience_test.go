package resilience

import (
	"errors"
	"strings"
	"testing"

	"complx/internal/obs"
)

func TestDefaultPolicyShape(t *testing.T) {
	p := DefaultPolicy()
	if len(p.Steps) != 4 {
		t.Fatalf("default policy has %d rungs, want 4", len(p.Steps))
	}
	wantOrder := []Rung{RungRestore, RungRelax, RungReanchor, RungRelaxedRestart}
	for i, s := range p.Steps {
		if s.Rung != wantOrder[i] {
			t.Errorf("rung %d = %s, want %s", i, s.Rung, wantOrder[i])
		}
	}
	if got := p.MaxAttempts(); got != 5 {
		t.Errorf("MaxAttempts = %d, want 5", got)
	}
}

func TestEscalatorWalksBudgets(t *testing.T) {
	cause := errors.New("solve went non-finite")
	e := NewEscalator(DefaultPolicy(), nil)
	var rungs []Rung
	for {
		s, ok := e.Next(7, cause)
		if !ok {
			break
		}
		rungs = append(rungs, s.Rung)
		e.Outcome(false)
	}
	want := []Rung{RungRestore, RungRelax, RungRelax, RungReanchor, RungRelaxedRestart}
	if len(rungs) != len(want) {
		t.Fatalf("attempts = %v, want %v", rungs, want)
	}
	for i := range want {
		if rungs[i] != want[i] {
			t.Fatalf("attempts = %v, want %v", rungs, want)
		}
	}
	// Exhausted ladders stay exhausted.
	if _, ok := e.Next(8, cause); ok {
		t.Error("exhausted escalator granted another attempt")
	}
	log := e.Log()
	if log.Attempts() != 5 || log.Recovered() {
		t.Errorf("log: attempts=%d recovered=%v, want 5/false", log.Attempts(), log.Recovered())
	}
	if log.Events[1].Attempt != 1 || log.Events[2].Attempt != 2 {
		t.Errorf("relax attempts numbered %d,%d, want 1,2", log.Events[1].Attempt, log.Events[2].Attempt)
	}
}

func TestEscalatorOutcomeAndMetrics(t *testing.T) {
	o := obs.New()
	e := NewEscalator(DefaultPolicy(), o)
	s, ok := e.Next(3, errors.New("nan residual"))
	if !ok || s.Rung != RungRestore {
		t.Fatalf("first attempt = %v ok=%v", s.Rung, ok)
	}
	e.Outcome(true)
	log := e.Log()
	if !log.Recovered() || !log.Events[0].Recovered {
		t.Error("successful outcome not recorded")
	}
	snap := o.Metrics().Snapshot()
	if snap[`complx_recovery_attempts_total{rung="restore_snapshot"}`] != 1 {
		t.Errorf("labeled attempts counter missing: %v", snap)
	}
	if snap[obs.MetricRecoverySuccesses] != 1 {
		t.Errorf("successes counter missing: %v", snap)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Iter: 4, Rung: RungRelax, Attempt: 2, Cause: "boom", Recovered: true}
	s := e.String()
	for _, frag := range []string{"iter=4", "rung=relax_numerics", "attempt=2", "recovered", "boom"} {
		if !strings.Contains(s, frag) {
			t.Errorf("event string %q missing %q", s, frag)
		}
	}
}

func TestNilEscalatorLog(t *testing.T) {
	var e *Escalator
	if !e.Log().Empty() {
		t.Error("nil escalator log not empty")
	}
}

func TestEmptyPolicyNeverRecovers(t *testing.T) {
	e := NewEscalator(Policy{}, nil)
	if _, ok := e.Next(1, errors.New("x")); ok {
		t.Error("empty policy granted an attempt")
	}
}

func TestLogAddOutOfLadderEvent(t *testing.T) {
	var l Log
	l.Add(Event{Iter: 9, Rung: RungCheckpoint, Attempt: 1, Cause: "disk full"})
	if l.Attempts() != 1 || l.Events[0].Rung != RungCheckpoint {
		t.Errorf("out-of-ladder event not recorded: %+v", l)
	}
}
