package resilience

import (
	"sync"
	"sync/atomic"
	"time"
)

// Watchdog detects work that has stopped making progress. The owner calls
// Touch on every unit of progress (the complxd daemon wires it to the
// engine's per-iteration callback); a background monitor fires onStall —
// exactly once — when no Touch arrives for a full window. The construction
// instant counts as the first touch, so slow-starting work gets one whole
// window before the first verdict.
//
// The watchdog is advisory: it never stops the work itself. onStall
// typically cancels the work's context (with a cause naming the watchdog)
// and the owner maps the resulting cancellation to a failure. Stop the
// watchdog when the work finishes; Stop after a firing is a no-op, and the
// monitor goroutine always exits by the later of Stop and the firing.
type Watchdog struct {
	window  time.Duration
	onStall func()

	start time.Time
	last  atomic.Int64 // nanoseconds since start of the most recent Touch
	fired atomic.Bool

	stop     chan struct{}
	stopOnce sync.Once
}

// NewWatchdog starts a monitor that calls onStall once if Touch stays
// silent for window. A non-positive window disables the watchdog entirely
// (nil is returned; Touch/Stop/Fired on a nil Watchdog are no-ops), so
// callers can wire an optional config knob straight through.
func NewWatchdog(window time.Duration, onStall func()) *Watchdog {
	if window <= 0 {
		return nil
	}
	w := &Watchdog{
		window:  window,
		onStall: onStall,
		start:   time.Now(),
		stop:    make(chan struct{}),
	}
	// Poll at a quarter window so a stall is flagged within ~1.25 windows
	// of the last touch in the worst case.
	tick := window / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	go w.monitor(tick)
	return w
}

func (w *Watchdog) monitor(tick time.Duration) {
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			idle := time.Since(w.start).Nanoseconds() - w.last.Load()
			if idle > w.window.Nanoseconds() {
				if w.fired.CompareAndSwap(false, true) {
					w.onStall()
				}
				return
			}
		}
	}
}

// Touch records progress, resetting the stall window. Safe from any
// goroutine, nil-safe, and wait-free (one atomic store).
func (w *Watchdog) Touch() {
	if w == nil {
		return
	}
	w.last.Store(time.Since(w.start).Nanoseconds())
}

// Stop ends the monitor without firing. Idempotent and nil-safe.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stop) })
}

// Fired reports whether the stall callback ran. Nil-safe.
func (w *Watchdog) Fired() bool {
	return w != nil && w.fired.Load()
}
