package resilience

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestWatchdogFiresOnStall pins the core contract: no touches for a full
// window fires onStall exactly once.
func TestWatchdogFiresOnStall(t *testing.T) {
	var fired atomic.Int32
	done := make(chan struct{})
	w := NewWatchdog(20*time.Millisecond, func() {
		if fired.Add(1) == 1 {
			close(done)
		}
	})
	defer w.Stop()

	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog did not fire on a silent workload")
	}
	// The monitor exits after firing; give a would-be double fire time to
	// materialize before asserting exactly-once.
	time.Sleep(100 * time.Millisecond)
	if n := fired.Load(); n != 1 {
		t.Fatalf("onStall ran %d times, want exactly 1", n)
	}
	if !w.Fired() {
		t.Error("Fired() = false after the stall callback ran")
	}
}

// TestWatchdogTouchKeepsAlive pins that steady progress suppresses the
// firing, and that the stall is detected once progress stops.
func TestWatchdogTouchKeepsAlive(t *testing.T) {
	fired := make(chan struct{})
	w := NewWatchdog(60*time.Millisecond, func() { close(fired) })
	defer w.Stop()

	// Touch at a quarter of the window for several windows' worth of time.
	for i := 0; i < 20; i++ {
		select {
		case <-fired:
			t.Fatal("watchdog fired despite steady progress")
		case <-time.After(15 * time.Millisecond):
			w.Touch()
		}
	}
	// Stop touching: the stall must now be detected.
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog did not fire after progress stopped")
	}
}

// TestWatchdogStopPreventsFiring pins that Stop wins a clean shutdown race:
// a stopped watchdog never fires, even after the window has long expired.
func TestWatchdogStopPreventsFiring(t *testing.T) {
	var fired atomic.Int32
	w := NewWatchdog(50*time.Millisecond, func() { fired.Add(1) })
	w.Stop()
	w.Stop() // idempotent
	time.Sleep(150 * time.Millisecond)
	if fired.Load() != 0 {
		t.Error("stopped watchdog fired")
	}
	if w.Fired() {
		t.Error("Fired() = true on a stopped watchdog")
	}
}

// TestWatchdogDisabled pins the nil contract for a non-positive window.
func TestWatchdogDisabled(t *testing.T) {
	w := NewWatchdog(0, func() { t.Error("disabled watchdog fired") })
	if w != nil {
		t.Fatalf("NewWatchdog(0) = %v, want nil", w)
	}
	// All methods must be nil-safe.
	w.Touch()
	w.Stop()
	if w.Fired() {
		t.Error("nil watchdog reports Fired")
	}
}
