package netmodel

import (
	"math"

	"complx/internal/netlist"
	"complx/internal/sparse"
)

// Model selects how multi-pin nets are decomposed into two-pin quadratic
// terms.
type Model int

const (
	// B2B is the Bound2Bound model: every pin connects to the two boundary
	// pins of the net. With linearized weights its energy equals the exact
	// HPWL at the linearization point.
	B2B Model = iota
	// Clique connects all pin pairs.
	Clique
	// Star connects every pin to an auxiliary center variable (for nets
	// with three or more pins; two-pin nets use a direct edge).
	Star
	// Hybrid uses Clique for nets of degree <= 3 and B2B otherwise.
	Hybrid
)

func (m Model) String() string {
	switch m {
	case B2B:
		return "b2b"
	case Clique:
		return "clique"
	case Star:
		return "star"
	case Hybrid:
		return "hybrid"
	default:
		return "unknown"
	}
}

// System is one dimension of the quadratic placement problem: minimize
// x^T A x - 2 b^T x, i.e. solve A x = b. Variables 0..NumMovable-1 are the
// movable cell centers (in netlist.Movables order); any further variables
// are star-model net centers.
type System struct {
	A *sparse.CSR
	B []float64
	// NumMovable is the count of leading variables that are cell centers.
	NumMovable int
}

// Assembler builds per-dimension linear systems from a netlist at its
// current placement (the linearization point).
type Assembler struct {
	nl    *netlist.Netlist
	model Model
	// Eps bounds linearization denominators away from zero; the paper uses
	// 1.5x the row height.
	eps float64
	// varOf maps cell index to variable index; -1 for fixed cells.
	varOf []int
	nMov  int
	nAux  int
}

// NewAssembler prepares an assembler for the given net model. eps is the
// linearization denominator floor; when <= 0 it defaults to 1.5x row height.
func NewAssembler(nl *netlist.Netlist, model Model, eps float64) *Assembler {
	if eps <= 0 {
		eps = 1.5 * nl.RowHeight()
	}
	a := &Assembler{nl: nl, model: model, eps: eps}
	a.varOf = make([]int, len(nl.Cells))
	for i := range a.varOf {
		a.varOf[i] = -1
	}
	for k, i := range nl.Movables() {
		a.varOf[i] = k
	}
	a.nMov = nl.NumMovable()
	if model == Star {
		for i := range nl.Nets {
			if countDistinctCells(nl, i) >= 3 {
				a.nAux++
			}
		}
	}
	return a
}

// VarOf returns the variable index of cell c, or -1 when fixed.
func (a *Assembler) VarOf(c int) int { return a.varOf[c] }

// NumVars returns the total variable count per dimension.
func (a *Assembler) NumVars() int { return a.nMov + a.nAux }

// Eps returns the linearization floor in use.
func (a *Assembler) Eps() float64 { return a.eps }

func countDistinctCells(nl *netlist.Netlist, n int) int {
	net := &nl.Nets[n]
	seen := make(map[int]struct{}, len(net.Pins))
	for _, p := range net.Pins {
		seen[nl.Pins[p].Cell] = struct{}{}
	}
	return len(seen)
}

// dim identifies an axis.
type dim int

const (
	dimX dim = iota
	dimY
)

// pinCoord returns the absolute pin coordinate and offset from cell center
// along d.
func (a *Assembler) pinCoord(p int, d dim) (abs, off float64, cell int) {
	pin := &a.nl.Pins[p]
	c := a.nl.Cells[pin.Cell].Center()
	if d == dimX {
		return c.X + pin.DX, pin.DX, pin.Cell
	}
	return c.Y + pin.DY, pin.DY, pin.Cell
}

// edge stamps the quadratic term w*(pos_i - pos_j)^2 for pins i and j into
// builder/rhs, where pos = variable + offset for movable cells and the
// absolute pin coordinate for fixed ones.
func (a *Assembler) edge(b *sparse.Builder, rhs []float64, pi, pj int, d dim, w float64) {
	absI, offI, ci := a.pinCoord(pi, d)
	absJ, offJ, cj := a.pinCoord(pj, d)
	vi, vj := a.varOf[ci], a.varOf[cj]
	switch {
	case vi >= 0 && vj >= 0:
		if ci == cj {
			return // both pins on the same cell: no force
		}
		b.AddSym(vi, vj, w)
		c := offI - offJ
		rhs[vi] -= w * c
		rhs[vj] += w * c
	case vi >= 0:
		b.AddDiag(vi, w)
		rhs[vi] += w * (absJ - offI)
	case vj >= 0:
		b.AddDiag(vj, w)
		rhs[vj] += w * (absI - offJ)
	}
}

// starEdge stamps w*(pos_i - s)^2 where s is the aux variable with index sv.
func (a *Assembler) starEdge(b *sparse.Builder, rhs []float64, pi, sv int, d dim, w float64) {
	absI, offI, ci := a.pinCoord(pi, d)
	vi := a.varOf[ci]
	if vi >= 0 {
		b.AddSym(vi, sv, w)
		rhs[vi] -= w * offI
		rhs[sv] += w * offI
	} else {
		b.AddDiag(sv, w)
		rhs[sv] += w * absI
	}
}

// Builders returns fresh per-dimension builders and right-hand sides with
// the net model stamped in, for callers that add anchor terms before
// solving. Variables use the current placement as linearization point.
func (a *Assembler) Builders() (bx, by *sparse.Builder, fx, fy []float64) {
	n := a.NumVars()
	bx, by = sparse.NewBuilder(n), sparse.NewBuilder(n)
	fx, fy = make([]float64, n), make([]float64, n)
	aux := a.nMov
	for ni := range a.nl.Nets {
		net := &a.nl.Nets[ni]
		if len(net.Pins) < 2 {
			continue
		}
		model := a.model
		if model == Hybrid {
			if len(net.Pins) <= 3 {
				model = Clique
			} else {
				model = B2B
			}
		}
		if model == Star && countDistinctCells(a.nl, ni) < 3 {
			model = Clique
		}
		switch model {
		case B2B:
			a.stampB2B(bx, fx, ni, dimX)
			a.stampB2B(by, fy, ni, dimY)
		case Clique:
			a.stampClique(bx, fx, ni, dimX)
			a.stampClique(by, fy, ni, dimY)
		case Star:
			a.stampStar(bx, fx, ni, dimX, aux)
			a.stampStar(by, fy, ni, dimY, aux)
			aux++
		}
	}
	return bx, by, fx, fy
}

// Assemble builds the two per-dimension systems without extra terms.
func (a *Assembler) Assemble() (sx, sy System) {
	bx, by, fx, fy := a.Builders()
	return System{A: bx.Build(), B: fx, NumMovable: a.nMov},
		System{A: by.Build(), B: fy, NumMovable: a.nMov}
}

func (a *Assembler) stampB2B(b *sparse.Builder, rhs []float64, ni int, d dim) {
	net := &a.nl.Nets[ni]
	p := len(net.Pins)
	// Locate boundary pins.
	minP, maxP := net.Pins[0], net.Pins[0]
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, pin := range net.Pins {
		v, _, _ := a.pinCoord(pin, d)
		if v < minV {
			minV, minP = v, pin
		}
		if v >= maxV {
			maxV, maxP = v, pin
		}
	}
	if minP == maxP {
		return
	}
	wBase := net.Weight / float64(p-1)
	w := func(vi, vj float64) float64 {
		return wBase / (math.Abs(vi-vj) + a.eps)
	}
	a.edge(b, rhs, minP, maxP, d, w(minV, maxV))
	for _, pin := range net.Pins {
		if pin == minP || pin == maxP {
			continue
		}
		v, _, _ := a.pinCoord(pin, d)
		a.edge(b, rhs, pin, minP, d, w(v, minV))
		a.edge(b, rhs, pin, maxP, d, w(v, maxV))
	}
}

func (a *Assembler) stampClique(b *sparse.Builder, rhs []float64, ni int, d dim) {
	net := &a.nl.Nets[ni]
	p := len(net.Pins)
	wBase := net.Weight * 2 / float64(p)
	for i := 0; i < p; i++ {
		vi, _, _ := a.pinCoord(net.Pins[i], d)
		for j := i + 1; j < p; j++ {
			vj, _, _ := a.pinCoord(net.Pins[j], d)
			w := wBase / (math.Abs(vi-vj) + a.eps)
			a.edge(b, rhs, net.Pins[i], net.Pins[j], d, w)
		}
	}
}

func (a *Assembler) stampStar(b *sparse.Builder, rhs []float64, ni int, d dim, sv int) {
	net := &a.nl.Nets[ni]
	p := len(net.Pins)
	// Center estimate: mean pin coordinate at the linearization point.
	var mean float64
	for _, pin := range net.Pins {
		v, _, _ := a.pinCoord(pin, d)
		mean += v
	}
	mean /= float64(p)
	wBase := net.Weight * 2 / float64(p)
	for _, pin := range net.Pins {
		v, _, _ := a.pinCoord(pin, d)
		w := wBase / (math.Abs(v-mean) + a.eps)
		a.starEdge(b, rhs, pin, sv, d, w)
	}
}

// Energy evaluates the model objective at the current placement by direct
// edge enumeration (used for testing and for reporting Φ under non-HPWL
// models). For B2B with exact (eps=0-style) weights this approximates the
// weighted HPWL.
func (a *Assembler) Energy() float64 {
	var total float64
	for ni := range a.nl.Nets {
		net := &a.nl.Nets[ni]
		if len(net.Pins) < 2 {
			continue
		}
		model := a.model
		if model == Hybrid {
			if len(net.Pins) <= 3 {
				model = Clique
			} else {
				model = B2B
			}
		}
		switch model {
		case B2B, Star: // star energy at center==mean equals pin spread; report B2B-style
			total += a.b2bEnergy(ni, dimX) + a.b2bEnergy(ni, dimY)
		case Clique:
			total += a.cliqueEnergy(ni, dimX) + a.cliqueEnergy(ni, dimY)
		}
	}
	return total
}

func (a *Assembler) b2bEnergy(ni int, d dim) float64 {
	net := &a.nl.Nets[ni]
	p := len(net.Pins)
	minP, maxP := net.Pins[0], net.Pins[0]
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, pin := range net.Pins {
		v, _, _ := a.pinCoord(pin, d)
		if v < minV {
			minV, minP = v, pin
		}
		if v >= maxV {
			maxV, maxP = v, pin
		}
	}
	if minP == maxP {
		return 0
	}
	wBase := net.Weight / float64(p-1)
	e := func(vi, vj float64) float64 {
		d := vi - vj
		return wBase * d * d / (math.Abs(d) + a.eps)
	}
	total := e(minV, maxV)
	for _, pin := range net.Pins {
		if pin == minP || pin == maxP {
			continue
		}
		v, _, _ := a.pinCoord(pin, d)
		total += e(v, minV) + e(v, maxV)
	}
	return total
}

func (a *Assembler) cliqueEnergy(ni int, d dim) float64 {
	net := &a.nl.Nets[ni]
	p := len(net.Pins)
	wBase := net.Weight * 2 / float64(p)
	var total float64
	for i := 0; i < p; i++ {
		vi, _, _ := a.pinCoord(net.Pins[i], d)
		for j := i + 1; j < p; j++ {
			vj, _, _ := a.pinCoord(net.Pins[j], d)
			dd := vi - vj
			total += wBase * dd * dd / (math.Abs(dd) + a.eps)
		}
	}
	return total
}
