package netmodel

import (
	"math"

	"complx/internal/netlist"
	"complx/internal/par"
	"complx/internal/sparse"
)

// Assembly decomposition constants. Like every user of package par, the
// shard partition is a pure function of the netlist (total pin count), never
// of the worker count, so assembly is bitwise deterministic at any
// parallelism level.
const (
	// assemblyPinGrain is the target number of pins per assembly shard.
	assemblyPinGrain = 4096
	// maxAssemblyChunks caps the shard count.
	maxAssemblyChunks = 32
	// rhsMergeGrain is the element chunk length for zeroing/merging the
	// dense right-hand sides.
	rhsMergeGrain = 16384
)

// Model selects how multi-pin nets are decomposed into two-pin quadratic
// terms.
type Model int

const (
	// B2B is the Bound2Bound model: every pin connects to the two boundary
	// pins of the net. With linearized weights its energy equals the exact
	// HPWL at the linearization point.
	B2B Model = iota
	// Clique connects all pin pairs.
	Clique
	// Star connects every pin to an auxiliary center variable (for nets
	// with three or more pins; two-pin nets use a direct edge).
	Star
	// Hybrid uses Clique for nets of degree <= 3 and B2B otherwise.
	Hybrid
)

func (m Model) String() string {
	switch m {
	case B2B:
		return "b2b"
	case Clique:
		return "clique"
	case Star:
		return "star"
	case Hybrid:
		return "hybrid"
	default:
		return "unknown"
	}
}

// System is one dimension of the quadratic placement problem: minimize
// x^T A x - 2 b^T x, i.e. solve A x = b. Variables 0..NumMovable-1 are the
// movable cell centers (in netlist.Movables order); any further variables
// are star-model net centers.
type System struct {
	A *sparse.CSR
	B []float64
	// NumMovable is the count of leading variables that are cell centers.
	NumMovable int
}

// rhsAcc accumulates right-hand-side contributions as (index, value) pairs.
// Shard-local pair lists let assembly run in parallel without write races on
// a shared dense vector; merging the lists in shard order afterwards
// reproduces the exact serial summation order.
type rhsAcc struct {
	idx []int32
	val []float64
}

func (r *rhsAcc) add(i int, v float64) {
	r.idx = append(r.idx, int32(i))
	r.val = append(r.val, v)
}

func (r *rhsAcc) reset() { r.idx, r.val = r.idx[:0], r.val[:0] }

// Assembler builds per-dimension linear systems from a netlist at its
// current placement (the linearization point).
//
// An Assembler is also an incremental-assembly cache: AssembleInto reuses
// the shard builders, right-hand-side buffers, CSR output arrays and build
// scratch across calls, so the per-iteration system rebuild of the outer
// placement loop stops allocating. One Assembler must not be used from
// multiple goroutines at once.
type Assembler struct {
	nl    *netlist.Netlist
	model Model
	// Eps bounds linearization denominators away from zero; the paper uses
	// 1.5x the row height.
	eps float64
	// varOf maps cell index to variable index; -1 for fixed cells.
	varOf []int
	nMov  int
	nAux  int
	// auxOf maps net index to its star-model center variable (-1 when the
	// net has no aux variable). Precomputed so shards can stamp any net
	// range independently.
	auxOf []int32

	// Reusable assembly state, created lazily on first AssembleInto.
	chunk            []int32 // shard net-range boundaries, len = nchunks+1
	shX, shY         []*sparse.Builder
	rhX, rhY         []*rhsAcc
	extraX, extraY   *sparse.Builder
	fx, fy           []float64
	mx, my           *sparse.CSR
	bsX, bsY         sparse.BuildScratch
	shardsX, shardsY []*sparse.Builder // scratch: shX/shY + extra
}

// MinEps is the hard floor for the linearization denominator ε. Callers may
// pass any positive ε — including denormals — and pins may coincide exactly,
// in which case a weight 1/(|d|+ε) would overflow to +Inf and poison the
// linear system. Clamping ε here bounds every B2B/clique/star weight. It
// also covers row-less designs, where the 1.5×row-height default would
// otherwise evaluate to zero.
const MinEps = 1e-12

// NewAssembler prepares an assembler for the given net model. eps is the
// linearization denominator floor; when <= 0 it defaults to 1.5x row height,
// and it is never allowed below MinEps.
func NewAssembler(nl *netlist.Netlist, model Model, eps float64) *Assembler {
	if eps <= 0 {
		eps = 1.5 * nl.RowHeight()
	}
	if !(eps >= MinEps) { // also catches NaN
		eps = MinEps
	}
	a := &Assembler{nl: nl, model: model, eps: eps}
	a.varOf = make([]int, len(nl.Cells))
	for i := range a.varOf {
		a.varOf[i] = -1
	}
	for k, i := range nl.Movables() {
		a.varOf[i] = k
	}
	a.nMov = nl.NumMovable()
	if model == Star {
		a.auxOf = make([]int32, len(nl.Nets))
		for i := range nl.Nets {
			if countDistinctCells(nl, i) >= 3 {
				a.auxOf[i] = int32(a.nMov + a.nAux)
				a.nAux++
			} else {
				a.auxOf[i] = -1
			}
		}
	}
	return a
}

// VarOf returns the variable index of cell c, or -1 when fixed.
func (a *Assembler) VarOf(c int) int { return a.varOf[c] }

// NumVars returns the total variable count per dimension.
func (a *Assembler) NumVars() int { return a.nMov + a.nAux }

// Eps returns the linearization floor in use.
func (a *Assembler) Eps() float64 { return a.eps }

func countDistinctCells(nl *netlist.Netlist, n int) int {
	net := &nl.Nets[n]
	seen := make(map[int]struct{}, len(net.Pins))
	for _, p := range net.Pins {
		seen[nl.Pins[p].Cell] = struct{}{}
	}
	return len(seen)
}

// dim identifies an axis.
type dim int

const (
	dimX dim = iota
	dimY
)

// pinCoord returns the absolute pin coordinate and offset from cell center
// along d.
func (a *Assembler) pinCoord(p int, d dim) (abs, off float64, cell int) {
	pin := &a.nl.Pins[p]
	c := a.nl.Cells[pin.Cell].Center()
	if d == dimX {
		return c.X + pin.DX, pin.DX, pin.Cell
	}
	return c.Y + pin.DY, pin.DY, pin.Cell
}

// edge stamps the quadratic term w*(pos_i - pos_j)^2 for pins i and j into
// builder/rhs, where pos = variable + offset for movable cells and the
// absolute pin coordinate for fixed ones.
func (a *Assembler) edge(b *sparse.Builder, rhs *rhsAcc, pi, pj int, d dim, w float64) {
	absI, offI, ci := a.pinCoord(pi, d)
	absJ, offJ, cj := a.pinCoord(pj, d)
	vi, vj := a.varOf[ci], a.varOf[cj]
	switch {
	case vi >= 0 && vj >= 0:
		if ci == cj {
			return // both pins on the same cell: no force
		}
		b.AddSym(vi, vj, w)
		c := offI - offJ
		rhs.add(vi, -(w * c))
		rhs.add(vj, w*c)
	case vi >= 0:
		b.AddDiag(vi, w)
		rhs.add(vi, w*(absJ-offI))
	case vj >= 0:
		b.AddDiag(vj, w)
		rhs.add(vj, w*(absI-offJ))
	}
}

// starEdge stamps w*(pos_i - s)^2 where s is the aux variable with index sv.
func (a *Assembler) starEdge(b *sparse.Builder, rhs *rhsAcc, pi, sv int, d dim, w float64) {
	absI, offI, ci := a.pinCoord(pi, d)
	vi := a.varOf[ci]
	if vi >= 0 {
		b.AddSym(vi, sv, w)
		rhs.add(vi, -(w * offI))
		rhs.add(sv, w*offI)
	} else {
		b.AddDiag(sv, w)
		rhs.add(sv, w*absI)
	}
}

// stampNet stamps net ni's decomposition into the given per-dimension
// builders and rhs accumulators.
func (a *Assembler) stampNet(ni int, bx, by *sparse.Builder, rx, ry *rhsAcc) {
	net := &a.nl.Nets[ni]
	if len(net.Pins) < 2 {
		return
	}
	model := a.model
	if model == Hybrid {
		if len(net.Pins) <= 3 {
			model = Clique
		} else {
			model = B2B
		}
	}
	if model == Star && a.auxOf[ni] < 0 {
		model = Clique
	}
	switch model {
	case B2B:
		a.stampB2B(bx, rx, ni, dimX)
		a.stampB2B(by, ry, ni, dimY)
	case Clique:
		a.stampClique(bx, rx, ni, dimX)
		a.stampClique(by, ry, ni, dimY)
	case Star:
		sv := int(a.auxOf[ni])
		a.stampStar(bx, rx, ni, dimX, sv)
		a.stampStar(by, ry, ni, dimY, sv)
	}
}

// Builders returns fresh per-dimension builders and right-hand sides with
// the net model stamped in, for callers that add anchor terms before
// solving. Variables use the current placement as linearization point.
//
// This is the allocation-per-call path kept for compatibility and tests;
// the placement hot loop uses AssembleInto, which reuses shard buffers.
func (a *Assembler) Builders() (bx, by *sparse.Builder, fx, fy []float64) {
	n := a.NumVars()
	bx, by = sparse.NewBuilder(n), sparse.NewBuilder(n)
	rx, ry := &rhsAcc{}, &rhsAcc{}
	for ni := range a.nl.Nets {
		a.stampNet(ni, bx, by, rx, ry)
	}
	fx, fy = make([]float64, n), make([]float64, n)
	for k, i := range rx.idx {
		fx[i] += rx.val[k]
	}
	for k, i := range ry.idx {
		fy[i] += ry.val[k]
	}
	return bx, by, fx, fy
}

// Assemble builds the two per-dimension systems without extra terms. The
// returned systems alias assembler-owned buffers that are overwritten by
// the next Assemble/AssembleInto call.
func (a *Assembler) Assemble() (sx, sy System) {
	return a.AssembleInto(nil)
}

// ensureAssemblyState lazily builds the fixed shard partition (balanced by
// pin count) and the reusable per-shard builders and rhs accumulators.
func (a *Assembler) ensureAssemblyState() {
	if a.chunk != nil {
		return
	}
	nNets := len(a.nl.Nets)
	totalPins := 0
	for i := 0; i < nNets; i++ {
		totalPins += len(a.nl.Nets[i].Pins)
	}
	nc := totalPins / assemblyPinGrain
	if nc > maxAssemblyChunks {
		nc = maxAssemblyChunks
	}
	if nc > nNets {
		nc = nNets
	}
	if nc < 1 {
		nc = 1
	}
	a.chunk = append(a.chunk, 0)
	if nc > 1 {
		acc, next := 0, 1
		for ni := 0; ni < nNets; ni++ {
			acc += len(a.nl.Nets[ni].Pins)
			for next < nc && int64(acc)*int64(nc) >= int64(totalPins)*int64(next) {
				if cut := int32(ni + 1); cut > a.chunk[len(a.chunk)-1] && int(cut) < nNets {
					a.chunk = append(a.chunk, cut)
				}
				next++
			}
		}
	}
	a.chunk = append(a.chunk, int32(nNets))

	n := a.NumVars()
	nShards := len(a.chunk) - 1
	for c := 0; c < nShards; c++ {
		a.shX = append(a.shX, sparse.NewBuilder(n))
		a.shY = append(a.shY, sparse.NewBuilder(n))
		a.rhX = append(a.rhX, &rhsAcc{})
		a.rhY = append(a.rhY, &rhsAcc{})
	}
	a.extraX, a.extraY = sparse.NewBuilder(n), sparse.NewBuilder(n)
	a.fx = make([]float64, n)
	a.fy = make([]float64, n)
}

// AssembleInto stamps the net model in parallel over the fixed net shards,
// invokes extra (when non-nil) to stamp additional terms — anchor pseudonets,
// regularization — into a dedicated trailing shard and the merged dense
// right-hand sides, and builds both systems.
//
// All buffers (shard triplet arrays, rhs accumulators, dense rhs, CSR
// arrays, build scratch) persist inside the Assembler and are reused across
// calls: after the first iteration the primal system rebuild is
// allocation-free. The returned systems alias assembler-owned memory and
// are valid until the next call.
//
// Determinism: shard boundaries depend only on the netlist; the triplet
// stream seen by the CSR build is the concatenation of the shards in index
// order — exactly the serial stamping order — and the rhs pair lists are
// merged in the same order, so the result is bitwise identical at any
// parallelism level.
func (a *Assembler) AssembleInto(extra func(bx, by *sparse.Builder, fx, fy []float64)) (sx, sy System) {
	a.ensureAssemblyState()
	nShards := len(a.chunk) - 1

	// Parallel shard stamping: each shard owns its builders/accumulators.
	par.Run(nShards, func(c int) {
		bx, by, rx, ry := a.shX[c], a.shY[c], a.rhX[c], a.rhY[c]
		bx.Reset()
		by.Reset()
		rx.reset()
		ry.reset()
		for ni := int(a.chunk[c]); ni < int(a.chunk[c+1]); ni++ {
			a.stampNet(ni, bx, by, rx, ry)
		}
	})

	// Merge rhs pair lists in shard order (sequential: summation order must
	// equal the serial emission order).
	n := a.NumVars()
	fx, fy := a.fx[:n], a.fy[:n]
	par.For(n, rhsMergeGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fx[i] = 0
			fy[i] = 0
		}
	})
	for c := 0; c < nShards; c++ {
		rx, ry := a.rhX[c], a.rhY[c]
		for k, i := range rx.idx {
			fx[i] += rx.val[k]
		}
		for k, i := range ry.idx {
			fy[i] += ry.val[k]
		}
	}

	// Caller terms go into the trailing shard, after the net model — the
	// same order the legacy Builders()+Build path produced.
	a.extraX.Reset()
	a.extraY.Reset()
	if extra != nil {
		extra(a.extraX, a.extraY, fx, fy)
	}

	a.shardsX = append(a.shardsX[:0], a.shX...)
	a.shardsX = append(a.shardsX, a.extraX)
	a.shardsY = append(a.shardsY[:0], a.shY...)
	a.shardsY = append(a.shardsY, a.extraY)

	// The two dimensions build concurrently; each build is itself parallel
	// over row chunks.
	par.Run(2, func(d int) {
		if d == 0 {
			a.mx = sparse.BuildMergedInto(a.mx, &a.bsX, n, a.shardsX...)
		} else {
			a.my = sparse.BuildMergedInto(a.my, &a.bsY, n, a.shardsY...)
		}
	})
	return System{A: a.mx, B: fx, NumMovable: a.nMov},
		System{A: a.my, B: fy, NumMovable: a.nMov}
}

func (a *Assembler) stampB2B(b *sparse.Builder, rhs *rhsAcc, ni int, d dim) {
	net := &a.nl.Nets[ni]
	p := len(net.Pins)
	// Locate boundary pins.
	minP, maxP := net.Pins[0], net.Pins[0]
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, pin := range net.Pins {
		v, _, _ := a.pinCoord(pin, d)
		if v < minV {
			minV, minP = v, pin
		}
		if v >= maxV {
			maxV, maxP = v, pin
		}
	}
	if minP == maxP {
		return
	}
	wBase := net.Weight / float64(p-1)
	w := func(vi, vj float64) float64 {
		return wBase / (math.Abs(vi-vj) + a.eps)
	}
	a.edge(b, rhs, minP, maxP, d, w(minV, maxV))
	for _, pin := range net.Pins {
		if pin == minP || pin == maxP {
			continue
		}
		v, _, _ := a.pinCoord(pin, d)
		a.edge(b, rhs, pin, minP, d, w(v, minV))
		a.edge(b, rhs, pin, maxP, d, w(v, maxV))
	}
}

func (a *Assembler) stampClique(b *sparse.Builder, rhs *rhsAcc, ni int, d dim) {
	net := &a.nl.Nets[ni]
	p := len(net.Pins)
	wBase := net.Weight * 2 / float64(p)
	for i := 0; i < p; i++ {
		vi, _, _ := a.pinCoord(net.Pins[i], d)
		for j := i + 1; j < p; j++ {
			vj, _, _ := a.pinCoord(net.Pins[j], d)
			w := wBase / (math.Abs(vi-vj) + a.eps)
			a.edge(b, rhs, net.Pins[i], net.Pins[j], d, w)
		}
	}
}

func (a *Assembler) stampStar(b *sparse.Builder, rhs *rhsAcc, ni int, d dim, sv int) {
	net := &a.nl.Nets[ni]
	p := len(net.Pins)
	// Center estimate: mean pin coordinate at the linearization point.
	var mean float64
	for _, pin := range net.Pins {
		v, _, _ := a.pinCoord(pin, d)
		mean += v
	}
	mean /= float64(p)
	wBase := net.Weight * 2 / float64(p)
	for _, pin := range net.Pins {
		v, _, _ := a.pinCoord(pin, d)
		w := wBase / (math.Abs(v-mean) + a.eps)
		a.starEdge(b, rhs, pin, sv, d, w)
	}
}

// Energy evaluates the model objective at the current placement by direct
// edge enumeration (used for testing and for reporting Φ under non-HPWL
// models). For B2B with exact (eps=0-style) weights this approximates the
// weighted HPWL.
func (a *Assembler) Energy() float64 {
	var total float64
	for ni := range a.nl.Nets {
		net := &a.nl.Nets[ni]
		if len(net.Pins) < 2 {
			continue
		}
		model := a.model
		if model == Hybrid {
			if len(net.Pins) <= 3 {
				model = Clique
			} else {
				model = B2B
			}
		}
		switch model {
		case B2B, Star: // star energy at center==mean equals pin spread; report B2B-style
			total += a.b2bEnergy(ni, dimX) + a.b2bEnergy(ni, dimY)
		case Clique:
			total += a.cliqueEnergy(ni, dimX) + a.cliqueEnergy(ni, dimY)
		}
	}
	return total
}

func (a *Assembler) b2bEnergy(ni int, d dim) float64 {
	net := &a.nl.Nets[ni]
	p := len(net.Pins)
	minP, maxP := net.Pins[0], net.Pins[0]
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, pin := range net.Pins {
		v, _, _ := a.pinCoord(pin, d)
		if v < minV {
			minV, minP = v, pin
		}
		if v >= maxV {
			maxV, maxP = v, pin
		}
	}
	if minP == maxP {
		return 0
	}
	wBase := net.Weight / float64(p-1)
	e := func(vi, vj float64) float64 {
		d := vi - vj
		return wBase * d * d / (math.Abs(d) + a.eps)
	}
	total := e(minV, maxV)
	for _, pin := range net.Pins {
		if pin == minP || pin == maxP {
			continue
		}
		v, _, _ := a.pinCoord(pin, d)
		total += e(v, minV) + e(v, maxV)
	}
	return total
}

func (a *Assembler) cliqueEnergy(ni int, d dim) float64 {
	net := &a.nl.Nets[ni]
	p := len(net.Pins)
	wBase := net.Weight * 2 / float64(p)
	var total float64
	for i := 0; i < p; i++ {
		vi, _, _ := a.pinCoord(net.Pins[i], d)
		for j := i + 1; j < p; j++ {
			vj, _, _ := a.pinCoord(net.Pins[j], d)
			dd := vi - vj
			total += wBase * dd * dd / (math.Abs(dd) + a.eps)
		}
	}
	return total
}
