// Package netmodel evaluates interconnect objectives and assembles the
// linearized-quadratic systems used by analytical placement.
//
// It provides the exact (weighted) half-perimeter wirelength, and three
// decompositions of multi-pin nets into two-pin quadratic terms: the
// Bound2Bound model of Spindler et al. (which reproduces HPWL exactly at the
// linearization point), the clique model, and the star model with auxiliary
// center variables. Any of them can instantiate Φ in the ComPLx Lagrangian.
package netmodel

import (
	"math"

	"complx/internal/netlist"
)

// HPWL returns the unweighted half-perimeter wirelength of the design at its
// current cell positions. Nets with fewer than two pins contribute zero.
func HPWL(nl *netlist.Netlist) float64 {
	var total float64
	for i := range nl.Nets {
		total += NetHPWL(nl, i)
	}
	return total
}

// WeightedHPWL returns the net-weight-scaled half-perimeter wirelength
// (paper Formula 1).
func WeightedHPWL(nl *netlist.Netlist) float64 {
	var total float64
	for i := range nl.Nets {
		total += nl.Nets[i].Weight * NetHPWL(nl, i)
	}
	return total
}

// NetHPWL returns the half-perimeter of net n's pin bounding box.
func NetHPWL(nl *netlist.Netlist, n int) float64 {
	net := &nl.Nets[n]
	if len(net.Pins) < 2 {
		return 0
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, p := range net.Pins {
		pt := nl.PinPosition(p)
		xmin = math.Min(xmin, pt.X)
		xmax = math.Max(xmax, pt.X)
		ymin = math.Min(ymin, pt.Y)
		ymax = math.Max(ymax, pt.Y)
	}
	return (xmax - xmin) + (ymax - ymin)
}

// NetSpan returns the x and y extents of net n's pin bounding box.
func NetSpan(nl *netlist.Netlist, n int) (dx, dy float64) {
	net := &nl.Nets[n]
	if len(net.Pins) < 2 {
		return 0, 0
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, p := range net.Pins {
		pt := nl.PinPosition(p)
		xmin = math.Min(xmin, pt.X)
		xmax = math.Max(xmax, pt.X)
		ymin = math.Min(ymin, pt.Y)
		ymax = math.Max(ymax, pt.Y)
	}
	return xmax - xmin, ymax - ymin
}
