// Package netmodel evaluates interconnect objectives and assembles the
// linearized-quadratic systems used by analytical placement.
//
// It provides the exact (weighted) half-perimeter wirelength, and three
// decompositions of multi-pin nets into two-pin quadratic terms: the
// Bound2Bound model of Spindler et al. (which reproduces HPWL exactly at the
// linearization point), the clique model, and the star model with auxiliary
// center variables. Any of them can instantiate Φ in the ComPLx Lagrangian.
package netmodel

import (
	"math"

	"complx/internal/netlist"
	"complx/internal/par"
)

// hpwlBlock is the fixed per-partial net block for parallel HPWL reduction.
// Partial sums are computed per block and added in block order, so the total
// is bitwise deterministic at any parallelism level.
const hpwlBlock = 1024

// netSum reduces f(net) over all nets of nl deterministically: nets are
// grouped into fixed blocks of hpwlBlock, block partials are computed
// (possibly in parallel) and summed in block order.
func netSum(nl *netlist.Netlist, f func(n int) float64) float64 {
	n := len(nl.Nets)
	if n <= hpwlBlock {
		var total float64
		for i := 0; i < n; i++ {
			total += f(i)
		}
		return total
	}
	partial := make([]float64, par.Chunks(n, hpwlBlock))
	par.For(n, hpwlBlock, func(lo, hi int) {
		var s float64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partial[lo/hpwlBlock] = s
	})
	var total float64
	for _, v := range partial {
		total += v
	}
	return total
}

// HPWL returns the unweighted half-perimeter wirelength of the design at its
// current cell positions. Nets with fewer than two pins contribute zero.
// Evaluation runs in parallel over fixed net blocks with a deterministic
// block-ordered reduction.
func HPWL(nl *netlist.Netlist) float64 {
	return netSum(nl, func(i int) float64 { return NetHPWL(nl, i) })
}

// WeightedHPWL returns the net-weight-scaled half-perimeter wirelength
// (paper Formula 1).
func WeightedHPWL(nl *netlist.Netlist) float64 {
	return netSum(nl, func(i int) float64 { return nl.Nets[i].Weight * NetHPWL(nl, i) })
}

// NetHPWL returns the half-perimeter of net n's pin bounding box.
func NetHPWL(nl *netlist.Netlist, n int) float64 {
	net := &nl.Nets[n]
	if len(net.Pins) < 2 {
		return 0
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, p := range net.Pins {
		pt := nl.PinPosition(p)
		xmin = math.Min(xmin, pt.X)
		xmax = math.Max(xmax, pt.X)
		ymin = math.Min(ymin, pt.Y)
		ymax = math.Max(ymax, pt.Y)
	}
	return (xmax - xmin) + (ymax - ymin)
}

// NetSpan returns the x and y extents of net n's pin bounding box.
func NetSpan(nl *netlist.Netlist, n int) (dx, dy float64) {
	net := &nl.Nets[n]
	if len(net.Pins) < 2 {
		return 0, 0
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, p := range net.Pins {
		pt := nl.PinPosition(p)
		xmin = math.Min(xmin, pt.X)
		xmax = math.Max(xmax, pt.X)
		ymin = math.Min(ymin, pt.Y)
		ymax = math.Max(ymax, pt.Y)
	}
	return xmax - xmin, ymax - ymin
}
