package netmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/sparse"
)

func TestNetHPWLWithOffsets(t *testing.T) {
	b := netlist.NewBuilder("t")
	b.SetCore(geom.Rect{XMax: 100, YMax: 100})
	c1 := b.AddCell("c1", 2, 2)
	c2 := b.AddCell("c2", 2, 2)
	b.AddNet("n", 1, []netlist.PinSpec{
		{Cell: c1, DX: 1, DY: 0},
		{Cell: c2, DX: -1, DY: 0.5},
	})
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells[c1].SetCenter(geom.Point{X: 10, Y: 10})
	nl.Cells[c2].SetCenter(geom.Point{X: 20, Y: 15})
	// Pin1 at (11, 10); pin2 at (19, 15.5) => HPWL = 8 + 5.5.
	if got := NetHPWL(nl, 0); math.Abs(got-13.5) > 1e-12 {
		t.Errorf("NetHPWL = %v, want 13.5", got)
	}
	if got := HPWL(nl); math.Abs(got-13.5) > 1e-12 {
		t.Errorf("HPWL = %v", got)
	}
	dx, dy := NetSpan(nl, 0)
	if math.Abs(dx-8) > 1e-12 || math.Abs(dy-5.5) > 1e-12 {
		t.Errorf("NetSpan = %v, %v", dx, dy)
	}
}

func TestWeightedHPWL(t *testing.T) {
	b := netlist.NewBuilder("t")
	b.SetCore(geom.Rect{XMax: 100, YMax: 100})
	c1 := b.AddCell("c1", 1, 1)
	p1 := b.AddFixed("p1", 0, 0, 1, 1)
	p2 := b.AddFixed("p2", 9.5, 0, 1, 1)
	b.AddNet("n1", 3, []netlist.PinSpec{{Cell: c1}, {Cell: p1}})
	b.AddNet("n2", 1, []netlist.PinSpec{{Cell: c1}, {Cell: p2}})
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells[c1].SetCenter(geom.Point{X: 5, Y: 0.5})
	// n1 spans (0.5..5, y equal) = 4.5; n2 spans (5..10) = 5.
	want := 3*4.5 + 1*5
	if got := WeightedHPWL(nl); math.Abs(got-float64(want)) > 1e-12 {
		t.Errorf("WeightedHPWL = %v, want %v", got, want)
	}
}

func TestSinglePinNetIsZero(t *testing.T) {
	b := netlist.NewBuilder("t")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c := b.AddCell("c", 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}})
	nl, _ := b.Build()
	if HPWL(nl) != 0 {
		t.Error("single-pin net should contribute 0")
	}
}

// randomDesign builds a random design with movable cells, fixed pads and
// multi-pin nets.
func randomDesign(rng *rand.Rand, nCells, nNets int) *netlist.Netlist {
	b := netlist.NewBuilder("rand")
	b.SetCore(geom.Rect{XMax: 100, YMax: 100})
	ids := make([]int, 0, nCells+4)
	for i := 0; i < nCells; i++ {
		id := b.AddCell(cellName(i), 1, 1)
		ids = append(ids, id)
	}
	// Fixed pads at the corners keep the system non-singular.
	ids = append(ids,
		b.AddFixed("pw", 0, 50, 1, 1),
		b.AddFixed("pe", 99, 50, 1, 1),
		b.AddFixed("pn", 50, 99, 1, 1),
		b.AddFixed("ps", 50, 0, 1, 1),
	)
	for n := 0; n < nNets; n++ {
		deg := 2 + rng.Intn(5)
		seen := map[int]bool{}
		var pins []netlist.PinSpec
		for len(pins) < deg {
			c := ids[rng.Intn(len(ids))]
			if seen[c] {
				continue
			}
			seen[c] = true
			pins = append(pins, netlist.PinSpec{
				Cell: c,
				DX:   rng.Float64() - 0.5,
				DY:   rng.Float64() - 0.5,
			})
		}
		b.AddNet(netName(n), 0.5+rng.Float64(), pins)
	}
	nl, err := b.Build()
	if err != nil {
		panic(err)
	}
	for _, i := range nl.Movables() {
		nl.Cells[i].SetCenter(geom.Point{X: 5 + 90*rng.Float64(), Y: 5 + 90*rng.Float64()})
	}
	return nl
}

func cellName(i int) string { return "c" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }
func netName(i int) string  { return "n" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }

// TestB2BEnergyMatchesHPWL: with a vanishing linearization floor, the B2B
// model energy equals the weighted HPWL at the linearization point. This is
// the defining property of the Bound2Bound model.
func TestB2BEnergyMatchesHPWL(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := randomDesign(rng, 8+rng.Intn(10), 10+rng.Intn(10))
		a := NewAssembler(nl, B2B, 1e-9)
		e := a.Energy()
		w := WeightedHPWL(nl)
		return math.Abs(e-w) <= 1e-5*(1+w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestHPWLTranslationInvariant: HPWL must not change under rigid translation
// of all cells.
func TestHPWLTranslationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nl := randomDesign(rng, 10, 12)
	before := HPWL(nl)
	for i := range nl.Cells {
		nl.Cells[i].X += 3.25
		nl.Cells[i].Y -= 1.5
	}
	after := HPWL(nl)
	if math.Abs(before-after) > 1e-9 {
		t.Errorf("HPWL changed under translation: %v -> %v", before, after)
	}
}

// solveSystem solves one dimension of an assembled system.
func solveSystem(t *testing.T, s System) []float64 {
	t.Helper()
	x := make([]float64, s.A.N)
	res, err := sparse.SolvePCG(s.A, x, s.B, sparse.CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if !res.Converged {
		t.Fatalf("solve did not converge: %+v", res)
	}
	return x
}

func TestSolveTwoPinNetsPullsToFixed(t *testing.T) {
	b := netlist.NewBuilder("t")
	b.SetCore(geom.Rect{XMax: 100, YMax: 100})
	c := b.AddCell("c", 1, 1)
	p1 := b.AddFixed("p1", 19.5, 29.5, 1, 1) // center (20, 30)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}, {Cell: p1}})
	nl, _ := b.Build()
	nl.Cells[c].SetCenter(geom.Point{X: 50, Y: 50})
	a := NewAssembler(nl, B2B, 1)
	sx, sy := a.Assemble()
	x := solveSystem(t, sx)
	y := solveSystem(t, sy)
	if math.Abs(x[0]-20) > 1e-6 || math.Abs(y[0]-30) > 1e-6 {
		t.Errorf("cell solved to (%v, %v), want (20, 30)", x[0], y[0])
	}
}

func TestSolveBetweenTwoPads(t *testing.T) {
	b := netlist.NewBuilder("t")
	b.SetCore(geom.Rect{XMax: 100, YMax: 100})
	c := b.AddCell("c", 1, 1)
	p1 := b.AddFixed("p1", -0.5, 49.5, 1, 1) // center (0, 50)
	p2 := b.AddFixed("p2", 99.5, 49.5, 1, 1) // center (100, 50)
	b.AddNet("n1", 1, []netlist.PinSpec{{Cell: c}, {Cell: p1}})
	b.AddNet("n2", 1, []netlist.PinSpec{{Cell: c}, {Cell: p2}})
	nl, _ := b.Build()
	// Start at the midpoint: linearized weights are symmetric, so the
	// solution stays at the midpoint.
	nl.Cells[c].SetCenter(geom.Point{X: 50, Y: 50})
	a := NewAssembler(nl, B2B, 1)
	sx, sy := a.Assemble()
	x := solveSystem(t, sx)
	y := solveSystem(t, sy)
	if math.Abs(x[0]-50) > 1e-6 || math.Abs(y[0]-50) > 1e-6 {
		t.Errorf("cell solved to (%v, %v), want (50, 50)", x[0], y[0])
	}
}

// TestSolveReducesFrozenEnergy: the solved positions minimize the
// frozen-weight quadratic form, so its value at the solution must not
// exceed its value at the starting point.
func TestSolveReducesFrozenEnergy(t *testing.T) {
	quadForm := func(s System, x []float64) float64 {
		ax := make([]float64, s.A.N)
		s.A.MulVec(ax, x)
		return sparse.Dot(x, ax) - 2*sparse.Dot(s.B, x)
	}
	for _, model := range []Model{B2B, Clique, Hybrid, Star} {
		rng := rand.New(rand.NewSource(11))
		nl := randomDesign(rng, 15, 20)
		a := NewAssembler(nl, model, 0)
		sx, _ := a.Assemble()
		x0 := make([]float64, a.NumVars())
		for k, i := range nl.Movables() {
			x0[k] = nl.Cells[i].Center().X
		}
		// Aux star variables start at 0; the solver can only improve them.
		start := quadForm(sx, x0)
		xs := solveSystem(t, sx)
		end := quadForm(sx, xs)
		if end > start+1e-9 {
			t.Errorf("model %v: solved energy %v > start %v", model, end, start)
		}
	}
}

func TestStarModelAuxCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nl := randomDesign(rng, 10, 15)
	a := NewAssembler(nl, Star, 0)
	want := 0
	for i := range nl.Nets {
		if countDistinctCells(nl, i) >= 3 {
			want++
		}
	}
	if got := a.NumVars() - nl.NumMovable(); got != want {
		t.Errorf("aux vars = %d, want %d", got, want)
	}
}

func TestVarOfFixedIsMinusOne(t *testing.T) {
	b := netlist.NewBuilder("t")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c := b.AddCell("c", 1, 1)
	p := b.AddFixed("p", 0, 0, 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}, {Cell: p}})
	nl, _ := b.Build()
	a := NewAssembler(nl, B2B, 0)
	if a.VarOf(c) != 0 {
		t.Errorf("VarOf(movable) = %d", a.VarOf(c))
	}
	if a.VarOf(p) != -1 {
		t.Errorf("VarOf(fixed) = %d", a.VarOf(p))
	}
	if a.Eps() != 1.5*nl.RowHeight() {
		t.Errorf("default eps = %v", a.Eps())
	}
}

func TestSamePinCellEdgeSkipped(t *testing.T) {
	// Two pins on the same movable cell must not create a self-spring;
	// the system for that cell alone would otherwise be singular junk.
	b := netlist.NewBuilder("t")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c := b.AddCell("c", 1, 1)
	p := b.AddFixed("p", 4.5, 4.5, 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c, DX: -0.2}, {Cell: c, DX: 0.2}, {Cell: p}})
	nl, _ := b.Build()
	a := NewAssembler(nl, Clique, 1)
	sx, _ := a.Assemble()
	x := solveSystem(t, sx)
	// The cell should settle around the pad's x center (5) corrected by the
	// average pin offset; just check it's finite and near 5.
	if math.IsNaN(x[0]) || math.Abs(x[0]-5) > 1 {
		t.Errorf("x = %v", x[0])
	}
}

func TestModelString(t *testing.T) {
	if B2B.String() != "b2b" || Clique.String() != "clique" || Star.String() != "star" || Hybrid.String() != "hybrid" {
		t.Error("Model.String wrong")
	}
	if Model(99).String() != "unknown" {
		t.Error("unknown model string wrong")
	}
}

// TestHybridMatchesComponents: Hybrid must equal Clique on small nets and
// B2B on large ones, energy-wise.
func TestHybridMatchesComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	nl := randomDesign(rng, 12, 16)
	hybrid := NewAssembler(nl, Hybrid, 1).Energy()
	var manual float64
	b2b := NewAssembler(nl, B2B, 1)
	cl := NewAssembler(nl, Clique, 1)
	for ni := range nl.Nets {
		if len(nl.Nets[ni].Pins) <= 3 {
			manual += cl.cliqueEnergy(ni, dimX) + cl.cliqueEnergy(ni, dimY)
		} else {
			manual += b2b.b2bEnergy(ni, dimX) + b2b.b2bEnergy(ni, dimY)
		}
	}
	if math.Abs(hybrid-manual) > 1e-9*(1+manual) {
		t.Errorf("hybrid energy %v != composed %v", hybrid, manual)
	}
}

func BenchmarkAssembleB2B(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	nl := randomDesign(rng, 5000, 5500)
	a := NewAssembler(nl, B2B, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Assemble()
	}
}

func BenchmarkHPWL(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	nl := randomDesign(rng, 5000, 5500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HPWL(nl)
	}
}
