package netmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"complx/internal/geom"
	"complx/internal/netlist"
)

func TestNetMSTTwoPins(t *testing.T) {
	b := netlist.NewBuilder("m")
	b.SetCore(geom.Rect{XMax: 100, YMax: 100})
	c1 := b.AddCell("c1", 1, 1)
	c2 := b.AddCell("c2", 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c1}, {Cell: c2}})
	nl, _ := b.Build()
	nl.Cells[c1].SetCenter(geom.Point{X: 10, Y: 10})
	nl.Cells[c2].SetCenter(geom.Point{X: 13, Y: 14})
	if got := NetMST(nl, 0); math.Abs(got-7) > 1e-12 {
		t.Errorf("MST = %v, want 7", got)
	}
	// Two-pin MST equals HPWL.
	if got, want := NetMST(nl, 0), NetHPWL(nl, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("MST %v != HPWL %v", got, want)
	}
}

func TestNetMSTLShape(t *testing.T) {
	// Three collinear-in-L pins: MST connects along the L.
	b := netlist.NewBuilder("m")
	b.SetCore(geom.Rect{XMax: 100, YMax: 100})
	var ids []int
	for i := 0; i < 3; i++ {
		ids = append(ids, b.AddCell(string(rune('a'+i)), 1, 1))
	}
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: ids[0]}, {Cell: ids[1]}, {Cell: ids[2]}})
	nl, _ := b.Build()
	nl.Cells[ids[0]].SetCenter(geom.Point{X: 0.5, Y: 0.5})
	nl.Cells[ids[1]].SetCenter(geom.Point{X: 10.5, Y: 0.5})
	nl.Cells[ids[2]].SetCenter(geom.Point{X: 10.5, Y: 5.5})
	if got := NetMST(nl, 0); math.Abs(got-15) > 1e-12 {
		t.Errorf("MST = %v, want 15", got)
	}
}

// TestMSTBoundsProperty: HPWL <= MST for every net (the bounding box
// half-perimeter is a lower bound on any spanning tree), and the Steiner
// estimate lies between them for high-degree nets.
func TestMSTBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := randomDesign(rng, 10+rng.Intn(10), 12+rng.Intn(10))
		for ni := range nl.Nets {
			hp := NetHPWL(nl, ni)
			mst := NetMST(nl, ni)
			if mst < hp-1e-9 {
				return false
			}
			st := SteinerEstimate(nl, ni)
			if nl.Nets[ni].Degree() > 3 && (st > mst+1e-9) {
				return false
			}
		}
		return MST(nl) >= HPWL(nl)-1e-9 && TotalSteinerEstimate(nl) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSteinerEstimateSmallNetsUseHPWL(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nl := randomDesign(rng, 8, 10)
	for ni := range nl.Nets {
		if nl.Nets[ni].Degree() <= 3 {
			if got, want := SteinerEstimate(nl, ni), NetHPWL(nl, ni); math.Abs(got-want) > 1e-12 {
				t.Fatalf("net %d: steiner %v != hpwl %v", ni, got, want)
			}
		}
	}
}
