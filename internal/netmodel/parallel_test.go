package netmodel

import (
	"math"
	"math/rand"
	"testing"

	"complx/internal/par"
)

// TestAssembleBitwiseAcrossThreads asserts that the sharded parallel
// assembly produces bitwise-identical CSR structure, values and right-hand
// sides at every pool size, for every net model.
func TestAssembleBitwiseAcrossThreads(t *testing.T) {
	defer par.SetThreads(0)
	rng := rand.New(rand.NewSource(31))
	for _, size := range []struct{ cells, nets int }{{3, 4}, {60, 80}, {900, 1200}} {
		nl := randomDesign(rng, size.cells, size.nets)
		for _, model := range []Model{B2B, Clique, Star, Hybrid} {
			type snapshot struct {
				rowPtr []int32
				col    []int32
				val    []float64
				b      []float64
			}
			snap := func(s System) snapshot {
				return snapshot{
					rowPtr: append([]int32(nil), s.A.RowPtr...),
					col:    append([]int32(nil), s.A.Col...),
					val:    append([]float64(nil), s.A.Val...),
					b:      append([]float64(nil), s.B...),
				}
			}
			var wantX, wantY snapshot
			for ti, threads := range []int{1, 2, 8} {
				par.SetThreads(threads)
				sx, sy := NewAssembler(nl, model, 0).Assemble()
				gx, gy := snap(sx), snap(sy)
				if ti == 0 {
					wantX, wantY = gx, gy
					continue
				}
				for dim, pair := range []struct{ got, want snapshot }{{gx, wantX}, {gy, wantY}} {
					if len(pair.got.val) != len(pair.want.val) || len(pair.got.b) != len(pair.want.b) {
						t.Fatalf("model=%v threads=%d dim=%d: shape mismatch", model, threads, dim)
					}
					for i := range pair.got.rowPtr {
						if pair.got.rowPtr[i] != pair.want.rowPtr[i] {
							t.Fatalf("model=%v threads=%d dim=%d: RowPtr[%d] differs", model, threads, dim, i)
						}
					}
					for i := range pair.got.col {
						if pair.got.col[i] != pair.want.col[i] {
							t.Fatalf("model=%v threads=%d dim=%d: Col[%d] differs", model, threads, dim, i)
						}
						if math.Float64bits(pair.got.val[i]) != math.Float64bits(pair.want.val[i]) {
							t.Fatalf("model=%v threads=%d dim=%d: Val[%d]=%x want %x",
								model, threads, dim, i, math.Float64bits(pair.got.val[i]), math.Float64bits(pair.want.val[i]))
						}
					}
					for i := range pair.got.b {
						if math.Float64bits(pair.got.b[i]) != math.Float64bits(pair.want.b[i]) {
							t.Fatalf("model=%v threads=%d dim=%d: B[%d]=%x want %x",
								model, threads, dim, i, math.Float64bits(pair.got.b[i]), math.Float64bits(pair.want.b[i]))
						}
					}
				}
			}
		}
	}
}

// TestAssembleIncrementalMatchesFresh asserts that a reused Assembler (the
// incremental path with recycled builders, scratch and CSR arrays) produces
// the same systems as a freshly constructed one after positions change.
func TestAssembleIncrementalMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	nl := randomDesign(rng, 300, 400)
	asm := NewAssembler(nl, B2B, 0)
	for step := 0; step < 4; step++ {
		// Perturb positions between assemblies.
		for _, i := range nl.Movables() {
			c := &nl.Cells[i]
			p := c.Center()
			p.X += rng.NormFloat64()
			p.Y += rng.NormFloat64()
			c.SetCenter(p)
		}
		sx, sy := asm.Assemble()
		fx, fy := NewAssembler(nl, B2B, 0).Assemble()
		for dim, pair := range []struct{ got, want System }{{sx, fx}, {sy, fy}} {
			if pair.got.A.NNZ() != pair.want.A.NNZ() {
				t.Fatalf("step=%d dim=%d: nnz %d want %d", step, dim, pair.got.A.NNZ(), pair.want.A.NNZ())
			}
			for i := range pair.got.A.Val {
				if pair.got.A.Col[i] != pair.want.A.Col[i] ||
					math.Float64bits(pair.got.A.Val[i]) != math.Float64bits(pair.want.A.Val[i]) {
					t.Fatalf("step=%d dim=%d: entry %d differs", step, dim, i)
				}
			}
			for i := range pair.got.B {
				if math.Float64bits(pair.got.B[i]) != math.Float64bits(pair.want.B[i]) {
					t.Fatalf("step=%d dim=%d: B[%d] differs", step, dim, i)
				}
			}
		}
	}
}

// TestHPWLBitwiseAcrossThreads asserts the blocked HPWL reduction is
// invariant to the pool size, including degenerate net counts.
func TestHPWLBitwiseAcrossThreads(t *testing.T) {
	defer par.SetThreads(0)
	rng := rand.New(rand.NewSource(33))
	for _, nets := range []int{0, 1, hpwlBlock - 1, hpwlBlock, hpwlBlock + 1, 3*hpwlBlock + 5} {
		cells := nets/2 + 4
		nl := randomDesign(rng, cells, nets)
		var want, wantW float64
		for ti, threads := range []int{1, 2, 8} {
			par.SetThreads(threads)
			got, gotW := HPWL(nl), WeightedHPWL(nl)
			if ti == 0 {
				want, wantW = got, gotW
				continue
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("HPWL nets=%d threads=%d: %x want %x", nets, threads, math.Float64bits(got), math.Float64bits(want))
			}
			if math.Float64bits(gotW) != math.Float64bits(wantW) {
				t.Fatalf("WeightedHPWL nets=%d threads=%d: %x want %x", nets, threads, math.Float64bits(gotW), math.Float64bits(wantW))
			}
		}
	}
}
