package netmodel

import (
	"math"

	"complx/internal/netlist"
)

// NetMST returns the rectilinear minimum-spanning-tree length of net n's
// pins (Prim's algorithm on Manhattan distances). The MST length upper-
// bounds the rectilinear Steiner minimal tree and lower-bounds it within
// 3/2; it is the standard refinement of HPWL for multi-pin wirelength
// estimation (HPWL is exact only up to 3 pins).
func NetMST(nl *netlist.Netlist, n int) float64 {
	net := &nl.Nets[n]
	p := len(net.Pins)
	if p < 2 {
		return 0
	}
	xs := make([]float64, p)
	ys := make([]float64, p)
	for k, pin := range net.Pins {
		pt := nl.PinPosition(pin)
		xs[k], ys[k] = pt.X, pt.Y
	}
	inTree := make([]bool, p)
	dist := make([]float64, p)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	inTree[0] = true
	for j := 1; j < p; j++ {
		dist[j] = math.Abs(xs[j]-xs[0]) + math.Abs(ys[j]-ys[0])
	}
	var total float64
	for added := 1; added < p; added++ {
		best, bestD := -1, math.Inf(1)
		for j := 0; j < p; j++ {
			if !inTree[j] && dist[j] < bestD {
				best, bestD = j, dist[j]
			}
		}
		inTree[best] = true
		total += bestD
		for j := 0; j < p; j++ {
			if inTree[j] {
				continue
			}
			if d := math.Abs(xs[j]-xs[best]) + math.Abs(ys[j]-ys[best]); d < dist[j] {
				dist[j] = d
			}
		}
	}
	return total
}

// MST returns the summed rectilinear MST length over all nets.
func MST(nl *netlist.Netlist) float64 {
	var total float64
	for i := range nl.Nets {
		total += NetMST(nl, i)
	}
	return total
}

// SteinerEstimate returns an RSMT estimate per net: the MST length scaled
// by the classic 0.87 correction toward the Steiner optimum for uniformly
// distributed pins (and exactly the HPWL for nets of degree <= 3, where
// HPWL is already the RSMT length).
func SteinerEstimate(nl *netlist.Netlist, n int) float64 {
	if nl.Nets[n].Degree() <= 3 {
		return NetHPWL(nl, n)
	}
	return 0.87 * NetMST(nl, n)
}

// TotalSteinerEstimate sums SteinerEstimate over all nets.
func TotalSteinerEstimate(nl *netlist.Netlist) float64 {
	var total float64
	for i := range nl.Nets {
		total += SteinerEstimate(nl, i)
	}
	return total
}
