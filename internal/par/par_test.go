package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllChunksOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 8} {
		SetThreads(threads)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]int32, n)
			Run(n, func(c int) { atomic.AddInt32(&hits[c], 1) })
			for c, h := range hits {
				if h != 1 {
					t.Fatalf("threads=%d n=%d: chunk %d executed %d times", threads, n, c, h)
				}
			}
		}
	}
	SetThreads(0)
}

func TestForBoundariesArePureFunctionOfN(t *testing.T) {
	// The chunk decomposition must not depend on the thread cap.
	collect := func(n, grain int) map[[2]int]bool {
		var mu sync.Mutex
		got := map[[2]int]bool{}
		For(n, grain, func(lo, hi int) {
			mu.Lock()
			got[[2]int{lo, hi}] = true
			mu.Unlock()
		})
		return got
	}
	for _, n := range []int{0, 1, 9, 10, 11, 100, 101} {
		SetThreads(1)
		a := collect(n, 10)
		SetThreads(8)
		b := collect(n, 10)
		if len(a) != len(b) {
			t.Fatalf("n=%d: %d chunks serial vs %d parallel", n, len(a), len(b))
		}
		for k := range a {
			if !b[k] {
				t.Fatalf("n=%d: chunk %v missing in parallel run", n, k)
			}
			if k[0]%10 != 0 || (k[1] != n && k[1]-k[0] != 10) {
				t.Fatalf("n=%d: chunk %v not aligned to grain", n, k)
			}
		}
	}
	SetThreads(0)
}

func TestForCoversRangeExactly(t *testing.T) {
	SetThreads(8)
	defer SetThreads(0)
	for _, n := range []int{0, 1, 2, 4095, 4096, 4097, 100001} {
		hits := make([]int32, n)
		For(n, 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, h)
			}
		}
	}
}

func TestNestedRunDoesNotDeadlock(t *testing.T) {
	SetThreads(4)
	defer SetThreads(0)
	var total atomic.Int64
	Run(8, func(c int) {
		Run(8, func(inner int) {
			total.Add(1)
		})
	})
	if total.Load() != 64 {
		t.Fatalf("nested total = %d, want 64", total.Load())
	}
}

func TestConcurrentCallers(t *testing.T) {
	// Mimics the x/y dimension split: two goroutines issue parallel kernels
	// against the shared pool simultaneously.
	SetThreads(4)
	defer SetThreads(0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum atomic.Int64
			For(10000, 100, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					sum.Add(int64(i))
				}
			})
			if sum.Load() != 10000*9999/2 {
				t.Errorf("sum = %d", sum.Load())
			}
		}()
	}
	wg.Wait()
}

func TestThreadsFloor(t *testing.T) {
	SetThreads(-5)
	if Threads() < 1 {
		t.Fatalf("Threads() = %d, want >= 1", Threads())
	}
	SetThreads(3)
	if Threads() != 3 {
		t.Fatalf("Threads() = %d, want 3", Threads())
	}
	SetThreads(0)
}

func TestChunks(t *testing.T) {
	if Chunks(0, 10) != 0 || Chunks(1, 10) != 1 || Chunks(10, 10) != 1 ||
		Chunks(11, 10) != 2 || Chunks(100, 10) != 10 {
		t.Fatal("Chunks arithmetic wrong")
	}
}
