package par

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSetThreadsDuringRun hammers SetThreads from a resizer goroutine while
// several goroutines execute reduction kernels through For, asserting every
// result stays bitwise identical to the serial reference. Under -race this
// is the proof that mid-run resizes are data-race free; the equality check
// is the proof they cannot change numerics.
func TestSetThreadsDuringRun(t *testing.T) {
	defer SetThreads(0) // restore the default for other tests

	const n = 1 << 15
	const grain = 128
	// kernel mimics the callers' determinism pattern: per-chunk partials
	// indexed by lo/grain, merged in fixed index order.
	kernel := func() float64 {
		parts := make([]float64, Chunks(n, grain))
		For(n, grain, func(lo, hi int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += math.Sqrt(float64(i%97)) * 0.125
			}
			parts[lo/grain] = s
		})
		total := 0.0
		for _, p := range parts {
			total += p
		}
		return total
	}

	SetThreads(1)
	want := kernel()

	var stop atomic.Bool
	var resizer sync.WaitGroup
	resizer.Add(1)
	go func() {
		defer resizer.Done()
		for i := 0; !stop.Load(); i++ {
			SetThreads(1 + i%8)
		}
	}()

	const workers = 4
	const rounds = 200
	errc := make(chan string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if got := kernel(); got != want {
					errc <- "kernel result changed under concurrent SetThreads"
					return
				}
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	resizer.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}
