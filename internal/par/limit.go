package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Limit is a per-job parallelism budget. While a goroutine is bound to a
// Limit (see With), every Run/For invocation it makes — and every helper
// task those invocations hand to the shared pool — counts against the
// Limit's budget instead of monopolizing the process-global cap. The global
// SetThreads cap remains a hard ceiling: a Limit can only lower the
// parallelism a kernel launch would otherwise use, never raise it past the
// pool size.
//
// Budget semantics: a Limit with budget b allows at most b−1 in-flight
// helper goroutines across all kernel launches of the bound job at once
// (the launching goroutines always participate themselves, so a
// single-threaded job section uses exactly b goroutines; the transient x/y
// dimension split in qp adds one job-owned goroutine on top). Budget 1
// therefore pins every kernel of the job to its calling goroutine.
//
// Changing the budget (Set) at any time is safe and — like SetThreads —
// cannot change numeric results, because all work decompositions are pure
// functions of problem size (see the package comment).
type Limit struct {
	budget  atomic.Int32
	helpers atomic.Int32
}

// NewLimit returns a Limit with the given budget. n <= 0 means "no per-job
// cap" (the global SetThreads ceiling alone applies); n == 1 forces strictly
// serial kernels for the bound job.
func NewLimit(n int) *Limit {
	l := &Limit{}
	l.Set(n)
	return l
}

// Set adjusts the budget; n <= 0 removes the per-job cap (global ceiling
// only). Kernel launches already in flight finish with the parallelism they
// started with; the new budget applies from the next Run on.
func (l *Limit) Set(n int) {
	if n < 0 {
		n = 0
	}
	l.budget.Store(int32(n))
}

// Budget returns the configured budget (0 = uncapped, global ceiling only).
func (l *Limit) Budget() int { return int(l.budget.Load()) }

// tryAcquireHelper claims one helper slot against the budget; callers must
// pair a true return with releaseHelper. A zero budget (uncapped) always
// admits. The in-flight count is maintained unconditionally so a mid-flight
// Set can never unbalance the acquire/release pairing.
func (l *Limit) tryAcquireHelper() bool {
	for {
		h := l.helpers.Load()
		if b := l.budget.Load(); b > 0 && h >= b-1 {
			return false
		}
		if l.helpers.CompareAndSwap(h, h+1) {
			return true
		}
	}
}

func (l *Limit) releaseHelper() { l.helpers.Add(-1) }

// Goroutine→Limit bindings. Go has no goroutine-local storage, so bindings
// live in a map keyed by goroutine id (parsed from the runtime.Stack
// header). The map is consulted once per Run invocation — never per chunk —
// and only when at least one binding exists, so unbounded callers (the CLI,
// every existing test) pay a single atomic load.
var (
	bindCount atomic.Int32
	bindMu    sync.Mutex
	bindings  = map[uint64]*Limit{}
)

// goid returns the current goroutine's id. The runtime.Stack header is
// formatted "goroutine N [status]:"; parsing it costs on the order of a
// microsecond, which is noise next to a kernel launch but would not be next
// to a chunk — hence bindings are resolved per Run, not per chunk.
func goid() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	id := uint64(0)
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// With runs fn with the calling goroutine bound to l; nested Run/For calls
// made by fn observe l's budget. A nil l runs fn unbound (pass-through), so
// callers can propagate Current() across goroutine spawns without guards.
// Bindings nest: the innermost With wins for its duration, and the previous
// binding (if any) is restored when fn returns.
func With(l *Limit, fn func()) {
	if l == nil {
		fn()
		return
	}
	id := goid()
	bindMu.Lock()
	prev, hadPrev := bindings[id]
	bindings[id] = l
	if !hadPrev {
		bindCount.Add(1)
	}
	bindMu.Unlock()
	defer func() {
		bindMu.Lock()
		if hadPrev {
			bindings[id] = prev
		} else {
			delete(bindings, id)
			bindCount.Add(-1)
		}
		bindMu.Unlock()
	}()
	fn()
}

// Current returns the Limit bound to the calling goroutine, or nil when the
// goroutine is unbound. Code that spawns goroutines inside a kernel or a
// placement flow should capture Current() before the spawn and re-bind
// inside with With, so the budget follows the job across its own goroutines
// (bindings do not propagate automatically).
func Current() *Limit {
	if bindCount.Load() == 0 {
		return nil
	}
	id := goid()
	bindMu.Lock()
	l := bindings[id]
	bindMu.Unlock()
	return l
}
