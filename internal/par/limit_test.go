package par

import (
	"math"
	"sync"
	"testing"
)

// limitKernel is the same determinism-patterned reduction the SetThreads
// test uses: per-chunk partials indexed by lo/grain, merged in index order.
func limitKernel(n, grain int) float64 {
	parts := make([]float64, Chunks(n, grain))
	For(n, grain, func(lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += math.Sqrt(float64(i%89)) * 0.25
		}
		parts[lo/grain] = s
	})
	total := 0.0
	for _, p := range parts {
		total += p
	}
	return total
}

// TestLimitBudgetOne proves that a budget-1 job runs every chunk strictly on
// its calling goroutine: the goroutine id observed inside each chunk must be
// the caller's, no matter how large the global pool is.
func TestLimitBudgetOne(t *testing.T) {
	SetThreads(8)
	defer SetThreads(0)

	caller := goid()
	var mu sync.Mutex
	foreign := 0
	With(NewLimit(1), func() {
		For(1<<12, 64, func(lo, hi int) {
			if goid() != caller {
				mu.Lock()
				foreign++
				mu.Unlock()
			}
		})
	})
	if foreign > 0 {
		t.Fatalf("budget-1 job ran %d chunks on helper goroutines", foreign)
	}
}

// TestLimitHelperCap proves a budget-b job never has more than b−1 helper
// goroutines in flight, across concurrent kernel launches from two job-owned
// goroutines (the qp x/y split shape).
func TestLimitHelperCap(t *testing.T) {
	SetThreads(8)
	defer SetThreads(0)

	const budget = 3
	lim := NewLimit(budget)
	callers := map[uint64]bool{}
	var mu sync.Mutex
	record := func() {
		id := goid()
		mu.Lock()
		callers[id] = true
		mu.Unlock()
	}

	var wg sync.WaitGroup
	launch := func() {
		defer wg.Done()
		With(lim, func() {
			record()
			for r := 0; r < 50; r++ {
				For(1<<12, 32, func(lo, hi int) {
					if goid() != 0 { // always true; keeps the chunk non-trivial
						record()
					}
					// The invariant: in-flight helpers never exceed budget−1.
					if h := lim.helpers.Load(); int(h) > budget-1 {
						mu.Lock()
						callers[0] = true // sentinel for violation
						mu.Unlock()
					}
				})
			}
		})
	}
	wg.Add(2)
	go launch()
	go launch()
	wg.Wait()

	if callers[0] {
		t.Fatalf("helper in-flight count exceeded budget-1 (%d)", budget-1)
	}
	// 2 launching goroutines + at most budget−1 helpers.
	if len(callers) > 2+(budget-1) {
		t.Fatalf("job used %d distinct goroutines, want <= %d", len(callers), 2+(budget-1))
	}
}

// TestLimitDeterminism: the same kernel must produce bitwise-identical
// results serial, globally parallel, and under every budget, including
// concurrent jobs with different budgets.
func TestLimitDeterminism(t *testing.T) {
	SetThreads(1)
	want := limitKernel(1<<14, 128)
	SetThreads(8)
	defer SetThreads(0)

	if got := limitKernel(1<<14, 128); got != want {
		t.Fatalf("global-parallel kernel %v != serial %v", got, want)
	}
	var wg sync.WaitGroup
	errc := make(chan string, 8)
	for _, budget := range []int{1, 2, 3, 0} {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			With(NewLimit(b), func() {
				for r := 0; r < 20; r++ {
					if got := limitKernel(1<<14, 128); got != want {
						errc <- "budgeted kernel result diverged"
						return
					}
				}
			})
		}(budget)
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}

// TestLimitNesting: the innermost With wins, the outer binding is restored,
// and a nil Limit passes through unbound.
func TestLimitNesting(t *testing.T) {
	if Current() != nil {
		t.Fatal("goroutine unexpectedly bound at test start")
	}
	outer, inner := NewLimit(2), NewLimit(1)
	With(outer, func() {
		if Current() != outer {
			t.Error("outer binding not visible")
		}
		With(inner, func() {
			if Current() != inner {
				t.Error("inner binding not visible")
			}
		})
		if Current() != outer {
			t.Error("outer binding not restored after inner With")
		}
		With(nil, func() {
			if Current() != outer {
				t.Error("nil With must not disturb the binding")
			}
		})
	})
	if Current() != nil {
		t.Fatal("binding leaked past With")
	}
}

// TestLimitSetClamp: Set normalizes negatives to uncapped and Budget
// reports the configured value.
func TestLimitSetClamp(t *testing.T) {
	l := NewLimit(-5)
	if l.Budget() != 0 {
		t.Fatalf("NewLimit(-5).Budget() = %d, want 0 (uncapped)", l.Budget())
	}
	l.Set(4)
	if l.Budget() != 4 {
		t.Fatalf("Budget() = %d after Set(4)", l.Budget())
	}
}
