// Package par provides the shared worker pool that parallelizes the primal
// hot path: sparse matrix-vector products, vector reductions, system
// assembly, HPWL evaluation and density binning.
//
// # Determinism contract
//
// Every caller of this package follows one rule: the *work decomposition*
// (chunk boundaries, block sizes, shard partitions) is a pure function of the
// problem size, never of the worker count. The pool only decides *which
// goroutine* executes a chunk, and reductions merge per-chunk partials in
// fixed index order. Consequently results are bitwise identical at any
// parallelism level — `SetThreads(1)` and `SetThreads(64)` produce the same
// floating-point output, which keeps placement runs reproducible (see
// internal/experiments/determinism_test.go).
//
// # Scheduling
//
// The pool keeps persistent worker goroutines parked on an unbuffered
// channel. Run hands helper tasks to parked workers with a non-blocking
// send; when no worker is free (or the pool is nested inside another Run)
// the calling goroutine simply executes the chunks itself. Chunks are
// claimed from an atomic counter, so load balances dynamically without
// affecting results. This design cannot deadlock under nesting or
// concurrent callers (e.g. the x/y dimension split in qp.Solve, where both
// solves issue parallel kernels at once).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	initOnce sync.Once
	// threads is the effective parallelism cap (0 = uninitialized).
	threads atomic.Int32
	// spawned counts live worker goroutines.
	spawned int32
	spawnMu sync.Mutex
	// work delivers helper tasks to parked workers. Never closed.
	work chan func()
)

func ensureInit() {
	initOnce.Do(func() {
		work = make(chan func())
		n := runtime.GOMAXPROCS(0)
		if n < 1 {
			n = 1
		}
		threads.Store(int32(n))
		ensureWorkers(n - 1)
	})
}

// ensureWorkers grows the parked-worker set to at least n goroutines.
func ensureWorkers(n int) {
	spawnMu.Lock()
	for spawned < int32(n) {
		go worker()
		spawned++
	}
	spawnMu.Unlock()
}

func worker() {
	for t := range work {
		t()
	}
}

// Threads returns the effective parallelism: the maximum number of
// goroutines (including the caller) that Run will use for one invocation.
func Threads() int {
	ensureInit()
	return int(threads.Load())
}

// SetThreads caps the pool's effective parallelism. n <= 0 restores the
// default (GOMAXPROCS). SetThreads(1) makes every kernel run strictly on the
// calling goroutine. Raising the cap spawns additional workers as needed.
// Changing the cap never changes results, only scheduling.
//
// SetThreads is safe to call at any time, including concurrently with
// running kernels and from multiple goroutines: the cap is an atomic that
// each Run invocation reads exactly once on entry, worker spawning is
// mutex-guarded, and workers are never torn down (lowering the cap merely
// parks the surplus). A kernel already in flight finishes with the
// parallelism it started with; the new cap applies from the next Run on.
// Because work decompositions are pure functions of problem size (see the
// package comment), a mid-run resize cannot change any numeric result.
func SetThreads(n int) {
	ensureInit()
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	threads.Store(int32(n))
	ensureWorkers(n - 1)
}

// Run invokes fn(0), fn(1), …, fn(nchunks-1) exactly once each, possibly
// concurrently on up to Threads() goroutines (the caller participates).
// When the calling goroutine is bound to a Limit (see With), the smaller of
// the global cap and the remaining per-job budget applies instead. It
// returns when every chunk has completed. fn must not assume any particular
// execution order or goroutine identity; chunks are claimed dynamically for
// load balance.
func Run(nchunks int, fn func(chunk int)) {
	if nchunks <= 0 {
		return
	}
	ensureInit()
	t := int(threads.Load())
	lim := Current()
	if lim != nil {
		if b := lim.Budget(); b > 0 && b < t {
			t = b
		}
	}
	if t <= 1 || nchunks == 1 {
		for c := 0; c < nchunks; c++ {
			fn(c)
		}
		return
	}
	var next atomic.Int64
	drain := func() {
		for {
			c := int(next.Add(1) - 1)
			if c >= nchunks {
				return
			}
			fn(c)
		}
	}
	helpers := t - 1
	if helpers > nchunks-1 {
		helpers = nchunks - 1
	}
	var wg sync.WaitGroup
	for i := 0; i < helpers; i++ {
		// A bound job draws its helpers from the job budget before touching
		// the pool, so concurrent kernel launches within one job (the qp x/y
		// split) share budget−1 helper slots instead of each claiming a full
		// complement.
		if lim != nil && !lim.tryAcquireHelper() {
			break
		}
		wg.Add(1)
		var task func()
		if lim != nil {
			task = func() {
				defer wg.Done()
				defer lim.releaseHelper()
				// Bind the worker for the task's duration so kernels nested
				// inside a chunk observe the same job budget.
				With(lim, drain)
			}
		} else {
			task = func() {
				defer wg.Done()
				drain()
			}
		}
		select {
		case work <- task:
			// A parked worker picked it up.
		default:
			// No worker free (pool saturated or nested call): the caller
			// will drain those chunks itself.
			if lim != nil {
				lim.releaseHelper()
			}
			wg.Done()
		}
	}
	drain()
	wg.Wait()
}

// For splits the index range [0, n) into contiguous chunks of length grain
// (the last chunk may be shorter) and invokes fn(lo, hi) for each, possibly
// in parallel. The chunk boundaries are a pure function of n and grain —
// chunk c always covers [c·grain, min((c+1)·grain, n)) — so callers that
// store per-chunk partials indexed by lo/grain and reduce them in order get
// bitwise-deterministic results at any parallelism level.
//
// When n fits in a single chunk the callback runs inline on the caller with
// no scheduling overhead, so small problems (unit-test sized matrices) do
// not regress.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	if n <= grain {
		fn(0, n)
		return
	}
	nchunks := (n + grain - 1) / grain
	Run(nchunks, func(c int) {
		lo := c * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// Chunks returns the number of chunks For(n, grain, …) will produce.
func Chunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain <= 0 {
		grain = 1
	}
	return (n + grain - 1) / grain
}
