// Package multilevel drives the V-cycle that takes ComPLx to million-cell
// designs: coarsen the netlist bottom-up by repeated heavy-edge clustering,
// solve the coarsest level with the full λ-schedule, then walk back down —
// interpolate each coarse placement onto the next finer netlist and refine
// it with a shortened, warm-started schedule. The coarse solve does the
// expensive global untangling on a few thousand cluster cells; each
// refinement only has to repair local detail, so the total wall-clock is a
// fraction of a flat solve at comparable wirelength.
//
// The package owns level bookkeeping only — coarsening stack construction,
// the solve order, interpolation, per-level observability and
// checkpoint/resume placement — and delegates the actual placement of one
// level to a Solve callback, so it depends on the engine but not on
// internal/core (core imports this package, not the reverse).
//
// Checkpoint/resume: the engine stamps the V-cycle level into every
// snapshot. Because the coarsening stack is a pure function of the input
// netlist, a resumed run rebuilds it deterministically, skips every level
// coarser than the snapshot's (their outcome is baked into the snapshot's
// positions), resumes the snapshot's level in the engine, and continues the
// descent — bitwise identical to the uninterrupted run.
package multilevel

import (
	"context"
	"fmt"
	"time"

	"complx/internal/chkpt"
	"complx/internal/cluster"
	"complx/internal/engine"
	"complx/internal/netlist"
	"complx/internal/obs"
	"complx/internal/perr"
)

// Options configures the V-cycle shape.
type Options struct {
	// TargetCells is the movable-cell count the coarsening descends to
	// (default 10000): clustering passes stop once the coarsest netlist is
	// at or below it.
	TargetCells int
	// MaxLevels caps the number of coarsening passes (default 6).
	MaxLevels int
	// RefineIters is the per-level iteration budget of the warm-started
	// refinement solves below the coarsest level (default 8). The coarsest
	// level always runs the caller's full budget.
	RefineIters int
}

// DefaultTargetCells, DefaultMaxLevels and DefaultRefineIters are the
// Options zero-value defaults.
const (
	DefaultTargetCells = 10000
	DefaultMaxLevels   = 6
	DefaultRefineIters = 8
)

func (o *Options) fill() {
	if o.TargetCells <= 0 {
		o.TargetCells = DefaultTargetCells
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = DefaultMaxLevels
	}
	if o.RefineIters <= 0 {
		o.RefineIters = DefaultRefineIters
	}
}

// Level describes one V-cycle level to the Solve callback.
type Level struct {
	// Level is the V-cycle level index: 0 = the original (finest) netlist,
	// len(stack) = the coarsest. Levels are solved coarsest-first.
	Level int
	// Coarsest reports whether this is the top of the V-cycle, which runs
	// the caller's full iteration budget from a cold start. Non-coarsest
	// levels are warm-started from the interpolated coarse placement and
	// run the shortened Options.RefineIters budget.
	Coarsest bool
	// Netlist is the netlist to place at this level (the original at level
	// 0, a cluster netlist above).
	Netlist *netlist.Netlist
	// Checkpoint is the snapshot sink for this level's engine loop (nil
	// when checkpointing is disabled).
	Checkpoint engine.CheckpointSink
	// Resume is non-nil only at the level a checkpoint restart lands on;
	// the engine restores it instead of warm/cold starting.
	Resume *chkpt.State
	// StartLambda is the coarser level's final Lagrange multiplier
	// renormalized to this level's cell count (0 at the coarsest, which
	// derives its own λ₁ cold). A warm-started level is near-feasible, so
	// re-deriving λ₁ = Φ/(100·Π) from its tiny overflow would produce a
	// multiplier far past any useful refine price and freeze the
	// placement; continuing the coarse dual trajectory keeps the
	// wirelength/feasibility price consistent down the descent. The raw
	// multiplier does not transfer across levels, though: the anchor force
	// is λ per cell while the interconnect pull on a cluster is the sum
	// over its members (cross-cluster clique mass is preserved by
	// coarsening), so the same placement pressure needs λ·N ≈ const —
	// StartLambda scales the chained multiplier by the level's movable
	// ratio. Resume-safe: a resumed level restores λ from its snapshot and
	// finishes with the same FinalLambda as the uninterrupted run, so the
	// chain below it is bitwise identical.
	StartLambda float64
}

// Config wires a V-cycle run.
type Config struct {
	Options Options
	// Solve places one level and returns the engine result. The callback
	// must run its loop with Loop.Level = lv.Level, honor lv.Resume and —
	// for non-coarsest, non-resumed levels — warm-start from the netlist's
	// current (interpolated) placement. internal/core provides the
	// production implementation.
	Solve func(ctx context.Context, lv Level) (*engine.Result, error)
	// Checkpoint, when non-nil, receives every level's engine snapshots.
	Checkpoint engine.CheckpointSink
	// Resume, when non-nil, restarts the V-cycle from a saved snapshot:
	// levels coarser than Resume.Level are skipped (their result is baked
	// into the snapshot's positions) and Resume.Level itself resumes
	// mid-loop in the engine.
	Resume *chkpt.State
	// Obs records per-level spans and metrics; nil disables.
	Obs *obs.Observer
}

// warmLevelSink drops the iteration-0 snapshot a warm level deposits
// before its first refinement iteration completes. That snapshot carries
// no schedule state (the level's First has not run yet) and the
// λ-continuation context that would recreate it lives in the already-
// solved coarser levels, which a resume skips — so resuming from it
// re-derives a cold λ₁ and diverges from the uninterrupted run. Dropping
// the save keeps the coarser level's final snapshot on disk instead: a
// resume lands there, replays that level's tail bitwise and re-descends
// with the full warm-start context. The coarsest level is not filtered —
// it is cold, so its iteration-0 snapshot resumes exactly like a flat
// run's.
type warmLevelSink struct{ engine.CheckpointSink }

func (s warmLevelSink) Save(st *chkpt.State) error {
	if st.Iter == 0 {
		return nil
	}
	return s.CheckpointSink.Save(st)
}

// Run executes the V-cycle over nl and leaves nl at the final fine
// placement. The returned Result is the finest level's engine result. On
// context cancellation the remaining levels still interpolate (and
// fast-exit their solves), so the netlist always holds a complete fine
// placement; the result carries Cancelled and the cancellation error is
// returned alongside it, matching the engine's contract.
func Run(ctx context.Context, nl *netlist.Netlist, cfg Config) (*engine.Result, error) {
	cfg.Options.fill()
	if cfg.Solve == nil {
		return nil, perr.New(perr.StageValidate, "multilevel: Config.Solve is required")
	}
	stack, err := cluster.Coarsen(nl, cfg.Options.TargetCells, cfg.Options.MaxLevels)
	if err != nil {
		return nil, perr.Wrap(perr.StageValidate, err)
	}
	top := len(stack)
	startLevel := top
	if cfg.Resume != nil {
		if cfg.Resume.Level > top || cfg.Resume.Level < 0 {
			return nil, perr.New(perr.StageCheckpoint,
				"multilevel: checkpoint level %d outside this design's V-cycle (0..%d)",
				cfg.Resume.Level, top)
		}
		startLevel = cfg.Resume.Level
	}
	cfg.Obs.SetGauge(obs.MetricLevels, float64(top+1))

	var (
		finest     *engine.Result
		cancelErr  error
		prevLambda float64 // λ·N of the last solved level (see Level.StartLambda)
	)
	for k := startLevel; k >= 0; k-- {
		lvNl := nl
		if k > 0 {
			lvNl = stack[k-1].Coarse
		}
		lv := Level{
			Level:       k,
			Coarsest:    k == top,
			Netlist:     lvNl,
			Checkpoint:  cfg.Checkpoint,
			StartLambda: prevLambda / float64(lvNl.NumMovable()),
		}
		if k != top && cfg.Checkpoint != nil {
			lv.Checkpoint = warmLevelSink{cfg.Checkpoint}
		}
		if cancelErr != nil {
			// Post-cancellation descent: the finer levels only interpolate
			// and fast-exit. Their snapshots would overwrite the one the
			// cancelled level saved — the state the resume must land on.
			lv.Checkpoint = nil
		}
		if cfg.Resume != nil && k == startLevel {
			lv.Resume = cfg.Resume
		}
		span := cfg.Obs.StartSpan(fmt.Sprintf("level_%d", k))
		cfg.Obs.SetGauge(levelMetric(obs.MetricLevelCells, k), float64(lvNl.NumMovable()))
		start := time.Now()
		res, err := cfg.Solve(ctx, lv)
		cfg.Obs.AddSeconds(levelMetric(obs.MetricLevelSeconds, k), time.Since(start))
		if err != nil && (res == nil || !res.Cancelled) {
			span.End()
			return nil, err
		}
		if err != nil {
			// Cancellation: remember the cause, keep descending so every
			// finer level at least interpolates — each remaining solve
			// fast-exits on the dead context and keeps the interpolated
			// placement, so the finest netlist ends complete.
			cancelErr = err
		}
		cfg.Obs.SetGauge(levelMetric(obs.MetricLevelHPWL, k), res.HPWL)
		if res.FinalLambda > 0 {
			// λ continuation for the next finer level (see Level.StartLambda):
			// carry λ·N so the chained multiplier renormalizes to each
			// level's cell count.
			prevLambda = res.FinalLambda * float64(lvNl.NumMovable())
		}
		if k == 0 {
			finest = res
		} else {
			// Interpolate: write this level's placement onto level k−1.
			stack[k-1].Expand()
		}
		span.End()
	}
	if cfg.Resume != nil {
		// The snapshot primed a coarse level, but the V-cycle as a whole
		// was resumed; surface that on the result the caller sees.
		finest.Resumed = true
	}
	if cancelErr != nil {
		finest.Cancelled = true
		return finest, cancelErr
	}
	return finest, nil
}

// Levels returns how many V-cycle levels Run would use for nl under opt
// (1 = no coarsening, flat). It rebuilds the coarsening stack, so it is as
// expensive as the coarsening itself; intended for tools and tests.
func Levels(nl *netlist.Netlist, opt Options) (int, error) {
	opt.fill()
	stack, err := cluster.Coarsen(nl, opt.TargetCells, opt.MaxLevels)
	if err != nil {
		return 0, err
	}
	return len(stack) + 1, nil
}

// levelMetric renders the labeled per-level series name for a catalog
// metric, e.g. complx_level_seconds_total{level="2"}.
func levelMetric(name string, level int) string {
	return fmt.Sprintf("%s{level=\"%d\"}", name, level)
}
