package multilevel

import (
	"context"
	"errors"
	"testing"

	"complx/internal/chkpt"
	"complx/internal/engine"
	"complx/internal/gen"
	"complx/internal/netlist"
	"complx/internal/perr"
)

func vcycleDesign(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl, err := gen.Generate(gen.Spec{Name: "ml", NumCells: 600, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

type solveRecord struct {
	level    int
	coarsest bool
	movables int
	resumed  bool
}

// fakeSolve records the levels it is handed and nudges every movable so
// Expand has a real placement to interpolate.
func fakeSolve(log *[]solveRecord) func(context.Context, Level) (*engine.Result, error) {
	return func(_ context.Context, lv Level) (*engine.Result, error) {
		*log = append(*log, solveRecord{
			level:    lv.Level,
			coarsest: lv.Coarsest,
			movables: lv.Netlist.NumMovable(),
			resumed:  lv.Resume != nil,
		})
		for i := range lv.Netlist.Cells {
			if !lv.Netlist.Cells[i].Fixed() {
				lv.Netlist.Cells[i].X += 1
			}
		}
		return &engine.Result{HPWL: float64(lv.Level)}, nil
	}
}

func TestRunSolvesCoarsestFirst(t *testing.T) {
	nl := vcycleDesign(t)
	var log []solveRecord
	res, err := Run(context.Background(), nl, Config{
		Options: Options{TargetCells: 150, RefineIters: 4},
		Solve:   fakeSolve(&log),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(log) < 3 {
		t.Fatalf("expected a deep V-cycle on 600 cells with target 150, got %d levels", len(log))
	}
	top := len(log) - 1
	for i, r := range log {
		if want := top - i; r.level != want {
			t.Errorf("solve %d ran level %d, want %d (coarsest first)", i, r.level, want)
		}
		if r.coarsest != (i == 0) {
			t.Errorf("solve %d: coarsest = %v", i, r.coarsest)
		}
		if r.resumed {
			t.Errorf("solve %d: unexpected resume", i)
		}
		if i > 0 && r.movables <= log[i-1].movables {
			t.Errorf("solve %d: %d movables not finer than previous %d", i, r.movables, log[i-1].movables)
		}
	}
	if log[top].movables != nl.NumMovable() {
		t.Errorf("finest level placed %d movables, want %d", log[top].movables, nl.NumMovable())
	}
	if res.HPWL != 0 {
		t.Errorf("Run returned HPWL %v, want the finest level's result", res.HPWL)
	}
}

func TestRunResumeSkipsCoarserLevels(t *testing.T) {
	nl := vcycleDesign(t)
	var log []solveRecord
	_, err := Run(context.Background(), nl, Config{
		Options: Options{TargetCells: 150, RefineIters: 4},
		Resume:  &chkpt.State{Level: 1},
		Solve:   fakeSolve(&log),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 {
		t.Fatalf("resume at level 1 ran %d solves, want 2 (levels 1 and 0)", len(log))
	}
	if log[0].level != 1 || !log[0].resumed {
		t.Errorf("first solve: level %d resumed %v, want level 1 resumed", log[0].level, log[0].resumed)
	}
	if log[1].level != 0 || log[1].resumed {
		t.Errorf("second solve: level %d resumed %v, want level 0 not resumed", log[1].level, log[1].resumed)
	}
	if log[0].coarsest || log[1].coarsest {
		t.Error("resumed mid-cycle levels must not report Coarsest")
	}
}

func TestRunResumeLevelOutOfRange(t *testing.T) {
	nl := vcycleDesign(t)
	var log []solveRecord
	_, err := Run(context.Background(), nl, Config{
		Options: Options{TargetCells: 150},
		Resume:  &chkpt.State{Level: 40},
		Solve:   fakeSolve(&log),
	})
	var pe *perr.Error
	if !errors.As(err, &pe) || pe.Stage != perr.StageCheckpoint {
		t.Fatalf("want checkpoint-stage error for out-of-range level, got %v", err)
	}
	if len(log) != 0 {
		t.Errorf("%d solves ran despite invalid resume level", len(log))
	}
}

func TestRunCancelledSolveStillDescends(t *testing.T) {
	nl := vcycleDesign(t)
	cancelled := errors.New("ctx done")
	var levels []int
	res, err := Run(context.Background(), nl, Config{
		Options: Options{TargetCells: 150, RefineIters: 4},
		Solve: func(_ context.Context, lv Level) (*engine.Result, error) {
			levels = append(levels, lv.Level)
			// Every solve reports cancellation (as after ctx expiry).
			return &engine.Result{Cancelled: true}, cancelled
		},
	})
	if !errors.Is(err, cancelled) {
		t.Fatalf("want the cancellation error back, got %v", err)
	}
	if res == nil || !res.Cancelled {
		t.Fatal("want a Cancelled finest result")
	}
	if len(levels) < 3 || levels[len(levels)-1] != 0 {
		t.Errorf("cancelled V-cycle must still descend to level 0, solved %v", levels)
	}
}

func TestRunSolveErrorStops(t *testing.T) {
	nl := vcycleDesign(t)
	boom := errors.New("solver exploded")
	calls := 0
	_, err := Run(context.Background(), nl, Config{
		Options: Options{TargetCells: 150},
		Solve: func(_ context.Context, lv Level) (*engine.Result, error) {
			calls++
			return nil, boom
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want the solve error, got %v", err)
	}
	if calls != 1 {
		t.Errorf("%d solves ran after a hard error", calls)
	}
}

func TestLevels(t *testing.T) {
	nl := vcycleDesign(t)
	n, err := Levels(nl, Options{TargetCells: 150})
	if err != nil {
		t.Fatal(err)
	}
	if n < 3 {
		t.Errorf("Levels = %d, want a deep cycle for 600 cells at target 150", n)
	}
	flat, err := Levels(nl, Options{TargetCells: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if flat != 1 {
		t.Errorf("Levels = %d for a design already under target, want 1", flat)
	}
}

func TestRunRequiresSolve(t *testing.T) {
	nl := vcycleDesign(t)
	_, err := Run(context.Background(), nl, Config{})
	var pe *perr.Error
	if !errors.As(err, &pe) || pe.Stage != perr.StageValidate {
		t.Fatalf("want validate-stage error, got %v", err)
	}
}

func TestLevelMetric(t *testing.T) {
	got := levelMetric("complx_level_hpwl", 3)
	if got != `complx_level_hpwl{level="3"}` {
		t.Errorf("levelMetric = %q", got)
	}
}
