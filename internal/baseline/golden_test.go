package baseline

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"complx/internal/gen"
	"complx/internal/netlist"
)

// Golden behavior-preservation suite for the baseline placers: the final
// positions and summary metrics are hashed bit-for-bit against
// testdata/golden.json (generated from the pre-engine-refactor loops), so
// rebasing the baselines onto the shared engine machinery provably does not
// change their numerics. Regenerate with
//
//	go test ./internal/baseline -run TestBaselineGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from the current implementation")

func baselineHash(nl *netlist.Netlist, iters int, converged bool, hpwl, overflow float64) string {
	h := sha256.New()
	put := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	for i := range nl.Cells {
		put(nl.Cells[i].X)
		put(nl.Cells[i].Y)
	}
	put(float64(iters))
	if converged {
		put(1)
	} else {
		put(0)
	}
	put(hpwl)
	put(overflow)
	return hex.EncodeToString(h.Sum(nil))
}

func TestBaselineGolden(t *testing.T) {
	path := filepath.Join("testdata", "golden.json")
	want := map[string]string{}
	if !*updateGolden {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read golden file (regenerate with -update-golden): %v", err)
		}
		if err := json.Unmarshal(raw, &want); err != nil {
			t.Fatalf("parse golden file: %v", err)
		}
	}
	got := map[string]string{}

	mk := func(seed int64) *netlist.Netlist {
		nl, err := gen.Generate(gen.Spec{Name: "bg", NumCells: 500, Seed: seed, Utilization: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		return nl
	}

	{
		nl := mk(51)
		r, err := FastPlaceCS(nl, FPOptions{MaxIterations: 40})
		if err != nil {
			t.Fatal(err)
		}
		got["fastplace-cs"] = baselineHash(nl, r.Iterations, r.Converged, r.HPWL, r.Overflow)
	}
	{
		nl := mk(52)
		r, err := RQL(nl, RQLOptions{MaxIterations: 30})
		if err != nil {
			t.Fatal(err)
		}
		got["rql"] = baselineHash(nl, r.Iterations, r.Converged, r.HPWL, r.Overflow)
	}
	{
		nl := mk(53)
		r, err := NLP(nl, NLPOptions{MaxIterations: 10, InnerIterations: 20})
		if err != nil {
			t.Fatal(err)
		}
		got["nlp"] = baselineHash(nl, r.Iterations, r.Converged, r.HPWL, r.Overflow)
	}

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	for name, g := range got {
		if w, ok := want[name]; !ok {
			t.Errorf("%s: no golden entry", name)
		} else if g != w {
			t.Errorf("%s: behavior changed: hash %s, want %s", name, g, w)
		}
	}
}
