package baseline

import (
	"testing"

	"complx/internal/core"
	"complx/internal/density"
	"complx/internal/gen"
	"complx/internal/geom"
	"complx/internal/netlist"
)

func design(t *testing.T, n int, seed int64) *netlist.Netlist {
	t.Helper()
	nl, err := gen.Generate(gen.Spec{Name: "b", NumCells: n, Seed: seed, Utilization: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func overflow(nl *netlist.Netlist, target float64) float64 {
	nx, ny := density.AutoResolution(nl.NumMovable(), 4, 128)
	g, err := density.NewGridForNetlist(nl, nx, ny, target)
	if err != nil {
		panic(err)
	}
	g.AccumulateMovable(nl)
	return g.OverflowRatio()
}

func TestSimPLRuns(t *testing.T) {
	nl := design(t, 600, 31)
	res, err := SimPL(nl, core.Options{MaxIterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL <= 0 {
		t.Fatal("no placement")
	}
	if ov := overflow(nl, 1.0); ov > 0.35 {
		t.Errorf("SimPL overflow = %v", ov)
	}
}

func TestFastPlaceCSSpreads(t *testing.T) {
	nl := design(t, 600, 32)
	res, err := FastPlaceCS(nl, FPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL <= 0 {
		t.Fatal("no placement")
	}
	if !res.Converged && res.Overflow > 0.3 {
		t.Errorf("FastPlace-CS did not spread: overflow %v after %d iters", res.Overflow, res.Iterations)
	}
}

func TestNLPSpreads(t *testing.T) {
	nl := design(t, 300, 33)
	res, err := NLP(nl, NLPOptions{MaxIterations: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL <= 0 {
		t.Fatal("no placement")
	}
	if !res.Converged && res.Overflow > 0.35 {
		t.Errorf("NLP did not spread: overflow %v after %d iters", res.Overflow, res.Iterations)
	}
	if res.FinalMu <= 0 {
		t.Error("mu never initialized")
	}
}

// TestComPLxBeatsOrMatchesBaselines is the qualitative Table 1/2 ordering:
// on the same design, ComPLx's final HPWL should not be meaningfully worse
// than SimPL's, and both should beat FastPlace-CS.
func TestComPLxBeatsOrMatchesBaselines(t *testing.T) {
	run := func(f func(nl *netlist.Netlist) float64) float64 {
		nl := design(t, 800, 34)
		return f(nl)
	}
	complx := run(func(nl *netlist.Netlist) float64 {
		res, err := core.Place(nl, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.HPWL
	})
	simpl := run(func(nl *netlist.Netlist) float64 {
		res, err := SimPL(nl, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.HPWL
	})
	fp := run(func(nl *netlist.Netlist) float64 {
		res, err := FastPlaceCS(nl, FPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.HPWL
	})
	t.Logf("HPWL: complx=%.0f simpl=%.0f fastplace=%.0f", complx, simpl, fp)
	if complx > 1.10*simpl {
		t.Errorf("ComPLx (%v) much worse than SimPL (%v)", complx, simpl)
	}
	if complx > 1.15*fp {
		t.Errorf("ComPLx (%v) worse than FastPlace-CS (%v)", complx, fp)
	}
}

func TestNewBoundsAndRemap(t *testing.T) {
	// Uniform utilization: boundaries stay uniform, remap is identity.
	b := newBounds(0, 10, []float64{1, 1, 1, 1}, 1.5)
	for j, want := range []float64{0, 10, 20, 30, 40} {
		if diff := b[j] - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("bounds[%d] = %v, want %v", j, b[j], want)
		}
	}
	if got := remap(17, 0, 10, b); got != 17 {
		t.Errorf("identity remap = %v", got)
	}
	// Dense first bin dilates: its new width exceeds 10.
	b2 := newBounds(0, 10, []float64{5, 0, 0, 0}, 1.0)
	if b2[1] <= 10 {
		t.Errorf("dense bin did not dilate: %v", b2)
	}
	// Remap keeps ordering.
	if remap(5, 0, 10, b2) >= remap(15, 0, 10, b2) {
		t.Error("remap lost monotonicity")
	}
	// Span preserved.
	if b2[4] != 40 {
		t.Errorf("span changed: %v", b2[4])
	}
}

func TestRemapClamps(t *testing.T) {
	b := newBounds(0, 10, []float64{1, 1}, 1)
	if got := remap(-5, 0, 10, b); got < -6 || got > 21 {
		t.Errorf("below-range remap = %v", got)
	}
	if got := remap(25, 0, 10, b); got < 0 || got > 26 {
		t.Errorf("above-range remap = %v", got)
	}
}

func TestRQLSpreads(t *testing.T) {
	nl := design(t, 600, 35)
	res, err := RQL(nl, RQLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL <= 0 {
		t.Fatal("no placement")
	}
	if !res.Converged && res.Overflow > 0.3 {
		t.Errorf("RQL did not spread: overflow %v after %d iters", res.Overflow, res.Iterations)
	}
}

func TestRelaxedLambdasCapsTopForces(t *testing.T) {
	prev := []geom.Point{{X: 0}, {X: 0}, {X: 0}, {X: 0}}
	anch := []geom.Point{{X: 1}, {X: 2}, {X: 3}, {X: 100}} // one outlier
	l := relaxedLambdas(prev, anch, 1.0, 0.25)
	// The outlier's lambda must be scaled down so lambda*disp ≈ cap.
	if l[3] >= 1.0 {
		t.Errorf("outlier lambda = %v, want < 1", l[3])
	}
	if l[0] != 1.0 || l[1] != 1.0 {
		t.Errorf("small forces modified: %v", l)
	}
	// Effective force of the outlier equals the cap displacement.
	if got := l[3] * 100; got < 2.9 || got > 3.1 {
		t.Errorf("capped force = %v, want ~3", got)
	}
}

func TestDiffuseOverflowMovesCells(t *testing.T) {
	nl := design(t, 400, 36)
	// Collapse everything to the center.
	for _, i := range nl.Movables() {
		nl.Cells[i].SetCenter(geom.Point{X: nl.Core.Center().X, Y: nl.Core.Center().Y})
	}
	before := nl.Positions()
	if err := diffuseOverflow(nl, 1.0, 16, 16); err != nil {
		t.Fatal(err)
	}
	after := nl.Positions()
	moved, err := netlist.TotalDisplacement(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Error("diffusion moved nothing")
	}
}
