package baseline

import (
	"math"
	"testing"

	"complx/internal/chkpt"
	"complx/internal/gen"
	"complx/internal/netlist"
)

// memSink is the in-memory checkpoint sink of the resume-determinism tests:
// it snapshots every iteration and round-trips each state through the wire
// codec so resumed runs see exactly what a reload from disk would.
type memSink struct {
	t      *testing.T
	states map[int]*chkpt.State
}

func (m *memSink) Save(st *chkpt.State) error {
	m.t.Helper()
	dec, err := chkpt.Decode(chkpt.Encode(st))
	if err != nil {
		m.t.Fatalf("checkpoint round-trip: %v", err)
	}
	m.states[dec.Iter] = dec
	return nil
}

func (m *memSink) IntervalOrDefault() int { return 1 }

// positionsBits digests the exact movable positions for bitwise comparison.
func positionsBits(nl *netlist.Netlist) []uint64 {
	var out []uint64
	for _, p := range nl.Positions() {
		out = append(out, math.Float64bits(p.X), math.Float64bits(p.Y))
	}
	return out
}

// TestFastPlaceResumeBitwiseIdentical pins the overflow-loop half of the
// resume-determinism contract: a FastPlace-CS run resumed from a mid-run
// checkpoint lands on bit-for-bit the same placement as the uninterrupted
// run (the dual stepper's hold-weight state rides in the snapshot).
func TestFastPlaceResumeBitwiseIdentical(t *testing.T) {
	spec := gen.Spec{Name: "fp-resume", NumCells: 300, Seed: 51, Utilization: 0.75}
	nlA, err := gen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	sink := &memSink{t: t, states: map[int]*chkpt.State{}}
	optA := FPOptions{MaxIterations: 20, Checkpoint: sink}
	rA, err := FastPlaceCS(nlA, optA)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	mid := rA.Iterations / 2
	if mid < 1 {
		t.Fatalf("reference run too short to split: %d iterations", rA.Iterations)
	}
	st, ok := sink.states[mid]
	if !ok {
		t.Fatalf("no checkpoint at iteration %d", mid)
	}
	if st.Kind != chkpt.KindOverflow {
		t.Fatalf("overflow checkpoint has kind %q", st.Kind)
	}
	if len(st.DualState) != 2 {
		t.Fatalf("fpStepper state not captured: %v", st.DualState)
	}

	nlB, err := gen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	rB, err := FastPlaceCS(nlB, FPOptions{MaxIterations: 20, Resume: st})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !rB.Resumed {
		t.Error("resumed run did not report Resumed")
	}
	if rA.Iterations != rB.Iterations || rA.Converged != rB.Converged {
		t.Errorf("resume diverged: iters %d vs %d, converged %v vs %v",
			rA.Iterations, rB.Iterations, rA.Converged, rB.Converged)
	}
	if math.Float64bits(rA.HPWL) != math.Float64bits(rB.HPWL) {
		t.Errorf("resume HPWL diverged: %v vs %v", rA.HPWL, rB.HPWL)
	}
	a, b := positionsBits(nlA), positionsBits(nlB)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("position word %d diverged after resume", i)
		}
	}
}

// TestOverflowResumeRejectsLoopKind: a primal-dual loop snapshot cannot
// prime an overflow loop.
func TestOverflowResumeRejectsLoopKind(t *testing.T) {
	spec := gen.Spec{Name: "fp-kind", NumCells: 120, Seed: 52, Utilization: 0.75}
	nl, err := gen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := &chkpt.State{Kind: chkpt.KindLoop, Iter: 2}
	if _, err := FastPlaceCS(nl, FPOptions{MaxIterations: 10, Resume: st}); err == nil {
		t.Fatal("loop-kind checkpoint was accepted by the overflow loop")
	}
}
