package baseline

import (
	"context"
	"fmt"
	"math"
	"sort"

	"complx/internal/chkpt"
	"complx/internal/density"
	"complx/internal/engine"
	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/netmodel"
	"complx/internal/obs"
	"complx/internal/qp"
	"complx/internal/resilience"
)

// RQLOptions tunes the RQL-style baseline.
type RQLOptions struct {
	// TargetDensity is the utilization limit γ (default 1).
	TargetDensity float64
	// MaxIterations bounds the solve/spread loop (default 120).
	MaxIterations int
	// StopOverflow ends the loop below this overflow ratio (default 0.08).
	StopOverflow float64
	// ForcePercentile is the fraction of strongest anchor forces that are
	// relaxed (capped) each iteration — RQL's hallmark force modulation
	// (default 0.02, i.e. the top 2%).
	ForcePercentile float64
	// DiffusionSweeps per iteration (default 3).
	DiffusionSweeps int
	// GridMax caps the spreading grid dimension (default 128).
	GridMax int
	// Obs, when non-nil, instruments the run (iteration trace, CG metrics,
	// spans) identically to the ComPLx placer.
	Obs *obs.Observer
	// Checkpoint, when non-nil, receives complete engine snapshots (see
	// core.Options.Checkpoint); Resume primes the run from a saved one.
	Checkpoint engine.CheckpointSink
	Resume     *chkpt.State
}

func (o *RQLOptions) fill() {
	if o.TargetDensity <= 0 || o.TargetDensity > 1 {
		o.TargetDensity = 1
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 120
	}
	if o.StopOverflow <= 0 {
		o.StopOverflow = 0.08
	}
	if o.ForcePercentile <= 0 {
		o.ForcePercentile = 0.02
	}
	if o.DiffusionSweeps <= 0 {
		o.DiffusionSweeps = 10
	}
	if o.GridMax <= 0 {
		o.GridMax = 128
	}
}

// RQLResult reports an RQL run.
type RQLResult struct {
	Iterations int
	Converged  bool
	HPWL       float64
	Overflow   float64
	// Resumed reports that the run was primed from a checkpoint.
	Resumed bool
	// Recovery logs checkpoint-save failures; never nil.
	Recovery *resilience.Log
}

// rqlStepper is the RQL dual step: diffusion-based local spreading of
// overfilled bins, then hold anchors whose strongest forces are relaxed
// (capped) rather than applied in full.
type rqlStepper struct {
	nl         *netlist.Netlist
	nMov       int
	target     float64
	nx, ny     int
	sweeps     int
	percentile float64
	hold       float64
	holdStep   float64
}

// CaptureState implements engine.StateCodec: the hold-anchor weight and
// its per-iteration step are the stepper's only numeric state.
func (s *rqlStepper) CaptureState() []float64 { return []float64{s.hold, s.holdStep} }

// RestoreState implements engine.StateCodec.
func (s *rqlStepper) RestoreState(state []float64) error {
	if len(state) != 2 {
		return fmt.Errorf("baseline: rqlStepper state wants 2 values, checkpoint carries %d", len(state))
	}
	s.hold, s.holdStep = state[0], state[1]
	return nil
}

func (s *rqlStepper) Step(ctx context.Context, iter int, _ *density.Grid) (engine.DualStep, error) {
	prev := s.nl.Positions()
	for i := 0; i < s.sweeps; i++ {
		if err := ctx.Err(); err != nil {
			return engine.DualStep{}, err
		}
		if err := diffuseOverflow(s.nl, s.target, s.nx, s.ny); err != nil {
			return engine.DualStep{}, err
		}
	}
	anchors := s.nl.Positions()
	if s.holdStep == 0 {
		s.holdStep = netmodel.WeightedHPWL(s.nl) / (50 * float64(s.nMov) * math.Max(1, s.nl.RowHeight()))
	}
	s.hold += s.holdStep
	// Force modulation: the per-cell anchor force is λ·|displacement|
	// after linearization; relax (cap) the strongest ForcePercentile of
	// displacements to the percentile value.
	lambdas := relaxedLambdas(prev, anchors, s.hold, s.percentile)
	return engine.DualStep{Anchors: anchors, Lambdas: lambdas}, nil
}

// RQL places nl in the style of Viswanathan et al.'s RQL (DAC 2007):
// iterative B2B quadratic solves, local diffusion-based spreading of
// overfilled bins, and hold anchors whose strongest forces are relaxed
// (capped) rather than applied in full — the "ad hoc thresholding" force
// modulation the ComPLx paper contrasts itself against.
func RQL(nl *netlist.Netlist, opt RQLOptions) (*RQLResult, error) {
	return RQLContext(context.Background(), nl, opt)
}

// RQLContext is RQL with cooperative cancellation. On cancellation the
// result so far is returned together with the wrapped context error.
func RQLContext(ctx context.Context, nl *netlist.Netlist, opt RQLOptions) (*RQLResult, error) {
	opt.fill()
	mov := nl.Movables()
	nx, ny := density.AutoResolution(len(mov), 4, opt.GridMax)
	loop := &engine.OverflowLoop{
		Netlist: nl,
		// One reusable solver for the whole run (incremental assembly + CG
		// workspace reuse).
		Primal: engine.NewQuadraticPrimal(nl, qp.Options{Obs: opt.Obs}),
		Obs:    opt.Obs,
		Dual: &rqlStepper{
			nl: nl, nMov: len(mov), target: opt.TargetDensity,
			nx: nx, ny: ny,
			sweeps:     opt.DiffusionSweeps,
			percentile: opt.ForcePercentile,
		},
		MaxIterations: opt.MaxIterations,
		StopOverflow:  opt.StopOverflow,
		TargetDensity: opt.TargetDensity,
		NX:            nx, NY: ny,
		InitialSolves: 5,
		Design:        nl.Name,
		Algorithm:     "rql",
		Checkpoint:    opt.Checkpoint,
		Resume:        opt.Resume,
	}
	r, err := loop.Run(ctx)
	if r == nil {
		return nil, err
	}
	return &RQLResult{Iterations: r.Iterations, Converged: r.Converged, HPWL: r.HPWL, Overflow: r.Overflow, Resumed: r.Resumed, Recovery: r.Recovery}, err
}

// relaxedLambdas assigns the hold weight per cell but scales down the cells
// whose spreading displacement is in the top percentile, capping their
// effective force at the percentile displacement.
func relaxedLambdas(prev, anchors []geom.Point, hold, percentile float64) []float64 {
	n := len(prev)
	disp := make([]float64, n)
	order := make([]int, n)
	for i := range prev {
		disp[i] = prev[i].L1(anchors[i])
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return disp[order[a]] > disp[order[b]] })
	kTop := int(percentile * float64(n))
	if kTop < 1 {
		kTop = 1
	}
	if kTop >= n {
		kTop = n - 1
	}
	cap := disp[order[kTop]]
	out := make([]float64, n)
	for i := range out {
		out[i] = hold
		if disp[i] > cap && disp[i] > 0 {
			// Equivalent force to a displacement of cap: scale λ down.
			out[i] = hold * cap / disp[i]
		}
	}
	return out
}

// diffuseOverflow performs one local spreading sweep: every overfilled bin
// moves just its excess area — the cells closest to the chosen boundary —
// one bin pitch toward its least-filled 4-neighbor.
func diffuseOverflow(nl *netlist.Netlist, target float64, nx, ny int) error {
	grid, err := density.NewGridForNetlist(nl, nx, ny, target)
	if err != nil {
		return err
	}
	grid.AccumulateMovable(nl)
	// Bucket movable cells by the bin holding their center.
	buckets := make([][]int, nx*ny)
	for _, i := range nl.Movables() {
		ix, iy := grid.BinOf(nl.Cells[i].Center())
		buckets[iy*nx+ix] = append(buckets[iy*nx+ix], i)
	}
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			cap := grid.Capacity(ix, iy)
			use := grid.Usage(ix, iy)
			if use <= cap || use <= 0 {
				continue
			}
			// Least-filled neighbor direction (must have capacity).
			bestFill := math.Inf(1)
			bdx, bdy := 0, 0
			for _, d := range [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				jx, jy := ix+d[0], iy+d[1]
				if jx < 0 || jy < 0 || jx >= nx || jy >= ny {
					continue
				}
				c := grid.Capacity(jx, jy)
				if c <= 0 {
					continue
				}
				fill := grid.Usage(jx, jy) / c
				if fill < bestFill {
					bestFill, bdx, bdy = fill, d[0], d[1]
				}
			}
			if bdx == 0 && bdy == 0 {
				continue
			}
			// Move the cells nearest the target boundary until the excess
			// area has left the bin.
			cells := buckets[iy*nx+ix]
			toward := func(i int) float64 {
				c := nl.Cells[i].Center()
				return float64(bdx)*c.X + float64(bdy)*c.Y
			}
			sort.Slice(cells, func(a, b int) bool { return toward(cells[a]) > toward(cells[b]) })
			need := use - cap
			for _, i := range cells {
				if need <= 0 {
					break
				}
				c := &nl.Cells[i]
				p := c.Center()
				p.X = geom.Clamp(p.X+float64(bdx)*grid.BinW, nl.Core.XMin+c.W/2, nl.Core.XMax-c.W/2)
				p.Y = geom.Clamp(p.Y+float64(bdy)*grid.BinH, nl.Core.YMin+c.H/2, nl.Core.YMax-c.H/2)
				c.SetCenter(p)
				need -= c.Area()
			}
		}
	}
	return nil
}
