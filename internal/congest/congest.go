// Package congest estimates routing congestion and supports the
// routability-driven extension of ComPLx (paper §5: SimPLR inflates movable
// objects before the feasibility projection P_C; Ripple scales congested
// regions). Congestion is estimated with the standard RUDY model (Rectangle
// Uniform wire DensitY): every net smears a wire demand of
//
//	demand = w·(bbox width + bbox height) / bbox area
//
// uniformly over its bounding box, and per-bin congestion is demand divided
// by the bin's routing capacity.
package congest

import (
	"fmt"
	"math"

	"complx/internal/geom"
	"complx/internal/netlist"
)

// Map is a congestion grid over the core.
type Map struct {
	Core       geom.Rect
	NX, NY     int
	BinW, BinH float64
	// Capacity is the routing supply per unit area (tracks per unit
	// length in both directions combined).
	Capacity float64
	demand   []float64
}

// NewMap allocates a congestion map. capacity <= 0 (or NaN) selects 1. A
// non-positive grid resolution returns an error instead of panicking.
func NewMap(core geom.Rect, nx, ny int, capacity float64) (*Map, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("congest: grid resolution %dx%d must be positive", nx, ny)
	}
	if !(capacity > 0) {
		capacity = 1
	}
	return &Map{
		Core: core, NX: nx, NY: ny,
		BinW: core.Width() / float64(nx), BinH: core.Height() / float64(ny),
		Capacity: capacity,
		demand:   make([]float64, nx*ny),
	}, nil
}

// Reset zeroes the demand map.
func (m *Map) Reset() {
	for i := range m.demand {
		m.demand[i] = 0
	}
}

// AddNetlist accumulates RUDY demand for every net of nl at its current
// placement.
func (m *Map) AddNetlist(nl *netlist.Netlist) {
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		if len(net.Pins) < 2 {
			continue
		}
		xmin, xmax := math.Inf(1), math.Inf(-1)
		ymin, ymax := math.Inf(1), math.Inf(-1)
		for _, p := range net.Pins {
			pt := nl.PinPosition(p)
			xmin = math.Min(xmin, pt.X)
			xmax = math.Max(xmax, pt.X)
			ymin = math.Min(ymin, pt.Y)
			ymax = math.Max(ymax, pt.Y)
		}
		// Degenerate boxes get a half-bin extent so demand stays finite.
		if xmax-xmin < m.BinW/2 {
			c := (xmin + xmax) / 2
			xmin, xmax = c-m.BinW/4, c+m.BinW/4
		}
		if ymax-ymin < m.BinH/2 {
			c := (ymin + ymax) / 2
			ymin, ymax = c-m.BinH/4, c+m.BinH/4
		}
		box := geom.Rect{XMin: xmin, YMin: ymin, XMax: xmax, YMax: ymax}
		wire := net.Weight * (box.Width() + box.Height())
		density := wire / box.Area()
		m.addRect(box, density)
	}
}

// addRect adds demand·overlapArea to each bin the rect overlaps.
func (m *Map) addRect(r geom.Rect, density float64) {
	r = r.Intersect(m.Core)
	if r.Empty() {
		return
	}
	x0 := int(math.Floor((r.XMin - m.Core.XMin) / m.BinW))
	y0 := int(math.Floor((r.YMin - m.Core.YMin) / m.BinH))
	x1 := int(math.Ceil((r.XMax - m.Core.XMin) / m.BinW))
	y1 := int(math.Ceil((r.YMax - m.Core.YMin) / m.BinH))
	x0, y0 = clampInt(x0, 0, m.NX-1), clampInt(y0, 0, m.NY-1)
	x1, y1 = clampInt(x1, 1, m.NX), clampInt(y1, 1, m.NY)
	for iy := y0; iy < y1; iy++ {
		for ix := x0; ix < x1; ix++ {
			bin := geom.Rect{
				XMin: m.Core.XMin + float64(ix)*m.BinW,
				YMin: m.Core.YMin + float64(iy)*m.BinH,
				XMax: m.Core.XMin + float64(ix+1)*m.BinW,
				YMax: m.Core.YMin + float64(iy+1)*m.BinH,
			}
			m.demand[iy*m.NX+ix] += density * bin.OverlapArea(r)
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// CongestionAt returns demand/capacity of the bin containing p.
func (m *Map) CongestionAt(p geom.Point) float64 {
	ix := clampInt(int((p.X-m.Core.XMin)/m.BinW), 0, m.NX-1)
	iy := clampInt(int((p.Y-m.Core.YMin)/m.BinH), 0, m.NY-1)
	return m.demand[iy*m.NX+ix] / (m.Capacity * m.BinW * m.BinH)
}

// Congestion returns demand/capacity for bin (ix, iy).
func (m *Map) Congestion(ix, iy int) float64 {
	return m.demand[iy*m.NX+ix] / (m.Capacity * m.BinW * m.BinH)
}

// Stats summarizes the map: maximum and average bin congestion, and the
// fraction of bins above 1.0 (overflowed).
type Stats struct {
	Max, Avg, OverflowFrac float64
}

// Stats computes summary statistics.
func (m *Map) Stats() Stats {
	var st Stats
	over := 0
	binCap := m.Capacity * m.BinW * m.BinH
	for _, d := range m.demand {
		c := d / binCap
		st.Avg += c
		if c > st.Max {
			st.Max = c
		}
		if c > 1 {
			over++
		}
	}
	n := float64(len(m.demand))
	st.Avg /= n
	st.OverflowFrac = float64(over) / n
	return st
}

// InflationFactors returns a per-movable multiplicative inflation factor
// (>= 1) from the congestion under each cell — SimPLR's preprocessing of
// P_C: cells in congested bins are temporarily enlarged so the projection
// separates them further. alpha scales the effect; factors are capped at
// maxFactor.
func (m *Map) InflationFactors(nl *netlist.Netlist, alpha, maxFactor float64) []float64 {
	if maxFactor < 1 {
		maxFactor = 2
	}
	mov := nl.Movables()
	out := make([]float64, len(mov))
	for k, i := range mov {
		c := m.CongestionAt(nl.Cells[i].Center())
		f := 1.0
		if c > 1 {
			f = 1 + alpha*(c-1)
		}
		if f > maxFactor {
			f = maxFactor
		}
		out[k] = f
	}
	return out
}
