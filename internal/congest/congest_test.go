package congest

import (
	"math"
	"testing"

	"complx/internal/geom"
	"complx/internal/netlist"
)

func core100() geom.Rect { return geom.Rect{XMax: 100, YMax: 100} }

// mustMap unwraps the map constructor in tests with known-good inputs.
func mustMap(m *Map, err error) *Map {
	if err != nil {
		panic(err)
	}
	return m
}

// twoNetDesign: one long net across the middle, one short net in a corner.
func twoNetDesign(t *testing.T) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("cg")
	b.SetCore(core100())
	a := b.AddCell("a", 1, 1)
	c := b.AddCell("c", 1, 1)
	d := b.AddCell("d", 1, 1)
	e := b.AddCell("e", 1, 1)
	b.AddNet("long", 1, []netlist.PinSpec{{Cell: a}, {Cell: c}})
	b.AddNet("short", 1, []netlist.PinSpec{{Cell: d}, {Cell: e}})
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells[a].SetCenter(geom.Point{X: 10, Y: 50})
	nl.Cells[c].SetCenter(geom.Point{X: 90, Y: 50})
	nl.Cells[d].SetCenter(geom.Point{X: 5, Y: 5})
	nl.Cells[e].SetCenter(geom.Point{X: 8, Y: 5})
	return nl
}

func TestRUDYDemandDistribution(t *testing.T) {
	nl := twoNetDesign(t)
	m := mustMap(NewMap(core100(), 10, 10, 1))
	m.AddNetlist(nl)
	// The long net crosses the middle band: bins along y=50 carry demand.
	mid := m.CongestionAt(geom.Point{X: 50, Y: 50})
	if mid <= 0 {
		t.Errorf("middle congestion = %v", mid)
	}
	// Far corner away from both nets is empty.
	far := m.CongestionAt(geom.Point{X: 95, Y: 95})
	if far != 0 {
		t.Errorf("far congestion = %v", far)
	}
	// The short net's corner is more congested than the long net's middle:
	// same wire spread over a much smaller box.
	corner := m.CongestionAt(geom.Point{X: 6, Y: 5})
	if corner <= mid {
		t.Errorf("corner %v should exceed middle %v", corner, mid)
	}
}

func TestTotalDemandConserved(t *testing.T) {
	nl := twoNetDesign(t)
	m := mustMap(NewMap(core100(), 10, 10, 1))
	m.AddNetlist(nl)
	var got float64
	for iy := 0; iy < m.NY; iy++ {
		for ix := 0; ix < m.NX; ix++ {
			got += m.Congestion(ix, iy) * m.BinW * m.BinH
		}
	}
	// Expected total wire: long net bbox 80 wide (degenerate height ->
	// half-bin = 5): 80+5 = 85; short net 3 wide -> widened to 5 wide? No:
	// 3 >= BinW/2 (5)? BinW=10, so 3 < 5 -> widened to 5; height widened
	// to 5. Wire = 5+5 = 10... compute loosely: just require positive and
	// finite, and that Reset clears it.
	if got <= 0 || math.IsNaN(got) {
		t.Fatalf("total demand = %v", got)
	}
	m.Reset()
	if s := m.Stats(); s.Max != 0 || s.Avg != 0 {
		t.Errorf("Reset left demand: %+v", s)
	}
}

func TestStats(t *testing.T) {
	nl := twoNetDesign(t)
	m := mustMap(NewMap(core100(), 10, 10, 0.001)) // tiny capacity: overflows
	m.AddNetlist(nl)
	st := m.Stats()
	if st.Max <= 1 {
		t.Errorf("Max = %v, want > 1 at tiny capacity", st.Max)
	}
	if st.OverflowFrac <= 0 || st.OverflowFrac > 1 {
		t.Errorf("OverflowFrac = %v", st.OverflowFrac)
	}
	if st.Avg <= 0 || st.Avg > st.Max {
		t.Errorf("Avg = %v, Max = %v", st.Avg, st.Max)
	}
}

func TestInflationFactors(t *testing.T) {
	nl := twoNetDesign(t)
	m := mustMap(NewMap(core100(), 10, 10, 0.01)) // low capacity: congested
	m.AddNetlist(nl)
	f := m.InflationFactors(nl, 1, 2)
	if len(f) != nl.NumMovable() {
		t.Fatalf("len = %d", len(f))
	}
	for i, v := range f {
		if v < 1 || v > 2 {
			t.Errorf("factor[%d] = %v outside [1, 2]", i, v)
		}
	}
	// Cells on the congested short net inflate more than uncongested ones.
	if f[2] <= f[0] { // d vs a (a sits at the long net's thin band)
		t.Logf("f = %v (informational)", f)
	}
	// High capacity: no inflation anywhere.
	m2 := mustMap(NewMap(core100(), 10, 10, 1e6))
	m2.AddNetlist(nl)
	for i, v := range m2.InflationFactors(nl, 1, 2) {
		if v != 1 {
			t.Errorf("uncongested factor[%d] = %v", i, v)
		}
	}
}

func TestNewMapRejectsBadGrid(t *testing.T) {
	if _, err := NewMap(core100(), 0, 5, 1); err == nil {
		t.Error("expected error for zero-column grid")
	}
	if _, err := NewMap(core100(), 5, 0, 1); err == nil {
		t.Error("expected error for zero-row grid")
	}
	// NaN capacity falls back to the default rather than erroring.
	m, err := NewMap(core100(), 4, 4, math.NaN())
	if err != nil {
		t.Fatal(err)
	}
	if m.Capacity != 1 {
		t.Errorf("NaN capacity defaulted to %v, want 1", m.Capacity)
	}
}

func TestSinglePinNetIgnored(t *testing.T) {
	b := netlist.NewBuilder("sp")
	b.SetCore(core100())
	c := b.AddCell("c", 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}})
	nl, _ := b.Build()
	m := mustMap(NewMap(core100(), 4, 4, 1))
	m.AddNetlist(nl)
	if st := m.Stats(); st.Max != 0 {
		t.Errorf("single-pin net produced demand: %+v", st)
	}
}
