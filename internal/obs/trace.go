package obs

import (
	"sync"
	"time"
)

// maxSpans bounds the number of spans a tracer retains; spans started
// beyond the cap are timed into their parent's attributes but not stored
// individually (the drop count is reported in the span tree root).
const maxSpans = 16384

// Tracer records a tree of timed spans. The placement pipeline is
// sequential at stage granularity, so nesting is tracked with a simple
// mutex-guarded stack of open spans: StartSpan parents the new span under
// the innermost open span.
type Tracer struct {
	obs *Observer

	mu      sync.Mutex
	roots   []*Span
	stack   []*Span
	count   int
	dropped int
}

func newTracer() *Tracer { return &Tracer{} }

func (t *Tracer) reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.roots = nil
	t.stack = nil
	t.count = 0
	t.dropped = 0
}

// Span is one timed, optionally nested pipeline stage. All methods are
// nil-receiver safe, so producers can call through a disabled observer
// without guards.
type Span struct {
	tracer *Tracer

	Name string

	mu         sync.Mutex
	attrs      map[string]float64
	start      time.Time
	dur        time.Duration
	allocStart uint64
	allocDelta uint64
	children   []*Span
	ended      bool
	dropped    bool
}

// StartSpan opens a span named name, nested under the innermost open span.
// The returned span must be closed with End; a nil observer returns a nil
// span (End on nil is a no-op).
func (o *Observer) StartSpan(name string) *Span {
	if o == nil {
		return nil
	}
	t := o.tracer
	sp := &Span{tracer: t, Name: name, start: time.Now(), allocStart: o.readAllocs()}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count >= maxSpans {
		// Dropped spans are still timed into their caller's flow but not
		// retained; the loss is observable via the counter (and /status), so
		// a long run whose trace was truncated is detectable instead of
		// silently looking complete.
		t.dropped++
		sp.dropped = true
		o.Counter(MetricSpansDropped).Add(1)
		return sp
	}
	t.count++
	if n := len(t.stack); n > 0 {
		parent := t.stack[n-1]
		parent.mu.Lock()
		parent.children = append(parent.children, sp)
		parent.mu.Unlock()
	} else {
		t.roots = append(t.roots, sp)
	}
	t.stack = append(t.stack, sp)
	return sp
}

// SetAttr attaches a numeric attribute to the span; nil-safe.
func (s *Span) SetAttr(name string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = map[string]float64{}
	}
	s.attrs[name] = v
}

// End closes the span, recording wall time and (when enabled) the heap
// allocation delta. Safe on nil and idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	var obs *Observer
	if t != nil {
		obs = t.obs
	}
	allocEnd := obs.readAllocs()

	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	if allocEnd > s.allocStart {
		s.allocDelta = allocEnd - s.allocStart
	}
	dropped := s.dropped
	s.mu.Unlock()

	if t == nil || dropped {
		return
	}
	t.mu.Lock()
	// Pop the span from the open stack (usually the top; out-of-order ends
	// remove it wherever it is).
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			break
		}
	}
	t.mu.Unlock()
}

// Duration returns the span's recorded wall time (0 while open); nil-safe.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// SpanNode is the JSON form of a recorded span.
type SpanNode struct {
	Name     string             `json:"name"`
	Seconds  float64            `json:"seconds"`
	AllocsKB float64            `json:"allocs_kb,omitempty"`
	Attrs    map[string]float64 `json:"attrs,omitempty"`
	Children []*SpanNode        `json:"children,omitempty"`
	// Dropped on a root-level synthetic node reports spans discarded past
	// the tracer's retention cap.
	Dropped int `json:"dropped_spans,omitempty"`
}

func (s *Span) node() *SpanNode {
	s.mu.Lock()
	n := &SpanNode{
		Name:     s.Name,
		Seconds:  s.dur.Seconds(),
		AllocsKB: float64(s.allocDelta) / 1024,
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]float64, len(s.attrs))
		for k, v := range s.attrs {
			n.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		n.Children = append(n.Children, c.node())
	}
	return n
}

// Spans returns the recorded span forest as JSON-ready nodes. When spans
// were dropped past the retention cap, a synthetic trailing node reports
// the count.
func (o *Observer) Spans() []*SpanNode {
	if o == nil {
		return nil
	}
	t := o.tracer
	t.mu.Lock()
	roots := append([]*Span(nil), t.roots...)
	dropped := t.dropped
	t.mu.Unlock()
	out := make([]*SpanNode, 0, len(roots))
	for _, r := range roots {
		out = append(out, r.node())
	}
	if dropped > 0 {
		out = append(out, &SpanNode{Name: "(dropped)", Dropped: dropped})
	}
	return out
}
