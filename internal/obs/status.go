package obs

import "time"

// Status is the live view of the in-flight run served by the /status
// endpoint and embedded in the report.
type Status struct {
	Design    string    `json:"design"`
	Algorithm string    `json:"algorithm"`
	Cells     int       `json:"cells"`
	Nets      int       `json:"nets"`
	Pins      int       `json:"pins"`
	Phase     string    `json:"phase"`
	Iteration int       `json:"iteration"`
	HPWL      float64   `json:"hpwl"`
	Overflow  float64   `json:"overflow"`
	Lambda    float64   `json:"lambda"`
	Started   time.Time `json:"started"`
	Updated   time.Time `json:"updated"`
	Done      bool      `json:"done"`
	// SpansDropped counts tracer spans discarded past the retention cap; a
	// non-zero value flags the span tree as truncated.
	SpansDropped int `json:"spans_dropped"`
}

// Status returns a snapshot of the live run status; nil-safe (zero value).
func (o *Observer) Status() Status {
	if o == nil {
		return Status{}
	}
	o.mu.Lock()
	st := o.status
	o.mu.Unlock()
	t := o.tracer
	t.mu.Lock()
	st.SpansDropped = t.dropped
	t.mu.Unlock()
	return st
}
