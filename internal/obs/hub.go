package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Hub fans the observability surfaces of many concurrent placement runs —
// one Observer per run — into a single HTTP handler, the multi-tenant
// counterpart of Observer.Handler:
//
//	/metrics         every registered observer's registry in one Prometheus
//	                 exposition, each series labeled job="<name>"
//	/status          JSON map of every observer's live Status by name
//	/<name>/...      the named observer's own full surface (metrics, status,
//	                 report, pprof), exactly as Observer.Handler serves it
//
// Register/Unregister are safe concurrently with serving; a scrape sees a
// consistent snapshot of the membership at its start. Observer names become
// label values and path segments, so keep them to URL- and
// Prometheus-friendly characters (the job-server uses job IDs).
type Hub struct {
	mu      sync.Mutex
	entries map[string]*hubEntry
}

type hubEntry struct {
	o       *Observer
	handler http.Handler
}

// NewHub returns an empty observer hub.
func NewHub() *Hub { return &Hub{entries: map[string]*hubEntry{}} }

// Register adds (or replaces) the named observer. Nil observers are ignored.
func (h *Hub) Register(name string, o *Observer) {
	if h == nil || o == nil {
		return
	}
	h.mu.Lock()
	h.entries[name] = &hubEntry{o: o, handler: o.Handler()}
	h.mu.Unlock()
}

// Unregister removes the named observer; unknown names are a no-op.
func (h *Hub) Unregister(name string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	delete(h.entries, name)
	h.mu.Unlock()
}

// Get returns the named observer, or nil.
func (h *Hub) Get(name string) *Observer {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.entries[name]; ok {
		return e.o
	}
	return nil
}

// Names returns the registered observer names, sorted.
func (h *Hub) Names() []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.entries))
	for n := range h.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Statuses snapshots every registered observer's live Status by name (the
// per-run spans_dropped field makes truncated traces visible here).
func (h *Hub) Statuses() map[string]Status {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	entries := make(map[string]*hubEntry, len(h.entries))
	for n, e := range h.entries {
		entries[n] = e
	}
	h.mu.Unlock()
	out := make(map[string]Status, len(entries))
	for n, e := range entries {
		out[n] = e.o.Status()
	}
	return out
}

// labelSeries merges an extra label pair into a series name:
// "m" → `m{k="v"}`, and "m{a=...}" → `m{k="v",a=...}`.
func labelSeries(name, k, v string) string {
	pair := fmt.Sprintf("%s=%q", k, v)
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + "{" + pair + "," + name[i+1:]
	}
	return name + "{" + pair + "}"
}

// WritePrometheus renders every registered observer's metrics as one
// Prometheus text exposition. Series are labeled job="<name>"; HELP and
// TYPE headers appear once per base metric name across all observers, as
// the text format requires.
func (h *Hub) WritePrometheus(w io.Writer) error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	names := make([]string, 0, len(h.entries))
	for n := range h.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	observers := make([]*Observer, len(names))
	for i, n := range names {
		observers[i] = h.entries[n].o
	}
	h.mu.Unlock()

	type group struct {
		kind  byte
		help  string
		lines []string
	}
	groups := map[string]*group{}
	var order []string
	for i, o := range observers {
		job := names[i]
		r := o.Metrics()
		r.mu.Lock()
		regNames := append([]string(nil), r.names...)
		r.mu.Unlock()
		for _, name := range regNames {
			r.mu.Lock()
			kind, help := r.kind[name], r.help[name]
			c, g, hist := r.ctrs[name], r.gaug[name], r.hist[name]
			r.mu.Unlock()
			base := baseName(name)
			grp, ok := groups[base]
			if !ok {
				grp = &group{kind: kind, help: help}
				groups[base] = grp
				order = append(order, base)
			}
			switch kind {
			case 'c':
				grp.lines = append(grp.lines, fmt.Sprintf("%s %v", labelSeries(name, "job", job), c.Value()))
			case 'g':
				grp.lines = append(grp.lines, fmt.Sprintf("%s %v", labelSeries(name, "job", job), g.Value()))
			case 'h':
				grp.lines = append(grp.lines, labeledHistogramLines(name, job, hist)...)
			}
		}
	}
	sort.Strings(order)
	for _, base := range order {
		grp := groups[base]
		var kindName string
		switch grp.kind {
		case 'c':
			kindName = "counter"
		case 'g':
			kindName = "gauge"
		case 'h':
			kindName = "histogram"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", base, grp.help, base, kindName); err != nil {
			return err
		}
		for _, ln := range grp.lines {
			if _, err := fmt.Fprintln(w, ln); err != nil {
				return err
			}
		}
	}
	return nil
}

// labeledHistogramLines renders one observer's histogram with the job label
// merged into every bucket/sum/count series.
func labeledHistogramLines(name, job string, h *Histogram) []string {
	h.mu.Lock()
	bounds := append([]float64(nil), h.bounds...)
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()
	lines := make([]string, 0, len(bounds)+3)
	cum := uint64(0)
	for i, b := range bounds {
		cum += counts[i]
		lines = append(lines, fmt.Sprintf("%s_bucket{job=%q,le=\"%v\"} %d", name, job, b, cum))
	}
	cum += counts[len(counts)-1]
	lines = append(lines,
		fmt.Sprintf("%s_bucket{job=%q,le=\"+Inf\"} %d", name, job, cum),
		fmt.Sprintf("%s_sum{job=%q} %v", name, job, sum),
		fmt.Sprintf("%s_count{job=%q} %d", name, job, total))
	return lines
}

// Handler returns the hub's HTTP handler (see the type comment for routes).
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		h.WritePrometheus(w) //nolint:errcheck // best-effort over HTTP
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h.Statuses()) //nolint:errcheck // best-effort over HTTP
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		name, rest, _ := strings.Cut(strings.TrimPrefix(r.URL.Path, "/"), "/")
		h.mu.Lock()
		e := h.entries[name]
		h.mu.Unlock()
		if e == nil {
			http.NotFound(w, r)
			return
		}
		http.StripPrefix("/"+name, e.handler).ServeHTTP(w, r)
		_ = rest
	})
	return mux
}
