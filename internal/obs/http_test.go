package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	o := New()
	o.StartRun(RunInfo{Design: "adaptec1", Algorithm: "complx", Cells: 4})
	o.SetPhase("global")
	o.RecordIteration(IterSample{Iter: 0, Phi: 100, Overflow: 0.9})
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String(), resp.Header.Get("Content-Type")
	}

	code, body, ct := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(body, "# TYPE "+MetricIterations+" counter") ||
		!strings.Contains(body, MetricIterations+" 1") {
		t.Fatalf("/metrics body missing iteration counter:\n%s", body)
	}

	code, body, ct = get("/status")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/status = %d %q", code, ct)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status is not JSON: %v", err)
	}
	if st.Design != "adaptec1" || st.Phase != "global" || st.Iteration != 0 || st.Overflow != 0.9 {
		t.Fatalf("/status = %+v", st)
	}

	code, body, _ = get("/report")
	if code != http.StatusOK {
		t.Fatalf("/report status = %d", code)
	}
	rep, err := ReadReport(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/report: %v", err)
	}
	if rep.Design != "adaptec1" || len(rep.Trace) != 1 {
		t.Fatalf("/report = %+v", rep)
	}

	code, body, _ = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	code, _, _ = get("/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}

	code, body, _ = get("/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, `"complx"`) {
		t.Fatalf("/debug/vars = %d:\n%s", code, body)
	}

	code, body, _ = get("/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %d", code)
	}
	code, _, _ = get("/nope")
	if code != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", code)
	}
}
