package obs

import (
	"testing"
	"time"
)

// The nil-observer fast path is the cost every producer pays when
// observability is disabled: it must be a nil check and a branch, nothing
// more. Run with -benchmem to confirm 0 allocs/op.

func BenchmarkNilObserverSpan(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.StartSpan("x")
		sp.SetAttr("a", 1)
		sp.End()
	}
}

func BenchmarkNilObserverRecordIteration(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.RecordIteration(IterSample{Iter: i})
	}
}

func BenchmarkNilObserverRecordCG(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.RecordCG(10, 1e-7, true)
		o.AddSeconds(MetricCGSeconds, time.Millisecond)
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	o := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.StartSpan("x")
		sp.End()
	}
	b.StopTimer()
	o.Reset()
}

func BenchmarkEnabledCounterAdd(b *testing.B) {
	o := New()
	c := o.Counter(MetricCGIterations)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledRecordIteration(b *testing.B) {
	o := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.RecordIteration(IterSample{Iter: i, Phi: 1, Overflow: 0.5})
	}
}
