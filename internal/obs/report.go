package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Report is the machine-readable summary of one placement run: design and
// configuration metadata, the end-of-run result, the full per-iteration
// trace, the final metric snapshot and the recorded span tree. WriteJSON
// emits the whole report; WriteCSV emits the iteration trace as a flat
// convergence table (one row per global iteration) for plotting.
type Report struct {
	Schema    string `json:"schema"` // "complx-run-report/1"
	Design    string `json:"design"`
	Algorithm string `json:"algorithm"`
	Cells     int    `json:"cells"`
	Nets      int    `json:"nets"`
	Pins      int    `json:"pins"`

	Started  string  `json:"started,omitempty"`
	Finished string  `json:"finished,omitempty"`
	Seconds  float64 `json:"seconds"`

	Result  FinalStats         `json:"result"`
	Trace   []IterSample       `json:"trace"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Spans   []*SpanNode        `json:"spans,omitempty"`
}

// ReportSchema identifies the JSON report format version.
const ReportSchema = "complx-run-report/1"

// Report assembles the run report from everything recorded so far. It may
// be called on a finished or in-flight run; nil-safe (returns nil).
func (o *Observer) Report() *Report {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	st := o.status
	final := o.final
	trace := append([]IterSample(nil), o.trace...)
	o.mu.Unlock()

	r := &Report{
		Schema:    ReportSchema,
		Design:    st.Design,
		Algorithm: st.Algorithm,
		Cells:     st.Cells,
		Nets:      st.Nets,
		Pins:      st.Pins,
		Seconds:   st.Updated.Sub(st.Started).Seconds(),
		Result:    final,
		Trace:     trace,
		Metrics:   o.Metrics().Snapshot(),
		Spans:     o.Spans(),
	}
	if !st.Started.IsZero() {
		r.Started = st.Started.Format("2006-01-02T15:04:05.000Z07:00")
		r.Finished = st.Updated.Format("2006-01-02T15:04:05.000Z07:00")
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// TraceCSVHeader is the column order of the CSV iteration trace. The
// precond column repeats the run's resolved preconditioner name on every
// row so the flat table stays self-describing when traces from differently
// configured runs are concatenated for plotting.
var TraceCSVHeader = []string{
	"iter", "lambda", "phi", "phi_upper", "pi", "lagrangian", "overflow",
	"hpwl", "grid_nx", "cg_iters", "precond",
	"project_seconds", "assembly_seconds", "solve_seconds", "precond_seconds",
	"level", "member",
}

// WriteCSV writes the per-iteration convergence trace as CSV (see
// TraceCSVHeader for the column order).
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(TraceCSVHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, s := range r.Trace {
		rec := []string{
			strconv.Itoa(s.Iter), f(s.Lambda), f(s.Phi), f(s.PhiUpper),
			f(s.Pi), f(s.L), f(s.Overflow), f(s.HPWL),
			strconv.Itoa(s.GridNX), strconv.Itoa(s.CGIterations), r.Result.Precond,
			f(s.ProjectSeconds), f(s.AssemblySeconds), f(s.SolveSeconds), f(s.PrecondSeconds),
			strconv.Itoa(s.Level), strconv.Itoa(s.Member),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFiles writes base+".json" (full report) and base+".csv" (iteration
// trace) and returns the two paths.
func (r *Report) WriteFiles(base string) (jsonPath, csvPath string, err error) {
	jsonPath, csvPath = base+".json", base+".csv"
	jf, err := os.Create(jsonPath)
	if err != nil {
		return "", "", err
	}
	if err := r.WriteJSON(jf); err != nil {
		jf.Close()
		return "", "", fmt.Errorf("obs: write %s: %w", jsonPath, err)
	}
	if err := jf.Close(); err != nil {
		return "", "", err
	}
	cf, err := os.Create(csvPath)
	if err != nil {
		return "", "", err
	}
	if err := r.WriteCSV(cf); err != nil {
		cf.Close()
		return "", "", fmt.Errorf("obs: write %s: %w", csvPath, err)
	}
	if err := cf.Close(); err != nil {
		return "", "", err
	}
	return jsonPath, csvPath, nil
}

// ReadReport parses a JSON run report (the inverse of WriteJSON), used by
// cmd/experiments and tests to consume reports programmatically.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("obs: parse report: %w", err)
	}
	if rep.Schema != ReportSchema {
		return nil, fmt.Errorf("obs: unknown report schema %q (want %q)", rep.Schema, ReportSchema)
	}
	return &rep, nil
}
