package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	c := &Counter{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 4000 {
		t.Fatalf("counter = %v, want 4000", got)
	}
	c.Add(-1)
	if got := c.Value(); got != 4000 {
		t.Fatalf("counter after negative Add = %v, want unchanged", got)
	}
	var nilC *Counter
	nilC.Add(1)
	if nilC.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
}

func TestGauge(t *testing.T) {
	g := &Gauge{}
	g.Set(3.25)
	if got := g.Value(); got != 3.25 {
		t.Fatalf("gauge = %v", got)
	}
	var nilG *Gauge
	nilG.Set(1)
	if nilG.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5 (NaN dropped)", got)
	}
	if got := h.Sum(); got != 556.5 {
		t.Fatalf("sum = %v, want 556.5", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`h_bucket{le="1"} 2`,   // 0.5 and 1 (le is inclusive)
		`h_bucket{le="10"} 3`,  // + 5
		`h_bucket{le="100"} 4`, // + 50
		`h_bucket{le="+Inf"} 5`,
		"h_sum 556.5",
		"h_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	var nilH *Histogram
	nilH.Observe(1)
	if nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil histogram must read 0")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_ctr", "a counter").Add(2)
	r.Gauge("a_gauge", "a gauge").Set(1.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# HELP a_gauge a gauge\n# TYPE a_gauge gauge\na_gauge 1.5\n") {
		t.Fatalf("gauge block malformed:\n%s", out)
	}
	if !strings.Contains(out, "# HELP z_ctr a counter\n# TYPE z_ctr counter\nz_ctr 2\n") {
		t.Fatalf("counter block malformed:\n%s", out)
	}
	// Sorted by name: the gauge must come first.
	if strings.Index(out, "a_gauge") > strings.Index(out, "z_ctr") {
		t.Fatalf("exposition not sorted:\n%s", out)
	}
	var nilR *Registry
	if err := nilR.WritePrometheus(&buf); err != nil {
		t.Fatal("nil registry WritePrometheus must be a no-op")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("c", "h")
	c2 := r.Counter("c", "other help ignored")
	if c1 != c2 {
		t.Fatal("same name must return the same counter")
	}
	if r.Gauge("g", "h") != r.Gauge("g", "h") {
		t.Fatal("same name must return the same gauge")
	}
	if r.Histogram("h", "h", []float64{1}) != r.Histogram("h", "h", []float64{2}) {
		t.Fatal("same name must return the same histogram")
	}
	var nilR *Registry
	if nilR.Counter("c", "") != nil || nilR.Gauge("g", "") != nil ||
		nilR.Histogram("h", "", nil) != nil || nilR.Snapshot() != nil {
		t.Fatal("nil registry accessors must return nil")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Add(3)
	r.Gauge("g", "").Set(7)
	r.Histogram("h", "", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap["c"] != 3 || snap["g"] != 7 || snap["h_sum"] != 0.5 || snap["h_count"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestMetricCatalog(t *testing.T) {
	// Every cataloged metric has a help string; helpFor falls back for
	// ad-hoc names.
	for name := range metricHelp {
		if helpFor(name) == "complx placement metric" {
			t.Fatalf("metric %q uses the fallback help text", name)
		}
	}
	if helpFor("custom_metric") != "complx placement metric" {
		t.Fatal("unknown names must fall back to generic help")
	}
	if got := bucketsFor(MetricCGItersPerSolve); got[0] != 5 {
		t.Fatalf("CG buckets = %v", got)
	}
	if got := bucketsFor(MetricIterationSeconds); got[0] != 0.001 {
		t.Fatalf("duration buckets = %v", got)
	}
}

func TestPublishExpvar(t *testing.T) {
	o := New()
	o.Counter(MetricIterations).Add(5)
	o.PublishExpvar()
	v := expvar.Get("complx")
	if v == nil {
		t.Fatal("expvar variable complx not published")
	}
	var snap map[string]float64
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar value is not JSON: %v", err)
	}
	if snap[MetricIterations] != 5 {
		t.Fatalf("expvar snapshot = %v", snap)
	}
	// Re-publication from a second observer swaps the source without
	// panicking on a duplicate expvar name.
	o2 := New()
	o2.Counter(MetricIterations).Add(9)
	o2.PublishExpvar()
	if err := json.Unmarshal([]byte(expvar.Get("complx").String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap[MetricIterations] != 9 {
		t.Fatalf("expvar after re-publish = %v", snap)
	}
}
