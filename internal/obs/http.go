package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler returns the observability HTTP handler for this observer:
//
//	/              tiny index page linking the endpoints below
//	/metrics       Prometheus text exposition of the metrics registry
//	/status        live JSON status of the in-flight run
//	/report        full JSON run report (works mid-run too)
//	/debug/pprof/  the standard pprof index, profile, heap, trace, ...
//	/debug/vars    expvar JSON (includes the "complx" metric snapshot)
//
// The handlers are mounted on a private mux, so importing obs never touches
// http.DefaultServeMux. Safe to serve while a placement is running; all
// reads snapshot under the observer's lock.
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><head><title>complx observability</title></head><body>
<h1>complx observability</h1>
<ul>
<li><a href="/metrics">/metrics</a> — Prometheus text format</li>
<li><a href="/status">/status</a> — live run status (JSON)</li>
<li><a href="/report">/report</a> — full run report (JSON)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go profiling</li>
<li><a href="/debug/vars">/debug/vars</a> — expvar JSON</li>
</ul></body></html>`)
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Metrics().WritePrometheus(w)
	})

	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(o.Status())
	})

	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		o.Report().WriteJSON(w)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	o.PublishExpvar()
	mux.Handle("/debug/vars", expvar.Handler())

	return mux
}
