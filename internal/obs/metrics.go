package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric catalog: every metric the pipeline emits, by canonical name.
// DESIGN.md §9 documents the catalog; helpFor holds the per-metric help
// strings rendered in the Prometheus exposition.
const (
	MetricIterations       = "complx_iterations_total"
	MetricHPWL             = "complx_hpwl"
	MetricScaledHPWL       = "complx_scaled_hpwl"
	MetricOverflow         = "complx_overflow"
	MetricLambda           = "complx_lambda"
	MetricPi               = "complx_pi"
	MetricGridNX           = "complx_grid_nx"
	MetricPhaseChanges     = "complx_phase_changes_total"
	MetricIterationSeconds = "complx_iteration_seconds"
	MetricSpansDropped     = "complx_spans_dropped_total"

	MetricCGSolves          = "complx_cg_solves_total"
	MetricCGIterations      = "complx_cg_iterations_total"
	MetricCGUnconverged     = "complx_cg_unconverged_total"
	MetricCGItersPerSolve   = "complx_cg_iterations_per_solve"
	MetricCGActiveIteration = "complx_cg_active_iteration"
	MetricCGLastResidual    = "complx_cg_last_residual"

	MetricAssemblySeconds   = "complx_assembly_seconds_total"
	MetricCGSeconds         = "complx_cg_seconds_total"
	MetricPrecondSeconds    = "complx_precond_setup_seconds_total"
	MetricProjectionSeconds = "complx_projection_seconds_total"
	MetricLegalizeSeconds   = "complx_legalize_seconds_total"

	MetricPseudoWeightMin  = "complx_pseudonet_weight_min"
	MetricPseudoWeightMax  = "complx_pseudonet_weight_max"
	MetricPseudoWeightMean = "complx_pseudonet_weight_mean"

	MetricSpreadRegions  = "complx_spread_regions_total"
	MetricSpreadSweeps   = "complx_spread_sweeps_total"
	MetricLegalizedCells = "complx_legalize_cells_total"

	// Fault-tolerance catalog (DESIGN.md §10). Recovery attempts are
	// labeled per ladder rung: complx_recovery_attempts_total{rung="..."}.
	MetricRecoveryAttempts  = "complx_recovery_attempts_total"
	MetricRecoverySuccesses = "complx_recovery_successes_total"
	MetricCheckpointSaves   = "complx_checkpoint_saves_total"
	MetricCheckpointErrors  = "complx_checkpoint_errors_total"
	MetricCheckpointBytes   = "complx_checkpoint_bytes"
	MetricCheckpointIter    = "complx_checkpoint_iteration"
	MetricResumes           = "complx_resume_total"

	// Multilevel V-cycle catalog (DESIGN.md §13). Per-level series are
	// labeled with the V-cycle level they describe, e.g.
	// complx_level_seconds_total{level="2"} (level 0 = finest).
	MetricLevels       = "complx_levels"
	MetricLevelCells   = "complx_level_cells"
	MetricLevelSeconds = "complx_level_seconds_total"
	MetricLevelHPWL    = "complx_level_hpwl"

	// Portfolio search catalog (DESIGN.md §14). Per-member series are
	// labeled with the member index, e.g.
	// complx_portfolio_member_hpwl{member="2"}.
	// Daemon-hardening catalog (DESIGN.md §15). Emitted by cmd/complxd's
	// daemon-level observer: unlabeled, process-wide series on /metrics
	// next to the job-labeled per-run series.
	MetricJobsQuarantined   = "complx_jobs_quarantined_total"
	MetricAdmissionRejected = "complx_admission_rejected_total"
	MetricJobsShed          = "complx_jobs_shed_total"
	MetricJobPanics         = "complx_job_panics_total"
	MetricWatchdogCancels   = "complx_watchdog_cancels_total"
	MetricWatchdogActive    = "complx_watchdog_active"
	MetricRecoverCorrupt    = "complx_recover_corrupt_total"
	MetricJobsGCed          = "complx_jobs_gced_total"
	MetricQueueDepth        = "complx_queue_depth"
	MetricIntakePaused      = "complx_intake_paused"

	MetricPortfolioMembers       = "complx_portfolio_members"
	MetricPortfolioRound         = "complx_portfolio_round"
	MetricPortfolioMemberHPWL    = "complx_portfolio_member_hpwl"
	MetricPortfolioMemberSeconds = "complx_portfolio_member_seconds_total"
	MetricPortfolioCulls         = "complx_portfolio_culls_total"
	MetricPortfolioReseeds       = "complx_portfolio_reseeds_total"
	MetricPortfolioWinner        = "complx_portfolio_winner"
)

// helpFor returns the exposition help string for a cataloged metric name
// (generic fallback for ad-hoc names).
func helpFor(name string) string {
	if h, ok := metricHelp[baseName(name)]; ok {
		return h
	}
	return "complx placement metric"
}

// baseName strips a {label="..."} suffix from a metric name. The registry
// stores labeled series under their full name; HELP/TYPE exposition lines
// and the help catalog use the base name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

var metricHelp = map[string]string{
	MetricIterations:             "Global placement iterations completed.",
	MetricHPWL:                   "Half-perimeter wirelength of the current placement.",
	MetricScaledHPWL:             "ISPD-2006 scaled HPWL of the final placement.",
	MetricOverflow:               "Density overflow ratio of the current placement.",
	MetricLambda:                 "Current Lagrange multiplier lambda.",
	MetricPi:                     "Current L1 distance to the feasibility projection.",
	MetricGridNX:                 "Projection grid resolution of the current iteration.",
	MetricPhaseChanges:           "Pipeline phase transitions (global/legalize/detailed/done).",
	MetricSpansDropped:           "Spans discarded past the tracer's retention cap (a non-zero value means the trace is truncated).",
	MetricIterationSeconds:       "Wall-clock seconds per global placement iteration.",
	MetricCGSolves:               "Preconditioned-CG solves completed (one per dimension).",
	MetricCGIterations:           "Total CG inner iterations across all solves.",
	MetricCGUnconverged:          "CG solves that hit MaxIter before reaching tolerance.",
	MetricCGItersPerSolve:        "CG inner iterations per solve.",
	MetricCGActiveIteration:      "Inner iteration of the CG solve currently running.",
	MetricCGLastResidual:         "Relative residual last reported by a CG solve.",
	MetricAssemblySeconds:        "Wall-clock seconds spent assembling linear systems.",
	MetricCGSeconds:              "Wall-clock seconds spent inside CG solves.",
	MetricPrecondSeconds:         "Wall-clock seconds spent building/refreshing CG preconditioners.",
	MetricProjectionSeconds:      "Wall-clock seconds spent in feasibility projections.",
	MetricLegalizeSeconds:        "Wall-clock seconds spent in legalization.",
	MetricPseudoWeightMin:        "Minimum per-movable pseudonet multiplier this iteration.",
	MetricPseudoWeightMax:        "Maximum per-movable pseudonet multiplier this iteration.",
	MetricPseudoWeightMean:       "Mean per-movable pseudonet multiplier this iteration.",
	MetricSpreadRegions:          "Overfilled cluster regions processed by the spreader.",
	MetricSpreadSweeps:           "Cluster-and-spread sweeps executed by the spreader.",
	MetricLegalizedCells:         "Cells placed by the legalizers.",
	MetricRecoveryAttempts:       "Solver fallback ladder recovery attempts, by rung.",
	MetricRecoverySuccesses:      "Recovery attempts after which the solve succeeded.",
	MetricCheckpointSaves:        "Engine state checkpoints persisted.",
	MetricCheckpointErrors:       "Checkpoint persistence failures (the run continues).",
	MetricCheckpointBytes:        "Size of the last persisted checkpoint in bytes.",
	MetricCheckpointIter:         "Iteration of the last persisted checkpoint.",
	MetricResumes:                "Runs resumed from a checkpoint.",
	MetricLevels:                 "Levels in the multilevel V-cycle (1 = flat).",
	MetricLevelCells:             "Movable cells solved at a V-cycle level, by level.",
	MetricLevelSeconds:           "Wall-clock seconds spent solving a V-cycle level, by level.",
	MetricLevelHPWL:              "HPWL of the placement a V-cycle level handed down, by level.",
	MetricPortfolioMembers:       "Members in the portfolio search (0 = flat run).",
	MetricPortfolioRound:         "Last completed portfolio synchronization round.",
	MetricPortfolioMemberHPWL:    "Scalarized overflow-weighted HPWL of a portfolio member at the last round, by member.",
	MetricPortfolioMemberSeconds: "Wall-clock seconds spent solving a portfolio member's segments, by member.",
	MetricPortfolioCulls:         "Portfolio members culled at synchronization rounds.",
	MetricPortfolioReseeds:       "Portfolio members reseeded from the leader's forked checkpoint.",
	MetricPortfolioWinner:        "Member index of the portfolio winner.",
	MetricJobsQuarantined:        "Jobs quarantined by the crash-loop breaker after exhausting their attempt cap.",
	MetricAdmissionRejected:      "Job submissions rejected by admission control (queue full, intake paused, rate limited, body too large).",
	MetricJobsShed:               "Queued jobs shed under memory pressure (heap above the watermark).",
	MetricJobPanics:              "Worker panics converted to job failures instead of killing the daemon.",
	MetricWatchdogCancels:        "Jobs cancelled by the progress watchdog after making no progress for the stall window.",
	MetricWatchdogActive:         "Jobs currently watched by the progress watchdog.",
	MetricRecoverCorrupt:         "Corrupt job records skipped (with a logged warning) during queue recovery.",
	MetricJobsGCed:               "Terminal job directories removed by the retention janitor.",
	MetricQueueDepth:             "Jobs currently queued for a placement worker.",
	MetricIntakePaused:           "1 while the memory watermark has paused job intake, else 0.",
}

// bucketsFor returns histogram bucket bounds by metric name.
func bucketsFor(name string) []float64 {
	switch name {
	case MetricCGItersPerSolve:
		return []float64{5, 10, 25, 50, 100, 250, 500, 1000, 2500}
	default: // duration histograms
		return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
	}
}

// Counter is a monotonically increasing float64, safe for concurrent use.
type Counter struct{ bits atomic.Uint64 }

// Add increments the counter by v (v < 0 is ignored); nil-safe.
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current count; nil-safe (0).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a settable float64, safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v; nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value; nil-safe (0).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// counts are cumulative over le-bounds, plus +Inf, sum and count).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	total  uint64
}

// Observe records one sample; nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.total++
}

// Count returns the number of samples observed; nil-safe (0).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observed samples; nil-safe (0).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Registry holds named metrics. Get-or-create is mutex-guarded; reads and
// updates of the metric values themselves are lock-free (atomics) except
// histograms.
type Registry struct {
	mu    sync.Mutex
	names []string // registration order
	kind  map[string]byte
	help  map[string]string
	ctrs  map[string]*Counter
	gaug  map[string]*Gauge
	hist  map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		kind: map[string]byte{},
		help: map[string]string{},
		ctrs: map[string]*Counter{},
		gaug: map[string]*Gauge{},
		hist: map[string]*Histogram{},
	}
}

func (r *Registry) register(name, help string, kind byte) {
	if _, ok := r.kind[name]; !ok {
		r.kind[name] = kind
		r.help[name] = help
		r.names = append(r.names, name)
	}
}

// Counter returns the named counter, creating it on first use; nil-safe.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.ctrs[name]; ok {
		return c
	}
	r.register(name, help, 'c')
	c := &Counter{}
	r.ctrs[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use; nil-safe.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gaug[name]; ok {
		return g
	}
	r.register(name, help, 'g')
	g := &Gauge{}
	r.gaug[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use; nil-safe.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hist[name]; ok {
		return h
	}
	r.register(name, help, 'h')
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]uint64, len(h.bounds)+1)
	r.hist[name] = h
	return h
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (sorted by name, HELP and TYPE lines included).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	r.mu.Unlock()
	sort.Strings(names)
	lastBase := ""
	for _, name := range names {
		r.mu.Lock()
		kind, help := r.kind[name], r.help[name]
		c, g, h := r.ctrs[name], r.gaug[name], r.hist[name]
		r.mu.Unlock()
		// Labeled series ("name{label=...}") share one HELP/TYPE header
		// under their base name; sorting makes them adjacent.
		base := baseName(name)
		if base != lastBase {
			lastBase = base
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, help); err != nil {
				return err
			}
			var kindName string
			switch kind {
			case 'c':
				kindName = "counter"
			case 'g':
				kindName = "gauge"
			case 'h':
				kindName = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kindName); err != nil {
				return err
			}
		}
		switch kind {
		case 'c':
			if _, err := fmt.Fprintf(w, "%s %v\n", name, c.Value()); err != nil {
				return err
			}
		case 'g':
			if _, err := fmt.Fprintf(w, "%s %v\n", name, g.Value()); err != nil {
				return err
			}
		case 'h':
			if err := writePrometheusHistogram(w, name, h); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePrometheusHistogram(w io.Writer, name string, h *Histogram) error {
	h.mu.Lock()
	bounds := append([]float64(nil), h.bounds...)
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	cum := uint64(0)
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%v\"} %d\n", name, b, cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %v\n%s_count %d\n",
		name, cum, name, sum, name, total)
	return err
}

// Snapshot returns a flat name→value map of every counter and gauge plus
// histogram sums/counts — the expvar and report representation.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.names))
	for name, c := range r.ctrs {
		out[name] = c.Value()
	}
	for name, g := range r.gaug {
		out[name] = g.Value()
	}
	for name, h := range r.hist {
		out[name+"_sum"] = h.Sum()
		out[name+"_count"] = float64(h.Count())
	}
	return out
}

// expvar publication: a single package-level expvar variable "complx"
// renders the snapshot of the most recently published observer (expvar
// forbids duplicate names, so re-publication swaps the source atomically
// instead of registering twice).
var (
	expvarOnce sync.Once
	published  atomic.Pointer[Observer]
)

// PublishExpvar exposes the observer's metric snapshot as the expvar
// variable "complx" (served at /debug/vars). Safe to call repeatedly and
// from multiple observers; the latest publisher wins.
func (o *Observer) PublishExpvar() {
	if o == nil {
		return
	}
	published.Store(o)
	expvarOnce.Do(func() {
		expvar.Publish("complx", expvar.Func(func() any {
			if p := published.Load(); p != nil {
				return p.Metrics().Snapshot()
			}
			return map[string]float64{}
		}))
	})
}
