package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHubAggregatedMetrics(t *testing.T) {
	hub := NewHub()
	a := New()
	b := New()
	a.Counter(MetricCGIterations).Add(7)
	b.Counter(MetricCGIterations).Add(11)
	a.Gauge(MetricHPWL).Set(123.5)
	hub.Register("job-a", a)
	hub.Register("job-b", b)

	var sb strings.Builder
	if err := hub.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	// HELP/TYPE once per base name across both observers.
	if n := strings.Count(text, "# TYPE "+MetricCGIterations+" counter"); n != 1 {
		t.Fatalf("TYPE header for %s appears %d times, want 1\n%s", MetricCGIterations, n, text)
	}
	for _, want := range []string{
		MetricCGIterations + `{job="job-a"} 7`,
		MetricCGIterations + `{job="job-b"} 11`,
		MetricHPWL + `{job="job-a"} 123.5`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q\n%s", want, text)
		}
	}
}

func TestHubLabeledSeriesAndHistograms(t *testing.T) {
	hub := NewHub()
	o := New()
	// A pre-labeled series must gain the job label as the first pair.
	o.Counter(MetricRecoveryAttempts + `{rung="0"}`).Add(3)
	o.Histogram(MetricIterationSeconds).Observe(0.25)
	hub.Register("j1", o)

	var sb strings.Builder
	if err := hub.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if want := MetricRecoveryAttempts + `{job="j1",rung="0"} 3`; !strings.Contains(text, want) {
		t.Fatalf("exposition missing merged-label series %q\n%s", want, text)
	}
	if want := MetricIterationSeconds + `_count{job="j1"} 1`; !strings.Contains(text, want) {
		t.Fatalf("exposition missing histogram count %q\n%s", want, text)
	}
	if !strings.Contains(text, MetricIterationSeconds+`_bucket{job="j1",le="+Inf"} 1`) {
		t.Fatalf("exposition missing +Inf bucket\n%s", text)
	}
}

func TestHubHandlerRoutes(t *testing.T) {
	hub := NewHub()
	o := New()
	o.Gauge(MetricHPWL).Set(42)
	hub.Register("job-x", o)
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, `{job="job-x"}`) {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/status"); code != 200 || !strings.Contains(body, `"job-x"`) {
		t.Fatalf("/status: code=%d body=%q", code, body)
	} else {
		var m map[string]Status
		if err := json.Unmarshal([]byte(body), &m); err != nil {
			t.Fatalf("/status not a status map: %v", err)
		}
	}
	// Per-observer sub-route serves that observer's own surface.
	if code, body := get("/job-x/metrics"); code != 200 || !strings.Contains(body, MetricHPWL) {
		t.Fatalf("/job-x/metrics: code=%d body=%q", code, body)
	}
	if code, _ := get("/no-such-job/metrics"); code != 404 {
		t.Fatalf("unknown job route returned %d, want 404", code)
	}

	hub.Unregister("job-x")
	if code, _ := get("/job-x/metrics"); code != 404 {
		t.Fatalf("unregistered job route returned %d, want 404", code)
	}
	if hub.Get("job-x") != nil {
		t.Fatal("Get after Unregister should be nil")
	}
}

// TestSpansDroppedSurfaced overflows the tracer's span cap and checks the
// loss is visible on all three surfaces: the counter, /status, and the
// synthetic span node — the fix for the cap silently truncating traces.
func TestSpansDroppedSurfaced(t *testing.T) {
	o := New()
	for i := 0; i < maxSpans+5; i++ {
		o.StartSpan("s").End()
	}
	if got := o.Counter(MetricSpansDropped).Value(); got != 5 {
		t.Fatalf("%s = %v, want 5", MetricSpansDropped, got)
	}
	if st := o.Status(); st.SpansDropped != 5 {
		t.Fatalf("Status().SpansDropped = %d, want 5", st.SpansDropped)
	}
	nodes := o.Spans()
	last := nodes[len(nodes)-1]
	if last.Dropped != 5 {
		t.Fatalf("trailing span node Dropped = %d, want 5", last.Dropped)
	}
}
