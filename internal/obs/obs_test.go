package obs

import (
	"bytes"
	"encoding/csv"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilObserverSafe(t *testing.T) {
	// Every exported method must be callable through a nil observer.
	var o *Observer
	o.StartRun(RunInfo{Design: "d"})
	o.SetPhase("global")
	o.RecordIteration(IterSample{Iter: 1})
	o.RecordCG(10, 1e-7, true)
	o.RecordPseudoWeights([]float64{1, 2})
	o.AddSeconds(MetricCGSeconds, time.Second)
	o.AddCount(MetricSpreadSweeps, 1)
	o.SetGauge(MetricLambda, 0.5)
	o.FinishRun(FinalStats{})
	o.Reset()
	o.PublishExpvar()
	sp := o.StartSpan("x")
	if sp != nil {
		t.Fatalf("nil observer StartSpan = %v, want nil", sp)
	}
	sp.SetAttr("a", 1)
	sp.End()
	if d := sp.Duration(); d != 0 {
		t.Fatalf("nil span Duration = %v, want 0", d)
	}
	if got := o.Status(); got != (Status{}) {
		t.Fatalf("nil observer Status = %+v, want zero", got)
	}
	if o.Trace() != nil || o.Spans() != nil || o.Report() != nil || o.Metrics() != nil {
		t.Fatal("nil observer accessors must return nil")
	}
	if o.CGProgress() != nil {
		t.Fatal("nil observer CGProgress must be nil so the solver skips it")
	}
	o.Counter("c").Add(1)
	o.Gauge("g").Set(1)
	o.Histogram("h").Observe(1)
}

func TestNilObserverZeroAlloc(t *testing.T) {
	var o *Observer
	n := testing.AllocsPerRun(100, func() {
		sp := o.StartSpan("x")
		sp.SetAttr("a", 1)
		sp.End()
		o.RecordIteration(IterSample{})
		o.RecordCG(3, 0, true)
		o.AddSeconds(MetricCGSeconds, time.Millisecond)
	})
	if n != 0 {
		t.Fatalf("nil observer allocated %v objects per run, want 0", n)
	}
}

func TestObserverLifecycle(t *testing.T) {
	o := New()
	o.StartRun(RunInfo{Design: "adaptec1", Algorithm: "complx", Cells: 10, Nets: 5, Pins: 20})
	o.SetPhase("global")
	o.RecordCG(40, 1e-7, true)
	o.RecordIteration(IterSample{Iter: 0, Lambda: 0.1, Phi: 100, PhiUpper: 150, Pi: 50, L: 105, Overflow: 0.8, GridNX: 8})
	o.RecordCG(60, 1e-7, true)
	o.RecordIteration(IterSample{Iter: 1, Lambda: 0.2, Phi: 110, PhiUpper: 140, Pi: 30, L: 116, Overflow: 0.5, GridNX: 16})
	o.SetPhase("legalize")
	o.FinishRun(FinalStats{HPWL: 120, OverflowPercent: 2, Iterations: 2, Converged: true, Legalized: true})

	st := o.Status()
	if !st.Done || st.Phase != "done" || st.Design != "adaptec1" || st.HPWL != 120 {
		t.Fatalf("final status = %+v", st)
	}
	tr := o.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace length = %d, want 2", len(tr))
	}
	// Per-iteration CG counts are derived as deltas of the cumulative counter.
	if tr[0].CGIterations != 40 || tr[1].CGIterations != 60 {
		t.Fatalf("CG deltas = %d, %d; want 40, 60", tr[0].CGIterations, tr[1].CGIterations)
	}
	if got := o.Counter(MetricIterations).Value(); got != 2 {
		t.Fatalf("iterations counter = %v, want 2", got)
	}
	if got := o.Gauge(MetricOverflow).Value(); got != 0.5 {
		t.Fatalf("overflow gauge = %v, want 0.5", got)
	}

	// Reset clears run state but keeps cumulative metric values.
	o.Reset()
	if got := o.Status(); got != (Status{}) {
		t.Fatalf("status after Reset = %+v", got)
	}
	if len(o.Trace()) != 0 || len(o.Spans()) != 0 {
		t.Fatal("trace/spans must be empty after Reset")
	}
	if got := o.Counter(MetricIterations).Value(); got != 2 {
		t.Fatalf("counter after Reset = %v, want 2 (counters are cumulative)", got)
	}
}

func TestSpanNesting(t *testing.T) {
	o := New()
	root := o.StartSpan("global")
	child := o.StartSpan("solve")
	grand := o.StartSpan("cg")
	grand.SetAttr("iters", 12)
	grand.End()
	child.End()
	sib := o.StartSpan("project")
	sib.End()
	root.End()
	top := o.StartSpan("legalize")
	top.End()

	nodes := o.Spans()
	if len(nodes) != 2 {
		t.Fatalf("got %d roots, want 2", len(nodes))
	}
	g := nodes[0]
	if g.Name != "global" || len(g.Children) != 2 {
		t.Fatalf("root = %q with %d children, want global with 2", g.Name, len(g.Children))
	}
	if g.Children[0].Name != "solve" || g.Children[1].Name != "project" {
		t.Fatalf("children = %q, %q", g.Children[0].Name, g.Children[1].Name)
	}
	cg := g.Children[0].Children
	if len(cg) != 1 || cg[0].Name != "cg" || cg[0].Attrs["iters"] != 12 {
		t.Fatalf("grandchild = %+v", cg)
	}
	if nodes[1].Name != "legalize" {
		t.Fatalf("second root = %q", nodes[1].Name)
	}
	if root.Duration() <= 0 {
		t.Fatal("ended span must have positive duration")
	}
	// End is idempotent.
	d := root.Duration()
	root.End()
	if root.Duration() != d {
		t.Fatal("second End must not change duration")
	}
}

func TestSpanCap(t *testing.T) {
	o := New()
	for i := 0; i < maxSpans+10; i++ {
		o.StartSpan("s").End()
	}
	nodes := o.Spans()
	last := nodes[len(nodes)-1]
	if last.Name != "(dropped)" || last.Dropped != 10 {
		t.Fatalf("drop node = %+v, want 10 dropped", last)
	}
	if len(nodes) != maxSpans+1 {
		t.Fatalf("retained %d nodes, want %d", len(nodes)-1, maxSpans)
	}
}

func TestSpanConcurrentAttrs(t *testing.T) {
	// SetAttr must be safe from concurrent goroutines (x/y CG solves).
	o := New()
	sp := o.StartSpan("solve")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp.SetAttr("a", float64(i))
			}
		}(g)
	}
	wg.Wait()
	sp.End()
}

func TestReportRoundTrip(t *testing.T) {
	o := New()
	o.StartRun(RunInfo{Design: "gen", Algorithm: "complx", Cells: 3, Nets: 2, Pins: 6})
	sp := o.StartSpan("global")
	o.RecordIteration(IterSample{Iter: 0, Lambda: 0.1, Phi: 10, Overflow: 0.9, GridNX: 8,
		ProjectSeconds: 0.25, AssemblySeconds: 0.5, SolveSeconds: 1})
	sp.End()
	o.FinishRun(FinalStats{HPWL: 12, Iterations: 1, Converged: true})

	rep := o.Report()
	if rep.Schema != ReportSchema || rep.Design != "gen" || len(rep.Trace) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Started == "" || rep.Finished == "" {
		t.Fatal("report must carry start/finish timestamps")
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Design != rep.Design || back.Result.HPWL != 12 || len(back.Trace) != 1 ||
		back.Trace[0].SolveSeconds != 1 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}

	if _, err := ReadReport(strings.NewReader(`{"schema":"bogus/9"}`)); err == nil {
		t.Fatal("ReadReport must reject unknown schemas")
	}
}

func TestReportCSV(t *testing.T) {
	o := New()
	o.StartRun(RunInfo{Design: "gen", Algorithm: "complx"})
	o.RecordIteration(IterSample{Iter: 0, Lambda: 0.5, Phi: 10, PhiUpper: 20, Pi: 5, L: 12.5, Overflow: 0.75, GridNX: 8})
	o.RecordIteration(IterSample{Iter: 1, Lambda: 1, Phi: 11, PhiUpper: 18, Pi: 3, L: 14, Overflow: 0.5, GridNX: 16})
	rep := o.Report()

	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d CSV rows, want header + 2", len(recs))
	}
	if strings.Join(recs[0], ",") != strings.Join(TraceCSVHeader, ",") {
		t.Fatalf("header = %v", recs[0])
	}
	if recs[1][0] != "0" || recs[1][1] != "0.5" || recs[2][6] != "0.5" {
		t.Fatalf("rows = %v / %v", recs[1], recs[2])
	}
}

func TestWriteFiles(t *testing.T) {
	o := New()
	o.StartRun(RunInfo{Design: "gen", Algorithm: "complx"})
	o.RecordIteration(IterSample{Iter: 0, Phi: 10, Overflow: 1})
	o.FinishRun(FinalStats{HPWL: 10})

	base := filepath.Join(t.TempDir(), "run")
	jsonPath, csvPath, err := o.Report().WriteFiles(base)
	if err != nil {
		t.Fatal(err)
	}
	jf, err := os.Open(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	rep, err := ReadReport(jf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.HPWL != 10 {
		t.Fatalf("HPWL from file = %v", rep.Result.HPWL)
	}
	cb, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(cb), "iter,") {
		t.Fatalf("csv = %q", cb)
	}
}

func TestRecordPseudoWeights(t *testing.T) {
	o := New()
	o.RecordPseudoWeights([]float64{2, 8, 5})
	if min := o.Gauge(MetricPseudoWeightMin).Value(); min != 2 {
		t.Fatalf("min = %v", min)
	}
	if max := o.Gauge(MetricPseudoWeightMax).Value(); max != 8 {
		t.Fatalf("max = %v", max)
	}
	if mean := o.Gauge(MetricPseudoWeightMean).Value(); mean != 5 {
		t.Fatalf("mean = %v", mean)
	}
	o.RecordPseudoWeights(nil) // must not panic
}

func TestCGProgress(t *testing.T) {
	o := New()
	cb := o.CGProgress()
	if cb == nil {
		t.Fatal("enabled observer must return a progress callback")
	}
	cb(7, 1e-3)
	if got := o.Gauge(MetricCGActiveIteration).Value(); got != 7 {
		t.Fatalf("active iteration = %v", got)
	}
	if got := o.Gauge(MetricCGLastResidual).Value(); got != 1e-3 {
		t.Fatalf("residual = %v", got)
	}
}

func TestRecordCGUnconverged(t *testing.T) {
	o := New()
	o.RecordCG(100, 0.5, false)
	if got := o.Counter(MetricCGUnconverged).Value(); got != 1 {
		t.Fatalf("unconverged = %v", got)
	}
	if got := o.Histogram(MetricCGItersPerSolve).Count(); got != 1 {
		t.Fatalf("histogram count = %v", got)
	}
}

func TestTrackAllocs(t *testing.T) {
	o := New()
	o.TrackAllocs = true
	sp := o.StartSpan("allocs")
	_ = make([]byte, 1<<20)
	sp.End()
	n := o.Spans()[0]
	if n.AllocsKB <= 0 {
		t.Fatalf("AllocsKB = %v, want > 0 with TrackAllocs", n.AllocsKB)
	}
}

func TestObserverConcurrency(t *testing.T) {
	// Mixed concurrent producers must be race-free (run under -race in CI).
	o := New()
	o.StartRun(RunInfo{Design: "race"})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch g % 4 {
				case 0:
					o.RecordCG(i, 1e-6, true)
				case 1:
					o.RecordIteration(IterSample{Iter: i, Overflow: 0.5})
				case 2:
					o.Counter(MetricSpreadSweeps).Add(1)
					o.Gauge(MetricLambda).Set(float64(i))
				case 3:
					sp := o.StartSpan("s")
					sp.SetAttr("i", float64(i))
					sp.End()
				}
			}
		}(g)
	}
	wg.Wait()
	if o.Report() == nil {
		t.Fatal("report must be assembleable after concurrent recording")
	}
}

func TestIterSampleStatusHPWL(t *testing.T) {
	// Lagrangian loops set Phi, overflow loops set HPWL; /status shows
	// whichever is present.
	o := New()
	o.RecordIteration(IterSample{Iter: 0, Phi: 42})
	if got := o.Status().HPWL; got != 42 {
		t.Fatalf("status HPWL from Phi = %v", got)
	}
	o.RecordIteration(IterSample{Iter: 1, HPWL: 99})
	if got := o.Status().HPWL; got != 99 {
		t.Fatalf("status HPWL from HPWL = %v", got)
	}
}

func TestFinishRunNonFinite(t *testing.T) {
	// NaN survives JSON-free paths (gauges); report marshalling must not be
	// asked to encode NaN, so FinishRun stores it as-is and the caller is
	// responsible — but gauges must accept it without panicking.
	o := New()
	o.Gauge(MetricLambda).Set(math.NaN())
	if v := o.Gauge(MetricLambda).Value(); !math.IsNaN(v) {
		t.Fatalf("gauge NaN round-trip = %v", v)
	}
}
