// Package obs is the structured observability layer of the placement
// engine: a span-based tracer for nested pipeline stages (parse → assemble →
// CG solve → projection → legalization → detailed), a metrics registry
// (counters, gauges, histograms) exported in Prometheus text format and via
// expvar, a machine-readable run report (JSON summary + CSV iteration
// trace), and an HTTP handler serving /metrics, /status (live JSON of the
// in-flight run) and /debug/pprof.
//
// The package plugs into the engine's Monitor seam and is wired through the
// whole stack — complx.Options.Observer, engine.Loop / engine.OverflowLoop,
// qp (assembly + CG kernel spans), sparse (per-CG-iteration progress
// callbacks), spread (region/sweep counters) and both legalizers — so every
// placer (ComPLx and all baselines) is instrumented identically.
//
// # Zero-cost when disabled
//
// Every producer holds a *Observer that may be nil; every exported method
// of Observer and Span is safe to call on a nil receiver and returns
// immediately. The disabled fast path is therefore one nil check and a
// branch per call site — no allocation, no atomic, no time.Now (verified by
// TestNilObserverZeroAlloc and BenchmarkNilObserver).
//
// # Non-perturbation
//
// Instrumentation only reads placement state (HPWL, overflow, λ) and
// records wall-clock; it never reorders or alters a floating-point
// operation, so placements with an observer attached are bitwise identical
// to unobserved runs (pinned by the golden tests in internal/core and
// internal/baseline).
//
// obs depends only on the standard library, so every internal package may
// import it without cycles.
package obs

import (
	"runtime"
	"sync"
	"time"
)

// Observer is the hub of one placement run's telemetry: a tracer, a metrics
// registry, the live status of the in-flight run, and the accumulating
// iteration trace for the final report. A nil *Observer disables all
// recording at near-zero cost; all methods are nil-receiver safe.
//
// An Observer may be shared between goroutines (the qp x/y CG solves report
// concurrently); one Observer should observe one placement run at a time —
// reuse across sequential runs is fine after Reset.
type Observer struct {
	reg    *Registry
	tracer *Tracer

	// TrackAllocs enables heap-allocation deltas on spans via
	// runtime.ReadMemStats at span start/end. Off by default: ReadMemStats
	// briefly stops the world, which distorts wall-clock timings on large
	// heaps. It never affects placement results either way.
	TrackAllocs bool

	mu       sync.Mutex
	status   Status
	trace    []IterSample
	final    FinalStats
	finished bool
	// lastCG tracks the CG-iteration counter at the previous RecordIteration
	// so per-iteration CG counts can be derived as deltas.
	lastCG float64
}

// New returns an enabled Observer with an empty registry and tracer.
func New() *Observer {
	o := &Observer{
		reg:    NewRegistry(),
		tracer: newTracer(),
	}
	o.tracer.obs = o
	return o
}

// Metrics returns the observer's registry, or nil for a nil observer.
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Reset clears the trace, tracer, status and report state so the observer
// can watch a fresh run. Metric values persist (counters are cumulative
// across runs, Prometheus-style).
func (o *Observer) Reset() {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.trace = nil
	o.status = Status{}
	o.final = FinalStats{}
	o.finished = false
	o.lastCG = 0
	o.tracer.reset()
}

// RunInfo describes the design and configuration of a starting run.
type RunInfo struct {
	Design    string
	Algorithm string
	Cells     int
	Nets      int
	Pins      int
}

// StartRun records the run metadata and stamps the start time.
func (o *Observer) StartRun(info RunInfo) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.status.Design = info.Design
	o.status.Algorithm = info.Algorithm
	o.status.Cells = info.Cells
	o.status.Nets = info.Nets
	o.status.Pins = info.Pins
	o.status.Started = time.Now()
	o.status.Updated = o.status.Started
	o.status.Done = false
}

// SetPhase updates the live phase label ("global", "legalize", "detailed",
// "done") shown by /status.
func (o *Observer) SetPhase(phase string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.status.Phase = phase
	o.status.Updated = time.Now()
	o.mu.Unlock()
	o.Counter(MetricPhaseChanges).Add(1)
}

// FinalStats is the end-of-run summary recorded by FinishRun and embedded
// in the report.
type FinalStats struct {
	HPWL            float64 `json:"hpwl"`
	WeightedHPWL    float64 `json:"weighted_hpwl"`
	ScaledHPWL      float64 `json:"scaled_hpwl"`
	OverflowPercent float64 `json:"overflow_percent"`
	FinalLambda     float64 `json:"final_lambda"`
	DualityGap      float64 `json:"duality_gap"`
	Iterations      int     `json:"iterations"`
	Converged       bool    `json:"converged"`
	Cancelled       bool    `json:"cancelled"`
	Legalized       bool    `json:"legalized"`
	Detailed        bool    `json:"detailed"`
	LegalViolations int     `json:"legal_violations"`
	TotalSeconds    float64 `json:"total_seconds"`
	// Precond is the resolved CG preconditioner of the run ("jacobi",
	// "ssor", "ic0", "mg"; empty for flows without a quadratic solver) and
	// CGIters the total CG inner iterations spent, both dimensions.
	Precond string `json:"precond,omitempty"`
	CGIters int    `json:"cg_iters,omitempty"`
}

// FinishRun records the end-of-run summary, stamps the finish time and
// marks the live status done.
func (o *Observer) FinishRun(f FinalStats) {
	if o == nil {
		return
	}
	o.Gauge(MetricHPWL).Set(f.HPWL)
	o.Gauge(MetricScaledHPWL).Set(f.ScaledHPWL)
	o.Gauge(MetricLambda).Set(f.FinalLambda)
	o.mu.Lock()
	defer o.mu.Unlock()
	o.final = f
	o.finished = true
	o.status.Done = true
	o.status.Phase = "done"
	o.status.HPWL = f.HPWL
	o.status.Updated = time.Now()
}

// IterSample is one iteration of the global placement loop as recorded in
// the trace: the ComPLx/SimPL loops fill the Lagrangian fields, the
// overflow-driven baselines fill Iter/Overflow/HPWL only.
type IterSample struct {
	Iter     int     `json:"iter"`
	Lambda   float64 `json:"lambda,omitempty"`
	Phi      float64 `json:"phi,omitempty"`
	PhiUpper float64 `json:"phi_upper,omitempty"`
	Pi       float64 `json:"pi,omitempty"`
	L        float64 `json:"lagrangian,omitempty"`
	Overflow float64 `json:"overflow"`
	HPWL     float64 `json:"hpwl,omitempty"`
	GridNX   int     `json:"grid_nx,omitempty"`
	// Level is the multilevel V-cycle level the iteration ran at (0 for
	// flat placement and the finest level, higher = coarser).
	Level int `json:"level,omitempty"`
	// Member is the portfolio member the iteration belongs to (0 for flat
	// runs and the portfolio's unperturbed base member).
	Member int `json:"member,omitempty"`
	// CGIterations is the number of CG inner iterations spent since the
	// previous sample (both dimensions); filled automatically from the
	// metrics registry when zero.
	CGIterations int `json:"cg_iterations,omitempty"`
	// Kernel wall-clock spent on this iteration, in seconds.
	ProjectSeconds  float64 `json:"project_seconds,omitempty"`
	AssemblySeconds float64 `json:"assembly_seconds,omitempty"`
	SolveSeconds    float64 `json:"solve_seconds,omitempty"`
	PrecondSeconds  float64 `json:"precond_seconds,omitempty"`
}

// RecordIteration appends one iteration sample to the trace, refreshes the
// live status and updates the iteration-level metrics.
func (o *Observer) RecordIteration(s IterSample) {
	if o == nil {
		return
	}
	cg := o.Counter(MetricCGIterations).Value()
	o.mu.Lock()
	if s.CGIterations == 0 {
		s.CGIterations = int(cg - o.lastCG)
	}
	o.lastCG = cg
	o.trace = append(o.trace, s)
	o.status.Iteration = s.Iter
	o.status.HPWL = s.Phi + s.HPWL // exactly one is set per loop family
	o.status.Overflow = s.Overflow
	o.status.Lambda = s.Lambda
	o.status.Updated = time.Now()
	o.mu.Unlock()

	o.Counter(MetricIterations).Add(1)
	o.Gauge(MetricHPWL).Set(s.Phi + s.HPWL)
	o.Gauge(MetricOverflow).Set(s.Overflow)
	o.Gauge(MetricLambda).Set(s.Lambda)
	o.Gauge(MetricPi).Set(s.Pi)
	o.Gauge(MetricGridNX).Set(float64(s.GridNX))
	if sec := s.ProjectSeconds + s.AssemblySeconds + s.SolveSeconds; sec > 0 {
		o.Histogram(MetricIterationSeconds).Observe(sec)
	}
}

// Trace returns a copy of the iteration samples recorded so far.
func (o *Observer) Trace() []IterSample {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]IterSample, len(o.trace))
	copy(out, o.trace)
	return out
}

// RecordCG accumulates one finished CG solve (one dimension): total inner
// iterations, per-solve histogram, and the last relative residual.
func (o *Observer) RecordCG(iterations int, residual float64, converged bool) {
	if o == nil {
		return
	}
	o.Counter(MetricCGSolves).Add(1)
	o.Counter(MetricCGIterations).Add(float64(iterations))
	o.Histogram(MetricCGItersPerSolve).Observe(float64(iterations))
	o.Gauge(MetricCGLastResidual).Set(residual)
	if !converged {
		o.Counter(MetricCGUnconverged).Add(1)
	}
}

// CGProgress returns the per-CG-iteration progress callback for
// sparse.CGOptions, or nil for a nil observer (so the solver skips the call
// entirely). The callback only updates two gauges and is safe to invoke
// from the concurrent x/y solve goroutines.
func (o *Observer) CGProgress() func(iter int, relResidual float64) {
	if o == nil {
		return nil
	}
	active := o.Gauge(MetricCGActiveIteration)
	res := o.Gauge(MetricCGLastResidual)
	return func(iter int, relResidual float64) {
		active.Set(float64(iter))
		res.Set(relResidual)
	}
}

// RecordPseudoWeights records min/mean/max statistics of the per-movable
// pseudonet multipliers λ_i stamped this iteration.
func (o *Observer) RecordPseudoWeights(lambdas []float64) {
	if o == nil || len(lambdas) == 0 {
		return
	}
	min, max, sum := lambdas[0], lambdas[0], 0.0
	for _, v := range lambdas {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	o.Gauge(MetricPseudoWeightMin).Set(min)
	o.Gauge(MetricPseudoWeightMax).Set(max)
	o.Gauge(MetricPseudoWeightMean).Set(sum / float64(len(lambdas)))
}

// AddSeconds accumulates kernel wall-clock into the named counter.
func (o *Observer) AddSeconds(name string, d time.Duration) {
	if o == nil {
		return
	}
	o.Counter(name).Add(d.Seconds())
}

// AddCount adds n to the named counter.
func (o *Observer) AddCount(name string, n float64) {
	if o == nil {
		return
	}
	o.Counter(name).Add(n)
}

// SetGauge sets the named gauge.
func (o *Observer) SetGauge(name string, v float64) {
	if o == nil {
		return
	}
	o.Gauge(name).Set(v)
}

// Counter returns the named counter (get-or-create); nil-safe.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(name, helpFor(name))
}

// Gauge returns the named gauge (get-or-create); nil-safe.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.reg.Gauge(name, helpFor(name))
}

// Histogram returns the named histogram (get-or-create); nil-safe.
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.reg.Histogram(name, helpFor(name), bucketsFor(name))
}

// readAllocs reads the cumulative heap allocation counter when alloc
// tracking is enabled; 0 otherwise.
func (o *Observer) readAllocs() uint64 {
	if o == nil || !o.TrackAllocs {
		return 0
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}
