package density

import (
	"math"
	"testing"

	"complx/internal/geom"
	"complx/internal/netlist"
)

func core100() geom.Rect { return geom.Rect{XMax: 100, YMax: 100} }

func TestNewGridGeometry(t *testing.T) {
	g := mustGrid(NewGrid(core100(), 10, 5, 1.0))
	if g.BinW != 10 || g.BinH != 20 {
		t.Errorf("bin dims = %v x %v", g.BinW, g.BinH)
	}
	r := g.BinRect(1, 2)
	want := geom.Rect{XMin: 10, YMin: 40, XMax: 20, YMax: 60}
	if r != want {
		t.Errorf("BinRect = %v, want %v", r, want)
	}
	if g.Capacity(0, 0) != 200 {
		t.Errorf("capacity = %v", g.Capacity(0, 0))
	}
}

// mustGrid unwraps a grid constructor in tests where the inputs are known
// good.
func mustGrid(g *Grid, err error) *Grid {
	if err != nil {
		panic(err)
	}
	return g
}

func TestNewGridRejectsBadInputs(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func() (*Grid, error)
	}{
		{"zero nx", func() (*Grid, error) { return NewGrid(core100(), 0, 5, 1) }},
		{"zero target", func() (*Grid, error) { return NewGrid(core100(), 5, 5, 0) }},
		{"target above 1", func() (*Grid, error) { return NewGrid(core100(), 5, 5, 1.5) }},
		{"NaN target", func() (*Grid, error) { return NewGrid(core100(), 5, 5, math.NaN()) }},
		{"empty core", func() (*Grid, error) { return NewGrid(geom.Rect{}, 5, 5, 1) }},
	} {
		if _, err := tc.fn(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestTargetScalesCapacity(t *testing.T) {
	g := mustGrid(NewGrid(core100(), 10, 10, 0.5))
	if g.Capacity(3, 3) != 50 {
		t.Errorf("capacity = %v, want 50", g.Capacity(3, 3))
	}
	if g.Free(3, 3) != 100 {
		t.Errorf("free = %v, want 100", g.Free(3, 3))
	}
}

func TestAddObstacle(t *testing.T) {
	g := mustGrid(NewGrid(core100(), 10, 10, 1.0))
	// Obstacle covers bin (0,0) fully and half of bin (1,0).
	g.AddObstacle(geom.Rect{XMin: 0, YMin: 0, XMax: 15, YMax: 10})
	if g.Free(0, 0) != 0 || g.Capacity(0, 0) != 0 {
		t.Errorf("bin (0,0) free=%v cap=%v", g.Free(0, 0), g.Capacity(0, 0))
	}
	if g.Free(1, 0) != 50 {
		t.Errorf("bin (1,0) free = %v", g.Free(1, 0))
	}
	if g.Free(2, 0) != 100 {
		t.Errorf("bin (2,0) free = %v", g.Free(2, 0))
	}
	// Overlapping obstacles never drive free below zero.
	g.AddObstacle(geom.Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10})
	if g.Free(0, 0) != 0 {
		t.Errorf("free went negative: %v", g.Free(0, 0))
	}
}

func TestAddUsageSplitsAcrossBins(t *testing.T) {
	g := mustGrid(NewGrid(core100(), 10, 10, 1.0))
	// A 10x10 rect centered on the corner shared by 4 bins.
	g.AddUsage(geom.Rect{XMin: 5, YMin: 5, XMax: 15, YMax: 15})
	for _, c := range [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
		if got := g.Usage(c[0], c[1]); got != 25 {
			t.Errorf("usage(%v) = %v, want 25", c, got)
		}
	}
	if g.TotalUsage() != 100 {
		t.Errorf("TotalUsage = %v", g.TotalUsage())
	}
}

func TestUsageOutsideCoreIsClipped(t *testing.T) {
	g := mustGrid(NewGrid(core100(), 10, 10, 1.0))
	g.AddUsage(geom.Rect{XMin: -20, YMin: -20, XMax: -10, YMax: -10})
	if g.TotalUsage() != 0 {
		t.Errorf("usage from outside rect = %v", g.TotalUsage())
	}
	// Partially outside: only inside part counts.
	g.AddUsage(geom.Rect{XMin: -5, YMin: 0, XMax: 5, YMax: 10})
	if g.TotalUsage() != 50 {
		t.Errorf("clipped usage = %v", g.TotalUsage())
	}
}

func TestOverflow(t *testing.T) {
	g := mustGrid(NewGrid(core100(), 10, 10, 1.0))
	if g.Overflow() != 0 {
		t.Error("empty grid overflow should be 0")
	}
	// Stack 300 area into bin (0,0) which holds 100.
	g.AddUsage(geom.Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10})
	g.AddUsage(geom.Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10})
	g.AddUsage(geom.Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10})
	if g.Overflow() != 200 {
		t.Errorf("Overflow = %v, want 200", g.Overflow())
	}
	if !g.Overfilled(0, 0) {
		t.Error("bin should be overfilled")
	}
	if g.Overfilled(1, 1) {
		t.Error("empty bin reported overfilled")
	}
	wantRatio := 200.0 / 300.0
	if math.Abs(g.OverflowRatio()-wantRatio) > 1e-12 {
		t.Errorf("OverflowRatio = %v", g.OverflowRatio())
	}
	if math.Abs(g.PenaltyPercent()-100*wantRatio) > 1e-9 {
		t.Errorf("PenaltyPercent = %v", g.PenaltyPercent())
	}
	if math.Abs(g.ScaledHPWL(1000)-1000*(1+wantRatio)) > 1e-9 {
		t.Errorf("ScaledHPWL = %v", g.ScaledHPWL(1000))
	}
}

func TestBinOfClamps(t *testing.T) {
	g := mustGrid(NewGrid(core100(), 10, 10, 1.0))
	if ix, iy := g.BinOf(geom.Point{X: -5, Y: 105}); ix != 0 || iy != 9 {
		t.Errorf("BinOf clamp = (%d, %d)", ix, iy)
	}
	if ix, iy := g.BinOf(geom.Point{X: 55, Y: 5}); ix != 5 || iy != 0 {
		t.Errorf("BinOf = (%d, %d)", ix, iy)
	}
}

func TestNewGridForNetlist(t *testing.T) {
	b := netlist.NewBuilder("t")
	b.SetCore(core100())
	b.AddCell("c", 2, 2)
	b.AddFixed("obs", 0, 0, 10, 10)
	// Fixed cells with pins still block area; no nets needed.
	c := b.CellID("c")
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}, {Cell: b.CellID("obs")}})
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := mustGrid(NewGridForNetlist(nl, 10, 10, 1.0))
	if g.Free(0, 0) != 0 {
		t.Errorf("obstacle not registered: free = %v", g.Free(0, 0))
	}
	nl.Cells[c].SetCenter(geom.Point{X: 55, Y: 55})
	g.AccumulateMovable(nl)
	if g.TotalUsage() != 4 {
		t.Errorf("TotalUsage = %v", g.TotalUsage())
	}
	// Re-accumulating resets first.
	g.AccumulateMovable(nl)
	if g.TotalUsage() != 4 {
		t.Errorf("TotalUsage after repeat = %v", g.TotalUsage())
	}
}

func TestAutoResolution(t *testing.T) {
	nx, ny := AutoResolution(1600, 4, 0)
	if nx != 20 || ny != 20 {
		t.Errorf("AutoResolution = %d x %d, want 20 x 20", nx, ny)
	}
	nx, _ = AutoResolution(1600, 4, 10)
	if nx != 10 {
		t.Errorf("maxDim clamp = %d", nx)
	}
	nx, _ = AutoResolution(1, 4, 0)
	if nx != 4 {
		t.Errorf("min clamp = %d", nx)
	}
	nx, _ = AutoResolution(100, 0, 0)
	if nx != 5 {
		t.Errorf("default cellsPerBin = %d", nx)
	}
}

func TestTotalCapacityWithTarget(t *testing.T) {
	g := mustGrid(NewGrid(core100(), 4, 4, 0.25))
	if math.Abs(g.TotalCapacity()-2500) > 1e-9 {
		t.Errorf("TotalCapacity = %v", g.TotalCapacity())
	}
}

func TestContestGrid(t *testing.T) {
	b := netlist.NewBuilder("cg")
	b.SetCore(geom.Rect{XMax: 100, YMax: 100})
	c := b.AddCell("c", 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}})
	b.AddUniformRows(100, 1, 1) // row height 1 -> 10x10-unit contest bins
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := mustGrid(ContestGrid(nl, 0.9))
	if g.NX != 10 || g.NY != 10 {
		t.Errorf("contest grid = %dx%d, want 10x10", g.NX, g.NY)
	}
	if g.Target != 0.9 {
		t.Errorf("target = %v", g.Target)
	}
}
