// Package density maintains the uniform bin grid used to measure placement
// density: per-bin free capacity (core area minus fixed obstacles, scaled by
// the target utilization γ), per-bin movable usage, overflow metrics and the
// ISPD-2006-style scaled-HPWL penalty.
package density

import (
	"fmt"
	"math"

	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/par"
)

// Binning decomposition constants. The cell-chunk partition is a pure
// function of the movable count, so accumulation is bitwise deterministic
// at any parallelism level.
const (
	// binCellGrain is the minimum number of cells per accumulation chunk.
	binCellGrain = 4096
	// maxBinChunks caps the per-chunk scratch grids (each is NX·NY floats).
	maxBinChunks = 16
	// binMergeGrain is the bin chunk length for the ordered partial merge.
	binMergeGrain = 8192
)

// Grid is a uniform NX×NY bin grid over a core area.
type Grid struct {
	Core       geom.Rect
	NX, NY     int
	BinW, BinH float64
	// Target is the utilization limit γ in (0, 1].
	Target float64

	free     []float64 // usable area per bin (bin area minus obstacles)
	capacity []float64 // free * Target
	usage    []float64 // movable area per bin
}

// NewGrid creates an empty grid with the given resolution and target
// density. Obstacles must be added before capacities are read. Invalid
// parameters (non-positive resolution, target outside (0, 1], a NaN or
// empty core) return an error instead of panicking.
func NewGrid(core geom.Rect, nx, ny int, target float64) (*Grid, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("density: grid resolution %dx%d must be positive", nx, ny)
	}
	if math.IsNaN(target) || target <= 0 || target > 1 {
		return nil, fmt.Errorf("density: target utilization %g must be in (0, 1]", target)
	}
	if core.Empty() || math.IsNaN(core.Width()) || math.IsNaN(core.Height()) ||
		math.IsInf(core.Width(), 0) || math.IsInf(core.Height(), 0) {
		return nil, fmt.Errorf("density: unusable core area (%g,%g)-(%g,%g)",
			core.XMin, core.YMin, core.XMax, core.YMax)
	}
	g := &Grid{
		Core:   core,
		NX:     nx,
		NY:     ny,
		BinW:   core.Width() / float64(nx),
		BinH:   core.Height() / float64(ny),
		Target: target,
	}
	n := nx * ny
	g.free = make([]float64, n)
	g.capacity = make([]float64, n)
	g.usage = make([]float64, n)
	binArea := g.BinW * g.BinH
	for i := range g.free {
		g.free[i] = binArea
		g.capacity[i] = binArea * target
	}
	return g, nil
}

// NewGridForNetlist builds a grid over the netlist core with the fixed
// cells registered as obstacles.
func NewGridForNetlist(nl *netlist.Netlist, nx, ny int, target float64) (*Grid, error) {
	g, err := NewGrid(nl.Core, nx, ny, target)
	if err != nil {
		return nil, err
	}
	for i := range nl.Cells {
		if nl.Cells[i].Fixed() {
			g.AddObstacle(nl.Cells[i].Rect())
		}
	}
	return g, nil
}

// ContestGrid builds the ISPD-2006-style measurement grid over nl: square
// bins of ten row heights on a side (the contest's overflow-evaluation
// binning), with fixed cells registered as obstacles.
func ContestGrid(nl *netlist.Netlist, target float64) (*Grid, error) {
	side := 10 * nl.RowHeight()
	if side <= 0 {
		side = 10
	}
	nx := int(math.Ceil(nl.Core.Width() / side))
	ny := int(math.Ceil(nl.Core.Height() / side))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return NewGridForNetlist(nl, nx, ny, target)
}

// AutoResolution suggests a grid resolution so that an average bin holds
// about cellsPerBin movable cells, clamped to [4, maxDim] per side.
func AutoResolution(numMovable int, cellsPerBin float64, maxDim int) (nx, ny int) {
	if cellsPerBin <= 0 {
		cellsPerBin = 4
	}
	side := int(math.Ceil(math.Sqrt(float64(numMovable) / cellsPerBin)))
	if side < 4 {
		side = 4
	}
	if maxDim > 0 && side > maxDim {
		side = maxDim
	}
	return side, side
}

func (g *Grid) idx(ix, iy int) int { return iy*g.NX + ix }

// BinRect returns the rectangle of bin (ix, iy).
func (g *Grid) BinRect(ix, iy int) geom.Rect {
	x := g.Core.XMin + float64(ix)*g.BinW
	y := g.Core.YMin + float64(iy)*g.BinH
	return geom.Rect{XMin: x, YMin: y, XMax: x + g.BinW, YMax: y + g.BinH}
}

// binRange returns the half-open bin index range overlapped by r, clamped
// to the grid.
func (g *Grid) binRange(r geom.Rect) (x0, y0, x1, y1 int) {
	x0 = int(math.Floor((r.XMin - g.Core.XMin) / g.BinW))
	y0 = int(math.Floor((r.YMin - g.Core.YMin) / g.BinH))
	x1 = int(math.Ceil((r.XMax - g.Core.XMin) / g.BinW))
	y1 = int(math.Ceil((r.YMax - g.Core.YMin) / g.BinH))
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > g.NX {
		x1 = g.NX
	}
	if y1 > g.NY {
		y1 = g.NY
	}
	return
}

// BinOf returns the bin indices containing point p, clamped to the grid.
func (g *Grid) BinOf(p geom.Point) (ix, iy int) {
	ix = int((p.X - g.Core.XMin) / g.BinW)
	iy = int((p.Y - g.Core.YMin) / g.BinH)
	if ix < 0 {
		ix = 0
	}
	if iy < 0 {
		iy = 0
	}
	if ix >= g.NX {
		ix = g.NX - 1
	}
	if iy >= g.NY {
		iy = g.NY - 1
	}
	return
}

// AddObstacle subtracts the rectangle's overlap from each bin's free area
// and recomputes the affected capacities.
func (g *Grid) AddObstacle(r geom.Rect) {
	x0, y0, x1, y1 := g.binRange(r.Intersect(g.Core))
	for iy := y0; iy < y1; iy++ {
		for ix := x0; ix < x1; ix++ {
			ov := g.BinRect(ix, iy).OverlapArea(r)
			k := g.idx(ix, iy)
			g.free[k] -= ov
			if g.free[k] < 0 {
				g.free[k] = 0
			}
			g.capacity[k] = g.free[k] * g.Target
		}
	}
}

// ResetUsage zeroes the movable-usage map.
func (g *Grid) ResetUsage() {
	for i := range g.usage {
		g.usage[i] = 0
	}
}

// AddUsage distributes the rectangle's area over the bins it overlaps.
func (g *Grid) AddUsage(r geom.Rect) {
	g.addUsageInto(g.usage, r)
}

// addUsageInto distributes the rectangle's area over the bins it overlaps,
// accumulating into buf (length NX·NY).
func (g *Grid) addUsageInto(buf []float64, r geom.Rect) {
	x0, y0, x1, y1 := g.binRange(r)
	for iy := y0; iy < y1; iy++ {
		for ix := x0; ix < x1; ix++ {
			buf[g.idx(ix, iy)] += g.BinRect(ix, iy).OverlapArea(r)
		}
	}
}

// AccumulateMovable resets usage and adds every movable cell of nl at its
// current position.
//
// Cells are binned in parallel over fixed chunks, each chunk accumulating
// into its own scratch grid; the per-chunk grids are then merged bin-wise in
// chunk order. Because the chunk partition depends only on the movable count
// and the merge order is fixed, the result is bitwise deterministic at any
// parallelism level.
func (g *Grid) AccumulateMovable(nl *netlist.Netlist) {
	g.ResetUsage()
	mov := nl.Movables()
	nm := len(mov)
	nu := len(g.usage)
	// Chunk partition: pure function of nm.
	grain := binCellGrain
	if nb := par.Chunks(nm, grain); nb > maxBinChunks {
		grain = (nm + maxBinChunks - 1) / maxBinChunks
	}
	nb := par.Chunks(nm, grain)
	if nb <= 1 {
		for _, i := range mov {
			g.AddUsage(nl.Cells[i].Rect())
		}
		return
	}
	slab := make([]float64, nb*nu)
	par.For(nm, grain, func(lo, hi int) {
		buf := slab[(lo/grain)*nu : (lo/grain+1)*nu]
		for _, i := range mov[lo:hi] {
			g.addUsageInto(buf, nl.Cells[i].Rect())
		}
	})
	// Ordered merge: usage[k] = Σ_c slab[c][k], chunks in index order.
	par.For(nu, binMergeGrain, func(lo, hi int) {
		for c := 0; c < nb; c++ {
			buf := slab[c*nu : (c+1)*nu]
			for k := lo; k < hi; k++ {
				g.usage[k] += buf[k]
			}
		}
	})
}

// Usage returns the movable area currently registered in bin (ix, iy).
func (g *Grid) Usage(ix, iy int) float64 { return g.usage[g.idx(ix, iy)] }

// Capacity returns the target-scaled capacity of bin (ix, iy).
func (g *Grid) Capacity(ix, iy int) float64 { return g.capacity[g.idx(ix, iy)] }

// Free returns the obstacle-free area of bin (ix, iy).
func (g *Grid) Free(ix, iy int) float64 { return g.free[g.idx(ix, iy)] }

// Overfilled reports whether bin (ix, iy) exceeds its capacity by more than
// a small tolerance.
func (g *Grid) Overfilled(ix, iy int) bool {
	k := g.idx(ix, iy)
	return g.usage[k] > g.capacity[k]*(1+1e-9)+1e-12
}

// Overflow returns the total movable area above capacity, summed over bins.
func (g *Grid) Overflow() float64 {
	var s float64
	for i := range g.usage {
		if d := g.usage[i] - g.capacity[i]; d > 0 {
			s += d
		}
	}
	return s
}

// OverflowRatio returns Overflow divided by the total movable usage
// (0 when the grid is empty).
func (g *Grid) OverflowRatio() float64 {
	var tot float64
	for _, u := range g.usage {
		tot += u
	}
	if tot == 0 {
		return 0
	}
	return g.Overflow() / tot
}

// PenaltyPercent is the ISPD-2006-style density penalty: the total overflow
// as a percentage of total movable area. Table 2 of the paper reports this
// quantity in parentheses.
func (g *Grid) PenaltyPercent() float64 { return 100 * g.OverflowRatio() }

// ScaledHPWL applies the ISPD 2006 contest scaling to a raw HPWL value:
// HPWL × (1 + penalty%/100).
func (g *Grid) ScaledHPWL(hpwl float64) float64 {
	return hpwl * (1 + g.OverflowRatio())
}

// TotalCapacity returns the summed capacity of all bins.
func (g *Grid) TotalCapacity() float64 {
	var s float64
	for _, c := range g.capacity {
		s += c
	}
	return s
}

// TotalUsage returns the summed usage of all bins.
func (g *Grid) TotalUsage() float64 {
	var s float64
	for _, u := range g.usage {
		s += u
	}
	return s
}
