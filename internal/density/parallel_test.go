package density

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/par"
)

// scatterDesign builds a netlist with n movable cells at random positions.
func scatterDesign(t *testing.T, rng *rand.Rand, n int) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("scatter")
	b.SetCore(geom.Rect{XMax: 1000, YMax: 1000})
	for i := 0; i < n; i++ {
		b.AddCell(fmt.Sprintf("c%d", i), 1+3*rng.Float64(), 1+3*rng.Float64())
	}
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := range nl.Cells {
		nl.Cells[i].SetCenter(geom.Point{X: 1000 * rng.Float64(), Y: 1000 * rng.Float64()})
	}
	return nl
}

// TestAccumulateMovableBitwiseAcrossThreads asserts that the chunked
// parallel binning produces bitwise-identical per-bin usage at any pool
// size, including cell counts that straddle the chunk-grain boundaries.
func TestAccumulateMovableBitwiseAcrossThreads(t *testing.T) {
	defer par.SetThreads(0)
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{0, 1, binCellGrain - 1, binCellGrain, binCellGrain + 1, 3*binCellGrain + 7} {
		nl := scatterDesign(t, rng, n)
		var want []float64
		for ti, threads := range []int{1, 2, 8} {
			par.SetThreads(threads)
			g := mustGrid(NewGridForNetlist(nl, 33, 29, 0.9))
			g.AccumulateMovable(nl)
			if ti == 0 {
				want = append([]float64(nil), g.usage...)
				continue
			}
			for k := range g.usage {
				if math.Float64bits(g.usage[k]) != math.Float64bits(want[k]) {
					t.Fatalf("n=%d threads=%d: usage[%d]=%x want %x",
						n, threads, k, math.Float64bits(g.usage[k]), math.Float64bits(want[k]))
				}
			}
		}
	}
}
