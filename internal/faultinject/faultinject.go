// Package faultinject is the test-only fault-injection registry of the
// placement runtime. Hook points compiled into the production packages
// (sparse CG residuals, qp solves, engine iteration boundaries, checkpoint
// and atomic-file persistence) consult a process-global injector and, when a
// matching rule fires, corrupt a value, return an injected error, or run a
// side effect (for example cancelling a context at a chosen iteration).
//
// # Zero cost when disabled
//
// The global injector is an atomic pointer that is nil in production. Every
// hook site is
//
//	if inj := faultinject.Active(); inj != nil { ... }
//
// so the disabled path is one atomic load and a branch — no allocation, no
// lock, no time.Now (verified by TestDisabledZeroAlloc and
// BenchmarkDisabledHook, the same bar as the nil *obs.Observer pattern).
//
// # Intended use
//
// Only tests call Activate/Deactivate. Because the injector is
// process-global, tests that activate it must not run in parallel with
// tests that assert clean behavior; use t.Cleanup(faultinject.Deactivate)
// and avoid t.Parallel() in injection tests.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
)

// Point names one injection site compiled into the production code.
type Point string

// The injection-site catalog. DESIGN.md §10 documents where each point
// lives and what a firing rule does there.
const (
	// CGResidual poisons the Conjugate Gradient residual vector with a NaN
	// right after the initial residual is formed (internal/sparse).
	CGResidual Point = "cg.residual"
	// QPSolve fails a quadratic primal solve outright before assembly
	// (internal/qp). The injected error surfaces exactly like a solver
	// failure, exercising the recovery ladder's non-numeric rungs.
	QPSolve Point = "qp.solve"
	// EngineIteration fires at the top of every engine loop iteration
	// (internal/engine); rules typically attach a Do side effect that
	// cancels the run's context at a chosen iteration (select it with
	// After: the hook fires once per iteration). The detail string is the
	// design name.
	EngineIteration Point = "engine.iteration"
	// CheckpointSave fails checkpoint persistence before any bytes are
	// written (internal/chkpt).
	CheckpointSave Point = "chkpt.save"
	// AtomicWriteOpen fails an atomic file write before the temp file is
	// created (internal/fsatomic). The detail string is the target path.
	AtomicWriteOpen Point = "fs.atomic_open"
	// AtomicWriteShort makes an atomic file write stop half way through a
	// Write call and return an injected error — a short write that leaves a
	// truncated temp file behind (internal/fsatomic). The detail string is
	// the target path.
	AtomicWriteShort Point = "fs.atomic_short_write"

	// Daemon-level hook points compiled into cmd/complxd (DESIGN.md §15).
	// The detail string is the job ID at all three sites.

	// JobPersist fails a job-record persist (store.Save) before any bytes
	// are written. Transition persists log-and-continue; the submit-time
	// persist surfaces the error to the client.
	JobPersist Point = "complxd.job_persist"
	// SSEWrite aborts an SSE event or keepalive write on the job's
	// /jobs/{id}/events stream, closing the stream mid-flight.
	SSEWrite Point = "complxd.sse_write"
	// WorkerStart fails a worker dispatch after the job is popped from the
	// queue but before it transitions to running; the scheduler re-queues
	// the job without consuming an attempt.
	WorkerStart Point = "complxd.worker_start"
)

// ErrInjected is the default error returned by firing rules; test for it
// with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Rule arms one injection site. The zero Match matches every detail string;
// After skips the first hits; Times caps firings (0 = fire once).
type Rule struct {
	// Point selects the injection site.
	Point Point
	// Match, when non-empty, requires the hook's detail string to contain
	// it (e.g. a file path fragment or an iteration number).
	Match string
	// After skips the first After matching hits before firing.
	After int
	// Times caps the number of firings; 0 means exactly once.
	Times int
	// Err is the error injected on firing; nil selects ErrInjected.
	Err error
	// Do, when non-nil, runs on every firing (before the error is
	// returned) — e.g. a context.CancelFunc.
	Do func(detail string)
}

// Event records one firing for post-mortem assertions.
type Event struct {
	Point  Point
	Detail string
	Err    error
}

type ruleState struct {
	Rule
	hits  int // matching hits seen
	fired int // firings so far
}

// Injector holds armed rules and the firing log. Safe for concurrent use:
// hooks may fire from the engine's worker goroutines.
type Injector struct {
	mu     sync.Mutex
	rules  []*ruleState
	events []Event
}

// New returns an empty injector. Arm it with Add and install it with
// Activate.
func New() *Injector { return &Injector{} }

// Add arms a rule.
func (in *Injector) Add(r Rule) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &ruleState{Rule: r})
	return in
}

// Events returns a copy of the firing log.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	return out
}

// Fired reports how many times any rule fired at pt.
func (in *Injector) Fired(pt Point) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, e := range in.events {
		if e.Point == pt {
			n++
		}
	}
	return n
}

// Fire consults the armed rules for pt. When a rule fires it returns the
// injected error (never nil on a firing); otherwise nil. The detail string
// carries site-specific context (path, iteration) for Match rules and the
// event log.
func (in *Injector) Fire(pt Point, detail string) error {
	in.mu.Lock()
	var fired *ruleState
	for _, rs := range in.rules {
		if rs.Point != pt {
			continue
		}
		if rs.Match != "" && !strings.Contains(detail, rs.Match) {
			continue
		}
		rs.hits++
		if rs.hits <= rs.After {
			continue
		}
		times := rs.Times
		if times <= 0 {
			times = 1
		}
		if rs.fired >= times {
			continue
		}
		rs.fired++
		fired = rs
		break
	}
	if fired == nil {
		in.mu.Unlock()
		return nil
	}
	err := fired.Err
	if err == nil {
		err = fmt.Errorf("%w at %s", ErrInjected, pt)
	}
	in.events = append(in.events, Event{Point: pt, Detail: detail, Err: err})
	do := fired.Do
	in.mu.Unlock()
	if do != nil {
		do(detail)
	}
	return err
}

// active is the process-global injector; nil in production.
var active atomic.Pointer[Injector]

// Activate installs in as the process-global injector (tests only).
func Activate(in *Injector) { active.Store(in) }

// Deactivate removes the global injector, restoring the zero-cost disabled
// path. Safe to call when nothing is active.
func Deactivate() { active.Store(nil) }

// Active returns the installed injector, or nil when fault injection is
// disabled. Hook sites must nil-check the result and keep all further work
// behind the branch.
func Active() *Injector { return active.Load() }

// FireErr is a convenience for hook sites that only need the injected
// error: it returns nil immediately when injection is disabled.
func FireErr(pt Point, detail string) error {
	inj := Active()
	if inj == nil {
		return nil
	}
	return inj.Fire(pt, detail)
}

// Writer wraps w with the AtomicWriteShort hook: when the rule fires, the
// offending Write forwards only half its payload to w and returns the
// injected error (a short write). When injection is disabled the original
// writer is returned unwrapped, so the production write path has zero
// indirection.
func Writer(w io.Writer, detail string) io.Writer {
	if Active() == nil {
		return w
	}
	return &faultWriter{w: w, detail: detail}
}

type faultWriter struct {
	w      io.Writer
	detail string
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	if inj := Active(); inj != nil {
		if err := inj.Fire(AtomicWriteShort, fw.detail); err != nil {
			n, _ := fw.w.Write(p[:len(p)/2])
			return n, err
		}
	}
	return fw.w.Write(p)
}
