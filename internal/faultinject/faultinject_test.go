package faultinject

import (
	"bytes"
	"errors"
	"testing"
)

func TestFireOnceByDefault(t *testing.T) {
	in := New().Add(Rule{Point: CGResidual})
	if err := in.Fire(CGResidual, ""); !errors.Is(err, ErrInjected) {
		t.Fatalf("first hit: got %v, want ErrInjected", err)
	}
	if err := in.Fire(CGResidual, ""); err != nil {
		t.Fatalf("second hit fired again: %v", err)
	}
	if n := in.Fired(CGResidual); n != 1 {
		t.Fatalf("Fired = %d, want 1", n)
	}
}

func TestAfterAndTimes(t *testing.T) {
	in := New().Add(Rule{Point: QPSolve, After: 2, Times: 2})
	got := 0
	for i := 0; i < 6; i++ {
		if in.Fire(QPSolve, "") != nil {
			got++
		}
	}
	if got != 2 {
		t.Fatalf("fired %d times, want 2 (After=2 Times=2)", got)
	}
	evs := in.Events()
	if len(evs) != 2 || evs[0].Point != QPSolve {
		t.Fatalf("events = %+v", evs)
	}
}

func TestMatchSubstring(t *testing.T) {
	in := New().Add(Rule{Point: AtomicWriteOpen, Match: "complx.ckpt", Times: 10})
	if err := in.Fire(AtomicWriteOpen, "/tmp/out.pl"); err != nil {
		t.Fatalf("mismatched detail fired: %v", err)
	}
	if err := in.Fire(AtomicWriteOpen, "/tmp/ck/complx.ckpt"); err == nil {
		t.Fatal("matching detail did not fire")
	}
}

func TestCustomErrAndDo(t *testing.T) {
	sentinel := errors.New("boom")
	var detail string
	in := New().Add(Rule{Point: EngineIteration, Match: "7", Err: sentinel, Do: func(d string) { detail = d }})
	for i := 1; i <= 10; i++ {
		err := in.Fire(EngineIteration, itoa(i))
		if i == 7 {
			if !errors.Is(err, sentinel) {
				t.Fatalf("iter 7: got %v, want sentinel", err)
			}
		} else if err != nil {
			t.Fatalf("iter %d fired: %v", i, err)
		}
	}
	if detail != "7" {
		t.Fatalf("Do saw detail %q, want \"7\"", detail)
	}
}

func itoa(i int) string {
	if i >= 10 {
		return string(rune('0'+i/10)) + string(rune('0'+i%10))
	}
	return string(rune('0' + i))
}

func TestActivateDeactivate(t *testing.T) {
	t.Cleanup(Deactivate)
	if Active() != nil {
		t.Fatal("injector active before Activate")
	}
	if err := FireErr(CGResidual, ""); err != nil {
		t.Fatalf("disabled FireErr returned %v", err)
	}
	in := New().Add(Rule{Point: CGResidual})
	Activate(in)
	if Active() != in {
		t.Fatal("Active did not return the installed injector")
	}
	if err := FireErr(CGResidual, ""); !errors.Is(err, ErrInjected) {
		t.Fatalf("enabled FireErr: %v", err)
	}
	Deactivate()
	if Active() != nil {
		t.Fatal("injector still active after Deactivate")
	}
}

func TestWriterShortWrite(t *testing.T) {
	t.Cleanup(Deactivate)

	// Disabled: Writer returns the underlying writer unchanged.
	var buf bytes.Buffer
	if w := Writer(&buf, "x"); w != &buf {
		t.Fatal("disabled Writer wrapped the writer")
	}

	Activate(New().Add(Rule{Point: AtomicWriteShort, Match: "target"}))
	buf.Reset()
	w := Writer(&buf, "target")
	n, err := w.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write err = %v", err)
	}
	if n != 5 || buf.String() != "01234" {
		t.Fatalf("short write forwarded %d bytes (%q), want 5", n, buf.String())
	}
	// Rule exhausted: subsequent writes pass through.
	if _, err := w.Write([]byte("abc")); err != nil {
		t.Fatalf("post-exhaustion write: %v", err)
	}
	if buf.String() != "01234abc" {
		t.Fatalf("buffer = %q", buf.String())
	}
}
